/**
 * @file
 * Regenerates Figure 2: query execution-time breakdowns on the
 * mini-DBMS (MonetDB's role).
 *
 *  (a) Per-query % of execution time in Index / Scan / Sort&Join /
 *      Other, measured with wall-clock timers around real operators
 *      (VTune's role), for the 16 TPC-H + 9 TPC-DS queries.
 *  (b) Index-time split between key hashing and node-list walking,
 *      from the simulated OoO core's per-phase cycle attribution,
 *      for the 12 simulated queries.
 *
 * Paper anchors: indexing 14-94% of execution (TPC-H avg ~35%,
 * TPC-DS avg ~45%); walk ~70% of index time on average (up to 97%),
 * hash ~30% (up to 68% on L1-resident indexes).
 */

#include <cstdio>
#include <vector>

#include "common/stats.hh"
#include "common/table_printer.hh"
#include "cpu/probe_run.hh"
#include "workload/dss_queries.hh"

using namespace widx;

int
main()
{
    // --- Figure 2a ------------------------------------------------------
    TablePrinter fig2a("Figure 2a: total execution time breakdown "
                       "(measured on the mini-DBMS)");
    fig2a.header({"Query", "Suite", "Index", "Scan", "Sort&Join",
                  "Other", "Index(paper)"});
    std::vector<double> tpch_index;
    std::vector<double> tpcds_index;
    for (const wl::PlanSpec &spec : wl::dssPlanQueries()) {
        db::PlanBreakdown bd = wl::runPlan(spec);
        const double f_index = bd.fraction(db::OpClass::Index);
        fig2a.addRow({spec.name, spec.suite,
                      TablePrinter::fmtPct(f_index),
                      TablePrinter::fmtPct(
                          bd.fraction(db::OpClass::Scan)),
                      TablePrinter::fmtPct(
                          bd.fraction(db::OpClass::SortJoin)),
                      TablePrinter::fmtPct(
                          bd.fraction(db::OpClass::Other)),
                      TablePrinter::fmtPct(spec.paperIndexFraction)});
        if (std::string(spec.suite) == "TPC-H")
            tpch_index.push_back(f_index);
        else
            tpcds_index.push_back(f_index);
    }
    fig2a.print();
    std::printf("TPC-H mean index fraction: %.1f%% (paper ~35%%); "
                "TPC-DS: %.1f%% (paper ~45%%)\n",
                mean(tpch_index) * 100.0, mean(tpcds_index) * 100.0);

    // --- Figure 2b ------------------------------------------------------
    TablePrinter fig2b("Figure 2b: index execution time breakdown "
                       "(simulated OoO core)");
    fig2b.header({"Query", "Suite", "Walk", "Hash"});
    std::vector<double> hash_fracs;
    for (const wl::DssQuerySpec &spec : wl::dssSimQueries()) {
        wl::DssDataset data(spec);
        cpu::ProbeRunConfig cfg;
        cfg.core = cpu::CoreParams::ooo();
        cpu::CoreResult r =
            cpu::runProbeLoop(*data.index, *data.probeKeys, cfg);
        const double hash = r.hashFraction();
        hash_fracs.push_back(hash);
        fig2b.addRow({spec.name, spec.suite,
                      TablePrinter::fmtPct(1.0 - hash),
                      TablePrinter::fmtPct(hash)});
    }
    fig2b.print();
    std::printf("Mean hash fraction: %.1f%% (paper ~30%%, max 68%%)\n",
                mean(hash_fracs) * 100.0);
    return 0;
}
