/**
 * @file
 * Ablation: inter-unit queue depth.
 *
 * The Section 3.2 model assumes an infinite queue between the hashing
 * unit and the walkers; the synthesized design uses 2-entry queues.
 * This sweep quantifies what the finite queues cost across kernel
 * sizes, and how depth interacts with walker count.
 */

#include <cstdio>

#include "accel/engine.hh"
#include "common/table_printer.hh"
#include "workload/join_kernel.hh"

using namespace widx;

int
main()
{
    TablePrinter tbl("Queue-depth sweep: cycles/tuple (4 walkers)");
    tbl.header({"Index", "depth 1", "depth 2 (Widx)", "depth 4",
                "depth 8", "depth 16"});

    for (const wl::KernelSize &size :
         {wl::KernelSize::small(), wl::KernelSize::medium(),
          wl::KernelSize::large()}) {
        wl::KernelDataset data(size);
        std::vector<std::string> row{size.name};
        for (unsigned depth : {1u, 2u, 4u, 8u, 16u}) {
            accel::OffloadSpec spec;
            spec.index = data.index.get();
            spec.probeKeys = data.probeKeys.get();
            spec.outBase = data.outBase();
            accel::EngineConfig cfg;
            cfg.numWalkers = 4;
            cfg.queueDepth = depth;
            accel::EngineResult r = accel::runOffload(spec, cfg);
            row.push_back(TablePrinter::fmt(r.cyclesPerTuple, 1));
        }
        tbl.addRow(row);
    }
    tbl.print();
    std::printf("Deeper queues let the dispatcher run further ahead; "
                "beyond a few entries the walkers, MSHRs, or the "
                "dispatcher itself become the binding constraint.\n");
    return 0;
}
