/**
 * @file
 * Regenerates Figure 9: Widx walker cycles-per-tuple breakdown
 * (Comp / Mem / TLB / Idle) on the DSS queries, 1/2/4 walkers.
 *
 * Paper anchors: computation fraction higher than the kernel's
 * (MonetDB's indirect keys cost extra address work); linear
 * cycles-per-tuple reduction with walker count; TPC-H small-index
 * queries (2, 11, 17) show no TLB time while memory-intensive ones
 * (19, 20, 22) reach up to ~8%; TPC-DS indexes are small (429-column
 * schema), so cycles/tuple is much lower and L1-resident queries
 * (5, 37, 64, 82) leave walkers partially idle.
 */

#include <cstdio>

#include "accel/engine.hh"
#include "common/table_printer.hh"
#include "workload/dss_queries.hh"

using namespace widx;

int
main()
{
    TablePrinter fig9("Figure 9: Widx walker cycles/tuple breakdown, "
                      "DSS queries on the mini-DBMS (MonetDB layout)");
    fig9.header({"Query", "Suite", "Walkers", "Comp", "Mem", "TLB",
                 "Idle", "Cyc/tuple"});

    for (const wl::DssQuerySpec &spec : wl::dssSimQueries()) {
        wl::DssDataset data(spec);
        for (unsigned w : {1u, 2u, 4u}) {
            accel::OffloadSpec off;
            off.index = data.index.get();
            off.probeKeys = data.probeKeys.get();
            off.outBase = data.outBase();
            accel::EngineConfig cfg;
            cfg.numWalkers = w;
            accel::EngineResult r = accel::runOffload(off, cfg);

            const double total = double(r.walkers.total());
            auto part = [&](u64 c) {
                return total == 0.0 ? 0.0
                                    : double(c) / total *
                                          r.cyclesPerTuple;
            };
            fig9.addRow(
                {spec.name, spec.suite, std::to_string(w),
                 TablePrinter::fmt(part(r.walkers.comp), 1),
                 TablePrinter::fmt(part(r.walkers.mem), 1),
                 TablePrinter::fmt(part(r.walkers.tlb), 1),
                 TablePrinter::fmt(part(r.walkers.idle +
                                        r.walkers.backpressure),
                                   1),
                 TablePrinter::fmt(r.cyclesPerTuple, 1)});
        }
    }
    fig9.print();
    std::printf("Note the y-scale difference the paper calls out: "
                "TPC-DS cycles/tuple are far below TPC-H's.\n");
    return 0;
}
