/**
 * @file
 * google-benchmark microbenchmarks for the software walkers
 * (Section 7's "insights applicable elsewhere", and the AMAC /
 * coroutine-interleaving line of work this paper seeded).
 *
 * On a DRAM-resident index the interleaved probers (group prefetch,
 * AMAC, coroutines) overlap cache misses across probes — the same
 * inter-key parallelism Widx exploits with hardware walkers — and
 * beat the scalar Listing 1 loop by integer factors on real hardware.
 *
 * Every prober is measured in pipeline variants: inline vs batched
 * dispatch (arg "batch": 0 = hash each key right before its walk,
 * >0 = vector-hash a whole batch first) and untagged vs tagged
 * buckets (arg "tag"). A miss-heavy key set isolates the tag
 * filter's one-byte reject.
 *
 * Results are also written to BENCH_sw_walkers.json (benchmark's
 * JSON format) unless --benchmark_out is given explicitly, so CI can
 * track the throughput trajectory.
 */

#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/arena.hh"
#include "common/rng.hh"
#include "swwalkers/coro.hh"
#include "swwalkers/probers.hh"
#include "swwalkers/walker_pool.hh"
#include "workload/distributions.hh"

using namespace widx;

namespace {

/** Shared dataset (built once per size). */
struct Dataset
{
    Arena arena;
    std::unique_ptr<db::HashIndex> index;
    std::vector<u64> keys;     ///< uniform hits
    std::vector<u64> missKeys; ///< keys absent from the index

    explicit Dataset(u64 tuples)
    {
        Rng rng(42);
        db::Column build("b", db::ValueKind::U64, arena, tuples);
        for (u64 k : wl::shuffledDenseKeys(tuples, rng))
            build.push(k);
        db::IndexSpec spec;
        spec.buckets = tuples;
        spec.hashFn = db::HashFn::monetdbRobust();
        index = std::make_unique<db::HashIndex>(spec, arena);
        index->buildFromColumn(build);
        keys = wl::uniformKeys(1u << 20, tuples, rng);
        missKeys = wl::uniformKeys(1u << 20, tuples, rng);
        for (u64 &k : missKeys)
            k += tuples; // dense build keys live in [0, tuples)
    }
};

Dataset &
large()
{
    static Dataset d(8u << 20); // ~384 MB footprint: DRAM-resident
    return d;
}

Dataset &
small()
{
    static Dataset d(4096); // L1/L2-resident
    return d;
}

/** Items/s = probed keys/s of the dataset actually used. */
void
reportTuples(benchmark::State &state, const std::vector<u64> &keys,
             u64 matches)
{
    state.SetItemsProcessed(i64(state.iterations()) *
                            i64(keys.size()));
    benchmark::DoNotOptimize(matches);
}

sw::PipelineConfig
cfgFromArgs(const benchmark::State &state, int batch_arg,
            int tag_arg)
{
    return {.batch = unsigned(state.range(batch_arg)),
            .tagged = state.range(tag_arg) != 0};
}

} // namespace

// Args: dataset (0 small / 1 large), batch (0 = inline), tag.
static void
BM_Scalar(benchmark::State &state)
{
    Dataset &d = state.range(0) ? large() : small();
    sw::ScalarProber prober(*d.index, cfgFromArgs(state, 1, 2));
    u64 matches = 0;
    for (auto _ : state)
        matches = prober.probeAll(d.keys);
    reportTuples(state, d.keys, matches);
}
BENCHMARK(BM_Scalar)
    ->ArgNames({"large", "batch", "tag"})
    ->Args({0, 0, 0})
    ->Args({0, 64, 1})
    ->Args({1, 0, 0})  // the Listing 1 baseline
    ->Args({1, 0, 1})  // tagged layout, inline schedule
    ->Args({1, 64, 0}) // batched dispatch, no tags
    ->Args({1, 64, 1}); // full pipeline

// Args: group size, tag. (The group is the dispatcher batch.)
static void
BM_GroupPrefetch(benchmark::State &state)
{
    Dataset &d = large();
    sw::PipelineConfig cfg{.tagged = state.range(1) != 0};
    sw::GroupPrefetchProber prober(*d.index,
                                   unsigned(state.range(0)), cfg);
    u64 matches = 0;
    for (auto _ : state)
        matches = prober.probeAll(d.keys);
    reportTuples(state, d.keys, matches);
}
BENCHMARK(BM_GroupPrefetch)
    ->ArgNames({"G", "tag"})
    ->Args({4, 1})
    ->Args({8, 1})
    ->Args({16, 0})
    ->Args({16, 1})
    ->Args({32, 1});

// Args: width, batch, tag.
static void
BM_Amac(benchmark::State &state)
{
    Dataset &d = large();
    sw::AmacProber prober(*d.index, unsigned(state.range(0)),
                          cfgFromArgs(state, 1, 2));
    u64 matches = 0;
    for (auto _ : state)
        matches = prober.probeAll(d.keys);
    reportTuples(state, d.keys, matches);
}
BENCHMARK(BM_Amac)
    ->ArgNames({"W", "batch", "tag"})
    ->Args({2, 64, 1})
    ->Args({4, 64, 1})
    ->Args({8, 0, 1})  // interleaved walks, inline hashing
    ->Args({8, 64, 0}) // batched dispatch, no tags
    ->Args({8, 64, 1}) // the headline configuration
    ->Args({16, 64, 1});

// Args: width, batch, tag.
static void
BM_Coro(benchmark::State &state)
{
    Dataset &d = large();
    sw::CoroProber prober(*d.index, unsigned(state.range(0)),
                          cfgFromArgs(state, 1, 2));
    u64 matches = 0;
    for (auto _ : state)
        matches = prober.probeAll(d.keys);
    reportTuples(state, d.keys, matches);
}
BENCHMARK(BM_Coro)
    ->ArgNames({"W", "batch", "tag"})
    ->Args({4, 64, 1})
    ->Args({8, 64, 1})
    ->Args({16, 64, 1});

// Tag-filter isolation: every probe misses; the tagged pipeline
// rejects on the byte array without ever touching a bucket line.
// Args: tag.
static void
BM_ScalarMisses(benchmark::State &state)
{
    Dataset &d = large();
    sw::PipelineConfig cfg{.batch = 64,
                           .tagged = state.range(0) != 0};
    sw::ScalarProber prober(*d.index, cfg);
    u64 matches = 0;
    for (auto _ : state)
        matches = prober.probeAll(d.missKeys);
    reportTuples(state, d.missKeys, matches);
}
BENCHMARK(BM_ScalarMisses)->ArgNames({"tag"})->Arg(0)->Arg(1);

static void
BM_AmacMisses(benchmark::State &state)
{
    Dataset &d = large();
    sw::PipelineConfig cfg{.batch = 64,
                           .tagged = state.range(0) != 0};
    sw::AmacProber prober(*d.index, 8, cfg);
    u64 matches = 0;
    for (auto _ : state)
        matches = prober.probeAll(d.missKeys);
    reportTuples(state, d.missKeys, matches);
}
BENCHMARK(BM_AmacMisses)->ArgNames({"tag"})->Arg(0)->Arg(1);

// SIMD tag-filter isolation: the batched fingerprint sweep over a
// miss-heavy hash batch — the scalar kernel vs the cpuid-dispatched
// one (AVX2 tag-byte gathers; on a host without AVX2 both rows run
// the scalar path and read ~1x). The end-to-end effect on probes
// shows up in BM_ScalarMisses/tag:1, which rides this sweep inside
// probeBatch. Args: simd.
static void
BM_TagFilter(benchmark::State &state)
{
    Dataset &d = large();
    std::vector<u64> hashes(d.missKeys.size());
    d.index->hashBatch(d.missKeys, hashes);
    const std::size_t batch = db::HashIndex::kMaxProbeBatch;
    u64 bits[db::HashIndex::kMaxProbeBatch / 64];
    const bool simd = state.range(0) != 0;
    u64 survivors = 0;
    std::size_t base = 0;
    for (auto _ : state) {
        survivors +=
            simd ? d.index->tagFilterBatch(hashes.data() + base,
                                           batch, bits)
                 : d.index->tagFilterBatchScalar(
                       hashes.data() + base, batch, bits);
        base = (base + batch) % (hashes.size() - batch);
    }
    state.SetItemsProcessed(i64(state.iterations()) * i64(batch));
    benchmark::DoNotOptimize(survivors);
    benchmark::DoNotOptimize(bits);
}
BENCHMARK(BM_TagFilter)->ArgNames({"simd"})->Arg(0)->Arg(1);

// ---------------------------------------------------------------------------
// WalkerPool: one dispatcher thread feeding K walker threads off the
// shared window ring — the software analogue of scaling the paper's
// walker count. Count-only probes (no sink buffering) so the sweep
// measures pure probe throughput.
// ---------------------------------------------------------------------------

// Args: dataset (0 small / 1 large), K, W, tag, miss.
static void
BM_Pool(benchmark::State &state)
{
    Dataset &d = state.range(0) ? large() : small();
    const std::vector<u64> &keys =
        state.range(4) ? d.missKeys : d.keys;
    sw::PipelineConfig cfg{.batch = 64,
                           .tagged = state.range(3) != 0,
                           .walkers = unsigned(state.range(1))};
    sw::WalkerPool pool(*d.index, unsigned(state.range(2)), cfg);
    u64 matches = 0;
    for (auto _ : state)
        matches = pool.probeAll(keys);
    reportTuples(state, keys, matches);
}

/** Walker ladder: 1, 2, 4 always (so the K=1 baseline and the
 *  paper's 4-walker design point are recorded on every host), then
 *  powers of two up to the machine's hardware concurrency. */
static std::vector<int>
walkerLadder()
{
    std::vector<int> ks{1, 2, 4};
    for (int k = 8; unsigned(k) <= sw::WalkerPool::defaultWalkers();
         k *= 2)
        ks.push_back(k);
    return ks;
}

static void
poolArgs(benchmark::internal::Benchmark *b)
{
    // Small-dataset rows ride the CI smoke filter ('large:0') and
    // feed the bench-regression gate.
    for (int k : {1, 2, 4})
        b->Args({0, k, 8, 1, 0});
    // Large (DRAM-resident): the full hit/miss x tagged/untagged
    // scaling sweep, K = 1..hardware_concurrency.
    for (int k : walkerLadder())
        for (int miss : {0, 1})
            for (int tag : {0, 1})
                b->Args({1, k, 8, tag, miss});
}
BENCHMARK(BM_Pool)
    ->ArgNames({"large", "K", "W", "tag", "miss"})
    ->Apply(poolArgs)
    ->UseRealTime()
    ->MeasureProcessCPUTime();

// Args: K (coroutine engine point-check at the headline config).
static void
BM_PoolCoro(benchmark::State &state)
{
    Dataset &d = large();
    sw::PipelineConfig cfg{.batch = 64,
                           .tagged = true,
                           .walkers = unsigned(state.range(0))};
    sw::WalkerPool pool(*d.index, 8, cfg, sw::WalkerEngine::Coro);
    u64 matches = 0;
    for (auto _ : state)
        matches = pool.probeAll(d.keys);
    reportTuples(state, d.keys, matches);
}
BENCHMARK(BM_PoolCoro)
    ->ArgNames({"K"})
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->UseRealTime()
    ->MeasureProcessCPUTime();

/** BENCHMARK_MAIN, plus a default JSON results file so the perf
 *  trajectory is machine-readable from every run. */
int
main(int argc, char **argv)
{
    std::vector<char *> args(argv, argv + argc);
    std::string out = "--benchmark_out=BENCH_sw_walkers.json";
    std::string fmt = "--benchmark_out_format=json";
    bool has_out = false;
    for (int i = 1; i < argc; ++i)
        if (std::strcmp(argv[i], "--benchmark_out") == 0 ||
            std::strncmp(argv[i], "--benchmark_out=", 16) == 0)
            has_out = true;
    if (!has_out) {
        args.push_back(out.data());
        args.push_back(fmt.data());
    }
    int n = int(args.size());
    benchmark::Initialize(&n, args.data());
    if (benchmark::ReportUnrecognizedArguments(n, args.data()))
        return 1;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
}
