/**
 * @file
 * google-benchmark microbenchmarks for the software walkers
 * (Section 7's "insights applicable elsewhere", and the AMAC /
 * coroutine-interleaving line of work this paper seeded).
 *
 * On a DRAM-resident index the interleaved probers (group prefetch,
 * AMAC, coroutines) overlap cache misses across probes — the same
 * inter-key parallelism Widx exploits with hardware walkers — and
 * beat the scalar Listing 1 loop by integer factors on real hardware.
 */

#include <benchmark/benchmark.h>

#include <memory>

#include "common/arena.hh"
#include "common/rng.hh"
#include "swwalkers/coro.hh"
#include "swwalkers/probers.hh"
#include "workload/distributions.hh"

using namespace widx;

namespace {

/** Shared DRAM-resident dataset (built once). */
struct Dataset
{
    Arena arena;
    std::unique_ptr<db::HashIndex> index;
    std::vector<u64> keys;

    explicit Dataset(u64 tuples)
    {
        Rng rng(42);
        db::Column build("b", db::ValueKind::U64, arena, tuples);
        for (u64 k : wl::shuffledDenseKeys(tuples, rng))
            build.push(k);
        db::IndexSpec spec;
        spec.buckets = tuples;
        spec.hashFn = db::HashFn::monetdbRobust();
        index = std::make_unique<db::HashIndex>(spec, arena);
        index->buildFromColumn(build);
        keys = wl::uniformKeys(1u << 20, tuples, rng);
    }
};

Dataset &
large()
{
    static Dataset d(8u << 20); // ~384 MB footprint: DRAM-resident
    return d;
}

Dataset &
small()
{
    static Dataset d(4096); // L1/L2-resident
    return d;
}

void
reportTuples(benchmark::State &state, u64 matches)
{
    state.SetItemsProcessed(i64(state.iterations()) *
                            i64(large().keys.size()));
    benchmark::DoNotOptimize(matches);
}

} // namespace

static void
BM_Scalar(benchmark::State &state)
{
    Dataset &d = state.range(0) ? large() : small();
    sw::ScalarProber prober(*d.index);
    u64 matches = 0;
    for (auto _ : state)
        matches = prober.probeAll(d.keys, nullptr, nullptr);
    reportTuples(state, matches);
}
BENCHMARK(BM_Scalar)->Arg(0)->Arg(1);

static void
BM_GroupPrefetch(benchmark::State &state)
{
    Dataset &d = large();
    sw::GroupPrefetchProber prober(*d.index,
                                   unsigned(state.range(0)));
    u64 matches = 0;
    for (auto _ : state)
        matches = prober.probeAll(d.keys, nullptr, nullptr);
    reportTuples(state, matches);
}
BENCHMARK(BM_GroupPrefetch)->Arg(4)->Arg(8)->Arg(16)->Arg(32);

static void
BM_Amac(benchmark::State &state)
{
    Dataset &d = large();
    sw::AmacProber prober(*d.index, unsigned(state.range(0)));
    u64 matches = 0;
    for (auto _ : state)
        matches = prober.probeAll(d.keys, nullptr, nullptr);
    reportTuples(state, matches);
}
BENCHMARK(BM_Amac)->Arg(2)->Arg(4)->Arg(8)->Arg(16);

static void
BM_Coro(benchmark::State &state)
{
    Dataset &d = large();
    sw::CoroProber prober(*d.index, unsigned(state.range(0)));
    u64 matches = 0;
    for (auto _ : state)
        matches = prober.probeAll(d.keys, nullptr, nullptr);
    reportTuples(state, matches);
}
BENCHMARK(BM_Coro)->Arg(2)->Arg(4)->Arg(8)->Arg(16);

BENCHMARK_MAIN();
