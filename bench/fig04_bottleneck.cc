/**
 * @file
 * Regenerates Figure 4: the Section 3.2 accelerator bottleneck
 * analysis (Equations 1-5).
 *
 *  (a) L1-D accesses per cycle vs LLC miss ratio for 1-10 walkers;
 *      the port count (1 or 2) is the ceiling.
 *  (b) Outstanding L1-D misses vs walker count; 8-10 MSHRs cap the
 *      design at 4-5 walkers.
 *  (c) Walkers sustainable per memory controller (9 GB/s effective)
 *      vs LLC miss ratio.
 */

#include <cstdio>

#include "common/table_printer.hh"
#include "model/analytical.hh"

using namespace widx;
using model::ModelParams;

int
main()
{
    ModelParams p;

    std::printf("Model constants: hash %.1f cyc/key, walk %.1f-%.1f "
                "cyc/node (LLC miss 0..1)\n",
                model::hashCycles(p), model::walkNodeCycles(p, 0.0),
                model::walkNodeCycles(p, 1.0));

    // --- Figure 4a ------------------------------------------------------
    TablePrinter fig4a("Figure 4a: L1-D MemOps/cycle vs LLC miss "
                       "ratio (limit: ports)");
    fig4a.header({"LLC miss", "1", "2", "4", "8", "10"});
    for (int m = 0; m <= 10; ++m) {
        const double miss = m / 10.0;
        std::vector<std::string> row{TablePrinter::fmt(miss, 1)};
        for (unsigned n : {1u, 2u, 4u, 8u, 10u})
            row.push_back(TablePrinter::fmt(
                model::memOpsPerCycle(p, miss, n)));
        fig4a.addRow(row);
    }
    fig4a.print();
    std::printf("Max walkers within 1 L1 port at LLC miss 0.1: %u "
                "(paper: single-ported L1 bottlenecks beyond ~6); "
                "within 2 ports: %u (paper: 2 ports support 10)\n",
                model::maxWalkersByL1Bandwidth(
                    {.l1Ports = 1.0}, 0.1),
                model::maxWalkersByL1Bandwidth(p, 0.1));

    // --- Figure 4b ------------------------------------------------------
    TablePrinter fig4b("Figure 4b: outstanding L1 misses vs walkers "
                       "(limit: MSHRs)");
    fig4b.header({"Walkers", "Outstanding misses"});
    for (unsigned n = 1; n <= 10; ++n)
        fig4b.addRow({std::to_string(n),
                      TablePrinter::fmt(
                          model::outstandingMisses(p, n), 0)});
    fig4b.print();
    std::printf("Max walkers within %d MSHRs: %u (paper: 8-10 MSHRs "
                "limit to 4-5 walkers)\n",
                int(p.mshrs), model::maxWalkersByMshrs(p));

    // --- Figure 4c ------------------------------------------------------
    TablePrinter fig4c("Figure 4c: walkers per memory controller vs "
                       "LLC miss ratio");
    fig4c.header({"LLC miss", "Walkers/MC"});
    for (int m = 1; m <= 10; ++m) {
        const double miss = m / 10.0;
        fig4c.addRow({TablePrinter::fmt(miss, 1),
                      TablePrinter::fmt(
                          model::walkersPerMc(p, miss), 1)});
    }
    fig4c.print();
    std::printf("Paper anchors: ~8 walkers/MC at low miss ratios, "
                "~4-5 at miss ratio 1.0\n");
    return 0;
}
