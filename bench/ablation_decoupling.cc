/**
 * @file
 * Ablation: the Figure 3 design-point evolution on the Medium and
 * Large join kernels.
 *
 *  (a) baseline: one combined hash+walk context;
 *  (b) parallel walkers: N combined contexts (no decoupling);
 *  (c) decoupled: N walkers, each fed by its own hashing unit;
 *  (d) shared dispatcher: N walkers fed by one dispatcher (Widx).
 *
 * Paper motivation (Section 3.1): decoupling key hashing from the
 * walk takes hashing off the critical path — reducing time per
 * traversal by 29% on average — and one dispatcher suffices for four
 * walkers, saving hardware versus per-walker hashing units.
 */

#include <cstdio>

#include "accel/engine.hh"
#include "common/table_printer.hh"
#include "workload/join_kernel.hh"

using namespace widx;

namespace {

double
cyclesPerTuple(const wl::KernelDataset &data, unsigned walkers,
               bool shared, bool combined)
{
    accel::OffloadSpec spec;
    spec.index = data.index.get();
    spec.probeKeys = data.probeKeys.get();
    spec.outBase = data.outBase();
    accel::EngineConfig cfg;
    cfg.numWalkers = walkers;
    cfg.sharedDispatcher = shared;
    accel::Engine engine(spec, cfg);
    accel::EngineResult r =
        combined ? engine.runCombined(walkers) : engine.run();
    return r.cyclesPerTuple;
}

} // namespace

int
main()
{
    TablePrinter tbl("Figure 3 design points: cycles/tuple "
                     "(join kernel)");
    tbl.header({"Index", "Walkers", "(a/b) combined",
                "(c) decoupled/walker", "(d) shared dispatcher",
                "decoupling gain"});

    for (const wl::KernelSize &size :
         {wl::KernelSize::medium(), wl::KernelSize::large()}) {
        wl::KernelDataset data(size);
        for (unsigned w : {1u, 2u, 4u}) {
            double combined = cyclesPerTuple(data, w, true, true);
            double decoupled = cyclesPerTuple(data, w, false, false);
            double shared = cyclesPerTuple(data, w, true, false);
            tbl.addRow({size.name, std::to_string(w),
                        TablePrinter::fmt(combined, 1),
                        TablePrinter::fmt(decoupled, 1),
                        TablePrinter::fmt(shared, 1),
                        TablePrinter::fmtPct(1.0 -
                                             decoupled / combined)});
        }
    }
    tbl.print();
    std::printf("Paper: decoupling reduces time per traversal by "
                "~29%% on average; (d) should track (c) closely "
                "(one dispatcher feeds four walkers).\n");
    return 0;
}
