/**
 * @file
 * Regenerates Figure 10 (indexing speedup of Widx over the OoO core
 * on the DSS queries) and the Section 6.2 whole-query projection.
 *
 * Paper anchors: 1.5x-5.5x with 4 walkers, geometric mean 3.1x;
 * maximum on TPC-H q20 (large index, double keys with expensive
 * hashing), minimum on TPC-DS q37 (L1-resident index). Projected
 * whole-query speedup: geometric mean 1.5x, up to 3.1x on q17 (94%
 * of execution is indexing), minimum ~1.1x on q37.
 */

#include <cstdio>
#include <vector>

#include "accel/engine.hh"
#include "common/stats.hh"
#include "common/table_printer.hh"
#include "cpu/probe_run.hh"
#include "workload/dss_queries.hh"

using namespace widx;

int
main()
{
    TablePrinter fig10("Figure 10: indexing speedup over OoO "
                       "(DSS queries)");
    fig10.header({"Query", "Suite", "1 walker", "2 walkers",
                  "4 walkers", "Query-level (4w)"});

    std::vector<double> speedups_4w;
    std::vector<double> query_level;
    for (const wl::DssQuerySpec &spec : wl::dssSimQueries()) {
        wl::DssDataset data(spec);

        cpu::ProbeRunConfig base;
        base.core = cpu::CoreParams::ooo();
        cpu::CoreResult ooo =
            cpu::runProbeLoop(*data.index, *data.probeKeys, base);

        double s[3] = {0, 0, 0};
        int i = 0;
        for (unsigned w : {1u, 2u, 4u}) {
            accel::OffloadSpec off;
            off.index = data.index.get();
            off.probeKeys = data.probeKeys.get();
            off.outBase = data.outBase();
            accel::EngineConfig cfg;
            cfg.numWalkers = w;
            accel::EngineResult r = accel::runOffload(off, cfg);
            s[i++] = ooo.cyclesPerTuple / r.cyclesPerTuple;
        }
        speedups_4w.push_back(s[2]);

        // Section 6.2: Amdahl projection onto the whole query using
        // the Fig. 2a indexing fraction.
        const double f = spec.indexFraction;
        const double proj = 1.0 / ((1.0 - f) + f / s[2]);
        query_level.push_back(proj);

        fig10.addRow({spec.name, spec.suite, TablePrinter::fmt(s[0]),
                      TablePrinter::fmt(s[1]), TablePrinter::fmt(s[2]),
                      TablePrinter::fmt(proj)});
    }
    fig10.print();

    std::printf("Indexing speedup, 4 walkers: geomean %.2fx "
                "(paper 3.1x), range %.2fx-%.2fx (paper 1.5x-5.5x)\n",
                geomean(speedups_4w),
                *std::min_element(speedups_4w.begin(),
                                  speedups_4w.end()),
                *std::max_element(speedups_4w.begin(),
                                  speedups_4w.end()));
    std::printf("Query-level projection: geomean %.2fx (paper 1.5x), "
                "max %.2fx (paper 3.1x on qry17)\n",
                geomean(query_level),
                *std::max_element(query_level.begin(),
                                  query_level.end()));
    return 0;
}
