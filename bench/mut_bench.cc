/**
 * @file
 * Mixed read/write open-loop ladder over a live-mutable service:
 * the tail-latency experiment latency_bench runs read-only, with a
 * fraction of arrivals replaced by Upsert mutations so every read
 * percentile is measured *under writes* — epoch pins on the probe
 * path, per-shard writer bursts, and the occasional incremental
 * rebuild all priced into the same histogram the read-only ladder
 * pins.
 *
 *   $ ./mut_bench [--smoke] [--repeat=N] [--out=PATH]
 *
 * Results land in BENCH_mut.json in the shared open-loop JSON shape
 * (ol_json.hh), so tools/bench_regression.py schema-validates and
 * gates the Mut_OL rows next to the read-only and socket ladders.
 *
 * Row design: two mixes — 95/5 (the OLTP-ish shape the live-index
 * line argues about) and 50/50 (writer-dominated stress) — across a
 * rate ladder. Writes are Upserts over keys already in the index,
 * so the working set stays bounded across the run and every attempt
 * sees the same index shape. The dataset builds at load factor
 * 1.0, so each attempt's warm-up write sweep fires every shard's
 * watermark rebuild *before* the measured window — the swap path
 * runs end-to-end per attempt, but the histogram prices
 * steady-state writes (epoch pins, writer bursts, limbo
 * reclamation), not the one-time stalls of this dataset's initial
 * shape. The lowest-rate 95/5 row is the CI gate row (low
 * utilization: it measures the read floor under writes, not
 * queueing). Each row keeps the best-of-N attempt by p99 to shed
 * scheduler spikes.
 */

#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "common/arena.hh"
#include "common/rng.hh"
#include "ol_json.hh"
#include "service/open_loop_driver.hh"
#include "workload/distributions.hh"

using namespace widx;
using bench::OlRow;

namespace {

constexpr std::size_t kKeysPerRequest = 32;

struct Mix
{
    const char *name;
    u64 writeEvery; ///< every Nth arrival is an Upsert
};

} // namespace

int
main(int argc, char **argv)
{
    bool smoke = false;
    int repeat = 0; // 0 = default (3: best-of damps scheduler noise)
    const char *out = "BENCH_mut.json";
    std::string outBuf;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--smoke") == 0) {
            smoke = true;
        } else if (std::strncmp(argv[i], "--out=", 6) == 0) {
            outBuf = argv[i] + 6;
            out = outBuf.c_str();
        } else if (std::strncmp(argv[i], "--repeat=", 9) == 0) {
            repeat = std::atoi(argv[i] + 9);
        } else {
            std::fprintf(
                stderr,
                "usage: %s [--smoke] [--repeat=N] [--out=PATH]\n",
                argv[0]);
            return 1;
        }
    }
    if (repeat < 1)
        repeat = 3;

    // Dataset: same shape as latency_bench so Mut_OL reads compare
    // directly to the read-only OL_Latency rows — the per-row delta
    // is the cost of live mutability under this write fraction.
    const u64 tuples = smoke ? u64(64) << 10 : u64(1) << 20;
    Arena arena;
    Rng rng(42);
    db::Column build("b", db::ValueKind::U64, arena, tuples);
    for (u64 k : wl::shuffledDenseKeys(tuples, rng))
        build.push(k);
    db::IndexSpec spec;
    spec.buckets = tuples;
    spec.hashFn = db::HashFn::monetdbRobust();

    // Probe pool over the resident keyspace; the parallel payload
    // pool serves the Upsert arrivals (same lifetime as the keys —
    // SubmitOptions::payloads must live until completion).
    std::vector<u64> pool = wl::uniformKeys(1u << 20, tuples, rng);
    std::vector<u64> pays(pool.size());
    for (std::size_t i = 0; i < pool.size(); ++i)
        pays[i] = pool[i] ^ 0x5a5a5a5au;

    const std::vector<double> rates =
        smoke ? std::vector<double>{4000.0, 8000.0}
              : std::vector<double>{4000.0, 16000.0, 40000.0};
    const u64 requests = smoke ? 800 : 4000;
    const u64 sloNs = 50'000'000; // goodput = Ok within 50 ms
    const Mix mixes[] = {{"95r5w", 20}, {"50r50w", 2}};

    std::vector<OlRow> rows;
    char name[160];
    for (const Mix &mix : mixes) {
        for (double rate : rates) {
            sw::OpenLoopOptions opt;
            opt.ratePerSec = rate;
            opt.requests = requests;
            opt.keysPerRequest = kKeysPerRequest;
            opt.arrivals = sw::ArrivalProcess::Poisson;
            opt.kind = sw::RequestKind::Count; // the read side
            opt.sloNs = sloNs;
            std::snprintf(name, sizeof(name),
                          "Mut_OL/mix:%s/K:1/rate:%d", mix.name,
                          int(rate));
            OlRow best;
            u64 mutations = 0, rebuilds = 0;
            for (int r = 0; r < repeat; ++r) {
                // Fresh service per attempt: every attempt mutates
                // from the same built index, so the watermark
                // rebuilds land identically instead of compounding.
                sw::ServiceConfig cfg;
                cfg.shards = 4;
                cfg.walkers = 1; // the portable row
                cfg.mutation.enabled = true;
                sw::IndexService service(build, spec, cfg);
                // Warm-up: sweep Upserts until every shard has
                // crossed its watermark and rebuilt (see file
                // comment), then clear the per-kind stats so the
                // svc breakdown covers the measured window only.
                for (std::size_t off = 0;
                     service.stats().rebuilds < cfg.shards &&
                     off + 256 <= pool.size();
                     off += 256) {
                    sw::SubmitOptions sub;
                    sub.payloads =
                        std::span<const u64>(pays.data() + off, 256);
                    (void)service
                        .submit(sw::RequestKind::Upsert,
                                std::span<const u64>(
                                    pool.data() + off, 256),
                                sub)
                        .get();
                }
                service.resetLatencyStats();
                opt.seed = u64(r + 1);
                auto cq = std::make_shared<sw::CompletionQueue>();
                sw::OpenLoopReport rep = sw::detail::runOpenLoopOver(
                    cq,
                    [&](u64 tag, std::span<const u64> keys,
                        u64 deadlineAbs) {
                        sw::SubmitOptions sub;
                        sub.deadlineNs = deadlineAbs;
                        if (tag % mix.writeEvery == 0) {
                            sub.payloads = std::span<const u64>(
                                pays.data() +
                                    (keys.data() - pool.data()),
                                keys.size());
                            service.submitAsync(
                                sw::RequestKind::Upsert, keys, sub,
                                cq, tag);
                        } else {
                            service.submitAsync(opt.kind, keys, sub,
                                                cq, tag);
                        }
                    },
                    pool, opt);
                const sw::ServiceStats st = service.stats();
                sw::KindLatency svc = st.latencyFor(opt.kind);
                const bool better =
                    rep.latency.p99Ns < best.rep.latency.p99Ns;
                if (r == 0 || better) {
                    best = OlRow{name, std::move(rep), svc};
                    mutations = st.mutations;
                    rebuilds = st.rebuilds;
                }
            }
            rows.push_back(std::move(best));
            const OlRow &r = rows.back();
            std::printf(
                "%-34s p50 %7.1fus  p99 %7.1fus  p99.9 %7.1fus  "
                "achieved %8.0f/s  good %8.0f/s  mutKeys %llu  "
                "rebuilds %llu\n",
                r.name.c_str(), double(r.rep.latency.p50Ns) / 1e3,
                double(r.rep.latency.p99Ns) / 1e3,
                double(r.rep.latency.p999Ns) / 1e3,
                r.rep.achievedRate, r.rep.goodputRate,
                (unsigned long long)mutations,
                (unsigned long long)rebuilds);
        }
    }

    bench::writeOlJson(out, "mut_bench", kKeysPerRequest, rows,
                       smoke);
    std::printf("wrote %zu rows to %s\n", rows.size(), out);
    return 0;
}
