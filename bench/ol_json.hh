/**
 * @file
 * Shared JSON emitter for the open-loop benchmark family
 * (latency_bench, net_bench): one row per open-loop run, written in
 * google-benchmark-compatible shape extended with the
 * p50_ns/p99_ns/goodput fields tools/bench_regression.py
 * schema-validates and gates. Factored here so the local and the
 * socket ladder emit byte-compatible files from one writer.
 */

#ifndef WIDX_BENCH_OL_JSON_HH
#define WIDX_BENCH_OL_JSON_HH

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "service/open_loop.hh"

namespace widx::bench {

struct OlRow
{
    std::string name;
    sw::OpenLoopReport rep;
    sw::KindLatency svc; ///< service-side per-kind breakdown
};

inline void
writeOlJson(const char *path, const char *executable,
            std::size_t keysPerRequest,
            const std::vector<OlRow> &rows, bool smoke)
{
    FILE *f = std::fopen(path, "w");
    if (!f) {
        std::fprintf(stderr, "cannot open %s for writing\n", path);
        std::exit(1);
    }
    std::fprintf(f, "{\n  \"context\": {\n"
                    "    \"executable\": \"%s\",\n"
                    "    \"smoke\": %s,\n"
                    "    \"keys_per_request\": %zu\n  },\n"
                    "  \"benchmarks\": [\n",
                 executable, smoke ? "true" : "false",
                 keysPerRequest);
    for (std::size_t i = 0; i < rows.size(); ++i) {
        const OlRow &r = rows[i];
        const sw::OpenLoopReport &p = r.rep;
        const LatencySnapshot &l = p.latency;
        std::fprintf(
            f,
            "    {\n"
            "      \"name\": \"%s\",\n"
            "      \"run_type\": \"iteration\",\n"
            "      \"scheduled\": %llu,\n"
            "      \"submitted\": %llu,\n"
            "      \"shed_client_cap\": %llu,\n"
            "      \"rejected\": %llu,\n"
            "      \"expired\": %llu,\n"
            "      \"timed_out\": %llu,\n"
            "      \"completed\": %llu,\n"
            "      \"goodput\": %llu,\n"
            "      \"goodput_fraction\": %.4f,\n"
            "      \"offered_rate\": %.1f,\n"
            "      \"achieved_rate\": %.1f,\n"
            "      \"goodput_rate\": %.1f,\n"
            "      \"items_per_second\": %.1f,\n"
            "      \"p50_ns\": %llu,\n"
            "      \"p90_ns\": %llu,\n"
            "      \"p99_ns\": %llu,\n"
            "      \"p999_ns\": %llu,\n"
            "      \"max_ns\": %llu,\n"
            "      \"mean_ns\": %.1f,\n"
            "      \"queue_mean_ns\": %.1f,\n"
            "      \"queue_p99_ns\": %llu,\n"
            "      \"drain_mean_ns\": %.1f,\n"
            "      \"drain_p99_ns\": %llu\n"
            "    }%s\n",
            r.name.c_str(), (unsigned long long)p.scheduled,
            (unsigned long long)p.submitted,
            (unsigned long long)p.shedClientCap,
            (unsigned long long)p.rejected,
            (unsigned long long)p.expired,
            (unsigned long long)p.timedOut,
            (unsigned long long)p.completed,
            (unsigned long long)p.goodput,
            p.scheduled ? double(p.goodput) / double(p.scheduled)
                        : 0.0,
            p.offeredRate, p.achievedRate, p.goodputRate,
            p.achievedRate * double(keysPerRequest),
            (unsigned long long)l.p50Ns, (unsigned long long)l.p90Ns,
            (unsigned long long)l.p99Ns,
            (unsigned long long)l.p999Ns,
            (unsigned long long)l.maxNs, l.meanNs(),
            r.svc.queueWait.meanNs(),
            (unsigned long long)r.svc.queueWait.p99Ns,
            r.svc.drainTime.meanNs(),
            (unsigned long long)r.svc.drainTime.p99Ns,
            i + 1 < rows.size() ? "," : "");
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
}

} // namespace widx::bench

#endif // WIDX_BENCH_OL_JSON_HH
