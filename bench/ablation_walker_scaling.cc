/**
 * @file
 * Ablation: walker-count scaling beyond the paper's four, and MSHR
 * sensitivity — validating the Section 3.2 claim that L1-D MSHRs
 * (8-10 in practical designs) cap the useful walker count at 4-5.
 *
 * A second table puts the *measured* software walker pool next to
 * the simulated Widx points: sw::WalkerPool runs K real walker
 * threads (each an AMAC ring of 8 probe machines) off one shared
 * dispatch window, so its K-scaling curve is the software analogue
 * of the hardware walker count — compare its K=4/K=1 speedup with
 * the simulated 4-walker/1-walker cycles-per-tuple ratio.
 */

#include <chrono>
#include <cstdio>
#include <span>
#include <thread>

#include "accel/engine.hh"
#include "common/table_printer.hh"
#include "swwalkers/walker_pool.hh"
#include "workload/join_kernel.hh"

using namespace widx;

namespace {

/** Measured pool throughput (M probes/s) at K walker threads. */
double
poolMProbesPerSec(const wl::KernelDataset &data, unsigned walkers)
{
    const std::span<const u64> keys{
        reinterpret_cast<const u64 *>(
            std::uintptr_t(data.probeKeys->baseAddr())),
        data.probeKeys->size()};
    sw::PipelineConfig cfg;
    cfg.walkers = walkers;
    sw::WalkerPool pool(*data.index, 8, cfg);
    pool.probeAll(keys); // warm the index + page tables
    const int reps = 5;
    auto start = std::chrono::steady_clock::now();
    for (int r = 0; r < reps; ++r)
        pool.probeAll(keys);
    const double secs =
        std::chrono::duration<double>(
            std::chrono::steady_clock::now() - start)
            .count();
    return double(keys.size()) * reps / secs / 1e6;
}

} // namespace

int
main()
{
    wl::KernelDataset data(wl::KernelSize::large());

    TablePrinter scale("Walker scaling on the Large kernel "
                       "(cycles/tuple)");
    scale.header({"Walkers", "10 MSHRs (Table 2)", "6 MSHRs",
                  "20 MSHRs"});
    for (unsigned w : {1u, 2u, 4u, 6u, 8u}) {
        std::vector<std::string> row{std::to_string(w)};
        for (u32 mshrs : {10u, 6u, 20u}) {
            accel::OffloadSpec spec;
            spec.index = data.index.get();
            spec.probeKeys = data.probeKeys.get();
            spec.outBase = data.outBase();
            accel::EngineConfig cfg;
            cfg.numWalkers = w;
            cfg.memParams.l1Mshrs = mshrs;
            accel::EngineResult r = accel::runOffload(spec, cfg);
            row.push_back(TablePrinter::fmt(r.cyclesPerTuple, 1));
        }
        scale.addRow(row);
    }
    scale.print();
    std::printf("Paper (Fig. 4b): outstanding misses grow ~2 per "
                "walker, so 8-10 MSHRs support only 4-5 walkers; "
                "scaling past 4 should flatten unless MSHRs grow "
                "too.\n\n");

    // Simulated 4-walker/1-walker speedup at the Table 2 config,
    // for comparison against the measured software pool.
    double sim_cpt[2] = {0.0, 0.0};
    for (int p = 0; p < 2; ++p) {
        accel::OffloadSpec spec;
        spec.index = data.index.get();
        spec.probeKeys = data.probeKeys.get();
        spec.outBase = data.outBase();
        accel::EngineConfig cfg;
        cfg.numWalkers = p == 0 ? 1 : 4;
        accel::EngineResult r = accel::runOffload(spec, cfg);
        sim_cpt[p] = r.cyclesPerTuple;
    }

    TablePrinter sw_scale(
        "Measured software walker pool on the Large kernel "
        "(AMAC W=8, tagged, shared dispatch window)");
    sw_scale.header({"Walker threads", "M probes/s",
                     "Speedup vs K=1"});
    const double base = poolMProbesPerSec(data, 1);
    for (unsigned k : {1u, 2u, 4u, 8u}) {
        const double mps = k == 1 ? base : poolMProbesPerSec(data, k);
        sw_scale.addRow({std::to_string(k), TablePrinter::fmt(mps, 2),
                         TablePrinter::fmt(mps / base, 2) + "x"});
    }
    sw_scale.print();
    std::printf(
        "Simulated Widx 4-walker point (Table 2 config): %.1f -> "
        "%.1f cycles/tuple = %.2fx over 1 walker. Host has %u "
        "hardware threads; the software curve saturates once K "
        "walker threads exhaust either the cores or the aggregate "
        "MSHR-bound MLP, mirroring the Fig. 4b argument.\n",
        sim_cpt[0], sim_cpt[1], sim_cpt[0] / sim_cpt[1],
        std::thread::hardware_concurrency());
    return 0;
}
