/**
 * @file
 * Ablation: walker-count scaling beyond the paper's four, and MSHR
 * sensitivity — validating the Section 3.2 claim that L1-D MSHRs
 * (8-10 in practical designs) cap the useful walker count at 4-5.
 */

#include <cstdio>

#include "accel/engine.hh"
#include "common/table_printer.hh"
#include "workload/join_kernel.hh"

using namespace widx;

int
main()
{
    wl::KernelDataset data(wl::KernelSize::large());

    TablePrinter scale("Walker scaling on the Large kernel "
                       "(cycles/tuple)");
    scale.header({"Walkers", "10 MSHRs (Table 2)", "6 MSHRs",
                  "20 MSHRs"});
    for (unsigned w : {1u, 2u, 4u, 6u, 8u}) {
        std::vector<std::string> row{std::to_string(w)};
        for (u32 mshrs : {10u, 6u, 20u}) {
            accel::OffloadSpec spec;
            spec.index = data.index.get();
            spec.probeKeys = data.probeKeys.get();
            spec.outBase = data.outBase();
            accel::EngineConfig cfg;
            cfg.numWalkers = w;
            cfg.memParams.l1Mshrs = mshrs;
            accel::EngineResult r = accel::runOffload(spec, cfg);
            row.push_back(TablePrinter::fmt(r.cyclesPerTuple, 1));
        }
        scale.addRow(row);
    }
    scale.print();
    std::printf("Paper (Fig. 4b): outstanding misses grow ~2 per "
                "walker, so 8-10 MSHRs support only 4-5 walkers; "
                "scaling past 4 should flatten unless MSHRs grow "
                "too.\n");
    return 0;
}
