/**
 * @file
 * Ablation (Section 7 context): hash join versus sort-merge join on
 * the host, over build-side sizes. The paper cites Balkesen et al.:
 * "hash join clearly outperforms the sort-merge join" — which is why
 * accelerating hash-index probes (rather than SIMD sorting) is the
 * high-utility target.
 */

#include <cstdio>

#include "common/arena.hh"
#include "common/rng.hh"
#include "common/table_printer.hh"
#include "db/hash_join.hh"
#include "db/sort.hh"
#include "workload/distributions.hh"

using namespace widx;

int
main()
{
    TablePrinter tbl("Hash join vs sort-merge join (host wall "
                     "clock)");
    tbl.header({"Build rows", "Probe rows", "Hash join (ms)",
                "Sort-merge (ms)", "Hash advantage"});

    Rng rng(7);
    for (u64 rows : {100000ull, 400000ull, 1600000ull}) {
        Arena arena;
        const u64 probes = 4 * rows;
        db::Column build("b", db::ValueKind::U64, arena, rows);
        db::Column probe("p", db::ValueKind::U64, arena, probes);
        for (u64 k : wl::shuffledDenseKeys(rows, rng))
            build.push(k);
        for (u64 k : wl::uniformKeys(probes, rows, rng))
            probe.push(k);

        db::IndexSpec spec;
        spec.buckets = rows;
        spec.hashFn = db::HashFn::monetdbRobust();
        db::JoinResult hj =
            db::hashJoin(build, probe, spec, arena, false);
        db::JoinResult smj = db::sortMergeJoin(build, probe, false);
        fatal_if(hj.matches != smj.matches,
                 "join results disagree: %llu vs %llu",
                 (unsigned long long)hj.matches,
                 (unsigned long long)smj.matches);

        const double hj_ms =
            (hj.buildSeconds + hj.probeSeconds) * 1e3;
        const double smj_ms =
            (smj.buildSeconds + smj.probeSeconds) * 1e3;
        tbl.addRow({TablePrinter::fmtInt(rows),
                    TablePrinter::fmtInt(probes),
                    TablePrinter::fmt(hj_ms, 1),
                    TablePrinter::fmt(smj_ms, 1),
                    TablePrinter::fmt(smj_ms / hj_ms, 1) + "x"});
    }
    tbl.print();
    return 0;
}
