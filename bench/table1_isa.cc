/**
 * @file
 * Regenerates Table 1: the Widx ISA with per-unit availability, and
 * audits the generated unit programs against it — every instruction a
 * generated dispatcher/walker/producer uses must be legal for its
 * unit, and each fused-shift instruction must appear where the paper
 * places it.
 */

#include <cstdio>

#include "accel/codegen.hh"
#include "common/arena.hh"
#include "common/table_printer.hh"
#include "workload/join_kernel.hh"

using namespace widx;
using isa::Opcode;
using isa::UnitKind;

int
main()
{
    TablePrinter t1("Table 1: Widx ISA (H = dispatcher, W = walker, "
                    "P = producer)");
    t1.header({"Instruction", "H", "W", "P"});
    for (unsigned op = 0; op < unsigned(Opcode::NumOpcodes); ++op) {
        auto mark = [&](UnitKind u) {
            return isa::legalFor(Opcode(op), u) ? "X" : "";
        };
        t1.addRow({isa::opcodeName(Opcode(op)),
                   mark(UnitKind::Dispatcher), mark(UnitKind::Walker),
                   mark(UnitKind::Producer)});
    }
    t1.print();

    // Audit the schema-generated programs.
    wl::KernelDataset data(wl::KernelSize::small());
    accel::OffloadSpec spec;
    spec.index = data.index.get();
    spec.probeKeys = data.probeKeys.get();
    spec.outBase = data.outBase();

    struct Gen
    {
        const char *what;
        isa::Program prog;
    };
    std::vector<Gen> gens;
    gens.push_back({"dispatcher",
                    accel::generateDispatcher(spec, 0, 1)});
    gens.push_back({"walker", accel::generateWalker(spec)});
    gens.push_back({"producer", accel::generateProducer(spec)});

    TablePrinter audit("Generated program audit");
    audit.header({"Program", "Unit", "Instructions", "Loads",
                  "Stores", "Fused-shift", "Valid"});
    for (const Gen &g : gens) {
        std::string err;
        unsigned fused = g.prog.countOpcode(Opcode::ADD_SHF) +
                         g.prog.countOpcode(Opcode::AND_SHF) +
                         g.prog.countOpcode(Opcode::XOR_SHF);
        audit.addRow({g.what, isa::unitKindName(g.prog.unit()),
                      std::to_string(g.prog.size()),
                      std::to_string(g.prog.countOpcode(Opcode::LD)),
                      std::to_string(g.prog.countOpcode(Opcode::ST)),
                      std::to_string(fused),
                      g.prog.validate(err) ? "yes" : "NO"});
    }
    audit.print();

    std::printf("\nGenerated dispatcher (Listing 1 hash):\n%s\n",
                gens[0].prog.disassemble().c_str());
    std::printf("Generated walker:\n%s\n",
                gens[1].prog.disassemble().c_str());
    std::printf("Generated producer:\n%s\n",
                gens[2].prog.disassemble().c_str());
    return 0;
}
