/**
 * @file
 * Regenerates Table 2 (evaluation parameters) from the live defaults
 * of the simulator, plus the Section 6.3 synthesis constants (area
 * and power) used by the energy model.
 */

#include <cstdio>

#include "common/table_printer.hh"
#include "cpu/core_model.hh"
#include "energy/energy.hh"
#include "sim/params.hh"

using namespace widx;

int
main()
{
    sim::Params p;
    cpu::CoreParams ooo = cpu::CoreParams::ooo();
    cpu::CoreParams io = cpu::CoreParams::inorder();

    TablePrinter t2("Table 2: evaluation parameters (live defaults)");
    t2.header({"Parameter", "Value"});
    char buf[128];
    std::snprintf(buf, sizeof(buf), "40nm, %.0f GHz", p.clockGhz);
    t2.addRow({"Technology", buf});
    t2.addRow({"CMP Features", "4 cores"});
    std::snprintf(buf, sizeof(buf),
                  "In-order (Cortex A8-like): %u-wide", io.width);
    t2.addRow({"Core Types", buf});
    std::snprintf(buf, sizeof(buf),
                  "OoO (Xeon-like): %u-wide, %u-entry ROB", ooo.width,
                  ooo.robEntries);
    t2.addRow({"", buf});
    std::snprintf(buf, sizeof(buf),
                  "%u KB, split, %u ports, 64B blocks, %u MSHRs, "
                  "%llu-cycle load-to-use",
                  p.l1Bytes / 1024, p.l1Ports, p.l1Mshrs,
                  (unsigned long long)p.l1Latency);
    t2.addRow({"L1-I/D Caches", buf});
    std::snprintf(buf, sizeof(buf), "%u MB, %llu-cycle hit latency",
                  p.llcBytes / (1024 * 1024),
                  (unsigned long long)p.llcLatency);
    t2.addRow({"LLC", buf});
    std::snprintf(buf, sizeof(buf),
                  "%u in-flight translations, %u entries, %llu MB "
                  "pages",
                  p.tlbMaxInflightWalks, p.tlbEntries,
                  (unsigned long long)(p.pageBytes / (1024 * 1024)));
    t2.addRow({"TLB", buf});
    std::snprintf(buf, sizeof(buf), "Crossbar, %llu-cycle latency",
                  (unsigned long long)p.xbarLatency);
    t2.addRow({"Interconnect", buf});
    std::snprintf(buf, sizeof(buf),
                  "%u MCs, BW: %.1f GB/s, %llu-cycle (45ns) access "
                  "latency, %llu cycles/block",
                  p.numMemCtrls, p.memCtrlGBps,
                  (unsigned long long)p.dramLatency,
                  (unsigned long long)p.memCtrlCyclesPerBlock());
    t2.addRow({"Main Memory", buf});
    t2.print();

    energy::AreaConstants a;
    energy::EnergyParams ep;
    TablePrinter area("Section 6.3: synthesis area / power constants");
    area.header({"Component", "Area (mm2)", "Power (W)"});
    area.addRow({"Widx unit (w/ 2-entry queues)",
                 TablePrinter::fmt(a.widxUnitMm2, 3),
                 TablePrinter::fmt(a.widxUnitWatts, 3)});
    area.addRow({"Widx x6 (disp + 4 walkers + producer)",
                 TablePrinter::fmt(a.widxSixUnitsMm2, 2),
                 TablePrinter::fmt(a.widxSixUnitsWatts, 3)});
    area.addRow({"ARM Cortex-A8-like core (w/ L1)",
                 TablePrinter::fmt(a.cortexA8Mm2, 1),
                 TablePrinter::fmt(a.cortexA8Watts, 3)});
    area.addRow({"OoO core (nominal / idle)", "-",
                 TablePrinter::fmt(ep.oooWatts, 1) + " / " +
                     TablePrinter::fmt(
                         ep.oooWatts * ep.idleFraction, 2)});
    area.print();

    std::printf("Widx area vs Cortex-A8: %.0f%% (paper: 18%%)\n",
                a.widxVsA8AreaFraction() * 100.0);
    return 0;
}
