/**
 * @file
 * Regenerates Figure 11: indexing runtime, energy, and energy-delay
 * of OoO / in-order / Widx-on-OoO, normalized to the OoO core,
 * averaged over the DSS queries.
 *
 * Paper anchors: the in-order core is ~2.2x slower than OoO but uses
 * 86% less energy; Widx with the OoO host idling cuts energy by 83%
 * while also being ~3x faster, improving energy-delay by 17.5x over
 * OoO and 5.5x over in-order.
 */

#include <cstdio>
#include <vector>

#include "accel/engine.hh"
#include "common/stats.hh"
#include "common/table_printer.hh"
#include "cpu/probe_run.hh"
#include "energy/energy.hh"
#include "workload/dss_queries.hh"

using namespace widx;
using energy::Design;

int
main()
{
    energy::EnergyParams ep;

    std::vector<double> rt_io;
    std::vector<double> rt_wx;
    std::vector<double> en_io;
    std::vector<double> en_wx;
    std::vector<double> edp_io;
    std::vector<double> edp_wx;

    for (const wl::DssQuerySpec &spec : wl::dssSimQueries()) {
        wl::DssDataset data(spec);

        cpu::ProbeRunConfig cfg;
        cfg.core = cpu::CoreParams::ooo();
        cpu::CoreResult ooo =
            cpu::runProbeLoop(*data.index, *data.probeKeys, cfg);
        cfg.core = cpu::CoreParams::inorder();
        cpu::CoreResult inord =
            cpu::runProbeLoop(*data.index, *data.probeKeys, cfg);

        accel::OffloadSpec off;
        off.index = data.index.get();
        off.probeKeys = data.probeKeys.get();
        off.outBase = data.outBase();
        accel::EngineConfig ecfg;
        ecfg.numWalkers = 4;
        accel::EngineResult widx = accel::runOffload(off, ecfg);

        // Per-tuple cycle costs are the runtimes (same tuple count).
        const double c_ooo = ooo.cyclesPerTuple;
        const double c_io = inord.cyclesPerTuple;
        const double c_wx = widx.cyclesPerTuple;

        auto joules = [&](Design d, double cycles) {
            return energy::computeEnergy(ep, d, Cycle(cycles * 1e6))
                .joules;
        };
        const double e_ooo = joules(Design::OoO, c_ooo);
        const double e_io = joules(Design::InOrder, c_io);
        const double e_wx = joules(Design::WidxOnOoO, c_wx);

        rt_io.push_back(c_io / c_ooo);
        rt_wx.push_back(c_wx / c_ooo);
        en_io.push_back(e_io / e_ooo);
        en_wx.push_back(e_wx / e_ooo);
        edp_io.push_back((e_io * c_io) / (e_ooo * c_ooo));
        edp_wx.push_back((e_wx * c_wx) / (e_ooo * c_ooo));
    }

    TablePrinter fig11("Figure 11: indexing runtime / energy / "
                       "energy-delay, normalized to OoO (mean over "
                       "DSS queries)");
    fig11.header({"Metric", "OoO", "In-order", "Widx (w/ OoO)",
                  "Paper (in-order)", "Paper (Widx)"});
    fig11.addRow({"Runtime", "1.00", TablePrinter::fmt(mean(rt_io)),
                  TablePrinter::fmt(mean(rt_wx)), "2.20", "~0.32"});
    fig11.addRow({"Energy", "1.00", TablePrinter::fmt(mean(en_io)),
                  TablePrinter::fmt(mean(en_wx)), "0.14", "0.17"});
    fig11.addRow({"Energy-Delay", "1.00",
                  TablePrinter::fmt(mean(edp_io)),
                  TablePrinter::fmt(mean(edp_wx)), "0.31", "0.057"});
    fig11.print();

    std::printf("Energy reduction vs OoO: %.0f%% (paper 83%%). EDP "
                "improvement: %.1fx vs OoO (paper 17.5x), %.1fx vs "
                "in-order (paper 5.5x)\n",
                (1.0 - mean(en_wx)) * 100.0, 1.0 / mean(edp_wx),
                mean(edp_io) / mean(edp_wx));
    return 0;
}
