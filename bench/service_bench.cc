/**
 * @file
 * Benchmarks for the persistent index service (src/service/): the
 * repeated-small-probe regime the service exists for, closed-loop
 * multi-client throughput/latency, and shard/walker scaling.
 *
 * The headline comparison is per-call overhead on repeated small
 * probes: BM_PoolSmallProbe pays a K-thread spawn + join on every
 * call (the one-shot WalkerPool), BM_ServiceSmallProbe submits to
 * walkers parked on a condvar. The service must cut the per-call
 * cost by >= 5x (tracked by the bench-regression gate via
 * bench/baseline.json).
 *
 * Results land in BENCH_service.json (benchmark's JSON format)
 * unless --benchmark_out is given, so CI can gate and archive them
 * alongside BENCH_sw_walkers.json.
 *
 * NOTE: multi-walker rows scale with the runner's core count; on a
 * single-core host K > 1 time-shares one CPU and shows ~1x (see
 * CHANGES.md for PR 2's identical caveat). The K:1 rows are the
 * portable, pinned ones.
 */

#include <benchmark/benchmark.h>

#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/arena.hh"
#include "common/rng.hh"
#include "obs/metrics.hh"
#include "service/index_service.hh"
#include "service/open_loop.hh"
#include "swwalkers/walker_pool.hh"
#include "workload/distributions.hh"

using namespace widx;

namespace {

/** Shared dataset (built once per size). */
struct Dataset
{
    Arena arena;
    std::unique_ptr<db::Column> build;
    db::IndexSpec spec;
    std::unique_ptr<db::HashIndex> index;
    std::vector<u64> keys; ///< uniform hits

    explicit Dataset(u64 tuples)
    {
        Rng rng(42);
        build = std::make_unique<db::Column>(
            "b", db::ValueKind::U64, arena, tuples);
        for (u64 k : wl::shuffledDenseKeys(tuples, rng))
            build->push(k);
        spec.buckets = tuples;
        spec.hashFn = db::HashFn::monetdbRobust();
        index = std::make_unique<db::HashIndex>(spec, arena);
        index->buildFromColumn(*build);
        keys = wl::uniformKeys(1u << 20, tuples, rng);
    }
};

Dataset &
small()
{
    static Dataset d(4096); // L1/L2-resident: isolates call overhead
    return d;
}

Dataset &
large()
{
    static Dataset d(8u << 20); // DRAM-resident
    return d;
}

/** The small-probe request size: one dispatch window's worth. */
constexpr std::size_t kSmallProbe = 64;

void
reportKeys(benchmark::State &state, std::size_t keys_per_iter,
           u64 matches)
{
    state.SetItemsProcessed(i64(state.iterations()) *
                            i64(keys_per_iter));
    benchmark::DoNotOptimize(matches);
}

} // namespace

// ---------------------------------------------------------------------------
// Repeated small probes: spawn-per-call pool vs parked service.
// ---------------------------------------------------------------------------

// Args: K.
static void
BM_PoolSmallProbe(benchmark::State &state)
{
    Dataset &d = small();
    sw::PipelineConfig cfg{.walkers = unsigned(state.range(0))};
    sw::WalkerPool pool(*d.index, 8, cfg);
    u64 matches = 0;
    std::size_t base = 0;
    for (auto _ : state) {
        // Every call spawns and joins K threads — the tax under
        // measurement.
        matches += pool.probeAll(
            {d.keys.data() + base, kSmallProbe});
        base = (base + kSmallProbe) % (d.keys.size() - kSmallProbe);
    }
    reportKeys(state, kSmallProbe, matches);
}
BENCHMARK(BM_PoolSmallProbe)
    ->ArgNames({"K"})
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->UseRealTime()
    ->MeasureProcessCPUTime();

// Args: K.
static void
BM_ServiceSmallProbe(benchmark::State &state)
{
    Dataset &d = small();
    sw::ServiceConfig cfg;
    cfg.walkers = unsigned(state.range(0));
    sw::IndexService service(*d.index, cfg);
    u64 matches = 0;
    std::size_t base = 0;
    for (auto _ : state) {
        matches += service.count(
            {d.keys.data() + base, kSmallProbe});
        base = (base + kSmallProbe) % (d.keys.size() - kSmallProbe);
    }
    reportKeys(state, kSmallProbe, matches);
}
BENCHMARK(BM_ServiceSmallProbe)
    ->ArgNames({"K"})
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->UseRealTime()
    ->MeasureProcessCPUTime();

// Same workload with a MetricsRegistry attached: the observability
// acceptance row. Service metrics export through scrape-time
// collectors reading the counters the service already keeps, so the
// per-request delta against BM_ServiceSmallProbe/K:1 is the entire
// registry tax on the hot path — pinned alongside the plain row so
// a future direct-handle-on-the-submit-path change that costs more
// than the noise floor shows up in the gate.
static void
BM_ServiceSmallProbeObs(benchmark::State &state)
{
    Dataset &d = small();
    sw::ServiceConfig cfg;
    cfg.walkers = unsigned(state.range(0));
    sw::IndexService service(*d.index, cfg);
    obs::MetricsRegistry registry;
    service.registerMetrics(registry);
    u64 matches = 0;
    std::size_t base = 0;
    for (auto _ : state) {
        matches += service.count(
            {d.keys.data() + base, kSmallProbe});
        base = (base + kSmallProbe) % (d.keys.size() - kSmallProbe);
    }
    // One scrape outside the timed loop: the exposition must reflect
    // the run (catches a registry wired up but exporting nothing).
    if (registry.renderPrometheus().find(
            "widx_service_requests_total") == std::string::npos)
        std::abort();
    reportKeys(state, kSmallProbe, matches);
}
BENCHMARK(BM_ServiceSmallProbeObs)
    ->ArgNames({"K"})
    ->Arg(1)
    ->UseRealTime()
    ->MeasureProcessCPUTime();

// ---------------------------------------------------------------------------
// Shard-affine routing on/off at fixed shape (4 shards, 1 walker):
// the admission-scatter tax on repeated small probes. Routing buys
// per-shard drains (no per-key shard resolve, per-shard AVX2 tag
// filter, node-local arenas on NUMA hosts) for per-key scatter work
// at submit; this pair pins both sides so neither path regresses
// silently. K is fixed at 1 (the portable row — see the note above)
// and the pair rides the CI smoke run + bench gate.
// ---------------------------------------------------------------------------

// Args: route (0 = shared windows, 1 = shard-affine).
static void
BM_ServiceAffineSmallProbe(benchmark::State &state)
{
    Dataset &d = small();
    sw::ServiceConfig cfg;
    cfg.shards = 4;
    cfg.walkers = 1;
    cfg.affineRouting = state.range(0) != 0;
    sw::IndexService service(*d.build, d.spec, cfg);
    u64 matches = 0;
    std::size_t base = 0;
    for (auto _ : state) {
        matches += service.count(
            {d.keys.data() + base, kSmallProbe});
        base = (base + kSmallProbe) % (d.keys.size() - kSmallProbe);
    }
    reportKeys(state, kSmallProbe, matches);
}
BENCHMARK(BM_ServiceAffineSmallProbe)
    ->ArgNames({"route"})
    ->Arg(0)
    ->Arg(1)
    ->UseRealTime()
    ->MeasureProcessCPUTime();

// ---------------------------------------------------------------------------
// Closed-loop multi-client throughput: C client threads each submit
// small probes back-to-back against one shared service. Items/s is
// aggregate probed keys/s; the "requests" counter is the aggregate
// request rate (its inverse is the mean request latency).
// ---------------------------------------------------------------------------

// Args: clients, K, shards.
static void
BM_ServiceMultiClient(benchmark::State &state)
{
    Dataset &d = small();
    const unsigned clients = unsigned(state.range(0));
    sw::ServiceConfig cfg;
    cfg.walkers = unsigned(state.range(1));
    cfg.shards = unsigned(state.range(2));
    sw::IndexService service(*d.build, d.spec, cfg);

    // Enough requests per iteration to amortize the client-thread
    // spawn the closed loop itself needs.
    constexpr unsigned kReqPerClient = 64;
    for (auto _ : state) {
        std::vector<std::thread> ts;
        ts.reserve(clients);
        for (unsigned c = 0; c < clients; ++c)
            ts.emplace_back([&, c] {
                std::size_t base =
                    (c * 131071u) % (d.keys.size() - kSmallProbe);
                u64 m = 0;
                for (unsigned r = 0; r < kReqPerClient; ++r) {
                    m += service.count(
                        {d.keys.data() + base, kSmallProbe});
                    base = (base + kSmallProbe) %
                           (d.keys.size() - kSmallProbe);
                }
                benchmark::DoNotOptimize(m);
            });
        for (auto &t : ts)
            t.join();
    }
    const i64 reqs =
        i64(state.iterations()) * clients * kReqPerClient;
    state.SetItemsProcessed(reqs * i64(kSmallProbe));
    state.counters["requests"] =
        benchmark::Counter(double(reqs), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_ServiceMultiClient)
    ->ArgNames({"C", "K", "shards"})
    ->Args({4, 1, 1})
    ->Args({4, 2, 1})
    ->Args({4, 4, 1})
    ->Args({4, 4, 4})
    ->Args({8, 4, 4})
    ->UseRealTime()
    ->MeasureProcessCPUTime();

// ---------------------------------------------------------------------------
// Open-loop arrival-rate injection: Poisson arrivals at a fixed
// rate, submissions never wait for completions, latency measured
// from the *scheduled* arrival (no coordinated omission — a stalled
// walker cannot stall the generator the way the closed-loop rows
// above let it). p50/p99 land in the counters; the full
// rate -> percentile ladder across coalescing/routing lives in
// latency_bench (BENCH_latency.json).
// ---------------------------------------------------------------------------

// Args: rate (req/s), coalesce.
static void
BM_ServiceOpenLoop(benchmark::State &state)
{
    Dataset &d = small();
    sw::ServiceConfig cfg;
    cfg.walkers = 1;
    cfg.coalesceTails = state.range(1) != 0;
    sw::IndexService service(*d.index, cfg);

    sw::OpenLoopOptions opt;
    opt.ratePerSec = double(state.range(0));
    opt.requests = 1000;
    opt.keysPerRequest = kSmallProbe;
    opt.arrivals = sw::ArrivalProcess::Poisson;

    LatencyHistogram hist;
    u64 completed = 0;
    for (auto _ : state) {
        const sw::OpenLoopReport rep =
            sw::runOpenLoop(service, d.keys, opt);
        hist.merge(rep.hist);
        completed += rep.completed;
    }
    const LatencySnapshot l = hist.summarize();
    state.counters["p50_ns"] = double(l.p50Ns);
    state.counters["p99_ns"] = double(l.p99Ns);
    state.SetItemsProcessed(i64(completed) * i64(kSmallProbe));
}
BENCHMARK(BM_ServiceOpenLoop)
    ->ArgNames({"rate", "coalesce"})
    ->Args({8000, 1})
    ->Args({8000, 0})
    ->Args({40000, 1})
    ->UseRealTime()
    ->MeasureProcessCPUTime();

// ---------------------------------------------------------------------------
// Large single-request probes: the one-big-phase regime, service vs
// its own shard ladder (DRAM-resident; shard arenas spread memory
// traffic on multi-controller hosts).
// ---------------------------------------------------------------------------

// Args: K, shards, route (0 = shared windows, 1 = shard-affine;
// on multi-socket hosts pair route:1 with the NodeBound rows
// below to see the locality win — on one socket it mostly shows
// the scatter tax against the saved per-key shard resolve).
static void
BM_ServiceLargeProbe(benchmark::State &state)
{
    Dataset &d = large();
    sw::ServiceConfig cfg;
    cfg.walkers = unsigned(state.range(0));
    cfg.shards = unsigned(state.range(1));
    cfg.affineRouting = state.range(2) != 0;
    if (cfg.affineRouting) {
        cfg.numa = sw::NumaPolicy::NodeBound;
        cfg.pinWalkers = true;
    }
    sw::IndexService service(*d.build, d.spec, cfg);
    u64 matches = 0;
    for (auto _ : state)
        matches = service.count(d.keys);
    reportKeys(state, d.keys.size(), matches);
}
BENCHMARK(BM_ServiceLargeProbe)
    ->ArgNames({"K", "shards", "route"})
    ->Args({1, 1, 0})
    ->Args({2, 1, 0})
    ->Args({4, 1, 0})
    ->Args({4, 4, 0})
    ->Args({4, 4, 1})
    ->UseRealTime()
    ->MeasureProcessCPUTime();

/** BENCHMARK_MAIN, plus a default JSON results file so the perf
 *  trajectory is machine-readable from every run (same pattern as
 *  sw_walkers_bench). */
int
main(int argc, char **argv)
{
    std::vector<char *> args(argv, argv + argc);
    std::string out = "--benchmark_out=BENCH_service.json";
    std::string fmt = "--benchmark_out_format=json";
    bool has_out = false;
    for (int i = 1; i < argc; ++i)
        if (std::strcmp(argv[i], "--benchmark_out") == 0 ||
            std::strncmp(argv[i], "--benchmark_out=", 16) == 0)
            has_out = true;
    if (!has_out) {
        args.push_back(out.data());
        args.push_back(fmt.data());
    }
    int n = int(args.size());
    benchmark::Initialize(&n, args.data());
    if (benchmark::ReportUnrecognizedArguments(n, args.data()))
        return 1;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
}
