/**
 * @file
 * Regenerates Figure 5: walker utilization with a single shared
 * dispatcher (Equation 6), for 2/4/8 walkers and 1/2/3 nodes per
 * bucket across LLC miss ratios.
 *
 * Paper anchor: one dispatcher feeds up to four walkers except for
 * very shallow buckets (1 node) with low LLC miss ratios.
 */

#include <cstdio>

#include "common/table_printer.hh"
#include "model/analytical.hh"

using namespace widx;
using model::ModelParams;

int
main()
{
    ModelParams p;

    for (double nodes : {1.0, 2.0, 3.0}) {
        char title[96];
        std::snprintf(title, sizeof(title),
                      "Figure 5%c: walker utilization, %.0f node(s) "
                      "per bucket",
                      'a' + int(nodes) - 1, nodes);
        TablePrinter fig(title);
        fig.header({"LLC miss", "2 walkers", "4 walkers",
                    "8 walkers"});
        for (int m = 0; m <= 10; ++m) {
            const double miss = m / 10.0;
            fig.addRow({TablePrinter::fmt(miss, 1),
                        TablePrinter::fmt(model::walkerUtilization(
                            p, miss, 2, nodes)),
                        TablePrinter::fmt(model::walkerUtilization(
                            p, miss, 4, nodes)),
                        TablePrinter::fmt(model::walkerUtilization(
                            p, miss, 8, nodes))});
        }
        fig.print();
    }

    // The qualitative claim of Section 3.2.
    ModelParams p2;
    double util_4w_deep = model::walkerUtilization(p2, 0.5, 4, 2.0);
    double util_4w_shallow =
        model::walkerUtilization(p2, 0.0, 4, 1.0);
    std::printf("4 walkers, 2 nodes/bucket, LLC miss 0.5: utilization "
                "%.2f (paper: ~1.0 — dispatcher keeps up)\n",
                util_4w_deep);
    std::printf("4 walkers, 1 node/bucket, LLC miss 0.0: utilization "
                "%.2f (paper: dispatcher-bound corner)\n",
                util_4w_shallow);
    return 0;
}
