/**
 * @file
 * Open-loop tail-latency ladder for the index service: arrival rate
 * x {coalescing on/off} x {shard-affine routing on/off}, Poisson
 * arrivals (plus bursty and uniform reference rows), per-request
 * percentiles measured from *scheduled* arrival time so coordinated
 * omission cannot hide stalls (see src/service/open_loop.hh).
 *
 * An overload ladder rides along: three admission modes (static
 * coalesce, static immediate, adaptive SLO-driven — see
 * src/service/admission.hh) driven at ~4x the measured saturation
 * rate with per-request deadlines and a goodput SLO, scoring how
 * much *useful* work each mode completes when the offered load
 * cannot possibly be served.
 *
 *   $ ./latency_bench [--smoke] [--out=PATH]
 *
 * Results land in BENCH_latency.json (google-benchmark-compatible
 * JSON, extended with p50_ns/p99_ns/... fields) so
 * tools/bench_regression.py can schema-validate and gate the
 * percentile rows next to the throughput kernels. Row names carry
 * the walker count (K:) so the gate's small-runner skip rule
 * applies.
 *
 * Each row also splits the service-side view into queue-wait vs
 * drain-time means (from ServiceStats), which is what attributes
 * coalescing delay: with coalescing on, a tail that waits for
 * co-runners accrues the hold in queue-wait while drain-time stays
 * flat.
 *
 * NOTE: on a single-core host the generator, reaper, and walker
 * time-share one CPU, so absolute percentiles are pessimistic; the
 * rate ladder's *shape* (flat, then a knee at saturation) and the
 * coalescing/routing deltas remain meaningful, and the CI gate
 * normalizes by the host factor.
 */

#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "common/arena.hh"
#include "common/rng.hh"
#include "ol_json.hh"
#include "service/open_loop.hh"
#include "workload/distributions.hh"

using namespace widx;
using bench::OlRow;

namespace {

constexpr std::size_t kKeysPerRequest = 32;

} // namespace

int
main(int argc, char **argv)
{
    bool smoke = false;
    int repeat = 0; // 0 = default (3: best-of damps scheduler noise)
    const char *out = "BENCH_latency.json";
    std::string outBuf;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--smoke") == 0) {
            smoke = true;
        } else if (std::strncmp(argv[i], "--out=", 6) == 0) {
            outBuf = argv[i] + 6;
            out = outBuf.c_str();
        } else if (std::strncmp(argv[i], "--repeat=", 9) == 0) {
            repeat = std::atoi(argv[i] + 9);
        } else {
            std::fprintf(
                stderr,
                "usage: %s [--smoke] [--repeat=N] [--out=PATH]\n",
                argv[0]);
            return 1;
        }
    }
    if (repeat < 1)
        repeat = 3;

    // Dataset: L2-resident in smoke mode (CI runners, fast build),
    // larger for the committed ladder. Unique dense keys, uniform
    // probe draws.
    const u64 tuples = smoke ? u64(64) << 10 : u64(1) << 20;
    Arena arena;
    Rng rng(42);
    db::Column build("b", db::ValueKind::U64, arena, tuples);
    for (u64 k : wl::shuffledDenseKeys(tuples, rng))
        build.push(k);
    db::IndexSpec spec;
    spec.buckets = tuples;
    spec.hashFn = db::HashFn::monetdbRobust();
    std::vector<u64> pool = wl::uniformKeys(1u << 20, tuples, rng);

    // The ladder. The lowest rate doubles as the CI gate row (low
    // utilization on any runner: queueing is minimal, so the number
    // is a stable service-time floor rather than a saturation
    // measurement).
    const std::vector<double> rates =
        smoke ? std::vector<double>{2000.0, 8000.0}
              : std::vector<double>{2000.0, 8000.0, 20000.0,
                                    50000.0};
    const u64 requests = smoke ? 1200 : 4000;

    std::vector<OlRow> rows;

    // Best-of-N row runner: each attempt is a full open-loop run;
    // keep the attempt with the lowest p99. Open-loop percentiles
    // on shared (and single-core) runners carry multi-ms scheduler
    // spikes that have nothing to do with the service under test;
    // the least-polluted attempt is the reproducible one, which is
    // what a regression gate needs (same spirit as google-benchmark
    // min-of-repetitions).
    auto runRow = [&](sw::IndexService &service,
                      const std::string &rowName,
                      sw::OpenLoopOptions opt,
                      bool byGoodput = false) {
        OlRow best;
        for (int r = 0; r < repeat; ++r) {
            service.resetLatencyStats();
            opt.seed = u64(r + 1);
            sw::OpenLoopReport rep = runOpenLoop(service, pool, opt);
            sw::KindLatency svc =
                service.stats().latencyFor(opt.kind);
            // Overload rows select by goodput (their entire point;
            // p99 over Ok-only completions is meaningless when a
            // mode sheds almost everything), latency rows by p99.
            const bool better =
                byGoodput ? rep.goodput > best.rep.goodput
                          : rep.latency.p99Ns <
                                best.rep.latency.p99Ns;
            if (r == 0 || better)
                best = OlRow{rowName, std::move(rep), svc};
        }
        rows.push_back(std::move(best));
        const OlRow &r = rows.back();
        std::printf("%-48s p50 %7.1fus  p99 %7.1fus  p99.9 "
                    "%7.1fus  achieved %8.0f/s  good %8.0f/s  "
                    "shed %llu  rej %llu  exp %llu\n",
                    r.name.c_str(),
                    double(r.rep.latency.p50Ns) / 1e3,
                    double(r.rep.latency.p99Ns) / 1e3,
                    double(r.rep.latency.p999Ns) / 1e3,
                    r.rep.achievedRate, r.rep.goodputRate,
                    (unsigned long long)r.rep.shedClientCap,
                    (unsigned long long)r.rep.rejected,
                    (unsigned long long)r.rep.expired);
    };

    char name[160];
    for (int coalesce : {1, 0}) {
        for (int route : {0, 1}) {
            sw::ServiceConfig cfg;
            cfg.shards = 4;
            cfg.walkers = 1; // the portable row (see file note)
            cfg.affineRouting = route != 0;
            cfg.coalesceTails = coalesce != 0;
            sw::IndexService service(build, spec, cfg);
            for (double rate : rates) {
                sw::OpenLoopOptions opt;
                opt.ratePerSec = rate;
                opt.requests = requests;
                opt.keysPerRequest = kKeysPerRequest;
                opt.arrivals = sw::ArrivalProcess::Poisson;
                std::snprintf(
                    name, sizeof(name),
                    "OL_Latency/coalesce:%d/route:%d/K:1/rate:%d",
                    coalesce, route, int(rate));
                runRow(service, name, opt);
            }
        }
    }

    // Arrival-process reference rows at the mid rate, default
    // shape: deterministic pacing vs the bursty on-off train whose
    // bursts are what admission coalescing feeds on.
    {
        sw::ServiceConfig cfg;
        cfg.shards = 4;
        cfg.walkers = 1;
        sw::IndexService service(build, spec, cfg);
        for (auto [proc, tag] :
             {std::pair{sw::ArrivalProcess::Uniform, "uniform"},
              std::pair{sw::ArrivalProcess::OnOff, "onoff"}}) {
            sw::OpenLoopOptions opt;
            opt.ratePerSec = rates[1];
            opt.requests = requests;
            opt.keysPerRequest = kKeysPerRequest;
            opt.arrivals = proc;
            std::snprintf(name, sizeof(name),
                          "OL_Latency/arrivals:%s/K:1/rate:%d", tag,
                          int(rates[1]));
            runRow(service, name, opt);
        }
    }

    // Overload ladder: offered rate ~4x the service's measured
    // saturation throughput, three admission modes. Static coalesce
    // (hold every tail for a full window) and static immediate
    // (seal every tail at admission) both let the admission queues
    // grow until the client cap or per-request deadlines bite, so
    // queue-wait runs far past any SLO; the adaptive controller
    // bounds the queues and sheds the excess with Status::Rejected,
    // trading completed-count for completions that are actually
    // inside the SLO — which is what the goodput column scores.
    // Row names carry "rate:4x" (not the absolute rate, which is
    // host-dependent) so baselines match across runners; the
    // measured rates land in offered_rate/achieved_rate.
    {
        const u64 sloNs = 5'000'000;       // 5 ms end-to-end SLO
        const u64 deadlineNs = 10'000'000; // give up past 10 ms

        // Saturation probe: offer far past capacity with a small
        // client cap; the cap throttles the generator, so
        // achievedRate is the sustainable closed-ish throughput.
        double satRate = 0;
        {
            sw::ServiceConfig cfg;
            cfg.shards = 4;
            cfg.walkers = 1;
            sw::IndexService service(build, spec, cfg);
            sw::OpenLoopOptions opt;
            opt.ratePerSec = 5e6;
            opt.requests = smoke ? 2000 : 8000;
            opt.keysPerRequest = kKeysPerRequest;
            opt.arrivals = sw::ArrivalProcess::Uniform;
            opt.maxInFlight = 512;
            sw::OpenLoopReport rep =
                runOpenLoop(service, pool, opt);
            satRate = rep.achievedRate;
        }
        if (satRate <= 0)
            satRate = 50e3; // defensive: probe anomaly on CI
        const double overRate = 4.0 * satRate;
        const double durSec = smoke ? 0.4 : 1.5;
        const u64 overReqs = u64(overRate * durSec);
        std::printf("saturation ~%.0f req/s; overload ladder at "
                    "%.0f req/s (%llu requests)\n",
                    satRate, overRate,
                    (unsigned long long)overReqs);

        struct Mode
        {
            const char *tag;
            bool coalesce;
            bool adaptive;
        };
        for (Mode m : {Mode{"coalesce", true, false},
                       Mode{"immediate", false, false},
                       Mode{"adaptive", true, true}}) {
            sw::ServiceConfig cfg;
            cfg.shards = 4;
            cfg.walkers = 1;
            cfg.coalesceTails = m.coalesce;
            if (m.adaptive)
                cfg.admission.adaptive = true; // 2 ms queue target
            sw::IndexService service(build, spec, cfg);
            sw::OpenLoopOptions opt;
            opt.ratePerSec = overRate;
            opt.requests = overReqs;
            opt.keysPerRequest = kKeysPerRequest;
            opt.arrivals = sw::ArrivalProcess::Poisson;
            opt.deadlineNs = deadlineNs;
            opt.sloNs = sloNs;
            // Unmeasured warm-up burst: the adaptive controller
            // cold-starts wide open (budget = maxBudgetKeys), and
            // its first convergence — a transient every deployment
            // sees exactly once — would otherwise dominate a short
            // row's p99. Steady-state behavior is what the ladder
            // compares; the same burst runs for the static modes
            // so every row measures a warmed service.
            {
                sw::OpenLoopOptions warm = opt;
                warm.requests = u64(overRate * 0.25);
                warm.seed = 999;
                runOpenLoop(service, pool, warm);
                service.resetLatencyStats();
            }
            std::snprintf(name, sizeof(name),
                          "OL_Overload/adm:%s/K:1/rate:4x", m.tag);
            runRow(service, name, opt, /*byGoodput=*/true);
        }
    }

    bench::writeOlJson(out, "latency_bench", kKeysPerRequest, rows,
                       smoke);
    std::printf("wrote %zu rows to %s\n", rows.size(), out);
    return 0;
}
