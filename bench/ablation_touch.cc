/**
 * @file
 * Ablation (our extension): dispatcher bucket-header TOUCH.
 *
 * The Widx dispatcher knows each probe's bucket address right after
 * hashing, so it *could* TOUCH the header node before pushing the
 * entry to a walker. The paper's design does not do this (its
 * one-walker configuration performs within ~4% of the OoO core).
 * This bench quantifies the extension: the prefetch shines on
 * LLC-resident indexes (fills are cheap and survive), while on
 * DRAM-resident indexes most touches are dropped by MSHR exhaustion
 * (Section 3.2's Equation 3 at work) or arrive too late.
 */

#include <cstdio>

#include "accel/engine.hh"
#include "common/table_printer.hh"
#include "workload/join_kernel.hh"

using namespace widx;

int
main()
{
    TablePrinter tbl("Dispatcher bucket-TOUCH extension: "
                     "cycles/tuple");
    tbl.header({"Index", "Walkers", "no touch (paper)",
                "with touch (ours)", "gain", "dropped prefetches"});

    for (const wl::KernelSize &size :
         {wl::KernelSize::small(), wl::KernelSize::medium(),
          wl::KernelSize::large()}) {
        wl::KernelDataset data(size);
        for (unsigned w : {1u, 4u}) {
            accel::OffloadSpec spec;
            spec.index = data.index.get();
            spec.probeKeys = data.probeKeys.get();
            spec.outBase = data.outBase();
            accel::EngineConfig cfg;
            cfg.numWalkers = w;

            spec.dispatcherTouch = false;
            accel::EngineResult off = accel::runOffload(spec, cfg);
            spec.dispatcherTouch = true;
            accel::EngineResult on = accel::runOffload(spec, cfg);

            tbl.addRow(
                {size.name, std::to_string(w),
                 TablePrinter::fmt(off.cyclesPerTuple, 1),
                 TablePrinter::fmt(on.cyclesPerTuple, 1),
                 TablePrinter::fmtPct(1.0 - on.cyclesPerTuple /
                                                off.cyclesPerTuple),
                 TablePrinter::fmtInt(on.memStats.get(
                     "mem.dropped_prefetches"))});
        }
    }
    tbl.print();
    return 0;
}
