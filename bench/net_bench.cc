/**
 * @file
 * Open-loop tail-latency ladder over the TCP front-end: the same
 * experiment latency_bench runs against a local IndexService, driven
 * through a loopback TcpIndexServer/TcpIndexClient pair so each
 * percentile includes frame serialization, both wire directions, the
 * server's epoll loop, and the completion reaper (see src/net/).
 *
 *   $ ./net_bench [--smoke] [--repeat=N] [--out=PATH]
 *
 * Results land in BENCH_net.json in the same JSON shape as
 * BENCH_latency.json (shared writer in ol_json.hh), so
 * tools/bench_regression.py schema-validates and gates the
 * Net_OL rows' p50/p99 and goodput next to the local ladder.
 *
 * Row design mirrors latency_bench: K:1 rows (portable to any
 * runner), the lowest rate is the CI gate row (low utilization, so
 * it measures the wire + service floor rather than queueing), and
 * each row keeps the best-of-N attempt by p99 to shed scheduler
 * spikes that have nothing to do with the stack under test. Every
 * row gets a fresh connection so a prior row's stragglers can't
 * alias the next row's tag space.
 */

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "common/arena.hh"
#include "common/rng.hh"
#include "net/open_loop_net.hh"
#include "net/server.hh"
#include "ol_json.hh"
#include "workload/distributions.hh"

using namespace widx;
using bench::OlRow;

namespace {

constexpr std::size_t kKeysPerRequest = 32;

} // namespace

int
main(int argc, char **argv)
{
    bool smoke = false;
    int repeat = 0; // 0 = default (3: best-of damps scheduler noise)
    const char *out = "BENCH_net.json";
    std::string outBuf;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--smoke") == 0) {
            smoke = true;
        } else if (std::strncmp(argv[i], "--out=", 6) == 0) {
            outBuf = argv[i] + 6;
            out = outBuf.c_str();
        } else if (std::strncmp(argv[i], "--repeat=", 9) == 0) {
            repeat = std::atoi(argv[i] + 9);
        } else {
            std::fprintf(
                stderr,
                "usage: %s [--smoke] [--repeat=N] [--out=PATH]\n",
                argv[0]);
            return 1;
        }
    }
    if (repeat < 1)
        repeat = 3;

    // Dataset: same shape as latency_bench so the wire ladder is
    // directly comparable to the local one — the per-row delta
    // between BENCH_latency and BENCH_net is the front-end's cost.
    const u64 tuples = smoke ? u64(64) << 10 : u64(1) << 20;
    Arena arena;
    Rng rng(42);
    db::Column build("b", db::ValueKind::U64, arena, tuples);
    for (u64 k : wl::shuffledDenseKeys(tuples, rng))
        build.push(k);
    db::IndexSpec spec;
    spec.buckets = tuples;
    spec.hashFn = db::HashFn::monetdbRobust();
    std::vector<u64> pool = wl::uniformKeys(1u << 20, tuples, rng);

    // Rate ladder. The socket stack adds two threads on each side of
    // the service, so rates sit below the local ladder's — on a
    // small runner the wire rows saturate earlier, and the gate row
    // must stay in the flat region.
    const std::vector<double> rates =
        smoke ? std::vector<double>{2000.0, 4000.0}
              : std::vector<double>{2000.0, 8000.0, 20000.0};
    const u64 requests = smoke ? 600 : 4000;
    const u64 sloNs = 50'000'000; // goodput = Ok within 50 ms

    sw::ServiceConfig cfg;
    cfg.shards = 4;
    cfg.walkers = 1; // the portable row (see latency_bench note)
    sw::IndexService service(build, spec, cfg);
    net::TcpIndexServer server(service);

    std::vector<OlRow> rows;
    char name[160];
    for (double rate : rates) {
        sw::OpenLoopOptions opt;
        opt.ratePerSec = rate;
        opt.requests = requests;
        opt.keysPerRequest = kKeysPerRequest;
        opt.arrivals = sw::ArrivalProcess::Poisson;
        opt.sloNs = sloNs;
        std::snprintf(name, sizeof(name), "Net_OL/K:1/rate:%d",
                      int(rate));
        OlRow best;
        for (int r = 0; r < repeat; ++r) {
            service.resetLatencyStats();
            opt.seed = u64(r + 1);
            // Fresh connection per attempt: a new tag space and a
            // new CompletionQueue, so stragglers from the previous
            // attempt can only land on their own (dead) queue.
            net::TcpIndexClient client("127.0.0.1", server.port());
            sw::OpenLoopReport rep =
                net::runOpenLoopNet(client, pool, opt);
            client.close();
            sw::KindLatency svc = service.stats().latencyFor(opt.kind);
            const bool better =
                rep.latency.p99Ns < best.rep.latency.p99Ns;
            if (r == 0 || better)
                best = OlRow{name, std::move(rep), svc};
        }
        rows.push_back(std::move(best));
        const OlRow &r = rows.back();
        std::printf("%-32s p50 %7.1fus  p99 %7.1fus  p99.9 %7.1fus  "
                    "achieved %8.0f/s  good %8.0f/s  shed %llu  "
                    "timeout %llu\n",
                    r.name.c_str(),
                    double(r.rep.latency.p50Ns) / 1e3,
                    double(r.rep.latency.p99Ns) / 1e3,
                    double(r.rep.latency.p999Ns) / 1e3,
                    r.rep.achievedRate, r.rep.goodputRate,
                    (unsigned long long)r.rep.shedClientCap,
                    (unsigned long long)r.rep.timedOut);
    }

    server.stop();
    const net::TcpServerStats st = server.stats();
    std::printf("server: %llu requests, %llu responses, "
                "%llu dropped, %llu protocol errors\n",
                (unsigned long long)st.requests,
                (unsigned long long)st.responses,
                (unsigned long long)st.droppedResponses,
                (unsigned long long)st.protocolErrors);

    bench::writeOlJson(out, "net_bench", kKeysPerRequest, rows,
                       smoke);
    std::printf("wrote %zu rows to %s\n", rows.size(), out);
    return 0;
}
