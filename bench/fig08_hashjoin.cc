/**
 * @file
 * Regenerates Figure 8: Hash Join kernel analysis.
 *
 *  (a) Widx walker cycle breakdown (Comp / Mem / TLB / Idle) per
 *      tuple for Small / Medium / Large indexes with 1, 2 and 4
 *      walkers, normalized to Small on 1 walker.
 *  (b) Indexing speedup over the OoO baseline.
 *
 * Paper anchors: memory dominates and scales down linearly with
 * walker count; Small@4 walkers shows Idle (dispatcher-bound); the
 * one-walker design is within ~4% of the OoO core (the kernel's
 * trivial hash gains little from decoupling); Large@4 reaches ~4x.
 */

#include <cstdio>
#include <vector>

#include "accel/engine.hh"
#include "common/table_printer.hh"
#include "cpu/probe_run.hh"
#include "workload/join_kernel.hh"

using namespace widx;

namespace {

struct Row
{
    const char *size;
    unsigned walkers;
    double cyclesPerTuple;
    accel::UnitBreakdown bd;
    double oooCyclesPerTuple;
};

} // namespace

int
main()
{
    std::vector<wl::KernelSize> sizes = {wl::KernelSize::small(),
                                         wl::KernelSize::medium(),
                                         wl::KernelSize::large()};
    std::vector<Row> rows;

    for (const wl::KernelSize &size : sizes) {
        wl::KernelDataset data(size);

        cpu::ProbeRunConfig base;
        base.core = cpu::CoreParams::ooo();
        cpu::CoreResult ooo =
            cpu::runProbeLoop(*data.index, *data.probeKeys, base);

        for (unsigned w : {1u, 2u, 4u}) {
            accel::OffloadSpec spec;
            spec.index = data.index.get();
            spec.probeKeys = data.probeKeys.get();
            spec.outBase = data.outBase();
            accel::EngineConfig cfg;
            cfg.numWalkers = w;
            accel::EngineResult r = accel::runOffload(spec, cfg);
            rows.push_back({size.name, w, r.cyclesPerTuple, r.walkers,
                            ooo.cyclesPerTuple});
        }
        std::printf("[%s] index footprint: %.1f MB, OoO: %.1f "
                    "cycles/tuple\n",
                    size.name,
                    double(data.index->footprintBytes()) / 1048576.0,
                    ooo.cyclesPerTuple);
    }

    // --- Figure 8a ------------------------------------------------------
    const double norm = rows.front().cyclesPerTuple;
    TablePrinter fig8a("Figure 8a: Widx walker cycles/tuple breakdown "
                       "(normalized to Small, 1 walker)");
    fig8a.header({"Index", "Walkers", "Comp", "Mem", "TLB", "Idle",
                  "Total", "Cyc/tuple"});
    for (const Row &r : rows) {
        const double total = double(r.bd.total());
        auto frac = [&](u64 part) {
            return total == 0.0
                       ? 0.0
                       : double(part) / total * r.cyclesPerTuple /
                             norm;
        };
        fig8a.addRow({r.size, std::to_string(r.walkers),
                      TablePrinter::fmt(frac(r.bd.comp)),
                      TablePrinter::fmt(frac(r.bd.mem)),
                      TablePrinter::fmt(frac(r.bd.tlb)),
                      TablePrinter::fmt(frac(r.bd.idle +
                                             r.bd.backpressure)),
                      TablePrinter::fmt(r.cyclesPerTuple / norm),
                      TablePrinter::fmt(r.cyclesPerTuple, 1)});
    }
    fig8a.print();

    // --- Figure 8b ------------------------------------------------------
    TablePrinter fig8b("Figure 8b: Hash Join kernel indexing speedup "
                       "over OoO");
    fig8b.header({"Index", "OoO", "1 walker", "2 walkers",
                  "4 walkers"});
    for (std::size_t i = 0; i < rows.size(); i += 3) {
        fig8b.addRow(
            {rows[i].size, "1.00",
             TablePrinter::fmt(rows[i].oooCyclesPerTuple /
                               rows[i].cyclesPerTuple),
             TablePrinter::fmt(rows[i + 1].oooCyclesPerTuple /
                               rows[i + 1].cyclesPerTuple),
             TablePrinter::fmt(rows[i + 2].oooCyclesPerTuple /
                               rows[i + 2].cyclesPerTuple)});
    }
    fig8b.print();
    return 0;
}
