/**
 * @file
 * µop trace generation for the Listing 1 probe loop.
 *
 * For every probe key the generator performs the *functional* walk on
 * the real hash index, recording the same addresses the Widx engine
 * touches, and emits the corresponding µop sequence with data
 * dependences:
 *
 *   load key -> hash chain (one ALU per HashStep, serially dependent)
 *   -> bucket address (mask, base+shift) -> header-node key load
 *   -> compare -> branch, then per extra node: next-pointer load ->
 *   key load -> compare -> branch, with an extra key-dereference load
 *   for indirect layouts and payload-load + store for matches.
 *
 * The bucket-exit branch is data-dependent on the walk (node lists
 * have no predictable length), so it is marked mispredicted with a
 * configurable probability. This is the mechanism that bounds the
 * baseline cores' run-ahead across probes — the "limited MLP" the
 * paper attributes to the OoO core (Section 6.1) — and the main
 * calibration knob of the reproduction (see DESIGN.md §3.3).
 */

#ifndef WIDX_CPU_TRACE_GEN_HH
#define WIDX_CPU_TRACE_GEN_HH

#include <vector>

#include "common/rng.hh"
#include "cpu/trace.hh"
#include "db/column.hh"
#include "db/hash_index.hh"

namespace widx::cpu {

struct TraceGenOptions
{
    /** Probability the bucket-exit branch of a probe mispredicts.
     *  Calibrated so the OoO baseline lands at the paper's anchors
     *  (Widx-1walker within ~4% of OoO on the kernel; in-order 2.2x
     *  slower than OoO) — see EXPERIMENTS.md. */
    double mispredictRate = 0.7;
    /** RNG seed for mispredict draws. */
    u64 seed = 1;
    /** Per-hash-step ALU latency on the baseline core; 0 picks the
     *  default (2 for integer keys, 5 for double keys). */
    u8 hashStepLatency = 0;
    /** Indexes at or below this entry count are treated as
     *  predictor-warm: mispredict rates scale by hotIndexFactor. */
    u64 hotIndexEntries = 4096;
    double hotIndexFactor = 0.25;
    /** Base address for match stores (timing only; no data is
     *  written). 0 keeps stores but aims them at a scratch page. */
    Addr outBase = 0;
    /** Software batch-pipeline modeling: µops for the hash phases of
     *  `batchGroup` consecutive probes are emitted before any of
     *  their walk µops (the decoupled dispatcher schedule of
     *  db::HashIndex::probeBatch). 1 keeps the classic inline
     *  Listing 1 interleaving. The µop multiset per probe is
     *  unchanged — only the order, and with it the run-ahead the
     *  modeled core can extract, differs. */
    unsigned batchGroup = 1;
};

class ProbeTraceGen : public TraceSource
{
  public:
    ProbeTraceGen(const db::HashIndex &index,
                  const db::Column &probe_keys,
                  const TraceGenOptions &opts);

    bool next(Uop &out) override;

    u64 probesGenerated() const { return nextRow_; }
    u64 totalProbes() const { return keys_.size(); }

  private:
    /** Indices (absolute positions in buf_) of the hash-phase µops
     *  a probe's walk µops depend on. */
    struct HashAnchor
    {
        std::size_t keyIdx;
        std::size_t bucketAddrIdx;
    };

    /** Generate the µop vector for the next batchGroup probes:
     *  all hash phases first, then all walks. */
    void genGroup();
    HashAnchor genHashPhase(RowId row);
    void genWalkPhase(RowId row, const HashAnchor &anchor);

    const db::HashIndex &index_;
    const db::Column &keys_;
    TraceGenOptions opts_;
    Rng rng_;
    Addr outCursor_;
    u64 scratch_[8]{}; ///< default store target

    std::vector<Uop> buf_;
    std::vector<HashAnchor> anchors_; ///< group-generation scratch
    std::size_t bufPos_ = 0;
    RowId nextRow_ = 0;
    /** Running match-branch statistics for the predictor model. */
    u64 compares_ = 0;
    u64 matchesSeen_ = 0;
    /** Mispredict-rate scale for predictor-warm hot indexes. */
    double hotFactor_ = 1.0;
};

} // namespace widx::cpu

#endif // WIDX_CPU_TRACE_GEN_HH
