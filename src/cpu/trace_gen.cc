#include "cpu/trace_gen.hh"

#include <algorithm>

#include "common/logging.hh"

namespace widx::cpu {

using db::HashIndex;

ProbeTraceGen::ProbeTraceGen(const db::HashIndex &index,
                             const db::Column &probe_keys,
                             const TraceGenOptions &opts)
    : index_(index), keys_(probe_keys), opts_(opts), rng_(opts.seed)
{
    outCursor_ = opts_.outBase
                     ? opts_.outBase
                     : Addr(reinterpret_cast<std::uintptr_t>(scratch_));
    // Tiny (L1-resident) indexes are probed through a handful of hot
    // buckets; a warmed history-based predictor captures most of
    // their walk patterns, which is why the paper's OoO core does
    // comparatively well there (TPC-DS q37, Section 6.2).
    if (index_.entries() <= opts_.hotIndexEntries)
        hotFactor_ = opts_.hotIndexFactor;
}

bool
ProbeTraceGen::next(Uop &out)
{
    while (bufPos_ >= buf_.size()) {
        if (nextRow_ >= keys_.size())
            return false;
        genGroup();
    }
    out = buf_[bufPos_++];
    return true;
}

void
ProbeTraceGen::genGroup()
{
    buf_.clear();
    bufPos_ = 0;

    // Decoupled batch dispatch: hash-phase µops for the whole group
    // precede every walk µop, exactly like the software pipeline
    // hashes a batch before the first bucket walk. batchGroup == 1
    // degenerates to the classic inline interleaving (and to the
    // exact µop stream this generator always produced).
    const unsigned group = std::max(1u, opts_.batchGroup);
    const RowId first = nextRow_;
    const RowId last =
        std::min<RowId>(first + group, keys_.size());

    anchors_.clear();
    for (RowId r = first; r < last; ++r)
        anchors_.push_back(genHashPhase(r));
    for (RowId r = first; r < last; ++r)
        genWalkPhase(r, anchors_[r - first]);
    nextRow_ = last;
}

ProbeTraceGen::HashAnchor
ProbeTraceGen::genHashPhase(RowId row)
{
    // Local emission helpers: dependences are expressed as backward
    // distances from the µop being appended.
    auto emit = [&](Uop u) -> std::size_t {
        buf_.push_back(u);
        return buf_.size() - 1;
    };

    // --- Hash phase ----------------------------------------------------
    auto back = [&](std::size_t producer_idx) -> u16 {
        const std::size_t d = buf_.size() - producer_idx;
        fatal_if(d > 0xFFFF,
                 "dependence distance exceeds the µop encoding "
                 "(lower batchGroup)");
        return u16(d);
    };

    Uop key_load;
    key_load.kind = UopKind::Load;
    key_load.phase = UopPhase::Hash;
    key_load.addr = keys_.addrOf(row);
    std::size_t key_idx = emit(key_load);

    // Loop bookkeeping (cursor increment; the loop branch is
    // perfectly predicted).
    Uop incr;
    incr.kind = UopKind::Alu;
    incr.phase = UopPhase::Hash;
    emit(incr);

    // Serially dependent hash chain: one ALU per HashStep. On a
    // general-purpose core each fused shift+combine step costs more
    // than Widx's single-cycle fused ALU (see Uop::latency).
    u8 step_lat = opts_.hashStepLatency;
    if (step_lat == 0)
        step_lat = keys_.kind() == db::ValueKind::F64 ? 7 : 2;
    std::size_t prev = key_idx;
    for (unsigned s = 0; s < index_.hashFn().compOps(); ++s) {
        Uop h;
        h.kind = UopKind::Alu;
        h.phase = UopPhase::Hash;
        h.latency = step_lat;
        h.dep0 = back(prev);
        prev = emit(h);
    }
    // Bucket index mask and base+shift address formation.
    for (int i = 0; i < 2; ++i) {
        Uop a;
        a.kind = UopKind::Alu;
        a.phase = UopPhase::Hash;
        a.dep0 = back(prev);
        prev = emit(a);
    }
    return {key_idx, prev};
}

void
ProbeTraceGen::genWalkPhase(RowId row, const HashAnchor &anchor)
{
    const u64 key = keys_.at(row);

    auto emit = [&](Uop u) -> std::size_t {
        buf_.push_back(u);
        return buf_.size() - 1;
    };
    auto back = [&](std::size_t producer_idx) -> u16 {
        const std::size_t d = buf_.size() - producer_idx;
        fatal_if(d > 0xFFFF,
                 "dependence distance exceeds the µop encoding "
                 "(lower batchGroup)");
        return u16(d);
    };

    const std::size_t key_idx = anchor.keyIdx;
    const std::size_t bucket_addr_idx = anchor.bucketAddrIdx;

    // --- Walk phase (functional traversal records real addresses) ---
    const u64 bidx = index_.bucketIndex(key);
    const HashIndex::Bucket &bucket = index_.bucketAt(bidx);
    const Addr bucket_addr =
        index_.bucketArrayAddr() + bidx * HashIndex::kBucketStride;

    const HashIndex::Node *node = &bucket.head;
    Addr node_addr = bucket_addr + HashIndex::kBucketHeadOffset;
    std::size_t addr_producer = bucket_addr_idx;

    while (node) {
        // Node key load (address produced by the bucket computation
        // or by the previous next-pointer load).
        Uop nk;
        nk.kind = UopKind::Load;
        nk.phase = UopPhase::Walk;
        nk.addr = node_addr + HashIndex::kNodeKeyOffset;
        nk.dep0 = back(addr_producer);
        std::size_t keyval_idx = emit(nk);

        if (index_.indirectKeys()) {
            // Dereference the key pointer (MonetDB-style layout).
            Uop deref;
            deref.kind = UopKind::Load;
            deref.phase = UopPhase::Walk;
            deref.addr = node->key; // key field holds the key address
            deref.dep0 = back(keyval_idx);
            keyval_idx = emit(deref);
        }

        // Compare against the probe key, then the match branch.
        Uop cmp;
        cmp.kind = UopKind::Alu;
        cmp.phase = UopPhase::Walk;
        cmp.dep0 = back(keyval_idx);
        cmp.dep1 = back(key_idx);
        std::size_t cmp_idx = emit(cmp);

        const bool match = index_.nodeKey(*node) == key;

        // The match branch is data-dependent on the (possibly
        // indirect) key value. A branch predictor sees a stream of
        // taken/not-taken outcomes with match frequency p and misses
        // ~2p(1-p) of the time; this is the second run-ahead limiter
        // and the one that serializes the key-dereference miss on
        // MonetDB-style layouts.
        ++compares_;
        if (match)
            ++matchesSeen_;
        Uop br;
        br.kind = UopKind::Branch;
        br.phase = UopPhase::Walk;
        br.dep0 = back(cmp_idx);
        if (compares_ >= 64) {
            const double p =
                double(matchesSeen_) / double(compares_);
            br.mispredicted =
                rng_.chance(2.0 * p * (1.0 - p) * hotFactor_);
        }
        emit(br);
        if (match) {
            Uop pl;
            pl.kind = UopKind::Load;
            pl.phase = UopPhase::Emit;
            pl.addr = node_addr + HashIndex::kNodePayloadOffset;
            pl.dep0 = back(addr_producer);
            std::size_t pl_idx = emit(pl);

            Uop st;
            st.kind = UopKind::Store;
            st.phase = UopPhase::Emit;
            st.addr = outCursor_;
            st.dep0 = back(pl_idx);
            emit(st);
            if (opts_.outBase)
                outCursor_ += 16;
        }

        // Next-pointer load and the loop-exit branch.
        Uop np;
        np.kind = UopKind::Load;
        np.phase = UopPhase::Walk;
        np.addr = node_addr + HashIndex::kNodeNextOffset;
        np.dep0 = back(addr_producer);
        std::size_t np_idx = emit(np);

        const HashIndex::Node *next = node->next;

        Uop exit_br;
        exit_br.kind = UopKind::Branch;
        exit_br.phase = UopPhase::Walk;
        exit_br.dep0 = back(np_idx);
        if (!next) {
            // Bucket-exit: unpredictable list length.
            exit_br.mispredicted =
                rng_.chance(opts_.mispredictRate * hotFactor_);
            exit_br.endOfProbe = true;
        }
        emit(exit_br);

        addr_producer = np_idx;
        node_addr = Addr(reinterpret_cast<std::uintptr_t>(next));
        node = next;
    }
}

} // namespace widx::cpu
