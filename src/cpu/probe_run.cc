#include "cpu/probe_run.hh"

namespace widx::cpu {

CoreResult
runProbeLoop(const db::HashIndex &index, const db::Column &probe_keys,
             const ProbeRunConfig &config)
{
    sim::MemSystem mem(config.memParams);
    ProbeTraceGen trace(index, probe_keys, config.trace);
    const u64 warmup =
        u64(double(probe_keys.size()) * config.warmupFraction);
    return runCore(trace, mem, config.core, warmup);
}

} // namespace widx::cpu
