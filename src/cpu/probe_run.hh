/**
 * @file
 * Convenience wrapper: run the Listing 1 probe loop for a given index
 * and probe column on a baseline core model, with a fresh Table 2
 * memory system and the SimFlex-style warmup window.
 */

#ifndef WIDX_CPU_PROBE_RUN_HH
#define WIDX_CPU_PROBE_RUN_HH

#include "cpu/core_model.hh"
#include "cpu/trace_gen.hh"
#include "sim/params.hh"

namespace widx::cpu {

struct ProbeRunConfig
{
    CoreParams core = CoreParams::ooo();
    sim::Params memParams{};
    TraceGenOptions trace{};
    /** Fraction of probes excluded as warmup. */
    double warmupFraction = 0.1;
};

/** Simulate probing every key of probe_keys against index. */
CoreResult runProbeLoop(const db::HashIndex &index,
                        const db::Column &probe_keys,
                        const ProbeRunConfig &config);

} // namespace widx::cpu

#endif // WIDX_CPU_PROBE_RUN_HH
