/**
 * @file
 * Baseline core timing models (Table 2):
 *
 *  - OoO, Xeon-like: 4-wide, 128-entry ROB. Dispatch is in order and
 *    bounded by width and ROB occupancy; execution is dataflow
 *    (completion = max of dependences) with loads timed by the shared
 *    sim::MemSystem; commit is in order. Mispredicted branches gate
 *    the dispatch of younger µops until they resolve plus a refill
 *    penalty — the mechanism that bounds run-ahead across probes.
 *
 *  - In-order, Cortex-A8-like: 2-wide, in-order issue (issue also
 *    waits for dependences), a small number of outstanding misses,
 *    and a shorter refill penalty.
 *
 * The model is a single O(n) pass over the µop stream — no per-cycle
 * loop — which makes simulating hundreds of millions of µops cheap
 * while preserving width/window/dependence/misprediction effects.
 */

#ifndef WIDX_CPU_CORE_MODEL_HH
#define WIDX_CPU_CORE_MODEL_HH

#include "common/stats.hh"
#include "cpu/trace.hh"
#include "sim/mem_system.hh"

namespace widx::cpu {

struct CoreParams
{
    const char *name = "core";
    unsigned width = 4;        ///< dispatch/commit width
    unsigned robEntries = 128; ///< in-flight µop window
    bool inOrderIssue = false; ///< issue waits for dependences
    unsigned maxOutstandingLoads = 16;
    Cycle mispredictPenalty = 12; ///< front-end refill after resolve
    Cycle aluLatency = 1;
    /** A cache-missing load blocks all younger issue (simple in-order
     *  cores without run-ahead under misses). */
    bool blockOnMiss = false;

    /** Table 2 "OoO (Xeon-like): 4-wide, 128-entry ROB". */
    static CoreParams
    ooo()
    {
        return CoreParams{"ooo", 4, 128, false, 16, 12, 1, false};
    }

    /** Table 2 "In-order (Cortex A8-like): 2-wide". The A8-class
     *  core blocks on cache misses (no run-ahead) and pays a deep
     *  (13-stage) pipeline refill on mispredicts. */
    static CoreParams
    inorder()
    {
        return CoreParams{"inorder", 2, 16, true, 1, 13, 1, true};
    }
};

struct CoreResult
{
    u64 uops = 0;
    u64 loads = 0;
    u64 stores = 0;
    u64 branches = 0;
    u64 mispredicts = 0;
    u64 probes = 0;

    Cycle totalCycles = 0;

    /** Post-warmup window. */
    u64 measuredProbes = 0;
    Cycle measuredCycles = 0;
    double cyclesPerTuple = 0.0;

    /** Fig. 2b attribution over the measured window: per-phase sums
     *  of µop execution latencies (their ratio splits index time
     *  into hashing vs walking). */
    Cycle hashCycles = 0;
    Cycle walkCycles = 0;

    double
    hashFraction() const
    {
        Cycle t = hashCycles + walkCycles;
        return t == 0 ? 0.0 : double(hashCycles) / double(t);
    }

    StatSet memStats;
};

/**
 * Run a µop trace through a core model.
 *
 * @param trace µop source (consumed to exhaustion).
 * @param mem memory system the core issues loads/stores through.
 * @param params core configuration.
 * @param warmup_probes probes excluded from the measured window.
 */
CoreResult runCore(TraceSource &trace, sim::MemSystem &mem,
                   const CoreParams &params, u64 warmup_probes = 0);

} // namespace widx::cpu

#endif // WIDX_CPU_CORE_MODEL_HH
