/**
 * @file
 * Micro-op trace representation for the baseline core models.
 *
 * The baseline cores (OoO Xeon-like, in-order A8-like) execute the
 * indexing loop of Listing 1 as a stream of micro-ops with explicit
 * data dependences. Dependences are expressed as backward distances
 * (dep = k means "depends on the µop k positions earlier"), which
 * keeps traces streamable: the Large join kernel would otherwise need
 * gigabytes of trace storage.
 */

#ifndef WIDX_CPU_TRACE_HH
#define WIDX_CPU_TRACE_HH

#include "common/types.hh"

namespace widx::cpu {

enum class UopKind : u8
{
    Alu,
    Load,
    Store,
    Branch,
};

/** Pipeline phase a µop belongs to, for Fig. 2b attribution. */
enum class UopPhase : u8
{
    Hash, ///< key fetch + key hashing + bucket address formation
    Walk, ///< node-list traversal
    Emit, ///< match materialization
};

struct Uop
{
    UopKind kind = UopKind::Alu;
    UopPhase phase = UopPhase::Hash;
    /** Execution latency for ALU µops. Hash steps cost more than 1:
     *  one HashStep is a fused shift+combine that Widx executes in a
     *  single cycle but a general-purpose core splits into a
     *  shift+op pair (2 cycles), and double-typed keys add
     *  normalization work (5 cycles) — the q20 effect. */
    u8 latency = 1;
    /** Backward dependence distances; 0 = no dependence. */
    u16 dep0 = 0;
    u16 dep1 = 0;
    /** Effective address for loads/stores. */
    Addr addr = 0;
    /** Branch predicted incorrectly: younger µops cannot dispatch
     *  until this branch resolves plus the refill penalty. */
    bool mispredicted = false;
    /** Last µop of a probe (closes the per-probe attribution). */
    bool endOfProbe = false;
};

/** Streaming source of µops. */
class TraceSource
{
  public:
    virtual ~TraceSource() = default;

    /** Produce the next µop. @return false at end of trace. */
    virtual bool next(Uop &out) = 0;
};

} // namespace widx::cpu

#endif // WIDX_CPU_TRACE_HH
