#include "cpu/core_model.hh"

#include <algorithm>
#include <vector>

#include "common/logging.hh"

namespace widx::cpu {

namespace {

/** Ring capacity for per-µop timing history; bounds both the ROB and
 *  the longest dependence distance (deep skewed buckets). */
constexpr u64 kRing = 8192;

/** Small sorted set of outstanding load completion times. */
class OutstandingLoads
{
  public:
    explicit OutstandingLoads(unsigned cap)
        : cap_(cap)
    {
    }

    /** Earliest cycle a new load may issue, given the cap. */
    Cycle
    admissible(Cycle want)
    {
        prune(want);
        if (active_.size() < cap_)
            return want;
        Cycle earliest = active_.front();
        prune(earliest);
        return std::max(want, earliest);
    }

    void
    add(Cycle completion)
    {
        active_.insert(
            std::upper_bound(active_.begin(), active_.end(),
                             completion),
            completion);
    }

  private:
    void
    prune(Cycle now)
    {
        while (!active_.empty() && active_.front() <= now)
            active_.erase(active_.begin());
    }

    unsigned cap_;
    std::vector<Cycle> active_;
};

} // namespace

CoreResult
runCore(TraceSource &trace, sim::MemSystem &mem,
        const CoreParams &params, u64 warmup_probes)
{
    fatal_if(params.width == 0, "core width must be nonzero");
    fatal_if(params.robEntries == 0, "ROB must be nonzero");
    fatal_if(params.robEntries > kRing, "ROB exceeds history ring");

    std::vector<Cycle> dispatch(kRing, 0);
    std::vector<Cycle> completion(kRing, 0);
    std::vector<Cycle> commit(kRing, 0);
    auto at = [&](std::vector<Cycle> &v, u64 i) -> Cycle & {
        return v[i & (kRing - 1)];
    };

    OutstandingLoads loads(params.maxOutstandingLoads);

    CoreResult res;
    Cycle gate = 0;       // mispredict dispatch gate
    Cycle last_issue = 0; // in-order issue pointer
    Cycle last_commit = 0;

    // Fig. 2b phase attribution: accumulate each µop's execution
    // latency (completion - start) into its phase. Under out-of-order
    // overlap the two sums are not wall-clock segments, but their
    // ratio is a stable estimate of where the index time goes — key
    // hashing versus node-list walking.

    // Warmup window state.
    bool warmed = warmup_probes == 0;
    Cycle measured_start = 0;
    Cycle hash_base = 0;
    Cycle walk_base = 0;
    if (warmed)
        mem.resetStats();

    Uop u;
    u64 i = 0;
    while (trace.next(u)) {
        ++res.uops;

        // --- Dispatch: in order, width-limited, ROB-limited, gated
        //     by unresolved mispredicts.
        Cycle d = gate;
        if (i >= params.width)
            d = std::max(d, at(dispatch, i - params.width) + 1);
        if (i >= params.robEntries)
            d = std::max(d, at(commit, i - params.robEntries));
        at(dispatch, i) = d;

        // --- Execute.
        Cycle start = d;
        auto dep_time = [&](u16 dep) -> Cycle {
            if (dep == 0)
                return 0;
            panic_if(u64(dep) > i || u64(dep) >= kRing,
                     "dependence distance %u out of window", dep);
            return at(completion, i - dep);
        };
        start = std::max(start, dep_time(u.dep0));
        start = std::max(start, dep_time(u.dep1));
        if (params.inOrderIssue) {
            start = std::max(start, last_issue);
            last_issue = start;
        }

        Cycle done;
        // Phase-attributed latency: for loads that merely wait on a
        // fill someone else initiated (hit-under-fill / MSHR merge),
        // only the cache-hit latency is charged, so one miss is not
        // multiply-counted across the sharing loads.
        Cycle phase_lat = 0;
        switch (u.kind) {
          case UopKind::Load: {
            start = loads.admissible(start);
            if (params.inOrderIssue)
                last_issue = start;
            sim::AccessResult r =
                mem.access(start, u.addr, sim::AccessKind::Load);
            done = r.ready;
            loads.add(done);
            ++res.loads;
            const bool initiator =
                !r.mshrMerged && (r.level == sim::HitLevel::Memory ||
                                  r.level == sim::HitLevel::LLC);
            phase_lat = initiator ? done - start : 2;
            // Simple in-order cores stall completely on a miss.
            if (params.blockOnMiss && done > start + 4)
                last_issue = done;
            break;
          }
          case UopKind::Store: {
            mem.access(start, u.addr, sim::AccessKind::Store);
            done = start + 1;
            phase_lat = 1;
            ++res.stores;
            break;
          }
          case UopKind::Branch:
            done = start + params.aluLatency;
            phase_lat = done - start;
            ++res.branches;
            if (u.mispredicted) {
                ++res.mispredicts;
                gate = std::max(gate,
                                done + params.mispredictPenalty);
            }
            break;
          case UopKind::Alu:
          default:
            done = start + std::max<Cycle>(params.aluLatency,
                                           u.latency);
            phase_lat = done - start;
            break;
        }
        at(completion, i) = done;

#ifdef WIDX_CORE_TRACE_DEBUG
        if (i < 64)
            std::fprintf(stderr,
                         "uop %3llu kind=%d disp=%llu start=%llu "
                         "done=%llu gate=%llu\n",
                         (unsigned long long)i, int(u.kind),
                         (unsigned long long)d,
                         (unsigned long long)start,
                         (unsigned long long)done,
                         (unsigned long long)gate);
#endif

        // --- Commit: in order, width-limited.
        Cycle c = std::max(done, last_commit);
        if (i >= params.width)
            c = std::max(c, at(commit, i - params.width) + 1);
        at(commit, i) = c;
        last_commit = c;

        // --- Phase attribution.
        if (u.phase == UopPhase::Hash)
            res.hashCycles += phase_lat;
        else
            res.walkCycles += phase_lat;
        if (u.endOfProbe) {
            ++res.probes;

            if (!warmed && res.probes >= warmup_probes) {
                warmed = true;
                measured_start = last_commit;
                hash_base = res.hashCycles;
                walk_base = res.walkCycles;
                mem.resetStats();
            }
        }

        ++i;
    }

    res.totalCycles = last_commit;
    res.measuredCycles = last_commit - measured_start;
    res.measuredProbes = res.probes - std::min(res.probes,
                                               warmup_probes);
    res.cyclesPerTuple =
        res.measuredProbes == 0
            ? 0.0
            : double(res.measuredCycles) / double(res.measuredProbes);
    res.hashCycles -= hash_base;
    res.walkCycles -= walk_base;
    mem.exportStats(res.memStats);
    return res;
}

} // namespace widx::cpu
