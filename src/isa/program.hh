/**
 * @file
 * A complete Widx unit program: instructions plus the initial register
 * image (hashing constants, base addresses), as stored in the Widx
 * control block of Section 4.3.
 */

#ifndef WIDX_ISA_PROGRAM_HH
#define WIDX_ISA_PROGRAM_HH

#include <array>
#include <string>
#include <vector>

#include "common/types.hh"
#include "isa/instruction.hh"

namespace widx::isa {

class Program
{
  public:
    Program() = default;
    Program(std::string name, UnitKind unit)
        : name_(std::move(name)), unit_(unit)
    {
        regs_.fill(0);
    }

    const std::string &name() const { return name_; }
    UnitKind unit() const { return unit_; }

    /** Append an instruction; returns its index. */
    unsigned
    append(const Instruction &inst)
    {
        code_.push_back(inst);
        return unsigned(code_.size()) - 1;
    }

    const std::vector<Instruction> &code() const { return code_; }
    unsigned size() const { return unsigned(code_.size()); }

    const Instruction &
    at(unsigned pc) const
    {
        return code_.at(pc);
    }

    /** Set the initial value of a register (a control-block constant). */
    void setReg(unsigned r, u64 value);

    u64 reg(unsigned r) const { return regs_.at(r); }

    const std::array<u64, kNumRegs> &regImage() const { return regs_; }

    /**
     * Validate the program against the Table 1 legality matrix and
     * structural rules (branch targets in range, no writes to r0).
     *
     * @param error receives a description of the first violation.
     * @return true when the program is well-formed for its unit.
     */
    bool validate(std::string &error) const;

    /** Disassemble the whole program, one instruction per line. */
    std::string disassemble() const;

    /**
     * Relax the Table 1 per-unit legality check (structural checks
     * remain). Used only for the Figure 3(a)/(b) ablation design
     * points, which predate the specialized unit split.
     */
    void setRelaxedLegality(bool relaxed) { relaxed_ = relaxed; }
    bool relaxedLegality() const { return relaxed_; }

    /** Count instructions matching a predicate-free opcode. */
    unsigned countOpcode(Opcode op) const;

  private:
    std::string name_;
    UnitKind unit_ = UnitKind::Dispatcher;
    bool relaxed_ = false;
    std::vector<Instruction> code_;
    std::array<u64, kNumRegs> regs_{};
};

} // namespace widx::isa

#endif // WIDX_ISA_PROGRAM_HH
