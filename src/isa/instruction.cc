#include "isa/instruction.hh"

#include <cstdio>

#include "common/bitops.hh"
#include "common/logging.hh"

namespace widx::isa {

u64
Instruction::encode() const
{
    u64 w = 0;
    w = insertBits(w, 63, 58, u64(op));
    w = insertBits(w, 57, 53, rd);
    w = insertBits(w, 52, 48, ra);
    w = insertBits(w, 47, 43, rb);
    w = insertBits(w, 42, 37, shamt);
    w = insertBits(w, 36, 36, u64(sdir));
    w = insertBits(w, 31, 16, u64(u16(imm)));
    return w;
}

Instruction
Instruction::decode(u64 word)
{
    Instruction inst;
    inst.op = Opcode(bits(word, 63, 58));
    panic_if(inst.op >= Opcode::NumOpcodes,
             "undecodable opcode field %llu",
             (unsigned long long)bits(word, 63, 58));
    inst.rd = u8(bits(word, 57, 53));
    inst.ra = u8(bits(word, 52, 48));
    inst.rb = u8(bits(word, 47, 43));
    inst.shamt = u8(bits(word, 42, 37));
    inst.sdir = ShiftDir(bits(word, 36, 36));
    inst.imm = i16(u16(bits(word, 31, 16)));
    return inst;
}

std::string
Instruction::toString() const
{
    char buf[96];
    const char *name = opcodeName(op);
    switch (op) {
      case Opcode::ADD:
      case Opcode::AND:
      case Opcode::XOR:
      case Opcode::CMP:
      case Opcode::CMP_LE:
        std::snprintf(buf, sizeof(buf), "%-7s r%u, r%u, r%u", name, rd,
                      ra, rb);
        break;
      case Opcode::SHL:
      case Opcode::SHR:
        std::snprintf(buf, sizeof(buf), "%-7s r%u, r%u, #%u", name, rd,
                      ra, shamt);
        break;
      case Opcode::ADD_SHF:
      case Opcode::AND_SHF:
      case Opcode::XOR_SHF:
        std::snprintf(buf, sizeof(buf), "%-7s r%u, r%u, r%u, %s #%u",
                      name, rd, ra, rb,
                      sdir == ShiftDir::Lsl ? "lsl" : "lsr", shamt);
        break;
      case Opcode::LD:
        std::snprintf(buf, sizeof(buf), "%-7s r%u, [r%u + %d]", name,
                      rd, ra, int(imm));
        break;
      case Opcode::ST:
        std::snprintf(buf, sizeof(buf), "%-7s [r%u + %d], r%u", name,
                      ra, int(imm), rb);
        break;
      case Opcode::TOUCH:
        std::snprintf(buf, sizeof(buf), "%-7s [r%u + %d]", name, ra,
                      int(imm));
        break;
      case Opcode::BA:
        std::snprintf(buf, sizeof(buf), "%-7s @%d", name, int(imm));
        break;
      case Opcode::BLE:
        std::snprintf(buf, sizeof(buf), "%-7s r%u, r%u, @%d", name, ra,
                      rb, int(imm));
        break;
      default:
        std::snprintf(buf, sizeof(buf), "<bad op %u>", unsigned(op));
        break;
    }
    return buf;
}

namespace {

void
checkReg(u8 r)
{
    panic_if(r >= kNumRegs, "register r%u out of range", r);
}

void
checkShamt(u8 s)
{
    panic_if(s >= 64, "shift amount %u out of range", s);
}

} // namespace

Instruction
Instruction::alu(Opcode op, u8 rd, u8 ra, u8 rb)
{
    panic_if(op != Opcode::ADD && op != Opcode::AND &&
             op != Opcode::XOR && op != Opcode::CMP &&
             op != Opcode::CMP_LE,
             "alu() used with non-ALU opcode %s", opcodeName(op));
    checkReg(rd);
    checkReg(ra);
    checkReg(rb);
    Instruction i;
    i.op = op;
    i.rd = rd;
    i.ra = ra;
    i.rb = rb;
    return i;
}

Instruction
Instruction::shiftImm(Opcode op, u8 rd, u8 ra, u8 shamt)
{
    panic_if(op != Opcode::SHL && op != Opcode::SHR,
             "shiftImm() used with %s", opcodeName(op));
    checkReg(rd);
    checkReg(ra);
    checkShamt(shamt);
    Instruction i;
    i.op = op;
    i.rd = rd;
    i.ra = ra;
    i.shamt = shamt;
    return i;
}

Instruction
Instruction::fused(Opcode op, u8 rd, u8 ra, u8 rb, ShiftDir dir,
                   u8 shamt)
{
    panic_if(op != Opcode::ADD_SHF && op != Opcode::AND_SHF &&
             op != Opcode::XOR_SHF,
             "fused() used with %s", opcodeName(op));
    checkReg(rd);
    checkReg(ra);
    checkReg(rb);
    checkShamt(shamt);
    Instruction i;
    i.op = op;
    i.rd = rd;
    i.ra = ra;
    i.rb = rb;
    i.sdir = dir;
    i.shamt = shamt;
    return i;
}

Instruction
Instruction::load(u8 rd, u8 ra, i16 disp)
{
    checkReg(rd);
    checkReg(ra);
    Instruction i;
    i.op = Opcode::LD;
    i.rd = rd;
    i.ra = ra;
    i.imm = disp;
    return i;
}

Instruction
Instruction::store(u8 ra, i16 disp, u8 rb)
{
    checkReg(ra);
    checkReg(rb);
    Instruction i;
    i.op = Opcode::ST;
    i.ra = ra;
    i.rb = rb;
    i.imm = disp;
    return i;
}

Instruction
Instruction::touchOp(u8 ra, i16 disp)
{
    checkReg(ra);
    Instruction i;
    i.op = Opcode::TOUCH;
    i.ra = ra;
    i.imm = disp;
    return i;
}

Instruction
Instruction::branchAlways(i16 target)
{
    Instruction i;
    i.op = Opcode::BA;
    i.imm = target;
    return i;
}

Instruction
Instruction::branchLe(u8 ra, u8 rb, i16 target)
{
    checkReg(ra);
    checkReg(rb);
    Instruction i;
    i.op = Opcode::BLE;
    i.ra = ra;
    i.rb = rb;
    i.imm = target;
    return i;
}

} // namespace widx::isa
