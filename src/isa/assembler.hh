/**
 * @file
 * Two-pass text assembler for the Widx ISA.
 *
 * Syntax (one instruction per line; ';' and '#' start comments, except
 * '#' immediately before a number, which introduces an immediate):
 *
 *   loop:
 *       ld      r4, [r2 + 0]
 *       xorshf  r5, r4, r4, lsr #33
 *       addshf  r5, r5, r5, lsl #3
 *       shr     r6, r5, #16
 *       cmp     r7, r4, r9
 *       ble     r8, r7, done
 *       ba      loop
 *   done:
 *
 * Register aliases: zero (r0), qpop (r30), qpush (r31).
 * Branch targets are labels; the label one past the last instruction
 * (or the reserved label "halt") is the unit's halt address.
 */

#ifndef WIDX_ISA_ASSEMBLER_HH
#define WIDX_ISA_ASSEMBLER_HH

#include <string>

#include "isa/program.hh"

namespace widx::isa {

/**
 * Assemble source text into a Program.
 *
 * @param name program name recorded in the result.
 * @param unit unit kind the program is intended for (legality is
 *        checked by Program::validate, not here).
 * @param source assembler text.
 * @param error receives a "line N: message" diagnostic on failure.
 * @param program receives the assembled program on success.
 * @return true on success.
 */
bool assemble(const std::string &name, UnitKind unit,
              const std::string &source, std::string &error,
              Program &program);

/** Convenience wrapper that calls fatal() on assembly errors. */
Program assembleOrDie(const std::string &name, UnitKind unit,
                      const std::string &source);

} // namespace widx::isa

#endif // WIDX_ISA_ASSEMBLER_HH
