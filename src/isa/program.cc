#include "isa/program.hh"

#include <cstdio>

#include "common/logging.hh"

namespace widx::isa {

void
Program::setReg(unsigned r, u64 value)
{
    panic_if(r >= kNumRegs, "register r%u out of range", r);
    panic_if(r == kRegZero && value != 0,
             "r0 is hardwired to zero");
    regs_[r] = value;
}

bool
Program::validate(std::string &error) const
{
    char buf[160];
    for (unsigned pc = 0; pc < code_.size(); ++pc) {
        const Instruction &inst = code_[pc];
        if (inst.op >= Opcode::NumOpcodes) {
            std::snprintf(buf, sizeof(buf), "@%u: bad opcode", pc);
            error = buf;
            return false;
        }
        if (!relaxed_ && !legalFor(inst.op, unit_)) {
            std::snprintf(buf, sizeof(buf),
                          "@%u: %s is not legal on a %s unit", pc,
                          opcodeName(inst.op), unitKindName(unit_));
            error = buf;
            return false;
        }
        if (isBranch(inst.op)) {
            // A branch to one-past-the-end is the halt convention.
            if (inst.imm < 0 || unsigned(inst.imm) > code_.size()) {
                std::snprintf(buf, sizeof(buf),
                              "@%u: branch target %d out of range "
                              "[0, %zu]", pc, int(inst.imm),
                              code_.size());
                error = buf;
                return false;
            }
        }
        const bool writes_rd = !isBranch(inst.op) &&
            inst.op != Opcode::ST && inst.op != Opcode::TOUCH;
        if (writes_rd && inst.rd == kRegZero) {
            std::snprintf(buf, sizeof(buf),
                          "@%u: write to hardwired-zero r0", pc);
            error = buf;
            return false;
        }
    }
    error.clear();
    return true;
}

std::string
Program::disassemble() const
{
    std::string out;
    char buf[16];
    for (unsigned pc = 0; pc < code_.size(); ++pc) {
        std::snprintf(buf, sizeof(buf), "%3u:  ", pc);
        out += buf;
        out += code_[pc].toString();
        out += '\n';
    }
    return out;
}

unsigned
Program::countOpcode(Opcode op) const
{
    unsigned n = 0;
    for (const Instruction &inst : code_)
        if (inst.op == op)
            ++n;
    return n;
}

} // namespace widx::isa
