/**
 * @file
 * The Widx instruction set (paper Table 1).
 *
 * A minimal 64-bit RISC ISA shared by the three Widx unit types. In
 * addition to the essential RISC instructions it provides fused
 * shift-combine instructions (ADD-SHF / AND-SHF / XOR-SHF) that
 * accelerate multiply-free hash functions, and TOUCH, a non-binding
 * prefetch that demands a block ahead of its use.
 *
 * Per-unit legality follows Table 1: ST is producer-only, ADD-SHF is
 * available to the dispatcher and walkers, AND-SHF / XOR-SHF are
 * dispatcher-only (they exist to accelerate key hashing).
 */

#ifndef WIDX_ISA_ISA_HH
#define WIDX_ISA_ISA_HH

#include <string>

#include "common/types.hh"

namespace widx::isa {

/** Widx opcodes, one per Table 1 row. */
enum class Opcode : u8
{
    ADD,    ///< rd = ra + rb
    AND,    ///< rd = ra & rb
    BA,     ///< PC = target (branch always)
    BLE,    ///< if (ra <= rb) PC = target (unsigned)
    CMP,    ///< rd = (ra == rb) ? 1 : 0
    CMP_LE, ///< rd = (ra <= rb) ? 1 : 0 (unsigned)
    LD,     ///< rd = mem64[ra + imm]
    SHL,    ///< rd = ra << shamt
    SHR,    ///< rd = ra >> shamt (logical)
    ST,     ///< mem64[ra + imm] = rb  (producer only)
    TOUCH,  ///< prefetch mem[ra + imm] (non-binding)
    XOR,    ///< rd = ra ^ rb
    ADD_SHF, ///< rd = ra + shifted(rb)  (dispatcher, walker)
    AND_SHF, ///< rd = ra & shifted(rb)  (dispatcher only)
    XOR_SHF, ///< rd = ra ^ shifted(rb)  (dispatcher only)
    NumOpcodes,
};

/** The three Widx unit types of Figure 6. */
enum class UnitKind : u8
{
    Dispatcher, ///< H: hashes input keys
    Walker,     ///< W: traverses node lists
    Producer,   ///< P: emits matches to the results region
};

/** Number of software-exposed registers per unit (Section 4.1). */
constexpr unsigned kNumRegs = 32;

/** r0 is hardwired to zero (our ABI choice; the paper leaves the
 *  register convention unspecified). */
constexpr unsigned kRegZero = 0;

/**
 * Queue-interface registers (our realization of the paper's
 * "units communicate via queues", Section 4.1):
 *   - reading r30 pops the unit's input queue (stalling while empty)
 *     and yields the entry's first word; the first word is also
 *     latched into r29 and the second word into r31, where they stay
 *     readable until the next pop;
 *   - writing r30 stages the first word of an outgoing entry;
 *   - writing r31 pushes {staged word, written value} to the unit's
 *     output queue (stalling while full).
 *
 * The r29 latch lets a program fuse the pop with a use (e.g.\ the
 * walker's `cmp r12, r30, r2` null check) and still refer to the
 * popped word afterwards.
 */
constexpr unsigned kRegLatchW0 = 29;
constexpr unsigned kRegQueuePop = 30;
constexpr unsigned kRegQueuePush = 31;

/** Shift direction for the fused shift-combine instructions. */
enum class ShiftDir : u8
{
    Lsl, ///< logical shift left
    Lsr, ///< logical shift right
};

/** Lower-case mnemonic for an opcode (e.g.\ "xorshf"). */
const char *opcodeName(Opcode op);

/** Parse a mnemonic; returns NumOpcodes when unknown. */
Opcode opcodeFromName(const std::string &name);

/** True when the opcode may appear in a program for the given unit
 *  (Table 1 legality matrix). */
bool legalFor(Opcode op, UnitKind unit);

/** True for BA / BLE. */
bool isBranch(Opcode op);

/** True for LD / ST / TOUCH. */
bool isMemory(Opcode op);

/** Human-readable unit name ("dispatcher"/"walker"/"producer"). */
const char *unitKindName(UnitKind unit);

} // namespace widx::isa

#endif // WIDX_ISA_ISA_HH
