#include "isa/assembler.hh"

#include <cctype>
#include <cstdio>
#include <map>
#include <vector>

#include "common/logging.hh"

namespace widx::isa {

namespace {

/** One source line reduced to its parts. */
struct Line
{
    int number = 0;                 ///< 1-based source line
    std::vector<std::string> labels;
    std::vector<std::string> tokens; ///< mnemonic + operand tokens
};

std::string
stripComment(const std::string &line)
{
    for (std::size_t i = 0; i < line.size(); ++i) {
        char c = line[i];
        if (c == ';')
            return line.substr(0, i);
        if (c == '/' && i + 1 < line.size() && line[i + 1] == '/')
            return line.substr(0, i);
        // '#' introduces an immediate when followed by a digit or a
        // sign; otherwise it is a comment.
        if (c == '#') {
            bool imm = i + 1 < line.size() &&
                (std::isdigit(u8(line[i + 1])) || line[i + 1] == '-');
            if (!imm)
                return line.substr(0, i);
        }
    }
    return line;
}

/** Split into tokens on whitespace, commas and brackets; brackets and
 *  '+'/'-' inside memory operands become their own tokens. */
std::vector<std::string>
tokenize(const std::string &text)
{
    std::vector<std::string> tokens;
    std::string cur;
    auto flush = [&]() {
        if (!cur.empty()) {
            tokens.push_back(cur);
            cur.clear();
        }
    };
    for (std::size_t i = 0; i < text.size(); ++i) {
        char c = text[i];
        if (std::isspace(u8(c)) || c == ',') {
            flush();
        } else if (c == '[' || c == ']' || c == '+') {
            flush();
            tokens.push_back(std::string(1, c));
        } else if (c == '-' && cur.empty() && i + 1 < text.size() &&
                   std::isdigit(u8(text[i + 1]))) {
            // Negative immediate: keep the sign with the digits.
            cur.push_back(c);
        } else if (c == '-') {
            flush();
            tokens.push_back("+");
            cur.push_back('-');
        } else {
            cur.push_back(c);
        }
    }
    flush();
    return tokens;
}

bool
parseReg(const std::string &tok, u8 &reg)
{
    if (tok == "zero") {
        reg = kRegZero;
        return true;
    }
    if (tok == "qpop") {
        reg = kRegQueuePop;
        return true;
    }
    if (tok == "latch") {
        reg = kRegLatchW0;
        return true;
    }
    if (tok == "qpush") {
        reg = kRegQueuePush;
        return true;
    }
    if (tok.size() < 2 || (tok[0] != 'r' && tok[0] != 'R'))
        return false;
    unsigned v = 0;
    for (std::size_t i = 1; i < tok.size(); ++i) {
        if (!std::isdigit(u8(tok[i])))
            return false;
        v = v * 10 + unsigned(tok[i] - '0');
    }
    if (v >= kNumRegs)
        return false;
    reg = u8(v);
    return true;
}

bool
parseImm(const std::string &tok, long &value)
{
    std::string body = tok;
    if (!body.empty() && body[0] == '#')
        body = body.substr(1);
    if (body.empty())
        return false;
    char *end = nullptr;
    value = std::strtol(body.c_str(), &end, 0);
    return end && *end == '\0';
}

/** Assembler working state for one translation. */
class Assembly
{
  public:
    Assembly(UnitKind unit, const std::string &source)
        : unit_(unit)
    {
        splitLines(source);
    }

    bool
    run(const std::string &name, std::string &error, Program &out)
    {
        if (!collectLabels(error))
            return false;
        Program prog(name, unit_);
        for (const Line &line : lines_) {
            if (line.tokens.empty())
                continue;
            Instruction inst;
            if (!encodeLine(line, inst, error))
                return false;
            prog.append(inst);
        }
        out = std::move(prog);
        return true;
    }

  private:
    void
    splitLines(const std::string &source)
    {
        std::string cur;
        int number = 1;
        auto take = [&]() {
            std::string text = stripComment(cur);
            Line line;
            line.number = number;
            // Peel leading "label:" prefixes.
            for (;;) {
                std::size_t colon = text.find(':');
                if (colon == std::string::npos)
                    break;
                std::string head = text.substr(0, colon);
                // Trim the candidate label.
                std::size_t b = head.find_first_not_of(" \t");
                std::size_t e = head.find_last_not_of(" \t");
                if (b == std::string::npos)
                    break;
                std::string label = head.substr(b, e - b + 1);
                if (label.find_first_of(" \t") != std::string::npos)
                    break;
                line.labels.push_back(label);
                text = text.substr(colon + 1);
            }
            line.tokens = tokenize(text);
            if (!line.labels.empty() || !line.tokens.empty())
                lines_.push_back(std::move(line));
            cur.clear();
            ++number;
        };
        for (char c : source) {
            if (c == '\n')
                take();
            else
                cur.push_back(c);
        }
        take();
    }

    bool
    collectLabels(std::string &error)
    {
        unsigned pc = 0;
        for (const Line &line : lines_) {
            for (const std::string &label : line.labels) {
                if (labels_.count(label)) {
                    error = diag(line, "duplicate label '" + label +
                                 "'");
                    return false;
                }
                labels_[label] = pc;
            }
            if (!line.tokens.empty())
                ++pc;
        }
        programSize_ = pc;
        return true;
    }

    std::string
    diag(const Line &line, const std::string &msg) const
    {
        char buf[256];
        std::snprintf(buf, sizeof(buf), "line %d: %s", line.number,
                      msg.c_str());
        return buf;
    }

    bool
    resolveTarget(const Line &line, const std::string &tok, i16 &out,
                  std::string &error) const
    {
        if (tok == "halt") {
            out = i16(programSize_);
            return true;
        }
        auto it = labels_.find(tok);
        if (it == labels_.end()) {
            long imm;
            if (parseImm(tok, imm)) {
                out = i16(imm);
                return true;
            }
            error = diag(line, "unknown label '" + tok + "'");
            return false;
        }
        out = i16(it->second);
        return true;
    }

    bool
    needTokens(const Line &line, std::size_t n, std::string &error)
        const
    {
        if (line.tokens.size() != n) {
            error = diag(line, "operand count mismatch for '" +
                         line.tokens[0] + "'");
            return false;
        }
        return true;
    }

    bool
    reg(const Line &line, std::size_t idx, u8 &out,
        std::string &error) const
    {
        if (idx >= line.tokens.size() ||
            !parseReg(line.tokens[idx], out)) {
            error = diag(line, "expected register, got '" +
                         (idx < line.tokens.size() ? line.tokens[idx]
                                                   : std::string()) +
                         "'");
            return false;
        }
        return true;
    }

    /** Parse "[ rX + imm ]" or "[ rX ]" starting at token idx.
     *  Returns the number of tokens consumed, or 0 on error. */
    std::size_t
    memOperand(const Line &line, std::size_t idx, u8 &base, i16 &disp,
               std::string &error) const
    {
        const auto &t = line.tokens;
        if (idx >= t.size() || t[idx] != "[") {
            error = diag(line, "expected '[' memory operand");
            return 0;
        }
        u8 r;
        if (idx + 1 >= t.size() || !parseReg(t[idx + 1], r)) {
            error = diag(line, "expected base register");
            return 0;
        }
        base = r;
        if (idx + 2 < t.size() && t[idx + 2] == "]") {
            disp = 0;
            return 3;
        }
        long imm;
        if (idx + 4 < t.size() && t[idx + 2] == "+" &&
            parseImm(t[idx + 3], imm) && t[idx + 4] == "]") {
            disp = i16(imm);
            return 5;
        }
        error = diag(line, "malformed memory operand");
        return 0;
    }

    bool
    encodeLine(const Line &line, Instruction &inst,
               std::string &error) const
    {
        const auto &t = line.tokens;
        Opcode op = opcodeFromName(t[0]);
        if (op == Opcode::NumOpcodes) {
            error = diag(line, "unknown mnemonic '" + t[0] + "'");
            return false;
        }
        u8 rd, ra, rb;
        long imm;
        switch (op) {
          case Opcode::ADD:
          case Opcode::AND:
          case Opcode::XOR:
          case Opcode::CMP:
          case Opcode::CMP_LE:
            if (!needTokens(line, 4, error) ||
                !reg(line, 1, rd, error) || !reg(line, 2, ra, error) ||
                !reg(line, 3, rb, error))
                return false;
            inst = Instruction::alu(op, rd, ra, rb);
            return true;

          case Opcode::SHL:
          case Opcode::SHR:
            if (!needTokens(line, 4, error) ||
                !reg(line, 1, rd, error) || !reg(line, 2, ra, error))
                return false;
            if (!parseImm(t[3], imm) || imm < 0 || imm > 63) {
                error = diag(line, "bad shift amount '" + t[3] + "'");
                return false;
            }
            inst = Instruction::shiftImm(op, rd, ra, u8(imm));
            return true;

          case Opcode::ADD_SHF:
          case Opcode::AND_SHF:
          case Opcode::XOR_SHF: {
            if (!needTokens(line, 6, error) ||
                !reg(line, 1, rd, error) || !reg(line, 2, ra, error) ||
                !reg(line, 3, rb, error))
                return false;
            ShiftDir dir;
            if (t[4] == "lsl") {
                dir = ShiftDir::Lsl;
            } else if (t[4] == "lsr") {
                dir = ShiftDir::Lsr;
            } else {
                error = diag(line, "expected lsl/lsr, got '" + t[4] +
                             "'");
                return false;
            }
            if (!parseImm(t[5], imm) || imm < 0 || imm > 63) {
                error = diag(line, "bad shift amount '" + t[5] + "'");
                return false;
            }
            inst = Instruction::fused(op, rd, ra, rb, dir, u8(imm));
            return true;
          }

          case Opcode::LD: {
            if (!reg(line, 1, rd, error))
                return false;
            i16 disp;
            std::size_t used = memOperand(line, 2, ra, disp, error);
            if (!used || 2 + used != t.size()) {
                if (error.empty())
                    error = diag(line, "malformed ld");
                return false;
            }
            inst = Instruction::load(rd, ra, disp);
            return true;
          }

          case Opcode::ST: {
            i16 disp;
            std::size_t used = memOperand(line, 1, ra, disp, error);
            if (!used || 1 + used + 1 != t.size()) {
                if (error.empty())
                    error = diag(line, "malformed st");
                return false;
            }
            if (!reg(line, 1 + used, rb, error))
                return false;
            inst = Instruction::store(ra, disp, rb);
            return true;
          }

          case Opcode::TOUCH: {
            i16 disp;
            std::size_t used = memOperand(line, 1, ra, disp, error);
            if (!used || 1 + used != t.size()) {
                if (error.empty())
                    error = diag(line, "malformed touch");
                return false;
            }
            inst = Instruction::touchOp(ra, disp);
            return true;
          }

          case Opcode::BA: {
            if (!needTokens(line, 2, error))
                return false;
            i16 target;
            if (!resolveTarget(line, t[1], target, error))
                return false;
            inst = Instruction::branchAlways(target);
            return true;
          }

          case Opcode::BLE: {
            if (!needTokens(line, 4, error) ||
                !reg(line, 1, ra, error) || !reg(line, 2, rb, error))
                return false;
            i16 target;
            if (!resolveTarget(line, t[3], target, error))
                return false;
            inst = Instruction::branchLe(ra, rb, target);
            return true;
          }

          default:
            error = diag(line, "unhandled mnemonic");
            return false;
        }
    }

    UnitKind unit_;
    std::vector<Line> lines_;
    std::map<std::string, unsigned> labels_;
    unsigned programSize_ = 0;
};

} // namespace

bool
assemble(const std::string &name, UnitKind unit,
         const std::string &source, std::string &error,
         Program &program)
{
    Assembly assembly(unit, source);
    return assembly.run(name, error, program);
}

Program
assembleOrDie(const std::string &name, UnitKind unit,
              const std::string &source)
{
    Program prog;
    std::string error;
    if (!assemble(name, unit, source, error, prog))
        fatal("assembly of '%s' failed: %s", name.c_str(),
              error.c_str());
    std::string verr;
    if (!prog.validate(verr))
        fatal("program '%s' is not valid: %s", name.c_str(),
              verr.c_str());
    return prog;
}

} // namespace widx::isa
