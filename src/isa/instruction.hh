/**
 * @file
 * Decoded Widx instruction representation and its 64-bit encoding.
 *
 * Encoding layout (bit ranges inclusive):
 *   [63:58] opcode
 *   [57:53] rd
 *   [52:48] ra
 *   [47:43] rb
 *   [42:37] shamt
 *   [36]    shift direction (0 = lsl, 1 = lsr)
 *   [31:16] imm16: sign-extended LD/ST/TOUCH byte displacement, or the
 *           absolute instruction index of a branch target
 */

#ifndef WIDX_ISA_INSTRUCTION_HH
#define WIDX_ISA_INSTRUCTION_HH

#include <string>

#include "common/types.hh"
#include "isa/isa.hh"

namespace widx::isa {

struct Instruction
{
    Opcode op = Opcode::ADD;
    u8 rd = 0;       ///< destination register
    u8 ra = 0;       ///< first source register
    u8 rb = 0;       ///< second source register
    u8 shamt = 0;    ///< shift amount (0..63)
    ShiftDir sdir = ShiftDir::Lsl;
    i16 imm = 0;     ///< displacement or branch target index

    /** Pack into the 64-bit machine encoding. */
    u64 encode() const;

    /** Unpack from the 64-bit machine encoding. */
    static Instruction decode(u64 word);

    /** Disassemble to assembler syntax (labels become indices). */
    std::string toString() const;

    bool operator==(const Instruction &o) const = default;

    // --- Constructors for each instruction form -----------------------

    static Instruction alu(Opcode op, u8 rd, u8 ra, u8 rb);
    static Instruction shiftImm(Opcode op, u8 rd, u8 ra, u8 shamt);
    static Instruction fused(Opcode op, u8 rd, u8 ra, u8 rb,
                             ShiftDir dir, u8 shamt);
    static Instruction load(u8 rd, u8 ra, i16 disp);
    static Instruction store(u8 ra, i16 disp, u8 rb);
    static Instruction touchOp(u8 ra, i16 disp);
    static Instruction branchAlways(i16 target);
    static Instruction branchLe(u8 ra, u8 rb, i16 target);
};

} // namespace widx::isa

#endif // WIDX_ISA_INSTRUCTION_HH
