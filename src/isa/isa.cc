#include "isa/isa.hh"

#include <array>

#include "common/logging.hh"

namespace widx::isa {

namespace {

struct OpInfo
{
    const char *name;
    bool dispatcher;
    bool walker;
    bool producer;
};

// Table 1 of the paper: mnemonic and per-unit availability.
constexpr std::array<OpInfo, std::size_t(Opcode::NumOpcodes)> kOpTable{{
    {"add", true, true, true},
    {"and", true, true, true},
    {"ba", true, true, true},
    {"ble", true, true, true},
    {"cmp", true, true, true},
    {"cmple", true, true, true},
    {"ld", true, true, true},
    {"shl", true, true, true},
    {"shr", true, true, true},
    {"st", false, false, true},
    {"touch", true, true, true},
    {"xor", true, true, true},
    {"addshf", true, true, false},
    {"andshf", true, false, false},
    {"xorshf", true, false, false},
}};

} // namespace

const char *
opcodeName(Opcode op)
{
    panic_if(op >= Opcode::NumOpcodes, "bad opcode %u", unsigned(op));
    return kOpTable[std::size_t(op)].name;
}

Opcode
opcodeFromName(const std::string &name)
{
    for (std::size_t i = 0; i < kOpTable.size(); ++i)
        if (name == kOpTable[i].name)
            return Opcode(i);
    return Opcode::NumOpcodes;
}

bool
legalFor(Opcode op, UnitKind unit)
{
    panic_if(op >= Opcode::NumOpcodes, "bad opcode %u", unsigned(op));
    const OpInfo &info = kOpTable[std::size_t(op)];
    switch (unit) {
      case UnitKind::Dispatcher:
        return info.dispatcher;
      case UnitKind::Walker:
        return info.walker;
      case UnitKind::Producer:
        return info.producer;
    }
    return false;
}

bool
isBranch(Opcode op)
{
    return op == Opcode::BA || op == Opcode::BLE;
}

bool
isMemory(Opcode op)
{
    return op == Opcode::LD || op == Opcode::ST || op == Opcode::TOUCH;
}

const char *
unitKindName(UnitKind unit)
{
    switch (unit) {
      case UnitKind::Dispatcher:
        return "dispatcher";
      case UnitKind::Walker:
        return "walker";
      case UnitKind::Producer:
        return "producer";
    }
    return "unknown";
}

} // namespace widx::isa
