/**
 * @file
 * Bounded lock-light span ring for per-request tracing.
 *
 * A request that opts in (nonzero `SubmitOptions::traceId`, carried
 * over the wire by the trace-id frame flag) gets an instant span
 * event stamped at each point the latency board already touches:
 * submit, window seal, first walker claim, drain done, and
 * completion reap. Events land in a fixed-size power-of-two ring;
 * under overload the ring overwrites its oldest entries — tracing
 * never blocks, allocates, or back-pressures the request path.
 *
 * Writer protocol (wait-free): a writer claims a global ticket with
 * one relaxed fetch_add, then publishes into its slot under a
 * per-slot sequence (seqlock flavored): seq <- odd (write begins),
 * fields, seq <- even ticket tag (write complete, release). Readers
 * load seq (acquire), copy the fields, and re-check seq — a torn
 * slot (writer wrapped past the reader) is detected and skipped, not
 * mis-reported. Every field is an atomic accessed relaxed, so the
 * race is benign under TSan too, by construction rather than by
 * suppression.
 *
 * `renderChromeTrace()` emits the snapshot as chrome://tracing /
 * Perfetto "traceEvents" JSON — instant events keyed by trace id —
 * which the example server dumps on SIGUSR1.
 */

#ifndef WIDX_OBS_TRACE_HH
#define WIDX_OBS_TRACE_HH

#include <atomic>
#include <memory>
#include <string>
#include <vector>

#include "common/types.hh"

namespace widx::obs {

/** Where in a request's life a span event was stamped. */
enum class SpanPoint : u8 {
    Submit = 0,    ///< request accepted into the service
    WindowSeal,    ///< the admission window holding it sealed
    FirstClaim,    ///< a walker first claimed one of its windows
    DrainDone,     ///< last window drained; result published
    Reap,          ///< completion reaped off a CompletionQueue
};

const char *spanPointName(SpanPoint p);

class TraceRing
{
  public:
    struct Event
    {
        u64 traceId = 0;
        u64 tsNs = 0; ///< monotonicNowNs() at the stamp
        SpanPoint point = SpanPoint::Submit;
        u32 arg = 0; ///< point-specific detail (e.g. walker id)
    };

    /** @param capacity slots, rounded up to a power of two. */
    explicit TraceRing(std::size_t capacity = 4096);

    /** Stamp one span event (wait-free, never blocks). */
    // widx-lint: seqlock-writer
    void
    record(u64 traceId, SpanPoint point, u64 tsNs, u32 arg = 0)
    {
        const u64 t = head_.fetch_add(1, std::memory_order_relaxed);
        Slot &s = slots_[t & mask_];
        s.seq.store(2 * t + 1, std::memory_order_release);
        s.traceId.store(traceId, std::memory_order_relaxed);
        s.tsNs.store(tsNs, std::memory_order_relaxed);
        s.point.store(u32(point), std::memory_order_relaxed);
        s.arg.store(arg, std::memory_order_relaxed);
        s.seq.store(2 * t + 2, std::memory_order_release);
    }

    /** Copy out the surviving events, oldest first. Torn slots
     *  (overwritten mid-read) are skipped. Safe concurrent with
     *  writers; the cut is approximate while they run. */
    std::vector<Event> snapshot() const;

    /** Total events ever recorded (>= capacity means wrapped). */
    u64
    recorded() const
    {
        return head_.load(std::memory_order_relaxed);
    }

    std::size_t capacity() const { return mask_ + 1; }

    /** Render a snapshot as chrome://tracing "traceEvents" JSON. */
    std::string renderChromeTrace() const;

  private:
    struct alignas(kCacheBlockBytes) Slot
    {
        std::atomic<u64> seq{0}; ///< 0 empty; odd busy; even done
        std::atomic<u64> traceId{0};
        std::atomic<u64> tsNs{0};
        std::atomic<u32> point{0};
        std::atomic<u32> arg{0};
    };

    std::unique_ptr<Slot[]> slots_;
    u64 mask_;
    std::atomic<u64> head_{0};
};

} // namespace widx::obs

#endif // WIDX_OBS_TRACE_HH
