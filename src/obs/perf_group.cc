/**
 * @file
 * PerfGroup implementation: raw perf_event_open syscalls (no libpfm
 * dependency), PERF_FORMAT_GROUP reads with PERF_FORMAT_ID to match
 * values back to events, and time_enabled/time_running scaling.
 */

#include "obs/perf_group.hh"

#ifdef __linux__
#include <linux/perf_event.h>
#include <sys/ioctl.h>
#include <sys/syscall.h>
#include <unistd.h>

#include <cstring>
#endif

namespace widx::obs {

#ifdef __linux__

namespace {

long
perfEventOpen(perf_event_attr *attr, pid_t pid, int cpu, int groupFd,
              unsigned long flags)
{
    return syscall(SYS_perf_event_open, attr, pid, cpu, groupFd,
                   flags);
}

} // namespace

int
PerfGroup::open(u32 type, u64 config, int groupFd)
{
    perf_event_attr attr;
    std::memset(&attr, 0, sizeof(attr));
    attr.size = sizeof(attr);
    attr.type = type;
    attr.config = config;
    attr.disabled = groupFd == -1 ? 1 : 0; // group toggles via leader
    attr.exclude_kernel = 1;
    attr.exclude_hv = 1;
    attr.read_format = PERF_FORMAT_GROUP | PERF_FORMAT_ID |
                       PERF_FORMAT_TOTAL_TIME_ENABLED |
                       PERF_FORMAT_TOTAL_TIME_RUNNING;
    // pid 0, cpu -1: this thread, wherever it runs.
    return int(perfEventOpen(&attr, 0, -1, groupFd, 0));
}

PerfGroup::PerfGroup()
{
    // Leader: cycles. If this fails there is no perf access at all —
    // stay degraded (leader_ == -1).
    leader_ = open(PERF_TYPE_HARDWARE, PERF_COUNT_HW_CPU_CYCLES, -1);
    if (leader_ < 0)
        return;
    fds_[0] = leader_;
    fds_[1] = open(PERF_TYPE_HARDWARE, PERF_COUNT_HW_INSTRUCTIONS,
                   leader_);
    fds_[2] = open(PERF_TYPE_HW_CACHE,
                   PERF_COUNT_HW_CACHE_LL |
                       (PERF_COUNT_HW_CACHE_OP_READ << 8) |
                       (PERF_COUNT_HW_CACHE_RESULT_MISS << 16),
                   leader_);
    fds_[3] = open(PERF_TYPE_HW_CACHE,
                   PERF_COUNT_HW_CACHE_DTLB |
                       (PERF_COUNT_HW_CACHE_OP_READ << 8) |
                       (PERF_COUNT_HW_CACHE_RESULT_MISS << 16),
                   leader_);
    for (unsigned i = 0; i < kEvents; ++i)
        if (fds_[i] >= 0)
            ioctl(fds_[i], PERF_EVENT_IOC_ID, &ids_[i]);
}

PerfGroup::~PerfGroup()
{
    for (int i = int(kEvents) - 1; i >= 0; --i)
        if (fds_[i] >= 0)
            ::close(fds_[i]);
}

void
PerfGroup::start()
{
    if (leader_ < 0)
        return;
    ioctl(leader_, PERF_EVENT_IOC_RESET, PERF_IOC_FLAG_GROUP);
    ioctl(leader_, PERF_EVENT_IOC_ENABLE, PERF_IOC_FLAG_GROUP);
}

void
PerfGroup::stop()
{
    if (leader_ < 0)
        return;
    ioctl(leader_, PERF_EVENT_IOC_DISABLE, PERF_IOC_FLAG_GROUP);
}

PerfGroup::Counts
PerfGroup::read()
{
    Counts c;
    if (leader_ < 0)
        return c; // degraded: all zeros, valid == false

    // PERF_FORMAT_GROUP|ID|TIME_* layout:
    //   u64 nr; u64 time_enabled; u64 time_running;
    //   { u64 value; u64 id; } values[nr];
    u64 buf[3 + 2 * kEvents] = {};
    const long n = ::read(leader_, buf, sizeof(buf));
    if (n < long(3 * sizeof(u64)))
        return c;

    const u64 nr = buf[0];
    const u64 enabled = buf[1];
    const u64 running = buf[2];
    auto scaled = [&](u64 v) -> u64 {
        if (running == 0)
            return 0;
        if (running >= enabled)
            return v;
        return u64(double(v) * double(enabled) / double(running));
    };
    for (u64 i = 0; i < nr && i < kEvents; ++i) {
        const u64 value = buf[3 + 2 * i];
        const u64 id = buf[3 + 2 * i + 1];
        for (unsigned slot = 0; slot < kEvents; ++slot) {
            if (fds_[slot] < 0 || ids_[slot] != id)
                continue;
            const u64 v = scaled(value);
            if (slot == 0)
                c.cycles = v;
            else if (slot == 1)
                c.instructions = v;
            else if (slot == 2)
                c.llcMisses = v;
            else
                c.dtlbMisses = v;
            break;
        }
    }
    c.valid = true;
    return c;
}

#else // !__linux__

int
PerfGroup::open(u32, u64, int)
{
    return -1;
}

PerfGroup::PerfGroup() {}
PerfGroup::~PerfGroup() {}
void PerfGroup::start() {}
void PerfGroup::stop() {}

PerfGroup::Counts
PerfGroup::read()
{
    return {};
}

#endif // __linux__

} // namespace widx::obs
