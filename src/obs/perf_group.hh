/**
 * @file
 * Grouped hardware-counter sampling over perf_event_open(2).
 *
 * The paper's case rests on a stall breakdown (Fig. 2: cores waiting
 * on index-traversal cache misses); this wrapper closes the loop from
 * that offline observation to live numbers on the software walkers.
 * One PerfGroup owns a perf event *group* — cycles (leader),
 * instructions, LLC misses, dTLB misses — on the calling thread, so
 * a single grouped read() yields a consistent simultaneous sample of
 * all four, from which the registry derives misses-per-probe and an
 * IPC proxy per walker.
 *
 * Soft probe: containers and CI commonly deny perf
 * (perf_event_paranoid, seccomp, missing PMU). Construction probes
 * once; on any failure `available()` is false and every read()
 * returns all-zero counts with `valid == false` — zeros, never
 * garbage, and never a crash. Follower events that fail individually
 * (e.g. no LLC event in a VM) are simply absent (their count stays
 * 0) while the rest of the group keeps working.
 *
 * Counts are scaled by time_enabled/time_running, the standard
 * correction when the kernel multiplexes the PMU.
 *
 * Thread affinity: the group counts the thread that constructed it
 * (pid = 0 / self, any CPU) — create it on the walker thread it is
 * meant to observe. Not thread-safe; one owner thread.
 */

#ifndef WIDX_OBS_PERF_GROUP_HH
#define WIDX_OBS_PERF_GROUP_HH

#include <array>

#include "common/types.hh"

namespace widx::obs {

class PerfGroup
{
  public:
    struct Counts
    {
        u64 cycles = 0;
        u64 instructions = 0;
        u64 llcMisses = 0;
        u64 dtlbMisses = 0;
        bool valid = false; ///< false = degraded path, all zeros
    };

    PerfGroup();
    ~PerfGroup();

    PerfGroup(const PerfGroup &) = delete;
    PerfGroup &operator=(const PerfGroup &) = delete;

    /** False when perf access was denied at construction; start(),
     *  stop() and read() are harmless no-ops then. */
    bool available() const { return leader_ >= 0; }

    /** Zero and enable the whole group. */
    void start();

    /** Disable the whole group (counts freeze until start()). */
    void stop();

    /** One grouped read of all four counters, multiplex-scaled.
     *  Returns zeros with valid=false when unavailable. */
    Counts read();

  private:
    int open(u32 type, u64 config, int groupFd);

    static constexpr unsigned kEvents = 4;
    int leader_ = -1; ///< cycles; < 0 = degraded
    std::array<int, kEvents> fds_{{-1, -1, -1, -1}};
    std::array<u64, kEvents> ids_{}; ///< kernel event ids, by slot
};

} // namespace widx::obs

#endif // WIDX_OBS_PERF_GROUP_HH
