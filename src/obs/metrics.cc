/**
 * @file
 * MetricsRegistry implementation: registration, snapshot merging,
 * and the Prometheus text-exposition serializer.
 */

#include "obs/metrics.hh"

#include <algorithm>
#include <bit>
#include <cinttypes>
#include <cmath>
#include <cstdio>

#include "common/logging.hh"

namespace widx::obs {

namespace {

bool
validMetricName(std::string_view s)
{
    if (s.empty())
        return false;
    auto head = [](char c) {
        return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
               c == '_' || c == ':';
    };
    if (!head(s[0]))
        return false;
    for (char c : s.substr(1))
        if (!head(c) && !(c >= '0' && c <= '9'))
            return false;
    return true;
}

bool
validLabelName(std::string_view s)
{
    if (s.empty() || s.starts_with("__"))
        return false;
    auto head = [](char c) {
        return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
               c == '_';
    };
    if (!head(s[0]))
        return false;
    for (char c : s.substr(1))
        if (!head(c) && !(c >= '0' && c <= '9'))
            return false;
    return true;
}

/** Canonicalize a label set: sorted by name, validated. */
void
canonicalize(std::string_view metric, Labels &labels)
{
    std::sort(labels.begin(), labels.end());
    for (std::size_t i = 0; i < labels.size(); ++i) {
        panic_if(!validLabelName(labels[i].first) ||
                     labels[i].first == "le",
                 "metric %.*s: invalid label name \"%s\"",
                 int(metric.size()), metric.data(),
                 labels[i].first.c_str());
        panic_if(i > 0 && labels[i].first == labels[i - 1].first,
                 "metric %.*s: duplicate label \"%s\"",
                 int(metric.size()), metric.data(),
                 labels[i].first.c_str());
    }
}

/** Escape a HELP line or label value per the exposition format. */
std::string
escapeText(std::string_view s, bool quoteLabelValue)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        if (c == '\\')
            out += "\\\\";
        else if (c == '\n')
            out += "\\n";
        else if (c == '"' && quoteLabelValue)
            out += "\\\"";
        else
            out += c;
    }
    return out;
}

/** Render a sample value: integral values print as integers (exact
 *  for counters up to 2^53), everything else as shortest float. */
std::string
formatValue(double v)
{
    char buf[64];
    if (std::isfinite(v) && v == std::rint(v) &&
        std::fabs(v) < 9.0e15) {
        std::snprintf(buf, sizeof(buf), "%" PRId64, i64(v));
    } else {
        std::snprintf(buf, sizeof(buf), "%.10g", v);
    }
    return buf;
}

/** Render `{k="v",...}` (empty string for no labels). An extra
 *  (name, value) pair — histogram `le` — is appended last when
 *  `extra` is non-null, matching Prometheus convention. */
std::string
renderLabels(const Labels &labels,
             const std::pair<std::string, std::string> *extra)
{
    if (labels.empty() && !extra)
        return "";
    std::string out = "{";
    bool first = true;
    auto put = [&](const std::string &k, const std::string &v) {
        if (!first)
            out += ",";
        first = false;
        out += k;
        out += "=\"";
        out += escapeText(v, true);
        out += "\"";
    };
    for (const auto &[k, v] : labels)
        put(k, v);
    if (extra)
        put(extra->first, extra->second);
    out += "}";
    return out;
}

const char *
typeName(MetricType t)
{
    switch (t) {
      case MetricType::Counter:
        return "counter";
      case MetricType::Gauge:
        return "gauge";
      case MetricType::Histogram:
        return "histogram";
    }
    return "untyped";
}

} // namespace

detail::Cell *
MetricsRegistry::cellFor(std::string_view name, std::string_view help,
                         Labels &&labels, MetricType type)
{
    panic_if(!validMetricName(name), "invalid metric name \"%.*s\"",
             int(name.size()), name.data());
    canonicalize(name, labels);

    MutexLock lk(m_);
    auto it = std::find_if(
        families_.begin(), families_.end(),
        [&](const auto &f) { return f.first == name; });
    if (it == families_.end()) {
        families_.emplace_back(std::string(name), FamilyReg{});
        it = std::prev(families_.end());
        it->second.help = std::string(help);
        it->second.type = type;
    }
    FamilyReg &fam = it->second;
    panic_if(fam.type != type,
             "metric %.*s re-registered as a different type",
             int(name.size()), name.data());
    for (Registered &r : fam.metrics)
        if (r.labels == labels)
            return r.cell.get();
    fam.metrics.push_back(
        {std::move(labels), std::make_unique<detail::Cell>()});
    return fam.metrics.back().cell.get();
}

Counter
MetricsRegistry::counter(std::string_view name, std::string_view help,
                         Labels labels)
{
    return Counter(
        cellFor(name, help, std::move(labels), MetricType::Counter));
}

Gauge
MetricsRegistry::gauge(std::string_view name, std::string_view help,
                       Labels labels)
{
    return Gauge(
        cellFor(name, help, std::move(labels), MetricType::Gauge));
}

void
MetricsRegistry::addCollector(std::function<void(Snapshot &)> fn)
{
    MutexLock lk(m_);
    collectors_.push_back(std::move(fn));
}

Snapshot
MetricsRegistry::snapshot() const
{
    Snapshot snap;
    {
        MutexLock lk(m_);
        snap.reserve(families_.size());
        for (const auto &[name, fam] : families_) {
            Family out;
            out.name = name;
            out.help = fam.help;
            out.type = fam.type;
            out.samples.reserve(fam.metrics.size());
            for (const Registered &r : fam.metrics) {
                Sample s;
                s.labels = r.labels;
                const u64 bits =
                    r.cell->bits.load(std::memory_order_relaxed);
                s.value = fam.type == MetricType::Gauge
                              ? std::bit_cast<double>(bits)
                              : double(bits);
                out.samples.push_back(std::move(s));
            }
            snap.push_back(std::move(out));
        }
        for (const auto &fn : collectors_)
            fn(snap);
    }

    // Canonical order: families by name, samples by label set; merge
    // families collectors emitted under an already-present name.
    for (Family &f : snap)
        for (Sample &s : f.samples)
            std::sort(s.labels.begin(), s.labels.end());
    std::stable_sort(snap.begin(), snap.end(),
                     [](const Family &a, const Family &b) {
                         return a.name < b.name;
                     });
    Snapshot merged;
    for (Family &f : snap) {
        if (!merged.empty() && merged.back().name == f.name) {
            auto &dst = merged.back().samples;
            dst.insert(dst.end(),
                       std::make_move_iterator(f.samples.begin()),
                       std::make_move_iterator(f.samples.end()));
        } else {
            merged.push_back(std::move(f));
        }
    }
    for (Family &f : merged)
        std::sort(f.samples.begin(), f.samples.end(),
                  [](const Sample &a, const Sample &b) {
                      return a.labels < b.labels;
                  });
    return merged;
}

std::string
MetricsRegistry::renderPrometheus(const Snapshot &snap)
{
    std::string out;
    for (const Family &f : snap) {
        if (!f.help.empty()) {
            out += "# HELP ";
            out += f.name;
            out += " ";
            out += escapeText(f.help, false);
            out += "\n";
        }
        out += "# TYPE ";
        out += f.name;
        out += " ";
        out += typeName(f.type);
        out += "\n";
        for (const Sample &s : f.samples) {
            if (f.type != MetricType::Histogram) {
                out += f.name;
                out += renderLabels(s.labels, nullptr);
                out += " ";
                out += formatValue(s.value);
                out += "\n";
                continue;
            }
            for (std::size_t i = 0; i < s.hist.bounds.size(); ++i) {
                const std::pair<std::string, std::string> le{
                    "le", formatValue(s.hist.bounds[i])};
                out += f.name;
                out += "_bucket";
                out += renderLabels(s.labels, &le);
                out += " ";
                out += formatValue(double(s.hist.cumulative[i]));
                out += "\n";
            }
            const std::pair<std::string, std::string> inf{"le",
                                                          "+Inf"};
            out += f.name;
            out += "_bucket";
            out += renderLabels(s.labels, &inf);
            out += " ";
            out += formatValue(double(s.hist.count));
            out += "\n";
            out += f.name;
            out += "_sum";
            out += renderLabels(s.labels, nullptr);
            out += " ";
            out += formatValue(s.hist.sum);
            out += "\n";
            out += f.name;
            out += "_count";
            out += renderLabels(s.labels, nullptr);
            out += " ";
            out += formatValue(double(s.hist.count));
            out += "\n";
        }
    }
    return out;
}

HistogramData
toHistogramData(const LatencyHistogram &h)
{
    // Nominal power-of-4 ladder, 1 us .. ~1.05 s; each bound is
    // quantized up to the enclosing log-bucket's upper edge so the
    // cumulative count at each bound is exact.
    static constexpr u64 kNominalNs[] = {
        1'000,      4'000,       16'000,      64'000,
        256'000,    1'024'000,   4'096'000,   16'384'000,
        65'536'000, 262'144'000, 1'048'576'000,
    };
    HistogramData d;
    u64 cum = 0;
    unsigned b = 0;
    for (u64 n : kNominalNs) {
        const unsigned top = LatencyHistogram::bucketOf(n);
        while (b <= top)
            cum += h.bucketCount(b++);
        d.bounds.push_back(double(LatencyHistogram::bucketHighNs(top)));
        d.cumulative.push_back(cum);
    }
    d.count = h.count();
    d.sum = double(h.sumNs());
    return d;
}

double
snapshotValue(const Snapshot &snap, std::string_view name,
              const Labels &labels, double fallback)
{
    Labels want = labels;
    std::sort(want.begin(), want.end());
    for (const Family &f : snap) {
        if (f.name != name)
            continue;
        for (const Sample &s : f.samples)
            if (s.labels == want)
                return s.value;
    }
    return fallback;
}

} // namespace widx::obs
