/**
 * @file
 * Lock-light metrics registry with Prometheus text exposition.
 *
 * Two ways in, one way out:
 *
 *  - **Handles** (`Counter`, `Gauge`): registered once up front, then
 *    incremented on hot paths with a single relaxed atomic RMW on a
 *    cache-line-aligned cell. No locks, no lookups after creation —
 *    the handle is a pointer to its cell, and registration hands back
 *    the same cell for the same (name, labels) pair, so concurrent
 *    incrementers share one counter instead of shadowing each other.
 *
 *  - **Collectors**: callbacks that append whole metric families to a
 *    snapshot at scrape time. This is how subsystems that already
 *    keep their own relaxed atomics (`IndexService`, the TCP server,
 *    the tag filter) export state without adding a single instruction
 *    to their hot paths — the export cost is paid by the scraper.
 *
 * `snapshot()` merges both sources into a deterministic (name-sorted,
 * label-sorted) family list; `renderPrometheus()` serializes it in
 * the Prometheus text exposition format (# HELP / # TYPE, escaped
 * label values, cumulative `le` histogram buckets). Determinism here
 * is what makes the exposition golden-testable.
 *
 * Lifetime: a collector may capture raw pointers into the subsystem
 * that registered it. The registry must therefore not be scraped
 * after that subsystem is destroyed — in practice the registry is
 * created first and destroyed last, alongside main().
 */

#ifndef WIDX_OBS_METRICS_HH
#define WIDX_OBS_METRICS_HH

#include <atomic>
#include <bit>
#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/latency.hh"
#include "common/thread_safety.hh"
#include "common/types.hh"

namespace widx::obs {

/** Sorted-at-registration list of (label name, label value) pairs. */
using Labels = std::vector<std::pair<std::string, std::string>>;

enum class MetricType : u8 { Counter, Gauge, Histogram };

/** Snapshot of one histogram sample: cumulative bucket counts over
 *  fixed upper bounds, plus the classic _sum/_count pair. */
struct HistogramData
{
    std::vector<double> bounds; ///< `le` upper bounds, +Inf implied
    std::vector<u64> cumulative; ///< same size as bounds, monotone
    u64 count = 0; ///< total observations (the +Inf bucket)
    double sum = 0;
};

/** One (labels, value) sample within a family. */
struct Sample
{
    Labels labels;
    double value = 0; ///< counter/gauge value
    HistogramData hist; ///< histogram families only
};

/** One named metric family: all samples sharing a name and type. */
struct Family
{
    std::string name;
    std::string help;
    MetricType type = MetricType::Counter;
    std::vector<Sample> samples;
};

/** A scrape: name-sorted families, label-sorted samples within. */
using Snapshot = std::vector<Family>;

namespace detail {

/** One metric's storage; padded so two hot counters never share a
 *  cache line (the same false-sharing discipline as LatencyRecorder
 *  and the walker heartbeats). */
// widx-lint: padded
struct alignas(kCacheBlockBytes) Cell
{
    std::atomic<u64> bits{0}; ///< counter: count; gauge: double bits
};

} // namespace detail

/** Hot-path counter handle. Copyable; all copies share the cell. */
class Counter
{
  public:
    Counter() = default;

    void
    inc(u64 d = 1)
    {
        if (cell_)
            cell_->bits.fetch_add(d, std::memory_order_relaxed);
    }

    u64
    value() const
    {
        return cell_ ? cell_->bits.load(std::memory_order_relaxed)
                     : 0;
    }

  private:
    friend class MetricsRegistry;
    explicit Counter(detail::Cell *c) : cell_(c) {}
    detail::Cell *cell_ = nullptr;
};

/** Hot-path gauge handle (stores a double as its bit pattern). */
class Gauge
{
  public:
    Gauge() = default;

    void
    set(double v)
    {
        if (cell_)
            cell_->bits.store(std::bit_cast<u64>(v),
                              std::memory_order_relaxed);
    }

    double
    value() const
    {
        return cell_ ? std::bit_cast<double>(cell_->bits.load(
                           std::memory_order_relaxed))
                     : 0.0;
    }

  private:
    friend class MetricsRegistry;
    explicit Gauge(detail::Cell *c) : cell_(c) {}
    detail::Cell *cell_ = nullptr;
};

class MetricsRegistry
{
  public:
    MetricsRegistry() = default;
    MetricsRegistry(const MetricsRegistry &) = delete;
    MetricsRegistry &operator=(const MetricsRegistry &) = delete;

    /** Register (or look up) a counter. panic()s on an invalid
     *  metric/label name or on re-registering the name as a
     *  different type. */
    Counter counter(std::string_view name, std::string_view help,
                    Labels labels = {});

    /** Register (or look up) a gauge. */
    Gauge gauge(std::string_view name, std::string_view help,
                Labels labels = {});

    /** Register a scrape-time callback that appends families to the
     *  snapshot being built. Called under the registry mutex — keep
     *  it free of calls back into the registry. */
    void addCollector(std::function<void(Snapshot &)> fn);

    /** Deterministic merged snapshot of handles + collectors. */
    Snapshot snapshot() const;

    /** Serialize a snapshot as Prometheus text exposition. */
    static std::string renderPrometheus(const Snapshot &snap);

    std::string
    renderPrometheus() const
    {
        return renderPrometheus(snapshot());
    }

  private:
    struct Registered
    {
        Labels labels;
        std::unique_ptr<detail::Cell> cell;
    };
    struct FamilyReg
    {
        std::string help;
        MetricType type = MetricType::Counter;
        std::vector<Registered> metrics;
    };

    detail::Cell *cellFor(std::string_view name,
                          std::string_view help, Labels &&labels,
                          MetricType type);

    mutable Mutex m_; ///< registration + scrape only; never hot
    std::vector<std::pair<std::string, FamilyReg>> families_
        WIDX_GUARDED_BY(m_);
    std::vector<std::function<void(Snapshot &)>> collectors_
        WIDX_GUARDED_BY(m_);
};

/** Convert a LatencyHistogram into exposition bucket data over a
 *  fixed power-of-4 nanosecond ladder (1 us .. ~1.1 s), so every
 *  scrape of every histogram family shares one bound set. Bucket
 *  boundaries are quantized to the source histogram's log-bucket
 *  edges, so cumulative counts are exact for the source's ~3%
 *  resolution, not interpolated. */
HistogramData toHistogramData(const LatencyHistogram &h);

/** Test/report helper: find a sample's value in a snapshot. Returns
 *  `fallback` when the family or label set is absent. */
double snapshotValue(const Snapshot &snap, std::string_view name,
                     const Labels &labels = {}, double fallback = 0);

} // namespace widx::obs

#endif // WIDX_OBS_METRICS_HH
