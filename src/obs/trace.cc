/**
 * @file
 * TraceRing implementation: snapshot extraction and the
 * chrome://tracing JSON renderer.
 */

#include "obs/trace.hh"

#include <algorithm>
#include <bit>
#include <cinttypes>
#include <cstdio>
#include <map>

namespace widx::obs {

const char *
spanPointName(SpanPoint p)
{
    switch (p) {
      case SpanPoint::Submit:
        return "submit";
      case SpanPoint::WindowSeal:
        return "window_seal";
      case SpanPoint::FirstClaim:
        return "first_claim";
      case SpanPoint::DrainDone:
        return "drain_done";
      case SpanPoint::Reap:
        return "reap";
    }
    return "unknown";
}

TraceRing::TraceRing(std::size_t capacity)
{
    const std::size_t cap =
        std::bit_ceil(std::max<std::size_t>(capacity, 2));
    slots_ = std::make_unique<Slot[]>(cap);
    mask_ = cap - 1;
}

std::vector<TraceRing::Event>
TraceRing::snapshot() const
{
    const u64 head = head_.load(std::memory_order_acquire);
    const u64 cap = mask_ + 1;
    const u64 lo = head > cap ? head - cap : 0;
    std::vector<Event> out;
    out.reserve(std::size_t(head - lo));
    for (u64 t = lo; t < head; ++t) {
        const Slot &s = slots_[t & mask_];
        const u64 want = 2 * t + 2;
        if (s.seq.load(std::memory_order_acquire) != want)
            continue; // unwritten, in-progress, or overwritten
        Event e;
        e.traceId = s.traceId.load(std::memory_order_relaxed);
        e.tsNs = s.tsNs.load(std::memory_order_relaxed);
        e.point =
            SpanPoint(u8(s.point.load(std::memory_order_relaxed)));
        e.arg = s.arg.load(std::memory_order_relaxed);
        if (s.seq.load(std::memory_order_acquire) != want)
            continue; // torn: a writer lapped us mid-copy
        out.push_back(e);
    }
    return out;
}

std::string
TraceRing::renderChromeTrace() const
{
    std::vector<Event> evs = snapshot();
    std::stable_sort(evs.begin(), evs.end(),
                     [](const Event &a, const Event &b) {
                         return a.tsNs < b.tsNs;
                     });
    const u64 t0 = evs.empty() ? 0 : evs.front().tsNs;

    // One chrome "thread" row per trace id, dense ids in first-seen
    // order, so a request's spans line up on one track.
    std::map<u64, unsigned> rows;
    for (const Event &e : evs)
        rows.emplace(e.traceId, unsigned(rows.size()));

    std::string out = "{\"traceEvents\":[";
    char buf[256];
    bool first = true;
    for (const Event &e : evs) {
        const double tsUs = double(e.tsNs - t0) / 1e3;
        std::snprintf(
            buf, sizeof(buf),
            "%s{\"name\":\"%s\",\"ph\":\"i\",\"s\":\"t\","
            "\"ts\":%.3f,\"pid\":1,\"tid\":%u,"
            "\"args\":{\"trace_id\":\"0x%" PRIx64
            "\",\"arg\":%u}}",
            first ? "" : ",", spanPointName(e.point), tsUs,
            rows.at(e.traceId), e.traceId, e.arg);
        out += buf;
        first = false;
    }
    out += "],\"displayTimeUnit\":\"ns\"}";
    return out;
}

} // namespace widx::obs
