/**
 * @file
 * Machine parameters of the evaluated system (paper Table 2).
 *
 * Technology: 40 nm at 2 GHz; 4-core CMP; per-core split 32 KB L1
 * caches with 2 ports and 10 MSHRs; 4 MB LLC behind a 4-cycle
 * crossbar; 2 memory controllers at 12.8 GB/s and 45 ns access
 * latency; a TLB with 2 in-flight translations.
 *
 * Knobs the paper leaves unspecified (associativities, TLB reach,
 * page size, walk latency) carry documented defaults; EXPERIMENTS.md
 * discusses their calibration.
 */

#ifndef WIDX_SIM_PARAMS_HH
#define WIDX_SIM_PARAMS_HH

#include "common/types.hh"

namespace widx::sim {

struct Params
{
    // --- Clock --------------------------------------------------------
    /** Core/accelerator clock in GHz (Table 2: 2 GHz). */
    double clockGhz = 2.0;

    // --- L1-D (Table 2: 32KB, 2 ports, 64B blocks, 10 MSHRs,
    //     2-cycle load-to-use) --------------------------------------
    u32 l1Bytes = 32 * 1024;
    u32 l1Assoc = 8;
    u32 l1Ports = 2;
    u32 l1Mshrs = 10;
    Cycle l1Latency = 2;

    // --- LLC (Table 2: 4MB, 6-cycle hit latency; crossbar 4 cycles) ---
    u32 llcBytes = 4 * 1024 * 1024;
    u32 llcAssoc = 16;
    Cycle llcLatency = 6;
    Cycle xbarLatency = 4;

    // --- Main memory (Table 2: 2 MCs, 12.8 GB/s, 45ns access) ---------
    u32 numMemCtrls = 2;
    double memCtrlGBps = 12.8;
    /** 45 ns at 2 GHz. */
    Cycle dramLatency = 90;

    // --- TLB (Table 2: 2 in-flight translations) ----------------------
    u32 tlbEntries = 64;
    /** 4 MB pages (Solaris/SPARC DBMS heaps use large pages): a
     *  256 MB reach, borderline for the Large kernel's footprint —
     *  reproducing the paper's low (~3%) worst-case TLB miss
     *  ratios on DRAM-resident indexes. */
    u64 pageBytes = 4ull * 1024 * 1024;
    Cycle tlbWalkLatency = 40;
    u32 tlbMaxInflightWalks = 2;

    /** Cycles one 64 B block occupies a memory controller:
     *  64 B / 12.8 GB/s = 5 ns = 10 cycles at 2 GHz. */
    Cycle
    memCtrlCyclesPerBlock() const
    {
        double seconds = double(kCacheBlockBytes) /
            (memCtrlGBps * 1e9);
        return Cycle(seconds * clockGhz * 1e9 + 0.5);
    }
};

} // namespace widx::sim

#endif // WIDX_SIM_PARAMS_HH
