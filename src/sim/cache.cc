#include "sim/cache.hh"

#include "common/bitops.hh"
#include "common/logging.hh"

namespace widx::sim {

Cache::Cache(std::string name, u32 bytes, u32 assoc, u32 block_bytes)
    : name_(std::move(name)), blockBytes_(block_bytes), assoc_(assoc)
{
    fatal_if(!isPowerOfTwo(block_bytes),
             "%s: block size must be a power of two", name_.c_str());
    fatal_if(assoc == 0, "%s: associativity must be nonzero",
             name_.c_str());
    fatal_if(bytes % (block_bytes * assoc) != 0,
             "%s: capacity not divisible by way size", name_.c_str());
    numSets_ = bytes / (block_bytes * assoc);
    fatal_if(!isPowerOfTwo(numSets_),
             "%s: set count must be a power of two", name_.c_str());
    blockShift_ = log2Exact(block_bytes);
    ways_.resize(std::size_t(numSets_) * assoc_);
}

u64
Cache::setIndex(Addr addr) const
{
    return (addr >> blockShift_) & (numSets_ - 1);
}

Addr
Cache::tagOf(Addr addr) const
{
    return addr >> blockShift_;
}

bool
Cache::lookup(Addr addr)
{
    const Addr tag = tagOf(addr);
    Way *set = &ways_[setIndex(addr) * assoc_];
    for (u32 w = 0; w < assoc_; ++w) {
        if (set[w].valid && set[w].tag == tag) {
            set[w].lastUse = ++useClock_;
            ++hits_;
            return true;
        }
    }
    ++misses_;
    return false;
}

bool
Cache::contains(Addr addr) const
{
    const Addr tag = tagOf(addr);
    const Way *set = &ways_[setIndex(addr) * assoc_];
    for (u32 w = 0; w < assoc_; ++w)
        if (set[w].valid && set[w].tag == tag)
            return true;
    return false;
}

void
Cache::insert(Addr addr)
{
    const Addr tag = tagOf(addr);
    Way *set = &ways_[setIndex(addr) * assoc_];
    Way *victim = nullptr;
    for (u32 w = 0; w < assoc_; ++w) {
        if (set[w].valid && set[w].tag == tag) {
            set[w].lastUse = ++useClock_; // refresh on re-insert
            return;
        }
        if (!set[w].valid) {
            if (!victim || victim->valid)
                victim = &set[w];
        } else if (!victim ||
                   (victim->valid && set[w].lastUse < victim->lastUse)) {
            victim = &set[w];
        }
    }
    if (victim->valid)
        ++evictions_;
    victim->valid = true;
    victim->tag = tag;
    victim->lastUse = ++useClock_;
}

void
Cache::invalidate(Addr addr)
{
    const Addr tag = tagOf(addr);
    Way *set = &ways_[setIndex(addr) * assoc_];
    for (u32 w = 0; w < assoc_; ++w)
        if (set[w].valid && set[w].tag == tag)
            set[w].valid = false;
}

void
Cache::flush()
{
    for (Way &w : ways_)
        w.valid = false;
}

void
Cache::exportStats(StatSet &out) const
{
    out.set(name_ + ".hits", hits_);
    out.set(name_ + ".misses", misses_);
    out.set(name_ + ".evictions", evictions_);
}

} // namespace widx::sim
