/**
 * @file
 * Functional set-associative cache with true-LRU replacement.
 *
 * The cache tracks presence only (no data — functional values come
 * from host memory); the timing model around it decides latencies.
 */

#ifndef WIDX_SIM_CACHE_HH
#define WIDX_SIM_CACHE_HH

#include <vector>

#include "common/stats.hh"
#include "common/types.hh"

namespace widx::sim {

class Cache
{
  public:
    /**
     * @param name stat prefix (e.g.\ "l1d").
     * @param bytes total capacity.
     * @param assoc ways per set.
     * @param block_bytes line size.
     */
    Cache(std::string name, u32 bytes, u32 assoc,
          u32 block_bytes = kCacheBlockBytes);

    /** Look up a block; updates LRU on hit. @return true on hit. */
    bool lookup(Addr addr);

    /** Probe without updating replacement state or stats. */
    bool contains(Addr addr) const;

    /** Insert a block, evicting the set's LRU victim if needed. */
    void insert(Addr addr);

    /** Invalidate a block if present. */
    void invalidate(Addr addr);

    /** Drop all blocks (keeps statistics). */
    void flush();

    u32 numSets() const { return numSets_; }
    u32 assoc() const { return assoc_; }
    const std::string &name() const { return name_; }

    u64 hits() const { return hits_; }
    u64 misses() const { return misses_; }
    u64 evictions() const { return evictions_; }

    double
    missRatio() const
    {
        u64 total = hits_ + misses_;
        return total == 0 ? 0.0 : double(misses_) / double(total);
    }

    void
    resetStats()
    {
        hits_ = misses_ = evictions_ = 0;
    }

    /** Export counters into a StatSet under "<name>." prefixes. */
    void exportStats(StatSet &out) const;

  private:
    struct Way
    {
        Addr tag = 0;
        bool valid = false;
        u64 lastUse = 0;
    };

    u64 setIndex(Addr addr) const;
    Addr tagOf(Addr addr) const;

    std::string name_;
    u32 blockBytes_;
    u32 assoc_;
    u32 numSets_;
    unsigned blockShift_;
    std::vector<Way> ways_; ///< numSets_ * assoc_, row-major
    u64 useClock_ = 0;
    u64 hits_ = 0;
    u64 misses_ = 0;
    u64 evictions_ = 0;
};

} // namespace widx::sim

#endif // WIDX_SIM_CACHE_HH
