/**
 * @file
 * The composed memory hierarchy timing model.
 *
 * One MemSystem instance models the resources a Widx-augmented core
 * (or a baseline core) sees: its TLB, its 2-ported L1-D with 10
 * MSHRs, the shared LLC behind a crossbar, and the DDR3 memory
 * controllers. All execution models (Widx engine, OoO core, in-order
 * core) issue accesses through the same interface so their timing
 * differences stem from the execution model alone.
 *
 * The model is latency-based with explicit resource accounting:
 * accesses must be issued in non-decreasing cycle order; port,
 * MSHR, walk-slot and controller occupancy are tracked over future
 * cycles so overlapping requests contend realistically.
 */

#ifndef WIDX_SIM_MEM_SYSTEM_HH
#define WIDX_SIM_MEM_SYSTEM_HH

#include <map>
#include <memory>

#include "common/stats.hh"
#include "sim/cache.hh"
#include "sim/mem_ctrl.hh"
#include "sim/mshr.hh"
#include "sim/params.hh"
#include "sim/tlb.hh"

namespace widx::sim {

/** What kind of access is being performed. */
enum class AccessKind : u8
{
    Load,     ///< blocking demand read
    Store,    ///< buffered write (latency off the critical path)
    Prefetch, ///< non-binding TOUCH; dropped when MSHRs are full
};

/** Where an access was satisfied. */
enum class HitLevel : u8
{
    L1,
    LLC,
    Memory,
    Dropped, ///< prefetch dropped (MSHRs exhausted)
};

/** Timing outcome of a single access. */
struct AccessResult
{
    /** Cycle the value is usable (loads) / retired (stores). */
    Cycle ready = 0;
    HitLevel level = HitLevel::L1;
    /** Miss merged into an in-flight MSHR. */
    bool mshrMerged = false;
    /** Cycles spent waiting for address translation. */
    Cycle tlbCycles = 0;
    /** Cycles spent waiting for a free MSHR. */
    Cycle mshrStallCycles = 0;
};

class MemSystem
{
  public:
    explicit MemSystem(const Params &params = Params{});

    /**
     * Issue an access.
     *
     * @param now issue cycle; must be >= every previous access's now.
     * @param addr virtual byte address.
     * @param kind load / store / prefetch.
     */
    AccessResult access(Cycle now, Addr addr, AccessKind kind);

    const Params &params() const { return params_; }

    Cache &l1() { return l1_; }
    Cache &llc() { return llc_; }
    Tlb &tlb() { return tlb_; }
    MshrFile &mshrs() { return mshrs_; }
    MemCtrls &memCtrls() { return mcs_; }

    /** Zero all statistics; keeps cache/TLB contents (for warmup). */
    void resetStats();

    /** Export all component statistics into one StatSet. */
    void exportStats(StatSet &out) const;

    u64 accesses() const { return accesses_; }

  private:
    /** First cycle >= when with a free L1 port; claims the port. */
    Cycle claimL1Port(Cycle when);

    Params params_;
    Cache l1_;
    Cache llc_;
    Tlb tlb_;
    MshrFile mshrs_;
    MemCtrls mcs_;

    /** Per-cycle L1 port usage over a sliding future window. */
    std::map<Cycle, u32> portUse_;

    Cycle lastIssue_ = 0;
    u64 accesses_ = 0;
    u64 portConflicts_ = 0;
    u64 droppedPrefetches_ = 0;
};

} // namespace widx::sim

#endif // WIDX_SIM_MEM_SYSTEM_HH
