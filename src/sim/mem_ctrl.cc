#include "sim/mem_ctrl.hh"

#include <algorithm>

#include "common/bitops.hh"
#include "common/logging.hh"

namespace widx::sim {

MemCtrls::MemCtrls(u32 count, Cycle cycles_per_block,
                   Cycle dram_latency)
    : cyclesPerBlock_(cycles_per_block), dramLatency_(dram_latency),
      nextFree_(count, 0)
{
    fatal_if(count == 0, "need at least one memory controller");
    fatal_if(!isPowerOfTwo(count),
             "controller count must be a power of two for address "
             "interleaving");
}

u32
MemCtrls::ctrlOf(Addr block) const
{
    return u32((block >> log2Exact(kCacheBlockBytes)) &
               (nextFree_.size() - 1));
}

Cycle
MemCtrls::access(Addr block, Cycle when)
{
    Cycle &free = nextFree_[ctrlOf(block)];
    Cycle start = std::max(when, free);
    queueDelaySum_ += start - when;
    free = start + cyclesPerBlock_;
    ++blocks_;
    return start + dramLatency_ + cyclesPerBlock_;
}

double
MemCtrls::avgQueueDelay() const
{
    return blocks_ == 0 ? 0.0
                        : double(queueDelaySum_) / double(blocks_);
}

void
MemCtrls::resetStats()
{
    blocks_ = 0;
    queueDelaySum_ = 0;
}

void
MemCtrls::exportStats(StatSet &out) const
{
    out.set("mc.blocks", blocks_);
    out.set("mc.queue_delay_sum", queueDelaySum_);
}

} // namespace widx::sim
