/**
 * @file
 * TLB model with a bounded number of in-flight page walks.
 *
 * Widx shares the host core's MMU (Section 4.3); Table 2 allows two
 * in-flight translations. A miss occupies a walk slot for the walk
 * latency; when both slots are busy the requester stalls until one
 * frees, which is the "TLB" component of the walker cycle breakdowns
 * in Figures 8a/9.
 */

#ifndef WIDX_SIM_TLB_HH
#define WIDX_SIM_TLB_HH

#include <list>
#include <unordered_map>
#include <vector>

#include "common/stats.hh"
#include "common/types.hh"

namespace widx::sim {

class Tlb
{
  public:
    /**
     * @param entries number of TLB entries (fully associative, LRU).
     * @param page_bytes page size (power of two).
     * @param walk_latency cycles for one page-table walk.
     * @param max_walks concurrent walk limit (Table 2: 2).
     */
    Tlb(u32 entries, u64 page_bytes, Cycle walk_latency, u32 max_walks);

    /** Result of a translation request. */
    struct Result
    {
        /** Cycle the translation is available. */
        Cycle ready = 0;
        /** The request missed and triggered (or joined) a walk. */
        bool miss = false;
    };

    /**
     * Translate the page of addr at cycle now. Hits complete
     * immediately; misses start a walk when a slot frees. Concurrent
     * misses to the same page join the in-flight walk.
     */
    Result translate(Addr addr, Cycle now);

    /** Drop all entries (keeps statistics). */
    void flush();

    u64 hits() const { return hits_; }
    u64 misses() const { return misses_; }

    double
    missRatio() const
    {
        u64 total = hits_ + misses_;
        return total == 0 ? 0.0 : double(misses_) / double(total);
    }

    void
    resetStats()
    {
        hits_ = misses_ = walkJoins_ = 0;
    }

    void exportStats(StatSet &out) const;

  private:
    Addr pageOf(Addr addr) const { return addr / pageBytes_; }

    /** Insert page as most-recently used, evicting LRU if needed. */
    void insert(Addr page);

    u32 entries_;
    u64 pageBytes_;
    Cycle walkLatency_;
    std::vector<Cycle> walkSlotFree_; ///< per-slot next-free cycle

    /** LRU order: front = most recent. */
    std::list<Addr> lru_;
    std::unordered_map<Addr, std::list<Addr>::iterator> map_;

    /** In-flight walks: page -> completion cycle (pruned lazily). */
    std::unordered_map<Addr, Cycle> walking_;

    u64 hits_ = 0;
    u64 misses_ = 0;
    u64 walkJoins_ = 0;
};

} // namespace widx::sim

#endif // WIDX_SIM_TLB_HH
