/**
 * @file
 * Miss Status Holding Register (MSHR) file.
 *
 * Tracks the outstanding L1-D misses. Multiple misses to the same
 * cache block merge into one entry (the common case for key fetches,
 * Section 3.2). When all registers are busy the cache stops accepting
 * new misses; demand accesses stall until the earliest fill, while
 * prefetches are dropped.
 */

#ifndef WIDX_SIM_MSHR_HH
#define WIDX_SIM_MSHR_HH

#include <unordered_map>
#include <vector>

#include "common/stats.hh"
#include "common/types.hh"

namespace widx::sim {

class MshrFile
{
  public:
    explicit MshrFile(u32 entries);

    /** Outcome of trying to track a miss. */
    struct Result
    {
        /** Cycle the block's fill completes. */
        Cycle fill = 0;
        /** The miss merged into an existing entry. */
        bool merged = false;
        /** No entry was available (caller must stall or drop). */
        bool exhausted = false;
    };

    /**
     * Merge into an outstanding entry for this block if one exists.
     *
     * @param block block-aligned address.
     * @param now current cycle (used to retire finished entries).
     */
    Result lookupMerge(Addr block, Cycle now);

    /**
     * Allocate a new entry; call only after lookupMerge reported no
     * merge. Fails with exhausted=true when all entries are in flight.
     *
     * @param fill the cycle the fill will complete.
     */
    Result allocate(Addr block, Cycle now, Cycle fill);

    /** Most recent fill time recorded for a block (0 when unknown).
     *  Unlike lookupMerge this does not count as a merge and is not
     *  bounded by MSHR retirement: callers that issue accesses out of
     *  program-cycle order (the OoO core model) must still observe a
     *  fill that is in flight relative to *their* issue time, even if
     *  a later-timed access already retired the entry. Used for
     *  hit-under-fill timing. */
    Cycle pendingFill(Addr block, Cycle now);

    /** Earliest fill time among outstanding entries (0 if none). */
    Cycle earliestFill(Cycle now);

    /** Number of in-flight entries at the given cycle. */
    u32 inflight(Cycle now);

    u32 capacity() const { return capacity_; }

    u64 allocations() const { return allocations_; }
    u64 merges() const { return merges_; }
    u64 exhaustions() const { return exhaustions_; }
    u32 peakInflight() const { return peak_; }

    void
    resetStats()
    {
        allocations_ = merges_ = exhaustions_ = 0;
        peak_ = 0;
    }

    void exportStats(StatSet &out) const;

  private:
    /** Drop entries whose fills completed at or before now. */
    void retire(Cycle now);

    /** Record a fill in the retirement-surviving history. */
    void recordFill(Addr block, Cycle now, Cycle fill);

    u32 capacity_;
    std::unordered_map<Addr, Cycle> entries_; ///< block -> fill time
    /** Fill history surviving retirement (pruned lazily). */
    std::unordered_map<Addr, Cycle> recentFills_;
    Cycle maxNow_ = 0;
    u64 allocations_ = 0;
    u64 merges_ = 0;
    u64 exhaustions_ = 0;
    u32 peak_ = 0;
};

} // namespace widx::sim

#endif // WIDX_SIM_MSHR_HH
