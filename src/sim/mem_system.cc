#include "sim/mem_system.hh"

#include <algorithm>

#include "common/logging.hh"

namespace widx::sim {

MemSystem::MemSystem(const Params &params)
    : params_(params),
      l1_("l1d", params.l1Bytes, params.l1Assoc),
      llc_("llc", params.llcBytes, params.llcAssoc),
      tlb_(params.tlbEntries, params.pageBytes, params.tlbWalkLatency,
           params.tlbMaxInflightWalks),
      mshrs_(params.l1Mshrs),
      mcs_(params.numMemCtrls, params.memCtrlCyclesPerBlock(),
           params.dramLatency)
{
}

Cycle
MemSystem::claimL1Port(Cycle when)
{
    // Prune stale entries to bound the map's size; keyed off the
    // highest observed cycle so mildly out-of-order issue stays safe.
    while (!portUse_.empty() &&
           portUse_.begin()->first + 4096 < lastIssue_)
        portUse_.erase(portUse_.begin());

    Cycle c = when;
    for (;;) {
        u32 &used = portUse_[c];
        if (used < params_.l1Ports) {
            ++used;
            if (c != when)
                ++portConflicts_;
            return c;
        }
        ++c;
    }
}

AccessResult
MemSystem::access(Cycle now, Addr addr, AccessKind kind)
{
    // Mild out-of-order issue is tolerated (the OoO core model
    // computes load issue times out of program order); resource
    // pruning keys off the highest cycle seen so far.
    if (now > lastIssue_)
        lastIssue_ = now;
    ++accesses_;

    AccessResult res;

    // 1. Address translation through the shared MMU.
    Tlb::Result tr = tlb_.translate(addr, now);
    Cycle issue = tr.ready;
    res.tlbCycles = issue - now;

    // 2. One of the L1-D ports.
    issue = claimL1Port(issue);

    const Addr block = blockAlign(addr);

    // 3. L1 lookup. A hit on a line whose fill is still in flight
    //    (functional insertion happens at issue) must wait for the
    //    fill: hit-under-fill.
    if (l1_.lookup(block)) {
        res.level = HitLevel::L1;
        Cycle ready = issue + params_.l1Latency;
        Cycle pending = mshrs_.pendingFill(block, issue);
        if (pending > ready)
            ready = pending;
        res.ready = kind == AccessKind::Store ? issue + 1 : ready;
        return res;
    }

    // 4. Merge into an outstanding miss if possible, else obtain an
    //    MSHR, stalling (demand) or dropping (prefetch) when the file
    //    is exhausted.
    for (;;) {
        MshrFile::Result merge = mshrs_.lookupMerge(block, issue);
        if (merge.merged) {
            res.mshrMerged = true;
            res.level = HitLevel::LLC; // origin unknown; fill pending
            Cycle fill = std::max(merge.fill, issue);
            res.ready = kind == AccessKind::Store ? issue + 1 : fill;
            return res;
        }
        if (mshrs_.inflight(issue) < mshrs_.capacity())
            break;
        if (kind == AccessKind::Prefetch) {
            ++droppedPrefetches_;
            res.level = HitLevel::Dropped;
            res.ready = issue;
            return res;
        }
        Cycle earliest = mshrs_.earliestFill(issue);
        Cycle next = earliest > issue ? earliest : issue + 1;
        res.mshrStallCycles += next - issue;
        issue = next;
    }

    // 5. Fill from the LLC or from memory.
    const Cycle llc_start =
        issue + params_.l1Latency + params_.xbarLatency;
    Cycle fill;
    if (llc_.lookup(block)) {
        res.level = HitLevel::LLC;
        fill = llc_start + params_.llcLatency;
    } else {
        res.level = HitLevel::Memory;
        // The LLC tag check happens before the request goes off-chip.
        fill = mcs_.access(block, llc_start + params_.llcLatency);
        llc_.insert(block);
    }
    l1_.insert(block);

    MshrFile::Result alloc = mshrs_.allocate(block, issue, fill);
    panic_if(alloc.exhausted, "MSHR allocation failed after wait");

    res.ready = kind == AccessKind::Store ? issue + 1 : fill;
    return res;
}

void
MemSystem::resetStats()
{
    l1_.resetStats();
    llc_.resetStats();
    tlb_.resetStats();
    mshrs_.resetStats();
    mcs_.resetStats();
    accesses_ = 0;
    portConflicts_ = 0;
    droppedPrefetches_ = 0;
}

void
MemSystem::exportStats(StatSet &out) const
{
    l1_.exportStats(out);
    llc_.exportStats(out);
    tlb_.exportStats(out);
    mshrs_.exportStats(out);
    mcs_.exportStats(out);
    out.set("mem.accesses", accesses_);
    out.set("mem.port_conflicts", portConflicts_);
    out.set("mem.dropped_prefetches", droppedPrefetches_);
}

} // namespace widx::sim
