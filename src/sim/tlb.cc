#include "sim/tlb.hh"

#include "common/bitops.hh"
#include "common/logging.hh"

namespace widx::sim {

Tlb::Tlb(u32 entries, u64 page_bytes, Cycle walk_latency, u32 max_walks)
    : entries_(entries), pageBytes_(page_bytes),
      walkLatency_(walk_latency), walkSlotFree_(max_walks, 0)
{
    fatal_if(entries == 0, "TLB needs at least one entry");
    fatal_if(!isPowerOfTwo(page_bytes), "page size must be 2^k");
    fatal_if(max_walks == 0, "TLB needs at least one walk slot");
}

void
Tlb::insert(Addr page)
{
    auto it = map_.find(page);
    if (it != map_.end()) {
        lru_.erase(it->second);
        map_.erase(it);
    }
    lru_.push_front(page);
    map_[page] = lru_.begin();
    while (map_.size() > entries_) {
        Addr victim = lru_.back();
        lru_.pop_back();
        map_.erase(victim);
    }
}

Tlb::Result
Tlb::translate(Addr addr, Cycle now)
{
    const Addr page = pageOf(addr);

    auto hit = map_.find(page);
    if (hit != map_.end()) {
        // Refresh LRU position.
        lru_.erase(hit->second);
        lru_.push_front(page);
        hit->second = lru_.begin();
        ++hits_;
        // The entry is installed when its walk starts; a hit on a
        // page whose walk is still in flight waits for the walk.
        auto walk = walking_.find(page);
        if (walk != walking_.end() && walk->second > now) {
            ++walkJoins_;
            return {walk->second, false};
        }
        return {now, false};
    }

    ++misses_;

    // Join an in-flight walk for the same page if there is one.
    auto walk = walking_.find(page);
    if (walk != walking_.end() && walk->second > now) {
        ++walkJoins_;
        return {walk->second, true};
    }

    // Claim the earliest-free walk slot.
    std::size_t best = 0;
    for (std::size_t i = 1; i < walkSlotFree_.size(); ++i)
        if (walkSlotFree_[i] < walkSlotFree_[best])
            best = i;
    Cycle start = std::max(now, walkSlotFree_[best]);
    Cycle done = start + walkLatency_;
    walkSlotFree_[best] = done;
    walking_[page] = done;

    // Prune finished walks opportunistically.
    for (auto it = walking_.begin(); it != walking_.end();) {
        if (it->second <= now)
            it = walking_.erase(it);
        else
            ++it;
    }

    insert(page);
    return {done, true};
}

void
Tlb::flush()
{
    lru_.clear();
    map_.clear();
    walking_.clear();
}

void
Tlb::exportStats(StatSet &out) const
{
    out.set("tlb.hits", hits_);
    out.set("tlb.misses", misses_);
    out.set("tlb.walk_joins", walkJoins_);
}

} // namespace widx::sim
