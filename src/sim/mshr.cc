#include "sim/mshr.hh"

#include "common/logging.hh"

namespace widx::sim {

MshrFile::MshrFile(u32 entries)
    : capacity_(entries)
{
    fatal_if(entries == 0, "MSHR file needs at least one entry");
}

void
MshrFile::retire(Cycle now)
{
    for (auto it = entries_.begin(); it != entries_.end();) {
        if (it->second <= now)
            it = entries_.erase(it);
        else
            ++it;
    }
}

MshrFile::Result
MshrFile::lookupMerge(Addr block, Cycle now)
{
    retire(now);
    auto it = entries_.find(block);
    if (it != entries_.end()) {
        ++merges_;
        return {it->second, true, false};
    }
    return {0, false, false};
}

MshrFile::Result
MshrFile::allocate(Addr block, Cycle now, Cycle fill)
{
    retire(now);
    if (entries_.size() >= capacity_) {
        ++exhaustions_;
        return {0, false, true};
    }
    entries_[block] = fill;
    recordFill(block, now, fill);
    ++allocations_;
    if (entries_.size() > peak_)
        peak_ = u32(entries_.size());
    return {fill, false, false};
}

void
MshrFile::recordFill(Addr block, Cycle now, Cycle fill)
{
    if (now > maxNow_)
        maxNow_ = now;
    recentFills_[block] = fill;
    // Lazy prune: fills far in the past can no longer matter even to
    // the most out-of-order issuer.
    if (recentFills_.size() > 4096) {
        for (auto it = recentFills_.begin();
             it != recentFills_.end();) {
            if (it->second + 65536 < maxNow_)
                it = recentFills_.erase(it);
            else
                ++it;
        }
    }
}

Cycle
MshrFile::pendingFill(Addr block, Cycle now)
{
    if (now > maxNow_)
        maxNow_ = now;
    auto it = recentFills_.find(block);
    return it == recentFills_.end() ? 0 : it->second;
}

Cycle
MshrFile::earliestFill(Cycle now)
{
    retire(now);
    Cycle earliest = 0;
    for (const auto &[block, fill] : entries_)
        if (earliest == 0 || fill < earliest)
            earliest = fill;
    return earliest;
}

u32
MshrFile::inflight(Cycle now)
{
    retire(now);
    return u32(entries_.size());
}

void
MshrFile::exportStats(StatSet &out) const
{
    out.set("mshr.allocations", allocations_);
    out.set("mshr.merges", merges_);
    out.set("mshr.exhaustions", exhaustions_);
    out.set("mshr.peak_inflight", peak_);
}

} // namespace widx::sim
