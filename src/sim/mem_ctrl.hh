/**
 * @file
 * DDR3 memory-controller bandwidth model.
 *
 * Each controller transfers one 64 B cache block per
 * Params::memCtrlCyclesPerBlock() cycles (12.8 GB/s at 2 GHz); blocks
 * queue behind each other, so sustained overloads show up as growing
 * queueing delay — the off-chip bandwidth wall of Section 3.2.
 * Controllers are interleaved by block address.
 */

#ifndef WIDX_SIM_MEM_CTRL_HH
#define WIDX_SIM_MEM_CTRL_HH

#include <vector>

#include "common/stats.hh"
#include "common/types.hh"

namespace widx::sim {

class MemCtrls
{
  public:
    /**
     * @param count number of controllers.
     * @param cycles_per_block occupancy per 64 B transfer.
     * @param dram_latency fixed access latency (45 ns = 90 cycles).
     */
    MemCtrls(u32 count, Cycle cycles_per_block, Cycle dram_latency);

    /**
     * Schedule a block fetch issued at cycle `when`.
     * @return the cycle the block's data arrives at the LLC.
     */
    Cycle access(Addr block, Cycle when);

    u64 blocksTransferred() const { return blocks_; }

    /** Mean queueing delay (cycles a request waited for its MC). */
    double avgQueueDelay() const;

    void resetStats();

    void exportStats(StatSet &out) const;

  private:
    u32 ctrlOf(Addr block) const;

    Cycle cyclesPerBlock_;
    Cycle dramLatency_;
    std::vector<Cycle> nextFree_; ///< per-controller
    u64 blocks_ = 0;
    u64 queueDelaySum_ = 0;
};

} // namespace widx::sim

#endif // WIDX_SIM_MEM_CTRL_HH
