#include "accel/unit.hh"

#include <cstring>

#include "common/logging.hh"

namespace widx::accel {

using isa::Instruction;
using isa::Opcode;
using isa::ShiftDir;

namespace {

/** Which register operands an instruction reads. */
void
operandUse(const Instruction &inst, bool &reads_ra, bool &reads_rb)
{
    switch (inst.op) {
      case Opcode::ADD:
      case Opcode::AND:
      case Opcode::XOR:
      case Opcode::CMP:
      case Opcode::CMP_LE:
      case Opcode::ADD_SHF:
      case Opcode::AND_SHF:
      case Opcode::XOR_SHF:
      case Opcode::ST:
      case Opcode::BLE:
        reads_ra = true;
        reads_rb = true;
        return;
      case Opcode::SHL:
      case Opcode::SHR:
      case Opcode::LD:
      case Opcode::TOUCH:
        reads_ra = true;
        reads_rb = false;
        return;
      case Opcode::BA:
      default:
        reads_ra = false;
        reads_rb = false;
        return;
    }
}

u64
loadHost(Addr ea)
{
    u64 v;
    std::memcpy(&v, reinterpret_cast<const void *>(std::uintptr_t(ea)),
                sizeof(v));
    return v;
}

void
storeHost(Addr ea, u64 v)
{
    std::memcpy(reinterpret_cast<void *>(std::uintptr_t(ea)), &v,
                sizeof(v));
}

} // namespace

Unit::Unit(std::string name, const isa::Program &program,
           sim::MemSystem &mem, QueueSource *source, QueueSink *sink)
    : name_(std::move(name)), program_(program), mem_(mem),
      source_(source), sink_(sink)
{
    std::string error;
    panic_if(!program_.validate(error), "unit %s: invalid program: %s",
             name_.c_str(), error.c_str());
    regs_ = program_.regImage();
}

void
Unit::restart()
{
    regs_ = program_.regImage();
    pc_ = 0;
    halted_ = false;
    readyAt_ = 0;
    stagedW0_ = 0;
}

void
Unit::setReg(unsigned r, u64 v)
{
    panic_if(r >= isa::kNumRegs, "register r%u out of range", r);
    panic_if(r == isa::kRegZero && v != 0, "r0 is hardwired to zero");
    regs_[r] = v;
}

bool
Unit::readsQueue(const Instruction &inst)
{
    bool ra, rb;
    operandUse(inst, ra, rb);
    return (ra && inst.ra == isa::kRegQueuePop) ||
           (rb && inst.rb == isa::kRegQueuePop);
}

bool
Unit::pushesQueue(const Instruction &inst)
{
    switch (inst.op) {
      case Opcode::ST:
      case Opcode::TOUCH:
      case Opcode::BA:
      case Opcode::BLE:
        return false;
      default:
        return inst.rd == isa::kRegQueuePush;
    }
}

u64
Unit::readOperand(u8 r)
{
    if (r == isa::kRegZero)
        return 0;
    return regs_[r];
}

void
Unit::writeResult(u8 rd, u64 value)
{
    if (rd == isa::kRegZero)
        return; // hardwired zero
    if (rd == isa::kRegQueuePush) {
        panic_if(!sink_, "%s pushes but has no output queue",
                 name_.c_str());
        sink_->push({stagedW0_, value});
        ++pushes_;
        return;
    }
    if (rd == isa::kRegQueuePop) {
        stagedW0_ = value; // stage the first word of the next entry
        return;
    }
    regs_[rd] = value;
}

bool
Unit::tick(Cycle now)
{
    if (halted_)
        return false;
    if (now < readyAt_)
        return false; // stall already attributed at issue

    if (pc_ >= program_.size()) {
        halted_ = true;
        return true;
    }

    const Instruction &inst = program_.at(pc_);

    // Structural hazards are checked before any side effect so a
    // stalled instruction can retry without re-executing anything.
    if (readsQueue(inst)) {
        panic_if(!source_, "%s pops but has no input queue",
                 name_.c_str());
        if (source_->empty()) {
            ++breakdown_.idle;
            return false;
        }
    }
    if (pushesQueue(inst) && sink_ && sink_->full()) {
        ++breakdown_.backpressure;
        return false;
    }

    // Commit the pop: r30 receives the first word, r31 latches the
    // second (Section "queue-interface registers" in isa.hh).
    if (readsQueue(inst)) {
        QueueEntry e = source_->pop();
        regs_[isa::kRegQueuePop] = e.w0;
        regs_[isa::kRegLatchW0] = e.w0;
        regs_[isa::kRegQueuePush] = e.w1;
        ++pops_;
    }

    ++instructions_;

#ifdef WIDX_UNIT_DEBUG
    if (instructions_ < 60)
        std::fprintf(stderr, "%s @%llu pc=%u %s\n", name_.c_str(),
                     (unsigned long long)now, pc_,
                     inst.toString().c_str());
#endif

    const u64 a = readOperand(inst.ra);
    const u64 b = readOperand(inst.rb);

    auto shifted = [&](u64 v) {
        return inst.sdir == ShiftDir::Lsl ? v << inst.shamt
                                          : v >> inst.shamt;
    };

    switch (inst.op) {
      case Opcode::ADD:
        writeResult(inst.rd, a + b);
        break;
      case Opcode::AND:
        writeResult(inst.rd, a & b);
        break;
      case Opcode::XOR:
        writeResult(inst.rd, a ^ b);
        break;
      case Opcode::CMP:
        writeResult(inst.rd, a == b ? 1 : 0);
        break;
      case Opcode::CMP_LE:
        writeResult(inst.rd, a <= b ? 1 : 0);
        break;
      case Opcode::SHL:
        writeResult(inst.rd, a << inst.shamt);
        break;
      case Opcode::SHR:
        writeResult(inst.rd, a >> inst.shamt);
        break;
      case Opcode::ADD_SHF:
        writeResult(inst.rd, a + shifted(b));
        break;
      case Opcode::AND_SHF:
        writeResult(inst.rd, a & shifted(b));
        break;
      case Opcode::XOR_SHF:
        writeResult(inst.rd, a ^ shifted(b));
        break;

      case Opcode::LD: {
        const Addr ea = a + Addr(i64(inst.imm));
        sim::AccessResult res =
            mem_.access(now, ea, sim::AccessKind::Load);
        ++loads_;
        ++breakdown_.comp; // the issue cycle
        const Cycle done = res.ready > now + 1 ? res.ready : now + 1;
        Cycle stall = done - (now + 1);
        Cycle tlb_part =
            res.tlbCycles < stall ? res.tlbCycles : stall;
        breakdown_.tlb += tlb_part;
        breakdown_.mem += stall - tlb_part;
        readyAt_ = done;
        writeResult(inst.rd, loadHost(ea));
        ++pc_;
        return true;
      }

      case Opcode::ST: {
        const Addr ea = a + Addr(i64(inst.imm));
        sim::AccessResult res =
            mem_.access(now, ea, sim::AccessKind::Store);
        storeHost(ea, b);
        ++stores_;
        ++breakdown_.comp;
        // The store buffer hides the fill; only translation can
        // back-pressure the unit.
        const Cycle done =
            now + 1 + res.tlbCycles;
        breakdown_.tlb += res.tlbCycles;
        readyAt_ = done;
        ++pc_;
        return true;
      }

      case Opcode::TOUCH: {
        const Addr ea = a + Addr(i64(inst.imm));
        mem_.access(now, ea, sim::AccessKind::Prefetch);
        ++breakdown_.comp;
        readyAt_ = now + 1;
        ++pc_;
        return true;
      }

      case Opcode::BA:
        pc_ = unsigned(inst.imm);
        breakdown_.comp += 2; // taken branch: one bubble
        readyAt_ = now + 2;
        if (pc_ >= program_.size())
            halted_ = true;
        return true;

      case Opcode::BLE:
        if (a <= b) {
            pc_ = unsigned(inst.imm);
            breakdown_.comp += 2;
            readyAt_ = now + 2;
            if (pc_ >= program_.size())
                halted_ = true;
        } else {
            ++pc_;
            ++breakdown_.comp;
            readyAt_ = now + 1;
        }
        return true;

      default:
        panic("%s: unhandled opcode", name_.c_str());
    }

    // Common epilogue for single-cycle ALU forms.
    ++breakdown_.comp;
    readyAt_ = now + 1;
    ++pc_;
    return true;
}

} // namespace widx::accel
