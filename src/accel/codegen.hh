/**
 * @file
 * Schema-aware Widx program generation (the paper's Section 4.2
 * programming API).
 *
 * A database developer supplies three functions — key hashing, node
 * walk, result emission — written against the index schema. Here the
 * three programs are generated from the runtime description of the
 * index (layout offsets, bucket geometry, hash-function IR, key
 * indirection), emitted as assembler text, and assembled through the
 * Table 1 toolchain, which both keeps them human-readable (see
 * Program::disassemble) and enforces the per-unit legality matrix.
 *
 * Register conventions (constants preloaded via the control block):
 *   dispatcher: r1 cursor, r2 end, r3 bucket base, r4 bucket mask,
 *               r5 key stride, r6.. hash constants, r20 h, r21 key
 *   walker:     r2 null id, r3 const 1, r4 head offset,
 *               r10 key, r11 bucket, r13 node, r15 node key,
 *               r16 payload
 *   producer:   r1 out cursor, r2 null id, r3 const 1, r4 out stride
 */

#ifndef WIDX_ACCEL_CODEGEN_HH
#define WIDX_ACCEL_CODEGEN_HH

#include "db/column.hh"
#include "db/hash_index.hh"
#include "isa/program.hh"

namespace widx::accel {

/** Everything the engine needs to offload one indexing operation
 *  (the configuration-register contents of Section 4.3). */
struct OffloadSpec
{
    const db::HashIndex *index = nullptr;
    const db::Column *probeKeys = nullptr;
    /** Base of the results region; matches are {key, payload} pairs. */
    Addr outBase = 0;
    /** NULL value identifier: the end-of-stream sentinel. */
    u64 nullId = db::kEmptyKey;
    /** Extension (off by default, ablated in
     *  bench/ablation_touch): the dispatcher TOUCHes the bucket
     *  header right after hashing, prefetching the header node for
     *  the walker. Helps LLC-resident indexes; at DRAM-resident
     *  sizes the prefetches are largely dropped by MSHR exhaustion.
     *  The paper's design does not prefetch buckets (Widx-1walker
     *  performs within ~4% of the OoO core, Section 6.1). */
    bool dispatcherTouch = false;
};

/**
 * Dispatcher program: iterate the input keys from startRow advancing
 * by strideRows, hash each key, and push {key, bucket address} to the
 * walkers. A stride > 1 partitions the input across several
 * dispatchers (the Figure 3c per-walker-hashing design point).
 */
isa::Program generateDispatcher(const OffloadSpec &spec, u64 start_row,
                                u64 stride_rows);

/** Walker program: pop {key, bucket}, walk the node list, push
 *  {key, payload} for every match; halt on the NULL sentinel. */
isa::Program generateWalker(const OffloadSpec &spec);

/** Producer program: pop {key, payload} and store both words to the
 *  results region; halt on the NULL sentinel. */
isa::Program generateProducer(const OffloadSpec &spec);

/**
 * Combined hash+walk+emit program for the Figure 3(a)/(b) design
 * points (no decoupling, no specialization); marked relaxed because
 * it predates the Table 1 per-unit split.
 *
 * @param out_base private results region of this context.
 */
isa::Program generateCombined(const OffloadSpec &spec, u64 start_row,
                              u64 stride_rows, Addr out_base);

} // namespace widx::accel

#endif // WIDX_ACCEL_CODEGEN_HH
