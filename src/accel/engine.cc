#include "accel/engine.hh"

#include <algorithm>

#include "accel/control_block.hh"
#include "common/logging.hh"

namespace widx::accel {

namespace {

/** Cycles with no unit progress before the engine declares deadlock
 *  (generous: the longest legitimate stall is a DRAM queue drain). */
constexpr Cycle kDeadlockWindow = 1u << 20;

} // namespace

Engine::Engine(const OffloadSpec &spec, const EngineConfig &config)
    : spec_(spec), config_(config),
      mem_(std::make_unique<sim::MemSystem>(config.memParams))
{
    fatal_if(config.numWalkers == 0, "need at least one walker");
    fatal_if(config.queueDepth == 0, "need at least one queue entry");
}

Engine::~Engine() = default;

Cycle
Engine::loadControlBlock(const std::vector<isa::Program> &programs)
{
    blockWords_ = encodeControlBlock(programs);
    Cycle now = 0;
    if (config_.modelConfigLoad) {
        for (const u64 &w : blockWords_) {
            sim::AccessResult res = mem_->access(
                now, Addr(reinterpret_cast<std::uintptr_t>(&w)),
                sim::AccessKind::Load);
            now = res.ready;
        }
    }
    return now;
}

EngineResult
runOffload(const OffloadSpec &spec, const EngineConfig &config)
{
    Engine engine(spec, config);
    return engine.run();
}

EngineResult
Engine::run()
{
    const unsigned w = config_.numWalkers;
    const unsigned ndisp = config_.sharedDispatcher ? 1 : w;

    // 1. Generate the unit programs for this schema.
    std::vector<isa::Program> programs;
    for (unsigned d = 0; d < ndisp; ++d) {
        programs.push_back(config_.sharedDispatcher
                               ? generateDispatcher(spec_, 0, 1)
                               : generateDispatcher(spec_, d, ndisp));
    }
    for (unsigned i = 0; i < w; ++i)
        programs.push_back(generateWalker(spec_));
    programs.push_back(generateProducer(spec_));

    // 2. Configure through the control block (Section 4.3); the
    //    engine runs the *decoded* programs, exercising the exact
    //    image an application binary would carry.
    const Cycle config_cycles = loadControlBlock(programs);
    std::vector<isa::Program> loaded;
    std::string error;
    panic_if(!decodeControlBlock(blockWords_, error, loaded),
             "control block round-trip failed: %s", error.c_str());

    // 3. Queue fabric.
    std::vector<std::unique_ptr<DirectQueue>> in_qs;
    std::vector<std::unique_ptr<DirectQueue>> out_qs;
    std::vector<DirectQueue *> in_ptrs;
    std::vector<DirectQueue *> out_ptrs;
    for (unsigned i = 0; i < w; ++i) {
        in_qs.push_back(
            std::make_unique<DirectQueue>(config_.queueDepth));
        out_qs.push_back(
            std::make_unique<DirectQueue>(config_.queueDepth));
        in_ptrs.push_back(in_qs.back().get());
        out_ptrs.push_back(out_qs.back().get());
    }
    RoundRobinRouter router(in_ptrs);
    RoundRobinArbiter arbiter(out_ptrs);

    // 4. Units.
    std::vector<std::unique_ptr<Unit>> dispatchers;
    std::vector<std::unique_ptr<Unit>> walkers;
    for (unsigned d = 0; d < ndisp; ++d) {
        QueueSink *sink = config_.sharedDispatcher
                              ? static_cast<QueueSink *>(&router)
                              : static_cast<QueueSink *>(in_ptrs[d]);
        dispatchers.push_back(std::make_unique<Unit>(
            "dispatcher" + std::to_string(d), loaded[d], *mem_,
            nullptr, sink));
    }
    for (unsigned i = 0; i < w; ++i) {
        walkers.push_back(std::make_unique<Unit>(
            "walker" + std::to_string(i), loaded[ndisp + i], *mem_,
            in_ptrs[i], out_ptrs[i]));
    }
    Unit producer("producer", loaded[ndisp + w], *mem_, &arbiter,
                  nullptr);

    // 5. Cycle-stepped execution with the end-of-stream protocol.
    const u64 probes = spec_.probeKeys->size();
    const u64 warmup_target =
        u64(double(probes) * config_.warmupFraction);
    bool warmed = warmup_target == 0;
    u64 warmup_probes = 0;
    Cycle warmup_cycle = config_cycles;
    std::vector<UnitBreakdown> walker_base(w);
    UnitBreakdown disp_base;
    if (warmed)
        mem_->resetStats();

    std::vector<bool> walker_sentinel(w, false);
    bool producer_sentinel = false;

    Cycle now = config_cycles;
    Cycle last_progress = now;
    while (!producer.halted()) {
        bool progress = false;
        for (auto &d : dispatchers)
            progress |= d->tick(now);
        for (auto &wk : walkers)
            progress |= wk->tick(now);
        progress |= producer.tick(now);

        // Sentinel delivery: behind all pending walker entries.
        bool disp_done = true;
        for (auto &d : dispatchers)
            disp_done &= d->halted();
        if (disp_done) {
            for (unsigned i = 0; i < w; ++i) {
                if (!walker_sentinel[i] && !in_ptrs[i]->full()) {
                    in_ptrs[i]->push({spec_.nullId, 0});
                    walker_sentinel[i] = true;
                    progress = true;
                }
            }
        }
        bool walkers_done = true;
        for (auto &wk : walkers)
            walkers_done &= wk->halted();
        if (walkers_done && !producer_sentinel && arbiter.empty()) {
            out_ptrs[0]->push({spec_.nullId, 0});
            producer_sentinel = true;
            progress = true;
        }

        // Warmup snapshot once enough keys have been dispatched.
        if (!warmed) {
            u64 dispatched = 0;
            for (auto &d : dispatchers)
                dispatched += d->entriesPushed();
            if (dispatched >= warmup_target) {
                warmed = true;
                warmup_probes = dispatched;
                warmup_cycle = now;
                for (unsigned i = 0; i < w; ++i)
                    walker_base[i] = walkers[i]->breakdown();
                for (auto &d : dispatchers)
                    disp_base.accumulate(d->breakdown());
                mem_->resetStats();
            }
        }

        if (progress)
            last_progress = now;
        panic_if(now - last_progress > kDeadlockWindow,
                 "engine deadlock at cycle %llu",
                 (unsigned long long)now);
        fatal_if(config_.maxCycles && now > config_.maxCycles,
                 "engine exceeded maxCycles");
        ++now;
    }

    // 6. Collect results.
    EngineResult res;
    res.probes = probes;
    res.matches = producer.entriesPopped() -
                  (producer_sentinel ? 1 : 0);
    res.totalCycles = now - config_cycles;
    res.configCycles = config_cycles;
    res.measuredProbes = probes - warmup_probes;
    res.measuredCycles = now - warmup_cycle;
    res.cyclesPerTuple =
        res.measuredProbes == 0
            ? 0.0
            : double(res.measuredCycles) / double(res.measuredProbes);
    for (unsigned i = 0; i < w; ++i) {
        UnitBreakdown b =
            walkers[i]->breakdown().minus(walker_base[i]);
        res.perWalker.push_back(b);
        res.walkers.accumulate(b);
    }
    UnitBreakdown disp_now;
    for (auto &d : dispatchers)
        disp_now.accumulate(d->breakdown());
    res.dispatchers = disp_now.minus(disp_base);
    mem_->exportStats(res.memStats);
    return res;
}

EngineResult
Engine::runCombined(unsigned num_contexts)
{
    fatal_if(num_contexts == 0, "need at least one context");
    const u64 probes = spec_.probeKeys->size();
    const u64 slice_pairs = 2 * (probes / num_contexts + 1);

    std::vector<isa::Program> programs;
    for (unsigned c = 0; c < num_contexts; ++c) {
        Addr out = spec_.outBase + Addr(c) * slice_pairs * 16;
        programs.push_back(
            generateCombined(spec_, c, num_contexts, out));
    }
    const Cycle config_cycles = loadControlBlock(programs);
    std::vector<isa::Program> loaded;
    std::string error;
    panic_if(!decodeControlBlock(blockWords_, error, loaded),
             "control block round-trip failed: %s", error.c_str());

    std::vector<std::unique_ptr<Unit>> contexts;
    for (unsigned c = 0; c < num_contexts; ++c) {
        contexts.push_back(std::make_unique<Unit>(
            "combined" + std::to_string(c), loaded[c], *mem_, nullptr,
            nullptr));
    }

    const u64 warmup_target =
        u64(double(probes) * config_.warmupFraction);
    bool warmed = warmup_target == 0;
    u64 warmup_probes = 0;
    Cycle warmup_cycle = config_cycles;
    std::vector<UnitBreakdown> base(num_contexts);
    if (warmed)
        mem_->resetStats();

    // Cursor start addresses, for progress accounting via r1.
    const db::Column &keys = *spec_.probeKeys;
    std::vector<Addr> start(num_contexts);
    for (unsigned c = 0; c < num_contexts; ++c)
        start[c] = keys.addrOf(0) + Addr(c) * keys.elemWidth();
    const u64 stride_bytes = u64(num_contexts) * keys.elemWidth();

    Cycle now = config_cycles;
    Cycle last_progress = now;
    auto all_halted = [&]() {
        for (auto &c : contexts)
            if (!c->halted())
                return false;
        return true;
    };
    while (!all_halted()) {
        bool progress = false;
        for (auto &c : contexts)
            progress |= c->tick(now);

        if (!warmed) {
            u64 done = 0;
            for (unsigned c = 0; c < num_contexts; ++c) {
                u64 cursor = contexts[c]->reg(1);
                done += (cursor - start[c]) / stride_bytes;
            }
            if (done >= warmup_target) {
                warmed = true;
                warmup_probes = done;
                warmup_cycle = now;
                for (unsigned c = 0; c < num_contexts; ++c)
                    base[c] = contexts[c]->breakdown();
                mem_->resetStats();
            }
        }

        if (progress)
            last_progress = now;
        panic_if(now - last_progress > kDeadlockWindow,
                 "combined engine deadlock at cycle %llu",
                 (unsigned long long)now);
        ++now;
    }

    EngineResult res;
    res.probes = probes;
    u64 stores = 0;
    for (auto &c : contexts)
        stores += c->storesExecuted();
    res.matches = stores / 2;
    res.totalCycles = now - config_cycles;
    res.configCycles = config_cycles;
    res.measuredProbes = probes - warmup_probes;
    res.measuredCycles = now - warmup_cycle;
    res.cyclesPerTuple =
        res.measuredProbes == 0
            ? 0.0
            : double(res.measuredCycles) / double(res.measuredProbes);
    for (unsigned c = 0; c < num_contexts; ++c) {
        UnitBreakdown b = contexts[c]->breakdown().minus(base[c]);
        res.perWalker.push_back(b);
        res.walkers.accumulate(b);
    }
    mem_->exportStats(res.memStats);
    return res;
}

} // namespace widx::accel
