/**
 * @file
 * The Widx control block (Section 4.3).
 *
 * The application binary carries a control block holding the
 * instructions and constant-register images for every Widx unit. The
 * host core writes the block's base address into Widx's memory-mapped
 * configuration registers; Widx then issues a series of loads to
 * consecutive virtual addresses to configure itself. This module
 * serializes programs to that block format and parses it back; the
 * engine times the configuration loads through the memory system.
 *
 * Layout (64-bit words):
 *   [0]            magic
 *   [1]            unit count
 *   per unit:
 *     [0]          kind (8b) | relaxed flag (8b) | instruction count
 *     [1 .. 32]    initial register image (r0..r31)
 *     [33 ..]      encoded instructions
 */

#ifndef WIDX_ACCEL_CONTROL_BLOCK_HH
#define WIDX_ACCEL_CONTROL_BLOCK_HH

#include <string>
#include <vector>

#include "isa/program.hh"

namespace widx::accel {

/** Magic word identifying a Widx control block ("WIDX1"). */
constexpr u64 kControlBlockMagic = 0x5749445831ull;

/** Serialize unit programs into a control block image. */
std::vector<u64> encodeControlBlock(
    const std::vector<isa::Program> &programs);

/**
 * Parse a control block image back into programs.
 *
 * @param words the block image.
 * @param error receives a diagnostic on failure.
 * @param out receives the programs on success.
 * @return true on success.
 */
bool decodeControlBlock(const std::vector<u64> &words,
                        std::string &error,
                        std::vector<isa::Program> &out);

} // namespace widx::accel

#endif // WIDX_ACCEL_CONTROL_BLOCK_HH
