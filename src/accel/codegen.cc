#include "accel/codegen.hh"

#include <cstdarg>
#include <cstdio>
#include <map>

#include "common/bitops.hh"

#include "common/logging.hh"
#include "isa/assembler.hh"

namespace widx::accel {

using db::HashCombine;
using db::HashIndex;
using db::HashShift;
using db::HashStep;

// The generated Widx programs bake these offsets into load/store
// displacements, and the software probe pipeline's tag array is
// deliberately out-of-band (a side array, not part of the bucket or
// node layout). Pin the advertised geometry to the real structs so a
// drift in either world fails at compile time rather than producing
// programs that walk garbage.
static_assert(offsetof(HashIndex::Node, key) ==
                  HashIndex::kNodeKeyOffset,
              "walker programs load keys at this displacement");
static_assert(offsetof(HashIndex::Node, payload) ==
                  HashIndex::kNodePayloadOffset,
              "walker programs load payloads at this displacement");
static_assert(offsetof(HashIndex::Node, next) ==
                  HashIndex::kNodeNextOffset,
              "walker programs chase next pointers at this "
              "displacement");
static_assert(offsetof(HashIndex::Bucket, head) ==
                  HashIndex::kBucketHeadOffset,
              "walker programs skip the bucket count word");
static_assert(sizeof(HashIndex::Bucket) == HashIndex::kBucketStride,
              "dispatcher programs scale bucket indexes by this "
              "stride");

namespace {

std::string
fmt(const char *pattern, ...)
    __attribute__((format(printf, 1, 2)));

std::string
fmt(const char *pattern, ...)
{
    char buf[160];
    va_list args;
    va_start(args, pattern);
    std::vsnprintf(buf, sizeof(buf), pattern, args);
    va_end(args);
    return buf;
}

void
checkSpec(const OffloadSpec &spec)
{
    fatal_if(!spec.index, "offload spec needs an index");
    fatal_if(!spec.probeKeys, "offload spec needs a probe column");
    fatal_if(spec.probeKeys->elemWidth() != 8,
             "Widx offload requires 64-bit key columns (the paper's "
             "model assumption: eight keys per cache block)");
}

/**
 * Tracks constant-register allocation while emitting hash steps.
 * Constants start at r6; exceeding the register budget is fatal
 * (Section 4.2: such functions cannot be mapped).
 */
class ConstPool
{
  public:
    ConstPool(unsigned first, unsigned last)
        : next_(first), last_(last)
    {
    }

    unsigned
    regFor(u64 constant)
    {
        auto it = map_.find(constant);
        if (it != map_.end())
            return it->second;
        fatal_if(next_ > last_,
                 "hash function exceeds the Widx register budget");
        map_[constant] = next_;
        return next_++;
    }

    const std::map<u64, unsigned> &all() const { return map_; }

  private:
    unsigned next_;
    unsigned last_;
    std::map<u64, unsigned> map_;
};

/**
 * Emit the hash-step chain over accumulator register h_reg.
 * One HashStep maps to exactly one (possibly fused) instruction,
 * which is what makes compOps() the trace-side cost model.
 */
std::string
emitHashSteps(const db::HashFn &fn, unsigned h_reg, ConstPool &pool)
{
    std::string out;
    for (const HashStep &s : fn.steps()) {
        const char *op = nullptr;
        const char *fused = nullptr;
        switch (s.combine) {
          case HashCombine::Xor:
            op = "xor";
            fused = "xorshf";
            break;
          case HashCombine::Add:
            op = "add";
            fused = "addshf";
            break;
          case HashCombine::And:
            op = "and";
            fused = "andshf";
            break;
        }
        std::string operand =
            s.useSelf ? fmt("r%u", h_reg)
                      : fmt("r%u", pool.regFor(s.constant));
        if (s.shift == HashShift::None) {
            out += fmt("    %s r%u, r%u, %s\n", op, h_reg, h_reg,
                       operand.c_str());
        } else {
            out += fmt("    %s r%u, r%u, %s, %s #%u\n", fused, h_reg,
                       h_reg, operand.c_str(),
                       s.shift == HashShift::Lsl ? "lsl" : "lsr",
                       s.shamt);
        }
    }
    return out;
}

/** Shared front half of dispatcher-style programs: key fetch, hash,
 *  bucket address formation into r20, key in r21. */
std::string
emitFetchAndHash(const OffloadSpec &spec, ConstPool &pool)
{
    std::string src;
    src += "loop:\n";
    src += "    ble    r2, r1, halt      ; input exhausted\n";
    src += "    ld     r21, [r1 + 0]     ; next key\n";
    src += "    add    r1, r1, r5        ; advance cursor\n";
    src += "    add    r20, r21, r0      ; h = key\n";
    src += emitHashSteps(spec.index->hashFn(), 20, pool);
    src += "    and    r20, r20, r4      ; bucket index\n";
    src += fmt("    addshf r20, r3, r20, lsl #%u ; bucket address\n",
               log2Exact(u64{HashIndex::kBucketStride}));
    return src;
}

} // namespace

isa::Program
generateDispatcher(const OffloadSpec &spec, u64 start_row,
                   u64 stride_rows)
{
    checkSpec(spec);
    fatal_if(stride_rows == 0, "stride must be nonzero");

    ConstPool pool(6, 19);
    std::string src = emitFetchAndHash(spec, pool);
    if (spec.dispatcherTouch)
        src += fmt("    touch  [r20 + %u]       ; prefetch header\n",
                   HashIndex::kBucketHeadOffset);
    // Prefetch the key stream one cache block ahead: keys are
    // sequential, so the TOUCH hides the per-block compulsory miss
    // behind the hashing of the current block's keys.
    src += "    touch  [r1 + 64]         ; prefetch key stream\n";
    src += "    add    r30, r21, r0      ; stage key\n";
    src += "    add    r31, r20, r0      ; push {key, bucket}\n";
    src += "    ba     loop\n";

    isa::Program prog = isa::assembleOrDie(
        fmt("dispatcher[%s]", spec.index->hashFn().name().c_str()),
        isa::UnitKind::Dispatcher, src);

    const db::Column &keys = *spec.probeKeys;
    prog.setReg(1, keys.addrOf(0) + start_row * keys.elemWidth());
    prog.setReg(2, keys.addrOf(0) + keys.size() * keys.elemWidth());
    prog.setReg(3, spec.index->bucketArrayAddr());
    prog.setReg(4, spec.index->bucketMask());
    prog.setReg(5, stride_rows * keys.elemWidth());
    for (const auto &[constant, r] : pool.all())
        prog.setReg(r, constant);
    return prog;
}

isa::Program
generateWalker(const OffloadSpec &spec)
{
    checkSpec(spec);

    // The pop is fused with the NULL check: `cmp r12, r30, r2` pops
    // the next {key, bucket} entry; the key stays readable in the
    // r29 latch and the bucket address in r31.
    std::string src;
    src += "loop:\n";
    src += "    cmp    r12, r30, r2      ; pop; NULL sentinel?\n";
    src += "    ble    r3, r12, halt\n";
    src += "    add    r13, r31, r4      ; node = &bucket.head\n";
    src += "node_loop:\n";
    src += fmt("    ld     r15, [r13 + %u]   ; node key\n",
               HashIndex::kNodeKeyOffset);
    if (spec.index->indirectKeys())
        src += "    ld     r15, [r15 + 0]    ; indirect: load key\n";
    src += "    cmp    r12, r15, r29     ; match latched key?\n";
    src += "    ble    r12, r0, no_match\n";
    src += fmt("    ld     r16, [r13 + %u]   ; payload\n",
               HashIndex::kNodePayloadOffset);
    src += "    add    r30, r29, r0      ; stage key\n";
    src += "    add    r31, r16, r0      ; push {key, payload}\n";
    src += "no_match:\n";
    src += fmt("    ld     r13, [r13 + %u]   ; next node\n",
               HashIndex::kNodeNextOffset);
    src += "    ble    r3, r13, node_loop\n";
    src += "    ba     loop\n";

    isa::Program prog = isa::assembleOrDie(
        fmt("walker[%s]",
            spec.index->indirectKeys() ? "indirect" : "direct"),
        isa::UnitKind::Walker, src);
    prog.setReg(2, spec.nullId);
    prog.setReg(3, 1);
    prog.setReg(4, HashIndex::kBucketHeadOffset);
    return prog;
}

isa::Program
generateProducer(const OffloadSpec &spec)
{
    checkSpec(spec);
    fatal_if(spec.outBase == 0, "offload spec needs a results region");

    std::string src;
    src += "loop:\n";
    src += "    add    r10, r30, r0      ; pop key (r31 <- payload)\n";
    src += "    add    r11, r31, r0\n";
    src += "    cmp    r12, r10, r2      ; NULL sentinel?\n";
    src += "    ble    r3, r12, halt\n";
    src += "    st     [r1 + 0], r10\n";
    src += "    st     [r1 + 8], r11\n";
    src += "    add    r1, r1, r4\n";
    src += "    ba     loop\n";

    isa::Program prog = isa::assembleOrDie(
        "producer", isa::UnitKind::Producer, src);
    prog.setReg(1, spec.outBase);
    prog.setReg(2, spec.nullId);
    prog.setReg(3, 1);
    prog.setReg(4, 16);
    return prog;
}

isa::Program
generateCombined(const OffloadSpec &spec, u64 start_row,
                 u64 stride_rows, Addr out_base)
{
    checkSpec(spec);
    fatal_if(stride_rows == 0, "stride must be nonzero");
    fatal_if(out_base == 0, "combined context needs a results region");

    // Scratch registers reach r22 here, so constants live in r24..r29.
    ConstPool pool(24, 29);
    std::string src = emitFetchAndHash(spec, pool);
    src += "    add    r13, r20, r22     ; node = &bucket.head\n";
    src += "node_loop:\n";
    src += fmt("    ld     r15, [r13 + %u]\n", HashIndex::kNodeKeyOffset);
    if (spec.index->indirectKeys())
        src += "    ld     r15, [r15 + 0]\n";
    src += "    cmp    r12, r15, r21\n";
    src += "    ble    r12, r0, no_match\n";
    src += fmt("    ld     r16, [r13 + %u]\n",
               HashIndex::kNodePayloadOffset);
    src += "    st     [r17 + 0], r21\n";
    src += "    st     [r17 + 8], r16\n";
    src += "    add    r17, r17, r18\n";
    src += "no_match:\n";
    src += fmt("    ld     r13, [r13 + %u]\n",
               HashIndex::kNodeNextOffset);
    src += "    ble    r19, r13, node_loop\n";
    src += "    ba     loop\n";

    isa::Program prog;
    std::string error;
    bool ok = isa::assemble("combined", isa::UnitKind::Walker, src,
                            error, prog);
    fatal_if(!ok, "assembly of combined program failed: %s",
             error.c_str());
    prog.setRelaxedLegality(true);
    std::string verror;
    fatal_if(!prog.validate(verror), "combined program invalid: %s",
             verror.c_str());

    const db::Column &keys = *spec.probeKeys;
    prog.setReg(1, keys.addrOf(0) + start_row * keys.elemWidth());
    prog.setReg(2, keys.addrOf(0) + keys.size() * keys.elemWidth());
    prog.setReg(3, spec.index->bucketArrayAddr());
    prog.setReg(4, spec.index->bucketMask());
    prog.setReg(5, stride_rows * keys.elemWidth());
    prog.setReg(17, out_base);
    prog.setReg(18, 16);
    prog.setReg(19, 1);
    prog.setReg(22, HashIndex::kBucketHeadOffset);
    for (const auto &[constant, r] : pool.all())
        prog.setReg(r, constant);
    return prog;
}

} // namespace widx::accel
