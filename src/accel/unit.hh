/**
 * @file
 * One Widx unit: the custom 2-stage-pipeline RISC core of Figure 7.
 *
 * Functional + timing interpreter. The unit executes real Table 1
 * programs against host memory (loads dereference the simulated
 * address, which *is* a host pointer into the arena-backed index), so
 * results are bit-exact against the scalar reference while every
 * memory access is timed by the shared sim::MemSystem.
 *
 * Timing model:
 *  - one instruction per cycle when no hazard stalls the pipeline;
 *  - taken branches cost one bubble (2-stage pipeline, branch
 *    resolved in EX);
 *  - LD blocks the (in-order) unit until the data returns; the stall
 *    is attributed to Mem, or to TLB for the translation portion —
 *    the Comp/Mem/TLB/Idle categories of Figures 8a and 9;
 *  - TOUCH issues a non-binding prefetch and does not block;
 *  - ST retires through a store buffer (1 cycle), per Section 4.1
 *    "store latency can be hidden";
 *  - popping an empty input queue stalls (Idle — the walker-starved
 *    case); pushing a full output queue stalls (backpressure).
 *
 * TLB-miss retry (Section 4.3): on a retried translation the unit
 * redirects PC to the previous PC and flushes the pipeline; we model
 * the cost inside the translation stall and re-execute nothing, which
 * is equivalent because the first pipeline stage modifies no state.
 */

#ifndef WIDX_ACCEL_UNIT_HH
#define WIDX_ACCEL_UNIT_HH

#include <array>
#include <string>

#include "common/types.hh"
#include "isa/program.hh"
#include "accel/queue.hh"
#include "sim/mem_system.hh"

namespace widx::accel {

/** Cycle attribution for one unit (Figure 8a categories). */
struct UnitBreakdown
{
    u64 comp = 0; ///< executing instructions (incl. branch bubbles)
    u64 mem = 0;  ///< stalled on memory data
    u64 tlb = 0;  ///< stalled on address translation
    u64 idle = 0; ///< stalled on an empty input queue
    u64 backpressure = 0; ///< stalled on a full output queue

    u64
    total() const
    {
        return comp + mem + tlb + idle + backpressure;
    }

    void
    accumulate(const UnitBreakdown &o)
    {
        comp += o.comp;
        mem += o.mem;
        tlb += o.tlb;
        idle += o.idle;
        backpressure += o.backpressure;
    }

    UnitBreakdown
    minus(const UnitBreakdown &o) const
    {
        return {comp - o.comp, mem - o.mem, tlb - o.tlb,
                idle - o.idle, backpressure - o.backpressure};
    }
};

class Unit
{
  public:
    /**
     * @param name instance name for diagnostics ("walker0", ...).
     * @param program validated Widx program to run.
     * @param mem shared memory system (the host core's L1-D/MMU).
     * @param source input queue endpoint (nullptr for the dispatcher,
     *        which reads the input table directly).
     * @param sink output queue endpoint (nullptr for the producer,
     *        which stores to the results region).
     */
    Unit(std::string name, const isa::Program &program,
         sim::MemSystem &mem, QueueSource *source, QueueSink *sink);

    /** Advance one cycle. @return true if any progress was made. */
    bool tick(Cycle now);

    bool halted() const { return halted_; }
    const std::string &name() const { return name_; }
    const UnitBreakdown &breakdown() const { return breakdown_; }
    u64 instructionsExecuted() const { return instructions_; }
    u64 loadsExecuted() const { return loads_; }
    u64 storesExecuted() const { return stores_; }
    u64 entriesPopped() const { return pops_; }
    u64 entriesPushed() const { return pushes_; }

    /** Reset PC/registers/halted to the program image (not stats). */
    void restart();

    /** Current architectural register value (for tests). */
    u64 reg(unsigned r) const { return regs_.at(r); }

    /** Force a register (engine configuration writes). */
    void setReg(unsigned r, u64 v);

  private:
    /** Operand read; r30 reads pop the input queue (the caller has
     *  already checked for emptiness). */
    u64 readOperand(u8 r);

    /** True when the instruction reads the queue-pop register. */
    static bool readsQueue(const isa::Instruction &inst);

    /** True when the instruction writes the queue-push register. */
    static bool pushesQueue(const isa::Instruction &inst);

    void writeResult(u8 rd, u64 value);

    std::string name_;
    const isa::Program &program_;
    sim::MemSystem &mem_;
    QueueSource *source_;
    QueueSink *sink_;

    std::array<u64, isa::kNumRegs> regs_{};
    unsigned pc_ = 0;
    bool halted_ = false;
    Cycle readyAt_ = 0;
    u64 stagedW0_ = 0; ///< value staged by writing r30

    UnitBreakdown breakdown_;
    u64 instructions_ = 0;
    u64 loads_ = 0;
    u64 stores_ = 0;
    u64 pops_ = 0;
    u64 pushes_ = 0;
};

} // namespace widx::accel

#endif // WIDX_ACCEL_UNIT_HH
