/**
 * @file
 * The Widx engine: full-offload execution of an indexing operation
 * (Figure 6: one dispatcher, N walkers, one output producer, chained
 * through 2-entry queues).
 *
 * The engine reproduces the offload flow of Section 4.3: it encodes
 * the unit programs into a control block, times the configuration
 * loads through the core's memory hierarchy, then cycle-steps the
 * units until every probe key has flowed through
 * dispatcher -> walker -> producer and the results region holds all
 * matches. The host core is idle throughout (full offload), so the
 * engine's cycle count *is* the indexing runtime.
 *
 * End-of-stream protocol: when the dispatcher halts (input
 * exhausted), the engine enqueues the configured NULL-value
 * identifier behind each walker's pending entries; when all walkers
 * halt and their output queues drain, the same sentinel is delivered
 * to the producer (Section 4.3 lists the NULL identifier among the
 * configuration registers).
 *
 * Design-point configuration reproduces Figure 3:
 *  - numWalkers = 1 and sharedDispatcher: (c) with N=1;
 *  - numWalkers = N, sharedDispatcher = true: (d), the Widx default;
 *  - sharedDispatcher = false: (c), one hashing unit per walker;
 *  - the combined (a)/(b) points run through runCombined().
 */

#ifndef WIDX_ACCEL_ENGINE_HH
#define WIDX_ACCEL_ENGINE_HH

#include <memory>
#include <vector>

#include "accel/codegen.hh"
#include "accel/unit.hh"
#include "sim/params.hh"

namespace widx::accel {

struct EngineConfig
{
    /** Concurrent walker units (the paper evaluates 1, 2, 4). */
    unsigned numWalkers = 4;
    /** Entries per inter-unit queue (synthesized design: 2). */
    unsigned queueDepth = 2;
    /** One dispatcher shared by all walkers (Figure 3d) versus one
     *  decoupled hashing unit per walker (Figure 3c). */
    bool sharedDispatcher = true;
    /** Model the control-block configuration loads. */
    bool modelConfigLoad = true;
    /** Memory-system parameters (Table 2). */
    sim::Params memParams{};
    /** Fraction of probes treated as warmup; statistics cover the
     *  remainder (the SimFlex warmed-checkpoint methodology). */
    double warmupFraction = 0.1;
    /** Safety stop; 0 disables. */
    Cycle maxCycles = 0;
};

/** Result of one offloaded indexing operation. */
struct EngineResult
{
    // Functional outputs.
    u64 probes = 0;  ///< keys processed in total
    u64 matches = 0; ///< pairs written to the results region

    // Timing (measured window, after warmup).
    u64 measuredProbes = 0;
    Cycle measuredCycles = 0;
    double cyclesPerTuple = 0.0;

    // Whole-run timing.
    Cycle totalCycles = 0;
    Cycle configCycles = 0;

    /** Aggregate walker cycle breakdown over the measured window
     *  (the Comp/Mem/TLB/Idle split of Figures 8a and 9). */
    UnitBreakdown walkers;
    std::vector<UnitBreakdown> perWalker;
    UnitBreakdown dispatchers;

    /** Memory-system statistics over the measured window. */
    StatSet memStats;

    /** Walker-idle fraction of aggregate walker cycles. */
    double
    walkerIdleFraction() const
    {
        u64 t = walkers.total();
        return t == 0 ? 0.0 : double(walkers.idle) / double(t);
    }
};

class Engine
{
  public:
    Engine(const OffloadSpec &spec, const EngineConfig &config);
    ~Engine();

    /** Run the full offload (Figure 3c/d design points). */
    EngineResult run();

    /**
     * Run the Figure 3(a)/(b) design points: numContexts combined
     * hash+walk+emit contexts with no decoupling. Each context owns a
     * slice of the input and a private results region carved from the
     * region at spec.outBase.
     */
    EngineResult runCombined(unsigned num_contexts);

    /** The memory system (for tests inspecting cache behaviour). */
    sim::MemSystem &memSystem() { return *mem_; }

  private:
    EngineResult finishRun(Cycle total_cycles, Cycle config_cycles,
                           u64 warmup_probes, Cycle warmup_cycle);

    /** Time the configuration loads of the control block. */
    Cycle loadControlBlock(const std::vector<isa::Program> &programs);

    OffloadSpec spec_;
    EngineConfig config_;
    std::unique_ptr<sim::MemSystem> mem_;
    std::vector<u64> blockWords_;
};

/** Convenience wrapper: construct an engine and run the offload. */
EngineResult runOffload(const OffloadSpec &spec,
                        const EngineConfig &config);

} // namespace widx::accel

#endif // WIDX_ACCEL_ENGINE_HH
