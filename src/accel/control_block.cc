#include "accel/control_block.hh"

#include <cstdio>

#include "common/logging.hh"

namespace widx::accel {

std::vector<u64>
encodeControlBlock(const std::vector<isa::Program> &programs)
{
    std::vector<u64> words;
    words.push_back(kControlBlockMagic);
    words.push_back(programs.size());
    for (const isa::Program &p : programs) {
        u64 header = u64(p.unit()) | (u64(p.relaxedLegality()) << 8) |
                     (u64(p.size()) << 16);
        words.push_back(header);
        for (u64 r : p.regImage())
            words.push_back(r);
        for (const isa::Instruction &inst : p.code())
            words.push_back(inst.encode());
    }
    return words;
}

bool
decodeControlBlock(const std::vector<u64> &words, std::string &error,
                   std::vector<isa::Program> &out)
{
    out.clear();
    if (words.size() < 2 || words[0] != kControlBlockMagic) {
        error = "bad control block magic";
        return false;
    }
    const u64 count = words[1];
    std::size_t pos = 2;
    char buf[96];
    for (u64 u = 0; u < count; ++u) {
        if (pos >= words.size()) {
            error = "truncated unit header";
            return false;
        }
        const u64 header = words[pos++];
        const auto kind = isa::UnitKind(header & 0xFF);
        const bool relaxed = (header >> 8) & 0xFF;
        const u64 ninsts = header >> 16;
        if (u64(kind) > u64(isa::UnitKind::Producer)) {
            error = "bad unit kind";
            return false;
        }
        if (pos + isa::kNumRegs + ninsts > words.size()) {
            error = "truncated unit body";
            return false;
        }
        std::snprintf(buf, sizeof(buf), "unit%llu",
                      (unsigned long long)u);
        isa::Program prog(buf, kind);
        prog.setRelaxedLegality(relaxed);
        for (unsigned r = 0; r < isa::kNumRegs; ++r) {
            u64 v = words[pos++];
            if (r != isa::kRegZero || v == 0)
                prog.setReg(r, v);
        }
        for (u64 i = 0; i < ninsts; ++i)
            prog.append(isa::Instruction::decode(words[pos++]));
        std::string verror;
        if (!prog.validate(verror)) {
            error = "decoded program invalid: " + verror;
            return false;
        }
        out.push_back(std::move(prog));
    }
    if (pos != words.size()) {
        error = "trailing words in control block";
        return false;
    }
    error.clear();
    return true;
}

} // namespace widx::accel
