/**
 * @file
 * Inter-unit queue fabric (Figure 6).
 *
 * Units communicate through small hardware FIFOs (2 entries in the
 * synthesized design). The dispatcher's output side is a round-robin
 * router across the walkers' input queues; the producer's input side
 * is a round-robin arbiter across the walkers' output queues.
 *
 * Queue entries carry two 64-bit words: the dispatcher sends
 * {probe key, bucket address}; walkers send {probe key, payload}.
 */

#ifndef WIDX_ACCEL_QUEUE_HH
#define WIDX_ACCEL_QUEUE_HH

#include <memory>
#include <vector>

#include "common/fixed_queue.hh"
#include "common/types.hh"

namespace widx::accel {

/** Two-word message passed between units. */
struct QueueEntry
{
    u64 w0 = 0;
    u64 w1 = 0;
};

using UnitQueue = FixedQueue<QueueEntry>;

/** Consumer-side interface a unit pops from. */
class QueueSource
{
  public:
    virtual ~QueueSource() = default;
    virtual bool empty() const = 0;
    virtual QueueEntry pop() = 0;
};

/** Producer-side interface a unit pushes to. */
class QueueSink
{
  public:
    virtual ~QueueSink() = default;
    virtual bool full() const = 0;
    virtual void push(const QueueEntry &e) = 0;
};

/** Adapter exposing one UnitQueue as both endpoint interfaces. */
class DirectQueue : public QueueSource, public QueueSink
{
  public:
    explicit DirectQueue(unsigned capacity)
        : q_(capacity)
    {
    }

    bool empty() const override { return q_.empty(); }
    QueueEntry pop() override { return q_.pop(); }
    bool full() const override { return q_.full(); }
    void push(const QueueEntry &e) override
    {
        bool ok = q_.push(e);
        panic_if(!ok, "push to full queue");
    }

    UnitQueue &raw() { return q_; }

  private:
    UnitQueue q_;
};

/**
 * Round-robin router: the dispatcher pushes to the first non-full
 * walker queue starting from a rotating cursor, spreading keys evenly
 * while skipping stalled walkers.
 */
class RoundRobinRouter : public QueueSink
{
  public:
    explicit RoundRobinRouter(std::vector<DirectQueue *> targets)
        : targets_(std::move(targets))
    {
        panic_if(targets_.empty(), "router needs targets");
    }

    bool
    full() const override
    {
        for (const DirectQueue *t : targets_)
            if (!t->full())
                return false;
        return true;
    }

    void
    push(const QueueEntry &e) override
    {
        for (std::size_t i = 0; i < targets_.size(); ++i) {
            DirectQueue *t = targets_[(next_ + i) % targets_.size()];
            if (!t->full()) {
                t->push(e);
                next_ = (next_ + i + 1) % targets_.size();
                return;
            }
        }
        panic("router push with all queues full");
    }

    /** Broadcast: push the entry to *every* target (used by the
     *  engine to deliver the end-of-stream sentinel). Requires all
     *  targets to have space. */
    void
    broadcast(const QueueEntry &e)
    {
        for (DirectQueue *t : targets_)
            t->push(e);
    }

  private:
    std::vector<DirectQueue *> targets_;
    std::size_t next_ = 0;
};

/**
 * Round-robin arbiter: the producer pops from the next non-empty
 * walker output queue.
 */
class RoundRobinArbiter : public QueueSource
{
  public:
    explicit RoundRobinArbiter(std::vector<DirectQueue *> sources)
        : sources_(std::move(sources))
    {
        panic_if(sources_.empty(), "arbiter needs sources");
    }

    bool
    empty() const override
    {
        for (const DirectQueue *s : sources_)
            if (!s->empty())
                return false;
        return true;
    }

    QueueEntry
    pop() override
    {
        for (std::size_t i = 0; i < sources_.size(); ++i) {
            DirectQueue *s = sources_[(next_ + i) % sources_.size()];
            if (!s->empty()) {
                next_ = (next_ + i + 1) % sources_.size();
                return s->pop();
            }
        }
        panic("arbiter pop with all queues empty");
    }

  private:
    std::vector<DirectQueue *> sources_;
    std::size_t next_ = 0;
};

} // namespace widx::accel

#endif // WIDX_ACCEL_QUEUE_HH
