#include "workload/dss_queries.hh"

#include "common/logging.hh"
#include "common/rng.hh"
#include "db/aggregate.hh"
#include "db/hash_join.hh"
#include "db/scan.hh"
#include "db/sort.hh"
#include "workload/distributions.hh"

namespace widx::wl {

db::HashFn
makeHashFn(HashKind kind)
{
    switch (kind) {
      case HashKind::Kernel:
        return db::HashFn::kernelMaskXor();
      case HashKind::Monetdb:
        return db::HashFn::monetdbRobust();
      case HashKind::Fibonacci:
        return db::HashFn::fibonacciShiftAdd();
      case HashKind::DoubleKey:
        return db::HashFn::doubleKey();
    }
    panic("bad hash kind");
}

const std::vector<DssQuerySpec> &
dssSimQueries()
{
    // Index sizes are scaled so each index occupies the same level of
    // the Table 2 cache hierarchy as in the paper: TPC-H q2/q11/q17
    // LLC-resident (no TLB misses), q19/q20/q22 DRAM-resident
    // (TLB-visible), TPC-DS mostly L1/LLC-resident (429 columns split
    // the dataset, Section 6.2 footnote). q20 probes double-typed
    // keys through the expensive 12-step hash.
    static const std::vector<DssQuerySpec> specs = {
        // name, suite, tuples, probes, hash, keyKind, load, match, f
        {"qry2", "TPC-H", 48 * 1024, 250000, HashKind::Monetdb,
         db::ValueKind::U64, 1.0, 0.8, 0.55},
        {"qry11", "TPC-H", 32 * 1024, 250000, HashKind::Monetdb,
         db::ValueKind::U64, 1.0, 0.8, 0.50},
        {"qry17", "TPC-H", 96 * 1024, 250000, HashKind::Fibonacci,
         db::ValueKind::U64, 1.5, 0.8, 0.94},
        {"qry19", "TPC-H", 6 * 1024 * 1024, 250000, HashKind::Monetdb,
         db::ValueKind::U64, 2.0, 0.7, 0.60},
        {"qry20", "TPC-H", 4 * 1024 * 1024, 250000,
         HashKind::DoubleKey, db::ValueKind::F64, 1.5, 0.7, 0.65},
        {"qry22", "TPC-H", 2 * 1024 * 1024, 250000, HashKind::Monetdb,
         db::ValueKind::U64, 1.5, 0.8, 0.50},

        {"qry5", "TPC-DS", 2 * 1024, 250000, HashKind::Monetdb,
         db::ValueKind::U64, 1.0, 0.9, 0.40},
        {"qry37", "TPC-DS", 512, 250000, HashKind::Monetdb,
         db::ValueKind::U64, 1.0, 0.9, 0.29},
        {"qry40", "TPC-DS", 64 * 1024, 250000, HashKind::Monetdb,
         db::ValueKind::U64, 1.5, 0.8, 0.50},
        {"qry52", "TPC-DS", 24 * 1024, 250000, HashKind::Monetdb,
         db::ValueKind::U64, 1.0, 0.8, 0.55},
        {"qry64", "TPC-DS", 1536, 250000, HashKind::Monetdb,
         db::ValueKind::U64, 1.0, 0.9, 0.60},
        {"qry82", "TPC-DS", 1024, 250000, HashKind::Monetdb,
         db::ValueKind::U64, 1.0, 0.9, 0.50},
    };
    return specs;
}

DssDataset::DssDataset(const DssQuerySpec &s, u64 seed)
    : spec(s)
{
    Rng rng(seed);

    const db::ValueKind kind = s.keyKind;
    auto encode = [&](u64 k) {
        return kind == db::ValueKind::F64
                   ? db::f64Bits(double(k) * 1.25)
                   : k;
    };

    buildKeys = std::make_unique<db::Column>("build.key", kind, arena,
                                             s.indexTuples);
    for (u64 k : shuffledDenseKeys(s.indexTuples, rng))
        buildKeys->push(encode(k));

    probeKeys = std::make_unique<db::Column>("probe.key", kind, arena,
                                             s.probes);
    for (u64 k : mixedHitKeys(s.probes, s.indexTuples,
                              2 * s.indexTuples, s.matchRate, rng))
        probeKeys->push(encode(k));

    db::IndexSpec ispec;
    ispec.buckets = u64(double(s.indexTuples) / s.bucketLoad) + 1;
    ispec.hashFn = makeHashFn(s.hash);
    // MonetDB stores keys indirectly (Section 6.2: "MonetDB stores
    // keys indirectly (i.e., pointers) in the index").
    ispec.indirectKeys = true;
    index = std::make_unique<db::HashIndex>(ispec, arena);
    index->buildFromColumn(*buildKeys);

    const u64 pairs = s.probes * (index->maxBucketDepth() + 1) + 8;
    outRegion = arena.makeArray<u64>(2 * pairs);
}

namespace {

/**
 * Calibrated host-side cost model (ns per element) used to size each
 * plan so its operator mix lands on the paper's Fig. 2a fractions.
 * Constants were measured with the repository's own operators (see
 * EXPERIMENTS.md "Fig. 2a calibration"); they only need to be right
 * to first order — the bench prints paper-vs-measured side by side.
 */
struct PlanCosts
{
    double buildNs;      ///< hash-index insert, per build row
    double probeNs;      ///< index probe, per probe
    double scanFactNs;   ///< filter+project on the fact table, per row
    double scanAuxNs;    ///< auxiliary selection, per row
    double sortNs;       ///< sort, per row
    double aggNs;        ///< aggregation, per row
};

PlanSpec
sizePlan(const char *name, const char *suite, double f,
         u64 dim_rows, const PlanCosts &c)
{
    // Per-query wall-clock budget and the split of non-index time.
    constexpr double kBudgetNs = 200e6;
    constexpr double kScanShare = 0.45;
    constexpr double kSortShare = 0.35;
    constexpr double kAggShare = 0.20;

    const double index_ns = f * kBudgetNs;
    const double build_ns = 2.0 * double(dim_rows) * c.buildNs;
    double probe_budget = index_ns - build_ns;
    if (probe_budget < 0.1 * index_ns)
        probe_budget = 0.1 * index_ns;
    const double probes = probe_budget / (2.0 * c.probeNs);
    const u64 fact_rows = u64(probes / 0.9) + 1;

    const double rest = (1.0 - f) * kBudgetNs;
    double scan_ns =
        rest * kScanShare - double(fact_rows) * c.scanFactNs;
    if (scan_ns < 0)
        scan_ns = 0;
    const u64 scan_rows = u64(scan_ns / c.scanAuxNs) + 1000;
    const u64 sort_rows = u64(rest * kSortShare / c.sortNs) + 1000;
    const u64 agg_rows = u64(rest * kAggShare / c.aggNs) + 1000;

    return PlanSpec{name, suite, fact_rows, dim_rows, 2, scan_rows,
                    sort_rows, agg_rows, f};
}

} // namespace

const std::vector<PlanSpec> &
dssPlanQueries()
{
    // TPC-H dimensions are sized beyond the LLC (DRAM-class probes);
    // TPC-DS dimensions are cache-resident (the 429-column effect).
    static const PlanCosts tpch{61.0, 104.0, 28.0, 16.0, 94.0, 6.9};
    static const PlanCosts tpcds{30.0, 48.0, 28.0, 16.0, 94.0, 6.9};
    constexpr u64 kTpchDim = 128 * 1024;
    constexpr u64 kTpcdsDim = 32 * 1024;

    // Paper Fig. 2a per-query indexing fractions (anchors from the
    // text: q17 = 94%, TPC-DS q37 = 29%; remaining bars read off the
    // figure; suite means ~35% / ~45%).
    static const std::vector<PlanSpec> specs = {
        sizePlan("qry2", "TPC-H", 0.55, kTpchDim, tpch),
        sizePlan("qry3", "TPC-H", 0.25, kTpchDim, tpch),
        sizePlan("qry5", "TPC-H", 0.20, kTpchDim, tpch),
        sizePlan("qry7", "TPC-H", 0.30, kTpchDim, tpch),
        sizePlan("qry8", "TPC-H", 0.35, kTpchDim, tpch),
        sizePlan("qry9", "TPC-H", 0.40, kTpchDim, tpch),
        sizePlan("qry11", "TPC-H", 0.50, kTpchDim, tpch),
        sizePlan("qry13", "TPC-H", 0.14, kTpchDim, tpch),
        sizePlan("qry14", "TPC-H", 0.25, kTpchDim, tpch),
        sizePlan("qry15", "TPC-H", 0.20, kTpchDim, tpch),
        sizePlan("qry17", "TPC-H", 0.94, kTpchDim, tpch),
        sizePlan("qry18", "TPC-H", 0.45, kTpchDim, tpch),
        sizePlan("qry19", "TPC-H", 0.60, kTpchDim, tpch),
        sizePlan("qry20", "TPC-H", 0.65, kTpchDim, tpch),
        sizePlan("qry21", "TPC-H", 0.40, kTpchDim, tpch),
        sizePlan("qry22", "TPC-H", 0.50, kTpchDim, tpch),

        sizePlan("qry5", "TPC-DS", 0.40, kTpcdsDim, tpcds),
        sizePlan("qry37", "TPC-DS", 0.29, kTpcdsDim, tpcds),
        sizePlan("qry40", "TPC-DS", 0.50, kTpcdsDim, tpcds),
        sizePlan("qry43", "TPC-DS", 0.35, kTpcdsDim, tpcds),
        sizePlan("qry46", "TPC-DS", 0.45, kTpcdsDim, tpcds),
        sizePlan("qry52", "TPC-DS", 0.55, kTpcdsDim, tpcds),
        sizePlan("qry64", "TPC-DS", 0.60, kTpcdsDim, tpcds),
        sizePlan("qry81", "TPC-DS", 0.40, kTpcdsDim, tpcds),
        sizePlan("qry82", "TPC-DS", 0.50, kTpcdsDim, tpcds),
    };
    return specs;
}

db::PlanBreakdown
runPlan(const PlanSpec &spec, u64 seed)
{
    Arena arena(64u << 20);
    Rng rng(seed);
    db::PlanBreakdown bd;

    // --- Untimed data generation (the DBMS is pre-warmed in the
    //     paper's methodology; load time is not part of Fig. 2a).
    db::Column fact_jk("fact.jk", db::ValueKind::U64, arena,
                       spec.factRows);
    db::Column fact_val("fact.val", db::ValueKind::U64, arena,
                        spec.factRows);
    db::Column fact_grp("fact.grp", db::ValueKind::U64, arena,
                        spec.factRows);
    db::Column fact_filt("fact.filt", db::ValueKind::U64, arena,
                         spec.factRows);
    for (u64 i = 0; i < spec.factRows; ++i) {
        fact_jk.push(1 + rng.below(spec.dimRows));
        fact_val.push(rng.below(1u << 20));
        fact_grp.push(1 + rng.below(1024));
        fact_filt.push(1 + rng.below(1000));
    }
    db::Column aux_scan("aux.scan", db::ValueKind::U64, arena,
                        spec.scanRows);
    for (u64 i = 0; i < spec.scanRows; ++i)
        aux_scan.push(rng.below(1u << 20));
    db::Column sort_col("sort.col", db::ValueKind::U64, arena,
                        spec.sortRows);
    for (u64 i = 0; i < spec.sortRows; ++i)
        sort_col.push(rng.below(1u << 30));
    db::Column agg_grp("agg.grp", db::ValueKind::U64, arena,
                       spec.aggRows);
    db::Column agg_val("agg.val", db::ValueKind::U64, arena,
                       spec.aggRows);
    for (u64 i = 0; i < spec.aggRows; ++i) {
        agg_grp.push(1 + rng.below(1024));
        agg_val.push(rng.below(1u << 20));
    }
    std::vector<db::Column *> dims;
    std::vector<std::unique_ptr<db::Column>> dim_store;
    for (unsigned j = 0; j < spec.joins; ++j) {
        dim_store.push_back(std::make_unique<db::Column>(
            "dim.key", db::ValueKind::U64, arena, spec.dimRows));
        for (u64 k : shuffledDenseKeys(spec.dimRows, rng))
            dim_store.back()->push(k);
        dims.push_back(dim_store.back().get());
    }

    // --- Scan: filter the fact table, project the join keys, and
    //     sweep the auxiliary relation.
    std::unique_ptr<db::Column> probe_col;
    {
        db::PlanTimer t(bd, db::OpClass::Scan);
        db::RangePredicate pred{1, 900}; // ~90% selectivity
        std::vector<RowId> sel = db::scanSelect(fact_filt, pred);
        probe_col = std::make_unique<db::Column>(
            "probe", db::ValueKind::U64, arena, sel.size() + 1);
        for (RowId r : sel)
            probe_col->push(fact_jk.at(r));
        std::vector<RowId> aux_sel =
            db::scanSelect(aux_scan, db::RangePredicate{0, 1u << 19});
        (void)aux_sel;
    }

    // --- Index: build a hash index per dimension and probe it with
    //     the projected keys (the Widx-accelerated operation).
    u64 matches = 0;
    for (unsigned j = 0; j < spec.joins; ++j) {
        db::PlanTimer t(bd, db::OpClass::Index);
        db::IndexSpec ispec;
        ispec.buckets = spec.dimRows;
        ispec.hashFn = db::HashFn::monetdbRobust();
        db::JoinResult jr = db::hashJoin(*dims[j], *probe_col, ispec,
                                         arena, false);
        matches += jr.matches;
    }

    // --- Sort & Join: sort operator plus a small sort-merge join.
    {
        db::PlanTimer t(bd, db::OpClass::SortJoin);
        std::vector<u64> sorted = db::sortValues(sort_col);
        (void)sorted;
    }

    // --- Other: aggregation over the post-join result stand-in.
    {
        db::PlanTimer t(bd, db::OpClass::Other);
        std::vector<RowId> rows;
        rows.reserve(spec.aggRows);
        for (RowId r = 0; r < spec.aggRows; ++r)
            rows.push_back(r);
        auto groups = db::groupBySum(agg_grp, agg_val, rows);
        (void)groups;
        (void)db::countDistinct(agg_grp, rows);
    }

    (void)matches;
    return bd;
}

} // namespace widx::wl
