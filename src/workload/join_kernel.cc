#include "workload/join_kernel.hh"

#include <span>

#include "common/logging.hh"
#include "common/rng.hh"
#include "service/index_service.hh"
#include "swwalkers/coro.hh"
#include "swwalkers/probers.hh"
#include "workload/distributions.hh"

namespace widx::wl {

KernelDataset::KernelDataset(const KernelSize &sz, u64 seed)
    : size(sz)
{
    Rng rng(seed);

    buildKeys = std::make_unique<db::Column>(
        "build.key", db::ValueKind::U64, arena, sz.tuples);
    for (u64 k : shuffledDenseKeys(sz.tuples, rng))
        buildKeys->push(k);

    probeKeys = std::make_unique<db::Column>(
        "probe.key", db::ValueKind::U64, arena, sz.probes);
    for (u64 k : uniformKeys(sz.probes, sz.tuples, rng))
        probeKeys->push(k);

    // Power-of-two bucket count at load factor <= 1 keeps bucket
    // depth at 1-2 nodes (the kernel's "up to two nodes per bucket").
    db::IndexSpec spec;
    spec.buckets = sz.tuples;
    spec.hashFn = db::HashFn::kernelMaskXor();
    spec.indirectKeys = false;
    index = std::make_unique<db::HashIndex>(spec, arena);
    index->buildFromColumn(*buildKeys);

    outRegion = arena.makeArray<u64>(2 * (sz.probes + 8));
}

const char *
probeScheduleName(ProbeSchedule sched)
{
    switch (sched) {
      case ProbeSchedule::Scalar:
        return "scalar";
      case ProbeSchedule::BatchedScalar:
        return "batched-scalar";
      case ProbeSchedule::GroupPrefetch:
        return "group-prefetch";
      case ProbeSchedule::Amac:
        return "amac";
      case ProbeSchedule::Coro:
        return "coro";
    }
    panic("bad probe schedule");
}

u64
runKernelProbes(const KernelDataset &data, ProbeSchedule sched,
                unsigned width, bool tagged, unsigned walkers)
{
    const std::span<const u64> keys{
        reinterpret_cast<const u64 *>(
            std::uintptr_t(data.probeKeys->baseAddr())),
        data.probeKeys->size()};

    // Producer-style emission: append {key, payload} words to the
    // dataset's results region through the inlined sink.
    u64 *out = data.outRegion;
    u64 cursor = 0;
    auto sink = [&](std::size_t, u64 key, u64 payload) {
        out[cursor++] = key;
        out[cursor++] = payload;
    };

    sw::PipelineConfig cfg;
    cfg.tagged = tagged;
    if (sched == ProbeSchedule::Scalar)
        cfg.batch = 0;

    if (walkers > 1) {
        // Multi-threaded: a scoped IndexService runs the interleaved
        // state machines on K persistent walker threads; the merged
        // matches (probeBatch order) replay into the results region
        // on this thread, so `out` needs no synchronization. Only
        // the interleaved schedules have a walker engine — reject
        // the rest loudly rather than silently measuring AMAC under
        // another schedule's name.
        fatal_if(sched != ProbeSchedule::Amac &&
                     sched != ProbeSchedule::Coro,
                 "walkers > 1 requires the Amac or Coro schedule "
                 "(got %s)",
                 probeScheduleName(sched));
        sw::ServiceConfig scfg;
        scfg.walkers = walkers;
        scfg.width = width;
        scfg.engine = sched == ProbeSchedule::Coro
                          ? sw::WalkerEngine::Coro
                          : sw::WalkerEngine::Amac;
        scfg.pipeline = cfg;
        sw::IndexService service(*data.index, scfg);
        // Sliced async submission: the probe span fans out as many
        // requests through one CompletionQueue (keeping every
        // walker fed from the first slice on), and the slices
        // replay into the results region in slice order — the same
        // probeBatch-ordered sequence the single blocking request
        // produced.
        constexpr std::size_t kSlice = 4096;
        const std::size_t nSlices =
            keys.empty() ? 0
                         : (keys.size() + kSlice - 1) / kSlice;
        auto cq = std::make_shared<sw::CompletionQueue>();
        for (std::size_t s = 0; s < nSlices; ++s)
            service.submitAsync(
                sw::RequestKind::Probe,
                keys.subspan(s * kSlice,
                             std::min(kSlice,
                                      keys.size() - s * kSlice)),
                {}, cq, s);
        std::vector<sw::Completion> done;
        while (done.size() < nSlices)
            cq->reap(done, nSlices, std::chrono::milliseconds(100));
        std::vector<std::vector<sw::MatchRec>> bySlice(nSlices);
        u64 matches = 0;
        for (sw::Completion &c : done) {
            // The scoped service runs with unbounded admission and
            // no deadline, so every slice must drain Ok. If a
            // future config plumbs maxQueuedKeys / adaptive
            // admission in here, fail loudly rather than silently
            // accumulating a shed slice's empty partial result.
            fatal_if(c.result.status != sw::Status::Ok,
                     "kernel probe slice %llu completed %s",
                     (unsigned long long)c.tag,
                     sw::statusName(c.result.status));
            matches += c.result.matches;
            bySlice[c.tag] = std::move(c.result.recs);
        }
        for (std::size_t s = 0; s < nSlices; ++s)
            for (const sw::MatchRec &rec : bySlice[s]) {
                out[cursor++] = rec.key;
                out[cursor++] = rec.payload;
            }
        return matches;
    }

    switch (sched) {
      case ProbeSchedule::Scalar:
      case ProbeSchedule::BatchedScalar:
        return sw::ScalarProber(*data.index, cfg)
            .probeAll(keys, sink);
      case ProbeSchedule::GroupPrefetch:
        return sw::GroupPrefetchProber(*data.index, width, cfg)
            .probeAll(keys, sink);
      case ProbeSchedule::Amac:
        return sw::AmacProber(*data.index, width, cfg)
            .probeAll(keys, sink);
      case ProbeSchedule::Coro:
        return sw::CoroProber(*data.index, width, cfg)
            .probeAll(keys, sink);
    }
    panic("bad probe schedule");
}

} // namespace widx::wl
