#include "workload/join_kernel.hh"

#include "common/rng.hh"
#include "workload/distributions.hh"

namespace widx::wl {

KernelDataset::KernelDataset(const KernelSize &sz, u64 seed)
    : size(sz)
{
    Rng rng(seed);

    buildKeys = std::make_unique<db::Column>(
        "build.key", db::ValueKind::U64, arena, sz.tuples);
    for (u64 k : shuffledDenseKeys(sz.tuples, rng))
        buildKeys->push(k);

    probeKeys = std::make_unique<db::Column>(
        "probe.key", db::ValueKind::U64, arena, sz.probes);
    for (u64 k : uniformKeys(sz.probes, sz.tuples, rng))
        probeKeys->push(k);

    // Power-of-two bucket count at load factor <= 1 keeps bucket
    // depth at 1-2 nodes (the kernel's "up to two nodes per bucket").
    db::IndexSpec spec;
    spec.buckets = sz.tuples;
    spec.hashFn = db::HashFn::kernelMaskXor();
    spec.indirectKeys = false;
    index = std::make_unique<db::HashIndex>(spec, arena);
    index->buildFromColumn(*buildKeys);

    outRegion = arena.makeArray<u64>(2 * (sz.probes + 8));
}

} // namespace widx::wl
