/**
 * @file
 * Key-distribution generators for workload synthesis.
 */

#ifndef WIDX_WORKLOAD_DISTRIBUTIONS_HH
#define WIDX_WORKLOAD_DISTRIBUTIONS_HH

#include <vector>

#include "common/rng.hh"
#include "common/types.hh"

namespace widx::wl {

/** n uniform draws from [1, space]. */
std::vector<u64> uniformKeys(u64 n, u64 space, Rng &rng);

/** The permutation 1..n in random order (unique build keys — the
 *  primary-key build side of the join kernel). */
std::vector<u64> shuffledDenseKeys(u64 n, Rng &rng);

/**
 * Zipfian draws over [1, space] with exponent theta (Gray et al.'s
 * method with an inverted-CDF table; exact for moderate spaces).
 */
std::vector<u64> zipfKeys(u64 n, u64 space, double theta, Rng &rng);

/** n draws from [1, space] where a match_rate fraction come from the
 *  hit set [1, hit_space] and the rest from (hit_space, space]. */
std::vector<u64> mixedHitKeys(u64 n, u64 hit_space, u64 space,
                              double match_rate, Rng &rng);

} // namespace widx::wl

#endif // WIDX_WORKLOAD_DISTRIBUTIONS_HH
