/**
 * @file
 * DSS workload specifications mirroring the paper's TPC-H / TPC-DS
 * query selection on MonetDB at scale factor 100.
 *
 * Two spec families:
 *
 *  - DssQuerySpec: the 12 queries simulated in Figures 9/10/11
 *    (TPC-H 2, 11, 17, 19, 20, 22; TPC-DS 5, 37, 40, 52, 64, 82).
 *    Each spec pins the property the paper highlights for that query:
 *    index footprint relative to the cache hierarchy (TPC-DS indexes
 *    are small because the 429-column schema splits the same data
 *    across many columns), bucket depth, key type (q20 probes
 *    double-typed keys with expensive hashing), and the MonetDB
 *    indirect-key layout.
 *
 *  - PlanSpec: the 25 queries profiled in Figure 2a. Each describes a
 *    query plan (scan -> hash joins -> sort -> aggregate) whose
 *    operator mix reproduces the paper's per-query execution-time
 *    breakdown when run on the mini-DBMS.
 *
 * Dataset sizes are scaled from the paper's 100 GB so that each
 * index lands in the same level of the cache hierarchy it occupied on
 * the simulated machine (Table 2: 32 KB L1-D, 4 MB LLC).
 */

#ifndef WIDX_WORKLOAD_DSS_QUERIES_HH
#define WIDX_WORKLOAD_DSS_QUERIES_HH

#include <memory>
#include <vector>

#include "common/arena.hh"
#include "db/column.hh"
#include "db/hash_index.hh"
#include "db/plan.hh"

namespace widx::wl {

/** Which hash-function preset a query's index uses. */
enum class HashKind : u8
{
    Kernel,    ///< Listing 1 mask/xor (trivial)
    Monetdb,   ///< robust 6-step mix
    Fibonacci, ///< 8-step shift-add
    DoubleKey, ///< 12-step double hashing (TPC-H q20)
};

db::HashFn makeHashFn(HashKind kind);

/** Simulator-facing query description (Figures 9/10/11). */
struct DssQuerySpec
{
    const char *name;
    const char *suite; ///< "TPC-H" or "TPC-DS"
    u64 indexTuples;   ///< build-side cardinality
    u64 probes;        ///< sampled probe count
    HashKind hash;
    db::ValueKind keyKind;
    /** Build tuples per bucket (controls nodes/bucket). */
    double bucketLoad;
    /** Fraction of probes that find a match. */
    double matchRate;
    /** Fig. 2a index fraction (for the Section 6.2 whole-query
     *  speedup projection). */
    double indexFraction;
};

/** The 12 queries of Figures 9/10. */
const std::vector<DssQuerySpec> &dssSimQueries();

/** Materialized dataset for one DssQuerySpec. */
struct DssDataset
{
    DssDataset(const DssQuerySpec &spec, u64 seed = 42);

    DssQuerySpec spec;
    Arena arena;
    std::unique_ptr<db::Column> buildKeys;
    std::unique_ptr<db::Column> probeKeys;
    std::unique_ptr<db::HashIndex> index;
    u64 *outRegion = nullptr;

    Addr
    outBase() const
    {
        return Addr(reinterpret_cast<std::uintptr_t>(outRegion));
    }
};

/** Plan description for the Fig. 2a execution-time breakdown. */
struct PlanSpec
{
    const char *name;
    const char *suite;
    u64 factRows;     ///< outer relation cardinality
    u64 dimRows;      ///< per-join build-side cardinality
    unsigned joins;   ///< hash joins in the plan
    u64 scanRows;     ///< auxiliary relation swept by the scan
    u64 sortRows;     ///< rows fed to the sort operator
    u64 aggRows;      ///< rows fed to aggregation ("Other")
    double paperIndexFraction; ///< Fig. 2a target for comparison
};

/** The 16 TPC-H + 9 TPC-DS queries of Figure 2a. */
const std::vector<PlanSpec> &dssPlanQueries();

/** Execute a PlanSpec on the mini-DBMS and attribute wall time to
 *  the four Fig. 2a operator classes. */
db::PlanBreakdown runPlan(const PlanSpec &spec, u64 seed = 42);

} // namespace widx::wl

#endif // WIDX_WORKLOAD_DSS_QUERIES_HH
