#include "workload/distributions.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"

namespace widx::wl {

std::vector<u64>
uniformKeys(u64 n, u64 space, Rng &rng)
{
    fatal_if(space == 0, "key space must be nonzero");
    std::vector<u64> keys(n);
    for (u64 i = 0; i < n; ++i)
        keys[i] = 1 + rng.below(space);
    return keys;
}

std::vector<u64>
shuffledDenseKeys(u64 n, Rng &rng)
{
    std::vector<u64> keys(n);
    for (u64 i = 0; i < n; ++i)
        keys[i] = i + 1;
    // Fisher-Yates shuffle.
    for (u64 i = n; i > 1; --i)
        std::swap(keys[i - 1], keys[rng.below(i)]);
    return keys;
}

std::vector<u64>
zipfKeys(u64 n, u64 space, double theta, Rng &rng)
{
    fatal_if(space == 0, "key space must be nonzero");
    fatal_if(theta < 0.0, "zipf exponent must be non-negative");

    // Build the CDF once; spaces used in this project stay modest
    // (<= a few million), so the table is affordable.
    std::vector<double> cdf(space);
    double acc = 0.0;
    for (u64 k = 0; k < space; ++k) {
        acc += 1.0 / std::pow(double(k + 1), theta);
        cdf[k] = acc;
    }
    const double total = acc;

    std::vector<u64> keys(n);
    for (u64 i = 0; i < n; ++i) {
        double u = rng.uniform() * total;
        auto it = std::lower_bound(cdf.begin(), cdf.end(), u);
        keys[i] = u64(it - cdf.begin()) + 1;
    }
    return keys;
}

std::vector<u64>
mixedHitKeys(u64 n, u64 hit_space, u64 space, double match_rate,
             Rng &rng)
{
    fatal_if(hit_space == 0 || hit_space > space,
             "hit space must be within the key space");
    std::vector<u64> keys(n);
    for (u64 i = 0; i < n; ++i) {
        if (rng.chance(match_rate) || hit_space == space)
            keys[i] = 1 + rng.below(hit_space);
        else
            keys[i] = hit_space + 1 + rng.below(space - hit_space);
    }
    return keys;
}

} // namespace widx::wl
