/**
 * @file
 * The optimized hash-join kernel workload (Section 5, after Balkesen
 * et al.): a "no partitioning" join probing a hash table with up to
 * two nodes per bucket, built on a unique (primary-key) relation and
 * probed by a uniformly distributed outer relation.
 *
 * Paper sizes: Small 4 K tuples (32 KB raw), Medium 512 K (4 MB raw),
 * Large 128 M (1 GB); the outer relation has 128 M keys. We keep the
 * Small/Medium tuple counts and scale Large to 8 M tuples, which is
 * already ~48x the modeled 4 MB LLC — the same DRAM-resident regime —
 * and sample 400 K probes per run (the paper itself measures sampled
 * windows via SMARTS/SimFlex). DESIGN.md §1 records this substitution.
 */

#ifndef WIDX_WORKLOAD_JOIN_KERNEL_HH
#define WIDX_WORKLOAD_JOIN_KERNEL_HH

#include <memory>
#include <string>

#include "common/arena.hh"
#include "db/column.hh"
#include "db/hash_index.hh"

namespace widx::wl {

struct KernelSize
{
    const char *name;
    u64 tuples; ///< build-side cardinality
    u64 probes; ///< sampled outer-relation keys per run

    static KernelSize small() { return {"Small", 4 * 1024, 200000}; }
    static KernelSize medium()
    {
        return {"Medium", 512 * 1024, 200000};
    }
    static KernelSize large()
    {
        return {"Large", 8 * 1024 * 1024, 400000};
    }
};

/** A fully built kernel dataset: build/probe columns plus the index. */
struct KernelDataset
{
    explicit KernelDataset(const KernelSize &size, u64 seed = 42);

    KernelSize size;
    Arena arena;
    std::unique_ptr<db::Column> buildKeys;
    std::unique_ptr<db::Column> probeKeys;
    std::unique_ptr<db::HashIndex> index;
    /** Results region large enough for every probe to match. */
    u64 *outRegion = nullptr;

    Addr
    outBase() const
    {
        return Addr(reinterpret_cast<std::uintptr_t>(outRegion));
    }
};

/** Software probe schedule for runKernelProbes. */
enum class ProbeSchedule
{
    Scalar,        ///< Listing 1 (inline hash, no batching)
    BatchedScalar, ///< shared batch pipeline, sequential walks
    GroupPrefetch, ///< Chen et al. group prefetching
    Amac,          ///< asynchronous memory access chaining
    Coro,          ///< C++20 coroutine interleaving
};

const char *probeScheduleName(ProbeSchedule sched);

/**
 * Run the kernel's sampled probes through a software walker
 * schedule, materializing {key, payload} pairs into the dataset's
 * results region (the producer unit's role — emission through the
 * inlined sink, no allocation on the probe path).
 *
 * @param width in-flight walks (AMAC/coroutines) or group size.
 * @param tagged use the one-byte tag filter.
 * @param walkers walker threads; > 1 runs the probes on a scoped
 *        sw::IndexService (K persistent walker threads draining
 *        coalesced dispatch windows) with the merged matches
 *        written to the results region on the calling thread in
 *        probeBatch order. Only the interleaved schedules have a
 *        walker engine: sched must be Amac or Coro (anything else
 *        is fatal, so a schedule sweep can't silently measure AMAC
 *        under another schedule's name).
 * @return number of matches written.
 */
u64 runKernelProbes(const KernelDataset &data, ProbeSchedule sched,
                    unsigned width = 8, bool tagged = true,
                    unsigned walkers = 1);

} // namespace widx::wl

#endif // WIDX_WORKLOAD_JOIN_KERNEL_HH
