/**
 * @file
 * Fundamental scalar types shared across the Widx reproduction.
 */

#ifndef WIDX_COMMON_TYPES_HH
#define WIDX_COMMON_TYPES_HH

#include <cstdint>
#include <cstddef>

namespace widx {

/** A (simulated) virtual byte address. Host pointers are reused as
 *  simulated addresses so that functional and timing state agree. */
using Addr = std::uint64_t;

/** A simulation time point / duration, in core clock cycles (2 GHz). */
using Cycle = std::uint64_t;

/** 64-bit key value as stored in columns and hash-index nodes. */
using Key = std::uint64_t;

/** Row identifier within a column/table. */
using RowId = std::uint64_t;

using u8 = std::uint8_t;
using u16 = std::uint16_t;
using u32 = std::uint32_t;
using u64 = std::uint64_t;
using i8 = std::int8_t;
using i16 = std::int16_t;
using i32 = std::int32_t;
using i64 = std::int64_t;

/** Size of a cache block in bytes; the unit of off-chip transfer. */
constexpr unsigned kCacheBlockBytes = 64;

/** Virtual-memory page size used by the TLB model. */
constexpr unsigned kPageBytes = 4096;

/** Software prefetch, read intent, high temporal locality. The hot
 *  probe pipeline (db::HashIndex and the software walkers) leans on
 *  this to overlap independent cache misses. */
inline void
prefetchRead(const void *p)
{
    __builtin_prefetch(p, 0, 3);
}

/** Convert an address to its cache-block address (block-aligned). */
constexpr Addr
blockAlign(Addr a)
{
    return a & ~Addr{kCacheBlockBytes - 1};
}

/** Convert an address to its page address (page-aligned). */
constexpr Addr
pageAlign(Addr a)
{
    return a & ~Addr{kPageBytes - 1};
}

} // namespace widx

#endif // WIDX_COMMON_TYPES_HH
