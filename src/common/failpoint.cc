#include "common/failpoint.hh"

#ifdef WIDX_FAILPOINTS

#include <algorithm>
#include <chrono>
#include <map>
#include <thread>

#include "common/thread_safety.hh"

namespace widx::fp {

namespace {

/** Name -> site. Node-based map: interned Point addresses must stay
 *  stable forever (the macro caches a reference in a function-local
 *  static). Guarded registry access is registration/control only —
 *  never on a disarmed hot path. */
struct Registry
{
    Mutex m;
    std::map<std::string, Point, std::less<>> points
        WIDX_GUARDED_BY(m);
};

Registry &
registry()
{
    static Registry r;
    return r;
}

} // namespace

Point &
point(std::string_view name)
{
    Registry &r = registry();
    MutexLock lk(r.m);
    auto it = r.points.find(name);
    if (it == r.points.end())
        it = r.points.try_emplace(std::string(name)).first;
    return it->second;
}

void
fireSlow(Point &p)
{
    // Claim one unit of budget; the last claimer disarms the site.
    // A racer finding the budget already empty (armed load was
    // stale) just falls through without sleeping.
    u64 rem = p.remaining.load(std::memory_order_acquire);
    while (rem > 0 &&
           !p.remaining.compare_exchange_weak(
               rem, rem - 1, std::memory_order_acq_rel))
        ;
    if (rem == 0) {
        p.armed.store(false, std::memory_order_relaxed);
        return;
    }
    if (rem == 1)
        p.armed.store(false, std::memory_order_relaxed);
    p.hits.fetch_add(1, std::memory_order_relaxed);
    const u64 d = p.delayNs.load(std::memory_order_relaxed);
    if (d > 0)
        std::this_thread::sleep_for(std::chrono::nanoseconds(d));
}

void
arm(std::string_view name, u64 count, u64 delayNs)
{
    Point &p = point(name);
    p.delayNs.store(delayNs, std::memory_order_relaxed);
    p.remaining.store(count, std::memory_order_release);
    p.armed.store(count > 0, std::memory_order_release);
}

void
disarm(std::string_view name)
{
    Point &p = point(name);
    p.armed.store(false, std::memory_order_relaxed);
    p.remaining.store(0, std::memory_order_relaxed);
}

void
disarmAll()
{
    Registry &r = registry();
    MutexLock lk(r.m);
    for (auto &[name, p] : r.points) {
        p.armed.store(false, std::memory_order_relaxed);
        p.remaining.store(0, std::memory_order_relaxed);
    }
}

u64
hits(std::string_view name)
{
    Registry &r = registry();
    MutexLock lk(r.m);
    auto it = r.points.find(name);
    return it == r.points.end()
               ? 0
               : it->second.hits.load(std::memory_order_relaxed);
}

std::vector<std::string>
names()
{
    Registry &r = registry();
    MutexLock lk(r.m);
    std::vector<std::string> out;
    out.reserve(r.points.size());
    for (const auto &[name, p] : r.points)
        out.push_back(name);
    return out;
}

} // namespace widx::fp

#else // !WIDX_FAILPOINTS: inert stubs so callers link either way.

namespace widx::fp {

void
arm(std::string_view, u64, u64)
{
}

void
disarm(std::string_view)
{
}

void
disarmAll()
{
}

u64
hits(std::string_view)
{
    return 0;
}

std::vector<std::string>
names()
{
    return {};
}

} // namespace widx::fp

#endif // WIDX_FAILPOINTS
