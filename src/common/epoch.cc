#include "common/epoch.hh"

namespace widx {

unsigned
EpochManager::pinnedReaders() const
{
    unsigned n = 0;
    for (unsigned i = 0; i < kMaxSlots; ++i)
        if (slots_[i].epoch.load(std::memory_order_acquire) != kIdle)
            ++n;
    return n;
}

} // namespace widx
