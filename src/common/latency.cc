#include "common/latency.hh"

#include <algorithm>
#include <cmath>

namespace widx {

u64
LatencyHistogram::percentileNs(double p) const
{
    if (count_ == 0)
        return 0;
    u64 rank = u64(std::ceil(p / 100.0 * double(count_)));
    rank = std::clamp<u64>(rank, 1, count_);
    u64 cum = 0;
    for (unsigned b = 0; b < kBuckets; ++b) {
        cum += counts_[b];
        if (cum >= rank)
            return std::min(bucketHighNs(b), max_);
    }
    return max_;
}

LatencySnapshot
LatencyHistogram::summarize() const
{
    LatencySnapshot s;
    s.count = count_;
    s.sumNs = sum_;
    s.p50Ns = percentileNs(50.0);
    s.p90Ns = percentileNs(90.0);
    s.p99Ns = percentileNs(99.0);
    s.p999Ns = percentileNs(99.9);
    s.maxNs = max_;
    return s;
}

LatencyHistogram
LatencyHistogram::deltaSince(const LatencyHistogram &prev) const
{
    LatencyHistogram d;
    unsigned top = 0;
    bool any = false;
    for (unsigned b = 0; b < kBuckets; ++b) {
        const u64 cur = counts_[b];
        const u64 old = prev.counts_[b];
        if (cur > old) {
            d.counts_[b] = cur - old;
            top = b;
            any = true;
        }
    }
    d.count_ = count_ > prev.count_ ? count_ - prev.count_ : 0;
    d.sum_ = sum_ > prev.sum_ ? sum_ - prev.sum_ : 0;
    if (any)
        d.max_ = std::min(bucketHighNs(top), max_);
    return d;
}

LatencyRecorder::LatencyRecorder(unsigned shards)
    : nShards_(std::max(1u, shards)),
      shards_(new Shard[nShards_])
{
}

unsigned
LatencyRecorder::threadSlot()
{
    static std::atomic<unsigned> next{0};
    thread_local const unsigned slot =
        next.fetch_add(1, std::memory_order_relaxed);
    return slot;
}

LatencyHistogram
LatencyRecorder::snapshot() const
{
    LatencyHistogram h;
    for (unsigned s = 0; s < nShards_; ++s) {
        const Shard &sh = shards_[s];
        for (unsigned b = 0; b < LatencyHistogram::kBuckets; ++b)
            h.counts_[b] +=
                sh.counts[b].load(std::memory_order_relaxed);
        h.count_ += sh.count.load(std::memory_order_relaxed);
        h.sum_ += sh.sum.load(std::memory_order_relaxed);
        h.max_ = std::max(h.max_,
                          sh.max.load(std::memory_order_relaxed));
    }
    return h;
}

LatencyHistogram
LatencyRecorder::intervalSince(LatencyHistogram &cursor) const
{
    const LatencyHistogram cur = snapshot();
    LatencyHistogram delta = cur.deltaSince(cursor);
    cursor = cur;
    return delta;
}

void
LatencyRecorder::reset()
{
    for (unsigned s = 0; s < nShards_; ++s) {
        Shard &sh = shards_[s];
        for (unsigned b = 0; b < LatencyHistogram::kBuckets; ++b)
            sh.counts[b].store(0, std::memory_order_relaxed);
        sh.count.store(0, std::memory_order_relaxed);
        sh.sum.store(0, std::memory_order_relaxed);
        sh.max.store(0, std::memory_order_relaxed);
    }
}

} // namespace widx
