#include "common/table_printer.hh"

#include <cstdio>

#include "common/logging.hh"

namespace widx {

TablePrinter::TablePrinter(std::string title)
    : title_(std::move(title))
{
}

void
TablePrinter::header(const std::vector<std::string> &cols)
{
    panic_if(cols.empty(), "table header must have columns");
    header_ = cols;
}

void
TablePrinter::addRow(const std::vector<std::string> &cols)
{
    panic_if(header_.empty(), "set the header before adding rows");
    panic_if(cols.size() != header_.size(),
             "row has %zu columns, header has %zu",
             cols.size(), header_.size());
    rows_.push_back(cols);
}

void
TablePrinter::print() const
{
    std::vector<std::size_t> width(header_.size(), 0);
    for (std::size_t c = 0; c < header_.size(); ++c)
        width[c] = header_[c].size();
    for (const auto &row : rows_)
        for (std::size_t c = 0; c < row.size(); ++c)
            if (row[c].size() > width[c])
                width[c] = row[c].size();

    std::printf("\n== %s ==\n", title_.c_str());
    auto print_row = [&](const std::vector<std::string> &row) {
        for (std::size_t c = 0; c < row.size(); ++c)
            std::printf("%s%-*s", c ? "  " : "", int(width[c]),
                        row[c].c_str());
        std::printf("\n");
    };
    print_row(header_);
    std::size_t total = header_.size() - 1;
    for (std::size_t w : width)
        total += w + 1;
    for (std::size_t i = 0; i < total; ++i)
        std::printf("-");
    std::printf("\n");
    for (const auto &row : rows_)
        print_row(row);
    std::fflush(stdout);
}

std::string
TablePrinter::toCsv() const
{
    std::string out;
    auto append = [&](const std::vector<std::string> &row) {
        for (std::size_t c = 0; c < row.size(); ++c) {
            if (c)
                out += ',';
            out += row[c];
        }
        out += '\n';
    };
    append(header_);
    for (const auto &row : rows_)
        append(row);
    return out;
}

std::string
TablePrinter::fmt(double v, int precision)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
    return buf;
}

std::string
TablePrinter::fmtInt(unsigned long long v)
{
    char raw[32];
    std::snprintf(raw, sizeof(raw), "%llu", v);
    std::string digits(raw);
    std::string out;
    int count = 0;
    for (auto it = digits.rbegin(); it != digits.rend(); ++it) {
        if (count && count % 3 == 0)
            out.insert(out.begin(), ',');
        out.insert(out.begin(), *it);
        ++count;
    }
    return out;
}

std::string
TablePrinter::fmtPct(double fraction)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.1f%%", fraction * 100.0);
    return buf;
}

} // namespace widx
