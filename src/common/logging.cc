#include "common/logging.hh"

#include <cstdarg>

namespace widx {

namespace detail {

void
terminateAbort()
{
    std::fflush(stderr);
    std::abort();
}

void
terminateExit()
{
    std::fflush(stderr);
    std::exit(1);
}

void
logPrefix(const char *tag, const char *file, int line)
{
    // Strip leading directories for readability; keep file:line for
    // clickable references.
    const char *base = file;
    for (const char *p = file; *p; ++p) {
        if (*p == '/')
            base = p + 1;
    }
    std::fprintf(stderr, "[%s] %s:%d: ", tag, base, line);
}

} // namespace detail

void
logVprintf(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    std::vfprintf(stderr, fmt, args);
    va_end(args);
    std::fputc('\n', stderr);
}

} // namespace widx
