#include "common/logging.hh"

#include <cstdarg>
#include <cstring>

namespace widx {

namespace {

/** strerror_r dispatch: XSI returns int and fills the buffer, GNU
 *  returns the string (which may ignore the buffer). Overloading on
 *  the return type picks the right reading at compile time. */
inline const char *
strerrorResult(int rc, const char *buf)
{
    return rc == 0 ? buf : "Unknown error";
}

inline const char *
strerrorResult(const char *ret, const char *)
{
    return ret;
}

} // namespace

namespace detail {

void
terminateAbort()
{
    std::fflush(stderr);
    std::abort();
}

void
terminateExit()
{
    std::fflush(stderr);
    std::exit(1);
}

void
logPrefix(const char *tag, const char *file, int line)
{
    // Strip leading directories for readability; keep file:line for
    // clickable references.
    const char *base = file;
    for (const char *p = file; *p; ++p) {
        if (*p == '/')
            base = p + 1;
    }
    std::fprintf(stderr, "[%s] %s:%d: ", tag, base, line);
}

} // namespace detail

std::string
errnoText(int err)
{
    char buf[128] = "Unknown error";
    return strerrorResult(::strerror_r(err, buf, sizeof(buf)), buf);
}

void
logVprintf(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    std::vfprintf(stderr, fmt, args);
    va_end(args);
    std::fputc('\n', stderr);
}

} // namespace widx
