/**
 * @file
 * Fixed-capacity FIFO ring buffer.
 *
 * Models the small hardware queues between Widx units (the paper
 * evaluates 2-entry queues at each walker's input and output). Also
 * used by the memory controller request queues.
 */

#ifndef WIDX_COMMON_FIXED_QUEUE_HH
#define WIDX_COMMON_FIXED_QUEUE_HH

#include <vector>

#include "common/logging.hh"
#include "common/types.hh"

namespace widx {

template <typename T>
class FixedQueue
{
  public:
    explicit FixedQueue(unsigned capacity)
        : buf_(capacity), cap_(capacity)
    {
        panic_if(capacity == 0, "queue capacity must be nonzero");
    }

    bool empty() const { return size_ == 0; }
    bool full() const { return size_ == cap_; }
    unsigned size() const { return size_; }
    unsigned capacity() const { return cap_; }

    /** Push returns false (and does nothing) when full. */
    bool
    push(const T &v)
    {
        if (full())
            return false;
        buf_[(head_ + size_) % cap_] = v;
        ++size_;
        if (size_ > peak_)
            peak_ = size_;
        ++pushes_;
        return true;
    }

    /** Front element; queue must be non-empty. */
    const T &
    front() const
    {
        panic_if(empty(), "front() on empty queue");
        return buf_[head_];
    }

    /** Pop the front element; queue must be non-empty. */
    T
    pop()
    {
        panic_if(empty(), "pop() on empty queue");
        T v = buf_[head_];
        head_ = (head_ + 1) % cap_;
        --size_;
        return v;
    }

    void
    clear()
    {
        head_ = 0;
        size_ = 0;
    }

    /** High-water mark since construction (occupancy statistic). */
    unsigned peakSize() const { return peak_; }

    /** Total successful pushes since construction. */
    u64 totalPushes() const { return pushes_; }

  private:
    std::vector<T> buf_;
    unsigned cap_;
    unsigned head_ = 0;
    unsigned size_ = 0;
    unsigned peak_ = 0;
    u64 pushes_ = 0;
};

} // namespace widx

#endif // WIDX_COMMON_FIXED_QUEUE_HH
