/**
 * @file
 * Per-request latency instrumentation: a log-bucketed histogram and
 * a lock-light sharded recorder for the hot request path.
 *
 * The service bench only reported closed-loop request rates, which
 * hides exactly the numbers that matter for the walkers design's
 * central trade (admission coalescing holds a tail window open
 * waiting for co-runners). These types make latency a first-class
 * metric:
 *
 *  - `LatencyHistogram` — log-bucketed counts (every power-of-two
 *    range split into 32 linear sub-buckets, <= 1/32 ~ 3.1% relative
 *    bucket error; values below 64 ns are exact). Fixed-size inline
 *    storage, so recording never allocates. Mergeable (bucket-wise
 *    addition — associative and commutative), with exact count /
 *    sum / max carried alongside the buckets so means are exact even
 *    though percentiles are bucketed.
 *
 *  - `LatencyRecorder` — the concurrent form: N cache-line-padded
 *    shards of relaxed atomic counters, one picked per recording
 *    thread, merged into a `LatencyHistogram` at snapshot() time.
 *    record() is wait-free (a handful of relaxed atomic RMWs) and
 *    allocation-free; walkers on different shards never contend.
 *
 *  - `LatencySnapshot` — the summary the service and benches report:
 *    count, sum, p50/p90/p99/p99.9, max.
 *
 * All values are nanoseconds on std::chrono::steady_clock (see
 * monotonicNowNs), the only clock that is monotonic across threads.
 */

#ifndef WIDX_COMMON_LATENCY_HH
#define WIDX_COMMON_LATENCY_HH

#include <array>
#include <atomic>
#include <bit>
#include <chrono>
#include <memory>

#include "common/types.hh"

namespace widx {

/** steady_clock now, as nanoseconds since the clock's epoch.
 *  Comparable across threads (steady_clock is system-wide
 *  monotonic); never compare against wall-clock time. */
inline u64
monotonicNowNs()
{
    return u64(std::chrono::duration_cast<std::chrono::nanoseconds>(
                   std::chrono::steady_clock::now().time_since_epoch())
                   .count());
}

/** Percentile summary of a latency population (nanoseconds).
 *  Percentiles are bucketed upper bounds (<= 3.1% high); mean is
 *  exact (carried sum / count). */
struct LatencySnapshot
{
    u64 count = 0;
    u64 sumNs = 0;
    u64 p50Ns = 0;
    u64 p90Ns = 0;
    u64 p99Ns = 0;
    u64 p999Ns = 0;
    u64 maxNs = 0;

    double
    meanNs() const
    {
        return count ? double(sumNs) / double(count) : 0.0;
    }
};

/**
 * Log-bucketed latency histogram: single-writer / snapshot form.
 * Bucket layout (kSubBits = 5): values < 2 * kSub are their own
 * bucket (exact); above that, each power-of-two range [2^(h-1), 2^h)
 * splits into kSub linear sub-buckets, so the relative bucket width
 * is <= 2^-kSubBits everywhere.
 */
class LatencyHistogram
{
  public:
    static constexpr unsigned kSubBits = 5;
    static constexpr unsigned kSub = 1u << kSubBits;
    /** 32 exact buckets + 32 per power-of-two range up to 2^64. */
    static constexpr unsigned kBuckets = (64 - kSubBits + 1) * kSub;

    /** Bucket index for a nanosecond value (total order, dense). */
    static unsigned
    bucketOf(u64 ns)
    {
        const unsigned h = unsigned(std::bit_width(ns));
        if (h <= kSubBits + 1) // ns < 2 * kSub: exact
            return unsigned(ns);
        return (h - kSubBits) * kSub +
               unsigned((ns >> (h - kSubBits - 1)) & (kSub - 1));
    }

    /** Smallest value mapping to bucket b. */
    static u64
    bucketLowNs(unsigned b)
    {
        if (b < 2 * kSub)
            return b;
        const unsigned range = b >> kSubBits; // >= 2
        const unsigned sub = b & (kSub - 1);
        return (u64(kSub) + sub) << (range - 1);
    }

    /** Largest value mapping to bucket b (inclusive). */
    static u64
    bucketHighNs(unsigned b)
    {
        return b + 1 < kBuckets ? bucketLowNs(b + 1) - 1
                                : ~u64{0};
    }

    void
    record(u64 ns)
    {
        ++counts_[bucketOf(ns)];
        ++count_;
        sum_ += ns;
        if (ns > max_)
            max_ = ns;
    }

    /** Bucket-wise addition; associative and commutative. */
    void
    merge(const LatencyHistogram &o)
    {
        for (unsigned b = 0; b < kBuckets; ++b)
            counts_[b] += o.counts_[b];
        count_ += o.count_;
        sum_ += o.sum_;
        if (o.max_ > max_)
            max_ = o.max_;
    }

    u64 count() const { return count_; }
    u64 sumNs() const { return sum_; }
    u64 maxNs() const { return max_; }
    u64 bucketCount(unsigned b) const { return counts_[b]; }

    /**
     * Value at percentile p (0 < p <= 100): the upper bound of the
     * bucket holding the rank-ceil(p/100 * count) sample, clamped to
     * the exact recorded max — so estimates are >= the true sample
     * and <= ~3.1% above it, and p -> percentileNs(p) is monotone.
     * 0 when empty.
     */
    u64 percentileNs(double p) const;

    /** count/sum/max plus the standard percentile ladder. */
    LatencySnapshot summarize() const;

    /**
     * The population recorded since `prev` was captured: bucket-wise
     * (and count/sum) difference of two cumulative snapshots of the
     * same recording lineage (`prev` must be an earlier snapshot of
     * this histogram's source). Counts and sum subtract exactly; the
     * per-window max is not recoverable from cumulative state, so
     * the delta's max is the upper bound of its highest non-empty
     * bucket (<= ~3.1% above the true window max), clamped to the
     * cumulative max. Subtraction saturates at zero so a snapshot
     * raced against relaxed writers can't wrap.
     */
    LatencyHistogram deltaSince(const LatencyHistogram &prev) const;

  private:
    friend class LatencyRecorder;
    std::array<u64, kBuckets> counts_{};
    u64 count_ = 0;
    u64 sum_ = 0;
    u64 max_ = 0;
};

/**
 * Concurrent recorder: per-thread-sharded atomic histograms merged
 * at snapshot. record() is allocation-free and wait-free apart from
 * the bounded max CAS loop; shards are cache-line padded so walkers
 * on different shards never share counter lines. Snapshots taken
 * while writers are live are internally consistent per shard only
 * to within the relaxed ordering — exact once writers quiesce
 * (which is when the service reads them: after tickets complete).
 */
class LatencyRecorder
{
  public:
    /** @param shards concurrency shards (clamped to >= 1); size to
     *  the expected writer count, e.g. walkers + 1. */
    explicit LatencyRecorder(unsigned shards = 4);

    void
    record(u64 ns)
    {
        Shard &s = shards_[threadSlot() % nShards_];
        s.counts[LatencyHistogram::bucketOf(ns)].fetch_add(
            1, std::memory_order_relaxed);
        s.sum.fetch_add(ns, std::memory_order_relaxed);
        s.count.fetch_add(1, std::memory_order_relaxed);
        u64 cur = s.max.load(std::memory_order_relaxed);
        while (ns > cur &&
               !s.max.compare_exchange_weak(
                   cur, ns, std::memory_order_relaxed))
            ;
    }

    /** Merged copy of all shards (relaxed reads; see class note). */
    LatencyHistogram snapshot() const;

    /**
     * Windowed sampling for controllers: the histogram of everything
     * recorded since `cursor` was last advanced, leaving `cursor` at
     * the current cumulative snapshot. The first call with a
     * default-constructed cursor returns everything recorded so far.
     * Concurrent recording is fine (the window boundary is simply
     * wherever the relaxed snapshot landed); concurrent calls
     * sharing one cursor are not — each controller owns its cursor.
     */
    LatencyHistogram intervalSince(LatencyHistogram &cursor) const;

    LatencySnapshot
    summarize() const
    {
        return snapshot().summarize();
    }

    /** Zero every shard. Only exact while no writer is recording
     *  (e.g. a bench between rate rows with all tickets drained). */
    void reset();

  private:
    // widx-lint: padded
    struct alignas(kCacheBlockBytes) Shard
    {
        std::array<std::atomic<u64>, LatencyHistogram::kBuckets>
            counts{};
        std::atomic<u64> count{0};
        std::atomic<u64> sum{0};
        std::atomic<u64> max{0};
    };

    /** Stable per-thread slot (monotone assignment at first use). */
    static unsigned threadSlot();

    unsigned nShards_;
    std::unique_ptr<Shard[]> shards_;
};

} // namespace widx

#endif // WIDX_COMMON_LATENCY_HH
