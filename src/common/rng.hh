/**
 * @file
 * Deterministic pseudo-random number generation.
 *
 * All stochastic behaviour in the reproduction (workload generation,
 * branch-mispredict draws, key shuffles) flows through Rng so that runs
 * are reproducible from a single seed.
 */

#ifndef WIDX_COMMON_RNG_HH
#define WIDX_COMMON_RNG_HH

#include <cstdint>

#include "common/types.hh"

namespace widx {

/**
 * xorshift128+ generator: fast, decent quality, fully deterministic.
 */
class Rng
{
  public:
    explicit Rng(u64 seed = 0x9E3779B97F4A7C15ull) { reseed(seed); }

    /** Re-initialize the state from a seed via splitmix64. */
    void
    reseed(u64 seed)
    {
        s0_ = splitmix(seed);
        s1_ = splitmix(seed);
        if (s0_ == 0 && s1_ == 0)
            s1_ = 1;
    }

    /** Next raw 64-bit draw. */
    u64
    next()
    {
        u64 x = s0_;
        const u64 y = s1_;
        s0_ = y;
        x ^= x << 23;
        s1_ = x ^ y ^ (x >> 17) ^ (y >> 26);
        return s1_ + y;
    }

    /** Uniform integer in [0, bound). bound must be nonzero. */
    u64
    below(u64 bound)
    {
        // Modulo bias is negligible for bounds far below 2^64.
        return next() % bound;
    }

    /** Uniform integer in [lo, hi]. */
    u64
    between(u64 lo, u64 hi)
    {
        return lo + below(hi - lo + 1);
    }

    /** Uniform double in [0, 1). */
    double
    uniform()
    {
        return double(next() >> 11) * (1.0 / 9007199254740992.0);
    }

    /** Bernoulli draw with probability p of returning true. */
    bool
    chance(double p)
    {
        return uniform() < p;
    }

  private:
    /** splitmix64 step used for seeding. */
    u64
    splitmix(u64 &state)
    {
        state += 0x9E3779B97F4A7C15ull;
        u64 z = state;
        z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
        z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
        return z ^ (z >> 31);
    }

    u64 s0_;
    u64 s1_;
};

} // namespace widx

#endif // WIDX_COMMON_RNG_HH
