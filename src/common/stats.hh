/**
 * @file
 * Lightweight statistics containers used by the timing models and the
 * benchmark harnesses: scalar counters, running summaries, histograms,
 * and the aggregate helpers (mean/geomean) the paper reports.
 */

#ifndef WIDX_COMMON_STATS_HH
#define WIDX_COMMON_STATS_HH

#include <atomic>
#include <cstdint>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "common/logging.hh"
#include "common/thread_safety.hh"
#include "common/types.hh"

namespace widx {

/** Arithmetic mean of a sample vector; 0 for an empty sample. */
double mean(const std::vector<double> &xs);

/** Geometric mean of a strictly positive sample; 0 for empty. */
double geomean(const std::vector<double> &xs);

/** Population standard deviation; 0 for fewer than two samples. */
double stddev(const std::vector<double> &xs);

/** Harmonic mean of a strictly positive sample; 0 for empty. */
double harmean(const std::vector<double> &xs);

/**
 * Running summary of a stream of observations: count, sum, min, max,
 * mean. Cheap enough for per-access use in the memory model.
 */
class Summary
{
  public:
    void
    sample(double x)
    {
        if (n_ == 0 || x < min_)
            min_ = x;
        if (n_ == 0 || x > max_)
            max_ = x;
        sum_ += x;
        ++n_;
    }

    u64 count() const { return n_; }
    double sum() const { return sum_; }
    double min() const { return n_ ? min_ : 0.0; }
    double max() const { return n_ ? max_ : 0.0; }
    double avg() const { return n_ ? sum_ / double(n_) : 0.0; }

    void
    reset()
    {
        n_ = 0;
        sum_ = min_ = max_ = 0.0;
    }

  private:
    u64 n_ = 0;
    double sum_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
};

/**
 * Fixed-width bucket histogram over [0, buckets * width). Values past
 * the last bucket are clamped into it (an explicit overflow bucket).
 */
class Histogram
{
  public:
    Histogram(unsigned buckets, double width)
        : width_(width), counts_(buckets, 0)
    {
        panic_if(buckets == 0 || width <= 0.0,
                 "histogram needs >=1 bucket and positive width");
    }

    void
    sample(double x)
    {
        unsigned idx = x <= 0.0 ? 0 : unsigned(x / width_);
        if (idx >= counts_.size())
            idx = unsigned(counts_.size()) - 1;
        ++counts_[idx];
        ++total_;
    }

    u64 count(unsigned bucket) const { return counts_.at(bucket); }
    u64 total() const { return total_; }
    unsigned buckets() const { return unsigned(counts_.size()); }
    double bucketWidth() const { return width_; }

    /** Fraction of samples at or below the given bucket. */
    double cdfAt(unsigned bucket) const;

  private:
    double width_;
    std::vector<u64> counts_;
    u64 total_ = 0;
};

/**
 * A named bag of scalar counters, used by simulator components to
 * export their statistics uniformly (gem5 statistics in miniature).
 *
 * Threading contract: a StatSet is **thread-confined** — it is a
 * plain std::map with no internal synchronization, and every
 * accessor (including the const readers) must run on the thread
 * that first touched the set. This is deliberate: the simulator
 * components that own StatSets are themselves single-threaded, and
 * the map stays free of atomic overhead. Concurrent metrics belong
 * in obs::MetricsRegistry (relaxed-atomic cells) or the sharded
 * LatencyRecorder instead. Debug builds enforce the contract: the
 * first accessor claims the set for its thread and any cross-thread
 * access panics, so a violation fails loudly instead of corrupting
 * the map. reset() releases the claim (it is the "hand this set to
 * another phase" point).
 *
 * Under clang the same contract is visible to -Wthread-safety: the
 * counters are guarded by a zero-cost `ThreadRole` capability that
 * `assertOwner()` asserts, so any accessor that forgets the owner
 * check fails the annotated build rather than just the debug run.
 */
class StatSet
{
  public:
    StatSet() = default;
    /** A copy is a fresh, unclaimed set with the same counters (the
     *  debug owner mark does not travel). Analysis is off here: a
     *  copy reads the source map without claiming either role — the
     *  runtime owner check in debug builds still covers it. */
    StatSet(const StatSet &o) WIDX_NO_THREAD_SAFETY_ANALYSIS
        : counters_(o.counters_)
    {
    }
    StatSet &
    operator=(const StatSet &o) WIDX_NO_THREAD_SAFETY_ANALYSIS
    {
        counters_ = o.counters_;
        return *this;
    }

    /** Add delta (default 1) to the named counter. */
    void
    inc(const std::string &name, u64 delta = 1)
    {
        assertOwner();
        counters_[name] += delta;
    }

    /** Set the named counter to an absolute value. */
    void
    set(const std::string &name, u64 value)
    {
        assertOwner();
        counters_[name] = value;
    }

    /** Value of the named counter; 0 when never touched. */
    u64
    get(const std::string &name) const
    {
        assertOwner();
        auto it = counters_.find(name);
        return it == counters_.end() ? 0 : it->second;
    }

    /** Ratio of two counters; 0 when the denominator is 0. */
    double
    ratio(const std::string &num, const std::string &den) const
    {
        u64 d = get(den);
        return d == 0 ? 0.0 : double(get(num)) / double(d);
    }

    void
    reset()
    {
        assertOwner();
        counters_.clear();
        releaseOwner();
    }

    const std::map<std::string, u64> &
    all() const
    {
        assertOwner();
        return counters_;
    }

  private:
#ifndef NDEBUG
    /** First accessor claims the set; later accesses must match. */
    void
    assertOwner() const WIDX_ASSERT_CAPABILITY(role_)
    {
        const std::thread::id self = std::this_thread::get_id();
        std::thread::id expect{};
        if (owner_.compare_exchange_strong(
                expect, self, std::memory_order_relaxed) ||
            expect == self)
            return;
        panic("StatSet is thread-confined: accessed from a second "
              "thread (see the threading contract in "
              "common/stats.hh)");
    }

    void
    releaseOwner() WIDX_RELEASE(role_)
    {
        owner_.store(std::thread::id{}, std::memory_order_relaxed);
        role_.release();
    }

    mutable std::atomic<std::thread::id> owner_{};
#else
    void assertOwner() const WIDX_ASSERT_CAPABILITY(role_) {}
    void releaseOwner() WIDX_RELEASE(role_) { role_.release(); }
#endif

    /** Zero-cost capability standing in for "the owning thread". */
    mutable ThreadRole role_;
    std::map<std::string, u64> counters_ WIDX_GUARDED_BY(role_);
};

} // namespace widx

#endif // WIDX_COMMON_STATS_HH
