#include "common/topology.hh"

#include <atomic>
#include <cctype>
#include <fstream>
#include <iterator>
#include <thread>

#include "common/logging.hh"

#if defined(__linux__)
#include <pthread.h>
#include <sched.h>
#endif

namespace widx {

namespace {

/** Parse a kernel cpulist ("0-3,8,10-11\n") into ascending CPU ids.
 *  Malformed tails are dropped rather than fatal — sysfs is an
 *  external input. */
std::vector<unsigned>
parseCpuList(const std::string &list)
{
    std::vector<unsigned> cpus;
    std::size_t i = 0;
    const auto digit = [&] {
        return i < list.size() && std::isdigit(
                                      static_cast<unsigned char>(
                                          list[i]));
    };
    while (i < list.size()) {
        if (!digit()) {
            ++i;
            continue;
        }
        unsigned lo = 0;
        while (digit())
            lo = lo * 10 + unsigned(list[i++] - '0');
        unsigned hi = lo;
        if (i < list.size() && list[i] == '-') {
            ++i;
            if (!digit())
                break; // malformed range tail
            hi = 0;
            while (digit())
                hi = hi * 10 + unsigned(list[i++] - '0');
        }
        for (unsigned c = lo; c <= hi && cpus.size() < 4096; ++c)
            cpus.push_back(c);
    }
    std::sort(cpus.begin(), cpus.end());
    cpus.erase(std::unique(cpus.begin(), cpus.end()), cpus.end());
    return cpus;
}

/** CPUs the process may run on (sched_getaffinity); empty when the
 *  platform can't say. */
std::vector<unsigned>
affinityCpus()
{
    std::vector<unsigned> cpus;
#if defined(__linux__)
    cpu_set_t set;
    CPU_ZERO(&set);
    if (sched_getaffinity(0, sizeof(set), &set) == 0)
        for (unsigned c = 0; c < CPU_SETSIZE; ++c)
            if (CPU_ISSET(c, &set))
                cpus.push_back(c);
#endif
    return cpus;
}

std::vector<unsigned>
intersect(const std::vector<unsigned> &a,
          std::span<const unsigned> b)
{
    if (b.empty())
        return a;
    std::vector<unsigned> out;
    std::set_intersection(a.begin(), a.end(), b.begin(), b.end(),
                          std::back_inserter(out));
    return out;
}

} // namespace

Topology::Topology(std::vector<std::vector<unsigned>> nodeCpus)
    : nodeCpus_(std::move(nodeCpus))
{
    // Drop CPU-less nodes (memory-only nodes host no walkers), then
    // guarantee the never-empty invariant every query relies on.
    std::erase_if(nodeCpus_,
                  [](const auto &cpus) { return cpus.empty(); });
    if (nodeCpus_.empty())
        nodeCpus_.push_back({0});
    for (const auto &cpus : nodeCpus_)
        allCpus_.insert(allCpus_.end(), cpus.begin(), cpus.end());
    std::sort(allCpus_.begin(), allCpus_.end());
    allCpus_.erase(std::unique(allCpus_.begin(), allCpus_.end()),
                   allCpus_.end());
    nCpus_ = unsigned(allCpus_.size());
}

Topology
Topology::fromNodes(std::vector<std::vector<unsigned>> nodeCpus)
{
    for (auto &cpus : nodeCpus) {
        std::sort(cpus.begin(), cpus.end());
        cpus.erase(std::unique(cpus.begin(), cpus.end()),
                   cpus.end());
    }
    return Topology(std::move(nodeCpus));
}

Topology
Topology::fromSysfs(const std::string &nodeRoot,
                    std::span<const unsigned> allowed)
{
    std::vector<std::vector<unsigned>> nodes;
    // Node ids are dense in practice but sysfs allows holes
    // (offlined sockets); scan a generous id range and keep going
    // past gaps.
    constexpr unsigned kMaxNodeId = 1024;
    unsigned misses = 0;
    for (unsigned n = 0; n < kMaxNodeId && misses < 64; ++n) {
        std::ifstream f(nodeRoot + "/node" + std::to_string(n) +
                        "/cpulist");
        if (!f) {
            ++misses;
            continue;
        }
        misses = 0;
        std::string list((std::istreambuf_iterator<char>(f)),
                         std::istreambuf_iterator<char>());
        nodes.push_back(intersect(parseCpuList(list), allowed));
    }
    const bool usable =
        std::any_of(nodes.begin(), nodes.end(),
                    [](const auto &cpus) { return !cpus.empty(); });
    if (usable)
        return Topology(std::move(nodes));
    // No tree (non-Linux, stripped container): one node over the
    // affinity mask, or hardware_concurrency as the last resort.
    std::vector<unsigned> flat(allowed.begin(), allowed.end());
    if (flat.empty()) {
        const unsigned hw =
            std::max(1u, std::thread::hardware_concurrency());
        for (unsigned c = 0; c < hw; ++c)
            flat.push_back(c);
    }
    return Topology({std::move(flat)});
}

const Topology &
Topology::host()
{
    static const Topology topo = [] {
        const std::vector<unsigned> allowed = affinityCpus();
        return fromSysfs("/sys/devices/system/node", allowed);
    }();
    return topo;
}

int
Topology::nodeOfCpu(unsigned cpu) const
{
    for (unsigned n = 0; n < nodes(); ++n) {
        const auto &cpus = nodeCpus_[n];
        if (std::binary_search(cpus.begin(), cpus.end(), cpu))
            return int(n);
    }
    return -1;
}

bool
pinThreadToCpu(const Topology &topo, unsigned cpu)
{
    if (topo.nodeOfCpu(cpu) < 0)
        return false;
#if defined(__linux__)
    cpu_set_t set;
    CPU_ZERO(&set);
    CPU_SET(cpu, &set);
    // Best effort: an unpinnable host (exotic schedulers, masks
    // shifting underneath us) just leaves the thread floating.
    return pthread_setaffinity_np(pthread_self(), sizeof(set),
                                  &set) == 0;
#else
    return false;
#endif
}

void
pinCurrentThread(unsigned slot)
{
    const Topology &topo = Topology::host();
    if (topo.folds(slot)) {
        static std::atomic<bool> warned{false};
        if (!warned.exchange(true, std::memory_order_relaxed))
            warn("pin request for slot %u folded onto %u usable "
                 "CPUs (further folds not reported)",
                 slot, topo.cpus());
    }
    pinThreadToCpu(topo, topo.cpuForSlot(slot));
}

} // namespace widx
