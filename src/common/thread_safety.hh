/**
 * @file
 * Clang Thread Safety Analysis capability annotations and annotated
 * lock wrappers.
 *
 * The macros expand to clang's `capability` attribute family when the
 * compiler supports it (clang with -Wthread-safety) and to nothing
 * everywhere else, so gcc builds see plain std::mutex semantics with
 * zero overhead. Conventions for new code:
 *
 *  - Every mutex that guards data is a `widx::Mutex`, and every field
 *    it protects carries `WIDX_GUARDED_BY(mu_)`.
 *  - Functions that expect the caller to hold the lock are annotated
 *    `WIDX_REQUIRES(mu_)` instead of documenting it in a comment.
 *  - Scoped locking uses `widx::MutexLock` (and condition waits go
 *    through `widx::CondVar`, which takes the Mutex itself so the
 *    analysis can see the capability is held across the wait).
 *  - Thread-confined state that has no lock at all is expressed with
 *    a zero-size `widx::ThreadRole` capability: the owning thread
 *    "holds" the role, debug assertions are annotated
 *    `WIDX_ASSERT_CAPABILITY(role_)`, and confined fields carry
 *    `WIDX_GUARDED_BY(role_)`. This turns the PR 8 thread-confinement
 *    comments into machine-checked contracts.
 *
 * The wrappers are header-only inline forwarding around std::mutex /
 * std::condition_variable — they must stay zero-cost; hot paths
 * (walker claim loops, completion reap) run through them.
 */

#ifndef WIDX_COMMON_THREAD_SAFETY_HH
#define WIDX_COMMON_THREAD_SAFETY_HH

#include <chrono>
#include <condition_variable>
#include <mutex>

#if defined(__clang__) && (!defined(SWIG))
#define WIDX_TSA(x) __attribute__((x))
#else
#define WIDX_TSA(x) // no-op on gcc/msvc: annotations compile away
#endif

#define WIDX_CAPABILITY(x) WIDX_TSA(capability(x))
#define WIDX_SCOPED_CAPABILITY WIDX_TSA(scoped_lockable)
#define WIDX_GUARDED_BY(x) WIDX_TSA(guarded_by(x))
#define WIDX_PT_GUARDED_BY(x) WIDX_TSA(pt_guarded_by(x))
#define WIDX_ACQUIRED_BEFORE(...) WIDX_TSA(acquired_before(__VA_ARGS__))
#define WIDX_ACQUIRED_AFTER(...) WIDX_TSA(acquired_after(__VA_ARGS__))
#define WIDX_REQUIRES(...) \
    WIDX_TSA(requires_capability(__VA_ARGS__))
#define WIDX_REQUIRES_SHARED(...) \
    WIDX_TSA(requires_shared_capability(__VA_ARGS__))
#define WIDX_ACQUIRE(...) WIDX_TSA(acquire_capability(__VA_ARGS__))
#define WIDX_ACQUIRE_SHARED(...) \
    WIDX_TSA(acquire_shared_capability(__VA_ARGS__))
#define WIDX_RELEASE(...) WIDX_TSA(release_capability(__VA_ARGS__))
#define WIDX_RELEASE_SHARED(...) \
    WIDX_TSA(release_shared_capability(__VA_ARGS__))
#define WIDX_TRY_ACQUIRE(...) \
    WIDX_TSA(try_acquire_capability(__VA_ARGS__))
#define WIDX_EXCLUDES(...) WIDX_TSA(locks_excluded(__VA_ARGS__))
#define WIDX_ASSERT_CAPABILITY(x) WIDX_TSA(assert_capability(x))
#define WIDX_RETURN_CAPABILITY(x) WIDX_TSA(lock_returned(x))
#define WIDX_NO_THREAD_SAFETY_ANALYSIS \
    WIDX_TSA(no_thread_safety_analysis)

namespace widx {

/**
 * std::mutex with the `capability` attribute, so `WIDX_GUARDED_BY`
 * annotations can name it. All methods are inline forwarders — the
 * generated code is identical to a bare std::mutex.
 */
class WIDX_CAPABILITY("mutex") Mutex
{
  public:
    Mutex() = default;
    Mutex(const Mutex &) = delete;
    Mutex &operator=(const Mutex &) = delete;

    void
    lock() WIDX_ACQUIRE()
    {
        m_.lock();
    }

    void
    unlock() WIDX_RELEASE()
    {
        m_.unlock();
    }

    bool
    tryLock() WIDX_TRY_ACQUIRE(true)
    {
        return m_.try_lock();
    }

    /** Escape hatch for CondVar (std::condition_variable needs the
     *  raw std::mutex). Not for direct locking — that would bypass
     *  the analysis. */
    std::mutex &
    native()
    {
        return m_;
    }

  private:
    std::mutex m_;
};

/** RAII lock for widx::Mutex; the scoped capability lets the analysis
 *  track the region where guarded fields may be touched. */
class WIDX_SCOPED_CAPABILITY MutexLock
{
  public:
    explicit MutexLock(Mutex &mu) WIDX_ACQUIRE(mu) : mu_(mu)
    {
        mu_.lock();
    }

    MutexLock(const MutexLock &) = delete;
    MutexLock &operator=(const MutexLock &) = delete;

    /** Early release (mid-scope `unlock()` in ticket wait paths).
     *  The destructor then becomes a no-op. */
    void
    unlock() WIDX_RELEASE()
    {
        mu_.unlock();
        locked_ = false;
    }

    ~MutexLock() WIDX_RELEASE()
    {
        if (locked_)
            mu_.unlock();
    }

  private:
    Mutex &mu_;
    bool locked_ = true;
};

/**
 * Condition variable that waits on a widx::Mutex. Waits take the
 * Mutex (not a std::unique_lock), annotated WIDX_REQUIRES, so the
 * analysis knows the capability is held before and after the wait.
 * Predicate re-check loops live at the call site for the same reason:
 * a lambda passed into wait() would be analyzed without the caller's
 * capability and produce false positives on guarded reads.
 */
class CondVar
{
  public:
    CondVar() = default;
    CondVar(const CondVar &) = delete;
    CondVar &operator=(const CondVar &) = delete;

    void
    wait(Mutex &mu) WIDX_REQUIRES(mu)
    {
        std::unique_lock<std::mutex> lk(mu.native(), std::adopt_lock);
        cv_.wait(lk);
        lk.release(); // caller's MutexLock still owns the mutex
    }

    template <class Rep, class Period>
    std::cv_status
    waitFor(Mutex &mu, const std::chrono::duration<Rep, Period> &d)
        WIDX_REQUIRES(mu)
    {
        std::unique_lock<std::mutex> lk(mu.native(), std::adopt_lock);
        const std::cv_status s = cv_.wait_for(lk, d);
        lk.release();
        return s;
    }

    template <class Clock, class Duration>
    std::cv_status
    waitUntil(Mutex &mu,
              const std::chrono::time_point<Clock, Duration> &tp)
        WIDX_REQUIRES(mu)
    {
        std::unique_lock<std::mutex> lk(mu.native(), std::adopt_lock);
        const std::cv_status s = cv_.wait_until(lk, tp);
        lk.release();
        return s;
    }

    void
    notifyOne()
    {
        cv_.notify_one();
    }

    void
    notifyAll()
    {
        cv_.notify_all();
    }

  private:
    std::condition_variable cv_;
};

/**
 * Zero-size capability standing for "runs on the owning thread".
 * There is no lock: acquire()/release() are no-ops that exist only so
 * the analysis can model thread confinement. The owning thread calls
 * `role_.acquire()` once at thread start (or an assertion annotated
 * WIDX_ASSERT_CAPABILITY(role_) on entry); confined fields carry
 * WIDX_GUARDED_BY(role_), so touching them from an unannotated
 * context is a compile error under clang -Wthread-safety.
 */
class WIDX_CAPABILITY("role") ThreadRole
{
  public:
    void acquire() WIDX_ACQUIRE() {}
    void release() WIDX_RELEASE() {}
};

} // namespace widx

#endif // WIDX_COMMON_THREAD_SAFETY_HH
