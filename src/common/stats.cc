#include "common/stats.hh"

#include <cmath>

namespace widx {

double
mean(const std::vector<double> &xs)
{
    if (xs.empty())
        return 0.0;
    double s = 0.0;
    for (double x : xs)
        s += x;
    return s / double(xs.size());
}

double
geomean(const std::vector<double> &xs)
{
    if (xs.empty())
        return 0.0;
    double log_sum = 0.0;
    for (double x : xs) {
        panic_if(x <= 0.0, "geomean requires positive samples, got %f", x);
        log_sum += std::log(x);
    }
    return std::exp(log_sum / double(xs.size()));
}

double
stddev(const std::vector<double> &xs)
{
    if (xs.size() < 2)
        return 0.0;
    double m = mean(xs);
    double acc = 0.0;
    for (double x : xs)
        acc += (x - m) * (x - m);
    return std::sqrt(acc / double(xs.size()));
}

double
harmean(const std::vector<double> &xs)
{
    if (xs.empty())
        return 0.0;
    double acc = 0.0;
    for (double x : xs) {
        panic_if(x <= 0.0, "harmean requires positive samples, got %f", x);
        acc += 1.0 / x;
    }
    return double(xs.size()) / acc;
}

double
Histogram::cdfAt(unsigned bucket) const
{
    if (total_ == 0)
        return 0.0;
    u64 acc = 0;
    for (unsigned i = 0; i <= bucket && i < counts_.size(); ++i)
        acc += counts_[i];
    return double(acc) / double(total_);
}

} // namespace widx
