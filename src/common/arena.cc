#include "common/arena.hh"

#include <cstring>

#include "common/logging.hh"

namespace widx {

Arena::Arena(std::size_t chunk_bytes)
    : chunkBytes_(chunk_bytes)
{
    panic_if(chunk_bytes == 0, "arena chunk size must be nonzero");
}

Arena::Chunk &
Arena::ensureRoom(std::size_t bytes, std::size_t align)
{
    if (!chunks_.empty()) {
        Chunk &c = chunks_.back();
        std::size_t aligned = (c.used + align - 1) & ~(align - 1);
        if (aligned + bytes <= c.size)
            return c;
    }
    std::size_t want = bytes + align > chunkBytes_ ? bytes + align
                                                   : chunkBytes_;
    Chunk c;
    c.data = std::make_unique<unsigned char[]>(want);
    std::memset(c.data.get(), 0, want);
    c.size = want;
    c.used = 0;
    reserved_ += want;
    chunks_.push_back(std::move(c));
    return chunks_.back();
}

void *
Arena::allocateBytes(std::size_t bytes, std::size_t align)
{
    panic_if(align == 0 || (align & (align - 1)) != 0,
             "alignment must be a power of two, got %zu", align);
    if (bytes == 0)
        bytes = 1;
    Chunk &c = ensureRoom(bytes, align);
    std::size_t base = reinterpret_cast<std::size_t>(c.data.get());
    std::size_t aligned = (base + c.used + align - 1) & ~(align - 1);
    c.used = aligned - base + bytes;
    allocated_ += bytes;
    return reinterpret_cast<void *>(aligned);
}

void
Arena::releaseAll()
{
    chunks_.clear();
    allocated_ = 0;
    reserved_ = 0;
}

} // namespace widx
