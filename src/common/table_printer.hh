/**
 * @file
 * Column-aligned ASCII table output for the benchmark harnesses.
 *
 * Every figure/table bench prints its rows through TablePrinter so the
 * regenerated results are readable and diffable against the paper.
 */

#ifndef WIDX_COMMON_TABLE_PRINTER_HH
#define WIDX_COMMON_TABLE_PRINTER_HH

#include <string>
#include <vector>

namespace widx {

class TablePrinter
{
  public:
    /** @param title caption printed above the table. */
    explicit TablePrinter(std::string title);

    /** Set the header row. Must be called before addRow. */
    void header(const std::vector<std::string> &cols);

    /** Append a data row; must match the header's column count. */
    void addRow(const std::vector<std::string> &cols);

    /** Render the whole table to stdout. */
    void print() const;

    /** Render as comma-separated values (for scripting). */
    std::string toCsv() const;

    /** Format helper: fixed-point double with the given precision. */
    static std::string fmt(double v, int precision = 2);

    /** Format helper: integral value with thousands separators. */
    static std::string fmtInt(unsigned long long v);

    /** Format helper: percentage with one decimal. */
    static std::string fmtPct(double fraction);

  private:
    std::string title_;
    std::vector<std::string> header_;
    std::vector<std::vector<std::string>> rows_;
};

} // namespace widx

#endif // WIDX_COMMON_TABLE_PRINTER_HH
