/**
 * @file
 * Bump-pointer arena allocator.
 *
 * The hash index and node lists live in one (or a few) contiguous
 * chunks so that (a) the simulated footprint matches the logical data
 * size and (b) host pointers double as simulated addresses with
 * realistic page/cache-block structure. Allocation never moves
 * existing objects, so node pointers stay valid for the lifetime of
 * the arena.
 */

#ifndef WIDX_COMMON_ARENA_HH
#define WIDX_COMMON_ARENA_HH

#include <cstddef>
#include <memory>
#include <vector>

#include "common/types.hh"

namespace widx {

/**
 * Chunked bump allocator. Objects are allocated front-to-back from
 * large chunks; everything is freed at once when the arena dies.
 */
class Arena
{
  public:
    /** @param chunk_bytes size of each backing chunk. */
    explicit Arena(std::size_t chunk_bytes = 16u << 20);

    Arena(const Arena &) = delete;
    Arena &operator=(const Arena &) = delete;
    Arena(Arena &&) = default;
    Arena &operator=(Arena &&) = default;

    /**
     * Allocate raw storage.
     *
     * @param bytes number of bytes, may exceed the chunk size.
     * @param align alignment, must be a power of two.
     * @return pointer to zero-initialized storage.
     */
    void *allocateBytes(std::size_t bytes, std::size_t align = 8);

    /** Allocate and default-construct a T. T must be trivially
     *  destructible (the arena never runs destructors). */
    template <typename T, typename... Args>
    T *
    make(Args &&...args)
    {
        static_assert(std::is_trivially_destructible_v<T>,
                      "arena objects are never destroyed");
        void *p = allocateBytes(sizeof(T), alignof(T));
        return new (p) T(std::forward<Args>(args)...);
    }

    /** Allocate a zero-initialized array of n Ts. */
    template <typename T>
    T *
    makeArray(std::size_t n)
    {
        static_assert(std::is_trivially_destructible_v<T>,
                      "arena objects are never destroyed");
        void *p = allocateBytes(sizeof(T) * n, alignof(T));
        return static_cast<T *>(p);
    }

    /** Total bytes handed out to callers so far. */
    std::size_t allocatedBytes() const { return allocated_; }

    /** Total bytes reserved from the system so far. */
    std::size_t reservedBytes() const { return reserved_; }

    /** Release all chunks; outstanding pointers become invalid. */
    void releaseAll();

  private:
    struct Chunk
    {
        std::unique_ptr<unsigned char[]> data;
        std::size_t size = 0;
        std::size_t used = 0;
    };

    Chunk &ensureRoom(std::size_t bytes, std::size_t align);

    std::size_t chunkBytes_;
    std::size_t allocated_ = 0;
    std::size_t reserved_ = 0;
    std::vector<Chunk> chunks_;
};

} // namespace widx

#endif // WIDX_COMMON_ARENA_HH
