/**
 * @file
 * gem5-style status and error reporting helpers.
 *
 * panic():  an internal invariant was violated (a bug in this library);
 *           aborts so a debugger/core dump can inspect the state.
 * fatal():  the simulation cannot continue due to a user-level error
 *           (bad configuration, invalid arguments); exits with code 1.
 * warn():   something works but deserves attention.
 * inform(): normal operating status messages.
 */

#ifndef WIDX_COMMON_LOGGING_HH
#define WIDX_COMMON_LOGGING_HH

#include <cstdio>
#include <cstdlib>
#include <string>

namespace widx {

namespace detail {

[[noreturn]] void terminateAbort();
[[noreturn]] void terminateExit();

void logPrefix(const char *tag, const char *file, int line);

} // namespace detail

/** Printf-style message sink used by all logging macros. */
void logVprintf(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Thread-safe strerror: the libc one returns a shared static
 *  buffer (concurrency-mt-unsafe); this wraps strerror_r. */
std::string errnoText(int err);

} // namespace widx

#define WIDX_LOG_BODY(tag, ...)                                         \
    do {                                                                \
        ::widx::detail::logPrefix(tag, __FILE__, __LINE__);             \
        ::widx::logVprintf(__VA_ARGS__);                                \
    } while (0)

/** Internal invariant violated: print and abort. */
#define panic(...)                                                      \
    do {                                                                \
        WIDX_LOG_BODY("panic", __VA_ARGS__);                            \
        ::widx::detail::terminateAbort();                               \
    } while (0)

/** Unrecoverable user-level error: print and exit(1). */
#define fatal(...)                                                      \
    do {                                                                \
        WIDX_LOG_BODY("fatal", __VA_ARGS__);                            \
        ::widx::detail::terminateExit();                                \
    } while (0)

/** Conditional panic: panics with the message when cond holds. */
#define panic_if(cond, ...)                                             \
    do {                                                                \
        if (cond)                                                       \
            panic(__VA_ARGS__);                                         \
    } while (0)

/** Conditional fatal: exits with the message when cond holds. */
#define fatal_if(cond, ...)                                             \
    do {                                                                \
        if (cond)                                                       \
            fatal(__VA_ARGS__);                                         \
    } while (0)

/** Non-fatal warning message. */
#define warn(...) WIDX_LOG_BODY("warn", __VA_ARGS__)

/** Informational status message. */
#define inform(...) WIDX_LOG_BODY("info", __VA_ARGS__)

#endif // WIDX_COMMON_LOGGING_HH
