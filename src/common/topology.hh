/**
 * @file
 * Host memory topology: which CPUs exist, which NUMA node each one
 * belongs to, and which of them this process is actually allowed to
 * run on.
 *
 * The walkers win by keeping a traversal on-die-close to the memory
 * it walks; on a multi-socket host that requires knowing the real
 * node/CPU map instead of the "CPU i ~ node i" round-robin the
 * service used before. Topology parses the kernel's sysfs view
 *
 *     /sys/devices/system/node/node<N>/cpulist   ("0-3,8-11\n")
 *
 * intersects every node's CPU list with the calling process's
 * affinity mask (sched_getaffinity — a cgroup-restricted host must
 * never be pinned to CPUs it doesn't own), and exposes the result
 * as placement queries:
 *
 *  - nodeForSlot(slot, slots): block-distribute `slots` entities
 *    (shards, walkers) over the nodes, so entity ranges map to
 *    contiguous node ranges — shard s and the walkers homed on it
 *    land on the same node;
 *  - cpuForSlot(slot): fold a logical slot onto the usable CPU
 *    list (round-robin when slots outnumber CPUs);
 *  - cpuOnNode(node, idx): the idx-th usable CPU of a node,
 *    folding within the node.
 *
 * Tests inject synthetic trees: fromSysfs() takes any directory
 * laid out like the kernel's `node/` dir (1-node, multi-node,
 * sparse/offline-CPU layouts), and fromNodes() builds a topology
 * from explicit per-node CPU lists with no filesystem at all.
 * host() is the cached singleton for the real machine; it never
 * fails — a host without sysfs (non-Linux, stripped containers)
 * degrades to one node holding the affinity mask, or ultimately
 * hardware_concurrency CPUs.
 */

#ifndef WIDX_COMMON_TOPOLOGY_HH
#define WIDX_COMMON_TOPOLOGY_HH

#include <algorithm>
#include <span>
#include <string>
#include <vector>

#include "common/types.hh"

namespace widx {

class Topology
{
  public:
    /** The real host: sysfs nodes intersected with the process
     *  affinity mask, computed once and cached. Always has at least
     *  one node and one CPU. */
    static const Topology &host();

    /**
     * Parse a sysfs-style node directory (the injection point for
     * tests and for non-standard sysfs mounts).
     *
     * @param nodeRoot directory containing node<N>/cpulist entries
     *        (the kernel's is /sys/devices/system/node).
     * @param allowed CPUs the process may run on, ascending; empty
     *        = no restriction. Nodes whose CPU list intersects to
     *        empty are dropped (CPU-less memory nodes don't host
     *        walkers).
     *
     * Falls back to a single node over `allowed` (or
     * hardware_concurrency CPUs) when the tree is absent or yields
     * no usable CPU.
     */
    static Topology fromSysfs(const std::string &nodeRoot,
                              std::span<const unsigned> allowed = {});

    /** Synthetic topology from explicit per-node CPU lists (tests).
     *  Empty nodes are dropped; an all-empty input degrades to one
     *  node holding CPU 0. */
    static Topology
    fromNodes(std::vector<std::vector<unsigned>> nodeCpus);

    unsigned nodes() const { return unsigned(nodeCpus_.size()); }

    /** Total usable CPUs across all nodes. */
    unsigned cpus() const { return nCpus_; }

    /** Usable CPUs of one node, ascending. */
    std::span<const unsigned>
    cpusOnNode(unsigned node) const
    {
        return nodeCpus_[node];
    }

    /** Node owning a CPU id, or -1 when the CPU is not usable. */
    int nodeOfCpu(unsigned cpu) const;

    /**
     * Block-distribute `slots` logical entities over the nodes:
     * slot ranges map to contiguous node ranges, so shards and the
     * walkers homed on them agree on a node. With fewer slots than
     * nodes the slots spread out (slot i -> node i * N / slots).
     */
    unsigned
    nodeForSlot(unsigned slot, unsigned slots) const
    {
        const unsigned n = nodes();
        if (slots == 0 || n <= 1)
            return 0;
        return std::min(slot * n / slots, n - 1);
    }

    /** Fold a logical slot onto the usable-CPU list (round-robin
     *  past the end). folds(slot) tells whether folding happened. */
    unsigned
    cpuForSlot(unsigned slot) const
    {
        return allCpus_[slot % allCpus_.size()];
    }

    bool folds(unsigned slot) const { return slot >= cpus(); }

    /** The idx-th usable CPU of a node, folding within the node. */
    unsigned
    cpuOnNode(unsigned node, unsigned idx) const
    {
        const auto &cpus = nodeCpus_[node];
        return cpus[idx % cpus.size()];
    }

  private:
    explicit Topology(std::vector<std::vector<unsigned>> nodeCpus);

    std::vector<std::vector<unsigned>> nodeCpus_;
    std::vector<unsigned> allCpus_; ///< ascending, all nodes merged
    unsigned nCpus_ = 0;
};

/**
 * Pin the calling thread to one exact CPU (which must be usable in
 * `topo`); best-effort — returns false and leaves the thread
 * floating when the host refuses. No-op off Linux.
 */
bool pinThreadToCpu(const Topology &topo, unsigned cpu);

/**
 * Pin the calling thread to the CPU of a logical slot, folding onto
 * the host's usable CPUs (Topology::host().cpuForSlot). Replaces
 * the old `cpu % hardware_concurrency` helper, which ignored the
 * affinity mask (cgroup-restricted hosts got pinned to CPUs they
 * don't own) and silently folded shard builders onto low CPUs.
 * Folding still happens when slots outnumber usable CPUs — but over
 * the *usable* list, and it warns once per process.
 */
void pinCurrentThread(unsigned slot);

} // namespace widx

#endif // WIDX_COMMON_TOPOLOGY_HH
