/**
 * @file
 * Bit-manipulation helpers shared by the ISA encoder, the hash
 * functions, and the cache index computations.
 */

#ifndef WIDX_COMMON_BITOPS_HH
#define WIDX_COMMON_BITOPS_HH

#include <bit>

#include "common/types.hh"

namespace widx {

/** True when v is a power of two (and nonzero). */
constexpr bool
isPowerOfTwo(u64 v)
{
    return v != 0 && (v & (v - 1)) == 0;
}

/** log2 of a power-of-two value. */
constexpr unsigned
log2Exact(u64 v)
{
    return unsigned(std::countr_zero(v));
}

/** Smallest power of two >= v (v must be nonzero, below 2^63). */
constexpr u64
nextPowerOfTwo(u64 v)
{
    return std::bit_ceil(v);
}

/** Extract bits [lo, hi] (inclusive) of v. */
constexpr u64
bits(u64 v, unsigned hi, unsigned lo)
{
    const u64 mask = hi >= 63 ? ~u64{0} : ((u64{1} << (hi + 1)) - 1);
    return (v & mask) >> lo;
}

/** Insert val into bits [lo, hi] of base. */
constexpr u64
insertBits(u64 base, unsigned hi, unsigned lo, u64 val)
{
    const u64 field = hi >= 63 ? ~u64{0} : ((u64{1} << (hi + 1)) - 1);
    const u64 mask = field & ~((u64{1} << lo) - 1);
    return (base & ~mask) | ((val << lo) & mask);
}

} // namespace widx

#endif // WIDX_COMMON_BITOPS_HH
