/**
 * @file
 * Epoch-based reclamation for lock-free probe paths.
 *
 * The walkers never take locks on the probe path (the whole point of
 * the Widx schedule is to keep the miss pipeline full), so a writer
 * that unlinks a node or swaps out a bucket array cannot free the
 * memory immediately: a paused probe coroutine may still hold a
 * pointer into it. The classic answer is epoch-based reclamation
 * (Fraser's scheme, as used by every serious lock-free index since):
 *
 *   - A global epoch counter advances monotonically (writers bump it
 *     once per mutation batch).
 *   - Each reader thread *pins* the current epoch before touching
 *     retired-capable memory and *unpins* when done. Pinned state
 *     lives in a fixed array of cache-line-padded slots so readers
 *     never contend with each other.
 *   - A writer that retires an object records the epoch at retire
 *     time. The object is reclaimable once `safeBefore()` exceeds
 *     that epoch — i.e. every reader pinned *after* the retire, so
 *     none can hold a pre-retire pointer.
 *
 * The manager only tracks epochs; retired-object limbo lists live
 * with their owners (per-shard, drained by that shard's single
 * writer) so reclamation never crosses shard ownership.
 *
 * Usage on the read side is RAII:
 *
 *     widx::EpochGuard g(epochs, slot);   // pin
 *     ... lock-free probes ...
 *     // unpin at scope exit
 *
 * Slots are claimed once per thread (acquireSlot) and released when
 * the thread retires. Pin/unpin are two relaxed-ish atomic ops on a
 * thread-private cache line — nanoseconds, invisible next to a DRAM
 * miss.
 */

#ifndef WIDX_COMMON_EPOCH_HH
#define WIDX_COMMON_EPOCH_HH

#include <atomic>

#include "common/logging.hh"
#include "common/types.hh"

namespace widx {

class EpochManager
{
  public:
    /** Fixed reader-slot capacity: enough for every walker plus
     *  ad-hoc reader threads in any supported topology. */
    static constexpr unsigned kMaxSlots = 64;

    /** Sentinel stored in an unpinned slot. */
    static constexpr u64 kIdle = ~u64(0);

    EpochManager() = default;
    EpochManager(const EpochManager &) = delete;
    EpochManager &operator=(const EpochManager &) = delete;

    /** Claim a reader slot for the calling thread. Slots are a
     *  process-lifetime resource here: walkers claim at spawn and
     *  release at join. Panics if all slots are taken. */
    unsigned
    acquireSlot()
    {
        for (unsigned i = 0; i < kMaxSlots; ++i) {
            bool expected = false;
            if (slots_[i].claimed.compare_exchange_strong(
                    expected, true, std::memory_order_acq_rel))
                return i;
        }
        panic("epoch: out of reader slots (max %u)", kMaxSlots);
    }

    void
    releaseSlot(unsigned slot)
    {
        fatal_if(slot >= kMaxSlots, "epoch: bad slot %u", slot);
        slots_[slot].epoch.store(kIdle, std::memory_order_release);
        slots_[slot].claimed.store(false, std::memory_order_release);
    }

    /** Pin the current epoch in `slot`. seq_cst so the pin publishes
     *  before any subsequent probe load and is globally ordered
     *  against a concurrent writer's retire — the one fence per
     *  claimed *window* (hundreds of keys), not per probe. */
    void
    pin(unsigned slot)
    {
        const u64 e = epoch_.load(std::memory_order_relaxed);
        slots_[slot].epoch.store(e, std::memory_order_seq_cst);
    }

    /** Unpin: probe loads must complete before the release store. */
    void
    unpin(unsigned slot)
    {
        slots_[slot].epoch.store(kIdle, std::memory_order_release);
    }

    u64
    current() const
    {
        return epoch_.load(std::memory_order_acquire);
    }

    /** Writer-side: advance the global epoch (once per mutation
     *  batch). Returns the new epoch. */
    u64
    advance()
    {
        return epoch_.fetch_add(1, std::memory_order_acq_rel) + 1;
    }

    /** Smallest epoch any reader might still be inside. An object
     *  retired at epoch `e` is reclaimable iff `e < safeBefore()`:
     *  every pinned reader entered after the retiring writer's
     *  advance, so none can hold a pre-retire pointer. seq_cst load
     *  pairs with the pin's seq_cst store — a reader that pinned
     *  before this load is seen; one that pins after it pinned a
     *  post-advance epoch. */
    u64
    safeBefore() const
    {
        u64 min = epoch_.load(std::memory_order_seq_cst);
        for (unsigned i = 0; i < kMaxSlots; ++i) {
            const u64 e =
                slots_[i].epoch.load(std::memory_order_seq_cst);
            if (e != kIdle && e < min)
                min = e;
        }
        return min;
    }

    /** Observability: how far the slowest pinned reader lags the
     *  current epoch (0 when no reader is pinned behind it). */
    u64
    lag() const
    {
        const u64 cur = epoch_.load(std::memory_order_acquire);
        const u64 safe = safeBefore();
        return cur > safe ? cur - safe : 0;
    }

    /** Number of currently pinned reader slots (diagnostics). */
    unsigned pinnedReaders() const;

  private:
    // widx-lint: padded -- per-reader slots are written by distinct
    // threads on every window claim; sharing a line would put the
    // pin/unpin stores of different walkers in false sharing.
    struct alignas(kCacheBlockBytes) Slot
    {
        std::atomic<u64> epoch{kIdle};
        std::atomic<bool> claimed{false};
    };
    static_assert(sizeof(Slot) == kCacheBlockBytes);

    alignas(kCacheBlockBytes) std::atomic<u64> epoch_{1};
    Slot slots_[kMaxSlots];
};

/** RAII pin: pins at construction, unpins at scope exit. */
class EpochGuard
{
  public:
    EpochGuard(EpochManager &mgr, unsigned slot)
        : mgr_(mgr), slot_(slot)
    {
        mgr_.pin(slot_);
    }

    ~EpochGuard() { mgr_.unpin(slot_); }

    EpochGuard(const EpochGuard &) = delete;
    EpochGuard &operator=(const EpochGuard &) = delete;

  private:
    EpochManager &mgr_;
    unsigned slot_;
};

} // namespace widx

#endif // WIDX_COMMON_EPOCH_HH
