/**
 * @file
 * Compile-time-gated named failpoints for fault-injection testing.
 *
 * A failpoint is a named site in production code where a test can
 * inject a delay (walker stall, slow drain, delayed claim) without
 * recompiling the code under test with test hooks. Sites are
 * declared with `WIDX_FAILPOINT("name")`; tests arm them by name
 * with a hit budget and a per-hit delay.
 *
 * The whole mechanism is behind the `WIDX_FAILPOINTS` CMake option:
 *
 *  - **Off (the default, all release builds):** `WIDX_FAILPOINT`
 *    expands to nothing — no branch, no load, no registry, zero
 *    cost. The control API below still compiles (as inert stubs
 *    returning false/zero) so tests can be built either way and
 *    skip themselves via `fp::enabled()`.
 *
 *  - **On (`-DWIDX_FAILPOINTS=ON`, the CI chaos job):** each site
 *    interns a registry entry once (function-local static) and then
 *    costs one relaxed atomic load per pass while disarmed. Arming
 *    is fully thread-safe: a site fires at most `count` times, each
 *    hit sleeping `delayNs`, then disarms itself.
 *
 * Failpoints only *delay* — they never change results. That is the
 * point: chaos tests assert that arbitrarily bad timing (a stalled
 * walker mid-drain, a slow claim) cannot break the service's
 * determinism or hang a waiter, which is exactly the class of
 * robustness property that cannot be exercised by well-timed tests.
 *
 * The catalog of site names lives with the code that declares them;
 * the service's sites are documented in src/service/README.md.
 */

#ifndef WIDX_COMMON_FAILPOINT_HH
#define WIDX_COMMON_FAILPOINT_HH

#include <atomic>
#include <string>
#include <string_view>
#include <vector>

#include "common/types.hh"

namespace widx::fp {

/** Is fault injection compiled in (WIDX_FAILPOINTS=ON)? Tests use
 *  this to GTEST_SKIP instead of silently passing. */
constexpr bool
enabled()
{
#ifdef WIDX_FAILPOINTS
    return true;
#else
    return false;
#endif
}

/** Arm `count` hits of `delayNs` each on the named site; the site
 *  disarms itself after the last hit. Re-arming replaces the budget.
 *  Registers the name if no site has interned it yet, so tests can
 *  arm before the first traffic reaches the site. No-op when
 *  fault injection is compiled out. */
void arm(std::string_view name, u64 count, u64 delayNs);

/** Disarm one site (unfired budget is dropped) / every site. */
void disarm(std::string_view name);
void disarmAll();

/** Times the named site actually fired (slept) since process start.
 *  0 for unknown names or when compiled out. */
u64 hits(std::string_view name);

/** Names registered so far (interned sites + armed-by-name), sorted.
 *  Empty when compiled out. */
std::vector<std::string> names();

#ifdef WIDX_FAILPOINTS

/** One registered site. `armed` is the only hot-path word: sites
 *  load it relaxed and branch to the slow path only while a budget
 *  is live. */
struct Point
{
    std::atomic<bool> armed{false};
    std::atomic<u64> remaining{0};
    std::atomic<u64> delayNs{0};
    std::atomic<u64> hits{0};
};

/** Intern the named site (stable address for the macro's static). */
Point &point(std::string_view name);

/** Consume one budgeted hit and sleep; self-disarms on the last. */
void fireSlow(Point &p);

#define WIDX_FAILPOINT(name)                                          \
    do {                                                              \
        static ::widx::fp::Point &fp_pt_ = ::widx::fp::point(name);   \
        if (fp_pt_.armed.load(std::memory_order_relaxed))             \
            ::widx::fp::fireSlow(fp_pt_);                             \
    } while (0)

#else

#define WIDX_FAILPOINT(name)                                          \
    do {                                                              \
    } while (0)

#endif // WIDX_FAILPOINTS

} // namespace widx::fp

#endif // WIDX_COMMON_FAILPOINT_HH
