#include "model/analytical.hh"

#include <algorithm>

#include "common/logging.hh"

namespace widx::model {

double
hashCycles(const ModelParams &p)
{
    // AMAT for key fetches: keys stream, so only the first access to
    // each block misses — and that miss goes to memory (Section 3.2).
    const double miss_per_key = 1.0 / p.keysPerBlock;
    const double amat =
        p.l1Latency +
        miss_per_key *
            (p.llcLatency + p.keyLlcMissRatio * p.memLatency);
    return amat * p.memOpsHash + p.hashCompCycles;
}

double
walkNodeCycles(const ModelParams &p, double llc_miss_ratio)
{
    // One node-line access that always misses the L1-D, plus the key
    // access hitting the already-fetched line.
    const double miss_amat = p.l1Latency + p.llcLatency +
                             llc_miss_ratio * p.memLatency;
    const double hit_amat = p.l1Latency;
    return miss_amat + (p.memOpsWalk - 1.0) * hit_amat +
           p.walkCompCycles;
}

double
memOpsPerCycle(const ModelParams &p, double llc_miss_ratio,
               unsigned n_walkers)
{
    const double hash_rate = p.memOpsHash / hashCycles(p);
    const double walk_rate =
        p.memOpsWalk / walkNodeCycles(p, llc_miss_ratio);
    return double(n_walkers) * (hash_rate + walk_rate);
}

double
outstandingMisses(const ModelParams &p, unsigned n_walkers)
{
    return double(n_walkers) * (p.mlpHash + p.mlpWalk);
}

double
walkersPerMc(const ModelParams &p, double llc_miss_ratio)
{
    // Equation 4: off-chip block demands per operation.
    const double hash_demand_rate =
        (1.0 / p.keysPerBlock) * p.keyLlcMissRatio * p.memOpsHash /
        hashCycles(p);
    const double walk_demand_rate =
        llc_miss_ratio / walkNodeCycles(p, llc_miss_ratio);
    const double total = hash_demand_rate + walk_demand_rate;
    if (total <= 0.0)
        return 1e9; // no off-chip demand: unconstrained
    // Equation 5.
    return p.mcBlocksPerCycle() / total;
}

double
walkerUtilization(const ModelParams &p, double llc_miss_ratio,
                  unsigned n_walkers, double nodes_per_bucket)
{
    fatal_if(n_walkers == 0, "need at least one walker");
    const double util =
        walkNodeCycles(p, llc_miss_ratio) * nodes_per_bucket /
        (hashCycles(p) * double(n_walkers));
    return std::min(1.0, util);
}

unsigned
maxWalkersByL1Bandwidth(const ModelParams &p, double llc_miss_ratio)
{
    unsigned n = 0;
    while (memOpsPerCycle(p, llc_miss_ratio, n + 1) <= p.l1Ports &&
           n < 1024)
        ++n;
    return n;
}

unsigned
maxWalkersByMshrs(const ModelParams &p)
{
    unsigned n = 0;
    while (outstandingMisses(p, n + 1) <= p.mshrs && n < 1024)
        ++n;
    return n;
}

} // namespace widx::model
