/**
 * @file
 * The first-order analytical performance model of Section 3.2
 * (Equations 1-6), used to find the practical limits on the number of
 * walkers: L1-D bandwidth (Fig. 4a), L1-D MSHRs (Fig. 4b), off-chip
 * bandwidth (Fig. 4c), and dispatcher throughput (Fig. 5).
 *
 * The model assumes the Figure 3c design (parallel walkers, each with
 * a decoupled hashing unit, infinite queues): 64-bit probe keys
 * streaming at several keys per cache block (first touch per block
 * goes to memory), node accesses that always miss the L1-D, and an
 * LLC miss ratio that is the model's main parameter.
 *
 * The paper does not publish its constants; defaults below are
 * calibrated so the reproduced curves match the paper's anchors (see
 * EXPERIMENTS.md): the 1-ported L1 saturates beyond ~6 walkers at low
 * LLC miss ratios, outstanding misses grow at 2 per walker, one MC
 * sustains ~8 walkers at low and ~4-5 at high miss ratios, and one
 * dispatcher feeds ~4 walkers except for shallow buckets with low
 * miss ratios.
 */

#ifndef WIDX_MODEL_ANALYTICAL_HH
#define WIDX_MODEL_ANALYTICAL_HH

#include "common/types.hh"

namespace widx::model {

struct ModelParams
{
    // Latencies (cycles at 2 GHz).
    double l1Latency = 2.0;
    double llcLatency = 12.0; ///< L1 miss + crossbar + LLC hit
    double memLatency = 100.0;

    // Key hashing (per key).
    double keysPerBlock = 16.0;   ///< 4 B keys, 64 B blocks
    double keyLlcMissRatio = 1.0; ///< first touch misses the LLC
    double hashCompCycles = 5.0;
    double memOpsHash = 1.0;

    // Node walking (per node).
    double walkCompCycles = 2.0;
    double memOpsWalk = 2.0; ///< node line (miss) + key field (hit)

    // Per-unit memory-level parallelism (Equation 3).
    double mlpHash = 1.0;
    double mlpWalk = 1.0;

    // Machine constraints.
    double l1Ports = 2.0;
    double mshrs = 10.0;
    /** Effective per-MC bandwidth: 70% of 12.8 GB/s (Section 3.2). */
    double mcEffectiveGBps = 9.0;
    double clockGhz = 2.0;

    /** MC bandwidth in 64 B blocks per cycle. */
    double
    mcBlocksPerCycle() const
    {
        return mcEffectiveGBps * 1e9 /
               (double(kCacheBlockBytes) * clockGhz * 1e9);
    }
};

/** Equation 1 for the hashing unit: cycles to hash one key. */
double hashCycles(const ModelParams &p);

/** Equation 1 for a walker: cycles to walk one node at the given
 *  LLC miss ratio. */
double walkNodeCycles(const ModelParams &p, double llc_miss_ratio);

/** Equation 2: aggregate L1-D accesses per cycle for n walkers, each
 *  paired with a decoupled hashing unit. */
double memOpsPerCycle(const ModelParams &p, double llc_miss_ratio,
                      unsigned n_walkers);

/** Equation 3: maximum concurrently outstanding L1-D misses for n
 *  walkers. */
double outstandingMisses(const ModelParams &p, unsigned n_walkers);

/** Equations 4+5: walkers a single memory controller sustains. */
double walkersPerMc(const ModelParams &p, double llc_miss_ratio);

/** Equation 6: effective walker utilization with one dispatcher
 *  feeding n walkers, capped at 1. */
double walkerUtilization(const ModelParams &p, double llc_miss_ratio,
                         unsigned n_walkers, double nodes_per_bucket);

/** Largest walker count whose Equation 2 demand fits the L1 ports. */
unsigned maxWalkersByL1Bandwidth(const ModelParams &p,
                                 double llc_miss_ratio);

/** Largest walker count whose Equation 3 demand fits the MSHRs. */
unsigned maxWalkersByMshrs(const ModelParams &p);

} // namespace widx::model

#endif // WIDX_MODEL_ANALYTICAL_HH
