#include "service/index_service.hh"

#include <algorithm>

#include "common/failpoint.hh"
#include "common/logging.hh"
#include "obs/metrics.hh"
#include "obs/perf_group.hh"
#include "obs/trace.hh"
#include "swwalkers/coro.hh"

namespace widx::sw {

namespace detail {

/** Per-kind x per-component latency recorders. Kind indexes rows;
 *  columns are the timestamped components (see KindLatency). */
struct LatencyBoard
{
    enum Component
    {
        E2E = 0,
        Queue = 1,
        Drain = 2,
    };

    explicit LatencyBoard(unsigned shards)
        : rec{{{LatencyRecorder(shards), LatencyRecorder(shards),
                LatencyRecorder(shards)},
               {LatencyRecorder(shards), LatencyRecorder(shards),
                LatencyRecorder(shards)},
               {LatencyRecorder(shards), LatencyRecorder(shards),
                LatencyRecorder(shards)},
               {LatencyRecorder(shards), LatencyRecorder(shards),
                LatencyRecorder(shards)},
               {LatencyRecorder(shards), LatencyRecorder(shards),
                LatencyRecorder(shards)},
               {LatencyRecorder(shards), LatencyRecorder(shards),
                LatencyRecorder(shards)}}}
    {
        static_assert(kNumRequestKinds == 6,
                      "grow the row initializer above");
    }

    std::array<std::array<LatencyRecorder, 3>, kNumRequestKinds> rec;
};

/**
 * One submitted request. Merge slot s's records are written by
 * exactly one walker (the one that drained s's window) into
 * perSlot[s]; the walker that retires the last slot assembles the
 * result and signals the client. `remaining` decrements with
 * acq_rel so the assembler observes every other walker's slot
 * writes.
 *
 * Completion is sink-agnostic: finalize() assembles the result the
 * same way for every submission route, then deliver() hands it to
 * the one sink this request was submitted with — the blocking
 * ticket (result parked under the request mutex until get()), a
 * CompletionQueue push, or a callback. After a queue/callback
 * delivery nothing references the result again; the request frees
 * as soon as the last segment's shared_ptr drops.
 */
struct ServiceRequest
{
    /** How the result leaves the service. */
    enum class Sink : u8
    {
        Ticket,   ///< park under m/cv for ResultTicket::get()
        Queue,    ///< push {tag, result} onto cq
        Callback, ///< invoke cb on the completing thread
    };

    RequestKind kind = RequestKind::Count;
    std::span<const u64> keys;
    std::atomic<u64> remaining{0};
    std::atomic<u64> count{0}; ///< Count-kind tally
    std::vector<std::vector<MatchRec>> perSlot;
    /** Affine-routed: slots are scatter segments, not contiguous
     *  chunks, so the assembler merges them with one stable sort on
     *  key position (see finalize). */
    bool scattered = false;

    /** Absolute deadline (0 = none); written before publication. */
    u64 deadlineNs = 0;
    /** Completion status; transitions once, Ok -> non-Ok, via CAS —
     *  the first marker (deadline check, cancel sweep, reject path)
     *  wins and owns the matching stats counter. */
    std::atomic<u8> status{u8(Status::Ok)};

    bool
    trySetStatus(Status s)
    {
        u8 expect = u8(Status::Ok);
        return status.compare_exchange_strong(
            expect, u8(s), std::memory_order_relaxed);
    }

    /** Latency accounting (board null when recording is off).
     *  tSubmit is stamped in submit(); tFirstDrain by the first
     *  walker to claim a window holding one of this request's
     *  segments (CAS from 0, so exactly one claim wins). The
     *  claim's release on the remaining-countdown orders the stamp
     *  before the finalizer's reads. */
    LatencyBoard *board = nullptr;
    u64 tSubmit = 0;
    std::atomic<u64> tFirstDrain{0};

    /** Opt-in span tracing: nonzero traceId and a live ring stamp
     *  lifecycle events (see obs/trace.hh). */
    u64 traceId = 0;
    obs::TraceRing *trace = nullptr;

    /** Completion sink (fixed before the request is published to
     *  any queue; only the completing thread touches it after). */
    Sink sink = Sink::Ticket;
    std::shared_ptr<CompletionQueue> cq;
    CompletionFn cb;
    u64 tag = 0;

    /** ServiceStats::liveRequests gauge; shared so the decrement
     *  stays valid on tickets outliving the service. */
    std::shared_ptr<std::atomic<u64>> liveGauge;

    Mutex m;
    CondVar cv;
    bool done WIDX_GUARDED_BY(m) = false;
    ServiceResult result WIDX_GUARDED_BY(m);

    ~ServiceRequest()
    {
        if (liveGauge)
            liveGauge->fetch_sub(1, std::memory_order_relaxed);
    }

    /** Hand the assembled result to this request's sink. Queue and
     *  callback sinks release their resources immediately after
     *  delivery — an abandoned client cannot make the service
     *  retain completed-result memory. */
    void
    deliver(ServiceResult &&r)
    {
        switch (sink) {
        case Sink::Ticket: {
            {
                MutexLock lk(m);
                result = std::move(r);
                done = true;
            }
            cv.notifyAll();
            return;
        }
        case Sink::Queue:
            cq->push(tag, std::move(r));
            cq.reset();
            return;
        case Sink::Callback:
            // A throwing callback must not unwind into a walker's
            // drain loop (it would kill the walker and strand every
            // queued request) or a submitter's fast-fail path.
            try {
                cb(std::move(r));
            } catch (const std::exception &e) {
                warn("completion callback threw: %s", e.what());
            } catch (...) {
                warn("completion callback threw a non-exception");
            }
            cb = nullptr;
            return;
        }
    }

    void
    finalize()
    {
        ServiceResult r;
        if (kind == RequestKind::Count || isMutationKind(kind)) {
            // Mutations report their applied-key tally through the
            // same field the count path uses; they never carry recs.
            r.matches = count.load(std::memory_order_relaxed);
        } else {
            std::size_t total = 0;
            for (const auto &c : perSlot)
                total += c.size();
            r.recs.reserve(total);
            for (auto &c : perSlot)
                r.recs.insert(r.recs.end(), c.begin(), c.end());
            // Shared-mode slots are position-contiguous chunks, so
            // concatenation is already probeBatch order. Scattered
            // slots partition the positions by shard instead; each
            // slot is sorted by position and every position (and
            // every duplicate of a key — one hash, one shard) lives
            // in exactly one slot, so a stable sort on position
            // restores the exact probeBatch sequence.
            if (scattered)
                std::stable_sort(r.recs.begin(), r.recs.end(),
                                 [](const MatchRec &a,
                                    const MatchRec &b) {
                                     return a.i < b.i;
                                 });
            r.matches = total;
            perSlot.clear();
        }
        // Publication timestamp and latency accounting. The same
        // `now` closes both components, so per request
        // queueWait + drainTime == endToEnd exactly (the service
        // test asserts the sums match to the nanosecond). Requests
        // that never hit a walker (empty spans) have
        // tFirstDrain == tSubmit: all latency is queue-wait-free.
        // Only Ok completions are recorded: fast-failed tickets
        // (rejected / expired / cancelled) would drag the service
        // percentiles toward the reject path's microseconds and
        // poison the admission controller's signal.
        r.status = Status(status.load(std::memory_order_relaxed));
        r.traceId = traceId;
        const u64 now = monotonicNowNs();
        r.completedAtNs = now;
        if (trace && traceId)
            trace->record(traceId, obs::SpanPoint::DrainDone, now);
        if (board && r.status == Status::Ok) {
            const u64 fd = tFirstDrain.load(std::memory_order_relaxed);
            const u64 first = fd ? fd : now;
            auto &row = board->rec[unsigned(kind)];
            row[LatencyBoard::E2E].record(now - tSubmit);
            row[LatencyBoard::Queue].record(first - tSubmit);
            row[LatencyBoard::Drain].record(now - first);
        }
        deliver(std::move(r));
    }
};

} // namespace detail

const char *
statusName(Status s)
{
    switch (s) {
    case Status::Ok:
        return "Ok";
    case Status::Rejected:
        return "Rejected";
    case Status::DeadlineExceeded:
        return "DeadlineExceeded";
    case Status::Cancelled:
        return "Cancelled";
    case Status::UnsupportedVersion:
        return "UnsupportedVersion";
    }
    return "?";
}

void
CompletionQueue::push(u64 tag, ServiceResult &&result)
{
    {
        MutexLock lk(m_);
        ready_.push_back(Completion{tag, std::move(result)});
    }
    cv_.notifyOne();
}

std::size_t
CompletionQueue::reap(std::vector<Completion> &out, std::size_t max,
                      std::chrono::nanoseconds timeout)
{
    if (max == 0)
        return 0;
    MutexLock lk(m_);
    // Predicate loop inlined (see CondVar): wait until something is
    // ready, the queue closes, or the deadline passes.
    const auto deadline = std::chrono::steady_clock::now() + timeout;
    while (ready_.empty() && !closed_) {
        if (cv_.waitUntil(m_, deadline) == std::cv_status::timeout)
            break;
    }
    if (ready_.empty())
        return 0;
    std::size_t n;
    if (ready_.size() <= max && out.empty()) {
        // Common case — the reaper drains everything into an empty
        // batch: one vector swap, no per-completion moves under the
        // lock.
        n = ready_.size();
        out.swap(ready_);
    } else {
        n = std::min(max, ready_.size());
        out.insert(out.end(),
                   std::make_move_iterator(ready_.begin()),
                   std::make_move_iterator(ready_.begin() + n));
        ready_.erase(ready_.begin(), ready_.begin() + n);
    }
    return n;
}

std::size_t
CompletionQueue::size() const
{
    MutexLock lk(m_);
    return ready_.size();
}

void
CompletionQueue::close()
{
    {
        MutexLock lk(m_);
        closed_ = true;
    }
    cv_.notifyAll();
}

bool
CompletionQueue::closed() const
{
    MutexLock lk(m_);
    return closed_;
}

ServiceResult
ResultTicket::get()
{
    fatal_if(!req_, "get() on an empty ResultTicket");
    MutexLock lk(req_->m);
    while (!req_->done)
        req_->cv.wait(req_->m);
    ServiceResult r = std::move(req_->result);
    lk.unlock();
    req_.reset();
    return r;
}

WaitStatus
ResultTicket::waitFor(std::chrono::nanoseconds timeout) const
{
    fatal_if(!req_, "waitFor() on an empty ResultTicket");
    MutexLock lk(req_->m);
    const auto deadline = std::chrono::steady_clock::now() + timeout;
    while (!req_->done) {
        if (req_->cv.waitUntil(req_->m, deadline) ==
            std::cv_status::timeout)
            return req_->done ? WaitStatus::Ready
                              : WaitStatus::Timeout;
    }
    return WaitStatus::Ready;
}

IndexService::IndexService(const db::HashIndex &index,
                           const ServiceConfig &cfg)
    : index_(index), cfg_(cfg)
{
    start();
}

IndexService::IndexService(const db::Column &buildKeys,
                           const db::IndexSpec &spec,
                           const ServiceConfig &cfg)
    : index_(buildKeys, spec, cfg.shards, cfg.numa,
             cfg.pinWalkers, cfg.topology, cfg.mutation),
      cfg_(cfg)
{
    start();
}

void
IndexService::start()
{
    chunk_ = std::clamp<std::size_t>(
        cfg_.pipeline.batch ? cfg_.pipeline.batch
                            : db::HashIndex::kProbeBatch,
        1, db::HashIndex::kMaxProbeBatch);
    width_ = std::clamp(cfg_.width, 1u, kMaxWidth);
    topo_ = cfg_.topology ? cfg_.topology : &Topology::host();
    affine_ = cfg_.affineRouting && index_.shards() > 1;
    const unsigned walkers =
        std::clamp(cfg_.walkers, 1u, kMaxWalkers);
    // The admission controller steers on measured queue-wait, so
    // adaptive mode forces the timestamps on even when the caller
    // turned latency recording off.
    if (cfg_.admission.adaptive)
        adm_ = std::make_unique<AdmissionController>(
            cfg_.admission, u32(chunk_), walkers + 1);
    if (cfg_.recordLatency || adm_)
        board_ = std::make_unique<detail::LatencyBoard>(
            walkers + 1); // walkers finalize; submitters do empties
    if (cfg_.watchdogPeriodNs > 0)
        beats_.reset(new WalkerBeat[walkers]);
    wobs_.reset(new WalkerObs[walkers]);
    sobs_.reset(new ShardObs[index_.shards()]);
    trace_ = cfg_.trace.get();

    if (affine_) {
        const unsigned S = index_.shards();
        const unsigned N = topo_->nodes();
        shardSealed_.resize(S);
        shardOpen_.resize(S);
        for (unsigned s = 0; s < S; ++s)
            shardOpen_[s].shard = int(s);

        // Home shard sets: walkers block-distribute over the nodes
        // exactly like shards do, and each node's shards deal
        // round-robin to its walkers — so a shard's home walkers
        // sit on the node holding (under NodeBound) its arena.
        // Shards whose node has no walker deal round-robin across
        // all walkers, preserving the exactly-one-home-walker
        // invariant (homeShards() exposes it; stealing covers the
        // rest of the pool).
        walkerNode_.resize(walkers);
        std::vector<std::vector<unsigned>> nodeWalkers(N);
        for (unsigned w = 0; w < walkers; ++w) {
            walkerNode_[w] = topo_->nodeForSlot(w, walkers);
            nodeWalkers[walkerNode_[w]].push_back(w);
        }
        home_.assign(walkers, {});
        std::vector<unsigned> deal(N, 0);
        std::vector<unsigned> orphans;
        for (unsigned s = 0; s < S; ++s) {
            const unsigned node = index_.shardNode(s);
            if (node < N && !nodeWalkers[node].empty()) {
                const auto &ws = nodeWalkers[node];
                home_[ws[deal[node]++ % ws.size()]].push_back(s);
            } else {
                orphans.push_back(s);
            }
        }
        for (unsigned i = 0; i < orphans.size(); ++i)
            home_[i % walkers].push_back(orphans[i]);

        // Pin targets: cycle each node's walkers over its CPUs.
        walkerCpu_.resize(walkers);
        std::vector<unsigned> next(N, 0);
        for (unsigned w = 0; w < walkers; ++w)
            walkerCpu_[w] = topo_->cpuOnNode(
                walkerNode_[w], next[walkerNode_[w]]++);
    } else {
        home_.assign(walkers, {});
    }

    threads_.reserve(walkers);
    for (unsigned w = 0; w < walkers; ++w)
        threads_.emplace_back([this, w] { walkerMain(w); });
    if (beats_)
        watchdog_ = std::thread([this] { watchdogMain(); });
}

IndexService::~IndexService()
{
    stop();
}

void
IndexService::stop()
{
    // Under the same lock walkers claim under: refuse new work and
    // strand every unclaimed window. Windows a walker already owns
    // are not here — they finish draining normally (step 3 of the
    // header's ordering contract).
    std::vector<Window> orphans;
    {
        MutexLock lk(m_);
        stop_ = true;
        for (Window &w : sealed_)
            orphans.push_back(std::move(w));
        sealed_.clear();
        if (open_.keys > 0) {
            orphans.push_back(std::move(open_));
            open_ = Window{};
        }
        for (auto &dq : shardSealed_) {
            for (Window &w : dq)
                orphans.push_back(std::move(w));
            dq.clear();
        }
        for (Window &w : shardOpen_) {
            if (w.keys == 0)
                continue;
            const int s = w.shard;
            orphans.push_back(std::move(w));
            w = Window{};
            w.shard = s;
        }
        sealedCount_ = 0;
        openKeys_ = 0;
        queuedKeys_.store(0, std::memory_order_relaxed);
    }
    cv_.notifyAll();

    // Complete the stranded tickets outside the lock (completion
    // takes each request's own mutex and notifies its waiters).
    // Requests with segments in an in-flight window keep a nonzero
    // countdown here; the draining walker retires those and the
    // last retirement — wherever it happens — publishes the
    // (Cancelled, possibly partial) result.
    for (Window &w : orphans)
        for (const Segment &seg : w.segs) {
            if (seg.req->trySetStatus(Status::Cancelled))
                nCancelled_.fetch_add(1, std::memory_order_relaxed);
            retireSegment(seg);
        }

    // Join everything. Serialized so stop() is idempotent and safe
    // to race with the destructor (joinable() goes false exactly
    // once, under the join lock).
    MutexLock jlk(joinM_);
    for (auto &t : threads_)
        if (t.joinable())
            t.join();
    if (watchdog_.joinable()) {
        {
            MutexLock lk(wdM_);
            wdStop_ = true;
        }
        wdCv_.notifyAll();
        watchdog_.join();
    }
}

std::shared_ptr<detail::ServiceRequest>
IndexService::makeRequest(RequestKind kind,
                          std::span<const u64> keys,
                          const SubmitOptions &opt)
{
    auto req = std::make_shared<detail::ServiceRequest>();
    req->kind = kind;
    req->keys = keys;
    req->deadlineNs = opt.deadlineNs;
    req->board = board_.get();
    if (trace_ && opt.traceId) {
        req->traceId = opt.traceId;
        req->trace = trace_;
    }
    if (board_ || req->trace)
        req->tSubmit = monotonicNowNs();
    if (req->trace)
        req->trace->record(req->traceId, obs::SpanPoint::Submit,
                           req->tSubmit);
    liveGauge_->fetch_add(1, std::memory_order_relaxed);
    req->liveGauge = liveGauge_;

    nRequests_.fetch_add(1, std::memory_order_relaxed);
    nKeys_.fetch_add(keys.size(), std::memory_order_relaxed);
    return req;
}

void
IndexService::submitRequest(
    const std::shared_ptr<detail::ServiceRequest> &req,
    RequestKind kind, std::span<const u64> keys,
    const SubmitOptions &opt)
{
    if (keys.empty()) {
        // Nothing to do: complete before the submission returns. No
        // walker ever claims this request, so it accrues no
        // queue-wait (tFirstDrain == tSubmit).
        req->tFirstDrain.store(req->tSubmit,
                               std::memory_order_relaxed);
        finishRequest(*req);
        return;
    }

    // Dead on arrival: a deadline already in the past fails fast
    // without touching the queues.
    if (opt.deadlineNs) {
        const u64 now =
            board_ ? req->tSubmit : monotonicNowNs();
        if (now > opt.deadlineNs) {
            req->trySetStatus(Status::DeadlineExceeded);
            nExpired_.fetch_add(1, std::memory_order_relaxed);
            req->tFirstDrain.store(req->tSubmit,
                                   std::memory_order_relaxed);
            finishRequest(*req);
            return;
        }
    }

    // Writer path: mutations never enter the admission queues.
    // They apply inline on the submitting thread (the per-shard
    // writer mutex inside ShardedIndex is the serialization point,
    // and probes stay lock-free around them) and complete through
    // the same sink as every read.
    if (isMutationKind(kind)) {
        applyMutation(req, kind, keys, opt);
        return;
    }

    const bool admitted = affine_
                              ? submitAffine(req, kind, keys)
                              : submitShared(req, kind, keys);
    if (!admitted) {
        // The admission path set the status (Rejected over budget,
        // Cancelled after stop); complete here, on the submitting
        // thread — the fast-fail that keeps backpressure cheap.
        if (Status(req->status.load(std::memory_order_relaxed)) ==
            Status::Rejected)
            nRejected_.fetch_add(1, std::memory_order_relaxed);
        else
            nCancelled_.fetch_add(1, std::memory_order_relaxed);
        req->tFirstDrain.store(req->tSubmit,
                               std::memory_order_relaxed);
        req->finalize();
    }
}

void
IndexService::applyMutation(
    const std::shared_ptr<detail::ServiceRequest> &req,
    RequestKind kind, std::span<const u64> keys,
    const SubmitOptions &opt)
{
    // No walker ever claims a mutation, so its queue-wait is zero by
    // construction; end-to-end latency is the writer-path apply.
    req->tFirstDrain.store(req->tSubmit, std::memory_order_relaxed);

    // Rejected, not undefined: a view-mode service wraps an index it
    // does not own, and Insert/Upsert without one payload per key
    // has no meaning. Nothing was applied in either case.
    const bool needPayloads = kind != RequestKind::Delete;
    if (!index_.liveMutable() ||
        (needPayloads && opt.payloads.size() != keys.size())) {
        req->trySetStatus(Status::Rejected);
        nRejected_.fetch_add(1, std::memory_order_relaxed);
        finishRequest(*req);
        return;
    }

    const MutOp op =
        MutOp(unsigned(kind) - unsigned(RequestKind::Insert));
    const u64 applied =
        index_.applyMutations(op, keys, opt.payloads);
    req->count.store(applied, std::memory_order_relaxed);
    finishRequest(*req);
}

ResultTicket
IndexService::submit(RequestKind kind, std::span<const u64> keys,
                     const SubmitOptions &opt)
{
    auto req = makeRequest(kind, keys, opt);
    submitRequest(req, kind, keys, opt);
    return ResultTicket(std::move(req));
}

void
IndexService::submitAsync(RequestKind kind,
                          std::span<const u64> keys,
                          const SubmitOptions &opt,
                          std::shared_ptr<CompletionQueue> cq,
                          u64 tag)
{
    fatal_if(!cq, "submitAsync() with a null CompletionQueue");
    auto req = makeRequest(kind, keys, opt);
    req->sink = detail::ServiceRequest::Sink::Queue;
    req->cq = std::move(cq);
    req->tag = tag;
    submitRequest(req, kind, keys, opt);
}

void
IndexService::submitAsync(RequestKind kind,
                          std::span<const u64> keys,
                          const SubmitOptions &opt,
                          CompletionQueue &cq, u64 tag)
{
    // Non-owning aliasing handle: the caller guarantees the queue
    // outlives every outstanding completion (see header contract).
    submitAsync(kind, keys, opt,
                std::shared_ptr<CompletionQueue>(
                    std::shared_ptr<void>(), &cq),
                tag);
}

void
IndexService::submitAsync(RequestKind kind,
                          std::span<const u64> keys,
                          const SubmitOptions &opt, CompletionFn cb)
{
    fatal_if(!cb, "submitAsync() with an empty callback");
    auto req = makeRequest(kind, keys, opt);
    req->sink = detail::ServiceRequest::Sink::Callback;
    req->cb = std::move(cb);
    submitRequest(req, kind, keys, opt);
}

u32
IndexService::holdThreshold() const
{
    if (adm_)
        return std::min(adm_->holdKeys(), u32(chunk_));
    return cfg_.coalesceTails ? u32(chunk_) : 1;
}

u64
IndexService::queuedKeyBound() const
{
    u64 bound = cfg_.maxQueuedKeys ? cfg_.maxQueuedKeys : ~u64{0};
    if (adm_)
        bound = std::min(bound, adm_->budgetKeys());
    return bound;
}

void
IndexService::retireSegment(const Segment &seg)
{
    detail::ServiceRequest &req = *seg.req;
    if (req.remaining.fetch_sub(1, std::memory_order_acq_rel) == 1)
        finishRequest(req);
}

void
IndexService::finishRequest(detail::ServiceRequest &req)
{
    // Status transitions are done by the time the last segment
    // retires (markers run at claim/cancel, which precede retire),
    // so this read is the final verdict.
    if (Status(req.status.load(std::memory_order_relaxed)) ==
        Status::Ok)
        nCompletedOk_.fetch_add(1, std::memory_order_relaxed);
    req.finalize();
}

bool
IndexService::submitShared(
    std::shared_ptr<detail::ServiceRequest> req, RequestKind kind,
    std::span<const u64> keys)
{
    const u64 num_chunks = (keys.size() + chunk_ - 1) / chunk_;
    req->remaining.store(num_chunks, std::memory_order_relaxed);
    if (kind != RequestKind::Count)
        req->perSlot.resize(num_chunks);

    // The seal threshold: how full the open window may get before
    // it seals. chunk = full coalescing, 1 = every tail seals its
    // own window (the static coalesceTails axis); the admission
    // controller moves it continuously in between.
    const u32 hold = holdThreshold();

    unsigned added = 0;
    {
        MutexLock lk(m_);
        if (stop_) {
            req->trySetStatus(Status::Cancelled);
            return false;
        }
        // Backpressure: admission happens only while the parked-key
        // total is under the bound (checked whole-request — a
        // request is never split across the admission decision — so
        // the queue overshoots by at most one request).
        if (queuedKeys_.load(std::memory_order_relaxed) >=
            queuedKeyBound()) {
            req->trySetStatus(Status::Rejected);
            return false;
        }
        // Full chunks seal immediately as single-segment windows.
        std::size_t c = 0;
        std::size_t base = 0;
        for (; base + chunk_ <= keys.size();
             base += chunk_, ++c) {
            Window w;
            w.segs.push_back(Segment{req, c, base, u32(chunk_)});
            w.keys = u32(chunk_);
            noteSeal(w); // full chunks seal at admission
            sealed_.push_back(std::move(w));
            ++added;
        }
        // The sub-chunk tail coalesces into the shared open window
        // with other requests' tails (admission batching). Tails
        // are never split: seal the open window first if this one
        // would overflow its capacity; seal behind it once it
        // reaches the hold threshold.
        if (base < keys.size()) {
            const u32 len = u32(keys.size() - base);
            if (open_.keys + len > chunk_) {
                noteSeal(open_);
                sealed_.push_back(std::move(open_));
                open_ = Window{};
                ++added;
            }
            open_.segs.push_back(Segment{req, c, base, len});
            open_.keys += len;
            if (open_.keys >= hold) {
                noteSeal(open_);
                sealed_.push_back(std::move(open_));
                open_ = Window{};
                ++added;
            }
        }
        queuedKeys_.fetch_add(keys.size(),
                              std::memory_order_relaxed);
    }
    // Tail-only submissions still wake one walker: an idle walker
    // grabs the open window rather than waiting for it to fill.
    if (added > 1)
        cv_.notifyAll();
    else
        cv_.notifyOne();
    return true;
}

bool
IndexService::submitAffine(
    std::shared_ptr<detail::ServiceRequest> req, RequestKind kind,
    std::span<const u64> keys)
{
    // Backpressure pre-check, relaxed and lock-free: an over-budget
    // submission should not pay for admission hashing and staging
    // it is about to throw away. Authoritative re-check under the
    // lock below.
    if (queuedKeys_.load(std::memory_order_relaxed) >=
        queuedKeyBound()) {
        req->trySetStatus(Status::Rejected);
        return false;
    }

    // Admission hashing: the dispatcher stage's vector hash runs on
    // the submitting thread, once, so the scatter can route by
    // shard and the drains start from pre-hashed keys.
    const std::size_t n = keys.size();
    std::vector<u64> hashes(n);
    for (std::size_t base = 0; base < n;
         base += db::HashIndex::kMaxProbeBatch) {
        const std::size_t len = std::min<std::size_t>(
            db::HashIndex::kMaxProbeBatch, n - base);
        index_.hashBatch(keys.subspan(base, len),
                         {hashes.data() + base, len});
    }
    req->scattered = kind != RequestKind::Count;

    // Classify outside the lock: per-shard staging runs of
    // (key, hash, position), exactly sized. Walkers and concurrent
    // submitters must not stall behind per-key work on m_ — under
    // the lock the scatter is only bulk splices of these runs plus
    // O(segments) bookkeeping.
    const unsigned S = index_.shards();
    struct Staged
    {
        std::vector<u64> keys, hashes;
        std::vector<std::size_t> pos;
    };
    std::vector<u32> shard_of(n);
    std::vector<std::size_t> cnt(S, 0);
    for (std::size_t i = 0; i < n; ++i) {
        shard_of[i] = index_.shardOf(hashes[i]);
        ++cnt[shard_of[i]];
    }
    std::vector<Staged> staged(S);
    for (unsigned s = 0; s < S; ++s) {
        staged[s].keys.reserve(cnt[s]);
        staged[s].hashes.reserve(cnt[s]);
        staged[s].pos.reserve(cnt[s]);
    }
    for (std::size_t i = 0; i < n; ++i) {
        Staged &st = staged[shard_of[i]];
        st.keys.push_back(keys[i]);
        st.hashes.push_back(hashes[i]);
        st.pos.push_back(i);
    }

    // Seal threshold, as in submitShared (hold = 1 reproduces
    // coalesceTails off: every fill seals behind itself).
    const u32 hold = holdThreshold();

    std::size_t slots = 0;
    {
        MutexLock lk(m_);
        if (stop_) {
            req->trySetStatus(Status::Cancelled);
            return false;
        }
        if (queuedKeys_.load(std::memory_order_relaxed) >=
            queuedKeyBound()) {
            req->trySetStatus(Status::Rejected);
            return false;
        }
        for (unsigned s = 0; s < S; ++s) {
            const Staged &st = staged[s];
            std::size_t done = 0;
            while (done < st.keys.size()) {
                // Fill the shard's open window up to the chunk
                // size: one new segment per (request, window),
                // coalescing with other requests' tails already
                // parked there.
                Window &w = shardOpen_[s];
                const std::size_t take = std::min<std::size_t>(
                    chunk_ - w.keys, st.keys.size() - done);
                w.segs.push_back(Segment{req, slots++,
                                         w.wkeys.size(),
                                         u32(take)});
                w.wkeys.insert(w.wkeys.end(),
                               st.keys.begin() + done,
                               st.keys.begin() + done + take);
                w.whashes.insert(w.whashes.end(),
                                 st.hashes.begin() + done,
                                 st.hashes.begin() + done + take);
                w.wpos.insert(w.wpos.end(), st.pos.begin() + done,
                              st.pos.begin() + done + take);
                w.keys += u32(take);
                openKeys_ += take;
                done += take;
                if (w.keys >= hold) {
                    openKeys_ -= w.keys;
                    noteSeal(w);
                    shardSealed_[s].push_back(std::move(w));
                    shardOpen_[s] = Window{};
                    shardOpen_[s].shard = int(s);
                    ++sealedCount_;
                }
            }
        }
        queuedKeys_.fetch_add(n, std::memory_order_relaxed);
        // Published under the lock, before any walker can pop a
        // window referencing these slots: the count is only known
        // once the scatter has run, and perSlot must never resize
        // concurrently with a drainer's write.
        req->remaining.store(slots, std::memory_order_relaxed);
        if (kind != RequestKind::Count)
            req->perSlot.resize(slots);
    }
    // A scatter typically touches several shard queues; wake the
    // pool and let home-first claiming sort out who drains what.
    cv_.notifyAll();
    return true;
}

void
IndexService::walkerMain(unsigned w)
{
    if (cfg_.pinWalkers) {
        // Affine routing pins each walker onto its home node so
        // home windows drain next to (NodeBound) their shard's
        // arena; otherwise fold the walker index over the usable
        // CPUs.
        if (affine_)
            pinThreadToCpu(*topo_, walkerCpu_[w]);
        else
            pinCurrentThread(w);
    }
    // Hardware-counter sampling: a per-thread perf event group,
    // started/stopped around every Nth window drain. Opened on this
    // thread so the group counts this walker; where perf access is
    // denied the group degrades (available() false) and the sample
    // branch never fires.
    std::unique_ptr<obs::PerfGroup> perf;
    if (cfg_.perfSamplePeriod > 0)
        perf = std::make_unique<obs::PerfGroup>();
    // Live indexes: claim one reader slot for this walker's lifetime
    // and pin it around every window drain, so a concurrent writer's
    // reclamation (limbo nodes, replaced shard arrays) waits out any
    // chain walk in progress. Read-only services skip all of it.
    EpochManager *epochs = nullptr;
    unsigned eslot = 0;
    if (index_.liveMutable()) {
        epochs = &index_.epochs();
        eslot = epochs->acquireSlot();
    }
    u64 drainedWindows = 0;
    for (;;) {
        // Fault injection (compiled out by default): delay a walker
        // between wake-up and claim so tests can race submissions
        // against a lagging claimer.
        WIDX_FAILPOINT("service.walker_claim_delay");
        Window win;
        bool stolen = false;
        {
            MutexLock lk(m_);
            // Park predicate, inlined so the guarded reads sit in
            // the scope the analysis can see the lock in: wake on
            // stop or on anything claimable.
            while (!stop_ &&
                   (affine_
                        ? sealedCount_ == 0 && openKeys_ == 0
                        : sealed_.empty() && open_.keys == 0))
                cv_.wait(m_);
            const bool got = affine_ ? claimAffine(w, win, stolen)
                                     : claimShared(win);
            if (!got) {
                // stop_ and every queue drained
                if (epochs)
                    epochs->releaseSlot(eslot);
                return;
            }
        }
        nWindows_.fetch_add(1, std::memory_order_relaxed);
        if (win.segs.size() > 1)
            nCoalesced_.fetch_add(1, std::memory_order_relaxed);
        if (win.shard >= 0) {
            nAffine_.fetch_add(1, std::memory_order_relaxed);
            ShardObs &so = sobs_[unsigned(win.shard)];
            so.drained.fetch_add(1, std::memory_order_relaxed);
            if (stolen)
                so.stolen.fetch_add(1, std::memory_order_relaxed);
        }
        if (stolen)
            nStolen_.fetch_add(1, std::memory_order_relaxed);
        wobs_[w].windows.fetch_add(1, std::memory_order_relaxed);
        bool sampleHw = false;
        if (perf && perf->available())
            sampleHw = drainedWindows++ % cfg_.perfSamplePeriod == 0;
        // Heartbeat: claim time published before the drain starts,
        // so a stall anywhere inside it is attributable.
        if (beats_) {
            beats_[w].epoch.fetch_add(1,
                                      std::memory_order_relaxed);
            beats_[w].busySinceNs.store(
                monotonicNowNs(), std::memory_order_relaxed);
        }
        // Stall a walker that owns a claimed-but-undrained window:
        // the chaos tests' main lever (requests must flow around it
        // via stealing, and the watchdog must report it).
        WIDX_FAILPOINT("service.walker_stall");
        if (sampleHw)
            perf->start();
        if (epochs)
            epochs->pin(eslot);
        processWindow(win);
        if (epochs)
            epochs->unpin(eslot);
        if (sampleHw) {
            perf->stop();
            const obs::PerfGroup::Counts c = perf->read();
            if (c.valid) {
                WalkerObs &wo = wobs_[w];
                wo.sampledWindows.fetch_add(
                    1, std::memory_order_relaxed);
                wo.sampledProbes.fetch_add(
                    win.keys, std::memory_order_relaxed);
                wo.cycles.fetch_add(c.cycles,
                                    std::memory_order_relaxed);
                wo.instructions.fetch_add(
                    c.instructions, std::memory_order_relaxed);
                wo.llcMisses.fetch_add(c.llcMisses,
                                       std::memory_order_relaxed);
                wo.dtlbMisses.fetch_add(c.dtlbMisses,
                                        std::memory_order_relaxed);
            }
        }
        if (beats_) {
            beats_[w].busySinceNs.store(
                0, std::memory_order_relaxed);
            beats_[w].epoch.fetch_add(1,
                                      std::memory_order_relaxed);
        }
        if (adm_)
            adm_->observe(monotonicNowNs());
    }
}

void
IndexService::watchdogMain()
{
    const unsigned n = unsigned(threads_.size());
    // One *count* per stuck window (epoch dedup), but warnings are
    // rate-limited rather than one-shot: a persistent stall re-warns
    // once per additional threshold window, so a wedged walker stays
    // visible in the log without flooding it at the watchdog period.
    std::vector<u64> reported(n, ~u64{0});
    std::vector<u64> warnedBucket(n, 0);
    MutexLock lk(wdM_);
    for (;;) {
        // Park for up to one period; stop() wakes it immediately. A
        // spurious wake just runs the scan early, which is harmless
        // (the scan is cheap and stall ages are absolute).
        wdCv_.waitFor(
            wdM_, std::chrono::nanoseconds(cfg_.watchdogPeriodNs));
        if (wdStop_)
            return;
        const u64 now = monotonicNowNs();
        for (unsigned w = 0; w < n; ++w) {
            const u64 busy = beats_[w].busySinceNs.load(
                std::memory_order_relaxed);
            if (busy == 0 || now <= busy ||
                now - busy < cfg_.stallThresholdNs)
                continue;
            const u64 age = now - busy;
            const u64 ep =
                beats_[w].epoch.load(std::memory_order_relaxed);
            if (reported[w] != ep) {
                reported[w] = ep;
                warnedBucket[w] = age / cfg_.stallThresholdNs;
                nStalls_.fetch_add(1, std::memory_order_relaxed);
                wobs_[w].stalls.fetch_add(1,
                                          std::memory_order_relaxed);
                warn("index service watchdog: walker %u stuck in "
                     "one window drain for %.1f ms (threshold "
                     "%.1f ms)",
                     w, double(age) / 1e6,
                     double(cfg_.stallThresholdNs) / 1e6);
                continue;
            }
            const u64 bucket = age / cfg_.stallThresholdNs;
            if (bucket > warnedBucket[w]) {
                warnedBucket[w] = bucket;
                warn("index service watchdog: walker %u still "
                     "stuck in the same window drain, last "
                     "heartbeat %.1f ms ago",
                     w, double(age) / 1e6);
            }
        }
    }
}

bool
IndexService::claimShared(Window &win)
{
    if (!sealed_.empty()) {
        win = std::move(sealed_.front());
        sealed_.pop_front();
        queuedKeys_.fetch_sub(win.keys,
                              std::memory_order_relaxed);
        return true;
    }
    if (open_.keys > 0) {
        // Nothing sealed and this walker is idle: serve the
        // coalescing window now instead of stalling its requests
        // (latency floor for lone small probes).
        win = std::move(open_);
        open_ = Window{};
        queuedKeys_.fetch_sub(win.keys,
                              std::memory_order_relaxed);
        return true;
    }
    return false;
}

bool
IndexService::claimAffine(unsigned w, Window &win, bool &stolen)
{
    const unsigned S = index_.shards();
    auto popSealed = [&](unsigned s) {
        win = std::move(shardSealed_[s].front());
        shardSealed_[s].pop_front();
        --sealedCount_;
        queuedKeys_.fetch_sub(win.keys,
                              std::memory_order_relaxed);
    };
    auto grabOpen = [&](unsigned s) {
        openKeys_ -= shardOpen_[s].keys;
        win = std::move(shardOpen_[s]);
        shardOpen_[s] = Window{};
        shardOpen_[s].shard = int(s);
        queuedKeys_.fetch_sub(win.keys,
                              std::memory_order_relaxed);
    };
    // Home queues first — sealed before open, same as the shared
    // path — then steal across the other shards so a skewed shard
    // never idles the pool while its home walkers are behind.
    if (sealedCount_ > 0) {
        for (unsigned s : home_[w])
            if (!shardSealed_[s].empty()) {
                popSealed(s);
                stolen = false;
                return true;
            }
        for (unsigned s = 0; s < S; ++s)
            if (!shardSealed_[s].empty()) {
                popSealed(s);
                stolen = true;
                return true;
            }
    }
    if (openKeys_ > 0) {
        for (unsigned s : home_[w])
            if (shardOpen_[s].keys > 0) {
                grabOpen(s);
                stolen = false;
                return true;
            }
        for (unsigned s = 0; s < S; ++s)
            if (shardOpen_[s].keys > 0) {
                grabOpen(s);
                stolen = true;
                return true;
            }
    }
    return false;
}

void
IndexService::processWindow(Window &win)
{
    // Queue-wait ends here: one clock read per window, CASed into
    // each distinct request's first-drain slot (only the first
    // claim of a request's segments wins — for single-segment
    // requests that puts coalescing hold and sealed-queue depth
    // entirely in the queue-wait component; see KindLatency). The
    // winning claim also feeds the admission controller's windowed
    // queue-wait signal.
    u64 now = 0;
    if (board_ || trace_) {
        now = monotonicNowNs();
        for (const Segment &seg : win.segs) {
            u64 expect = 0;
            if (!seg.req->tFirstDrain.compare_exchange_strong(
                    expect, now, std::memory_order_relaxed))
                continue;
            if (adm_)
                adm_->recordQueueWait(now - seg.req->tSubmit);
            if (seg.req->trace)
                seg.req->trace->record(seg.req->traceId,
                                       obs::SpanPoint::FirstClaim,
                                       now);
        }
    }

    // Deadline cut: a segment whose request is already past its
    // deadline retires without draining (fast failure instead of
    // spending walker time on a result the client has written
    // off). Live segments compact forward so the drain below sees
    // a dense window.
    std::size_t live = 0;
    for (std::size_t s = 0; s < win.segs.size(); ++s) {
        Segment &seg = win.segs[s];
        bool expiredNow = false;
        if (const u64 dl = seg.req->deadlineNs) {
            if (now == 0)
                now = monotonicNowNs();
            expiredNow = now > dl;
        }
        if (expiredNow) {
            if (seg.req->trySetStatus(Status::DeadlineExceeded))
                nExpired_.fetch_add(1, std::memory_order_relaxed);
            retireSegment(seg);
        } else {
            if (live != s)
                win.segs[live] = std::move(win.segs[s]);
            ++live;
        }
    }
    const bool compacted = live != win.segs.size();
    if (compacted)
        win.segs.resize(live);
    if (win.segs.empty())
        return; // every segment expired; nothing to drain

    if (win.shard >= 0) {
        // Affine window: every key belongs to one shard, so the
        // drain runs against that shard's flat HashIndex (no
        // per-key shard resolve; per-shard AVX2 tag filter).
        drainAffine(win, compacted);
        return;
    }
    // Single-shard services (including views of an existing index)
    // drain against the flat HashIndex — no per-key shard resolve,
    // and the AVX2 tag filter applies.
    if (const db::HashIndex *flat = index_.flatIndex())
        drainWindow(*flat, win);
    else
        drainWindow(index_, win);
}

template <typename Index>
void
IndexService::drainWindow(const Index &idx, Window &win)
{
    u64 wkeys[db::HashIndex::kMaxProbeBatch];
    u64 hashes[db::HashIndex::kMaxProbeBatch];
    Ref refs[db::HashIndex::kMaxProbeBatch];

    // Dispatcher stage, run by the draining walker on its own core:
    // gather the window's segments and vector-hash each one.
    std::size_t off = 0;
    for (std::size_t s = 0; s < win.segs.size(); ++s) {
        const Segment &seg = win.segs[s];
        const std::span<const u64> keys =
            seg.req->keys.subspan(seg.base, seg.len);
        std::copy(keys.begin(), keys.end(), wkeys + off);
        idx.hashBatch(keys, {hashes + off, keys.size()});
        for (u32 j = 0; j < seg.len; ++j)
            refs[off + j] = Ref{u32(s), seg.base + j};
        off += seg.len;
    }

    drainGathered(idx, win, wkeys, hashes, refs, off, false);
}

void
IndexService::drainAffine(Window &win, bool compacted)
{
    const db::HashIndex &shard = index_.shard(unsigned(win.shard));
    if (!compacted) {
        // Keys and hashes were materialized at admission; only the
        // ordinal -> (segment, position) map is built here.
        Ref refs[db::HashIndex::kMaxProbeBatch];
        for (std::size_t s = 0; s < win.segs.size(); ++s) {
            const Segment &seg = win.segs[s];
            for (u32 j = 0; j < seg.len; ++j)
                refs[seg.base + j] =
                    Ref{u32(s), win.wpos[seg.base + j]};
        }
        drainGathered(shard, win, win.wkeys.data(),
                      win.whashes.data(), refs, win.wkeys.size(),
                      true);
        return;
    }
    // The deadline cut retired segments, leaving holes in the
    // window's key/hash arrays (drainGathered walks a dense ordinal
    // range). Gather the surviving segments' keys into dense
    // scratch — the expired keys must not be probed at all, which
    // is the point of failing fast.
    u64 wkeys[db::HashIndex::kMaxProbeBatch];
    u64 whashes[db::HashIndex::kMaxProbeBatch];
    Ref refs[db::HashIndex::kMaxProbeBatch];
    std::size_t off = 0;
    for (std::size_t s = 0; s < win.segs.size(); ++s) {
        const Segment &seg = win.segs[s];
        for (u32 j = 0; j < seg.len; ++j) {
            wkeys[off] = win.wkeys[seg.base + j];
            whashes[off] = win.whashes[seg.base + j];
            refs[off] = Ref{u32(s), win.wpos[seg.base + j]};
            ++off;
        }
    }
    drainGathered(shard, win, wkeys, whashes, refs, off, true);
}

template <typename Index>
void
IndexService::drainGathered(const Index &idx, Window &win,
                            const u64 *wkeys, const u64 *hashes,
                            const Ref *refs, std::size_t off,
                            bool noteAggregate)
{
    // Tag sweep: batched fingerprint filter plus survivor-only
    // header prefetches (the drain's own tag check stays off — the
    // stream skips rejected ordinals). Adaptive mode keeps its
    // stats alive after flipping the filter off by running every
    // 32nd untagged window tagged anyway: the sweep is correct
    // either way (no false negatives), and the periodic sample is
    // what lets the recommendation swing back on when traffic turns
    // selective again. The adaptive decision always reads the
    // service-level aggregate (index_), not a single shard's view.
    // Slow this drain down (compiled out by default): models a
    // walker losing its core or hitting pathological memory — the
    // window is claimed, so its requests are committed to this
    // walker and only completion (not stealing) can finish them.
    WIDX_FAILPOINT("service.slow_drain");

    bool tagged = effectiveTagged(index_, cfg_.pipeline);
    if (cfg_.pipeline.adaptiveTags && !tagged &&
        nUntagged_.fetch_add(1, std::memory_order_relaxed) % 32 ==
            0)
        tagged = true;
    u64 bits[db::HashIndex::kMaxProbeBatch / 64];
    if (tagged) {
        const u64 survivors =
            tagFilterAndPrefetch(idx, hashes, off, bits);
        // Affine drains filter against one shard's index, which
        // feeds only that shard's counters; mirror the sweep into
        // the cross-shard aggregate the adaptive decision reads.
        if (noteAggregate)
            index_.noteTagSweep(off, off - survivors);
    } else {
        idx.prefetchStage(hashes, off, false);
    }

    // Drain through the interleaved engine; records land in
    // per-segment scratch tagged with request-relative positions.
    std::vector<std::vector<MatchRec>> seg_recs(win.segs.size());
    std::vector<u64> seg_count(win.segs.size(), 0);
    auto sink = [&](std::size_t o, u64 key, u64 payload) {
        const Ref r = refs[o];
        if (win.segs[r.seg].req->kind == RequestKind::Count)
            ++seg_count[r.seg];
        else
            seg_recs[r.seg].push_back({r.pos, key, payload});
    };
    HashedChunkStream stream(wkeys, hashes, off,
                             tagged ? bits : nullptr, 0);
    if (cfg_.engine == WalkerEngine::Coro)
        coroDrain(idx, stream, width_, false, sink);
    else
        amacDrain(idx, stream, width_, false, sink);

    // Retire each segment: records sort back into probeBatch order
    // (stable on key position — the engines interleave across keys
    // but emit each key's matches in chain order), land in the
    // request's (request, slot) merge slot, and the last slot to
    // retire assembles and publishes the result.
    for (std::size_t s = 0; s < win.segs.size(); ++s) {
        Segment &seg = win.segs[s];
        detail::ServiceRequest &req = *seg.req;
        if (req.kind == RequestKind::Count) {
            req.count.fetch_add(seg_count[s],
                                std::memory_order_relaxed);
        } else {
            std::stable_sort(seg_recs[s].begin(), seg_recs[s].end(),
                             [](const MatchRec &a,
                                const MatchRec &b) {
                                 return a.i < b.i;
                             });
            req.perSlot[seg.slot] = std::move(seg_recs[s]);
        }
        retireSegment(seg);
    }
}

ServiceStats
IndexService::stats() const
{
    ServiceStats s;
    s.requests = nRequests_.load(std::memory_order_relaxed);
    s.keys = nKeys_.load(std::memory_order_relaxed);
    s.windows = nWindows_.load(std::memory_order_relaxed);
    s.coalescedWindows = nCoalesced_.load(std::memory_order_relaxed);
    s.affineWindows = nAffine_.load(std::memory_order_relaxed);
    s.stolenWindows = nStolen_.load(std::memory_order_relaxed);
    s.completedOk = nCompletedOk_.load(std::memory_order_relaxed);
    s.rejected = nRejected_.load(std::memory_order_relaxed);
    s.expired = nExpired_.load(std::memory_order_relaxed);
    s.cancelled = nCancelled_.load(std::memory_order_relaxed);
    s.walkerStalls = nStalls_.load(std::memory_order_relaxed);
    s.liveRequests = liveGauge_->load(std::memory_order_relaxed);
    if (adm_)
        s.admission = adm_->snapshot();
    if (index_.liveMutable()) {
        for (unsigned sh = 0; sh < index_.shards(); ++sh) {
            for (unsigned op = 0; op < 3; ++op)
                s.mutations +=
                    index_.mutationsTotal(sh, MutOp(op));
            s.rebuilds += index_.rebuildsTotal(sh);
        }
    }
    if (board_) {
        using detail::LatencyBoard;
        for (unsigned k = 0; k < kNumRequestKinds; ++k) {
            KindLatency &kl = s.latency[k];
            kl.endToEnd =
                board_->rec[k][LatencyBoard::E2E].summarize();
            kl.queueWait =
                board_->rec[k][LatencyBoard::Queue].summarize();
            kl.drainTime =
                board_->rec[k][LatencyBoard::Drain].summarize();
        }
    }
    return s;
}

void
IndexService::resetLatencyStats()
{
    if (!board_)
        return;
    for (auto &row : board_->rec)
        for (auto &rec : row)
            rec.reset();
}

void
IndexService::noteSeal(const Window &win)
{
    if (!trace_)
        return;
    // Runs under m_ at the seal sites: one clock read per sealed
    // window holding at least one traced segment, nothing otherwise.
    u64 now = 0;
    for (const Segment &seg : win.segs) {
        if (!seg.req->trace)
            continue;
        if (now == 0)
            now = monotonicNowNs();
        trace_->record(seg.req->traceId, obs::SpanPoint::WindowSeal,
                       now, win.keys);
    }
}

void
IndexService::registerMetrics(obs::MetricsRegistry &reg)
{
    reg.addCollector(
        [this](obs::Snapshot &out) { collectMetrics(out); });
}

void
IndexService::collectMetrics(obs::Snapshot &out) const
{
    using obs::Family;
    using obs::Labels;
    using obs::MetricType;
    using obs::Sample;

    auto scalar = [&](const char *name, const char *help,
                      MetricType type, double v) {
        Family f;
        f.name = name;
        f.help = help;
        f.type = type;
        f.samples.push_back(Sample{{}, v, {}});
        out.push_back(std::move(f));
    };
    auto counter = [&](const char *name, const char *help, u64 v) {
        scalar(name, help, MetricType::Counter, double(v));
    };
    auto gauge = [&](const char *name, const char *help, double v) {
        scalar(name, help, MetricType::Gauge, v);
    };
    auto rel = [](const std::atomic<u64> &a) {
        return a.load(std::memory_order_relaxed);
    };

    counter("widx_service_requests_total",
            "Requests submitted (every Status included)",
            rel(nRequests_));
    counter("widx_service_keys_total", "Keys submitted", rel(nKeys_));
    counter("widx_service_windows_total", "Dispatch windows drained",
            rel(nWindows_));
    counter("widx_service_windows_coalesced_total",
            "Windows spanning more than one request tail",
            rel(nCoalesced_));
    counter("widx_service_windows_affine_total",
            "Single-shard windows (affine routing)", rel(nAffine_));
    counter("widx_service_windows_stolen_total",
            "Windows drained by a non-home walker", rel(nStolen_));
    counter("widx_service_walker_stalls_total",
            "Watchdog stuck-window reports, all walkers",
            rel(nStalls_));
    gauge("widx_service_live_requests",
          "Request states currently allocated",
          double(liveGauge_->load(std::memory_order_relaxed)));
    gauge("widx_service_queued_keys",
          "Keys parked in the admission queues",
          double(rel(queuedKeys_)));

    {
        Family f;
        f.name = "widx_service_requests_completed_total";
        f.help = "Completed requests by final Status";
        f.type = MetricType::Counter;
        f.samples.push_back(Sample{Labels{{"status", "ok"}},
                                   double(rel(nCompletedOk_)),
                                   {}});
        f.samples.push_back(Sample{Labels{{"status", "rejected"}},
                                   double(rel(nRejected_)),
                                   {}});
        f.samples.push_back(Sample{Labels{{"status", "expired"}},
                                   double(rel(nExpired_)),
                                   {}});
        f.samples.push_back(Sample{Labels{{"status", "cancelled"}},
                                   double(rel(nCancelled_)),
                                   {}});
        out.push_back(std::move(f));
    }

    if (adm_) {
        const AdmissionSnapshot a = adm_->snapshot();
        gauge("widx_admission_hold_keys",
              "Current open-window seal threshold",
              double(a.holdKeys));
        gauge("widx_admission_budget_keys",
              "Current queued-key budget", double(a.budgetKeys));
        counter("widx_admission_adjustments_total",
                "Judged controller intervals", a.adjustments);
        counter("widx_admission_decreases_total",
                "Intervals that halved hold or budget", a.decreases);
        gauge("widx_admission_last_window_p99_ns",
              "Last judged interval's queue-wait p99",
              double(a.lastWindowP99Ns));
        gauge("widx_admission_last_window_count",
              "Samples in the last judged interval",
              double(a.lastWindowCount));
    }

    // Per-shard window accounting (affine windows only; shared-mode
    // windows span shards and show up in the service totals).
    {
        Family drained, stolen;
        drained.name = "widx_shard_windows_drained_total";
        drained.help = "Affine windows drained, by shard";
        drained.type = MetricType::Counter;
        stolen.name = "widx_shard_windows_stolen_total";
        stolen.help =
            "Affine windows drained by a non-home walker, by shard";
        stolen.type = MetricType::Counter;
        for (unsigned s = 0; s < index_.shards(); ++s) {
            Labels l{{"shard", std::to_string(s)}};
            drained.samples.push_back(
                Sample{l, double(rel(sobs_[s].drained)), {}});
            stolen.samples.push_back(
                Sample{l, double(rel(sobs_[s].stolen)), {}});
        }
        out.push_back(std::move(drained));
        out.push_back(std::move(stolen));
    }

    // Per-walker: windows, stall reports, current drain age, and
    // the hardware-counter accumulation (zeros when perf is denied
    // or sampling is off).
    {
        const unsigned n = unsigned(threads_.size());
        const u64 now = monotonicNowNs();
        Family windows, stalls, busy;
        windows.name = "widx_walker_windows_total";
        windows.help = "Windows drained, by walker";
        windows.type = MetricType::Counter;
        stalls.name = "widx_walker_stalls_total";
        stalls.help = "Watchdog stuck-window reports, by walker";
        stalls.type = MetricType::Counter;
        busy.name = "widx_walker_busy_ns";
        busy.help = "Age of the current window drain (0 = parked)";
        busy.type = MetricType::Gauge;
        for (unsigned w = 0; w < n; ++w) {
            Labels l{{"walker", std::to_string(w)}};
            windows.samples.push_back(
                Sample{l, double(rel(wobs_[w].windows)), {}});
            stalls.samples.push_back(
                Sample{l, double(rel(wobs_[w].stalls)), {}});
            if (beats_) {
                const u64 b = rel(beats_[w].busySinceNs);
                busy.samples.push_back(Sample{
                    l, b && now > b ? double(now - b) : 0.0, {}});
            }
        }
        out.push_back(std::move(windows));
        out.push_back(std::move(stalls));
        if (beats_)
            out.push_back(std::move(busy));

        if (cfg_.perfSamplePeriod > 0) {
            Family cyc, ins, llc, tlb, swin, sprb, mpp, ipc;
            cyc.name = "widx_walker_cycles_total";
            cyc.help = "CPU cycles over sampled window drains";
            ins.name = "widx_walker_instructions_total";
            ins.help = "Instructions over sampled window drains";
            llc.name = "widx_walker_llc_misses_total";
            llc.help = "LLC read misses over sampled window drains";
            tlb.name = "widx_walker_dtlb_misses_total";
            tlb.help = "dTLB read misses over sampled window drains";
            swin.name = "widx_walker_sampled_windows_total";
            swin.help = "Window drains sampled with perf";
            sprb.name = "widx_walker_sampled_probes_total";
            sprb.help = "Keys probed inside sampled window drains";
            mpp.name = "widx_walker_llc_misses_per_probe";
            mpp.help = "LLC misses per probed key (sampled windows)";
            mpp.type = MetricType::Gauge;
            ipc.name = "widx_walker_ipc";
            ipc.help =
                "Instructions per cycle over sampled window drains "
                "(MLP proxy: low IPC on the walker loop means "
                "overlapped misses, the design target)";
            ipc.type = MetricType::Gauge;
            for (Family *f : {&cyc, &ins, &llc, &tlb, &swin, &sprb})
                f->type = MetricType::Counter;
            for (unsigned w = 0; w < n; ++w) {
                Labels l{{"walker", std::to_string(w)}};
                const WalkerObs &wo = wobs_[w];
                const u64 cycles = rel(wo.cycles);
                const u64 instrs = rel(wo.instructions);
                const u64 misses = rel(wo.llcMisses);
                const u64 probes = rel(wo.sampledProbes);
                cyc.samples.push_back(Sample{l, double(cycles), {}});
                ins.samples.push_back(Sample{l, double(instrs), {}});
                llc.samples.push_back(Sample{l, double(misses), {}});
                tlb.samples.push_back(
                    Sample{l, double(rel(wo.dtlbMisses)), {}});
                swin.samples.push_back(
                    Sample{l, double(rel(wo.sampledWindows)), {}});
                sprb.samples.push_back(
                    Sample{l, double(probes), {}});
                mpp.samples.push_back(Sample{
                    l,
                    probes ? double(misses) / double(probes) : 0.0,
                    {}});
                ipc.samples.push_back(Sample{
                    l,
                    cycles ? double(instrs) / double(cycles) : 0.0,
                    {}});
            }
            for (Family *f :
                 {&cyc, &ins, &llc, &tlb, &swin, &sprb, &mpp, &ipc})
                out.push_back(std::move(*f));
        }
    }

    // Writer path: per-shard mutation counters, rebuild counts, and
    // the reader-epoch lag (how far the oldest pinned reader trails
    // the current epoch; a large stable value means a stuck reader
    // is holding back reclamation).
    if (index_.liveMutable()) {
        static constexpr const char *kOp[3] = {"insert", "delete",
                                               "upsert"};
        Family mut, reb;
        mut.name = "widx_mutations_total";
        mut.help =
            "Keys applied by the writer path, by kind and shard";
        mut.type = MetricType::Counter;
        reb.name = "widx_rebuilds_total";
        reb.help = "Incremental shard rebuilds triggered by the "
                   "load-factor watermark";
        reb.type = MetricType::Counter;
        for (unsigned s = 0; s < index_.shards(); ++s) {
            for (unsigned op = 0; op < 3; ++op)
                mut.samples.push_back(Sample{
                    Labels{{"kind", kOp[op]},
                           {"shard", std::to_string(s)}},
                    double(index_.mutationsTotal(s, MutOp(op))),
                    {}});
            reb.samples.push_back(
                Sample{Labels{{"shard", std::to_string(s)}},
                       double(index_.rebuildsTotal(s)), {}});
        }
        out.push_back(std::move(mut));
        out.push_back(std::move(reb));
        gauge("widx_epoch_lag",
              "Epochs the oldest pinned reader trails the current "
              "epoch (0 = nothing holding back reclamation)",
              double(index_.epochs().lag()));
    }

    // Tag-filter effectiveness (cross-shard aggregate).
    {
        const db::TagFilterStats &t = index_.tagStats();
        counter("widx_tagfilter_keys_total",
                "Keys swept through the fingerprint filter",
                t.keys());
        counter("widx_tagfilter_rejects_total",
                "Keys rejected by the fingerprint filter",
                t.rejects());
        counter("widx_tagfilter_agings_total",
                "Sliding-window stat agings", t.agings());
        gauge("widx_tagfilter_reject_rate",
              "Recent-window filter reject rate", t.rejectRate());
    }

    // Per-kind latency: full histograms for the end-to-end split
    // plus the percentile ladder as gauges (percentiles read from
    // the native log buckets, tighter than re-bucketed exposition).
    if (board_) {
        using detail::LatencyBoard;
        static constexpr const char *kKind[kNumRequestKinds] = {
            "count", "probe", "join",
            "insert", "delete", "upsert"};
        static constexpr const char *kComp[3] = {"e2e", "queue",
                                                 "drain"};
        Family hist, p50, p99;
        hist.name = "widx_request_latency_ns";
        hist.help = "Per-kind request latency (Ok completions; "
                    "component e2e = queue + drain)";
        hist.type = MetricType::Histogram;
        p50.name = "widx_request_latency_p50_ns";
        p50.help = "Median request latency";
        p50.type = MetricType::Gauge;
        p99.name = "widx_request_latency_p99_ns";
        p99.help = "p99 request latency";
        p99.type = MetricType::Gauge;
        for (unsigned k = 0; k < kNumRequestKinds; ++k) {
            for (unsigned comp = 0; comp < 3; ++comp) {
                const LatencyHistogram h =
                    board_->rec[k][comp].snapshot();
                if (h.count() == 0)
                    continue; // idle kinds stay out of the scrape
                Labels l{{"kind", kKind[k]},
                         {"component", kComp[comp]}};
                Sample s;
                s.labels = l;
                s.hist = obs::toHistogramData(h);
                hist.samples.push_back(std::move(s));
                p50.samples.push_back(
                    Sample{l, double(h.percentileNs(50)), {}});
                p99.samples.push_back(
                    Sample{l, double(h.percentileNs(99)), {}});
            }
        }
        if (!hist.samples.empty()) {
            out.push_back(std::move(hist));
            out.push_back(std::move(p50));
            out.push_back(std::move(p99));
        }
    }
}

} // namespace widx::sw
