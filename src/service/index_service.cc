#include "service/index_service.hh"

#include <algorithm>

#include "common/logging.hh"
#include "swwalkers/coro.hh"

namespace widx::sw {

namespace detail {

/** Per-kind x per-component latency recorders. Kind indexes rows;
 *  columns are the timestamped components (see KindLatency). */
struct LatencyBoard
{
    enum Component
    {
        E2E = 0,
        Queue = 1,
        Drain = 2,
    };

    explicit LatencyBoard(unsigned shards)
        : rec{{{LatencyRecorder(shards), LatencyRecorder(shards),
                LatencyRecorder(shards)},
               {LatencyRecorder(shards), LatencyRecorder(shards),
                LatencyRecorder(shards)},
               {LatencyRecorder(shards), LatencyRecorder(shards),
                LatencyRecorder(shards)}}}
    {
    }

    std::array<std::array<LatencyRecorder, 3>, 3> rec;
};

/**
 * One submitted request. Merge slot s's records are written by
 * exactly one walker (the one that drained s's window) into
 * perSlot[s]; the walker that retires the last slot assembles the
 * result and signals the client. `remaining` decrements with
 * acq_rel so the assembler observes every other walker's slot
 * writes.
 */
struct ServiceRequest
{
    RequestKind kind = RequestKind::Count;
    std::span<const u64> keys;
    std::atomic<u64> remaining{0};
    std::atomic<u64> count{0}; ///< Count-kind tally
    std::vector<std::vector<MatchRec>> perSlot;
    /** Affine-routed: slots are scatter segments, not contiguous
     *  chunks, so the assembler merges them with one stable sort on
     *  key position (see finalize). */
    bool scattered = false;

    /** Latency accounting (board null when recording is off).
     *  tSubmit is stamped in submit(); tFirstDrain by the first
     *  walker to claim a window holding one of this request's
     *  segments (CAS from 0, so exactly one claim wins). The
     *  claim's release on the remaining-countdown orders the stamp
     *  before the finalizer's reads. */
    LatencyBoard *board = nullptr;
    u64 tSubmit = 0;
    std::atomic<u64> tFirstDrain{0};

    std::mutex m;
    std::condition_variable cv;
    bool done = false;
    ServiceResult result;

    void
    finalize()
    {
        ServiceResult r;
        if (kind == RequestKind::Count) {
            r.matches = count.load(std::memory_order_relaxed);
        } else {
            std::size_t total = 0;
            for (const auto &c : perSlot)
                total += c.size();
            r.recs.reserve(total);
            for (auto &c : perSlot)
                r.recs.insert(r.recs.end(), c.begin(), c.end());
            // Shared-mode slots are position-contiguous chunks, so
            // concatenation is already probeBatch order. Scattered
            // slots partition the positions by shard instead; each
            // slot is sorted by position and every position (and
            // every duplicate of a key — one hash, one shard) lives
            // in exactly one slot, so a stable sort on position
            // restores the exact probeBatch sequence.
            if (scattered)
                std::stable_sort(r.recs.begin(), r.recs.end(),
                                 [](const MatchRec &a,
                                    const MatchRec &b) {
                                     return a.i < b.i;
                                 });
            r.matches = total;
            perSlot.clear();
        }
        // Publication timestamp and latency accounting. The same
        // `now` closes both components, so per request
        // queueWait + drainTime == endToEnd exactly (the service
        // test asserts the sums match to the nanosecond). Requests
        // that never hit a walker (empty spans) have
        // tFirstDrain == tSubmit: all latency is queue-wait-free.
        const u64 now = monotonicNowNs();
        r.completedAtNs = now;
        if (board) {
            const u64 fd = tFirstDrain.load(std::memory_order_relaxed);
            const u64 first = fd ? fd : now;
            auto &row = board->rec[unsigned(kind)];
            row[LatencyBoard::E2E].record(now - tSubmit);
            row[LatencyBoard::Queue].record(first - tSubmit);
            row[LatencyBoard::Drain].record(now - first);
        }
        {
            std::lock_guard<std::mutex> lk(m);
            result = std::move(r);
            done = true;
        }
        cv.notify_all();
    }
};

} // namespace detail

ServiceResult
ResultTicket::get()
{
    fatal_if(!req_, "get() on an empty ResultTicket");
    std::unique_lock<std::mutex> lk(req_->m);
    req_->cv.wait(lk, [&] { return req_->done; });
    ServiceResult r = std::move(req_->result);
    lk.unlock();
    req_.reset();
    return r;
}

WaitStatus
ResultTicket::waitFor(std::chrono::nanoseconds timeout) const
{
    fatal_if(!req_, "waitFor() on an empty ResultTicket");
    std::unique_lock<std::mutex> lk(req_->m);
    return req_->cv.wait_for(lk, timeout,
                             [&] { return req_->done; })
               ? WaitStatus::Ready
               : WaitStatus::Timeout;
}

IndexService::IndexService(const db::HashIndex &index,
                           const ServiceConfig &cfg)
    : index_(index), cfg_(cfg)
{
    start();
}

IndexService::IndexService(const db::Column &buildKeys,
                           const db::IndexSpec &spec,
                           const ServiceConfig &cfg)
    : index_(buildKeys, spec, cfg.shards, cfg.numa,
             cfg.pinWalkers, cfg.topology),
      cfg_(cfg)
{
    start();
}

void
IndexService::start()
{
    chunk_ = std::clamp<std::size_t>(
        cfg_.pipeline.batch ? cfg_.pipeline.batch
                            : db::HashIndex::kProbeBatch,
        1, db::HashIndex::kMaxProbeBatch);
    width_ = std::clamp(cfg_.width, 1u, kMaxWidth);
    topo_ = cfg_.topology ? cfg_.topology : &Topology::host();
    affine_ = cfg_.affineRouting && index_.shards() > 1;
    const unsigned walkers =
        std::clamp(cfg_.walkers, 1u, kMaxWalkers);
    if (cfg_.recordLatency)
        board_ = std::make_unique<detail::LatencyBoard>(
            walkers + 1); // walkers finalize; submitters do empties

    if (affine_) {
        const unsigned S = index_.shards();
        const unsigned N = topo_->nodes();
        shardSealed_.resize(S);
        shardOpen_.resize(S);
        for (unsigned s = 0; s < S; ++s)
            shardOpen_[s].shard = int(s);

        // Home shard sets: walkers block-distribute over the nodes
        // exactly like shards do, and each node's shards deal
        // round-robin to its walkers — so a shard's home walkers
        // sit on the node holding (under NodeBound) its arena.
        // Shards whose node has no walker deal round-robin across
        // all walkers, preserving the exactly-one-home-walker
        // invariant (homeShards() exposes it; stealing covers the
        // rest of the pool).
        walkerNode_.resize(walkers);
        std::vector<std::vector<unsigned>> nodeWalkers(N);
        for (unsigned w = 0; w < walkers; ++w) {
            walkerNode_[w] = topo_->nodeForSlot(w, walkers);
            nodeWalkers[walkerNode_[w]].push_back(w);
        }
        home_.assign(walkers, {});
        std::vector<unsigned> deal(N, 0);
        std::vector<unsigned> orphans;
        for (unsigned s = 0; s < S; ++s) {
            const unsigned node = index_.shardNode(s);
            if (node < N && !nodeWalkers[node].empty()) {
                const auto &ws = nodeWalkers[node];
                home_[ws[deal[node]++ % ws.size()]].push_back(s);
            } else {
                orphans.push_back(s);
            }
        }
        for (unsigned i = 0; i < orphans.size(); ++i)
            home_[i % walkers].push_back(orphans[i]);

        // Pin targets: cycle each node's walkers over its CPUs.
        walkerCpu_.resize(walkers);
        std::vector<unsigned> next(N, 0);
        for (unsigned w = 0; w < walkers; ++w)
            walkerCpu_[w] = topo_->cpuOnNode(
                walkerNode_[w], next[walkerNode_[w]]++);
    } else {
        home_.assign(walkers, {});
    }

    threads_.reserve(walkers);
    for (unsigned w = 0; w < walkers; ++w)
        threads_.emplace_back([this, w] { walkerMain(w); });
}

IndexService::~IndexService()
{
    {
        std::lock_guard<std::mutex> lk(m_);
        stop_ = true;
    }
    cv_.notify_all();
    for (auto &t : threads_)
        t.join();
}

ResultTicket
IndexService::submit(RequestKind kind, std::span<const u64> keys)
{
    auto req = std::make_shared<detail::ServiceRequest>();
    req->kind = kind;
    req->keys = keys;
    req->board = board_.get();
    if (board_)
        req->tSubmit = monotonicNowNs();

    nRequests_.fetch_add(1, std::memory_order_relaxed);
    nKeys_.fetch_add(keys.size(), std::memory_order_relaxed);

    if (keys.empty()) {
        // Nothing to do: complete before the ticket escapes. No
        // walker ever claims this request, so it accrues no
        // queue-wait (tFirstDrain == tSubmit).
        req->tFirstDrain.store(req->tSubmit,
                               std::memory_order_relaxed);
        req->finalize();
        return ResultTicket(req);
    }
    if (affine_)
        submitAffine(req, kind, keys);
    else
        submitShared(req, kind, keys);
    return ResultTicket(std::move(req));
}

void
IndexService::submitShared(
    std::shared_ptr<detail::ServiceRequest> req, RequestKind kind,
    std::span<const u64> keys)
{
    const u64 num_chunks = (keys.size() + chunk_ - 1) / chunk_;
    req->remaining.store(num_chunks, std::memory_order_relaxed);
    if (kind != RequestKind::Count)
        req->perSlot.resize(num_chunks);

    unsigned added = 0;
    {
        std::lock_guard<std::mutex> lk(m_);
        // Full chunks seal immediately as single-segment windows.
        std::size_t c = 0;
        std::size_t base = 0;
        for (; base + chunk_ <= keys.size();
             base += chunk_, ++c) {
            Window w;
            w.segs.push_back(Segment{req, c, base, u32(chunk_)});
            w.keys = u32(chunk_);
            sealed_.push_back(std::move(w));
            ++added;
        }
        // The sub-chunk tail coalesces into the shared open window
        // with other requests' tails (admission batching). Tails
        // are never split: seal the open window first if this one
        // would overflow it. With coalescing off, the tail seals
        // its own single-segment window instead — no cross-request
        // batching, and no waiting behind co-runners' traffic.
        if (base < keys.size() && !cfg_.coalesceTails) {
            Window w;
            w.segs.push_back(Segment{req, c, base,
                                     u32(keys.size() - base)});
            w.keys = u32(keys.size() - base);
            sealed_.push_back(std::move(w));
            ++added;
        } else if (base < keys.size()) {
            const u32 len = u32(keys.size() - base);
            if (open_.keys + len > chunk_) {
                sealed_.push_back(std::move(open_));
                open_ = Window{};
                ++added;
            }
            open_.segs.push_back(Segment{req, c, base, len});
            open_.keys += len;
            if (open_.keys == chunk_) {
                sealed_.push_back(std::move(open_));
                open_ = Window{};
                ++added;
            }
        }
    }
    // Tail-only submissions still wake one walker: an idle walker
    // grabs the open window rather than waiting for it to fill.
    if (added > 1)
        cv_.notify_all();
    else
        cv_.notify_one();
}

void
IndexService::submitAffine(
    std::shared_ptr<detail::ServiceRequest> req, RequestKind kind,
    std::span<const u64> keys)
{
    // Admission hashing: the dispatcher stage's vector hash runs on
    // the submitting thread, once, so the scatter can route by
    // shard and the drains start from pre-hashed keys.
    const std::size_t n = keys.size();
    std::vector<u64> hashes(n);
    for (std::size_t base = 0; base < n;
         base += db::HashIndex::kMaxProbeBatch) {
        const std::size_t len = std::min<std::size_t>(
            db::HashIndex::kMaxProbeBatch, n - base);
        index_.hashBatch(keys.subspan(base, len),
                         {hashes.data() + base, len});
    }
    req->scattered = kind != RequestKind::Count;

    // Classify outside the lock: per-shard staging runs of
    // (key, hash, position), exactly sized. Walkers and concurrent
    // submitters must not stall behind per-key work on m_ — under
    // the lock the scatter is only bulk splices of these runs plus
    // O(segments) bookkeeping.
    const unsigned S = index_.shards();
    struct Staged
    {
        std::vector<u64> keys, hashes;
        std::vector<std::size_t> pos;
    };
    std::vector<u32> shard_of(n);
    std::vector<std::size_t> cnt(S, 0);
    for (std::size_t i = 0; i < n; ++i) {
        shard_of[i] = index_.shardOf(hashes[i]);
        ++cnt[shard_of[i]];
    }
    std::vector<Staged> staged(S);
    for (unsigned s = 0; s < S; ++s) {
        staged[s].keys.reserve(cnt[s]);
        staged[s].hashes.reserve(cnt[s]);
        staged[s].pos.reserve(cnt[s]);
    }
    for (std::size_t i = 0; i < n; ++i) {
        Staged &st = staged[shard_of[i]];
        st.keys.push_back(keys[i]);
        st.hashes.push_back(hashes[i]);
        st.pos.push_back(i);
    }

    std::size_t slots = 0;
    {
        std::lock_guard<std::mutex> lk(m_);
        for (unsigned s = 0; s < S; ++s) {
            const Staged &st = staged[s];
            std::size_t done = 0;
            while (done < st.keys.size()) {
                // Fill the shard's open window up to the chunk
                // size: one new segment per (request, window),
                // coalescing with other requests' tails already
                // parked there. With coalescing off the open
                // window is always empty here (every fill seals
                // behind itself), so each pass takes a whole
                // chunk-or-remainder and nothing is ever shared.
                Window &w = shardOpen_[s];
                const std::size_t take = std::min<std::size_t>(
                    chunk_ - w.keys, st.keys.size() - done);
                w.segs.push_back(Segment{req, slots++,
                                         w.wkeys.size(),
                                         u32(take)});
                w.wkeys.insert(w.wkeys.end(),
                               st.keys.begin() + done,
                               st.keys.begin() + done + take);
                w.whashes.insert(w.whashes.end(),
                                 st.hashes.begin() + done,
                                 st.hashes.begin() + done + take);
                w.wpos.insert(w.wpos.end(), st.pos.begin() + done,
                              st.pos.begin() + done + take);
                w.keys += u32(take);
                openKeys_ += take;
                done += take;
                if (w.keys == chunk_ || !cfg_.coalesceTails) {
                    openKeys_ -= w.keys;
                    shardSealed_[s].push_back(std::move(w));
                    shardOpen_[s] = Window{};
                    shardOpen_[s].shard = int(s);
                    ++sealedCount_;
                }
            }
        }
        // Published under the lock, before any walker can pop a
        // window referencing these slots: the count is only known
        // once the scatter has run, and perSlot must never resize
        // concurrently with a drainer's write.
        req->remaining.store(slots, std::memory_order_relaxed);
        if (kind != RequestKind::Count)
            req->perSlot.resize(slots);
    }
    // A scatter typically touches several shard queues; wake the
    // pool and let home-first claiming sort out who drains what.
    cv_.notify_all();
}

void
IndexService::walkerMain(unsigned w)
{
    if (cfg_.pinWalkers) {
        // Affine routing pins each walker onto its home node so
        // home windows drain next to (NodeBound) their shard's
        // arena; otherwise fold the walker index over the usable
        // CPUs.
        if (affine_)
            pinThreadToCpu(*topo_, walkerCpu_[w]);
        else
            pinCurrentThread(w);
    }
    for (;;) {
        Window win;
        bool stolen = false;
        {
            std::unique_lock<std::mutex> lk(m_);
            cv_.wait(lk, [&] {
                if (stop_)
                    return true;
                return affine_
                           ? sealedCount_ > 0 || openKeys_ > 0
                           : !sealed_.empty() || open_.keys > 0;
            });
            const bool got = affine_ ? claimAffine(w, win, stolen)
                                     : claimShared(win);
            if (!got)
                return; // stop_ and every queue drained
        }
        nWindows_.fetch_add(1, std::memory_order_relaxed);
        if (win.segs.size() > 1)
            nCoalesced_.fetch_add(1, std::memory_order_relaxed);
        if (win.shard >= 0)
            nAffine_.fetch_add(1, std::memory_order_relaxed);
        if (stolen)
            nStolen_.fetch_add(1, std::memory_order_relaxed);
        processWindow(win);
    }
}

bool
IndexService::claimShared(Window &win)
{
    if (!sealed_.empty()) {
        win = std::move(sealed_.front());
        sealed_.pop_front();
        return true;
    }
    if (open_.keys > 0) {
        // Nothing sealed and this walker is idle: serve the
        // coalescing window now instead of stalling its requests
        // (latency floor for lone small probes).
        win = std::move(open_);
        open_ = Window{};
        return true;
    }
    return false;
}

bool
IndexService::claimAffine(unsigned w, Window &win, bool &stolen)
{
    const unsigned S = index_.shards();
    auto popSealed = [&](unsigned s) {
        win = std::move(shardSealed_[s].front());
        shardSealed_[s].pop_front();
        --sealedCount_;
    };
    auto grabOpen = [&](unsigned s) {
        openKeys_ -= shardOpen_[s].keys;
        win = std::move(shardOpen_[s]);
        shardOpen_[s] = Window{};
        shardOpen_[s].shard = int(s);
    };
    // Home queues first — sealed before open, same as the shared
    // path — then steal across the other shards so a skewed shard
    // never idles the pool while its home walkers are behind.
    if (sealedCount_ > 0) {
        for (unsigned s : home_[w])
            if (!shardSealed_[s].empty()) {
                popSealed(s);
                stolen = false;
                return true;
            }
        for (unsigned s = 0; s < S; ++s)
            if (!shardSealed_[s].empty()) {
                popSealed(s);
                stolen = true;
                return true;
            }
    }
    if (openKeys_ > 0) {
        for (unsigned s : home_[w])
            if (shardOpen_[s].keys > 0) {
                grabOpen(s);
                stolen = false;
                return true;
            }
        for (unsigned s = 0; s < S; ++s)
            if (shardOpen_[s].keys > 0) {
                grabOpen(s);
                stolen = true;
                return true;
            }
    }
    return false;
}

void
IndexService::processWindow(Window &win)
{
    // Queue-wait ends here: one clock read per window, CASed into
    // each distinct request's first-drain slot (only the first
    // claim of a request's segments wins — for single-segment
    // requests that puts coalescing hold and sealed-queue depth
    // entirely in the queue-wait component; see KindLatency).
    if (board_) {
        const u64 now = monotonicNowNs();
        for (const Segment &seg : win.segs) {
            u64 expect = 0;
            seg.req->tFirstDrain.compare_exchange_strong(
                expect, now, std::memory_order_relaxed);
        }
    }
    if (win.shard >= 0) {
        // Affine window: every key belongs to one shard, so the
        // drain runs against that shard's flat HashIndex (no
        // per-key shard resolve; per-shard AVX2 tag filter).
        drainAffine(win);
        return;
    }
    // Single-shard services (including views of an existing index)
    // drain against the flat HashIndex — no per-key shard resolve,
    // and the AVX2 tag filter applies.
    if (const db::HashIndex *flat = index_.flatIndex())
        drainWindow(*flat, win);
    else
        drainWindow(index_, win);
}

template <typename Index>
void
IndexService::drainWindow(const Index &idx, Window &win)
{
    u64 wkeys[db::HashIndex::kMaxProbeBatch];
    u64 hashes[db::HashIndex::kMaxProbeBatch];
    Ref refs[db::HashIndex::kMaxProbeBatch];

    // Dispatcher stage, run by the draining walker on its own core:
    // gather the window's segments and vector-hash each one.
    std::size_t off = 0;
    for (std::size_t s = 0; s < win.segs.size(); ++s) {
        const Segment &seg = win.segs[s];
        const std::span<const u64> keys =
            seg.req->keys.subspan(seg.base, seg.len);
        std::copy(keys.begin(), keys.end(), wkeys + off);
        idx.hashBatch(keys, {hashes + off, keys.size()});
        for (u32 j = 0; j < seg.len; ++j)
            refs[off + j] = Ref{u32(s), seg.base + j};
        off += seg.len;
    }

    drainGathered(idx, win, wkeys, hashes, refs, off, false);
}

void
IndexService::drainAffine(Window &win)
{
    // Keys and hashes were materialized at admission; only the
    // ordinal -> (segment, position) map is built here.
    Ref refs[db::HashIndex::kMaxProbeBatch];
    for (std::size_t s = 0; s < win.segs.size(); ++s) {
        const Segment &seg = win.segs[s];
        for (u32 j = 0; j < seg.len; ++j)
            refs[seg.base + j] =
                Ref{u32(s), win.wpos[seg.base + j]};
    }
    drainGathered(index_.shard(unsigned(win.shard)), win,
                  win.wkeys.data(), win.whashes.data(), refs,
                  win.wkeys.size(), true);
}

template <typename Index>
void
IndexService::drainGathered(const Index &idx, Window &win,
                            const u64 *wkeys, const u64 *hashes,
                            const Ref *refs, std::size_t off,
                            bool noteAggregate)
{
    // Tag sweep: batched fingerprint filter plus survivor-only
    // header prefetches (the drain's own tag check stays off — the
    // stream skips rejected ordinals). Adaptive mode keeps its
    // stats alive after flipping the filter off by running every
    // 32nd untagged window tagged anyway: the sweep is correct
    // either way (no false negatives), and the periodic sample is
    // what lets the recommendation swing back on when traffic turns
    // selective again. The adaptive decision always reads the
    // service-level aggregate (index_), not a single shard's view.
    bool tagged = effectiveTagged(index_, cfg_.pipeline);
    if (cfg_.pipeline.adaptiveTags && !tagged &&
        nUntagged_.fetch_add(1, std::memory_order_relaxed) % 32 ==
            0)
        tagged = true;
    u64 bits[db::HashIndex::kMaxProbeBatch / 64];
    if (tagged) {
        const u64 survivors =
            tagFilterAndPrefetch(idx, hashes, off, bits);
        // Affine drains filter against one shard's index, which
        // feeds only that shard's counters; mirror the sweep into
        // the cross-shard aggregate the adaptive decision reads.
        if (noteAggregate)
            index_.noteTagSweep(off, off - survivors);
    } else {
        idx.prefetchStage(hashes, off, false);
    }

    // Drain through the interleaved engine; records land in
    // per-segment scratch tagged with request-relative positions.
    std::vector<std::vector<MatchRec>> seg_recs(win.segs.size());
    std::vector<u64> seg_count(win.segs.size(), 0);
    auto sink = [&](std::size_t o, u64 key, u64 payload) {
        const Ref r = refs[o];
        if (win.segs[r.seg].req->kind == RequestKind::Count)
            ++seg_count[r.seg];
        else
            seg_recs[r.seg].push_back({r.pos, key, payload});
    };
    HashedChunkStream stream(wkeys, hashes, off,
                             tagged ? bits : nullptr, 0);
    if (cfg_.engine == WalkerEngine::Coro)
        coroDrain(idx, stream, width_, false, sink);
    else
        amacDrain(idx, stream, width_, false, sink);

    // Retire each segment: records sort back into probeBatch order
    // (stable on key position — the engines interleave across keys
    // but emit each key's matches in chain order), land in the
    // request's (request, slot) merge slot, and the last slot to
    // retire assembles and publishes the result.
    for (std::size_t s = 0; s < win.segs.size(); ++s) {
        Segment &seg = win.segs[s];
        detail::ServiceRequest &req = *seg.req;
        if (req.kind == RequestKind::Count) {
            req.count.fetch_add(seg_count[s],
                                std::memory_order_relaxed);
        } else {
            std::stable_sort(seg_recs[s].begin(), seg_recs[s].end(),
                             [](const MatchRec &a,
                                const MatchRec &b) {
                                 return a.i < b.i;
                             });
            req.perSlot[seg.slot] = std::move(seg_recs[s]);
        }
        if (req.remaining.fetch_sub(1, std::memory_order_acq_rel) ==
            1)
            req.finalize();
    }
}

ServiceStats
IndexService::stats() const
{
    ServiceStats s;
    s.requests = nRequests_.load(std::memory_order_relaxed);
    s.keys = nKeys_.load(std::memory_order_relaxed);
    s.windows = nWindows_.load(std::memory_order_relaxed);
    s.coalescedWindows = nCoalesced_.load(std::memory_order_relaxed);
    s.affineWindows = nAffine_.load(std::memory_order_relaxed);
    s.stolenWindows = nStolen_.load(std::memory_order_relaxed);
    if (board_) {
        using detail::LatencyBoard;
        for (unsigned k = 0; k < 3; ++k) {
            KindLatency &kl = s.latency[k];
            kl.endToEnd =
                board_->rec[k][LatencyBoard::E2E].summarize();
            kl.queueWait =
                board_->rec[k][LatencyBoard::Queue].summarize();
            kl.drainTime =
                board_->rec[k][LatencyBoard::Drain].summarize();
        }
    }
    return s;
}

void
IndexService::resetLatencyStats()
{
    if (!board_)
        return;
    for (auto &row : board_->rec)
        for (auto &rec : row)
            rec.reset();
}

} // namespace widx::sw
