#include "service/index_service.hh"

#include <algorithm>

#include "common/logging.hh"
#include "swwalkers/coro.hh"

namespace widx::sw {

namespace detail {

/**
 * One submitted request. Chunk c's records are written by exactly
 * one walker (the one that drained c's window) into perChunk[c];
 * the walker that retires the last chunk assembles the result and
 * signals the client. `remaining` decrements with acq_rel so the
 * assembler observes every other walker's chunk writes.
 */
struct ServiceRequest
{
    RequestKind kind = RequestKind::Count;
    std::span<const u64> keys;
    std::atomic<u64> remaining{0};
    std::atomic<u64> count{0}; ///< Count-kind tally
    std::vector<std::vector<MatchRec>> perChunk;

    std::mutex m;
    std::condition_variable cv;
    bool done = false;
    ServiceResult result;

    void
    finalize()
    {
        ServiceResult r;
        if (kind == RequestKind::Count) {
            r.matches = count.load(std::memory_order_relaxed);
        } else {
            std::size_t total = 0;
            for (const auto &c : perChunk)
                total += c.size();
            r.recs.reserve(total);
            for (auto &c : perChunk)
                r.recs.insert(r.recs.end(), c.begin(), c.end());
            r.matches = total;
            perChunk.clear();
        }
        {
            std::lock_guard<std::mutex> lk(m);
            result = std::move(r);
            done = true;
        }
        cv.notify_all();
    }
};

} // namespace detail

ServiceResult
ResultTicket::get()
{
    fatal_if(!req_, "get() on an empty ResultTicket");
    std::unique_lock<std::mutex> lk(req_->m);
    req_->cv.wait(lk, [&] { return req_->done; });
    ServiceResult r = std::move(req_->result);
    lk.unlock();
    req_.reset();
    return r;
}

IndexService::IndexService(const db::HashIndex &index,
                           const ServiceConfig &cfg)
    : index_(index), cfg_(cfg)
{
    start();
}

IndexService::IndexService(const db::Column &buildKeys,
                           const db::IndexSpec &spec,
                           const ServiceConfig &cfg)
    : index_(buildKeys, spec, cfg.shards, cfg.numa, cfg.pinWalkers),
      cfg_(cfg)
{
    start();
}

void
IndexService::start()
{
    chunk_ = std::clamp<std::size_t>(
        cfg_.pipeline.batch ? cfg_.pipeline.batch
                            : db::HashIndex::kProbeBatch,
        1, db::HashIndex::kMaxProbeBatch);
    width_ = std::clamp(cfg_.width, 1u, kMaxWidth);
    const unsigned walkers =
        std::clamp(cfg_.walkers, 1u, kMaxWalkers);
    threads_.reserve(walkers);
    for (unsigned w = 0; w < walkers; ++w)
        threads_.emplace_back([this, w] { walkerMain(w); });
}

IndexService::~IndexService()
{
    {
        std::lock_guard<std::mutex> lk(m_);
        stop_ = true;
    }
    cv_.notify_all();
    for (auto &t : threads_)
        t.join();
}

ResultTicket
IndexService::submit(RequestKind kind, std::span<const u64> keys)
{
    auto req = std::make_shared<detail::ServiceRequest>();
    req->kind = kind;
    req->keys = keys;

    nRequests_.fetch_add(1, std::memory_order_relaxed);
    nKeys_.fetch_add(keys.size(), std::memory_order_relaxed);

    const u64 num_chunks = (keys.size() + chunk_ - 1) / chunk_;
    if (num_chunks == 0) {
        // Nothing to do: complete before the ticket escapes.
        req->done = true;
        return ResultTicket(req);
    }
    req->remaining.store(num_chunks, std::memory_order_relaxed);
    if (kind != RequestKind::Count)
        req->perChunk.resize(num_chunks);

    unsigned added = 0;
    {
        std::lock_guard<std::mutex> lk(m_);
        // Full chunks seal immediately as single-segment windows.
        std::size_t c = 0;
        std::size_t base = 0;
        for (; base + chunk_ <= keys.size();
             base += chunk_, ++c) {
            Window w;
            w.segs.push_back(Segment{req, c, base, u32(chunk_)});
            w.keys = u32(chunk_);
            sealed_.push_back(std::move(w));
            ++added;
        }
        // The sub-chunk tail coalesces into the shared open window
        // with other requests' tails (admission batching). Tails
        // are never split: seal the open window first if this one
        // would overflow it.
        if (base < keys.size()) {
            const u32 len = u32(keys.size() - base);
            if (open_.keys + len > chunk_) {
                sealed_.push_back(std::move(open_));
                open_ = Window{};
                ++added;
            }
            open_.segs.push_back(Segment{req, c, base, len});
            open_.keys += len;
            if (open_.keys == chunk_) {
                sealed_.push_back(std::move(open_));
                open_ = Window{};
                ++added;
            }
        }
    }
    // Tail-only submissions still wake one walker: an idle walker
    // grabs the open window rather than waiting for it to fill.
    if (added > 1)
        cv_.notify_all();
    else
        cv_.notify_one();
    return ResultTicket(std::move(req));
}

void
IndexService::walkerMain(unsigned w)
{
    if (cfg_.pinWalkers)
        pinCurrentThread(w);
    for (;;) {
        Window win;
        {
            std::unique_lock<std::mutex> lk(m_);
            cv_.wait(lk, [&] {
                return stop_ || !sealed_.empty() || open_.keys > 0;
            });
            if (!sealed_.empty()) {
                win = std::move(sealed_.front());
                sealed_.pop_front();
            } else if (open_.keys > 0) {
                // Nothing sealed and this walker is idle: serve the
                // coalescing window now instead of stalling its
                // requests (latency floor for lone small probes).
                win = std::move(open_);
                open_ = Window{};
            } else {
                return; // stop_ and every queue drained
            }
        }
        nWindows_.fetch_add(1, std::memory_order_relaxed);
        if (win.segs.size() > 1)
            nCoalesced_.fetch_add(1, std::memory_order_relaxed);
        processWindow(win);
    }
}

void
IndexService::processWindow(Window &win)
{
    // Single-shard services (including views of an existing index)
    // drain against the flat HashIndex — no per-key shard resolve,
    // and the AVX2 tag filter applies.
    if (const db::HashIndex *flat = index_.flatIndex())
        drainWindow(*flat, win);
    else
        drainWindow(index_, win);
}

template <typename Index>
void
IndexService::drainWindow(const Index &idx, Window &win)
{
    /** Window ordinal -> owning segment and request-relative key
     *  position. */
    struct Ref
    {
        u32 seg;
        std::size_t pos;
    };

    u64 wkeys[db::HashIndex::kMaxProbeBatch];
    u64 hashes[db::HashIndex::kMaxProbeBatch];
    Ref refs[db::HashIndex::kMaxProbeBatch];

    // Dispatcher stage, run by the draining walker on its own core:
    // gather the window's segments and vector-hash each one.
    std::size_t off = 0;
    for (std::size_t s = 0; s < win.segs.size(); ++s) {
        const Segment &seg = win.segs[s];
        const std::span<const u64> keys =
            seg.req->keys.subspan(seg.base, seg.len);
        std::copy(keys.begin(), keys.end(), wkeys + off);
        idx.hashBatch(keys, {hashes + off, keys.size()});
        for (u32 j = 0; j < seg.len; ++j)
            refs[off + j] = Ref{u32(s), seg.base + j};
        off += seg.len;
    }

    // Tag sweep: batched fingerprint filter plus survivor-only
    // header prefetches (the drain's own tag check stays off — the
    // stream skips rejected ordinals). Adaptive mode keeps its
    // stats alive after flipping the filter off by running every
    // 32nd untagged window tagged anyway: the sweep is correct
    // either way (no false negatives), and the periodic sample is
    // what lets the recommendation swing back on when traffic turns
    // selective again.
    bool tagged = effectiveTagged(idx, cfg_.pipeline);
    if (cfg_.pipeline.adaptiveTags && !tagged &&
        nUntagged_.fetch_add(1, std::memory_order_relaxed) % 32 ==
            0)
        tagged = true;
    u64 bits[db::HashIndex::kMaxProbeBatch / 64];
    if (tagged)
        tagFilterAndPrefetch(idx, hashes, off, bits);
    else
        idx.prefetchStage(hashes, off, false);

    // Drain through the interleaved engine; records land in
    // per-segment scratch tagged with request-relative positions.
    std::vector<std::vector<MatchRec>> seg_recs(win.segs.size());
    std::vector<u64> seg_count(win.segs.size(), 0);
    auto sink = [&](std::size_t o, u64 key, u64 payload) {
        const Ref r = refs[o];
        if (win.segs[r.seg].req->kind == RequestKind::Count)
            ++seg_count[r.seg];
        else
            seg_recs[r.seg].push_back({r.pos, key, payload});
    };
    HashedChunkStream stream(wkeys, hashes, off,
                             tagged ? bits : nullptr, 0);
    if (cfg_.engine == WalkerEngine::Coro)
        coroDrain(idx, stream, width_, false, sink);
    else
        amacDrain(idx, stream, width_, false, sink);

    // Retire each segment: records sort back into probeBatch order
    // (stable on key position — the engines interleave across keys
    // but emit each key's matches in chain order), land in the
    // request's (request, chunk) slot, and the last chunk to retire
    // assembles and publishes the result.
    for (std::size_t s = 0; s < win.segs.size(); ++s) {
        Segment &seg = win.segs[s];
        detail::ServiceRequest &req = *seg.req;
        if (req.kind == RequestKind::Count) {
            req.count.fetch_add(seg_count[s],
                                std::memory_order_relaxed);
        } else {
            std::stable_sort(seg_recs[s].begin(), seg_recs[s].end(),
                             [](const MatchRec &a,
                                const MatchRec &b) {
                                 return a.i < b.i;
                             });
            req.perChunk[seg.chunkIdx] = std::move(seg_recs[s]);
        }
        if (req.remaining.fetch_sub(1, std::memory_order_acq_rel) ==
            1)
            req.finalize();
    }
}

ServiceStats
IndexService::stats() const
{
    ServiceStats s;
    s.requests = nRequests_.load(std::memory_order_relaxed);
    s.keys = nKeys_.load(std::memory_order_relaxed);
    s.windows = nWindows_.load(std::memory_order_relaxed);
    s.coalescedWindows = nCoalesced_.load(std::memory_order_relaxed);
    return s;
}

} // namespace widx::sw
