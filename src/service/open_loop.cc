#include "service/open_loop.hh"

#include "service/open_loop_driver.hh"

namespace widx::sw {

OpenLoopReport
runOpenLoop(IndexService &service, std::span<const u64> keyPool,
            const OpenLoopOptions &opt)
{
    // The queue is shared into every submission: a request that
    // outlives the run (counted timed-out) completes into a queue
    // kept alive by its own submission, not freed stack memory.
    auto cq = std::make_shared<CompletionQueue>();
    return detail::runOpenLoopOver(
        cq,
        [&](u64 tag, std::span<const u64> keys, u64 deadlineAbs) {
            SubmitOptions sub;
            sub.deadlineNs = deadlineAbs;
            service.submitAsync(opt.kind, keys, sub, cq, tag);
        },
        keyPool, opt);
}

} // namespace widx::sw
