#include "service/open_loop.hh"

#include <cmath>
#include <condition_variable>
#include <deque>
#include <mutex>
#include <thread>

#include "common/logging.hh"
#include "common/rng.hh"

namespace widx::sw {

namespace {

/** Advance the arrival schedule by one draw (ns since run start). */
u64
nextArrival(u64 schedNs, const OpenLoopOptions &opt, Rng &rng)
{
    const double meanGapNs = 1e9 / opt.ratePerSec;
    switch (opt.arrivals) {
    case ArrivalProcess::Uniform:
        return schedNs + u64(meanGapNs);
    case ArrivalProcess::Poisson:
        // Exponential gap: -ln(U) * mean, U in (0, 1].
        return schedNs +
               u64(-std::log(1.0 - rng.uniform()) * meanGapNs);
    case ArrivalProcess::OnOff: {
        // Draw at the boosted in-burst rate, then fold arrivals
        // that fall past the on-window into the next burst start.
        const double boosted = meanGapNs * opt.onFraction;
        u64 next =
            schedNs + u64(-std::log(1.0 - rng.uniform()) * boosted);
        const u64 onLen = u64(opt.onFraction * double(opt.periodNs));
        const u64 inPeriod = next % opt.periodNs;
        if (inPeriod >= onLen)
            next += opt.periodNs - inPeriod;
        return next;
    }
    }
    return schedNs;
}

} // namespace

OpenLoopReport
runOpenLoop(IndexService &service, std::span<const u64> keyPool,
            const OpenLoopOptions &opt)
{
    fatal_if(opt.ratePerSec <= 0.0, "open loop needs a positive rate");
    fatal_if(keyPool.size() < opt.keysPerRequest,
             "key pool smaller than one request");

    struct Pending
    {
        ResultTicket ticket;
        u64 schedNs;
        bool abandoned = false; ///< timed out of the measurement
    };

    OpenLoopReport rep;
    std::mutex qm;
    std::condition_variable qcv;
    std::deque<Pending> pending;
    bool doneSubmitting = false;
    std::atomic<std::size_t> inFlight{0};

    // Completions recorded single-threaded on the reaper; latency
    // is completedAtNs (stamped by the service at publication)
    // minus the *scheduled* arrival — reap order and reap delay
    // cannot inflate it, and generator backlog is charged to the
    // requests that suffered it (no coordinated omission).
    LatencyHistogram hist;
    u64 completed = 0;
    u64 timedOut = 0;
    u64 rejected = 0;
    u64 expired = 0;
    u64 goodput = 0;
    const u64 sloNs = opt.sloNs ? opt.sloNs : opt.deadlineNs;
    const u64 t0 = monotonicNowNs();

    // The reaper sweeps its outstanding set *out of order*: tickets
    // complete independently, and an in-order reaper blocking on a
    // stalled head would pin every completed ticket behind it
    // against the in-flight cap — mass-shedding healthy arrivals
    // and flattering the tail in exactly the stall scenario
    // open-loop measurement exists to expose. A request that
    // outlives drainTimeout is abandoned *for measurement only*
    // (counted timed-out, latency unrecorded): it keeps holding its
    // in-flight slot until the service actually finishes it, so the
    // cap keeps bounding the true service backlog.
    std::thread reaper([&] {
        using namespace std::chrono_literals;
        std::deque<Pending> local;
        for (;;) {
            bool live = false; // any non-abandoned ticket left?
            for (const Pending &p : local)
                live = live || !p.abandoned;
            {
                std::unique_lock<std::mutex> lk(qm);
                auto more = [&] {
                    return !pending.empty() || doneSubmitting;
                };
                if (!live && local.empty())
                    qcv.wait(lk, more);
                else if (!live)
                    // Only abandoned tickets left: keep polling
                    // them (below) so their completions release
                    // cap slots even while no new work arrives.
                    qcv.wait_for(lk, 10ms, more);
                while (!pending.empty()) {
                    local.push_back(std::move(pending.front()));
                    pending.pop_front();
                }
                // Exit once submissions ended and every remaining
                // ticket is abandoned (a lost request must not hang
                // the run; the timed-out count reports it).
                if (doneSubmitting && !live) {
                    for (const Pending &p : local)
                        live = live || !p.abandoned;
                    if (!live)
                        return;
                }
            }
            const u64 now = monotonicNowNs();
            bool reaped = false;
            for (auto it = local.begin(); it != local.end();) {
                if (it->ticket.waitFor(0ns) == WaitStatus::Ready) {
                    const ServiceResult r = it->ticket.get();
                    inFlight.fetch_sub(1,
                                       std::memory_order_relaxed);
                    if (!it->abandoned) {
                        switch (r.status) {
                        case Status::Ok: {
                            ++completed;
                            const u64 sched = t0 + it->schedNs;
                            const u64 lat =
                                r.completedAtNs > sched
                                    ? r.completedAtNs - sched
                                    : 0;
                            hist.record(lat);
                            if (sloNs == 0 || lat <= sloNs)
                                ++goodput;
                            break;
                        }
                        case Status::DeadlineExceeded:
                            ++expired;
                            break;
                        case Status::Rejected:
                        case Status::Cancelled:
                            // Cancelled can only appear if the
                            // caller stops the service mid-run;
                            // both are server-side refusals.
                            ++rejected;
                            break;
                        }
                    }
                    it = local.erase(it);
                    reaped = true;
                } else {
                    const u64 sched = t0 + it->schedNs;
                    if (!it->abandoned && now > sched &&
                        now - sched >
                            u64(opt.drainTimeout.count())) {
                        it->abandoned = true;
                        ++timedOut;
                    }
                    ++it;
                }
            }
            if (!reaped && !local.empty()) {
                // Nothing ready: park briefly on the oldest ticket.
                // A short slice (not drainTimeout) so completions
                // elsewhere in the set are reaped promptly.
                local.front().ticket.waitFor(2ms);
            }
        }
    });

    Rng rng(opt.seed);
    u64 schedNs = 0;
    std::size_t base = 0;
    for (u64 i = 0; i < opt.requests; ++i) {
        schedNs = nextArrival(schedNs, opt, rng);
        ++rep.scheduled;

        // Pace to the schedule: sleep while far out, yield-spin the
        // last stretch. Running late is fine — the submission goes
        // out immediately and the lateness lands in the latency of
        // this (and only this) request's measurement.
        const u64 target = t0 + schedNs;
        for (;;) {
            const u64 now = monotonicNowNs();
            if (now >= target)
                break;
            if (target - now > 200'000)
                std::this_thread::sleep_for(
                    std::chrono::nanoseconds(target - now -
                                             100'000));
            else
                std::this_thread::yield();
        }

        if (inFlight.load(std::memory_order_relaxed) >=
            opt.maxInFlight) {
            ++rep.shedClientCap;
            continue;
        }
        if (base + opt.keysPerRequest > keyPool.size())
            base = 0;
        SubmitOptions sub;
        if (opt.deadlineNs)
            sub.deadlineNs = t0 + schedNs + opt.deadlineNs;
        ResultTicket t = service.submit(
            opt.kind, keyPool.subspan(base, opt.keysPerRequest),
            sub);
        base += opt.keysPerRequest;
        inFlight.fetch_add(1, std::memory_order_relaxed);
        ++rep.submitted;
        {
            std::lock_guard<std::mutex> lk(qm);
            pending.push_back(Pending{std::move(t), schedNs});
        }
        qcv.notify_one();
    }
    {
        std::lock_guard<std::mutex> lk(qm);
        doneSubmitting = true;
    }
    qcv.notify_all();
    reaper.join();

    rep.elapsedSec = double(monotonicNowNs() - t0) * 1e-9;
    rep.completed = completed;
    rep.timedOut = timedOut;
    rep.rejected = rejected;
    rep.expired = expired;
    rep.goodput = goodput;
    rep.offeredRate =
        rep.elapsedSec > 0 ? double(rep.scheduled) / rep.elapsedSec
                           : 0.0;
    rep.achievedRate =
        rep.elapsedSec > 0 ? double(completed) / rep.elapsedSec
                           : 0.0;
    rep.goodputRate =
        rep.elapsedSec > 0 ? double(goodput) / rep.elapsedSec
                           : 0.0;
    rep.latency = hist.summarize();
    rep.hist = hist;
    return rep;
}

} // namespace widx::sw
