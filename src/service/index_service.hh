/**
 * @file
 * Persistent index service: always-on walkers serving concurrent
 * probe / count / hash-join requests.
 *
 * The paper's dispatcher/walker split — and PR 2's WalkerPool —
 * assume one big probe phase: spawn K threads, drain one key span,
 * join. A server handling many small concurrent queries inverts the
 * shape: requests are tiny, arrive from many client threads, and
 * never stop. IndexService turns the walker machinery into a
 * long-lived server object:
 *
 *  - **Shards.** The service owns a ShardedIndex: the bucket+tag
 *    space hash-range-partitioned into S per-arena shards (shard
 *    selector folded into the bucket indexing, FirstTouch or
 *    topology-aware NodeBound placement), or a single-shard view of
 *    an existing HashIndex.
 *
 *  - **Persistent walkers.** K walker threads are spawned once and
 *    park on a condvar between requests — no per-call thread spawn
 *    or join. Optional CPU pinning (slot-folded over the usable
 *    CPUs; home-node CPUs under affine routing).
 *
 *  - **Submission / completion.** The core surface is asynchronous:
 *    clients submitAsync(kind, keys, opts, sink) from any thread
 *    (the submission queue is a mutex-guarded MPSC structure —
 *    contended per request, never per key) and the request's result
 *    is *delivered* when its last chunk completes — to a callback,
 *    or onto a CompletionQueue the client reaps in batches. Nothing
 *    blocks between submissions, so a single client thread keeps
 *    thousands of probes in flight. The blocking ResultTicket
 *    (submit + get) and the probe/count/join conveniences are thin
 *    sinks over the same completion path — status CAS, deadline
 *    handling, and latency stamping are identical on every route.
 *
 *  - **Admission batching.** Each request is sliced into chunks of
 *    `pipeline.batch` keys. Full chunks become sealed dispatch
 *    windows immediately; sub-chunk tails land in one shared *open*
 *    window where concurrent small requests coalesce. A walker with
 *    nothing sealed grabs the open window as-is, so a lone small
 *    request is served immediately — but when walkers are busy the
 *    open window keeps filling, and the AMAC/coroutine drains see
 *    full-width windows even when every client sends a handful of
 *    keys.
 *
 *  - **Shard-affine routing** (ServiceConfig::affineRouting, the
 *    topology path). submit() vector-hashes the request's keys at
 *    admission and scatters them into *per-shard* dispatch windows
 *    (one open window per shard — small requests still coalesce,
 *    now per shard). Each walker owns a home shard set derived from
 *    the topology (walkers and shards block-distribute over the
 *    same NUMA nodes) and serves its home windows first, stealing
 *    from other shards only when its own queues are empty, so a
 *    skewed shard never idles the pool. An affine window holds keys
 *    of exactly one shard, so its drain runs against that shard's
 *    flat HashIndex — no per-key shard resolve, per-shard AVX2 tag
 *    filter — on arena pages that NodeBound placement put on the
 *    walker's own node.
 *
 *  - **Overload and failure handling.** submit() takes an optional
 *    absolute deadline; the admission queues are bounded (statically
 *    via ServiceConfig::maxQueuedKeys and/or by an SLO-driven AIMD
 *    admission controller that also drives the tail-window hold
 *    threshold); over-budget, expired, and shutdown-stranded
 *    requests complete *fast* with a non-Ok Status on their ticket
 *    instead of draining — a waiter can never hang. An optional
 *    watchdog reports walkers stuck inside one window drain. See
 *    src/service/README.md ("Overload and failure handling").
 *
 *  - **Determinism.** A window is drained by exactly one walker;
 *    its per-segment records are stable-sorted by key position
 *    (preserving per-key chain order) and merged by (request, slot)
 *    id — with affine routing the request's records are additionally
 *    merged across shard slots by one final stable sort on key
 *    position (every position lives in exactly one shard, and all
 *    duplicates of a key share a shard, so chain order survives) —
 *    making every request's result sequence byte-identical to a
 *    single-threaded HashIndex::probeBatch over its keys,
 *    independent of walker count, shard count, routing mode,
 *    coalescing, stealing, and thread timing.
 *
 * See src/service/README.md for the architecture write-up.
 */

#ifndef WIDX_SERVICE_INDEX_SERVICE_HH
#define WIDX_SERVICE_INDEX_SERVICE_HH

#include <array>
#include <atomic>
#include <chrono>
#include <deque>
#include <functional>
#include <memory>
#include <span>
#include <thread>
#include <vector>

#include "common/latency.hh"
#include "common/thread_safety.hh"
#include "service/service_config.hh"
#include "service/sharded_index.hh"
#include "swwalkers/probers.hh"

namespace widx::obs {
class MetricsRegistry;
class TraceRing;
struct Family;
using Snapshot = std::vector<Family>; // mirrors obs/metrics.hh
}

namespace widx::sw {

/** What a request asks the walkers to do with its keys. */
enum class RequestKind
{
    Count,  ///< tally matches; no records materialized
    Probe,  ///< materialize (i, key, payload) records
    Join,   ///< probe-side of a hash join: identical records, read
            ///< as (probe row i, key, build row payload)
    Insert, ///< writer path: insert (key, payload) pairs; matches
            ///< counts keys inserted (mutation kinds need a service
            ///< built with ServiceConfig::mutation.enabled)
    Delete, ///< writer path: erase every entry of each key; matches
            ///< counts nodes erased
    Upsert, ///< writer path: overwrite the first match's payload or
            ///< insert; matches counts in-place updates
};

/** Total request kinds (sizing per-kind tables). */
inline constexpr unsigned kNumRequestKinds = 6;

/** Is this kind a writer-path (mutation) kind? */
constexpr bool
isMutationKind(RequestKind k)
{
    return k == RequestKind::Insert || k == RequestKind::Delete ||
           k == RequestKind::Upsert;
}

/** How a request's ticket completed. Every submitted ticket
 *  completes with exactly one of these — backpressure, deadlines,
 *  and shutdown all complete tickets fast rather than dropping them,
 *  so a waiter can never hang on a request the service gave up on. */
enum class Status : u8
{
    Ok = 0,           ///< fully drained; results are authoritative
    Rejected,         ///< shed at submit: the admission queues were
                      ///< over budget; nothing was drained
    DeadlineExceeded, ///< past its deadline at submit or window
                      ///< claim; any drained portion is partial
    Cancelled,        ///< the service stopped with the request still
                      ///< queued; any drained portion is partial
    UnsupportedVersion, ///< the peer speaks a wire protocol version
                        ///< (or request kind) this side does not;
                        ///< nothing was drained. Produced by the
                        ///< net front-end, never by the service
                        ///< walkers themselves.
};

/** Human-readable status label (stable, for logs and tests). */
const char *statusName(Status s);

/** A served request's result. For Probe/Join, `recs` is the exact
 *  sequence a single-threaded probeBatch over the request's keys
 *  would emit (ascending key position, chain order within a key).
 *  Only Status::Ok results carry that guarantee: non-Ok results may
 *  hold a partial (or empty) record set and exist so the waiter
 *  learns the outcome — treat their matches/recs as meaningless. */
struct ServiceResult
{
    Status status = Status::Ok;
    u64 matches = 0;
    std::vector<MatchRec> recs;
    /** steady_clock time (monotonicNowNs) at which the result was
     *  published — always stamped, so open-loop clients can compute
     *  scheduled-arrival latency without a reap-time clock read
     *  (reap delay never inflates the measurement). */
    u64 completedAtNs = 0;
    /** SubmitOptions::traceId echoed back (0 = untraced), so a
     *  reaper can stamp the completion-reap span without a side
     *  table. */
    u64 traceId = 0;
};

/** Per-submission options (deadline, tracing, mutation payloads). */
struct SubmitOptions
{
    /** Absolute steady-clock deadline (monotonicNowNs scale);
     *  0 = none. A request found past its deadline — at submit, or
     *  when a walker claims a window holding one of its segments —
     *  completes fast with Status::DeadlineExceeded instead of
     *  draining. Segments already mid-drain finish (a drain is
     *  never interrupted), so completion can land somewhat after
     *  the deadline; the guarantee is no *new* per-key work starts
     *  for an expired request. */
    u64 deadlineNs = 0;
    /** Opt-in request tracing: nonzero and ServiceConfig::trace set,
     *  the request's lifecycle points (submit / window seal / first
     *  claim / drain done) stamp span events into the trace ring,
     *  and the id is echoed in ServiceResult::traceId. 0 = no
     *  tracing for this request (the hot path pays one branch). */
    u64 traceId = 0;
    /** Mutation kinds only: one payload per key for Insert/Upsert
     *  (row id / tuple id to store). Must match the key span's
     *  length; ignored (may be empty) for every other kind. Same
     *  lifetime rule as the keys: valid until completion. */
    std::span<const u64> payloads{};
};

namespace detail {
struct ServiceRequest;
struct LatencyBoard;
}

/** One finished async request, as reaped from a CompletionQueue:
 *  the caller's tag plus the same ServiceResult every other
 *  completion route delivers. */
struct Completion
{
    u64 tag = 0;
    ServiceResult result;
};

/**
 * Lock-light completion queue: finished requests are pushed by the
 * completing thread (a walker, or the submitting thread for
 * fast-failed requests) and reaped in batches by any number of
 * client threads. One short mutex hold per push; one per reap
 * *batch* regardless of batch size (the backing vector is swapped
 * out whole), so a reaper never serializes against completions
 * entry by entry.
 *
 * Lifetime: the queue must outlive every request submitted against
 * it. submitAsync's shared_ptr overload makes that automatic (each
 * in-flight request keeps the queue alive); the reference overload
 * leaves it to the caller — reap until every submission has been
 * delivered before destroying the queue.
 */
class CompletionQueue
{
  public:
    CompletionQueue() = default;
    CompletionQueue(const CompletionQueue &) = delete;
    CompletionQueue &operator=(const CompletionQueue &) = delete;

    /** Deliver one completed request (the service's side). */
    void push(u64 tag, ServiceResult &&result);

    /**
     * Reap up to `max` completions into `out` (appended), blocking
     * up to `timeout` for the first one; returns the number
     * appended (0 = timeout with nothing ready, or the queue was
     * closed and drained). Ready completions are returned
     * immediately without waiting for a full batch.
     */
    std::size_t reap(std::vector<Completion> &out, std::size_t max,
                     std::chrono::nanoseconds timeout);

    /** Completions pushed but not yet reaped. */
    std::size_t size() const;

    /** Wake every blocked reaper and make future reaps non-blocking
     *  (they keep draining whatever is already queued). Used by
     *  transports to unstick reapers when the far side goes away;
     *  the service itself never closes a client's queue. */
    void close();
    bool closed() const;

  private:
    mutable Mutex m_;
    CondVar cv_;
    std::vector<Completion> ready_ WIDX_GUARDED_BY(m_);
    bool closed_ WIDX_GUARDED_BY(m_) = false;
};

/** Completion callback for submitAsync. Runs exactly once, on the
 *  completing thread: a walker for drained requests, the submitting
 *  thread for fast-failed (rejected / expired / cancelled / empty)
 *  ones — so it must be cheap and must not block on, or resubmit
 *  into, the service it came from. Exceptions are caught and
 *  logged, never propagated into the walker loop. */
using CompletionFn = std::function<void(ServiceResult &&)>;

/** Outcome of a bounded ticket wait. */
enum class WaitStatus
{
    Ready,   ///< the request completed; get() will not block
    Timeout, ///< still in flight; the ticket stays valid
};

/**
 * One-shot future for a submitted request: the blocking sink over
 * the async completion core, for callers that want exactly one
 * result on the submitting thread.
 *
 * DEPRECATED PATTERN — many tickets polled in a loop. Holding a
 * vector of tickets and sweeping waitFor(0) over them (what
 * runOpenLoop did before the async core existed) burns a
 * mutex+condvar check per ticket per sweep and caps how many
 * requests one thread can keep in flight. Callers issuing many
 * concurrent requests should submitAsync onto a CompletionQueue and
 * reap(max, timeout) in batches instead; keep ResultTicket for
 * single-shot convenience calls.
 *
 * A ticket abandoned in flight (destroyed, or never get()) is safe:
 * the request completes normally and its memory is released as soon
 * as the last reference drops — completion never parks state on the
 * service waiting for a reader (see ServiceStats::liveRequests).
 */
class ResultTicket
{
  public:
    ResultTicket() = default;

    bool valid() const { return req_ != nullptr; }

    /** Block until served; returns the result and invalidates the
     *  ticket. */
    ServiceResult get();

    /**
     * Block until served or until `timeout` elapses, whichever is
     * first. Timeout leaves the ticket valid (the request keeps
     * running; its key span must stay alive until it completes) so
     * an open-loop client can shed or re-poll instead of blocking
     * forever; Ready means get() returns without blocking.
     */
    WaitStatus waitFor(std::chrono::nanoseconds timeout) const;

  private:
    friend class IndexService;
    explicit ResultTicket(std::shared_ptr<detail::ServiceRequest> r)
        : req_(std::move(r))
    {
    }

    std::shared_ptr<detail::ServiceRequest> req_;
};

/** One request kind's latency breakdown. Per request, end-to-end
 *  splits exactly into queue-wait (submit -> the first claim of any
 *  of the request's segments: time spent parked in the admission
 *  queues) plus drain-time (first claim -> result publication),
 *  measured with the same clock reads — the component sums add up
 *  to the end-to-end sum to the nanosecond. For sub-chunk requests
 *  — the single-segment shape that populates the coalescing window
 *  — the whole coalescing hold is therefore in the queue-wait
 *  column; a multi-chunk request's first sealed chunk ends its
 *  queue-wait, so a hold on its *tail* lands in drain-time
 *  (completion still waits for the last segment). */
struct KindLatency
{
    LatencySnapshot endToEnd;
    LatencySnapshot queueWait;
    LatencySnapshot drainTime;
};

/** Service traffic counters (relaxed; monotone since construction). */
struct ServiceStats
{
    u64 requests = 0;         ///< submitted (every Status included)
    u64 keys = 0;
    u64 windows = 0;          ///< dispatch windows drained
    u64 coalescedWindows = 0; ///< windows spanning >1 request tail
    u64 affineWindows = 0;    ///< single-shard windows (routing on)
    u64 stolenWindows = 0;    ///< drained by a non-home walker
    /** Outcome split: completedOk is the goodput (fully drained
     *  requests); rejected/expired/cancelled count requests that
     *  completed with the matching non-Ok Status (each request in
     *  exactly one bucket once its ticket completes). */
    u64 completedOk = 0;
    u64 rejected = 0;
    u64 expired = 0;
    u64 cancelled = 0;
    /** Stuck-walker reports from the watchdog (one per stuck
     *  window, 0 with the watchdog off). */
    u64 walkerStalls = 0;
    /** Requests whose state is still allocated: submitted but not
     *  yet completed, plus completed-but-unclaimed ticket results a
     *  client still holds. A gauge, not a counter — it must return
     *  to 0 once traffic stops and every ticket is dropped, which
     *  is what the abandoned-ticket regression test pins (an
     *  abandoned-then-completed request must free promptly, not
     *  linger until service stop). */
    u64 liveRequests = 0;
    /** Admission-controller state (zeroed unless
     *  ServiceConfig::admission.adaptive). */
    AdmissionSnapshot admission{};
    /** Mutation traffic: keys applied by the writer path, summed
     *  over every Insert/Delete/Upsert request and shard (0 unless
     *  mutation is enabled). */
    u64 mutations = 0;
    /** Incremental shard rebuilds triggered by the load-factor
     *  watermark. */
    u64 rebuilds = 0;
    /** Per-kind request latency, indexed by RequestKind (zeroed
     *  when ServiceConfig::recordLatency is off; only Status::Ok
     *  requests are recorded — fast-failed tickets would otherwise
     *  drag the percentiles toward the reject path's microseconds). */
    std::array<KindLatency, kNumRequestKinds> latency{};

    const KindLatency &
    latencyFor(RequestKind k) const
    {
        return latency[unsigned(k)];
    }
};

class IndexService
{
  public:
    /** Serve an existing index (single shard, no copy; the index
     *  and its arena must outlive the service). */
    explicit IndexService(const db::HashIndex &index,
                          const ServiceConfig &cfg = {});

    /** Build cfg.shards hash-range shards from a key column and
     *  serve them (payload r = row id r). */
    IndexService(const db::Column &buildKeys,
                 const db::IndexSpec &spec,
                 const ServiceConfig &cfg = {});

    /** Equivalent to stop(): cancels queued work, finishes in-flight
     *  drains, joins the walkers. */
    ~IndexService();

    IndexService(const IndexService &) = delete;
    IndexService &operator=(const IndexService &) = delete;

    /**
     * Stop serving. Ordering contract, in sequence:
     *
     *  1. New submissions complete immediately with
     *     Status::Cancelled (never undefined, never hung).
     *  2. Every window still parked in the admission queues is
     *     cancelled: each of its requests' tickets completes with
     *     Status::Cancelled (partial results possible for requests
     *     with segments already drained).
     *  3. Windows already claimed by a walker finish draining
     *     normally (a drain is never interrupted), so their
     *     requests may still complete Ok.
     *  4. The walkers (and watchdog, if any) park and join.
     *
     * By return, every ticket ever issued has completed — no waiter
     * can hang on a stopped service — and no walker threads remain.
     * Idempotent; concurrent calls are safe, but only the first
     * caller blocks on the join (the destructor re-joins in any
     * case). Key spans of cancelled requests are not touched after
     * cancellation.
     */
    void stop();

    /**
     * Submit a request from any thread. The key span must stay
     * valid until the returned ticket's get() completes. Empty key
     * spans complete immediately. Check the result's Status: the
     * service completes tickets fast with Rejected (admission
     * queues over budget), DeadlineExceeded (opt.deadlineNs passed)
     * or Cancelled (service stopped) instead of draining them.
     */
    ResultTicket submit(RequestKind kind, std::span<const u64> keys,
                        const SubmitOptions &opt = {});

    /**
     * Asynchronous submission — the core API. Never blocks and
     * returns nothing: the result is *delivered* on completion,
     * exactly once, through `cq` (reap it in batches) or `cb`. The
     * same completion path as submit() — fast-fail statuses
     * (Rejected / DeadlineExceeded / Cancelled) are delivered the
     * same way, from the submitting thread, so a reaper accounts
     * for every submission without a separate error channel.
     *
     * Lifetime: the key span must stay valid until the completion
     * is delivered. The queue must outlive the request — automatic
     * with the shared_ptr overload (the request holds a reference),
     * the caller's job with the reference overload. `tag` is
     * returned verbatim in the reaped Completion; the service never
     * interprets it.
     */
    void submitAsync(RequestKind kind, std::span<const u64> keys,
                     const SubmitOptions &opt,
                     std::shared_ptr<CompletionQueue> cq, u64 tag);
    void submitAsync(RequestKind kind, std::span<const u64> keys,
                     const SubmitOptions &opt, CompletionQueue &cq,
                     u64 tag);
    /** Callback form; see CompletionFn for the execution context. */
    void submitAsync(RequestKind kind, std::span<const u64> keys,
                     const SubmitOptions &opt, CompletionFn cb);

    /** submit + get conveniences. */
    ServiceResult
    probe(std::span<const u64> keys)
    {
        return submit(RequestKind::Probe, keys).get();
    }

    u64
    count(std::span<const u64> keys)
    {
        return submit(RequestKind::Count, keys).get().matches;
    }

    ServiceResult
    join(std::span<const u64> keys)
    {
        return submit(RequestKind::Join, keys).get();
    }

    unsigned walkers() const { return unsigned(threads_.size()); }
    unsigned shards() const { return index_.shards(); }
    const ShardedIndex &index() const { return index_; }

    /** Is shard-affine routing live (configured on and > 1 shard)? */
    bool affineRouting() const { return affine_; }

    /** A walker's home shard set (affine routing only; empty sets
     *  mean the walker only steals). */
    std::span<const unsigned>
    homeShards(unsigned walker) const
    {
        return home_[walker];
    }

    ServiceStats stats() const;

    /**
     * Export this service's state into a MetricsRegistry: a
     * scrape-time collector pulls the traffic counters, outcome
     * split, admission state, per-shard drain/steal counters,
     * per-walker stall and hardware-counter samples, tag-filter
     * stats, and the per-kind latency histograms. Registration adds
     * nothing to the request hot path — the cost is paid by the
     * scraper. The service must outlive the registry's last
     * snapshot() (the collector captures `this`).
     */
    void registerMetrics(obs::MetricsRegistry &reg);

    /** Zero the latency histograms (traffic counters keep running).
     *  Only exact while no request is in flight — intended for
     *  benches resetting between rate rows. No-op when
     *  ServiceConfig::recordLatency is off. */
    void resetLatencyStats();

  private:
    /** One contiguous run of keys inside a window, owned by one
     *  request. In shared windows `base` offsets into req->keys and
     *  a segment is always a whole admission chunk; in affine
     *  windows `base` offsets into the window's scattered key
     *  arrays. `slot` is the request's merge slot (chunk index, or
     *  scatter-segment ordinal under affine routing). */
    struct Segment
    {
        std::shared_ptr<detail::ServiceRequest> req;
        std::size_t slot;
        std::size_t base;
        u32 len; ///< <= pipeline.batch
    };

    /** A dispatch window: what one walker drains in one pass.
     *  shard >= 0 marks a shard-affine window, which owns its
     *  admission-hashed keys (wkeys/whashes) and their
     *  request-relative positions (wpos). */
    struct Window
    {
        std::vector<Segment> segs;
        u32 keys = 0;
        int shard = -1;
        std::vector<u64> wkeys;
        std::vector<u64> whashes;
        std::vector<std::size_t> wpos;
    };

    /** Window ordinal -> owning segment and request-relative key
     *  position (drain scratch). */
    struct Ref
    {
        u32 seg;
        std::size_t pos;
    };

    void start();
    void walkerMain(unsigned w);
    void watchdogMain();
    /** Allocate a request wired to this service (board, live
     *  gauge, deadline); the sink is set by the caller. */
    std::shared_ptr<detail::ServiceRequest>
    makeRequest(RequestKind kind, std::span<const u64> keys,
                const SubmitOptions &opt);
    /** The one submission path every public overload funnels into:
     *  admission, fast-fail completion, walker wakeup. */
    void submitRequest(const std::shared_ptr<detail::ServiceRequest> &req,
                       RequestKind kind, std::span<const u64> keys,
                       const SubmitOptions &opt);
    /** Writer path: apply a mutation request inline on the
     *  submitting thread (per-shard single-writer mutex inside the
     *  ShardedIndex; "mutations are just another completion" — the
     *  result is delivered through the same sink as every read).
     *  Rejected when the service wraps an index it does not own or
     *  mutation is not enabled. */
    void applyMutation(const std::shared_ptr<detail::ServiceRequest> &req,
                       RequestKind kind, std::span<const u64> keys,
                       const SubmitOptions &opt);
    /** Admission paths; false means the request was not enqueued
     *  (its Status is already set to Rejected or Cancelled and the
     *  caller completes the ticket). */
    bool submitShared(std::shared_ptr<detail::ServiceRequest> req,
                      RequestKind kind, std::span<const u64> keys);
    bool submitAffine(std::shared_ptr<detail::ServiceRequest> req,
                      RequestKind kind, std::span<const u64> keys);
    /** Current open-window seal threshold (adaptive or static). */
    u32 holdThreshold() const;
    /** Effective queued-key bound (config + adaptive budget). */
    u64 queuedKeyBound() const;
    /** Retire one segment without draining it; the last segment to
     *  retire completes the ticket. */
    void retireSegment(const Segment &seg);
    /** Stamp WindowSeal span events for a window's traced requests
     *  (called at every seal site; no-op unless tracing is on). */
    void noteSeal(const Window &win) WIDX_REQUIRES(m_);
    /** Scrape-time collector body for registerMetrics. */
    void collectMetrics(obs::Snapshot &out) const;
    /** Complete a request's ticket, counting Ok completions. */
    void finishRequest(detail::ServiceRequest &req);
    bool claimShared(Window &win) WIDX_REQUIRES(m_);
    bool claimAffine(unsigned w, Window &win, bool &stolen)
        WIDX_REQUIRES(m_);
    void processWindow(Window &win);
    template <typename Index>
    void drainWindow(const Index &idx, Window &win);
    void drainAffine(Window &win, bool compacted);
    template <typename Index>
    void drainGathered(const Index &idx, Window &win,
                       const u64 *wkeys, const u64 *hashes,
                       const Ref *refs, std::size_t off,
                       bool noteAggregate);

    ShardedIndex index_;
    ServiceConfig cfg_;
    std::size_t chunk_; ///< resolved pipeline.batch
    unsigned width_;    ///< resolved drain width
    bool affine_ = false;
    const Topology *topo_ = nullptr;

    Mutex m_;
    CondVar cv_;
    // Shared-mode queues (affine off): one sealed deque, one open
    // coalescing window.
    std::deque<Window> sealed_ WIDX_GUARDED_BY(m_);
    Window open_ WIDX_GUARDED_BY(m_);
    // Affine-mode queues: per-shard sealed deques and open windows,
    // plus O(1) occupancy counters for the park predicate.
    std::vector<std::deque<Window>> shardSealed_ WIDX_GUARDED_BY(m_);
    std::vector<Window> shardOpen_ WIDX_GUARDED_BY(m_);
    std::size_t sealedCount_ WIDX_GUARDED_BY(m_) = 0;
    u64 openKeys_ WIDX_GUARDED_BY(m_) = 0;
    bool stop_ WIDX_GUARDED_BY(m_) = false;
    std::vector<std::thread> threads_;

    /** Keys parked in the admission queues (open + sealed, not yet
     *  claimed). Mutated under m_; read relaxed for the submit-path
     *  backpressure pre-check. */
    std::atomic<u64> queuedKeys_{0};

    /** SLO-driven admission (null unless admission.adaptive). */
    std::unique_ptr<AdmissionController> adm_;

    /** Per-walker heartbeat for the watchdog: epoch bumps at every
     *  claim and every completion; busySinceNs holds the claim time
     *  while a drain is in progress (0 parked). Null when the
     *  watchdog is off, so the hot path pays nothing. */
    // widx-lint: padded
    struct alignas(kCacheBlockBytes) WalkerBeat
    {
        std::atomic<u64> epoch{0};
        std::atomic<u64> busySinceNs{0};
    };
    std::unique_ptr<WalkerBeat[]> beats_;

    /** Per-walker observability counters (always allocated — they
     *  are only written on the per-window path and at watchdog
     *  reports, never per key). Cache-line padded like the beats. */
    // widx-lint: padded
    struct alignas(kCacheBlockBytes) WalkerObs
    {
        std::atomic<u64> windows{0};
        std::atomic<u64> stalls{0}; ///< watchdog stuck-window reports
        /** Hardware-counter accumulation over sampled windows
         *  (cfg.perfSamplePeriod; zeros when perf is denied). */
        std::atomic<u64> sampledWindows{0};
        std::atomic<u64> sampledProbes{0};
        std::atomic<u64> cycles{0};
        std::atomic<u64> instructions{0};
        std::atomic<u64> llcMisses{0};
        std::atomic<u64> dtlbMisses{0};
    };
    std::unique_ptr<WalkerObs[]> wobs_;

    /** Per-shard window accounting (affine windows carry a shard
     *  id; shared-mode windows span shards and are not counted
     *  here). */
    // widx-lint: padded
    struct alignas(kCacheBlockBytes) ShardObs
    {
        std::atomic<u64> drained{0};
        std::atomic<u64> stolen{0};
    };
    std::unique_ptr<ShardObs[]> sobs_;

    /** Span-trace ring (ServiceConfig::trace; null = tracing off).
     *  Raw pointer resolved at start(); cfg_ keeps the ownership. */
    obs::TraceRing *trace_ = nullptr;

    std::thread watchdog_;
    Mutex wdM_;
    CondVar wdCv_;
    bool wdStop_ WIDX_GUARDED_BY(wdM_) = false;
    /** Serializes the join phase of stop() (idempotency). */
    Mutex joinM_;

    /** Per-walker home shard sets, nodes, and pin targets (affine
     *  routing; fixed after start()). */
    std::vector<std::vector<unsigned>> home_;
    std::vector<unsigned> walkerNode_;
    std::vector<unsigned> walkerCpu_;

    std::atomic<u64> nRequests_{0};
    std::atomic<u64> nKeys_{0};
    std::atomic<u64> nWindows_{0};
    std::atomic<u64> nCoalesced_{0};
    std::atomic<u64> nAffine_{0};
    std::atomic<u64> nStolen_{0};
    std::atomic<u64> nCompletedOk_{0};
    std::atomic<u64> nRejected_{0};
    std::atomic<u64> nExpired_{0};
    std::atomic<u64> nCancelled_{0};
    std::atomic<u64> nStalls_{0};
    /** Untagged-window counter for adaptive re-sampling (see
     *  drainGathered). */
    std::atomic<u64> nUntagged_{0};
    /** Live-request gauge (ServiceStats::liveRequests). Shared with
     *  every request — a client can legally hold a ticket past
     *  service destruction, and the request's destructor must still
     *  have a counter to decrement. */
    std::shared_ptr<std::atomic<u64>> liveGauge_ =
        std::make_shared<std::atomic<u64>>(0);

    /** Per-kind x per-component latency recorders (null when
     *  recording is off). Requests hold a raw pointer into it; the
     *  destructor drains every request before the board dies. */
    std::unique_ptr<detail::LatencyBoard> board_;
};

} // namespace widx::sw

#endif // WIDX_SERVICE_INDEX_SERVICE_HH
