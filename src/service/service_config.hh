/**
 * @file
 * Construction-time knobs for the persistent index service — a leaf
 * header (the ServiceConfig analogue of pipeline_config.hh) so the
 * db layer can accept a service without pulling in the service
 * implementation or the prober templates.
 */

#ifndef WIDX_SERVICE_SERVICE_CONFIG_HH
#define WIDX_SERVICE_SERVICE_CONFIG_HH

#include <memory>

#include "service/admission.hh"
#include "swwalkers/pipeline_config.hh"

namespace widx {
class Topology;
}

namespace widx::obs {
class TraceRing; // obs/trace.hh; kept opaque so this stays a leaf
}

namespace widx::sw {

/** Shard arena placement policy. */
enum class NumaPolicy
{
    /** Build every shard on the constructing thread (all arenas
     *  first-touched on its node). */
    None,
    /** Build each shard on its own thread so the OS first-touch
     *  policy spreads the shard arenas across nodes (and the build
     *  parallelizes); when walker pinning is on, shard build
     *  threads are pinned round-robin over the host's *usable* CPUs
     *  (Topology::host() — the affinity mask is honored). Explicit
     *  node binding (libnuma) is deliberately not a dependency —
     *  see src/service/README.md. */
    FirstTouch,
    /** Topology-aware first touch: each shard is assigned a target
     *  node (Topology::nodeForSlot block distribution) and its
     *  build thread is pinned to a CPU *on that node*, so the
     *  arena's pages are first-touched where the shard's home
     *  walkers run. Build threads are always pinned under this
     *  policy (pinning is the point). */
    NodeBound,
};

/**
 * Live-mutation knobs: the writer path that coexists with the
 * always-on walkers (see src/service/README.md and
 * db/hash_index.hh's live-mutation contract). Only meaningful for a
 * service that *builds* its index; a view-mode service wraps an
 * index it does not own and rejects mutation kinds.
 */
struct MutationConfig
{
    /** Accept Insert/Delete/Upsert request kinds. Each shard gets a
     *  single-writer mutex (probes stay lock-free; mutations to
     *  different shards run concurrently) plus epoch-based
     *  reclamation for erased nodes and replaced bucket arrays. */
    bool enabled = false;
    /** Per-shard load factor (entries / buckets) that triggers an
     *  incremental rebuild: the shard's bucket array is regrown 2x
     *  into a fresh arena off the writer's thread of control and
     *  published with one epoch-protected pointer swap — readers
     *  see the old or the new array, never a partial rehash. */
    double rebuildLoadFactor = 0.75;
    /** Hard cap on one shard's bucket count (0 = no cap): stops
     *  watermark-triggered regrowth, not mutation itself. */
    u64 maxShardBuckets = 0;
};

/** Construction-time description of an IndexService. */
struct ServiceConfig
{
    /** Hash-range shards (power of two, clamped to [1, 64]): the
     *  global bucket space splits into `shards` contiguous ranges,
     *  each with its own bucket+tag arena. Ignored when the service
     *  wraps an existing (already-built) HashIndex. */
    unsigned shards = 1;
    /** Persistent walker threads parked between requests (clamped
     *  to [1, kMaxWalkers]). */
    unsigned walkers = 1;
    /** In-flight probes per walker drain (AMAC/coro W). */
    unsigned width = 8;
    /** Probe state machine the walkers run. */
    WalkerEngine engine = WalkerEngine::Amac;
    /** Shared pipeline knobs: `batch` is the dispatch-window size
     *  requests are chunked into (and small requests coalesce up
     *  to), `tagged`/`adaptiveTags` control the fingerprint filter.
     *  `walkers` here is ignored — the service's own walker count
     *  rules. */
    PipelineConfig pipeline{};
    /** Pin walker threads. Without affine routing, walkers pin
     *  round-robin over the usable CPUs; with it, each walker pins
     *  to a CPU on its home node (see affineRouting). */
    bool pinWalkers = false;
    /** Shard arena placement (see NumaPolicy). */
    NumaPolicy numa = NumaPolicy::None;
    /**
     * Shard-affine dispatch routing. Off, every walker serves every
     * window and resolves each key's shard per key mid-drain. On
     * (and the service owns > 1 shard), submit() scatters a
     * request's keys into per-shard dispatch windows (keys are
     * hashed at admission), every walker gets a *home shard set*
     * from the topology (walkers and shards block-distribute over
     * the same nodes), and windows route to home walkers first with
     * work-stealing fallback so skewed shards don't idle the pool.
     * A window then drains against one shard's flat HashIndex — no
     * per-key shard resolve, per-shard AVX2 tag filter — and, with
     * NodeBound placement + pinWalkers, against arena pages on the
     * walker's own node. Results stay byte-identical to flat
     * probeBatch (see src/service/README.md). */
    bool affineRouting = false;
    /**
     * Coalesce sub-chunk request tails into shared open dispatch
     * windows (admission batching — the walkers design's central
     * latency trade: a tail waits for co-runners so drains see
     * full-width windows). Off, every tail seals its own window at
     * admission: no cross-request coalescing, narrower windows,
     * but a request is never held behind another's traffic. The
     * open-loop latency bench (bench/latency_bench.cc) sweeps this
     * axis against arrival rate. */
    bool coalesceTails = true;
    /**
     * SLO-driven admission (see admission.hh). With
     * `admission.adaptive` set, an AIMD controller replaces the
     * static coalesceTails bool: it holds tail windows open up to a
     * measured-queue-wait-driven threshold and bounds the admission
     * queues, shedding over-budget submissions with
     * Status::Rejected so queue-wait p99 tracks
     * `admission.targetQueueP99Ns` instead of growing without bound
     * under overload. Forces recordLatency on. */
    AdmissionConfig admission{};
    /**
     * Static bound on keys parked in the admission queues
     * (0 = unbounded). A submission that finds the queues at or
     * over the bound completes immediately with Status::Rejected
     * instead of queueing (the queue can overshoot by at most one
     * request: the bound is checked before admission, never by
     * splitting a request). Composes with the adaptive budget — the
     * effective bound is the smaller of the two. */
    u64 maxQueuedKeys = 0;
    /**
     * Walker watchdog period (0 = off). On, a monitor thread wakes
     * every period, and any walker that has been inside a single
     * window drain for longer than `stallThresholdNs` is reported:
     * a warning log line plus ServiceStats::walkerStalls (once per
     * stuck window, not per period). Purely observational — the
     * stolen-window path is what keeps traffic flowing around a
     * stuck walker. */
    u64 watchdogPeriodNs = 0;
    /** How long one window drain may run before the watchdog calls
     *  the walker stalled. */
    u64 stallThresholdNs = 100'000'000;
    /**
     * Record per-request latency: submit() and the first window
     * claim are timestamped, finalize feeds the deltas into
     * lock-light log-bucketed histograms with a per-kind
     * (probe/count/join) and per-component (end-to-end / queue-wait
     * / drain-time) breakdown, exposed via ServiceStats. Costs ~3
     * steady_clock reads per request plus a few relaxed atomic
     * increments at finalize — off buys those back for pure
     * throughput runs. */
    bool recordLatency = true;
    /**
     * Hardware-counter sampling cadence: every Nth window drain per
     * walker runs inside an obs::PerfGroup (cycles / instructions /
     * LLC misses / dTLB misses), accumulated into per-walker
     * counters the registry exports as misses-per-probe and an IPC
     * proxy. 0 = off (no perf fds opened). Where perf access is
     * denied (containers, CI) the group degrades to zeros — the
     * sampling branch stays, the counters just never move. */
    u32 perfSamplePeriod = 0;
    /**
     * Optional span-trace ring (obs/trace.hh). When set, requests
     * submitted with a nonzero SubmitOptions::traceId get instant
     * span events stamped at submit / window seal / first claim /
     * drain done. Shared so transports (the TCP server's reaper
     * stamps the reap span) and dump paths can read the same ring.
     * Null = tracing off; untraced requests pay one pointer test. */
    std::shared_ptr<obs::TraceRing> trace;
    /** Live mutation (Insert/Delete/Upsert kinds, per-shard single
     *  writer, epoch reclamation, incremental rebuilds). */
    MutationConfig mutation{};
    /** Topology override for tests (synthetic multi-node trees);
     *  null = Topology::host(). Must outlive the service. */
    const Topology *topology = nullptr;
};

} // namespace widx::sw

#endif // WIDX_SERVICE_SERVICE_CONFIG_HH
