/**
 * @file
 * Construction-time knobs for the persistent index service — a leaf
 * header (the ServiceConfig analogue of pipeline_config.hh) so the
 * db layer can accept a service without pulling in the service
 * implementation or the prober templates.
 */

#ifndef WIDX_SERVICE_SERVICE_CONFIG_HH
#define WIDX_SERVICE_SERVICE_CONFIG_HH

#include "swwalkers/pipeline_config.hh"

namespace widx::sw {

/** Shard arena placement policy. */
enum class NumaPolicy
{
    /** Build every shard on the constructing thread (all arenas
     *  first-touched on its node). */
    None,
    /** Build each shard on its own thread so the OS first-touch
     *  policy spreads the shard arenas across nodes (and the build
     *  parallelizes); when walker pinning is on, shard build
     *  threads are pinned round-robin over the same CPUs. Explicit
     *  node binding (libnuma) is deliberately not a dependency —
     *  see src/service/README.md. */
    FirstTouch,
};

/** Construction-time description of an IndexService. */
struct ServiceConfig
{
    /** Hash-range shards (power of two, clamped to [1, 64]): the
     *  global bucket space splits into `shards` contiguous ranges,
     *  each with its own bucket+tag arena. Ignored when the service
     *  wraps an existing (already-built) HashIndex. */
    unsigned shards = 1;
    /** Persistent walker threads parked between requests (clamped
     *  to [1, kMaxWalkers]). */
    unsigned walkers = 1;
    /** In-flight probes per walker drain (AMAC/coro W). */
    unsigned width = 8;
    /** Probe state machine the walkers run. */
    WalkerEngine engine = WalkerEngine::Amac;
    /** Shared pipeline knobs: `batch` is the dispatch-window size
     *  requests are chunked into (and small requests coalesce up
     *  to), `tagged`/`adaptiveTags` control the fingerprint filter.
     *  `walkers` here is ignored — the service's own walker count
     *  rules. */
    PipelineConfig pipeline{};
    /** Pin walker threads round-robin over the host CPUs. */
    bool pinWalkers = false;
    /** Shard arena placement (see NumaPolicy). */
    NumaPolicy numa = NumaPolicy::None;
};

} // namespace widx::sw

#endif // WIDX_SERVICE_SERVICE_CONFIG_HH
