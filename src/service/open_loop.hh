/**
 * @file
 * Open-loop (arrival-rate) load generator for the index service.
 *
 * The closed-loop clients in service_bench submit a request, block
 * on its ticket, and only then submit the next one — so a stalled
 * walker stalls the *generator*, and the requests that would have
 * arrived during the stall (exactly the ones that would have seen
 * the tail latency) are simply never sent. That is coordinated
 * omission, and it makes closed-loop percentile numbers flatter the
 * system under test. The load-generation literature's fix is
 * open-loop injection: arrivals follow an external stochastic
 * process (Poisson for independent clients) that does not care how
 * the server is doing, and each request's latency is measured from
 * its *scheduled arrival time* — so when the generator falls behind
 * a stall, the backlog shows up in the recorded latencies instead
 * of disappearing.
 *
 * `runOpenLoop` drives an IndexService that way:
 *
 *  - arrivals are drawn from a configurable process (Poisson
 *    exponential gaps, deterministic uniform gaps, or an on-off
 *    bursty train that packs the same average rate into periodic
 *    bursts);
 *  - submissions go through `submitAsync` onto a CompletionQueue —
 *    no per-request ticket, no wait — and a reaper thread drains
 *    completions in batches in whatever order they finish (a
 *    stalled request must not pin completed ones behind it),
 *    recording `result.completedAtNs - scheduledArrival` (the
 *    service stamps completion, so reap delay never inflates the
 *    measurement);
 *  - a bounded in-flight cap stops a saturated service from eating
 *    unbounded memory: arrivals that find the cap full are *shed*
 *    (counted, not submitted). The cap counts submitted-but-
 *    unreaped requests: a completion landing more than
 *    `drainTimeout` after its scheduled arrival counts as timed-out
 *    (latency unrecorded), and one still missing `drainTimeout`
 *    after the last submission is written off the same way.
 *
 * The shared core (one generator + one batch reaper over any
 * submission transport) lives in open_loop_driver.hh; the TCP
 * variant in src/net/open_loop_net.hh runs the identical experiment
 * over a socket.
 *
 * The key pool passed in must outlive the run; if any request timed
 * out, the service may still be draining it after return, so the
 * pool must then also outlive the service.
 */

#ifndef WIDX_SERVICE_OPEN_LOOP_HH
#define WIDX_SERVICE_OPEN_LOOP_HH

#include <chrono>
#include <span>

#include "common/latency.hh"
#include "service/index_service.hh"

namespace widx::sw {

/** Arrival process the open-loop generator draws from. */
enum class ArrivalProcess
{
    Poisson, ///< exponential inter-arrival gaps (memoryless)
    Uniform, ///< deterministic 1/rate gaps (pacing floor)
    OnOff,   ///< Poisson bursts: the whole rate packed into the
             ///< first `onFraction` of every `periodNs` cycle
};

struct OpenLoopOptions
{
    double ratePerSec = 100e3; ///< target average arrival rate
    u64 requests = 10000;      ///< scheduled arrivals to generate
    std::size_t keysPerRequest = 64;
    RequestKind kind = RequestKind::Count;
    ArrivalProcess arrivals = ArrivalProcess::Poisson;
    /** OnOff only: fraction of each period that receives arrivals
     *  (at rate / onFraction, so the average rate is preserved). */
    double onFraction = 0.25;
    u64 periodNs = 2'000'000; ///< OnOff cycle length
    /** Submitted-but-uncompleted cap; arrivals over it are shed. */
    std::size_t maxInFlight = 4096;
    /** Measurement patience per request (from its scheduled
     *  arrival): past this it counts as timed-out and its latency
     *  is not recorded, though it holds its in-flight slot until
     *  the service completes it. */
    std::chrono::nanoseconds drainTimeout = std::chrono::seconds(5);
    /** Per-request service deadline, relative to the *scheduled*
     *  arrival (0 = none): each submission carries the absolute
     *  deadline schedNs + deadlineNs, so a generator running late
     *  burns deadline budget exactly like a queue would — the
     *  open-loop discipline applied to deadlines. */
    u64 deadlineNs = 0;
    /** Goodput SLO, from scheduled arrival to service-stamped
     *  completion: Ok completions within it count as goodput.
     *  0 falls back to deadlineNs; both 0 = every Ok completion is
     *  goodput. */
    u64 sloNs = 0;
    u64 seed = 1;
};

struct OpenLoopReport
{
    u64 scheduled = 0;     ///< arrivals generated
    u64 submitted = 0;     ///< arrivals that reached submit()
    /** Shed accounting, split by who refused: the generator's own
     *  in-flight cap (client-side, never submitted) vs the
     *  service's admission control (submitted, completed fast with
     *  Status::Rejected). Conflating them would let a report blame
     *  the service for the harness's cap or vice versa. */
    u64 shedClientCap = 0;
    u64 rejected = 0;
    u64 expired = 0;  ///< completed Status::DeadlineExceeded
    u64 timedOut = 0; ///< tickets abandoned after drainTimeout
    u64 completed = 0; ///< Ok completions (latency-recorded)
    /** Ok completions within the SLO (see OpenLoopOptions::sloNs). */
    u64 goodput = 0;
    double elapsedSec = 0;
    double offeredRate = 0;  ///< scheduled / elapsed
    double achievedRate = 0; ///< completed / elapsed
    double goodputRate = 0;  ///< goodput / elapsed
    /** Scheduled-arrival -> service-stamped completion (Ok only). */
    LatencySnapshot latency;
    LatencyHistogram hist; ///< full histogram behind `latency`
};

/** Drive `service` open-loop per `opt`, drawing request key spans
 *  round-robin from `keyPool` (see file comment for lifetime). */
OpenLoopReport runOpenLoop(IndexService &service,
                           std::span<const u64> keyPool,
                           const OpenLoopOptions &opt);

} // namespace widx::sw

#endif // WIDX_SERVICE_OPEN_LOOP_HH
