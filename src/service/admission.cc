#include "service/admission.hh"

#include <algorithm>

namespace widx::sw {

AdmissionController::AdmissionController(const AdmissionConfig &cfg,
                                         u32 chunkKeys,
                                         unsigned recorderShards)
    : cfg_(cfg),
      chunk_(std::max(1u, chunkKeys)),
      hold_(std::max(1u, chunkKeys)),
      budget_(std::max(cfg.minBudgetKeys, cfg.maxBudgetKeys)),
      rec_(recorderShards)
{
}

void
AdmissionController::observe(u64 nowNs)
{
    u64 next = nextAdjustNs_.load(std::memory_order_relaxed);
    if (nowNs < next)
        return;
    // Elect one adjuster per interval; losers return immediately.
    if (!nextAdjustNs_.compare_exchange_strong(
            next, nowNs + cfg_.intervalNs,
            std::memory_order_relaxed))
        return;

    // A previous adjuster can still be inside the critical section
    // when a long interval elapses mid-adjustment; skipping is
    // cheaper and no less correct than queueing behind it.
    if (!m_.tryLock())
        return;
    adjustLocked();
    m_.unlock();
}

void
AdmissionController::adjustLocked()
{
    // Sample the interval. Below the sample floor the cursor stays
    // put, so a sparse interval folds into the next one instead of
    // steering on a handful of claims.
    const LatencyHistogram cum = rec_.snapshot();
    const LatencyHistogram win = cum.deltaSince(cursor_);
    if (win.count() < cfg_.minIntervalSamples)
        return;
    cursor_ = cum;

    const u64 p99 = win.percentileNs(99.0);
    lastP99_.store(p99, std::memory_order_relaxed);
    lastCount_.store(win.count(), std::memory_order_relaxed);
    adjustments_.fetch_add(1, std::memory_order_relaxed);

    if (p99 > cfg_.targetQueueP99Ns) {
        // Multiplicative decrease: stop holding windows open first
        // (the moderate-load lever), then shed by halving the queue
        // budget — under sustained overload only bounding the queue
        // bounds the percentile. A severe overshoot (4x target)
        // isn't a batching problem at all: cut the budget in the
        // same step so a cold-start at maxBudgetKeys converges in a
        // handful of intervals instead of walking the hold ladder
        // down first while the queue keeps inflating the tail.
        decreases_.fetch_add(1, std::memory_order_relaxed);
        const u32 h = hold_.load(std::memory_order_relaxed);
        if (h > 1)
            hold_.store(std::max(1u, h / 2),
                        std::memory_order_relaxed);
        if (h <= 1 || p99 > 4 * cfg_.targetQueueP99Ns) {
            const u64 b = budget_.load(std::memory_order_relaxed);
            budget_.store(std::max(cfg_.minBudgetKeys, b / 2),
                          std::memory_order_relaxed);
        }
    } else if (p99 <= cfg_.targetQueueP99Ns -
                          cfg_.targetQueueP99Ns / 4) {
        // Additive increase, only when comfortably (>= 25%) under
        // target — inside the band the knobs hold still so the
        // controller doesn't oscillate against its own SLO edge.
        // Budget recovers before hold: admitting shed traffic beats
        // re-batching the admitted.
        const u64 b = budget_.load(std::memory_order_relaxed);
        if (b < cfg_.maxBudgetKeys) {
            budget_.store(
                std::min(cfg_.maxBudgetKeys, b + cfg_.budgetStepKeys),
                std::memory_order_relaxed);
        } else {
            const u32 h = hold_.load(std::memory_order_relaxed);
            if (h < chunk_)
                hold_.store(std::min(chunk_, h + cfg_.holdStepKeys),
                            std::memory_order_relaxed);
        }
    }
}

AdmissionSnapshot
AdmissionController::snapshot() const
{
    AdmissionSnapshot s;
    s.holdKeys = hold_.load(std::memory_order_relaxed);
    s.budgetKeys = budget_.load(std::memory_order_relaxed);
    s.adjustments = adjustments_.load(std::memory_order_relaxed);
    s.decreases = decreases_.load(std::memory_order_relaxed);
    s.lastWindowP99Ns = lastP99_.load(std::memory_order_relaxed);
    s.lastWindowCount = lastCount_.load(std::memory_order_relaxed);
    return s;
}

} // namespace widx::sw
