/**
 * @file
 * Transport-generic core of the open-loop generator.
 *
 * `runOpenLoop` (local service) and `runOpenLoopNet` (TCP client)
 * are the same experiment over different submission surfaces:
 * schedule arrivals, submit without waiting, reap completions in
 * batches from a CompletionQueue, and measure each request from its
 * *scheduled* arrival to its stamped completion. This header holds
 * that shared core so the two transports cannot drift apart in
 * measurement discipline.
 *
 * The Submit callable issues one request: submit(tag, keys,
 * deadlineAbsNs) with deadlineAbsNs an absolute monotonic deadline
 * (0 = none). Its completion must eventually land on `cq` carrying
 * the same tag, with `result.completedAtNs` stamped at completion
 * time (the service stamps at publication; the net client stamps at
 * receipt) — reap order and reap delay never inflate a measurement.
 *
 * Tags are arrival indexes: tag i's scheduled time lives in a flat
 * array the reaper indexes on completion. A request whose
 * completion lands more than `drainTimeout` after its scheduled
 * arrival counts as timed-out (latency unrecorded); one that never
 * completes within `drainTimeout` of the last submission is counted
 * timed-out and left behind — the queue is shared-owned, so a
 * straggler completing after return pushes into a queue nobody
 * reads instead of freed memory.
 */

#ifndef WIDX_SERVICE_OPEN_LOOP_DRIVER_HH
#define WIDX_SERVICE_OPEN_LOOP_DRIVER_HH

#include <atomic>
#include <cmath>
#include <memory>
#include <thread>
#include <vector>

#include "common/logging.hh"
#include "common/rng.hh"
#include "obs/metrics.hh"
#include "service/open_loop.hh"

namespace widx::sw::detail {

/** Advance the arrival schedule by one draw (ns since run start). */
inline u64
nextArrival(u64 schedNs, const OpenLoopOptions &opt, Rng &rng)
{
    const double meanGapNs = 1e9 / opt.ratePerSec;
    switch (opt.arrivals) {
    case ArrivalProcess::Uniform:
        return schedNs + u64(meanGapNs);
    case ArrivalProcess::Poisson:
        // Exponential gap: -ln(U) * mean, U in (0, 1].
        return schedNs +
               u64(-std::log(1.0 - rng.uniform()) * meanGapNs);
    case ArrivalProcess::OnOff: {
        // Draw at the boosted in-burst rate, then fold arrivals
        // that fall past the on-window into the next burst start.
        const double boosted = meanGapNs * opt.onFraction;
        u64 next =
            schedNs + u64(-std::log(1.0 - rng.uniform()) * boosted);
        const u64 onLen = u64(opt.onFraction * double(opt.periodNs));
        const u64 inPeriod = next % opt.periodNs;
        if (inPeriod >= onLen)
            next += opt.periodNs - inPeriod;
        return next;
    }
    }
    return schedNs;
}

/** Drive one open-loop run over a submission transport (see file
 *  comment for the Submit contract). */
template <typename Submit>
OpenLoopReport
runOpenLoopOver(std::shared_ptr<CompletionQueue> cq,
                Submit &&submitOne, std::span<const u64> keyPool,
                const OpenLoopOptions &opt)
{
    fatal_if(opt.ratePerSec <= 0.0, "open loop needs a positive rate");
    fatal_if(keyPool.size() < opt.keysPerRequest,
             "key pool smaller than one request");

    OpenLoopReport rep;
    // tag -> scheduled arrival (ns since t0). Written by the
    // generator before the submission that publishes the tag; the
    // reaper reads it only after reaping that tag's completion, so
    // the queue's mutex orders the accesses.
    std::vector<u64> schedOf(opt.requests, 0);
    std::atomic<std::size_t> inFlight{0};
    std::atomic<u64> submitted{0};
    std::atomic<u64> doneAtNs{0}; ///< 0 until submissions end

    // Completions recorded single-threaded on the reaper; latency
    // is completedAtNs minus the *scheduled* arrival — generator
    // backlog is charged to the requests that suffered it (no
    // coordinated omission).
    //
    // Tallies live in a run-local metrics registry (direct Counter
    // handles, relaxed-atomic cells) and the report is filled from
    // its snapshot — the same widx_openloop_* families either
    // transport's harness would export, so report and exposition
    // cannot disagree.
    LatencyHistogram hist;
    obs::MetricsRegistry reg;
    obs::Counter cScheduled = reg.counter(
        "widx_openloop_scheduled_total", "Arrivals generated.");
    obs::Counter cSubmitted =
        reg.counter("widx_openloop_submitted_total",
                    "Arrivals that reached submit().");
    obs::Counter cShedCap =
        reg.counter("widx_openloop_shed_client_cap_total",
                    "Arrivals shed by the client in-flight cap.");
    obs::Counter cCompleted =
        reg.counter("widx_openloop_completed_total",
                    "Ok completions (latency-recorded).");
    obs::Counter cGoodput =
        reg.counter("widx_openloop_goodput_total",
                    "Ok completions within the SLO.");
    obs::Counter cRejected =
        reg.counter("widx_openloop_rejected_total",
                    "Server-side refusals (Rejected/Cancelled).");
    obs::Counter cExpired =
        reg.counter("widx_openloop_expired_total",
                    "Completions with DeadlineExceeded.");
    obs::Counter cTimedOut =
        reg.counter("widx_openloop_timed_out_total",
                    "Requests written off after drainTimeout.");
    u64 reaped = 0;
    const u64 drainNs = u64(opt.drainTimeout.count());
    const u64 sloNs = opt.sloNs ? opt.sloNs : opt.deadlineNs;
    const u64 t0 = monotonicNowNs();

    // The reaper drains completions in batches, in whatever order
    // they finish — a stalled request cannot pin completed ones
    // behind it against the in-flight cap. It exits once every
    // submitted request is reaped, or `drainTimeout` after the last
    // submission with stragglers counted timed-out (a lost request
    // must not hang the run).
    std::thread reaper([&] {
        std::vector<Completion> batch;
        for (;;) {
            batch.clear();
            cq->reap(batch, 1024, std::chrono::milliseconds(10));
            for (const Completion &c : batch) {
                inFlight.fetch_sub(1, std::memory_order_relaxed);
                const u64 sched = t0 + schedOf[c.tag];
                const u64 lat =
                    c.result.completedAtNs > sched
                        ? c.result.completedAtNs - sched
                        : 0;
                if (lat > drainNs) {
                    // Completed, but past measurement patience:
                    // whatever the status says, the client had
                    // written it off.
                    cTimedOut.inc();
                    continue;
                }
                switch (c.result.status) {
                case Status::Ok:
                    cCompleted.inc();
                    hist.record(lat);
                    if (sloNs == 0 || lat <= sloNs)
                        cGoodput.inc();
                    break;
                case Status::DeadlineExceeded:
                    cExpired.inc();
                    break;
                case Status::Rejected:
                case Status::Cancelled:
                case Status::UnsupportedVersion:
                    // Cancelled can only appear if the server goes
                    // away mid-run; all three are server-side
                    // refusals (UnsupportedVersion = a mutation
                    // kind on an un-negotiated connection).
                    cRejected.inc();
                    break;
                }
            }
            reaped += batch.size();
            const u64 doneAt =
                doneAtNs.load(std::memory_order_acquire);
            if (!doneAt)
                continue;
            if (reaped >=
                submitted.load(std::memory_order_relaxed))
                return;
            if (cq->closed() ||
                monotonicNowNs() > doneAt + drainNs) {
                // Stragglers (or a dead transport): count what will
                // never be measured and stop waiting.
                cTimedOut.inc(
                    submitted.load(std::memory_order_relaxed) -
                    reaped);
                return;
            }
        }
    });

    Rng rng(opt.seed);
    u64 schedNs = 0;
    std::size_t base = 0;
    for (u64 i = 0; i < opt.requests; ++i) {
        schedNs = nextArrival(schedNs, opt, rng);
        cScheduled.inc();

        // Pace to the schedule: sleep while far out, yield-spin the
        // last stretch. Running late is fine — the submission goes
        // out immediately and the lateness lands in the latency of
        // this (and only this) request's measurement.
        const u64 target = t0 + schedNs;
        for (;;) {
            const u64 now = monotonicNowNs();
            if (now >= target)
                break;
            if (target - now > 200'000)
                std::this_thread::sleep_for(
                    std::chrono::nanoseconds(target - now -
                                             100'000));
            else
                std::this_thread::yield();
        }

        if (inFlight.load(std::memory_order_relaxed) >=
            opt.maxInFlight) {
            cShedCap.inc();
            continue;
        }
        if (base + opt.keysPerRequest > keyPool.size())
            base = 0;
        schedOf[i] = schedNs;
        inFlight.fetch_add(1, std::memory_order_relaxed);
        submitted.fetch_add(1, std::memory_order_relaxed);
        submitOne(i, keyPool.subspan(base, opt.keysPerRequest),
                  opt.deadlineNs ? t0 + schedNs + opt.deadlineNs
                                 : u64{0});
        base += opt.keysPerRequest;
        cSubmitted.inc();
    }
    doneAtNs.store(monotonicNowNs(), std::memory_order_release);
    reaper.join();

    // The report is read back out of the registry snapshot — the
    // counters above are the single source of truth.
    const obs::Snapshot snap = reg.snapshot();
    auto tally = [&](const char *name) {
        return u64(obs::snapshotValue(snap, name));
    };
    rep.scheduled = tally("widx_openloop_scheduled_total");
    rep.submitted = tally("widx_openloop_submitted_total");
    rep.shedClientCap = tally("widx_openloop_shed_client_cap_total");
    rep.completed = tally("widx_openloop_completed_total");
    rep.timedOut = tally("widx_openloop_timed_out_total");
    rep.rejected = tally("widx_openloop_rejected_total");
    rep.expired = tally("widx_openloop_expired_total");
    rep.goodput = tally("widx_openloop_goodput_total");
    rep.elapsedSec = double(monotonicNowNs() - t0) * 1e-9;
    rep.offeredRate =
        rep.elapsedSec > 0 ? double(rep.scheduled) / rep.elapsedSec
                           : 0.0;
    rep.achievedRate =
        rep.elapsedSec > 0 ? double(rep.completed) / rep.elapsedSec
                           : 0.0;
    rep.goodputRate =
        rep.elapsedSec > 0 ? double(rep.goodput) / rep.elapsedSec
                           : 0.0;
    rep.latency = hist.summarize();
    rep.hist = hist;
    return rep;
}

} // namespace widx::sw::detail

#endif // WIDX_SERVICE_OPEN_LOOP_DRIVER_HH
