#include "service/sharded_index.hh"

#include <algorithm>
#include <cstring>
#include <thread>

#include "common/bitops.hh"
#include "common/logging.hh"

namespace widx::sw {

ShardedIndex::ShardedIndex(const db::HashIndex &index)
    : shards_{&index}, flat_(&index), shardShift_(0), shardMask_(0),
      indirect_(index.indirectKeys())
{
}

ShardedIndex::ShardedIndex(const db::Column &keys,
                           const db::IndexSpec &spec, unsigned shards,
                           NumaPolicy numa, bool pinBuilders,
                           const Topology *topo)
{
    const u64 total = nextPowerOfTwo(std::max<u64>(spec.buckets, 1));
    u64 s = nextPowerOfTwo(std::max<u64>(shards, 1));
    s = std::min<u64>(s, std::min<u64>(kMaxShards, total));

    db::IndexSpec shard_spec = spec;
    shard_spec.buckets = total / s;
    shardShift_ = log2Exact(total / s);
    shardMask_ = s - 1;
    indirect_ = spec.indirectKeys;

    arenas_.resize(std::size_t(s));
    owned_.resize(std::size_t(s));
    shards_.resize(std::size_t(s));

    // Target nodes: shards block-distribute over the nodes, so a
    // node owns a contiguous hash range and the walkers homed there
    // (same distribution) serve it. Computed for every policy —
    // dispatch routing wants the mapping even when arenas float.
    const Topology &t = topo ? *topo : Topology::host();
    shardNode_.resize(std::size_t(s));
    for (unsigned sh = 0; sh < s; ++sh)
        shardNode_[sh] = t.nodeForSlot(sh, unsigned(s));

    // Shard sh owns the keys whose global bucket index falls in its
    // hash range; duplicates of a key share a hash, so they share a
    // shard and keep the flat index's per-key chain order.
    auto buildShard = [&](unsigned sh) {
        arenas_[sh] = std::make_unique<Arena>();
        auto idx =
            std::make_unique<db::HashIndex>(shard_spec, *arenas_[sh]);
        for (RowId r = 0; r < keys.size(); ++r) {
            const u64 key = keys.at(r);
            if (shardOf(shard_spec.hashFn(key)) == sh)
                idx->insert(key, r, keys.addrOf(r));
        }
        owned_[sh] = std::move(idx);
        shards_[sh] = owned_[sh].get();
    };

    if (numa != NumaPolicy::None && s > 1) {
        // One build thread per shard: the arena pages are
        // first-touched where the builder runs. FirstTouch lets the
        // OS spread them (optionally pinning builders round-robin
        // over the usable CPUs); NodeBound pins each builder to a
        // CPU on the shard's target node, cycling within the node
        // when shards outnumber its CPUs.
        std::vector<unsigned> nextOnNode(t.nodes(), 0);
        std::vector<std::thread> builders;
        builders.reserve(std::size_t(s));
        for (unsigned sh = 0; sh < s; ++sh) {
            int cpu = -1;
            if (numa == NumaPolicy::NodeBound)
                cpu = int(t.cpuOnNode(shardNode_[sh],
                                      nextOnNode[shardNode_[sh]]++));
            builders.emplace_back([&, sh, cpu] {
                if (cpu >= 0)
                    pinThreadToCpu(t, unsigned(cpu));
                else if (pinBuilders)
                    pinCurrentThread(sh);
                buildShard(sh);
            });
        }
        for (auto &t_ : builders)
            t_.join();
    } else {
        for (unsigned sh = 0; sh < s; ++sh)
            buildShard(sh);
    }

    flat_ = s == 1 ? shards_[0] : nullptr;
}

void
ShardedIndex::prefetchStage(const u64 *hashes, std::size_t n,
                            bool tagged) const
{
    if (flat_) {
        flat_->prefetchStage(hashes, n, tagged);
        return;
    }
    if (tagged)
        for (std::size_t i = 0; i < n; ++i)
            prefetchRead(tagAddrFor(hashes[i]));
    else
        for (std::size_t i = 0; i < n; ++i)
            prefetchRead(bucketHeadFor(hashes[i]));
}

u64
ShardedIndex::tagFilterBatch(const u64 *hashes, std::size_t n,
                             u64 *bits) const
{
    if (flat_)
        return flat_->tagFilterBatch(hashes, n, bits);
    std::memset(bits, 0, ((n + 63) / 64) * sizeof(u64));
    u64 survivors = 0;
    for (std::size_t i = 0; i < n; ++i) {
        const u64 h = hashes[i];
        if (shards_[shardOf(h)]->tagMayMatchHash(h)) {
            bits[i >> 6] |= u64(1) << (i & 63);
            ++survivors;
        }
    }
    stats_.note(n, n - survivors);
    return survivors;
}

u64
ShardedIndex::entries() const
{
    u64 total = 0;
    for (const db::HashIndex *s : shards_)
        total += s->entries();
    return total;
}

u64
ShardedIndex::footprintBytes() const
{
    u64 total = 0;
    for (const db::HashIndex *s : shards_)
        total += s->footprintBytes();
    return total;
}

} // namespace widx::sw
