#include "service/sharded_index.hh"

#include <algorithm>
#include <cstring>
#include <thread>

#include "common/bitops.hh"
#include "common/failpoint.hh"
#include "common/logging.hh"
#include "swwalkers/probers.hh"

namespace widx::sw {

static_assert(ProbeSurface<ShardedIndex>,
              "ShardedIndex must satisfy the drain contract");

ShardedIndex::ShardedIndex(const db::HashIndex &index)
    : shards_{&index}, flat_(&index), shardShift_(0), shardMask_(0),
      hashFn_(index.hashFn()), indirect_(index.indirectKeys())
{
}

ShardedIndex::ShardedIndex(const db::Column &keys,
                           const db::IndexSpec &spec, unsigned shards,
                           NumaPolicy numa, bool pinBuilders,
                           const Topology *topo,
                           const MutationConfig &mut)
{
    const u64 total = nextPowerOfTwo(std::max<u64>(spec.buckets, 1));
    u64 s = nextPowerOfTwo(std::max<u64>(shards, 1));
    s = std::min<u64>(s, std::min<u64>(kMaxShards, total));

    live_ = mut.enabled || spec.live;
    mut_ = mut;
    fatal_if(live_ && spec.indirectKeys,
             "live mutation requires the direct key layout");

    db::IndexSpec shard_spec = spec;
    shard_spec.buckets = total / s;
    shard_spec.live = live_;
    shardShift_ = log2Exact(total / s);
    shardMask_ = s - 1;
    log2Shards_ = log2Exact(s);
    hashFn_ = spec.hashFn;
    indirect_ = spec.indirectKeys;

    arenas_.resize(std::size_t(s));
    owned_.resize(std::size_t(s));
    shards_.resize(std::size_t(s));

    // Target nodes: shards block-distribute over the nodes, so a
    // node owns a contiguous hash range and the walkers homed there
    // (same distribution) serve it. Computed for every policy —
    // dispatch routing wants the mapping even when arenas float.
    const Topology &t = topo ? *topo : Topology::host();
    shardNode_.resize(std::size_t(s));
    for (unsigned sh = 0; sh < s; ++sh)
        shardNode_[sh] = t.nodeForSlot(sh, unsigned(s));

    // Shard sh owns the keys whose global bucket index falls in its
    // hash range; duplicates of a key share a hash, so they share a
    // shard and keep the flat index's per-key chain order.
    auto buildShard = [&](unsigned sh) {
        arenas_[sh] = std::make_unique<Arena>();
        auto idx =
            std::make_unique<db::HashIndex>(shard_spec, *arenas_[sh]);
        for (RowId r = 0; r < keys.size(); ++r) {
            const u64 key = keys.at(r);
            if (shardOf(shard_spec.hashFn(key)) == sh)
                idx->insert(key, r, keys.addrOf(r));
        }
        owned_[sh] = std::move(idx);
        shards_[sh] = owned_[sh].get();
    };

    if (numa != NumaPolicy::None && s > 1) {
        // One build thread per shard: the arena pages are
        // first-touched where the builder runs. FirstTouch lets the
        // OS spread them (optionally pinning builders round-robin
        // over the usable CPUs); NodeBound pins each builder to a
        // CPU on the shard's target node, cycling within the node
        // when shards outnumber its CPUs.
        std::vector<unsigned> nextOnNode(t.nodes(), 0);
        std::vector<std::thread> builders;
        builders.reserve(std::size_t(s));
        for (unsigned sh = 0; sh < s; ++sh) {
            int cpu = -1;
            if (numa == NumaPolicy::NodeBound)
                cpu = int(t.cpuOnNode(shardNode_[sh],
                                      nextOnNode[shardNode_[sh]]++));
            builders.emplace_back([&, sh, cpu] {
                if (cpu >= 0)
                    pinThreadToCpu(t, unsigned(cpu));
                else if (pinBuilders)
                    pinCurrentThread(sh);
                buildShard(sh);
            });
        }
        for (auto &t_ : builders)
            t_.join();
    } else {
        for (unsigned sh = 0; sh < s; ++sh)
            buildShard(sh);
    }

    // Live instances never take the flat fast path, even with one
    // shard: every probe-surface call must resolve the shard
    // pointer through its atomic load so a rebuild's republication
    // is safe to observe mid-stream.
    flat_ = (s == 1 && !live_) ? shards_[0] : nullptr;

    if (live_) {
        writers_.resize(std::size_t(s));
        for (unsigned sh = 0; sh < s; ++sh)
            writers_[sh] = std::make_unique<WriterState>();
    }
}

u64
ShardedIndex::applyMutations(MutOp op, std::span<const u64> keys,
                             std::span<const u64> payloads)
{
    fatal_if(!live_, "applyMutations on a read-only index");
    panic_if(op != MutOp::Delete && payloads.size() != keys.size(),
             "insert/upsert needs one payload per key");
    if (keys.empty())
        return 0;

    // Group by shard outside any lock (one hash per key; shard
    // grouping is stable across rebuilds — rebuilds change a
    // shard's internal geometry, never the selector bits).
    std::vector<u64> hashes(keys.size());
    hashBatch(keys, {hashes.data(), hashes.size()});
    const unsigned S = shards();
    std::vector<std::vector<std::size_t>> byShard(S);
    for (std::size_t i = 0; i < keys.size(); ++i)
        byShard[shardOf(hashes[i])].push_back(i);

    u64 result = 0;
    std::vector<db::HashIndex::Node *> retired;
    for (unsigned s = 0; s < S; ++s) {
        const auto &group = byShard[s];
        if (group.empty())
            continue;
        WriterState &w = *writers_[s];
        MutexLock lk(w.m);
        db::HashIndex *cur = owned_[s].get();
        retired.clear();
        switch (op) {
          case MutOp::Insert:
            for (std::size_t i : group)
                cur->insertLive(keys[i], payloads[i]);
            result += group.size();
            break;
          case MutOp::Delete:
            for (std::size_t i : group)
                result += cur->eraseLive(keys[i], retired);
            break;
          case MutOp::Upsert:
            for (std::size_t i : group)
                if (cur->upsertLive(keys[i], payloads[i]))
                    ++result;
            break;
        }
        w.nMut[unsigned(op)].fetch_add(group.size(),
                                       std::memory_order_relaxed);

        // Retire this batch's unlinked nodes at the pre-advance
        // epoch, then advance: a reader pinned at or before this
        // epoch may hold them; one pinning after the advance has
        // already synchronized with the unlink stores.
        const u64 e = epochs_.current();
        for (db::HashIndex::Node *n : retired)
            w.limbo.push_back({n, e});
        epochs_.advance();

        // Load-factor watermark: regrow 2x and publish by epoch
        // swap. Checked after the batch so one rebuild absorbs the
        // whole burst.
        if (op != MutOp::Delete && mut_.rebuildLoadFactor > 0) {
            const u64 nb = cur->numBuckets();
            const bool capped =
                mut_.maxShardBuckets != 0 &&
                nb * 2 > mut_.maxShardBuckets;
            if (!capped &&
                double(cur->entries()) >
                    mut_.rebuildLoadFactor * double(nb))
                rebuildShard(s, cur);
        }

        drainLimbo(s, owned_[s].get());
    }
    return result;
}

void
ShardedIndex::rebuildShard(unsigned s, db::HashIndex *cur)
{
    WriterState &w = *writers_[s];
    auto arena = std::make_unique<Arena>();
    db::IndexSpec spec;
    spec.buckets = cur->numBuckets() * 2;
    spec.hashFn = cur->hashFn();
    spec.live = true;
    // The grown bucket array is addressed by hash bits entirely
    // *above* the shard selector: the original low-bits mask would
    // swallow the selector bits — constant within this shard — and
    // leave half the new buckets unreachable.
    spec.hashShift = u32(shardShift_ + log2Shards_);
    auto idx = std::make_unique<db::HashIndex>(spec, *arena);
    cur->forEachLiveEntry(
        [&](u64 k, u64 p) { idx->insert(k, p); });

    // Readers racing this window see the old array until the single
    // release store below, the new one after — never a mix. The
    // failpoint lets chaos_test freeze a writer right at the swap
    // while probes keep running.
    WIDX_FAILPOINT("sharded.rebuild_publish");
    std::atomic_ref<const db::HashIndex *>(shards_[s])
        .store(idx.get(), std::memory_order_release);

    // The old index (and every limbo node of its arena) dies when
    // the last pre-swap reader unpins.
    const u64 e = epochs_.current();
    w.limbo.clear();
    w.limboShards.push_back(
        {std::move(arenas_[s]), std::move(owned_[s]), e});
    arenas_[s] = std::move(arena);
    owned_[s] = std::move(idx);
    w.nRebuilds.fetch_add(1, std::memory_order_relaxed);
    epochs_.advance();
}

void
ShardedIndex::drainLimbo(unsigned s, db::HashIndex *cur)
{
    WriterState &w = *writers_[s];
    const u64 safe = epochs_.safeBefore();

    std::size_t keep = 0;
    for (RetiredNode &r : w.limbo) {
        if (r.epoch < safe)
            cur->recycleNode(r.node);
        else
            w.limbo[keep++] = r;
    }
    w.limbo.resize(keep);

    std::erase_if(w.limboShards, [safe](const RetiredShard &rs) {
        return rs.epoch < safe;
    });
}

void
ShardedIndex::prefetchStage(const u64 *hashes, std::size_t n,
                            bool tagged) const
{
    if (flat_) {
        flat_->prefetchStage(hashes, n, tagged);
        return;
    }
    if (tagged)
        for (std::size_t i = 0; i < n; ++i)
            prefetchRead(tagAddrFor(hashes[i]));
    else
        // widx-lint: epoch-guard -- address computation only, but
        // the shard pointer it chases is epoch-protected: the
        // dispatcher holds its pin across the prefetch sweep.
        for (std::size_t i = 0; i < n; ++i)
            prefetchRead(bucketHeadFor(hashes[i]));
}

u64
ShardedIndex::tagFilterBatch(const u64 *hashes, std::size_t n,
                             u64 *bits) const
{
    if (flat_)
        return flat_->tagFilterBatch(hashes, n, bits);
    std::memset(bits, 0, ((n + 63) / 64) * sizeof(u64));
    u64 survivors = 0;
    for (std::size_t i = 0; i < n; ++i) {
        const u64 h = hashes[i];
        if (shardPtr(shardOf(h))->tagMayMatchHash(h)) {
            bits[i >> 6] |= u64(1) << (i & 63);
            ++survivors;
        }
    }
    stats_.note(n, n - survivors);
    return survivors;
}

u64
ShardedIndex::entries() const
{
    u64 total = 0;
    for (unsigned s = 0; s < shards(); ++s)
        total += shardPtr(s)->entries();
    return total;
}

u64
ShardedIndex::footprintBytes() const
{
    u64 total = 0;
    for (unsigned s = 0; s < shards(); ++s)
        total += shardPtr(s)->footprintBytes();
    return total;
}

} // namespace widx::sw
