/**
 * @file
 * Hash-range-sharded index: the global bucket space of a chained
 * hash index split into S contiguous ranges, each backed by its own
 * bucket+tag arena.
 *
 * A flat HashIndex computes bucket = hash & (B - 1). The sharded
 * index keeps exactly that bucket space but sizes it as S * B'
 * buckets and folds a shard selector into the indexing:
 *
 *     global bucket = hash & (S * B' - 1)
 *     shard         = global bucket >> log2(B')   (top bits)
 *     local bucket  = hash & (B' - 1)             (low bits)
 *
 * Each shard is an ordinary db::HashIndex over its own Arena, so
 * shard arenas can be placed independently (NumaPolicy::FirstTouch
 * builds each shard on its own thread and lets the OS first-touch
 * policy spread the pages across memory controllers). Every key —
 * and every duplicate of a key — lands in exactly one shard, so
 * per-key match sets and chain order match the flat index.
 *
 * The class exposes the same hash-addressed probe surface the
 * interleaved drains are templated on (tagMayMatchHash /
 * tagAddrFor / bucketHeadFor / nodeKey, plus the batched dispatch
 * kernels), so amacDrain/coroDrain run unchanged against it. A
 * single-shard instance — including the view-of-an-existing-index
 * mode the service uses for one-shot calls — short-circuits to the
 * flat index, keeping the AVX2 tag filter and skipping the shard
 * resolve.
 */

#ifndef WIDX_SERVICE_SHARDED_INDEX_HH
#define WIDX_SERVICE_SHARDED_INDEX_HH

#include <memory>
#include <span>
#include <vector>

#include "common/arena.hh"
#include "common/topology.hh"
#include "db/column.hh"
#include "db/hash_index.hh"
#include "service/service_config.hh"

namespace widx::sw {

/** Hard cap on shards (thread fan-out at build, sanity). */
inline constexpr unsigned kMaxShards = 64;

class ShardedIndex
{
  public:
    using Node = db::HashIndex::Node;

    /** View an existing index as a single shard (no copy; the index
     *  must outlive the view). */
    explicit ShardedIndex(const db::HashIndex &index);

    /**
     * Build S shards from a key column (payload r = row id r, as in
     * HashIndex::buildFromColumn).
     *
     * @param spec global geometry: spec.buckets is the total bucket
     *        count across shards (rounded up to a power of two).
     * @param shards shard count; clamped to a power of two in
     *        [1, min(kMaxShards, total buckets)].
     * @param numa arena placement (see NumaPolicy). NodeBound pins
     *        each shard's build thread to a CPU on the shard's
     *        target node (Topology::nodeForSlot), so first-touch
     *        lands the arena pages node-local to the shard's home
     *        walkers.
     * @param pinBuilders with FirstTouch, pin shard build threads
     *        round-robin over the usable CPUs (NodeBound always
     *        pins).
     * @param topo topology override for tests; null = host.
     */
    ShardedIndex(const db::Column &keys, const db::IndexSpec &spec,
                 unsigned shards, NumaPolicy numa = NumaPolicy::None,
                 bool pinBuilders = false,
                 const Topology *topo = nullptr);

    ShardedIndex(const ShardedIndex &) = delete;
    ShardedIndex &operator=(const ShardedIndex &) = delete;

    unsigned shards() const { return unsigned(shards_.size()); }
    const db::HashIndex &shard(unsigned s) const { return *shards_[s]; }

    /** The flat index when there is exactly one shard (owned or
     *  viewed), else null — the service's fast-path dispatch. */
    const db::HashIndex *flatIndex() const { return flat_; }

    /** Shard selector: the top bits of the global bucket index. */
    unsigned
    shardOf(u64 hash) const
    {
        return unsigned((hash >> shardShift_) & shardMask_);
    }

    /** The shard's target NUMA node (block distribution over the
     *  build topology; 0 for views and single-node hosts). The
     *  mapping is computed for every placement policy so dispatch
     *  routing can home walkers even when arenas float. */
    unsigned shardNode(unsigned s) const { return shardNode_[s]; }

    /** Record one batched tag sweep in the cross-shard aggregate
     *  stats (the shard-affine drains filter against a single
     *  shard's index, which feeds only that shard's counters). */
    void noteTagSweep(u64 n, u64 rejected) const
    {
        stats_.note(n, rejected);
    }

    // --- Probe surface (hash-addressed; see db/hash_index.hh) ----------

    bool
    tagMayMatchHash(u64 hash) const
    {
        return shards_[shardOf(hash)]->tagMayMatchHash(hash);
    }

    const u8 *
    tagAddrFor(u64 hash) const
    {
        return shards_[shardOf(hash)]->tagAddrFor(hash);
    }

    const Node *
    bucketHeadFor(u64 hash) const
    {
        return shards_[shardOf(hash)]->bucketHeadFor(hash);
    }

    /** Resolve a node's key (layout is uniform across shards). */
    u64
    nodeKey(const Node &n) const
    {
        if (indirect_)
            return *reinterpret_cast<const u64 *>(
                std::uintptr_t(n.key));
        return n.key;
    }

    void
    hashBatch(std::span<const u64> keys, std::span<u64> hashes) const
    {
        shards_[0]->hashBatch(keys, hashes);
    }

    /** Dispatcher prefetch sweep, shard-resolved per key. */
    void prefetchStage(const u64 *hashes, std::size_t n,
                       bool tagged) const;

    /** Batched fingerprint filter (see HashIndex::tagFilterBatch).
     *  Single-shard instances take the flat (AVX2-dispatched) path;
     *  true sharding resolves per key — the tag arenas are disjoint
     *  allocations, so there is no single gather base. */
    u64 tagFilterBatch(const u64 *hashes, std::size_t n,
                       u64 *bits) const;

    /** Adaptive tagging (aggregated across shards when owned). */
    bool
    taggedWorthwhile(bool fallback) const
    {
        return flat_ ? flat_->taggedWorthwhile(fallback)
                     : stats_.worthwhile(fallback);
    }

    const db::TagFilterStats &
    tagStats() const
    {
        return flat_ ? flat_->tagStats() : stats_;
    }

    // --- Statistics ----------------------------------------------------

    u64 entries() const;
    u64 footprintBytes() const;

  private:
    /** Per-shard arenas and indexes (empty in view mode). */
    std::vector<std::unique_ptr<Arena>> arenas_;
    std::vector<std::unique_ptr<db::HashIndex>> owned_;
    /** Uniform shard access for both modes. */
    std::vector<const db::HashIndex *> shards_;
    const db::HashIndex *flat_ = nullptr;
    unsigned shardShift_ = 0; ///< log2(per-shard buckets)
    u64 shardMask_ = 0;       ///< shards - 1
    std::vector<unsigned> shardNode_{0}; ///< target node per shard
    bool indirect_ = false;
    db::TagFilterStats stats_; ///< cross-shard filter stats
};

} // namespace widx::sw

#endif // WIDX_SERVICE_SHARDED_INDEX_HH
