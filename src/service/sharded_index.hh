/**
 * @file
 * Hash-range-sharded index: the global bucket space of a chained
 * hash index split into S contiguous ranges, each backed by its own
 * bucket+tag arena.
 *
 * A flat HashIndex computes bucket = hash & (B - 1). The sharded
 * index keeps exactly that bucket space but sizes it as S * B'
 * buckets and folds a shard selector into the indexing:
 *
 *     global bucket = hash & (S * B' - 1)
 *     shard         = global bucket >> log2(B')   (top bits)
 *     local bucket  = hash & (B' - 1)             (low bits)
 *
 * Each shard is an ordinary db::HashIndex over its own Arena, so
 * shard arenas can be placed independently (NumaPolicy::FirstTouch
 * builds each shard on its own thread and lets the OS first-touch
 * policy spread the pages across memory controllers). Every key —
 * and every duplicate of a key — lands in exactly one shard, so
 * per-key match sets and chain order match the flat index.
 *
 * The class exposes the same hash-addressed probe surface the
 * interleaved drains are templated on (tagMayMatchHash /
 * tagAddrFor / bucketHeadFor / nodeKey, plus the batched dispatch
 * kernels), so amacDrain/coroDrain run unchanged against it. A
 * single-shard instance — including the view-of-an-existing-index
 * mode the service uses for one-shot calls — short-circuits to the
 * flat index, keeping the AVX2 tag filter and skipping the shard
 * resolve.
 */

#ifndef WIDX_SERVICE_SHARDED_INDEX_HH
#define WIDX_SERVICE_SHARDED_INDEX_HH

#include <atomic>
#include <memory>
#include <span>
#include <vector>

#include "common/arena.hh"
#include "common/epoch.hh"
#include "common/thread_safety.hh"
#include "common/topology.hh"
#include "db/column.hh"
#include "db/hash_index.hh"
#include "service/service_config.hh"

namespace widx::sw {

/** Hard cap on shards (thread fan-out at build, sanity). */
inline constexpr unsigned kMaxShards = 64;

/** Writer-path operations (the index-level spelling of the service's
 *  Insert/Delete/Upsert request kinds; kept separate so the db layer
 *  stays independent of the request plumbing). */
enum class MutOp : u8
{
    Insert = 0,
    Delete = 1,
    Upsert = 2,
};

class ShardedIndex
{
  public:
    using Node = db::HashIndex::Node;

    /** View an existing index as a single shard (no copy; the index
     *  must outlive the view). */
    explicit ShardedIndex(const db::HashIndex &index);

    /**
     * Build S shards from a key column (payload r = row id r, as in
     * HashIndex::buildFromColumn).
     *
     * @param spec global geometry: spec.buckets is the total bucket
     *        count across shards (rounded up to a power of two).
     * @param shards shard count; clamped to a power of two in
     *        [1, min(kMaxShards, total buckets)].
     * @param numa arena placement (see NumaPolicy). NodeBound pins
     *        each shard's build thread to a CPU on the shard's
     *        target node (Topology::nodeForSlot), so first-touch
     *        lands the arena pages node-local to the shard's home
     *        walkers.
     * @param pinBuilders with FirstTouch, pin shard build threads
     *        round-robin over the usable CPUs (NodeBound always
     *        pins).
     * @param topo topology override for tests; null = host.
     */
    ShardedIndex(const db::Column &keys, const db::IndexSpec &spec,
                 unsigned shards, NumaPolicy numa = NumaPolicy::None,
                 bool pinBuilders = false,
                 const Topology *topo = nullptr,
                 const MutationConfig &mut = {});

    ShardedIndex(const ShardedIndex &) = delete;
    ShardedIndex &operator=(const ShardedIndex &) = delete;

    unsigned shards() const { return unsigned(shards_.size()); }

    const db::HashIndex &
    shard(unsigned s) const
    {
        return *shardPtr(s);
    }

    /** The flat index when there is exactly one shard (owned or
     *  viewed), else null — the service's fast-path dispatch. */
    const db::HashIndex *flatIndex() const { return flat_; }

    /** Shard selector: the top bits of the global bucket index. */
    unsigned
    shardOf(u64 hash) const
    {
        return unsigned((hash >> shardShift_) & shardMask_);
    }

    /** The shard's target NUMA node (block distribution over the
     *  build topology; 0 for views and single-node hosts). The
     *  mapping is computed for every placement policy so dispatch
     *  routing can home walkers even when arenas float. */
    unsigned shardNode(unsigned s) const { return shardNode_[s]; }

    /** Record one batched tag sweep in the cross-shard aggregate
     *  stats (the shard-affine drains filter against a single
     *  shard's index, which feeds only that shard's counters). */
    void noteTagSweep(u64 n, u64 rejected) const
    {
        stats_.note(n, rejected);
    }

    // --- Probe surface (hash-addressed; see db/hash_index.hh) ----------

    bool
    tagMayMatchHash(u64 hash) const
    {
        return shardPtr(shardOf(hash))->tagMayMatchHash(hash);
    }

    const u8 *
    tagAddrFor(u64 hash) const
    {
        return shardPtr(shardOf(hash))->tagAddrFor(hash);
    }

    const Node *
    bucketHeadFor(u64 hash) const
    {
        // widx-lint: epoch-guard -- under live mutation the shard
        // this head belongs to can be retired by a rebuild; callers
        // hold an epoch pin for the whole walk.
        return shardPtr(shardOf(hash))->bucketHeadFor(hash);
    }

    /** Resolve a node's key (layout is uniform across shards).
     *  Same acquire atomic_ref read as HashIndex::nodeKey. */
    u64
    nodeKey(const Node &n) const
    {
        const u64 raw =
            std::atomic_ref<u64>(const_cast<Node &>(n).key)
                .load(std::memory_order_acquire);
        if (indirect_)
            return *reinterpret_cast<const u64 *>(
                std::uintptr_t(raw));
        return raw;
    }

    /** Node payload / next, forwarded to the uniform node layout
     *  (see HashIndex::nodePayload / nodeNext). */
    u64
    nodePayload(const Node &n) const
    {
        return std::atomic_ref<u64>(const_cast<Node &>(n).payload)
            .load(std::memory_order_relaxed);
    }

    const Node *
    nodeNext(const Node &n) const
    {
        // widx-lint: epoch-guard -- chain walks run under the
        // caller's epoch pin when the index is live.
        return std::atomic_ref<Node *>(const_cast<Node &>(n).next)
            .load(std::memory_order_acquire);
    }

    void
    hashBatch(std::span<const u64> keys, std::span<u64> hashes) const
    {
        // Deliberately does not touch a shard: unpinned threads
        // (submitters hashing at admission, writers grouping a
        // mutation batch) call this while a rebuild may be retiring
        // the shard a pointer load would land on. The function is a
        // copy — identical across every rebuild.
        hashFn_.hashBatch(keys, hashes);
    }

    /** Dispatcher prefetch sweep, shard-resolved per key. */
    void prefetchStage(const u64 *hashes, std::size_t n,
                       bool tagged) const;

    /** Batched fingerprint filter (see HashIndex::tagFilterBatch).
     *  Single-shard instances take the flat (AVX2-dispatched) path;
     *  true sharding resolves per key — the tag arenas are disjoint
     *  allocations, so there is no single gather base. */
    u64 tagFilterBatch(const u64 *hashes, std::size_t n,
                       u64 *bits) const;

    /** Adaptive tagging (aggregated across shards when owned). */
    bool
    taggedWorthwhile(bool fallback) const
    {
        return flat_ ? flat_->taggedWorthwhile(fallback)
                     : stats_.worthwhile(fallback);
    }

    const db::TagFilterStats &
    tagStats() const
    {
        return flat_ ? flat_->tagStats() : stats_;
    }

    // --- Live mutation (per-shard single writer) -----------------------
    //
    // Writers serialize on a per-shard mutex; probes take no locks
    // and keep running through the mutation (the HashIndex live
    // contract). Unlinked nodes and replaced shard indexes go into
    // per-shard limbo lists stamped with the retire epoch and are
    // reclaimed by that same shard's next writer once every reader
    // pinned before the retire has unpinned.

    /** Was this instance built with MutationConfig::enabled? */
    bool liveMutable() const { return live_; }

    /** Reader epoch registry: walkers claim a slot at spawn and pin
     *  around every window drain. */
    EpochManager &epochs() const { return epochs_; }

    /**
     * Apply one mutation batch. Keys are grouped by shard, each
     * group applied under its shard's writer mutex; the epoch
     * advances once per touched shard and that shard's limbo is
     * drained afterwards. `payloads` parallels `keys` for
     * Insert/Upsert (ignored for Delete).
     *
     * @return Insert: keys inserted. Delete: nodes erased. Upsert:
     *         payloads updated in place (so `keys.size() - result`
     *         were fresh inserts).
     */
    u64 applyMutations(MutOp op, std::span<const u64> keys,
                       std::span<const u64> payloads);

    /** Lifetime mutation count for one shard and op (metrics). */
    u64
    mutationsTotal(unsigned s, MutOp op) const
    {
        return writers_[s]->nMut[unsigned(op)].load(
            std::memory_order_relaxed);
    }

    /** Lifetime incremental rebuilds for one shard (metrics). */
    u64
    rebuildsTotal(unsigned s) const
    {
        return writers_[s]->nRebuilds.load(
            std::memory_order_relaxed);
    }

    // --- Statistics ----------------------------------------------------

    u64 entries() const;
    u64 footprintBytes() const;

  private:
    /** A node unlinked by eraseLive, waiting out its grace period. */
    struct RetiredNode
    {
        db::HashIndex::Node *node;
        u64 epoch; ///< epochs_.current() at unlink
    };

    /** A whole shard index replaced by an incremental rebuild. */
    struct RetiredShard
    {
        std::unique_ptr<Arena> arena;
        std::unique_ptr<db::HashIndex> idx;
        u64 epoch;
    };

    // widx-lint: padded -- one writer per shard; adjacent shards'
    // writers run on different threads and must not share the line.
    struct alignas(kCacheBlockBytes) WriterState
    {
        Mutex m;
        /** Retired overflow nodes of the *current* shard index,
         *  recycled into its freelist after grace. */
        std::vector<RetiredNode> limbo WIDX_GUARDED_BY(m);
        /** Replaced shard indexes (arena dies after grace; any
         *  pending limbo nodes of that index die with it). */
        std::vector<RetiredShard> limboShards WIDX_GUARDED_BY(m);
        std::atomic<u64> nMut[3]{};
        std::atomic<u64> nRebuilds{};
    };

    /** Shard pointer load: acquire atomic_ref, because a live
     *  rebuild republishes the element concurrently (plain mov for
     *  the read-only case). */
    const db::HashIndex *
    shardPtr(unsigned s) const
    {
        return std::atomic_ref<const db::HashIndex *>(
                   const_cast<const db::HashIndex *&>(shards_[s]))
            .load(std::memory_order_acquire);
    }

    /** Writer-side (holds writers_[s]->m): grow the shard 2x into a
     *  fresh arena and publish by pointer swap. */
    void rebuildShard(unsigned s, db::HashIndex *cur)
        WIDX_REQUIRES(writers_[s]->m);

    /** Writer-side: reclaim limbo entries whose grace elapsed. */
    void drainLimbo(unsigned s, db::HashIndex *cur)
        WIDX_REQUIRES(writers_[s]->m);

    /** Per-shard arenas and indexes (empty in view mode). */
    std::vector<std::unique_ptr<Arena>> arenas_;
    std::vector<std::unique_ptr<db::HashIndex>> owned_;
    /** Uniform shard access for both modes. Elements are republished
     *  by live rebuilds; all reads go through shardPtr(). */
    std::vector<const db::HashIndex *> shards_;
    const db::HashIndex *flat_ = nullptr;
    unsigned shardShift_ = 0; ///< log2(per-shard buckets)
    u64 shardMask_ = 0;       ///< shards - 1
    unsigned log2Shards_ = 0; ///< log2(shard count)
    std::vector<unsigned> shardNode_{0}; ///< target node per shard
    db::HashFn hashFn_{}; ///< shard-free copy for hashBatch
    bool indirect_ = false;
    bool live_ = false;
    MutationConfig mut_{};
    db::TagFilterStats stats_; ///< cross-shard filter stats
    /** Per-shard writer state (only populated when live_). */
    std::vector<std::unique_ptr<WriterState>> writers_;
    mutable EpochManager epochs_;
};

} // namespace widx::sw

#endif // WIDX_SERVICE_SHARDED_INDEX_HH
