/**
 * @file
 * SLO-driven admission control for the index service.
 *
 * The service's central latency trade — hold a tail window open so
 * drains see full-width batches, at the cost of queue-wait for the
 * requests parked in it — was a static bool (coalesceTails). That is
 * the wrong shape for a server: the right hold depends on load, and
 * under overload no hold policy saves you — only shedding does.
 * AdmissionController closes the loop on the measured signal
 * instead:
 *
 *  - **Signal.** Walkers feed each request's queue-wait (submit ->
 *    first window claim) into a dedicated sharded LatencyRecorder at
 *    claim time; the controller samples it in wall-clock intervals
 *    (LatencyRecorder::intervalSince) and reads the *window's* p99 —
 *    a moving percentile over recent traffic, not the run's history.
 *
 *  - **Actuators.** Two, engaged AIMD-style in sequence:
 *    `holdKeys` — seal an open window once it holds this many keys
 *    (chunk = full coalescing, 1 = seal immediately; this is the
 *    coalesceTails axis made continuous); and `budgetKeys` — a bound
 *    on keys parked in the admission queues, over which submit()
 *    rejects (backpressure). Over target, the controller first
 *    halves the hold (stop trading latency for width), then halves
 *    the budget (shed: under sustained overload queue-wait is
 *    queue-depth divided by drain rate, so bounding the queue is the
 *    only lever that bounds the percentile). Under target it
 *    recovers additively — budget first, hold last — so a load dip
 *    doesn't slingshot into full coalescing.
 *
 *  - **Cadence.** One walker per interval is elected by CAS to run
 *    the adjustment (observe() is called after every drained window;
 *    losers and below-minimum-sample intervals cost one relaxed
 *    load). Intervals with fewer than `minIntervalSamples` claims
 *    leave the cursor in place so sparse traffic accumulates instead
 *    of being judged on noise.
 *
 * The controller never touches the service's queues itself — it only
 * publishes the two knobs as relaxed atomics that the submit path
 * reads. See src/service/README.md ("Overload and failure
 * handling").
 */

#ifndef WIDX_SERVICE_ADMISSION_HH
#define WIDX_SERVICE_ADMISSION_HH

#include <atomic>

#include "common/latency.hh"
#include "common/thread_safety.hh"

namespace widx::sw {

/** Closed-loop admission knobs (ServiceConfig::admission). */
struct AdmissionConfig
{
    /** Master switch: on, the AIMD controller drives tail-window
     *  holds and the queue budget and ServiceConfig::coalesceTails
     *  is ignored (off keeps the static coalesceTails behavior as a
     *  forced mode). Forces latency recording on — the controller
     *  is driven by the measured queue-wait. */
    bool adaptive = false;
    /** The SLO: windowed queue-wait p99 the controller steers to. */
    u64 targetQueueP99Ns = 2'000'000;
    /** Controller cadence: adjust at most once per interval. */
    u64 intervalNs = 2'000'000;
    /** Minimum claims in an interval before it is judged; sparser
     *  intervals accumulate into the next one. */
    u64 minIntervalSamples = 32;
    /** Additive recovery step for the hold threshold (keys). */
    u32 holdStepKeys = 8;
    /** Additive recovery step for the queue budget (keys). */
    u64 budgetStepKeys = 512;
    /** Floor the budget never shrinks below (keeps a full window's
     *  worth of admission even at max shed). */
    u64 minBudgetKeys = 256;
    /** Ceiling / initial value of the queue budget. */
    u64 maxBudgetKeys = u64(1) << 20;
};

/** Point-in-time controller state (ServiceStats::admission). */
struct AdmissionSnapshot
{
    u32 holdKeys = 0;      ///< current open-window seal threshold
    u64 budgetKeys = 0;    ///< current queued-key budget
    u64 adjustments = 0;   ///< judged intervals
    u64 decreases = 0;     ///< intervals that halved hold or budget
    u64 lastWindowP99Ns = 0; ///< last judged interval's queue p99
    u64 lastWindowCount = 0; ///< samples in that interval
};

class AdmissionController
{
  public:
    /** @param chunkKeys the service's dispatch-window capacity (the
     *  hold ceiling); @param recorderShards concurrency shards for
     *  the claim-time recorder (walkers + 1, as elsewhere). */
    AdmissionController(const AdmissionConfig &cfg, u32 chunkKeys,
                        unsigned recorderShards);

    /** The open-window seal threshold, in [1, chunkKeys]. */
    u32
    holdKeys() const
    {
        return hold_.load(std::memory_order_relaxed);
    }

    /** The queued-key budget submit() enforces. */
    u64
    budgetKeys() const
    {
        return budget_.load(std::memory_order_relaxed);
    }

    /** Feed one request's measured queue-wait (called by the walker
     *  that first claims a segment of the request). */
    void
    recordQueueWait(u64 ns)
    {
        rec_.record(ns);
    }

    /** Controller tick: cheap unless `nowNs` crossed the interval
     *  boundary *and* this caller wins the CAS election, in which
     *  case the interval is sampled and the knobs adjust. Called by
     *  walkers after each drained window. */
    void observe(u64 nowNs);

    AdmissionSnapshot snapshot() const;

  private:
    /** The elected adjuster's interval judgement; needs the cursor
     *  lock (observe() try-locks and skips when a previous adjuster
     *  is still inside). */
    void adjustLocked() WIDX_REQUIRES(m_);

    const AdmissionConfig cfg_;
    const u32 chunk_;

    std::atomic<u32> hold_;
    std::atomic<u64> budget_;
    std::atomic<u64> nextAdjustNs_{0};

    std::atomic<u64> adjustments_{0};
    std::atomic<u64> decreases_{0};
    std::atomic<u64> lastP99_{0};
    std::atomic<u64> lastCount_{0};

    LatencyRecorder rec_;
    /** Interval cursor; only the elected adjuster (under m_)
     *  advances it. */
    Mutex m_;
    LatencyHistogram cursor_ WIDX_GUARDED_BY(m_);
};

} // namespace widx::sw

#endif // WIDX_SERVICE_ADMISSION_HH
