#include "db/plan.hh"

namespace widx::db {

const char *
opClassName(OpClass c)
{
    switch (c) {
      case OpClass::Index:
        return "Index";
      case OpClass::Scan:
        return "Scan";
      case OpClass::SortJoin:
        return "Sort&Join";
      case OpClass::Other:
        return "Other";
      default:
        return "?";
    }
}

} // namespace widx::db
