/**
 * @file
 * Multiply-free hash function IR.
 *
 * The same hash must be computed by three consumers: the DBMS build
 * side (C++), the Widx dispatcher (a Table 1 program — note Table 1
 * has no multiply), and the baseline-core µop trace (a dependent ALU
 * chain). A HashFn is therefore a sequence of shift-combine steps —
 * exactly the fused ADD-SHF / AND-SHF / XOR-SHF operations Widx
 * provides — with 64-bit constants. One IR instance is interpreted,
 * compiled, or expanded by each consumer.
 *
 * Step semantics over accumulator h (initialized to the key):
 *   operand X = (useSelf ? h : constant), shifted by shamt in dir;
 *   h = h  op  X,     op in {xor, add, and}.
 *
 * Presets model the paper's spectrum of hashing costs: the kernel's
 * trivial MASK/PRIME hash (Listing 1), a MonetDB-like robust mix,
 * a Fibonacci-style mix, and an expensive double-key normalizing
 * hash ("computationally intensive hashing" of TPC-H q20).
 */

#ifndef WIDX_DB_HASH_FN_HH
#define WIDX_DB_HASH_FN_HH

#include <span>
#include <string>
#include <vector>

#include "common/types.hh"

namespace widx::db {

/** Combine operator of one hash step. */
enum class HashCombine : u8
{
    Xor,
    Add,
    And,
};

/** Shift applied to the step operand before combining. */
enum class HashShift : u8
{
    None,
    Lsl,
    Lsr,
};

struct HashStep
{
    HashCombine combine = HashCombine::Xor;
    HashShift shift = HashShift::None;
    u8 shamt = 0;
    /** Operand is h itself (xorshift style) instead of the constant. */
    bool useSelf = false;
    u64 constant = 0;

    /** Apply this step to accumulator h. */
    u64 apply(u64 h) const;
};

class HashFn
{
  public:
    HashFn() = default;
    HashFn(std::string name, std::vector<HashStep> steps)
        : name_(std::move(name)), steps_(std::move(steps))
    {
    }

    /** Hash a 64-bit key pattern. */
    u64
    operator()(u64 key) const
    {
        u64 h = key;
        for (const HashStep &s : steps_)
            h = s.apply(h);
        return h;
    }

    /**
     * Hash a whole batch of keys (the software dispatcher stage of
     * the decoupled probe pipeline).
     *
     * The loop nest is inverted relative to operator(): the outer
     * loop runs over hash *steps* and the inner loop over keys, so
     * each step is a straight-line, branch-free kernel the compiler
     * can vectorize — per-key latency chains become per-batch
     * throughput, exactly the hashing/walking decoupling of the
     * paper's dispatcher expressed in software.
     *
     * @param keys input keys.
     * @param out receives one hash per key; must be at least
     *            keys.size() long. May alias keys exactly (in-place
     *            hashing); partially overlapping spans are
     *            rejected.
     */
    void hashBatch(std::span<const u64> keys, std::span<u64> out) const;

    const std::string &name() const { return name_; }
    const std::vector<HashStep> &steps() const { return steps_; }

    /** Dependent ALU operations on the hashing critical path (one per
     *  step — each maps to one fused Widx instruction). */
    unsigned compOps() const { return unsigned(steps_.size()); }

    /** Number of distinct constants the program must keep in
     *  registers (the paper's rationale for 32 registers). */
    unsigned numConstants() const;

    // --- Presets -------------------------------------------------------

    /** Listing 1: HASH(X) = ((X) & MASK) ^ HPRIME. */
    static HashFn kernelMaskXor();

    /** MonetDB-like robust mix: 6 shift-combine steps. */
    static HashFn monetdbRobust();

    /** Fibonacci-style multiplicative hash decomposed into
     *  shift-adds: 8 steps. */
    static HashFn fibonacciShiftAdd();

    /** Expensive hash for double-typed keys (mantissa/exponent
     *  folding plus a robust mix): 12 steps. */
    static HashFn doubleKey();

  private:
    std::string name_;
    std::vector<HashStep> steps_;
};

} // namespace widx::db

#endif // WIDX_DB_HASH_FN_HH
