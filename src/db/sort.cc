#include "db/sort.hh"

#include <algorithm>
#include <chrono>
#include <numeric>

namespace widx::db {

std::vector<RowId>
sortRows(const Column &col)
{
    std::vector<RowId> rows(col.size());
    std::iota(rows.begin(), rows.end(), RowId{0});
    std::sort(rows.begin(), rows.end(), [&](RowId a, RowId b) {
        return col.at(a) < col.at(b);
    });
    return rows;
}

std::vector<u64>
sortValues(const Column &col)
{
    std::vector<u64> vals;
    vals.reserve(col.size());
    for (RowId r = 0; r < col.size(); ++r)
        vals.push_back(col.at(r));
    std::sort(vals.begin(), vals.end());
    return vals;
}

JoinResult
sortMergeJoin(const Column &left, const Column &right,
              bool materialize)
{
    auto start = std::chrono::steady_clock::now();

    std::vector<RowId> ls = sortRows(left);
    std::vector<RowId> rs = sortRows(right);

    auto sorted = std::chrono::steady_clock::now();

    JoinResult result;
    result.probes = right.size();

    std::size_t i = 0;
    std::size_t j = 0;
    while (i < ls.size() && j < rs.size()) {
        const u64 lv = left.at(ls[i]);
        const u64 rv = right.at(rs[j]);
        if (lv < rv) {
            ++i;
        } else if (lv > rv) {
            ++j;
        } else {
            // Equal-key runs: emit the cross product.
            std::size_t i_end = i;
            while (i_end < ls.size() && left.at(ls[i_end]) == lv)
                ++i_end;
            std::size_t j_end = j;
            while (j_end < rs.size() && right.at(rs[j_end]) == lv)
                ++j_end;
            for (std::size_t a = i; a < i_end; ++a) {
                for (std::size_t b = j; b < j_end; ++b) {
                    ++result.matches;
                    if (materialize)
                        result.pairs.push_back({ls[a], rs[b]});
                }
            }
            i = i_end;
            j = j_end;
        }
    }

    auto done = std::chrono::steady_clock::now();
    result.buildSeconds =
        std::chrono::duration<double>(sorted - start).count();
    result.probeSeconds =
        std::chrono::duration<double>(done - sorted).count();
    return result;
}

} // namespace widx::db
