/**
 * @file
 * No-partitioning hash join (the paper's Section 2.2 example and the
 * Balkesen et al. kernel it evaluates): build a hash index on the
 * smaller relation, then probe it with every key of the larger one.
 *
 * The probe loop is exactly the indexing operation Widx accelerates;
 * JoinResult reports build and probe phases separately so the Fig. 2
 * breakdown can attribute them to "Index" time.
 */

#ifndef WIDX_DB_HASH_JOIN_HH
#define WIDX_DB_HASH_JOIN_HH

#include <vector>

#include "common/arena.hh"
#include "db/column.hh"
#include "db/hash_index.hh"
#include "swwalkers/pipeline_config.hh"

namespace widx::sw {
class IndexService;
enum class Status : u8;
}

namespace widx::db {

/** One matched pair of row ids (build row, probe row). */
struct JoinPair
{
    RowId buildRow;
    RowId probeRow;
};

struct JoinResult
{
    std::vector<JoinPair> pairs;
    double buildSeconds = 0.0;
    double probeSeconds = 0.0;
    u64 probes = 0;
    u64 matches = 0;
    /** How the probe phase completed: sw::Status, always Ok (0) on
     *  the direct HashIndex paths. The IndexService overload sets it
     *  non-Ok when the service gave up mid-run (stopped, or a slice
     *  expired) — the join is then partial and pairs/matches must
     *  not be trusted, mirroring ServiceResult's non-Ok contract. */
    sw::Status status = sw::Status{};
};

/**
 * Equi-join build.probe on build_keys = probe_keys.
 *
 * @param build_keys column the index is built on (smaller relation).
 * @param probe_keys column driving the probes (outer relation).
 * @param spec index geometry; spec.buckets is usually sized to the
 *        build cardinality.
 * @param arena storage for the index.
 * @param materialize when false, matches are counted but not stored
 *        (large joins in benchmarks).
 * @param cfg probe-pipeline knobs: batch/tagged/adaptiveTags select
 *        the dispatcher schedule; cfg.walkers > 1 runs the probe
 *        phase on a scoped sw::IndexService (K persistent walker
 *        threads serving this one call) with matches merged
 *        deterministically — probeBatch order — back onto the
 *        calling thread. Callers probing repeatedly should hold a
 *        service and use the IndexService overload of probeAll
 *        instead, paying the thread-spawn tax once.
 */
JoinResult hashJoin(const Column &build_keys, const Column &probe_keys,
                    const IndexSpec &spec, Arena &arena,
                    bool materialize = true,
                    const sw::PipelineConfig &cfg = {});

/**
 * Probe an existing index with every key of a column; the core of
 * Listing 1's do_index. Used by tests and by the host-side Fig. 2
 * measurement. cfg.walkers > 1 probes on a sw::WalkerPool (see
 * hashJoin).
 */
JoinResult probeAll(const HashIndex &index, const Column &probe_keys,
                    bool materialize = true,
                    const sw::PipelineConfig &cfg = {});

/**
 * Probe through a long-lived sw::IndexService: the column's keys
 * fan out as sliced async requests served by the service's parked
 * walkers (and shards), so repeated calls pay no per-call thread
 * spawn. The emitted pair sequence is byte-identical to the
 * single-threaded probeBatch path. Bounded admission is honored,
 * not bypassed: the fan-out keeps a limited number of slices in
 * flight and resubmits slices the service sheds (Status::Rejected),
 * so a bounded or adaptive admission budget backpressures this
 * caller instead of silently dropping part of the join. Check
 * JoinResult::status — non-Ok (service stopped mid-run, deadline)
 * means the join is partial.
 */
JoinResult probeAll(sw::IndexService &service,
                    const Column &probe_keys,
                    bool materialize = true);

} // namespace widx::db

#endif // WIDX_DB_HASH_JOIN_HH
