#include "db/scan.hh"

namespace widx::db {

std::vector<RowId>
scanSelect(const Column &col, const RangePredicate &pred)
{
    std::vector<RowId> out;
    const u64 n = col.size();
    for (RowId r = 0; r < n; ++r)
        if (pred.matches(col.at(r)))
            out.push_back(r);
    return out;
}

u64
scanCount(const Column &col, const RangePredicate &pred)
{
    u64 count = 0;
    const u64 n = col.size();
    for (RowId r = 0; r < n; ++r)
        if (pred.matches(col.at(r)))
            ++count;
    return count;
}

std::vector<u64>
scanGather(const Column &col, const std::vector<RowId> &rows)
{
    std::vector<u64> out;
    out.reserve(rows.size());
    for (RowId r : rows)
        out.push_back(col.at(r));
    return out;
}

} // namespace widx::db
