/**
 * @file
 * Arena-backed typed column and table (column-store layout).
 *
 * Columns are contiguous so that host pointers double as simulated
 * addresses with realistic spatial locality (multiple keys per cache
 * block — the property the decoupled dispatcher exploits).
 */

#ifndef WIDX_DB_COLUMN_HH
#define WIDX_DB_COLUMN_HH

#include <memory>
#include <string>
#include <vector>

#include "common/arena.hh"
#include "common/logging.hh"
#include "db/value.hh"

namespace widx::db {

class Column
{
  public:
    /**
     * @param name column name.
     * @param kind logical type (determines element width).
     * @param arena backing storage.
     * @param capacity maximum number of rows.
     */
    Column(std::string name, ValueKind kind, Arena &arena,
           u64 capacity);

    const std::string &name() const { return name_; }
    ValueKind kind() const { return kind_; }
    u64 size() const { return size_; }
    u64 capacity() const { return capacity_; }
    u32 elemWidth() const { return elemBytes(kind_); }

    /** Append a value (64-bit carrier pattern). */
    void
    push(u64 v)
    {
        panic_if(size_ >= capacity_, "column '%s' is full",
                 name_.c_str());
        if (kind_ == ValueKind::U32)
            reinterpret_cast<u32 *>(base_)[size_] = u32(v);
        else
            reinterpret_cast<u64 *>(base_)[size_] = v;
        ++size_;
    }

    /** Value at a row, widened to the 64-bit carrier. */
    u64
    at(RowId row) const
    {
        panic_if(row >= size_, "row %llu out of range in '%s'",
                 (unsigned long long)row, name_.c_str());
        if (kind_ == ValueKind::U32)
            return reinterpret_cast<const u32 *>(base_)[row];
        return reinterpret_cast<const u64 *>(base_)[row];
    }

    /** Simulated (= host) address of a row's storage. */
    Addr
    addrOf(RowId row) const
    {
        return Addr(reinterpret_cast<std::uintptr_t>(base_)) +
               row * elemWidth();
    }

    /** Base address of the column storage. */
    Addr baseAddr() const
    {
        return Addr(reinterpret_cast<std::uintptr_t>(base_));
    }

    /** Total bytes of live data. */
    u64 bytes() const { return u64(size_) * elemWidth(); }

  private:
    std::string name_;
    ValueKind kind_;
    u64 capacity_;
    u64 size_ = 0;
    unsigned char *base_;
};

/** A named set of equal-length columns. */
class Table
{
  public:
    explicit Table(std::string name)
        : name_(std::move(name))
    {
    }

    /** Create and register a column; returns a stable reference. */
    Column &addColumn(const std::string &col_name, ValueKind kind,
                      Arena &arena, u64 capacity);

    Column &column(const std::string &col_name);
    const Column &column(const std::string &col_name) const;

    bool hasColumn(const std::string &col_name) const;

    const std::string &name() const { return name_; }
    std::size_t numColumns() const { return cols_.size(); }

    /** Rows in the first column (all columns should agree). */
    u64 rows() const;

  private:
    std::string name_;
    std::vector<std::unique_ptr<Column>> cols_;
};

} // namespace widx::db

#endif // WIDX_DB_COLUMN_HH
