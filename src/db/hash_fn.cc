#include "db/hash_fn.hh"

#include <algorithm>
#include <set>

#include "common/logging.hh"

namespace widx::db {

u64
HashStep::apply(u64 h) const
{
    u64 x = useSelf ? h : constant;
    switch (shift) {
      case HashShift::None:
        break;
      case HashShift::Lsl:
        x <<= shamt;
        break;
      case HashShift::Lsr:
        x >>= shamt;
        break;
    }
    switch (combine) {
      case HashCombine::Xor:
        return h ^ x;
      case HashCombine::Add:
        return h + x;
      case HashCombine::And:
        return h & x;
    }
    panic("bad hash combine");
}

namespace {

/** Per-key batch kernel for one hash step: all control decisions are
 *  template parameters, so the loop body is branch-free and
 *  vectorizable. */
template <HashCombine C, HashShift S, bool Self>
void
stepBatch(u64 *h, std::size_t n, unsigned shamt, u64 constant)
{
    for (std::size_t i = 0; i < n; ++i) {
        u64 x = Self ? h[i] : constant;
        if constexpr (S == HashShift::Lsl)
            x <<= shamt;
        else if constexpr (S == HashShift::Lsr)
            x >>= shamt;
        if constexpr (C == HashCombine::Xor)
            h[i] ^= x;
        else if constexpr (C == HashCombine::Add)
            h[i] += x;
        else
            h[i] &= x;
    }
}

using StepKernel = void (*)(u64 *, std::size_t, unsigned, u64);

template <HashCombine C, HashShift S>
StepKernel
kernelForSelf(bool use_self)
{
    return use_self ? &stepBatch<C, S, true> : &stepBatch<C, S, false>;
}

template <HashCombine C>
StepKernel
kernelForShift(HashShift shift, bool use_self)
{
    switch (shift) {
      case HashShift::None:
        return kernelForSelf<C, HashShift::None>(use_self);
      case HashShift::Lsl:
        return kernelForSelf<C, HashShift::Lsl>(use_self);
      case HashShift::Lsr:
        return kernelForSelf<C, HashShift::Lsr>(use_self);
    }
    panic("bad hash shift");
}

StepKernel
kernelFor(const HashStep &s)
{
    switch (s.combine) {
      case HashCombine::Xor:
        return kernelForShift<HashCombine::Xor>(s.shift, s.useSelf);
      case HashCombine::Add:
        return kernelForShift<HashCombine::Add>(s.shift, s.useSelf);
      case HashCombine::And:
        return kernelForShift<HashCombine::And>(s.shift, s.useSelf);
    }
    panic("bad hash combine");
}

} // namespace

void
HashFn::hashBatch(std::span<const u64> keys, std::span<u64> out) const
{
    panic_if(out.size() < keys.size(),
             "hashBatch output span is too small");
    const std::size_t n = keys.size();
    if (out.data() != keys.data()) {
        panic_if(out.data() < keys.data() + n &&
                     keys.data() < out.data() + n,
                 "hashBatch spans may alias exactly, not overlap");
        std::copy(keys.begin(), keys.end(), out.begin());
    }
    for (const HashStep &s : steps_)
        kernelFor(s)(out.data(), n, s.shamt, s.constant);
}

unsigned
HashFn::numConstants() const
{
    std::set<u64> consts;
    for (const HashStep &s : steps_)
        if (!s.useSelf)
            consts.insert(s.constant);
    return unsigned(consts.size());
}

HashFn
HashFn::kernelMaskXor()
{
    // Listing 1: #define HASH(X) (((X) & MASK) ^ HPRIME)
    return HashFn("kernel-mask-xor",
                  {
                      {HashCombine::And, HashShift::None, 0, false,
                       0xFFFFFFFFull},
                      {HashCombine::Xor, HashShift::None, 0, false,
                       0x9E3779B9ull},
                  });
}

HashFn
HashFn::monetdbRobust()
{
    // A robust mix in the spirit of MonetDB's hash: alternate
    // self-xorshifts with constant injections so every input bit
    // affects the bucket bits.
    return HashFn("monetdb-robust",
                  {
                      {HashCombine::Xor, HashShift::Lsr, 33, true, 0},
                      {HashCombine::Add, HashShift::None, 0, false,
                       0xFF51AFD7ED558CCDull},
                      {HashCombine::Xor, HashShift::Lsl, 21, true, 0},
                      {HashCombine::Add, HashShift::Lsr, 7, true, 0},
                      {HashCombine::Xor, HashShift::Lsr, 28, true, 0},
                      {HashCombine::Add, HashShift::None, 0, false,
                       0xC4CEB9FE1A85EC53ull},
                  });
}

HashFn
HashFn::fibonacciShiftAdd()
{
    // Multiplication by the 64-bit golden-ratio constant decomposed
    // into shift-adds (Widx has no multiplier): an approximation that
    // keeps the avalanche quality adequate for bucket selection.
    return HashFn("fibonacci-shift-add",
                  {
                      {HashCombine::Add, HashShift::Lsl, 61, true, 0},
                      {HashCombine::Add, HashShift::Lsl, 59, true, 0},
                      {HashCombine::Xor, HashShift::Lsr, 31, true, 0},
                      {HashCombine::Add, HashShift::Lsl, 28, true, 0},
                      {HashCombine::Add, HashShift::None, 0, false,
                       0x9E3779B97F4A7C15ull},
                      {HashCombine::Xor, HashShift::Lsr, 27, true, 0},
                      {HashCombine::Add, HashShift::Lsl, 13, true, 0},
                      {HashCombine::Xor, HashShift::Lsr, 33, true, 0},
                  });
}

HashFn
HashFn::doubleKey()
{
    // Double-typed keys (TPC-H q20): fold exponent into mantissa so
    // nearby magnitudes separate, then run a deep robust mix. The
    // paper singles this out as "computationally intensive hashing".
    return HashFn("double-key",
                  {
                      {HashCombine::Xor, HashShift::Lsr, 52, true, 0},
                      {HashCombine::Add, HashShift::Lsl, 13, true, 0},
                      {HashCombine::Xor, HashShift::Lsr, 7, true, 0},
                      {HashCombine::Add, HashShift::None, 0, false,
                       0xBF58476D1CE4E5B9ull},
                      {HashCombine::Xor, HashShift::Lsr, 17, true, 0},
                      {HashCombine::Add, HashShift::Lsl, 31, true, 0},
                      {HashCombine::Xor, HashShift::Lsr, 11, true, 0},
                      {HashCombine::Add, HashShift::None, 0, false,
                       0x94D049BB133111EBull},
                      {HashCombine::Xor, HashShift::Lsr, 29, true, 0},
                      {HashCombine::Add, HashShift::Lsl, 5, true, 0},
                      {HashCombine::Add, HashShift::None, 0, false,
                       0x2545F4914F6CDD1Dull},
                      {HashCombine::Xor, HashShift::Lsr, 32, true, 0},
                  });
}

} // namespace widx::db
