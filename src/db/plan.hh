/**
 * @file
 * Per-operator time attribution for query plans (Fig. 2a machinery).
 *
 * MonetDB was profiled with VTune by grouping functions into operator
 * classes; our plan executor reproduces the classification by timing
 * each plan step and charging it to one of the four Fig. 2a classes.
 */

#ifndef WIDX_DB_PLAN_HH
#define WIDX_DB_PLAN_HH

#include <array>
#include <chrono>
#include <string>

#include "common/types.hh"

namespace widx::db {

/** The Fig. 2a operator classes. */
enum class OpClass : u8
{
    Index,    ///< hash-index build + probe
    Scan,     ///< sequential selections
    SortJoin, ///< sort operators and sort-merge joins
    Other,    ///< aggregation, library code, materialization
    NumClasses,
};

const char *opClassName(OpClass c);

/** Accumulated wall-clock seconds per operator class. */
class PlanBreakdown
{
  public:
    void
    add(OpClass c, double seconds)
    {
        seconds_[std::size_t(c)] += seconds;
    }

    double
    seconds(OpClass c) const
    {
        return seconds_[std::size_t(c)];
    }

    double
    total() const
    {
        double t = 0.0;
        for (double s : seconds_)
            t += s;
        return t;
    }

    /** Fraction of total time in the class; 0 when nothing ran. */
    double
    fraction(OpClass c) const
    {
        double t = total();
        return t == 0.0 ? 0.0 : seconds(c) / t;
    }

  private:
    std::array<double, std::size_t(OpClass::NumClasses)> seconds_{};
};

/**
 * RAII timer charging its scope's wall time to an operator class.
 *
 *   { PlanTimer t(breakdown, OpClass::Scan); ... scan ...; }
 */
class PlanTimer
{
  public:
    PlanTimer(PlanBreakdown &breakdown, OpClass cls)
        : breakdown_(breakdown), cls_(cls),
          start_(std::chrono::steady_clock::now())
    {
    }

    ~PlanTimer()
    {
        auto delta = std::chrono::steady_clock::now() - start_;
        breakdown_.add(cls_,
                       std::chrono::duration<double>(delta).count());
    }

    PlanTimer(const PlanTimer &) = delete;
    PlanTimer &operator=(const PlanTimer &) = delete;

  private:
    PlanBreakdown &breakdown_;
    OpClass cls_;
    std::chrono::steady_clock::time_point start_;
};

} // namespace widx::db

#endif // WIDX_DB_PLAN_HH
