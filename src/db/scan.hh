/**
 * @file
 * Scan operator: sequential selection over a column.
 */

#ifndef WIDX_DB_SCAN_HH
#define WIDX_DB_SCAN_HH

#include <vector>

#include "db/column.hh"

namespace widx::db {

/** Inclusive range predicate over 64-bit carrier values. */
struct RangePredicate
{
    u64 lo = 0;
    u64 hi = ~u64{0};

    bool matches(u64 v) const { return v >= lo && v <= hi; }
};

/** Select row ids whose column value satisfies the predicate. */
std::vector<RowId> scanSelect(const Column &col,
                              const RangePredicate &pred);

/** Count matching rows without materializing them. */
u64 scanCount(const Column &col, const RangePredicate &pred);

/** Gather the values of selected rows into a new vector. */
std::vector<u64> scanGather(const Column &col,
                            const std::vector<RowId> &rows);

} // namespace widx::db

#endif // WIDX_DB_SCAN_HH
