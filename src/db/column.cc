#include "db/column.hh"

namespace widx::db {

const char *
valueKindName(ValueKind kind)
{
    switch (kind) {
      case ValueKind::U32:
        return "u32";
      case ValueKind::U64:
        return "u64";
      case ValueKind::F64:
        return "f64";
    }
    return "?";
}

Column::Column(std::string name, ValueKind kind, Arena &arena,
               u64 capacity)
    : name_(std::move(name)), kind_(kind), capacity_(capacity)
{
    fatal_if(capacity == 0, "column '%s' needs nonzero capacity",
             name_.c_str());
    base_ = static_cast<unsigned char *>(
        arena.allocateBytes(capacity * elemWidth(), 64));
}

Column &
Table::addColumn(const std::string &col_name, ValueKind kind,
                 Arena &arena, u64 capacity)
{
    fatal_if(hasColumn(col_name), "duplicate column '%s' in '%s'",
             col_name.c_str(), name_.c_str());
    cols_.push_back(
        std::make_unique<Column>(col_name, kind, arena, capacity));
    return *cols_.back();
}

Column &
Table::column(const std::string &col_name)
{
    for (auto &c : cols_)
        if (c->name() == col_name)
            return *c;
    fatal("no column '%s' in table '%s'", col_name.c_str(),
          name_.c_str());
}

const Column &
Table::column(const std::string &col_name) const
{
    for (const auto &c : cols_)
        if (c->name() == col_name)
            return *c;
    fatal("no column '%s' in table '%s'", col_name.c_str(),
          name_.c_str());
}

bool
Table::hasColumn(const std::string &col_name) const
{
    for (const auto &c : cols_)
        if (c->name() == col_name)
            return true;
    return false;
}

u64
Table::rows() const
{
    return cols_.empty() ? 0 : cols_.front()->size();
}

} // namespace widx::db
