#include "db/hash_index.hh"

#include <bit>
#include <cstring>

#include "common/bitops.hh"
#include "common/logging.hh"

#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#define WIDX_TAG_FILTER_AVX2 1
#include <immintrin.h>
#endif

namespace widx::db {

namespace {

/** Scalar fingerprint sweep over hashes [begin, n): the reference
 *  semantics of tagFilterBatch (and the AVX2 kernel's tail loop).
 *  Tag bytes load through relaxed atomic_ref — a plain mov, but
 *  race-free against a live writer's concurrent tag maintenance
 *  (this kernel is the only tag sweep a live index runs). */
u64
tagFilterScalarKernel(const u8 *tags, u64 mask, unsigned shift,
                      const u64 *hashes, std::size_t begin,
                      std::size_t n, u64 *bits)
{
    u64 survivors = 0;
    for (std::size_t i = begin; i < n; ++i) {
        const u64 h = hashes[i];
        const u8 tag =
            std::atomic_ref<u8>(
                const_cast<u8 &>(tags[(h >> shift) & mask]))
                .load(std::memory_order_relaxed);
        if (tag & HashIndex::tagOf(h)) {
            bits[i >> 6] |= u64(1) << (i & 63);
            ++survivors;
        }
    }
    return survivors;
}

#ifdef WIDX_TAG_FILTER_AVX2

/**
 * AVX2 fingerprint sweep: per iteration, four tag bytes arrive via
 * one dword gather (the tag array is padded so the up-to-3-byte
 * overread past the addressed tag stays in bounds) and the four
 * fingerprint bits 1 << (((h>>8)^(h>>24)^(h>>44)^(h>>57)) & 7) are
 * built with vector shifts — the whole reject decision for a batch
 * runs without a per-key byte load or branch. Compiled with a
 * target attribute so the TU needs no global -mavx2; callers
 * runtime-dispatch on cpuid.
 */
__attribute__((target("avx2"))) u64
tagFilterAvx2Kernel(const u8 *tags, u64 mask, unsigned shift,
                    const u64 *hashes, std::size_t n, u64 *bits)
{
    const __m256i vmask = _mm256_set1_epi64x(i64(mask));
    const __m256i vone = _mm256_set1_epi64x(1);
    const __m256i vseven = _mm256_set1_epi64x(7);
    const __m256i vff = _mm256_set1_epi64x(0xFF);
    const __m256i vzero = _mm256_setzero_si256();
    const __m128i vshift = _mm_cvtsi32_si128(int(shift));

    u64 survivors = 0;
    std::size_t i = 0;
    for (; i + 4 <= n; i += 4) {
        const __m256i h = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(hashes + i));
        const __m256i bidx =
            _mm256_and_si256(_mm256_srl_epi64(h, vshift), vmask);
        const __m128i gathered = _mm256_i64gather_epi32(
            reinterpret_cast<const int *>(tags), bidx, 1);
        const __m256i tag = _mm256_and_si256(
            _mm256_cvtepu32_epi64(gathered), vff);
        const __m256i folded = _mm256_xor_si256(
            _mm256_xor_si256(_mm256_srli_epi64(h, 8),
                             _mm256_srli_epi64(h, 24)),
            _mm256_xor_si256(_mm256_srli_epi64(h, 44),
                             _mm256_srli_epi64(h, 57)));
        const __m256i fp = _mm256_sllv_epi64(
            vone, _mm256_and_si256(folded, vseven));
        // All-ones lanes mark rejects; invert to a survivor nibble.
        const __m256i rej = _mm256_cmpeq_epi64(
            _mm256_and_si256(tag, fp), vzero);
        const unsigned surv =
            ~unsigned(_mm256_movemask_pd(_mm256_castsi256_pd(rej))) &
            0xFu;
        // i is a multiple of 4, so the nibble never straddles words.
        bits[i >> 6] |= u64(surv) << (i & 63);
        survivors += unsigned(std::popcount(surv));
    }
    return survivors + tagFilterScalarKernel(tags, mask, shift,
                                             hashes, i, n, bits);
}

#endif // WIDX_TAG_FILTER_AVX2

} // namespace

HashIndex::HashIndex(const IndexSpec &spec, Arena &arena)
    : spec_(spec), arena_(arena)
{
    fatal_if(spec.buckets == 0, "index needs at least one bucket");
    numBuckets_ = nextPowerOfTwo(spec.buckets);
    bucketShift_ = log2Exact(u64{kBucketStride});
    hashShift_ = spec_.hashShift;
    fatal_if(hashShift_ + log2Exact(numBuckets_) > 64,
             "hashShift %u leaves no hash bits for %llu buckets",
             hashShift_, (unsigned long long)numBuckets_);
    fatal_if(spec_.live && spec_.indirectKeys,
             "live mutation requires the direct key layout");
    // Cache-line-align the bucket array so a 32 B bucket (header
    // node included) never straddles two lines: one header fetch is
    // one memory access, as the paper's layout intends.
    buckets_ = static_cast<Bucket *>(arena_.allocateBytes(
        numBuckets_ * sizeof(Bucket), kCacheBlockBytes));
    // Tag array: one byte per bucket, zero-initialized by the arena,
    // so every empty bucket starts out rejecting all probes. Eight
    // pad bytes at the end keep the AVX2 tag filter's dword gathers
    // (which read up to 3 bytes past the addressed tag) in bounds.
    tags_ = static_cast<u8 *>(
        arena_.allocateBytes(numBuckets_ + 8, kCacheBlockBytes));
    sentinelCell_ = arena_.make<u64>(kEmptyKey);
    const u64 empty_key =
        spec_.indirectKeys
            ? u64(reinterpret_cast<std::uintptr_t>(sentinelCell_))
            : kEmptyKey;
    for (u64 b = 0; b < numBuckets_; ++b) {
        buckets_[b].count = 0;
        buckets_[b].head.key = empty_key;
        buckets_[b].head.payload = 0;
        buckets_[b].head.next = nullptr;
    }
}

void
HashIndex::insert(u64 key, u64 payload, Addr key_addr)
{
    panic_if(key == kEmptyKey, "the all-ones key is reserved");
    panic_if(spec_.indirectKeys && key_addr == 0,
             "indirect index requires the key's storage address");

    const u64 hash = hashKey(key);
    const u64 bidx = bucketIndexOf(hash);
    tags_[bidx] |= tagOf(hash);

    Bucket &b = buckets_[bidx];
    const u64 stored = spec_.indirectKeys ? key_addr : key;

    if (b.count == 0) {
        b.head.key = stored;
        b.head.payload = payload;
    } else {
        // Push-front behind the header to keep insert O(1); the
        // header keeps its original entry (paper layout).
        Node *n = arena_.make<Node>();
        n->key = stored;
        n->payload = payload;
        n->next = b.head.next;
        b.head.next = n;
        ++overflowNodes_;
    }
    ++b.count;
    ++entries_;
}

void
HashIndex::buildFromColumn(const Column &keys)
{
    for (RowId r = 0; r < keys.size(); ++r)
        insert(keys.at(r), r, keys.addrOf(r));
}

bool
HashIndex::tagFilterHasSimd()
{
#ifdef WIDX_TAG_FILTER_AVX2
    static const bool have = __builtin_cpu_supports("avx2");
    return have;
#else
    return false;
#endif
}

u64
HashIndex::tagFilterBatchScalar(const u64 *hashes, std::size_t n,
                                u64 *bits) const
{
    std::memset(bits, 0, ((n + 63) / 64) * sizeof(u64));
    return tagFilterScalarKernel(tags_, bucketMask(), hashShift_,
                                 hashes, 0, n, bits);
}

u64
HashIndex::tagFilterBatch(const u64 *hashes, std::size_t n,
                          u64 *bits) const
{
    u64 survivors;
#ifdef WIDX_TAG_FILTER_AVX2
    // A live index's tags mutate concurrently; the dword gathers
    // would race them bytewise, so live sweeps stay on the scalar
    // atomic kernel.
    if (!spec_.live && tagFilterHasSimd()) {
        std::memset(bits, 0, ((n + 63) / 64) * sizeof(u64));
        survivors = tagFilterAvx2Kernel(tags_, bucketMask(),
                                        hashShift_, hashes, n, bits);
    } else
#endif
        survivors = tagFilterBatchScalar(hashes, n, bits);
    tagStats_.note(n, n - survivors);
    return survivors;
}

u64
HashIndex::lookup(u64 key) const
{
    const u64 hash = hashKey(key);
    const u64 bidx = bucketIndexOf(hash);
    if (!(tagByte(bidx) & tagOf(hash)))
        return kNotFound;
    // widx-lint: epoch-guard -- single-key convenience; a caller
    // probing a live index pins an epoch around the call.
    for (const Node *n = &buckets_[bidx].head; n; n = nodeNext(*n))
        if (nodeKey(*n) == key)
            return nodePayload(*n);
    return kNotFound;
}

// --- Live mutation (see the class doc: single writer per index,
// --- lock-free concurrent probes) -----------------------------------

void
HashIndex::insertLive(u64 key, u64 payload)
{
    panic_if(!spec_.live, "insertLive on a non-live index");
    panic_if(key == kEmptyKey, "the all-ones key is reserved");

    const u64 hash = hashKey(key);
    const u64 bidx = bucketIndexOf(hash);

    // Tag first: the fingerprint bit must be visible before any
    // probe can see the key, so the filter never false-negatives a
    // published entry.
    std::atomic_ref<u8>(tags_[bidx]).fetch_or(
        tagOf(hash), std::memory_order_relaxed);

    Bucket &b = buckets_[bidx];
    const u64 hkey = std::atomic_ref<u64>(b.head.key)
                         .load(std::memory_order_relaxed);
    if (hkey == kEmptyKey) {
        // Empty or tombstoned header: payload first, key last with
        // release — a probe that matches the key sees the payload.
        std::atomic_ref<u64>(b.head.payload)
            .store(payload, std::memory_order_relaxed);
        std::atomic_ref<u64>(b.head.key).store(
            key, std::memory_order_release);
    } else {
        Node *n;
        if (!freeNodes_.empty()) {
            n = freeNodes_.back();
            freeNodes_.pop_back();
        } else {
            n = arena_.make<Node>();
            ++overflowNodes_;
        }
        // Fill privately, then publish with one release store on
        // the header's next.
        n->key = key;
        n->payload = payload;
        n->next = std::atomic_ref<Node *>(b.head.next)
                      .load(std::memory_order_relaxed);
        std::atomic_ref<Node *>(b.head.next)
            .store(n, std::memory_order_release);
    }
    ++b.count;
    ++entries_;
}

void
HashIndex::refreshTag(u64 bidx)
{
    Bucket &b = buckets_[bidx];
    u8 tag = 0;
    // widx-lint: epoch-guard -- writer-side walk: only this writer
    // retires nodes, so the chain cannot vanish under it.
    for (const Node *n = &b.head; n; n = nodeNext(*n)) {
        const u64 k = std::atomic_ref<u64>(
                          const_cast<Node *>(n)->key)
                          .load(std::memory_order_relaxed);
        if (k != kEmptyKey)
            tag |= tagOf(hashKey(k));
    }
    // A probe racing this store sees the old or new byte; both are
    // supersets of the surviving keys' fingerprints, so there is
    // still no false negative.
    std::atomic_ref<u8>(tags_[bidx]).store(
        tag, std::memory_order_relaxed);
}

u64
HashIndex::eraseLive(u64 key, std::vector<Node *> &retired)
{
    panic_if(!spec_.live, "eraseLive on a non-live index");
    const u64 hash = hashKey(key);
    const u64 bidx = bucketIndexOf(hash);
    Bucket &b = buckets_[bidx];
    u64 erased = 0;

    // Header match: tombstone in place (the header node is part of
    // the bucket array and can never be unlinked). kEmptyKey never
    // equals a probed key, so the slot just stops matching.
    if (std::atomic_ref<u64>(b.head.key).load(
            std::memory_order_relaxed) == key) {
        std::atomic_ref<u64>(b.head.key).store(
            kEmptyKey, std::memory_order_release);
        ++erased;
    }

    // Overflow matches: unlink with a release store on the
    // predecessor's next. The retired node's own next is left
    // intact so a paused probe holding it still walks to the end.
    Node *prev = &b.head;
    Node *n = std::atomic_ref<Node *>(prev->next)
                  .load(std::memory_order_relaxed);
    while (n) {
        Node *next = std::atomic_ref<Node *>(n->next).load(
            std::memory_order_relaxed);
        if (n->key == key) {
            std::atomic_ref<Node *>(prev->next)
                .store(next, std::memory_order_release);
            retired.push_back(n);
            ++erased;
        } else {
            prev = n;
        }
        n = next;
    }

    if (erased) {
        b.count -= erased;
        entries_ -= erased;
        refreshTag(bidx);
    }
    return erased;
}

bool
HashIndex::upsertLive(u64 key, u64 payload)
{
    panic_if(!spec_.live, "upsertLive on a non-live index");
    const u64 hash = hashKey(key);
    const u64 bidx = bucketIndexOf(hash);
    for (Node *n = &buckets_[bidx].head; n;
         n = std::atomic_ref<Node *>(n->next).load(
             std::memory_order_relaxed)) {
        if (std::atomic_ref<u64>(n->key).load(
                std::memory_order_relaxed) == key) {
            // Single-word overwrite: concurrent probes see the old
            // or new payload, never a mix.
            std::atomic_ref<u64>(n->payload).store(
                payload, std::memory_order_relaxed);
            return true;
        }
    }
    insertLive(key, payload);
    return false;
}

void
HashIndex::recycleNode(Node *n)
{
    // The grace period has passed: no probe can hold this node, so
    // plain stores are fine until insertLive republishes it.
    n->key = kEmptyKey;
    n->payload = 0;
    n->next = nullptr;
    freeNodes_.push_back(n);
}

double
HashIndex::avgBucketDepth() const
{
    u64 nonempty = 0;
    u64 nodes = 0;
    for (u64 b = 0; b < numBuckets_; ++b) {
        if (buckets_[b].count) {
            ++nonempty;
            nodes += buckets_[b].count;
        }
    }
    return nonempty == 0 ? 0.0 : double(nodes) / double(nonempty);
}

u64
HashIndex::maxBucketDepth() const
{
    u64 max = 0;
    for (u64 b = 0; b < numBuckets_; ++b)
        if (buckets_[b].count > max)
            max = buckets_[b].count;
    return max;
}

u64
HashIndex::footprintBytes() const
{
    return numBuckets_ * (sizeof(Bucket) + sizeof(u8)) +
           overflowNodes_ * sizeof(Node);
}

} // namespace widx::db
