#include "db/hash_index.hh"

#include "common/bitops.hh"
#include "common/logging.hh"

namespace widx::db {

HashIndex::HashIndex(const IndexSpec &spec, Arena &arena)
    : spec_(spec), arena_(arena)
{
    fatal_if(spec.buckets == 0, "index needs at least one bucket");
    numBuckets_ = nextPowerOfTwo(spec.buckets);
    bucketShift_ = log2Exact(u64{kBucketStride});
    // Cache-line-align the bucket array so a 32 B bucket (header
    // node included) never straddles two lines: one header fetch is
    // one memory access, as the paper's layout intends.
    buckets_ = static_cast<Bucket *>(arena_.allocateBytes(
        numBuckets_ * sizeof(Bucket), kCacheBlockBytes));
    // Tag array: one byte per bucket, zero-initialized by the arena,
    // so every empty bucket starts out rejecting all probes.
    tags_ = static_cast<u8 *>(
        arena_.allocateBytes(numBuckets_, kCacheBlockBytes));
    sentinelCell_ = arena_.make<u64>(kEmptyKey);
    const u64 empty_key =
        spec_.indirectKeys
            ? u64(reinterpret_cast<std::uintptr_t>(sentinelCell_))
            : kEmptyKey;
    for (u64 b = 0; b < numBuckets_; ++b) {
        buckets_[b].count = 0;
        buckets_[b].head.key = empty_key;
        buckets_[b].head.payload = 0;
        buckets_[b].head.next = nullptr;
    }
}

void
HashIndex::insert(u64 key, u64 payload, Addr key_addr)
{
    panic_if(key == kEmptyKey, "the all-ones key is reserved");
    panic_if(spec_.indirectKeys && key_addr == 0,
             "indirect index requires the key's storage address");

    const u64 hash = hashKey(key);
    const u64 bidx = hash & bucketMask();
    tags_[bidx] |= tagOf(hash);

    Bucket &b = buckets_[bidx];
    const u64 stored = spec_.indirectKeys ? key_addr : key;

    if (b.count == 0) {
        b.head.key = stored;
        b.head.payload = payload;
    } else {
        // Push-front behind the header to keep insert O(1); the
        // header keeps its original entry (paper layout).
        Node *n = arena_.make<Node>();
        n->key = stored;
        n->payload = payload;
        n->next = b.head.next;
        b.head.next = n;
        ++overflowNodes_;
    }
    ++b.count;
    ++entries_;
}

void
HashIndex::buildFromColumn(const Column &keys)
{
    for (RowId r = 0; r < keys.size(); ++r)
        insert(keys.at(r), r, keys.addrOf(r));
}

u64
HashIndex::lookup(u64 key) const
{
    const u64 hash = hashKey(key);
    const u64 bidx = hash & bucketMask();
    if (!(tags_[bidx] & tagOf(hash)))
        return kNotFound;
    for (const Node *n = &buckets_[bidx].head; n; n = n->next)
        if (nodeKey(*n) == key)
            return n->payload;
    return kNotFound;
}

double
HashIndex::avgBucketDepth() const
{
    u64 nonempty = 0;
    u64 nodes = 0;
    for (u64 b = 0; b < numBuckets_; ++b) {
        if (buckets_[b].count) {
            ++nonempty;
            nodes += buckets_[b].count;
        }
    }
    return nonempty == 0 ? 0.0 : double(nodes) / double(nonempty);
}

u64
HashIndex::maxBucketDepth() const
{
    u64 max = 0;
    for (u64 b = 0; b < numBuckets_; ++b)
        if (buckets_[b].count > max)
            max = buckets_[b].count;
    return max;
}

u64
HashIndex::footprintBytes() const
{
    return numBuckets_ * (sizeof(Bucket) + sizeof(u8)) +
           overflowNodes_ * sizeof(Node);
}

} // namespace widx::db
