#include "db/hash_index.hh"

#include <bit>
#include <cstring>

#include "common/bitops.hh"
#include "common/logging.hh"

#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#define WIDX_TAG_FILTER_AVX2 1
#include <immintrin.h>
#endif

namespace widx::db {

namespace {

/** Scalar fingerprint sweep over hashes [begin, n): the reference
 *  semantics of tagFilterBatch (and the AVX2 kernel's tail loop). */
u64
tagFilterScalarKernel(const u8 *tags, u64 mask, const u64 *hashes,
                      std::size_t begin, std::size_t n, u64 *bits)
{
    u64 survivors = 0;
    for (std::size_t i = begin; i < n; ++i) {
        const u64 h = hashes[i];
        if (tags[h & mask] & HashIndex::tagOf(h)) {
            bits[i >> 6] |= u64(1) << (i & 63);
            ++survivors;
        }
    }
    return survivors;
}

#ifdef WIDX_TAG_FILTER_AVX2

/**
 * AVX2 fingerprint sweep: per iteration, four tag bytes arrive via
 * one dword gather (the tag array is padded so the up-to-3-byte
 * overread past the addressed tag stays in bounds) and the four
 * fingerprint bits 1 << (((h>>8)^(h>>24)^(h>>44)^(h>>57)) & 7) are
 * built with vector shifts — the whole reject decision for a batch
 * runs without a per-key byte load or branch. Compiled with a
 * target attribute so the TU needs no global -mavx2; callers
 * runtime-dispatch on cpuid.
 */
__attribute__((target("avx2"))) u64
tagFilterAvx2Kernel(const u8 *tags, u64 mask, const u64 *hashes,
                    std::size_t n, u64 *bits)
{
    const __m256i vmask = _mm256_set1_epi64x(i64(mask));
    const __m256i vone = _mm256_set1_epi64x(1);
    const __m256i vseven = _mm256_set1_epi64x(7);
    const __m256i vff = _mm256_set1_epi64x(0xFF);
    const __m256i vzero = _mm256_setzero_si256();

    u64 survivors = 0;
    std::size_t i = 0;
    for (; i + 4 <= n; i += 4) {
        const __m256i h = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(hashes + i));
        const __m256i bidx = _mm256_and_si256(h, vmask);
        const __m128i gathered = _mm256_i64gather_epi32(
            reinterpret_cast<const int *>(tags), bidx, 1);
        const __m256i tag = _mm256_and_si256(
            _mm256_cvtepu32_epi64(gathered), vff);
        const __m256i folded = _mm256_xor_si256(
            _mm256_xor_si256(_mm256_srli_epi64(h, 8),
                             _mm256_srli_epi64(h, 24)),
            _mm256_xor_si256(_mm256_srli_epi64(h, 44),
                             _mm256_srli_epi64(h, 57)));
        const __m256i fp = _mm256_sllv_epi64(
            vone, _mm256_and_si256(folded, vseven));
        // All-ones lanes mark rejects; invert to a survivor nibble.
        const __m256i rej = _mm256_cmpeq_epi64(
            _mm256_and_si256(tag, fp), vzero);
        const unsigned surv =
            ~unsigned(_mm256_movemask_pd(_mm256_castsi256_pd(rej))) &
            0xFu;
        // i is a multiple of 4, so the nibble never straddles words.
        bits[i >> 6] |= u64(surv) << (i & 63);
        survivors += unsigned(std::popcount(surv));
    }
    return survivors +
           tagFilterScalarKernel(tags, mask, hashes, i, n, bits);
}

#endif // WIDX_TAG_FILTER_AVX2

} // namespace

HashIndex::HashIndex(const IndexSpec &spec, Arena &arena)
    : spec_(spec), arena_(arena)
{
    fatal_if(spec.buckets == 0, "index needs at least one bucket");
    numBuckets_ = nextPowerOfTwo(spec.buckets);
    bucketShift_ = log2Exact(u64{kBucketStride});
    // Cache-line-align the bucket array so a 32 B bucket (header
    // node included) never straddles two lines: one header fetch is
    // one memory access, as the paper's layout intends.
    buckets_ = static_cast<Bucket *>(arena_.allocateBytes(
        numBuckets_ * sizeof(Bucket), kCacheBlockBytes));
    // Tag array: one byte per bucket, zero-initialized by the arena,
    // so every empty bucket starts out rejecting all probes. Eight
    // pad bytes at the end keep the AVX2 tag filter's dword gathers
    // (which read up to 3 bytes past the addressed tag) in bounds.
    tags_ = static_cast<u8 *>(
        arena_.allocateBytes(numBuckets_ + 8, kCacheBlockBytes));
    sentinelCell_ = arena_.make<u64>(kEmptyKey);
    const u64 empty_key =
        spec_.indirectKeys
            ? u64(reinterpret_cast<std::uintptr_t>(sentinelCell_))
            : kEmptyKey;
    for (u64 b = 0; b < numBuckets_; ++b) {
        buckets_[b].count = 0;
        buckets_[b].head.key = empty_key;
        buckets_[b].head.payload = 0;
        buckets_[b].head.next = nullptr;
    }
}

void
HashIndex::insert(u64 key, u64 payload, Addr key_addr)
{
    panic_if(key == kEmptyKey, "the all-ones key is reserved");
    panic_if(spec_.indirectKeys && key_addr == 0,
             "indirect index requires the key's storage address");

    const u64 hash = hashKey(key);
    const u64 bidx = hash & bucketMask();
    tags_[bidx] |= tagOf(hash);

    Bucket &b = buckets_[bidx];
    const u64 stored = spec_.indirectKeys ? key_addr : key;

    if (b.count == 0) {
        b.head.key = stored;
        b.head.payload = payload;
    } else {
        // Push-front behind the header to keep insert O(1); the
        // header keeps its original entry (paper layout).
        Node *n = arena_.make<Node>();
        n->key = stored;
        n->payload = payload;
        n->next = b.head.next;
        b.head.next = n;
        ++overflowNodes_;
    }
    ++b.count;
    ++entries_;
}

void
HashIndex::buildFromColumn(const Column &keys)
{
    for (RowId r = 0; r < keys.size(); ++r)
        insert(keys.at(r), r, keys.addrOf(r));
}

bool
HashIndex::tagFilterHasSimd()
{
#ifdef WIDX_TAG_FILTER_AVX2
    static const bool have = __builtin_cpu_supports("avx2");
    return have;
#else
    return false;
#endif
}

u64
HashIndex::tagFilterBatchScalar(const u64 *hashes, std::size_t n,
                                u64 *bits) const
{
    std::memset(bits, 0, ((n + 63) / 64) * sizeof(u64));
    return tagFilterScalarKernel(tags_, bucketMask(), hashes, 0, n,
                                 bits);
}

u64
HashIndex::tagFilterBatch(const u64 *hashes, std::size_t n,
                          u64 *bits) const
{
    u64 survivors;
#ifdef WIDX_TAG_FILTER_AVX2
    if (tagFilterHasSimd()) {
        std::memset(bits, 0, ((n + 63) / 64) * sizeof(u64));
        survivors = tagFilterAvx2Kernel(tags_, bucketMask(), hashes,
                                        n, bits);
    } else
#endif
        survivors = tagFilterBatchScalar(hashes, n, bits);
    tagStats_.note(n, n - survivors);
    return survivors;
}

u64
HashIndex::lookup(u64 key) const
{
    const u64 hash = hashKey(key);
    const u64 bidx = hash & bucketMask();
    if (!(tags_[bidx] & tagOf(hash)))
        return kNotFound;
    for (const Node *n = &buckets_[bidx].head; n; n = n->next)
        if (nodeKey(*n) == key)
            return n->payload;
    return kNotFound;
}

double
HashIndex::avgBucketDepth() const
{
    u64 nonempty = 0;
    u64 nodes = 0;
    for (u64 b = 0; b < numBuckets_; ++b) {
        if (buckets_[b].count) {
            ++nonempty;
            nodes += buckets_[b].count;
        }
    }
    return nonempty == 0 ? 0.0 : double(nodes) / double(nonempty);
}

u64
HashIndex::maxBucketDepth() const
{
    u64 max = 0;
    for (u64 b = 0; b < numBuckets_; ++b)
        if (buckets_[b].count > max)
            max = buckets_[b].count;
    return max;
}

u64
HashIndex::footprintBytes() const
{
    return numBuckets_ * (sizeof(Bucket) + sizeof(u8)) +
           overflowNodes_ * sizeof(Node);
}

} // namespace widx::db
