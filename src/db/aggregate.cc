#include "db/aggregate.hh"

#include <unordered_set>

namespace widx::db {

u64
aggregateSum(const Column &col, const std::vector<RowId> &rows)
{
    u64 sum = 0;
    for (RowId r : rows)
        sum += col.at(r);
    return sum;
}

u64
aggregateMax(const Column &col, const std::vector<RowId> &rows)
{
    u64 max = 0;
    for (RowId r : rows) {
        u64 v = col.at(r);
        if (v > max)
            max = v;
    }
    return max;
}

std::unordered_map<u64, u64>
groupBySum(const Column &group_col, const Column &value_col,
           const std::vector<RowId> &rows)
{
    std::unordered_map<u64, u64> groups;
    for (RowId r : rows)
        groups[group_col.at(r)] += value_col.at(r);
    return groups;
}

u64
countDistinct(const Column &col, const std::vector<RowId> &rows)
{
    std::unordered_set<u64> seen;
    for (RowId r : rows)
        seen.insert(col.at(r));
    return seen.size();
}

} // namespace widx::db
