/**
 * @file
 * Chained hash index with bucket-header nodes (Section 2.2) and a
 * decoupled batch-probe pipeline.
 *
 * Layout follows the paper's description of real DBMS indexes:
 *
 *  - the bucket array entries are *header nodes* combining minimal
 *    status (the entry count) with the first node of the bucket,
 *    eliminating one pointer dereference for the first node;
 *  - overflow nodes are chained through `next`;
 *  - optionally, nodes store *pointers to the original table entries*
 *    instead of the key itself (MonetDB-style "indirect keys"),
 *    trading space for an extra memory access and extra address
 *    computation on every comparison.
 *
 * All storage comes from an Arena, so host pointers serve as simulated
 * addresses and the index footprint is contiguous and realistic.
 *
 * Empty header slots hold the reserved kEmptyKey pattern (direct
 * layout) or a pointer to a shared sentinel cell (indirect layout), so
 * probe loops need no emptiness check — a failed compare plus a null
 * next pointer terminates them, exactly like Listing 1.
 *
 * Two probe-side accelerations mirror the paper's dispatcher/walker
 * decoupling in software (see src/swwalkers/README.md):
 *
 *  - **Batch hashing** (`hashBatch`, `probeBatch`): a whole group of
 *    keys is hashed with the vectorizable HashFn::hashBatch kernel
 *    and its tag/bucket lines prefetched before any walk begins, so
 *    independent probe misses overlap.
 *  - **Tag array**: one byte per bucket, an 8-bit membership filter
 *    over the bucket's keys (the fingerprint bit tagOf(h), folded
 *    from upper hash bits, is set for every resident key). A walker
 *    rejects a non-matching bucket — including every empty bucket —
 *    with a single byte load instead of a 32-byte bucket-line
 *    dereference. The filter has no false negatives, so tagged and
 *    untagged probes produce identical match multisets. The tag
 *    array is deliberately out-of-band: bucket and node geometry
 *    (the kBucket and kNode offset constants) is unchanged, so
 *    accel/codegen and
 *    cpu/trace_gen see the exact layout they always did.
 *
 * Match emission is templated (`Emit`/`Sink` parameters) instead of
 * funneled through std::function, so per-match callbacks inline and
 * the hot loop allocates nothing.
 */

#ifndef WIDX_DB_HASH_INDEX_HH
#define WIDX_DB_HASH_INDEX_HH

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <span>
#include <string>
#include <vector>

#include "common/arena.hh"
#include "db/column.hh"
#include "db/hash_fn.hh"
#include "db/value.hh"

namespace widx::db {

/**
 * Running tag-filter effectiveness stats (adaptive tagging): the
 * batched probe paths report how many keys the one-byte fingerprint
 * filter rejected, and consumers flip the filter off when it stops
 * paying for itself — the filter costs a byte load per probe and
 * only earns it back by skipping bucket lines. Counters are relaxed
 * atomics shared by concurrent walkers: the stats guide a heuristic,
 * not correctness, so lossy updates are fine.
 */
class TagFilterStats
{
  public:
    /** Counters halve once this many keys accumulate, so a
     *  long-lived service tracks traffic shifts instead of being
     *  pinned to its first workload. */
    static constexpr u64 kWindowKeys = u64(1) << 22;
    /** Keys observed before the recommendation overrides the
     *  caller's configured default. */
    static constexpr u64 kMinSampleKeys = 4096;
    /** Reject percentage below which the filter's byte load costs
     *  more than the bucket lines it saves (hit-dominated probes pay
     *  a few percent for nothing; selective ones win ~25%). */
    static constexpr u64 kMinRejectPct = 5;

    /**
     * Record one batched sweep: n keys checked, r rejected.
     *
     * Aging is idempotent per window: the lifetime key count (never
     * halved) defines window epochs, and a single CAS on the epoch
     * counter elects exactly one aging thread per crossing. The old
     * "racy halving is benign" scheme let two sweeps that crossed
     * the window boundary concurrently halve twice (quartering the
     * counters and skewing the reject rate a long-lived service's
     * adaptive tagging steers by). The hot path stays relaxed
     * increments; the CAS only runs on a crossing, once per ~4M
     * keys.
     */
    void
    note(u64 n, u64 r) const
    {
        const u64 life =
            lifetime_.fetch_add(n, std::memory_order_relaxed) + n;
        keys_.fetch_add(n, std::memory_order_relaxed);
        rejects_.fetch_add(r, std::memory_order_relaxed);
        const u64 target = life / kWindowKeys;
        u64 e = epoch_.load(std::memory_order_relaxed);
        while (e < target) {
            if (epoch_.compare_exchange_weak(
                    e, target, std::memory_order_relaxed)) {
                // Sole ager for this crossing (a sweep spanning
                // several windows still halves once — aging is a
                // heuristic decay, not bookkeeping). Concurrent
                // increments may be lost to the store; that
                // lossiness is bounded by one window's traffic and
                // does not compound the way double-halving did.
                keys_.store(
                    keys_.load(std::memory_order_relaxed) / 2,
                    std::memory_order_relaxed);
                rejects_.store(
                    rejects_.load(std::memory_order_relaxed) / 2,
                    std::memory_order_relaxed);
                break;
            }
        }
    }

    u64 keys() const { return keys_.load(std::memory_order_relaxed); }

    /** Aging windows crossed so far (exactly lifetime / kWindowKeys
     *  — the idempotency the raced test asserts). */
    u64
    agings() const
    {
        return epoch_.load(std::memory_order_relaxed);
    }

    u64
    rejects() const
    {
        return rejects_.load(std::memory_order_relaxed);
    }

    double
    rejectRate() const
    {
        const u64 k = keys();
        return k == 0 ? 0.0 : double(rejects()) / double(k);
    }

    /** Should the tag filter stay on? Falls back to the caller's
     *  configured value until the sample is large enough. */
    bool
    worthwhile(bool fallback) const
    {
        const u64 k = keys();
        if (k < kMinSampleKeys)
            return fallback;
        return rejects() * 100 >= k * kMinRejectPct;
    }

    void
    reset() const
    {
        keys_.store(0, std::memory_order_relaxed);
        rejects_.store(0, std::memory_order_relaxed);
        lifetime_.store(0, std::memory_order_relaxed);
        epoch_.store(0, std::memory_order_relaxed);
    }

  private:
    mutable std::atomic<u64> keys_{0};
    mutable std::atomic<u64> rejects_{0};
    /** Monotone key count (never halved): defines aging epochs. */
    mutable std::atomic<u64> lifetime_{0};
    /** Aging windows already applied (CAS-elected, one per window). */
    mutable std::atomic<u64> epoch_{0};
};

/** Construction-time description of a hash index. */
struct IndexSpec
{
    /** Number of buckets; rounded up to a power of two. */
    u64 buckets = 1024;
    /** Hash function (also consumed by Widx codegen and trace gen). */
    HashFn hashFn = HashFn::monetdbRobust();
    /** MonetDB-style nodes holding key pointers instead of keys. */
    bool indirectKeys = false;
    /** Bucket addressing uses hash bits [hashShift, hashShift +
     *  log2(buckets)). Zero (the default, and the only value the
     *  read-only paths ever see) keeps the historical low-bits
     *  masking. A grown replacement shard inside a ShardedIndex sets
     *  it past the shard-selector bits: a plain low-bits mask on a
     *  2x bucket array would swallow the selector bits — constant
     *  within a shard — and leave half the buckets unreachable. */
    u32 hashShift = 0;
    /** Live (mutable) index: probe-path field reads stay the same
     *  plain-mov instructions, but the tag sweep takes the scalar
     *  atomic kernel instead of the AVX2 gather so concurrent tag
     *  maintenance is race-free under TSan. */
    bool live = false;
};

class HashIndex
{
  public:
    /** Chained node. With indirect keys, `key` holds the address of
     *  the key's storage in the build column. */
    struct Node
    {
        u64 key = kEmptyKey; ///< key value or key address
        u64 payload = 0;     ///< row id / tuple id
        Node *next = nullptr;
    };

    /** Bucket-header node: count plus the inlined first node. */
    struct Bucket
    {
        u64 count = 0;
        Node head;
    };

    static_assert(sizeof(Node) == 24, "node layout is part of the ABI");
    static_assert(sizeof(Bucket) == 32,
                  "bucket stride must stay a power of two");

    HashIndex(const IndexSpec &spec, Arena &arena);

    /** Insert one (key, payload) pair. For indirect layouts,
     *  key_addr must be the address of the key's column storage. */
    void insert(u64 key, u64 payload, Addr key_addr = 0);

    /** Bulk-build from a key column; payload r is the row id r. */
    void buildFromColumn(const Column &keys);

    // --- Probing -------------------------------------------------------

    /**
     * Scalar reference probe (the role of Listing 1's
     * probe_hashtable): walks the bucket and invokes emit(payload)
     * for every node whose key matches. The emitter is a template
     * parameter so it inlines; no allocation, no indirect call.
     *
     * @return number of matches.
     */
    template <typename Emit>
    u64
    probe(u64 key, Emit &&emit) const
    {
        return probeHashed(key, hashKey(key),
                           std::forward<Emit>(emit));
    }

    /** Count-only probe. */
    u64
    probe(u64 key) const
    {
        return probe(key, [](u64) {});
    }

    /**
     * Probe with a precomputed hash (the walker half of the
     * decoupled pipeline; the dispatcher half is hashBatch).
     *
     * @param tagged consult the one-byte tag filter before touching
     *        the bucket line.
     */
    template <typename Emit>
    u64
    probeHashed(u64 key, u64 hash, Emit &&emit,
                bool tagged = true) const
    {
        // widx-lint: epoch-guard -- callers probing a live index
        // hold an epoch pin; read-only indexes never retire.
        const u64 bidx = bucketIndexOf(hash);
        if (tagged && !(tagByte(bidx) & tagOf(hash)))
            return 0;
        u64 matches = 0;
        for (const Node *n = &buckets_[bidx].head; n;
             n = nodeNext(*n)) {
            if (nodeKey(*n) == key) {
                ++matches;
                emit(nodePayload(*n));
            }
        }
        return matches;
    }

    /** Default number of keys per dispatcher batch. */
    static constexpr std::size_t kProbeBatch = 64;
    /** Upper bound on the batch size (stack buffers). */
    static constexpr std::size_t kMaxProbeBatch = 1024;

    /** Batch-hash keys (dispatcher stage). Delegates to the
     *  vectorizable HashFn::hashBatch kernel. */
    void
    hashBatch(std::span<const u64> keys, std::span<u64> hashes) const
    {
        spec_.hashFn.hashBatch(keys, hashes);
    }

    /** Dispatcher prefetch sweep: for each hash, prefetch the key's
     *  first dependent line — its tag byte when the filter is on,
     *  its bucket header otherwise. Shared by probeBatch, the
     *  walkers' HashedWindow, and the group-prefetch prober. */
    void
    prefetchStage(const u64 *hashes, std::size_t n,
                  bool tagged) const
    {
        if (tagged)
            for (std::size_t i = 0; i < n; ++i)
                prefetchRead(&tags_[bucketIndexOf(hashes[i])]);
        else
            for (std::size_t i = 0; i < n; ++i)
                prefetchRead(&buckets_[bucketIndexOf(hashes[i])]);
    }

    /**
     * Batched fingerprint filter (the dispatcher's tag sweep as one
     * kernel): sets bit i of `bits` when hash i's bucket may match
     * (no false negatives). `bits` must hold at least
     * (n + 63) / 64 words; they are fully overwritten. Dispatches to
     * an AVX2 kernel — four tag-byte gathers and a vector
     * fingerprint compare per iteration — when the host supports it
     * (runtime cpuid, scalar fallback otherwise), and feeds the
     * adaptive-tagging stats either way.
     *
     * @return number of surviving keys.
     */
    u64 tagFilterBatch(const u64 *hashes, std::size_t n,
                       u64 *bits) const;

    /** Scalar reference implementation of tagFilterBatch (also the
     *  non-AVX2 fallback). Public so benches and tests can compare
     *  the two paths; does not touch the stats. */
    u64 tagFilterBatchScalar(const u64 *hashes, std::size_t n,
                             u64 *bits) const;

    /** Does this host take the AVX2 tag-filter path? */
    static bool tagFilterHasSimd();

    /**
     * Decoupled batch probe: the shared software pipeline under
     * db::probeAll/hashJoin and sw::ScalarProber.
     *
     * The dispatcher stage runs one batch *ahead* of the walker
     * stage (double-buffered): while batch k's buckets are walked,
     * batch k+1 has already been vector-hashed and its tag and
     * bucket-header lines prefetched. By the time the walker
     * reaches batch k+1 its lines have had a full batch of work to
     * stream in. This is the paper's dispatcher/walker split in
     * software: independent probe misses overlap instead of
     * serializing.
     *
     * In tagged mode the dispatcher prefetches only the tag bytes
     * (prefetching headers too would double the in-flight lines per
     * key and overrun the core's fill buffers); a tag sweep at the
     * start of the walker stage then arms header prefetches for
     * surviving buckets only — so selective workloads never pull
     * rejected bucket lines at all.
     *
     * @param sink invoked as sink(i, key, payload) where i is the
     *        key's position in `keys` (match order within one key
     *        follows the chain, and keys are walked in order, so
     *        emission order equals the scalar reference's).
     * @return total number of matches.
     */
    template <typename Sink>
    u64
    probeBatch(std::span<const u64> keys, Sink &&sink,
               bool tagged = true,
               std::size_t batch = kProbeBatch) const
    {
        batch = std::clamp<std::size_t>(batch, 1, kMaxProbeBatch);
        u64 hashbuf[2][kMaxProbeBatch];

        // Dispatcher stage: hash one batch and prefetch each key's
        // first dependent line.
        auto dispatch = [&](std::size_t base, u64 *h) {
            const std::size_t n =
                std::min(batch, keys.size() - base);
            spec_.hashFn.hashBatch(keys.subspan(base, n), {h, n});
            prefetchStage(h, n, tagged);
            return n;
        };

        u64 matches = 0;
        u64 *cur = hashbuf[0];
        u64 *ahead = hashbuf[1];
        std::size_t base = 0;
        std::size_t n = keys.empty() ? 0 : dispatch(0, cur);
        while (n > 0) {
            const std::size_t next_base = base + n;
            const std::size_t n_ahead =
                next_base < keys.size() ? dispatch(next_base, ahead)
                                        : 0;

            // Walker stage: the tag sweep reads bytes prefetched a
            // full batch ago — one vectorized tagFilterBatch kernel
            // instead of per-key byte loads — and arms header
            // prefetches for surviving buckets only, then the walks
            // emit through the inlined sink (rejected keys never
            // touch a bucket line, and survivors skip the repeat
            // tag check).
            if (tagged) {
                u64 bits[kMaxProbeBatch / 64];
                tagFilterBatch(cur, n, bits);
                for (std::size_t i = 0; i < n; ++i)
                    if (bits[i >> 6] >> (i & 63) & 1)
                        prefetchRead(&buckets_[bucketIndexOf(cur[i])]);
                for (std::size_t i = 0; i < n; ++i) {
                    if (!(bits[i >> 6] >> (i & 63) & 1))
                        continue;
                    const u64 key = keys[base + i];
                    matches += probeHashed(
                        key, cur[i],
                        [&](u64 payload) {
                            sink(base + i, key, payload);
                        },
                        false);
                }
            } else {
                for (std::size_t i = 0; i < n; ++i) {
                    const u64 key = keys[base + i];
                    matches += probeHashed(
                        key, cur[i],
                        [&](u64 payload) {
                            sink(base + i, key, payload);
                        },
                        false);
                }
            }

            std::swap(cur, ahead);
            base = next_base;
            n = n_ahead;
        }
        return matches;
    }

    /** Point lookup: payload of the first match or kNotFound. */
    u64 lookup(u64 key) const;

    // --- Live mutation (single writer, concurrent lock-free probes) ----
    //
    // Only on an index built with spec.live = true and a direct key
    // layout. The caller (ShardedIndex's per-shard writer) serializes
    // writers per index; probes run concurrently with NO locks. Every
    // store that a probe can observe is an atomic publish:
    //
    //   insert:  node filled privately, then linked with a release
    //            store on the header's next (or, for an empty/
    //            tombstoned header, payload first, key last with
    //            release — a probe that sees the key sees the
    //            payload).
    //   erase:   overflow nodes are unlinked with a release store on
    //            the predecessor's next; the retired node keeps its
    //            own next so paused probes terminate. Header matches
    //            tombstone the key back to kEmptyKey. Retired nodes
    //            land in `retired` for the caller to epoch-reclaim —
    //            they must not be reused until every reader pinned
    //            before the erase has unpinned (see common/epoch.hh).
    //   tags:    insert ORs the fingerprint bit in *before* linking
    //            (no false negatives ever); erase recomputes the
    //            byte from the surviving chain, so the filter keeps
    //            earning its keep as keys churn.

    /** Live insert; duplicates allowed (multiset semantics, same as
     *  build-time insert). */
    void insertLive(u64 key, u64 payload);

    /** Live erase of every node matching `key`. Unlinked overflow
     *  nodes are appended to `retired` (epoch-reclaim them); header
     *  matches are tombstoned in place. Returns nodes erased. */
    u64 eraseLive(u64 key, std::vector<Node *> &retired);

    /** Live upsert: overwrite the first match's payload, else
     *  insert. Returns true when an existing node was updated. */
    bool upsertLive(u64 key, u64 payload);

    /** Return an epoch-reclaimed node to the writer's freelist so
     *  the arena does not grow without bound under churn. Caller
     *  guarantees the grace period has elapsed. */
    void recycleNode(Node *n);

    /** Writer-side sweep of every live entry (rebuild source).
     *  fn(key, payload); tombstoned headers are skipped. */
    template <typename Fn>
    void
    forEachLiveEntry(Fn &&fn) const
    {
        // widx-lint: epoch-guard -- rebuild source sweep runs on
        // the shard's single writer; no other thread retires.
        for (u64 b = 0; b < numBuckets_; ++b) {
            for (const Node *n = &buckets_[b].head; n;
                 n = nodeNext(*n)) {
                const u64 k = std::atomic_ref<u64>(
                                  const_cast<Node *>(n)->key)
                                  .load(std::memory_order_acquire);
                if (k != kEmptyKey)
                    fn(k, nodePayload(*n));
            }
        }
    }

    // --- Geometry / layout accessors (used by codegen & trace gen) ---

    u64 numBuckets() const { return numBuckets_; }
    unsigned bucketShift() const { return bucketShift_; }
    u64 bucketMask() const { return numBuckets_ - 1; }
    unsigned hashShift() const { return hashShift_; }
    const HashFn &hashFn() const { return spec_.hashFn; }
    bool indirectKeys() const { return spec_.indirectKeys; }
    bool live() const { return spec_.live; }

    /** Bucket index for a full hash: the spec's hashShift selects
     *  which hash bit-field addresses the bucket array (0 = the
     *  historical low-bits mask). */
    u64
    bucketIndexOf(u64 hash) const
    {
        return (hash >> hashShift_) & bucketMask();
    }

    Addr
    bucketArrayAddr() const
    {
        return Addr(reinterpret_cast<std::uintptr_t>(buckets_));
    }

    /** Hash a key with the index's hash function. */
    u64 hashKey(u64 key) const { return spec_.hashFn(key); }

    /** Bucket index for a key (hash masked to the table size). */
    u64
    bucketIndex(u64 key) const
    {
        return bucketIndexOf(hashKey(key));
    }

    const Bucket &
    bucketAt(u64 idx) const
    {
        return buckets_[idx & bucketMask()];
    }

    /** Resolve a node's key: dereferences for indirect layouts.
     *  The raw field read is an acquire atomic_ref load — a plain
     *  mov on every target we build for, so read-only probes cost
     *  nothing — pairing with the live writer's release publish so
     *  a probe that observes a just-inserted key also observes its
     *  payload. */
    u64
    nodeKey(const Node &n) const
    {
        // atomic_ref over const is C++26; the const_cast only feeds
        // a load.
        const u64 raw =
            std::atomic_ref<u64>(const_cast<Node &>(n).key)
                .load(std::memory_order_acquire);
        if (spec_.indirectKeys)
            return *reinterpret_cast<const u64 *>(
                std::uintptr_t(raw));
        return raw;
    }

    /** Node payload, race-free against a live upsert (single-word
     *  atomic: a concurrent probe sees the old or new payload,
     *  never a mix). */
    u64
    nodePayload(const Node &n) const
    {
        return std::atomic_ref<u64>(const_cast<Node &>(n).payload)
            .load(std::memory_order_relaxed);
    }

    /** Next pointer, acquire-paired with the writer's release
     *  unlink/publish stores. A node retired by eraseLive keeps its
     *  next pointer, so a paused probe holding it still terminates. */
    const Node *
    nodeNext(const Node &n) const
    {
        // widx-lint: epoch-guard -- chain walks over a live index
        // run under the caller's epoch pin.
        return std::atomic_ref<Node *>(const_cast<Node &>(n).next)
            .load(std::memory_order_acquire);
    }

    // --- Tag (fingerprint) array ---------------------------------------

    /** Fingerprint bit of a hash: one of 8 bits chosen by folding
     *  four bit-fields spread across the hash. For mixing hashes
     *  (monetdbRobust, fibonacciShiftAdd, doubleKey) any field
     *  avalanches, so fingerprints use all 8 bits. The >>8 field
     *  keeps the fingerprint discriminating even for Listing 1's
     *  near-identity MASK/XOR hash on small tables; on tables whose
     *  bucket index swallows those bits, a no-avalanche hash
     *  degrades the filter to an emptiness check (still no false
     *  negatives — fingerprints are deterministic in the hash). */
    static constexpr u8
    tagOf(u64 hash)
    {
        return u8(1u << (((hash >> 8) ^ (hash >> 24) ^
                          (hash >> 44) ^ (hash >> 57)) &
                         7));
    }

    /** One bucket's tag byte (relaxed atomic: live writers maintain
     *  tags concurrently; a plain mov on x86). */
    u8
    tagByte(u64 bidx) const
    {
        return std::atomic_ref<u8>(
                   const_cast<u8 &>(tags_[bidx & bucketMask()]))
            .load(std::memory_order_relaxed);
    }

    /** May the bucket contain a key with this hash? No false
     *  negatives; an empty bucket (tag 0) rejects everything. */
    bool
    tagMayMatch(u64 bidx, u64 hash) const
    {
        return tagByte(bidx) & tagOf(hash);
    }

    // --- Probe surface (hash-addressed) --------------------------------
    //
    // The interleaved drains (sw::amacDrain / sw::coroDrain) are
    // templated on an Index type exposing these four calls, so the
    // same state machines serve a flat HashIndex and the service's
    // hash-range-sharded sw::ShardedIndex. Everything is addressed
    // by the full hash: how the hash folds into an array index (one
    // bucket mask here, shard-selector bits plus a per-shard mask
    // there) stays the index's business.

    /** tagMayMatch from the full hash. */
    bool
    tagMayMatchHash(u64 hash) const
    {
        return tagByte(bucketIndexOf(hash)) & tagOf(hash);
    }

    /** Address of the hash's tag byte (coroutine tag prefetch). */
    const u8 *
    tagAddrFor(u64 hash) const
    {
        return &tags_[bucketIndexOf(hash)];
    }

    /** Header node of the hash's bucket. */
    const Node *
    bucketHeadFor(u64 hash) const
    {
        // widx-lint: epoch-guard -- the returned header belongs to
        // this index object; under a ShardedIndex the shard pointer
        // itself is epoch-protected by the caller's pin.
        return &buckets_[bucketIndexOf(hash)].head;
    }

    const u8 *tagArray() const { return tags_; }

    Addr
    tagArrayAddr() const
    {
        return Addr(reinterpret_cast<std::uintptr_t>(tags_));
    }

    // --- Statistics ----------------------------------------------------

    /** Observed tag-filter effectiveness (fed by the batched sweep
     *  paths: probeBatch, walker-pool chunks, service windows). */
    const TagFilterStats &tagStats() const { return tagStats_; }

    /** Adaptive tagging: keep the filter on? (see TagFilterStats;
     *  `fallback` is the caller's configured default, returned until
     *  enough keys have been sampled). */
    bool
    taggedWorthwhile(bool fallback) const
    {
        return tagStats_.worthwhile(fallback);
    }

    u64 entries() const { return entries_; }

    /** Mean nodes per non-empty bucket. */
    double avgBucketDepth() const;

    /** Longest chain (including the header node). */
    u64 maxBucketDepth() const;

    /** Total bytes of buckets, overflow nodes, and tags (the index
     *  footprint that competes for cache capacity). */
    u64 footprintBytes() const;

    // Node/field offsets for schema-aware program generation.
    static constexpr u32 kNodeKeyOffset = 0;
    static constexpr u32 kNodePayloadOffset = 8;
    static constexpr u32 kNodeNextOffset = 16;
    static constexpr u32 kBucketHeadOffset = 8;
    static constexpr u32 kBucketStride = 32;

  private:
    /** Recompute one bucket's tag byte from its surviving chain
     *  (erase path; writer-side). */
    void refreshTag(u64 bidx);

    IndexSpec spec_;
    Arena &arena_;
    Bucket *buckets_;
    /** One tag byte per bucket (see tagOf). */
    u8 *tags_;
    u64 numBuckets_;
    unsigned bucketShift_; ///< log2(kBucketStride)
    unsigned hashShift_;   ///< spec_.hashShift (bucket addressing)
    u64 entries_ = 0;
    u64 overflowNodes_ = 0;
    TagFilterStats tagStats_;
    /** Sentinel key cell that empty indirect headers point to. */
    u64 *sentinelCell_;
    /** Writer-side freelist of epoch-reclaimed overflow nodes
     *  (recycleNode / insertLive; the Arena never frees). */
    std::vector<Node *> freeNodes_;
};

} // namespace widx::db

#endif // WIDX_DB_HASH_INDEX_HH
