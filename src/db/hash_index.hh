/**
 * @file
 * Chained hash index with bucket-header nodes (Section 2.2).
 *
 * Layout follows the paper's description of real DBMS indexes:
 *
 *  - the bucket array entries are *header nodes* combining minimal
 *    status (the entry count) with the first node of the bucket,
 *    eliminating one pointer dereference for the first node;
 *  - overflow nodes are chained through `next`;
 *  - optionally, nodes store *pointers to the original table entries*
 *    instead of the key itself (MonetDB-style "indirect keys"),
 *    trading space for an extra memory access and extra address
 *    computation on every comparison.
 *
 * All storage comes from an Arena, so host pointers serve as simulated
 * addresses and the index footprint is contiguous and realistic.
 *
 * Empty header slots hold the reserved kEmptyKey pattern (direct
 * layout) or a pointer to a shared sentinel cell (indirect layout), so
 * probe loops need no emptiness check — a failed compare plus a null
 * next pointer terminates them, exactly like Listing 1.
 */

#ifndef WIDX_DB_HASH_INDEX_HH
#define WIDX_DB_HASH_INDEX_HH

#include <functional>
#include <string>
#include <vector>

#include "common/arena.hh"
#include "db/column.hh"
#include "db/hash_fn.hh"
#include "db/value.hh"

namespace widx::db {

/** Construction-time description of a hash index. */
struct IndexSpec
{
    /** Number of buckets; rounded up to a power of two. */
    u64 buckets = 1024;
    /** Hash function (also consumed by Widx codegen and trace gen). */
    HashFn hashFn = HashFn::monetdbRobust();
    /** MonetDB-style nodes holding key pointers instead of keys. */
    bool indirectKeys = false;
};

class HashIndex
{
  public:
    /** Chained node. With indirect keys, `key` holds the address of
     *  the key's storage in the build column. */
    struct Node
    {
        u64 key = kEmptyKey; ///< key value or key address
        u64 payload = 0;     ///< row id / tuple id
        Node *next = nullptr;
    };

    /** Bucket-header node: count plus the inlined first node. */
    struct Bucket
    {
        u64 count = 0;
        Node head;
    };

    static_assert(sizeof(Node) == 24, "node layout is part of the ABI");
    static_assert(sizeof(Bucket) == 32,
                  "bucket stride must stay a power of two");

    HashIndex(const IndexSpec &spec, Arena &arena);

    /** Insert one (key, payload) pair. For indirect layouts,
     *  key_addr must be the address of the key's column storage. */
    void insert(u64 key, u64 payload, Addr key_addr = 0);

    /** Bulk-build from a key column; payload r is the row id r. */
    void buildFromColumn(const Column &keys);

    /**
     * Scalar reference probe (the role of Listing 1's
     * probe_hashtable): walks the bucket and invokes emit(payload)
     * for every node whose key matches.
     *
     * @return number of matches.
     */
    u64 probe(u64 key,
              const std::function<void(u64 payload)> &emit) const;

    /** Point lookup: payload of the first match or kNotFound. */
    u64 lookup(u64 key) const;

    // --- Geometry / layout accessors (used by codegen & trace gen) ---

    u64 numBuckets() const { return numBuckets_; }
    unsigned bucketShift() const { return bucketShift_; }
    u64 bucketMask() const { return numBuckets_ - 1; }
    const HashFn &hashFn() const { return spec_.hashFn; }
    bool indirectKeys() const { return spec_.indirectKeys; }

    Addr
    bucketArrayAddr() const
    {
        return Addr(reinterpret_cast<std::uintptr_t>(buckets_));
    }

    /** Bucket index for a key (hash masked to the table size). */
    u64
    bucketIndex(u64 key) const
    {
        return spec_.hashFn(key) & bucketMask();
    }

    const Bucket &
    bucketAt(u64 idx) const
    {
        return buckets_[idx & bucketMask()];
    }

    /** Resolve a node's key: dereferences for indirect layouts. */
    u64
    nodeKey(const Node &n) const
    {
        if (spec_.indirectKeys)
            return *reinterpret_cast<const u64 *>(
                std::uintptr_t(n.key));
        return n.key;
    }

    // --- Statistics ----------------------------------------------------

    u64 entries() const { return entries_; }

    /** Mean nodes per non-empty bucket. */
    double avgBucketDepth() const;

    /** Longest chain (including the header node). */
    u64 maxBucketDepth() const;

    /** Total bytes of buckets plus overflow nodes (the index
     *  footprint that competes for cache capacity). */
    u64 footprintBytes() const;

    // Node/field offsets for schema-aware program generation.
    static constexpr u32 kNodeKeyOffset = 0;
    static constexpr u32 kNodePayloadOffset = 8;
    static constexpr u32 kNodeNextOffset = 16;
    static constexpr u32 kBucketHeadOffset = 8;
    static constexpr u32 kBucketStride = 32;

  private:
    IndexSpec spec_;
    Arena &arena_;
    Bucket *buckets_;
    u64 numBuckets_;
    unsigned bucketShift_; ///< log2(kBucketStride)
    u64 entries_ = 0;
    u64 overflowNodes_ = 0;
    /** Sentinel key cell that empty indirect headers point to. */
    u64 *sentinelCell_;
};

} // namespace widx::db

#endif // WIDX_DB_HASH_INDEX_HH
