/**
 * @file
 * Sort operator and sort-merge join.
 *
 * The sort-merge join exists both as a DBMS operator for the Fig. 2
 * operator mix ("Sort & Join") and as the software baseline the paper
 * contrasts hash joins against in Section 7 (citing Balkesen et al.:
 * "hash join clearly outperforms the sort-merge join").
 */

#ifndef WIDX_DB_SORT_HH
#define WIDX_DB_SORT_HH

#include <vector>

#include "db/column.hh"
#include "db/hash_join.hh"

namespace widx::db {

/** Row ids of the column ordered by ascending value. */
std::vector<RowId> sortRows(const Column &col);

/** Values of the column in ascending order. */
std::vector<u64> sortValues(const Column &col);

/**
 * Sort-merge equi-join: sorts both inputs, then merges. Handles
 * duplicate keys on both sides (cross product per equal-key run).
 */
JoinResult sortMergeJoin(const Column &left, const Column &right,
                         bool materialize = true);

} // namespace widx::db

#endif // WIDX_DB_SORT_HH
