/**
 * @file
 * Aggregation operators (the "Other" class of the Fig. 2 breakdown:
 * sums, maxima, group-bys that follow the join in DSS plans).
 */

#ifndef WIDX_DB_AGGREGATE_HH
#define WIDX_DB_AGGREGATE_HH

#include <unordered_map>
#include <vector>

#include "db/column.hh"

namespace widx::db {

/** Sum of the selected rows' values. */
u64 aggregateSum(const Column &col, const std::vector<RowId> &rows);

/** Maximum of the selected rows' values; 0 for an empty selection. */
u64 aggregateMax(const Column &col, const std::vector<RowId> &rows);

/** Group the selected rows by group_col and sum value_col per group. */
std::unordered_map<u64, u64>
groupBySum(const Column &group_col, const Column &value_col,
           const std::vector<RowId> &rows);

/** Count distinct values among the selected rows. */
u64 countDistinct(const Column &col, const std::vector<RowId> &rows);

} // namespace widx::db

#endif // WIDX_DB_AGGREGATE_HH
