#include "db/hash_join.hh"

#include <algorithm>
#include <chrono>
#include <span>
#include <vector>

#include "swwalkers/walker_pool.hh"

namespace widx::db {

namespace {

double
secondsSince(std::chrono::steady_clock::time_point start)
{
    auto delta = std::chrono::steady_clock::now() - start;
    return std::chrono::duration<double>(delta).count();
}

} // namespace

JoinResult
probeAll(const HashIndex &index, const Column &probe_keys,
         bool materialize, const sw::PipelineConfig &cfg)
{
    JoinResult result;
    const u64 n = probe_keys.size();
    result.probes = n;

    // The probe loop rides the decoupled batch pipeline: keys are
    // vector-hashed and their tag/bucket lines prefetched a batch at
    // a time before any bucket walk starts. The batched-scalar
    // schedule walks keys in row order and chains in node order, so
    // the emitted pair sequence is identical to the classic loop's;
    // the walker pool emits in its deterministic chunk-merged order
    // instead.
    if (materialize)
        result.pairs.reserve(n);

    auto sink = [&](std::size_t r, u64, u64 payload) {
        if (materialize)
            result.pairs.push_back({payload, RowId(r)});
    };

    auto start = std::chrono::steady_clock::now();
    if (probe_keys.elemWidth() != 8 && cfg.walkers <= 1) {
        // Narrow columns widen through the 64-bit carrier, staged
        // through a stack buffer of several dispatcher batches so
        // probeBatch's dispatch-ahead pipeline still overlaps
        // batches within each chunk (O(1) staging memory).
        u64 widened[HashIndex::kMaxProbeBatch];
        for (u64 base = 0; base < n;
             base += HashIndex::kMaxProbeBatch) {
            const u64 g =
                std::min<u64>(HashIndex::kMaxProbeBatch, n - base);
            for (u64 i = 0; i < g; ++i)
                widened[i] = probe_keys.at(base + i);
            result.matches += index.probeBatch(
                std::span<const u64>{widened, g},
                [&](std::size_t i, u64, u64 payload) {
                    if (materialize)
                        result.pairs.push_back(
                            {payload, RowId(base + i)});
                },
                cfg.tagged,
                cfg.batch ? cfg.batch : HashIndex::kProbeBatch);
        }
        result.probeSeconds = secondsSince(start);
        return result;
    }

    // One contiguous u64 span: the column storage in place, or —
    // for narrow columns under the pool — widened up front so
    // walker threads can claim chunks of it.
    std::span<const u64> keys;
    std::vector<u64> widened;
    if (probe_keys.elemWidth() == 8) {
        keys = {reinterpret_cast<const u64 *>(
                    std::uintptr_t(probe_keys.baseAddr())),
                n};
    } else {
        widened.resize(n);
        for (u64 i = 0; i < n; ++i)
            widened[i] = probe_keys.at(i);
        keys = widened;
    }

    if (cfg.walkers > 1) {
        // Walker pool: the dispatcher (this thread) feeds the
        // window ring, K walker threads drain it, and the merged
        // matches replay into the single-threaded sink above.
        // Count-only joins take the unbuffered overload:
        // per-walker counters, no match records, no merge.
        sw::WalkerPool pool(index, 8, cfg);
        result.matches = materialize ? pool.probeAll(keys, sink)
                                     : pool.probeAll(keys);
    } else {
        result.matches = index.probeBatch(
            keys, sink, cfg.tagged,
            cfg.batch ? cfg.batch : HashIndex::kProbeBatch);
    }
    result.probeSeconds = secondsSince(start);
    return result;
}

JoinResult
hashJoin(const Column &build_keys, const Column &probe_keys,
         const IndexSpec &spec, Arena &arena, bool materialize,
         const sw::PipelineConfig &cfg)
{
    auto start = std::chrono::steady_clock::now();
    HashIndex index(spec, arena);
    index.buildFromColumn(build_keys);
    double build_seconds = secondsSince(start);

    JoinResult result = probeAll(index, probe_keys, materialize, cfg);
    result.buildSeconds = build_seconds;
    return result;
}

} // namespace widx::db
