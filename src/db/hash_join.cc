#include "db/hash_join.hh"

#include <chrono>

namespace widx::db {

namespace {

double
secondsSince(std::chrono::steady_clock::time_point start)
{
    auto delta = std::chrono::steady_clock::now() - start;
    return std::chrono::duration<double>(delta).count();
}

} // namespace

JoinResult
probeAll(const HashIndex &index, const Column &probe_keys,
         bool materialize)
{
    JoinResult result;
    const u64 n = probe_keys.size();
    result.probes = n;

    auto start = std::chrono::steady_clock::now();
    for (RowId r = 0; r < n; ++r) {
        const u64 key = probe_keys.at(r);
        const HashIndex::Bucket &b =
            index.bucketAt(index.bucketIndex(key));
        for (const HashIndex::Node *node = &b.head; node;
             node = node->next) {
            if (index.nodeKey(*node) == key) {
                ++result.matches;
                if (materialize)
                    result.pairs.push_back({node->payload, r});
            }
        }
    }
    result.probeSeconds = secondsSince(start);
    return result;
}

JoinResult
hashJoin(const Column &build_keys, const Column &probe_keys,
         const IndexSpec &spec, Arena &arena, bool materialize)
{
    auto start = std::chrono::steady_clock::now();
    HashIndex index(spec, arena);
    index.buildFromColumn(build_keys);
    double build_seconds = secondsSince(start);

    JoinResult result = probeAll(index, probe_keys, materialize);
    result.buildSeconds = build_seconds;
    return result;
}

} // namespace widx::db
