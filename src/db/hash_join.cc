#include "db/hash_join.hh"

#include <algorithm>
#include <chrono>
#include <span>
#include <thread>
#include <vector>

#include "service/index_service.hh"

namespace widx::db {

namespace {

double
secondsSince(std::chrono::steady_clock::time_point start)
{
    auto delta = std::chrono::steady_clock::now() - start;
    return std::chrono::duration<double>(delta).count();
}

/** One contiguous u64 view of a key column: the storage in place
 *  for 8-byte columns, widened through `storage` otherwise. */
std::span<const u64>
contiguousKeys(const Column &col, std::vector<u64> &storage)
{
    const u64 n = col.size();
    if (col.elemWidth() == 8)
        return {reinterpret_cast<const u64 *>(
                    std::uintptr_t(col.baseAddr())),
                n};
    storage.resize(n);
    for (u64 i = 0; i < n; ++i)
        storage[i] = col.at(i);
    return storage;
}

} // namespace

JoinResult
probeAll(const HashIndex &index, const Column &probe_keys,
         bool materialize, const sw::PipelineConfig &cfg)
{
    if (cfg.walkers > 1) {
        // Multi-walker one-shot: a scoped service instance — the
        // same persistent-walker machinery long-lived callers hold
        // onto, constructed and torn down around this single call.
        // probeSeconds covers the service's thread spawn and join
        // too: that per-call tax is real for one-shot callers (it's
        // exactly what holding a service amortizes), and PR 2's
        // pool path timed it the same way.
        auto start = std::chrono::steady_clock::now();
        JoinResult result;
        {
            sw::ServiceConfig scfg;
            scfg.walkers = cfg.walkers;
            scfg.pipeline = cfg;
            sw::IndexService service(index, scfg);
            result = probeAll(service, probe_keys, materialize);
        }
        result.probeSeconds = secondsSince(start);
        return result;
    }

    JoinResult result;
    const u64 n = probe_keys.size();
    result.probes = n;

    // The probe loop rides the decoupled batch pipeline: keys are
    // vector-hashed and their tag/bucket lines prefetched a batch at
    // a time before any bucket walk starts. The batched-scalar
    // schedule walks keys in row order and chains in node order, so
    // the emitted pair sequence is identical to the classic loop's.
    if (materialize)
        result.pairs.reserve(n);

    const bool tagged = sw::effectiveTagged(index, cfg);
    const std::size_t batch =
        cfg.batch ? cfg.batch : HashIndex::kProbeBatch;

    auto start = std::chrono::steady_clock::now();
    if (probe_keys.elemWidth() != 8) {
        // Narrow columns widen through the 64-bit carrier, staged
        // through a stack buffer of several dispatcher batches so
        // probeBatch's dispatch-ahead pipeline still overlaps
        // batches within each chunk (O(1) staging memory).
        u64 widened[HashIndex::kMaxProbeBatch];
        for (u64 base = 0; base < n;
             base += HashIndex::kMaxProbeBatch) {
            const u64 g =
                std::min<u64>(HashIndex::kMaxProbeBatch, n - base);
            for (u64 i = 0; i < g; ++i)
                widened[i] = probe_keys.at(base + i);
            result.matches += index.probeBatch(
                std::span<const u64>{widened, g},
                [&](std::size_t i, u64, u64 payload) {
                    if (materialize)
                        result.pairs.push_back(
                            {payload, RowId(base + i)});
                },
                tagged, batch);
        }
        result.probeSeconds = secondsSince(start);
        return result;
    }

    const std::span<const u64> keys{
        reinterpret_cast<const u64 *>(
            std::uintptr_t(probe_keys.baseAddr())),
        n};
    result.matches = index.probeBatch(
        keys,
        [&](std::size_t r, u64, u64 payload) {
            if (materialize)
                result.pairs.push_back({payload, RowId(r)});
        },
        tagged, batch);
    result.probeSeconds = secondsSince(start);
    return result;
}

JoinResult
probeAll(sw::IndexService &service, const Column &probe_keys,
         bool materialize)
{
    JoinResult result;
    result.probes = probe_keys.size();

    std::vector<u64> widened;
    const std::span<const u64> keys =
        contiguousKeys(probe_keys, widened);

    // Async slicing: the probe side goes out as many independent
    // requests through one CompletionQueue instead of a single
    // blocking call, so every walker (and every shard's home
    // walker, under affine routing) has work from the first slice
    // on while later slices are still being admitted. Slices are
    // position-contiguous, so reassembling them in slice order with
    // a base offset reproduces the single-request record sequence
    // byte-for-byte.
    //
    // The fan-out must honor bounded admission, not defeat it. The
    // old blocking path submitted one whole request, which the
    // admission queues either take or reject atomically; a naive
    // submit-everything fan-out instead fills the queues with its
    // own early slices and gets its own later slices shed
    // (Status::Rejected, empty results) — a silently partial join.
    // So: at most kMaxInFlight slices are outstanding at once, and
    // a shed slice is resubmitted once the queues drain. Progress
    // is guaranteed — admission is a whole-request check that
    // always admits on a drained queue (overshoot-by-one-request
    // rule), walkers keep draining, and a stopped service turns
    // further submissions into Cancelled completions, which are
    // terminal below.
    constexpr std::size_t kSlice = 4096;
    constexpr std::size_t kMaxInFlight = 64;
    const std::size_t nSlices =
        keys.empty() ? 0 : (keys.size() + kSlice - 1) / kSlice;

    auto start = std::chrono::steady_clock::now();
    const sw::RequestKind kind = materialize
                                     ? sw::RequestKind::Join
                                     : sw::RequestKind::Count;
    auto cq = std::make_shared<sw::CompletionQueue>();
    auto slice = [&](std::size_t s) {
        return keys.subspan(
            s * kSlice, std::min(kSlice, keys.size() - s * kSlice));
    };

    std::vector<std::vector<sw::MatchRec>> bySlice(
        materialize ? nSlices : 0);
    std::size_t submitted = 0;
    std::size_t inFlight = 0;
    std::size_t completed = 0;
    std::vector<sw::Completion> batch;
    std::vector<std::size_t> shed;
    while (completed < nSlices) {
        while (submitted < nSlices && inFlight < kMaxInFlight &&
               result.status == sw::Status::Ok) {
            service.submitAsync(kind, slice(submitted), {}, cq,
                                submitted);
            ++submitted;
            ++inFlight;
        }
        if (inFlight == 0)
            break; // terminal status; remaining slices never sent
        batch.clear();
        bool progressed = false;
        cq->reap(batch, inFlight, std::chrono::milliseconds(100));
        for (sw::Completion &c : batch) {
            if (c.result.status == sw::Status::Rejected &&
                result.status == sw::Status::Ok) {
                shed.push_back(std::size_t(c.tag));
                continue;
            }
            --inFlight;
            ++completed;
            if (c.result.status != sw::Status::Ok) {
                // Cancelled (service stopped) or DeadlineExceeded —
                // the join cannot complete whole. Keep the first
                // terminal status, stop submitting, drain what is
                // already in flight, and surface it to the caller.
                if (result.status == sw::Status::Ok)
                    result.status = c.result.status;
                continue;
            }
            progressed = true;
            result.matches += c.result.matches;
            if (materialize)
                bySlice[c.tag] = std::move(c.result.recs);
        }
        if (!shed.empty()) {
            if (result.status != sw::Status::Ok) {
                // A terminal status landed in the same batch: the
                // shed slices will never be served — retire them
                // instead of resubmitting into a stopping service.
                inFlight -= shed.size();
                completed += shed.size();
            } else {
                // Rejections complete synchronously, so a round
                // that only saw sheds would otherwise hot-spin
                // against a still-full queue; yield briefly before
                // retrying.
                if (!progressed)
                    std::this_thread::sleep_for(
                        std::chrono::microseconds(100));
                for (std::size_t s : shed)
                    service.submitAsync(kind, slice(s), {}, cq, s);
            }
            shed.clear();
        }
    }

    if (materialize && result.status == sw::Status::Ok) {
        result.pairs.reserve(result.matches);
        for (std::size_t s = 0; s < nSlices; ++s)
            for (const sw::MatchRec &rec : bySlice[s])
                result.pairs.push_back(
                    {rec.payload, RowId(s * kSlice + rec.i)});
    }
    result.probeSeconds = secondsSince(start);
    return result;
}

JoinResult
hashJoin(const Column &build_keys, const Column &probe_keys,
         const IndexSpec &spec, Arena &arena, bool materialize,
         const sw::PipelineConfig &cfg)
{
    auto start = std::chrono::steady_clock::now();
    HashIndex index(spec, arena);
    index.buildFromColumn(build_keys);
    double build_seconds = secondsSince(start);

    JoinResult result = probeAll(index, probe_keys, materialize, cfg);
    result.buildSeconds = build_seconds;
    return result;
}

} // namespace widx::db
