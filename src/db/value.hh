/**
 * @file
 * Value representation for the column-store mini-DBMS.
 *
 * All values are carried as 64-bit patterns: unsigned integers are
 * zero-extended, doubles are bit-cast (TPC-H q20 probes an index of
 * double-typed keys; hashing operates on the bit pattern, as a
 * multiply-free hardware hasher would).
 */

#ifndef WIDX_DB_VALUE_HH
#define WIDX_DB_VALUE_HH

#include <bit>

#include "common/types.hh"

namespace widx::db {

/** Logical type of a column. */
enum class ValueKind : u8
{
    U32,
    U64,
    F64,
};

/** Physical element width in bytes for a value kind. */
constexpr u32
elemBytes(ValueKind kind)
{
    return kind == ValueKind::U32 ? 4 : 8;
}

/** Reserved key pattern marking an empty bucket-header slot; user
 *  keys must never equal it. */
constexpr u64 kEmptyKey = ~u64{0};

/** Reserved "no payload" return for failed point lookups. */
constexpr u64 kNotFound = ~u64{0};

/** Bit-cast a double to its carrier pattern. */
inline u64
f64Bits(double v)
{
    return std::bit_cast<u64>(v);
}

/** Recover a double from its carrier pattern. */
inline double
bitsF64(u64 bits)
{
    return std::bit_cast<double>(bits);
}

const char *valueKindName(ValueKind kind);

} // namespace widx::db

#endif // WIDX_DB_VALUE_HH
