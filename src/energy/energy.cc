#include "energy/energy.hh"

namespace widx::energy {

EnergyResult
computeEnergy(const EnergyParams &p, Design d, Cycle cycles)
{
    EnergyResult r;
    r.seconds = double(cycles) / (p.clockGhz * 1e9);
    r.joules = p.activeWatts(d) * r.seconds;
    r.edp = r.joules * r.seconds;
    return r;
}

} // namespace widx::energy
