/**
 * @file
 * Energy and area model (Section 6.3).
 *
 * The paper's energy results are arithmetic over published constants
 * and measured runtimes:
 *  - a synthesized Widx unit (40 nm TSMC, 2 GHz) is 0.039 mm2 and
 *    draws 53 mW; the 6-unit complex (dispatcher + 4 walkers +
 *    producer with 2-entry queues) is 0.24 mm2 / 320 mW;
 *  - an ARM Cortex-A8-like in-order core is 1.3 mm2 / 480 mW
 *    including L1 caches [Lotfi-Kamran et al.];
 *  - the OoO Xeon-like core runs at its nominal operating power, and
 *    idles at 30% of nominal [Intel datasheets];
 *  - while Widx runs, the host core idles but keeps its MMU and L1-D
 *    powered (Widx shares them), so the Widx-enabled design draws
 *    idle-OoO + Widx + L1 activity power.
 */

#ifndef WIDX_ENERGY_ENERGY_HH
#define WIDX_ENERGY_ENERGY_HH

#include "common/types.hh"

namespace widx::energy {

/** Which execution engine runs the indexing operation. */
enum class Design : u8
{
    OoO,        ///< baseline out-of-order core
    InOrder,    ///< Cortex-A8-like in-order core
    WidxOnOoO,  ///< Widx with the OoO host idling
};

struct EnergyParams
{
    /** Nominal OoO core power, W (Xeon-class core at 2 GHz; chosen so
     *  the in-order core's 86% energy saving at 2.2x the runtime
     *  reproduces, Section 6.3). */
    double oooWatts = 7.5;
    /** Idle power fraction of nominal [paper's 30% assumption]. */
    double idleFraction = 0.30;
    /** In-order core incl. L1 caches, W. */
    double inorderWatts = 0.48;
    /** Six Widx units, W (synthesis result). */
    double widxWatts = 0.320;
    /** L1-D activity while Widx drives it (CACTI-class estimate). */
    double l1ActivityWatts = 0.25;
    double clockGhz = 2.0;

    /** Power drawn while the given design executes indexing. */
    double
    activeWatts(Design d) const
    {
        switch (d) {
          case Design::OoO:
            return oooWatts;
          case Design::InOrder:
            return inorderWatts;
          case Design::WidxOnOoO:
            return idleFraction * oooWatts + widxWatts +
                   l1ActivityWatts;
        }
        return 0.0;
    }
};

struct EnergyResult
{
    double seconds = 0.0;
    double joules = 0.0;
    double edp = 0.0; ///< energy-delay product, J*s
};

/** Energy of running `cycles` of indexing on a design. */
EnergyResult computeEnergy(const EnergyParams &p, Design d,
                           Cycle cycles);

/** Synthesis-derived area/power constants (Section 6.3), used by the
 *  configuration table bench. */
struct AreaConstants
{
    double widxUnitMm2 = 0.039;
    double widxUnitWatts = 0.053;
    double widxSixUnitsMm2 = 0.24;
    double widxSixUnitsWatts = 0.320;
    double cortexA8Mm2 = 1.3;
    double cortexA8Watts = 0.480;
    /** Widx area as a fraction of the A8 (paper: 18%). */
    double
    widxVsA8AreaFraction() const
    {
        return widxSixUnitsMm2 / cortexA8Mm2;
    }
};

} // namespace widx::energy

#endif // WIDX_ENERGY_ENERGY_HH
