#include "net/server.hh"

#include <cerrno>
#include <cstring>

#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include "common/logging.hh"
#include "obs/metrics.hh"
#include "obs/trace.hh"

namespace widx::net {

TcpIndexServer::TcpIndexServer(sw::IndexService &service,
                               const TcpServerOptions &opt)
    : service_(service), opt_(opt)
{
    listenFd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK, 0);
    fatal_if(listenFd_ < 0, "socket(): %s", errnoText(errno).c_str());
    const int one = 1;
    ::setsockopt(listenFd_, SOL_SOCKET, SO_REUSEADDR, &one,
                 sizeof(one));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    // Loopback-only: this front-end has no auth; widening the bind
    // address is a deliberate future step, not a default.
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(opt_.port);
    fatal_if(::bind(listenFd_,
                    reinterpret_cast<const sockaddr *>(&addr),
                    sizeof(addr)) != 0,
             "bind(port %u): %s", unsigned(opt_.port),
             errnoText(errno).c_str());
    fatal_if(::listen(listenFd_, opt_.backlog) != 0, "listen(): %s",
             errnoText(errno).c_str());
    socklen_t alen = sizeof(addr);
    fatal_if(::getsockname(listenFd_,
                           reinterpret_cast<sockaddr *>(&addr),
                           &alen) != 0,
             "getsockname(): %s", errnoText(errno).c_str());
    port_ = ntohs(addr.sin_port);

    epollFd_ = ::epoll_create1(0);
    fatal_if(epollFd_ < 0, "epoll_create1(): %s",
             errnoText(errno).c_str());
    wakeFd_ = ::eventfd(0, EFD_NONBLOCK);
    fatal_if(wakeFd_ < 0, "eventfd(): %s", errnoText(errno).c_str());
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.fd = listenFd_;
    ::epoll_ctl(epollFd_, EPOLL_CTL_ADD, listenFd_, &ev);
    ev.data.fd = wakeFd_;
    ::epoll_ctl(epollFd_, EPOLL_CTL_ADD, wakeFd_, &ev);

    if (opt_.metrics) {
        metrics_ = opt_.metrics;
    } else {
        // Self-contained default: a private registry pre-loaded
        // with the wrapped service's metrics, so a bare server is
        // scrapeable out of the box.
        ownedMetrics_ = std::make_unique<obs::MetricsRegistry>();
        metrics_ = ownedMetrics_.get();
        service_.registerMetrics(*metrics_);
    }
    metrics_->addCollector(
        [this](obs::Snapshot &out) { collectNetMetrics(out); });
    trace_ = opt_.trace.get();

    loop_ = std::thread([this] { loopMain(); });
    reaper_ = std::thread([this] { reaperMain(); });
}

TcpIndexServer::~TcpIndexServer()
{
    stop();
}

void
TcpIndexServer::stop()
{
    if (!loop_.joinable() && !reaper_.joinable())
        return;
    stopping_.store(true, std::memory_order_release);
    const u64 one = 1;
    [[maybe_unused]] ssize_t w = ::write(wakeFd_, &one, sizeof(one));
    if (loop_.joinable())
        loop_.join();
    // Loop is down: close every connection. Completions still in
    // flight find no connection and count as dropped; the reaper
    // exits once the last one lands (the service guarantees every
    // submitted request completes).
    {
        MutexLock lk(connM_);
        for (auto &[fd, c] : conns_) {
            ::close(fd);
            nClosed_.fetch_add(1, std::memory_order_relaxed);
        }
        conns_.clear();
    }
    if (reaper_.joinable())
        reaper_.join();
    cq_->close();
    ::close(epollFd_);
    ::close(listenFd_);
    ::close(wakeFd_);
    epollFd_ = listenFd_ = wakeFd_ = -1;
}

void
TcpIndexServer::updateEpoll(int fd, Conn &c)
{
    epoll_event ev{};
    ev.events = EPOLLIN | (c.wantWrite ? EPOLLOUT : 0u);
    ev.data.fd = fd;
    ::epoll_ctl(epollFd_, EPOLL_CTL_MOD, fd, &ev);
}

// widx-lint: event-loop
TcpIndexServer::Conn *
TcpIndexServer::findConn(int fd)
{
    // widx-lint: allow(blocking) -- bounded table lookup under an
    // uncontended lock; never held across I/O.
    MutexLock lk(connM_);
    auto it = conns_.find(fd);
    return it == conns_.end() ? nullptr : &it->second;
}

// widx-lint: event-loop
void
TcpIndexServer::closeConn(int fd)
{
    ::epoll_ctl(epollFd_, EPOLL_CTL_DEL, fd, nullptr);
    ::close(fd);
    {
        // widx-lint: allow(blocking) -- O(1) erase under an
        // uncontended lock; never held across I/O.
        MutexLock lk(connM_);
        conns_.erase(fd);
    }
    nClosed_.fetch_add(1, std::memory_order_relaxed);
}

// widx-lint: event-loop
void
TcpIndexServer::handleReadable(int fd)
{
    // The loop thread is the table's only eraser, so the pointer
    // stays valid after findConn drops the lock; only Conn::out and
    // outOff (shared with the reaper) are touched under connM_.
    Conn *cp = findConn(fd);
    if (!cp)
        return;
    Conn &c = *cp;

    u8 buf[64 * 1024];
    for (;;) {
        const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
        if (n > 0) {
            c.rd.feed(buf, std::size_t(n));
            continue;
        }
        if (n == 0) { // orderly EOF
            closeConn(fd);
            return;
        }
        if (errno == EINTR)
            continue;
        if (errno == EAGAIN || errno == EWOULDBLOCK)
            break;
        closeConn(fd);
        return;
    }

    // Submit every complete frame back-to-back: a pipelining
    // client's burst lands in the service's open admission windows
    // together — the per-connection batching this front-end exists
    // to exploit.
    std::span<const u8> payload;
    bool bad = false;
    bool inlineQueued = false;
    while (!c.closeOnDrain && c.rd.next(payload, bad)) {
        ReqHeader h;
        u64 traceId = 0;
        auto pr = std::make_unique<PendingReq>();
        if (!parseRequest(payload.data(), payload.size(), h,
                          pr->keys, &traceId, &pr->payloads)) {
            bad = true;
            break;
        }
        if (h.kind == kWireKindHello) {
            // Version handshake, answered in-line like Stats. A
            // match unlocks the mutation kinds on this connection;
            // a mismatch is answered honestly and then the
            // connection closes once the response drains — the
            // client learns *why* before losing the socket.
            const bool speak =
                pr->keys[0] == kWireProtocolVersion;
            {
                // widx-lint: allow(blocking) -- bounded buffer
                // append shared with the reaper; no I/O under it.
                MutexLock lk(connM_);
                appendHelloResponse(
                    c.out, h.reqId,
                    speak ? sw::Status::Ok
                          : sw::Status::UnsupportedVersion);
            }
            nResponses_.fetch_add(1, std::memory_order_relaxed);
            inlineQueued = true;
            if (speak)
                c.version = kWireProtocolVersion;
            else
                c.closeOnDrain = true;
            continue;
        }
        if (h.kind == kWireKindStats) {
            // Answered in-line from the registry, never submitted:
            // a scrape must not hold admission budget or perturb
            // the windows it is measuring. Appended under connM_
            // and flushed via the eventfd on the *next* loop
            // iteration — flushConn here could close the
            // connection and free the FrameReader mid-parse.
            const std::string text = metrics_->renderPrometheus();
            {
                // widx-lint: allow(blocking) -- bounded buffer
                // append shared with the reaper; no I/O under it.
                MutexLock lk(connM_);
                appendStatsResponse(c.out, h.reqId, text);
            }
            nStatsScrapes_.fetch_add(1, std::memory_order_relaxed);
            nResponses_.fetch_add(1, std::memory_order_relaxed);
            inlineQueued = true;
            continue;
        }
        sw::RequestKind kind;
        if (!serviceKindOfWire(h.kind, kind)) {
            bad = true; // parseRequest admits only mapped kinds here
            break;
        }
        if (wireKindIsMutation(h.kind) &&
            c.version < kWireProtocolVersion) {
            // A well-formed mutation frame on a connection that
            // never said Hello: refuse it cleanly rather than
            // dropping the connection — the frame is valid, the
            // capability just is not negotiated.
            sw::ServiceResult r;
            r.status = sw::Status::UnsupportedVersion;
            {
                // widx-lint: allow(blocking) -- bounded buffer
                // append shared with the reaper; no I/O under it.
                MutexLock lk(connM_);
                appendResponse(c.out, h.reqId, kind, r);
            }
            nResponses_.fetch_add(1, std::memory_order_relaxed);
            inlineQueued = true;
            continue;
        }
        pr->fd = fd;
        pr->gen = c.gen;
        pr->reqId = h.reqId;
        pr->kind = kind;
        sw::SubmitOptions sub;
        if (h.deadlineNs)
            sub.deadlineNs = monotonicNowNs() + h.deadlineNs;
        sub.traceId = traceId;
        nRequests_.fetch_add(1, std::memory_order_relaxed);
        outstanding_.fetch_add(1, std::memory_order_relaxed);
        PendingReq *raw = pr.release(); // reaper reclaims via tag
        sub.payloads = std::span<const u64>(raw->payloads);
        service_.submitAsync(raw->kind,
                             std::span<const u64>(raw->keys), sub,
                             cq_, reinterpret_cast<u64>(raw));
    }
    if (bad) {
        nProtoErr_.fetch_add(1, std::memory_order_relaxed);
        closeConn(fd);
        return;
    }
    if (inlineQueued) {
        const u64 one = 1;
        [[maybe_unused]] ssize_t w =
            ::write(wakeFd_, &one, sizeof(one));
    }
}

// widx-lint: event-loop
void
TcpIndexServer::flushConn(int fd, Conn &c)
{
    bool dead = false;
    bool drained = false;
    {
        // widx-lint: allow(blocking) -- the sends below run on a
        // nonblocking fd; the reaper only appends under this lock
        // and never blocks holding it.
        MutexLock lk(connM_);
        while (c.outOff < c.out.size()) {
            const ssize_t n =
                ::send(fd, c.out.data() + c.outOff,
                       c.out.size() - c.outOff, MSG_NOSIGNAL);
            if (n > 0) {
                c.outOff += std::size_t(n);
                continue;
            }
            if (errno == EINTR)
                continue;
            if (errno == EAGAIN || errno == EWOULDBLOCK)
                break;
            dead = true;
            break;
        }
        if (c.outOff == c.out.size()) {
            c.out.clear();
            c.outOff = 0;
            c.wantWrite = false;
            drained = true;
        } else {
            c.wantWrite = true;
        }
    }
    if (dead || (drained && c.closeOnDrain)) {
        // Version-mismatch connections drop once their
        // UnsupportedVersion answer has flushed.
        closeConn(fd);
        return;
    }
    updateEpoll(fd, c);
}

// widx-lint: event-loop
void
TcpIndexServer::loopMain()
{
    epoll_event evs[64];
    while (!stopping_.load(std::memory_order_acquire)) {
        const int n = ::epoll_wait(epollFd_, evs, 64, -1);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return;
        }
        for (int i = 0; i < n; ++i) {
            const int fd = evs[i].data.fd;
            if (fd == wakeFd_) {
                u64 drain;
                while (::read(wakeFd_, &drain, sizeof(drain)) > 0) {
                }
                // The reaper queued output (or stop was requested):
                // flush everything writable, drop slow consumers.
                std::vector<int> todo, overflowed;
                {
                    // widx-lint: allow(blocking) -- O(conns) sweep
                    // of buffer sizes; no I/O under the lock.
                    MutexLock lk(connM_);
                    for (auto &[cfd, c] : conns_) {
                        if (c.out.size() - c.outOff >
                            opt_.maxOutBytes)
                            overflowed.push_back(cfd);
                        else if (c.outOff < c.out.size())
                            todo.push_back(cfd);
                    }
                }
                for (int cfd : overflowed)
                    closeConn(cfd);
                for (int cfd : todo) {
                    if (Conn *c = findConn(cfd))
                        flushConn(cfd, *c);
                }
                continue;
            }
            if (fd == listenFd_) {
                for (;;) {
                    const int cfd = ::accept4(listenFd_, nullptr,
                                              nullptr,
                                              SOCK_NONBLOCK);
                    if (cfd < 0)
                        break;
                    const int one = 1;
                    ::setsockopt(cfd, IPPROTO_TCP, TCP_NODELAY,
                                 &one, sizeof(one));
                    {
                        // widx-lint: allow(blocking) -- O(1) table
                        // insert; no I/O under the lock.
                        MutexLock lk(connM_);
                        conns_[cfd].gen = nextGen_++;
                    }
                    epoll_event ev{};
                    ev.events = EPOLLIN;
                    ev.data.fd = cfd;
                    ::epoll_ctl(epollFd_, EPOLL_CTL_ADD, cfd, &ev);
                    nAccepted_.fetch_add(
                        1, std::memory_order_relaxed);
                }
                continue;
            }
            // A connection: an earlier handler this batch may have
            // closed it already.
            if (!findConn(fd))
                continue;
            if (evs[i].events & (EPOLLHUP | EPOLLERR)) {
                closeConn(fd);
                continue;
            }
            if (evs[i].events & EPOLLOUT) {
                if (Conn *c = findConn(fd))
                    flushConn(fd, *c);
            }
            if (evs[i].events & EPOLLIN)
                handleReadable(fd);
        }
    }
}

void
TcpIndexServer::reaperMain()
{
    std::vector<sw::Completion> batch;
    for (;;) {
        batch.clear();
        cq_->reap(batch, 256, std::chrono::milliseconds(50));
        if (!batch.empty()) {
            bool poke = false;
            {
                MutexLock lk(connM_);
                for (const sw::Completion &comp : batch) {
                    std::unique_ptr<PendingReq> pr(
                        reinterpret_cast<PendingReq *>(comp.tag));
                    if (trace_ && comp.result.traceId)
                        trace_->record(comp.result.traceId,
                                       obs::SpanPoint::Reap,
                                       monotonicNowNs());
                    auto it = conns_.find(pr->fd);
                    if (it == conns_.end() ||
                        it->second.gen != pr->gen) {
                        nDropped_.fetch_add(
                            1, std::memory_order_relaxed);
                        continue;
                    }
                    appendResponse(it->second.out, pr->reqId,
                                   pr->kind, comp.result);
                    nResponses_.fetch_add(
                        1, std::memory_order_relaxed);
                    poke = true;
                }
            }
            outstanding_.fetch_sub(batch.size(),
                                   std::memory_order_relaxed);
            if (poke) {
                const u64 one = 1;
                [[maybe_unused]] ssize_t w =
                    ::write(wakeFd_, &one, sizeof(one));
            }
        }
        if (stopping_.load(std::memory_order_acquire) &&
            outstanding_.load(std::memory_order_relaxed) == 0)
            return;
    }
}

TcpServerStats
TcpIndexServer::stats() const
{
    TcpServerStats s;
    s.accepted = nAccepted_.load(std::memory_order_relaxed);
    s.closed = nClosed_.load(std::memory_order_relaxed);
    s.requests = nRequests_.load(std::memory_order_relaxed);
    s.responses = nResponses_.load(std::memory_order_relaxed);
    s.droppedResponses = nDropped_.load(std::memory_order_relaxed);
    s.protocolErrors = nProtoErr_.load(std::memory_order_relaxed);
    s.statsScrapes = nStatsScrapes_.load(std::memory_order_relaxed);
    return s;
}

void
TcpIndexServer::collectNetMetrics(obs::Snapshot &out) const
{
    using obs::Family;
    using obs::MetricType;
    using obs::Sample;

    auto scalar = [&](const char *name, const char *help,
                      MetricType type, double v) {
        Family f;
        f.name = name;
        f.help = help;
        f.type = type;
        f.samples.push_back(Sample{{}, v, {}});
        out.push_back(std::move(f));
    };
    auto counter = [&](const char *name, const char *help,
                       const std::atomic<u64> &c) {
        scalar(name, help, MetricType::Counter,
               double(c.load(std::memory_order_relaxed)));
    };

    counter("widx_net_connections_accepted_total",
            "TCP connections accepted.", nAccepted_);
    counter("widx_net_connections_closed_total",
            "TCP connections closed (EOF, error, slow-consumer "
            "drop, or shutdown).",
            nClosed_);
    counter("widx_net_requests_total",
            "Request frames parsed and submitted to the service.",
            nRequests_);
    counter("widx_net_responses_total",
            "Response frames serialized toward a client.",
            nResponses_);
    counter("widx_net_dropped_responses_total",
            "Completions whose connection closed first.", nDropped_);
    counter("widx_net_protocol_errors_total",
            "Malformed frames (the connection is dropped).",
            nProtoErr_);
    counter("widx_net_stats_scrapes_total",
            "Stats frames answered in-line from the registry.",
            nStatsScrapes_);
    scalar("widx_net_outstanding_requests",
           "Frames submitted to the service and not yet reaped.",
           MetricType::Gauge,
           double(outstanding_.load(std::memory_order_relaxed)));
    std::size_t open;
    {
        MutexLock lk(connM_);
        open = conns_.size();
    }
    scalar("widx_net_open_connections",
           "Currently open client connections.", MetricType::Gauge,
           double(open));
}

} // namespace widx::net
