/**
 * @file
 * Wire protocol for the TCP index front-end.
 *
 * Length-prefixed little-endian binary frames, one request or
 * response per frame (see src/net/README.md for a worked byte-level
 * example). Every frame is
 *
 *     u32 length | payload[length]
 *
 * where `length` counts the payload bytes after the length field.
 * A request payload is a 24-byte header followed by an optional
 * trace-id trailer, the key array, and (mutation kinds only) the
 * payload array:
 *
 *     u64 reqId     client-chosen correlation id, echoed back
 *     u8  kind      wire kind: 0 Count, 1 Probe, 2 Join (the
 *                   RequestKind bytes, unchanged since v1), the
 *                   wire-only kWireKindStats (3: scrape the server's
 *                   metrics registry, nKeys must be 0) and
 *                   kWireKindHello (4: version handshake, see
 *                   below), or the v2 mutation kinds 5 Insert,
 *                   6 Delete, 7 Upsert. Mutations deliberately do
 *                   NOT reuse the RequestKind bytes: Insert's
 *                   in-process value (3) is Stats on the wire, so
 *                   the mapping is explicit (wireKindOf /
 *                   serviceKindOfWire), never a cast.
 *     u8  flags     bit 0 (kReqFlagTraceId): a u64 trace id follows
 *                   the header, before the keys; bit 1
 *                   (kReqFlagPayloads): a u64 payload array follows
 *                   the keys — required on Insert/Upsert, forbidden
 *                   elsewhere; other bits must be 0 (they are
 *                   framing errors, so old peers reject rather than
 *                   misparse frames from newer ones)
 *     u16 reserved  must be 0
 *     u32 nKeys     number of u64 keys that follow
 *     u64 deadlineNs  *relative* service deadline (0 = none): the
 *                     server anchors it to its own clock at parse
 *                     time, so client and server clocks never meet
 *     u64 traceId   only when flags bit 0 is set (opt-in request
 *                   tracing; see obs/trace.hh)
 *     u64 keys[nKeys]
 *     u64 payloads[nKeys]  only when flags bit 1 is set
 *
 * Versioning: the baseline protocol (v1) is the read-only surface —
 * Count/Probe/Join/Stats. v2 adds the Hello handshake and the
 * mutation kinds. A v2 client opens with one Hello frame (kind 4,
 * nKeys = 1, the single "key" carrying kWireProtocolVersion); the
 * server answers with a Hello response (matches = its own version)
 * and unlocks the mutation kinds on that connection. A connection
 * that never said Hello is served as v1: reads work byte-identically
 * to the pre-versioned protocol, and a mutation frame completes with
 * a clean Status::UnsupportedVersion response instead of being
 * served. A Hello announcing a version the server does not speak is
 * answered with Status::UnsupportedVersion and the connection is
 * closed after the response flushes. Old servers treat kind 4 as a
 * framing error and drop the connection — a new client talking to an
 * old server fails fast rather than silently losing writes.
 *
 * A response payload is a 24-byte header followed by the records:
 *
 *     u64 reqId     echoed from the request
 *     u8  status    Status (0 Ok, 1 Rejected, 2 DeadlineExceeded,
 *                   3 Cancelled, 4 UnsupportedVersion)
 *     u8  kind      echoed from the request (wire kind byte)
 *     u16 reserved  0
 *     u32 nRecs     number of 24-byte records that follow
 *                   (0 for Count — matches carries the tally)
 *     u64 matches   ServiceResult::matches
 *     {u64 pos, u64 key, u64 payload}[nRecs]
 *
 * A Stats response (kind = kWireKindStats) reuses the response
 * header with nRecs = 0 and carries the Prometheus exposition text
 * as its raw payload; `matches` holds the text byte length (see
 * appendStatsResponse / parseStatsResponse).
 *
 * The header structs below are naturally packed to these layouts on
 * every platform we target (static_asserts enforce it), and the
 * protocol's byte order is the native order of a little-endian host
 * — the build refuses big-endian targets rather than silently
 * byte-swapping.
 *
 * Framing errors (oversized frame, unknown kind, nonzero reserved
 * bytes, length/nKeys mismatch) are not recoverable mid-stream:
 * both ends drop the connection on the first malformed frame. The
 * writer never produces one: a result too fan-heavy to frame under
 * kMaxFrameBytes is downgraded to a record-less Rejected response
 * (kMaxRecsPerResponse) rather than sent oversized.
 */

#ifndef WIDX_NET_PROTOCOL_HH
#define WIDX_NET_PROTOCOL_HH

#include <bit>
#include <cstring>
#include <string>
#include <string_view>
#include <vector>

#include "service/index_service.hh"

namespace widx::net {

static_assert(std::endian::native == std::endian::little,
              "the wire protocol is little-endian and this build "
              "does not byte-swap");

/** Per-request key cap: bounds a request frame (and the walker
 *  memory one connection can pin) at ~512 KiB of keys. */
inline constexpr u32 kMaxKeysPerRequest = 1u << 16;
/** Request frames are bounded by kMaxKeysPerRequest; responses by
 *  the match count, which can exceed the key count (duplicates in
 *  the build side). A reader rejects anything over this as a
 *  framing error rather than allocating unbounded memory. */
inline constexpr u32 kMaxFrameBytes = 64u << 20;

/** Request flag: a u64 trace id sits between the header and the
 *  keys (opt-in span tracing, SubmitOptions::traceId). */
inline constexpr u8 kReqFlagTraceId = 0x1;
/** Request flag: a u64 payload array (one per key) follows the
 *  keys. Required on the Insert/Upsert wire kinds, a framing error
 *  on every other kind (Delete carries keys only). */
inline constexpr u8 kReqFlagPayloads = 0x2;

/** Wire-only request kind: serialize the server's metrics registry
 *  into the response. Never enters sw::RequestKind — it is handled
 *  entirely in the front-end, before service submission. A Stats
 *  request carries no keys, no deadline, no trace id. */
inline constexpr u8 kWireKindStats = 3;

/** The protocol version this build speaks. v1 is the implicit
 *  read-only baseline (no Hello); v2 adds Hello + mutations. */
inline constexpr u64 kWireProtocolVersion = 2;

/** Wire-only request kind: version handshake. nKeys = 1 and the
 *  single "key" carries the client's protocol version; the response
 *  echoes the server's version in `matches`. Handled entirely in
 *  the front-end, like Stats. */
inline constexpr u8 kWireKindHello = 4;

/** v2 mutation wire kinds. These do not equal the u8 of their
 *  sw::RequestKind (Insert's in-process byte, 3, is Stats on the
 *  wire) — always translate through wireKindOf/serviceKindOfWire. */
inline constexpr u8 kWireKindInsert = 5;
inline constexpr u8 kWireKindDelete = 6;
inline constexpr u8 kWireKindUpsert = 7;

constexpr bool
wireKindIsMutation(u8 w)
{
    return w >= kWireKindInsert && w <= kWireKindUpsert;
}

/** Service kind -> wire kind byte. Count/Probe/Join keep their v1
 *  bytes; mutation kinds shift past Stats/Hello. */
constexpr u8
wireKindOf(sw::RequestKind k)
{
    switch (k) {
      case sw::RequestKind::Insert:
        return kWireKindInsert;
      case sw::RequestKind::Delete:
        return kWireKindDelete;
      case sw::RequestKind::Upsert:
        return kWireKindUpsert;
      default:
        return u8(k);
    }
}

/** Wire kind byte -> service kind; false for the wire-only kinds
 *  (Stats, Hello) and anything unknown. */
constexpr bool
serviceKindOfWire(u8 w, sw::RequestKind &k)
{
    switch (w) {
      case u8(sw::RequestKind::Count):
      case u8(sw::RequestKind::Probe):
      case u8(sw::RequestKind::Join):
        k = sw::RequestKind(w);
        return true;
      case kWireKindInsert:
        k = sw::RequestKind::Insert;
        return true;
      case kWireKindDelete:
        k = sw::RequestKind::Delete;
        return true;
      case kWireKindUpsert:
        k = sw::RequestKind::Upsert;
        return true;
      default:
        return false;
    }
}

struct ReqHeader
{
    u64 reqId = 0;
    u8 kind = 0;
    u8 flags = 0; ///< kReqFlag* bits; unknown bits are errors
    u16 rsv1 = 0;
    u32 nKeys = 0;
    u64 deadlineNs = 0; ///< relative (0 = none)
};
static_assert(sizeof(ReqHeader) == 24 &&
              std::is_trivially_copyable_v<ReqHeader>);

struct RespHeader
{
    u64 reqId = 0;
    u8 status = 0;
    u8 kind = 0;
    u16 rsv = 0;
    u32 nRecs = 0;
    u64 matches = 0;
};
static_assert(sizeof(RespHeader) == 24 &&
              std::is_trivially_copyable_v<RespHeader>);

/** One materialized match on the wire. `pos` is the key's position
 *  in the request's key array (MatchRec::i). */
struct WireRec
{
    u64 pos = 0;
    u64 key = 0;
    u64 payload = 0;
};
static_assert(sizeof(WireRec) == 24 &&
              std::is_trivially_copyable_v<WireRec>);

/** Writer-side mirror of kMaxFrameBytes: the most records one
 *  response frame can carry (~2.8M). A higher-fanout result cannot
 *  be framed — the peer would drop it as a framing error, and far
 *  beyond it (~178M records) the u32 length prefix itself would
 *  wrap — so appendResponse downgrades it to a record-less
 *  Status::Rejected response (see its doc). */
inline constexpr u32 kMaxRecsPerResponse =
    u32((kMaxFrameBytes - sizeof(RespHeader)) / sizeof(WireRec));

inline void
appendBytes(std::vector<u8> &out, const void *p, std::size_t n)
{
    const auto *b = static_cast<const u8 *>(p);
    out.insert(out.end(), b, b + n);
}

/** Serialize one request frame (length prefix included). A nonzero
 *  `traceId` sets kReqFlagTraceId and rides the trailer. Insert and
 *  Upsert require one payload per key (the payloads trailer is what
 *  makes the frame well-formed); other kinds ignore `payloads`. */
inline void
appendRequest(std::vector<u8> &out, u64 reqId, sw::RequestKind kind,
              u64 deadlineNs, std::span<const u64> keys,
              u64 traceId = 0, std::span<const u64> payloads = {})
{
    const bool withPayloads = kind == sw::RequestKind::Insert ||
                              kind == sw::RequestKind::Upsert;
    panic_if(withPayloads && payloads.size() != keys.size(),
             "insert/upsert frames need one payload per key");
    ReqHeader h;
    h.reqId = reqId;
    h.kind = wireKindOf(kind);
    if (traceId)
        h.flags |= kReqFlagTraceId;
    if (withPayloads)
        h.flags |= kReqFlagPayloads;
    h.nKeys = u32(keys.size());
    h.deadlineNs = deadlineNs;
    const u32 len =
        u32(sizeof(h) + (traceId ? 8 : 0) + keys.size_bytes() +
            (withPayloads ? payloads.size_bytes() : 0));
    appendBytes(out, &len, sizeof(len));
    appendBytes(out, &h, sizeof(h));
    if (traceId)
        appendBytes(out, &traceId, sizeof(traceId));
    appendBytes(out, keys.data(), keys.size_bytes());
    if (withPayloads)
        appendBytes(out, payloads.data(), payloads.size_bytes());
}

/** Serialize one Hello frame: the version rides as the single key. */
inline void
appendHello(std::vector<u8> &out, u64 reqId,
            u64 version = kWireProtocolVersion)
{
    ReqHeader h;
    h.reqId = reqId;
    h.kind = kWireKindHello;
    h.nKeys = 1;
    const u32 len = u32(sizeof(h) + 8);
    appendBytes(out, &len, sizeof(len));
    appendBytes(out, &h, sizeof(h));
    appendBytes(out, &version, sizeof(version));
}

/** Serialize a Hello response: `matches` carries the responder's
 *  protocol version; status is Ok or UnsupportedVersion. */
inline void
appendHelloResponse(std::vector<u8> &out, u64 reqId, sw::Status st)
{
    RespHeader h;
    h.reqId = reqId;
    h.status = u8(st);
    h.kind = kWireKindHello;
    h.matches = kWireProtocolVersion;
    const u32 len = u32(sizeof(h));
    appendBytes(out, &len, sizeof(len));
    appendBytes(out, &h, sizeof(h));
}

/** Validate and decode a Hello response payload. Route on the
 *  header's kind byte (payload offset 9 == kWireKindHello), like
 *  Stats. Returns false on a framing violation. */
inline bool
parseHelloResponse(const u8 *p, std::size_t len, u64 &reqId,
                   sw::Status &st, u64 &serverVersion)
{
    if (len != sizeof(RespHeader))
        return false;
    RespHeader h;
    std::memcpy(&h, p, sizeof(h));
    if (h.kind != kWireKindHello || h.rsv || h.nRecs ||
        h.status > u8(sw::Status::UnsupportedVersion))
        return false;
    reqId = h.reqId;
    st = sw::Status(h.status);
    serverVersion = h.matches;
    return true;
}

/** Serialize one Stats request frame: header only, kind 3. */
inline void
appendStatsRequest(std::vector<u8> &out, u64 reqId)
{
    ReqHeader h;
    h.reqId = reqId;
    h.kind = kWireKindStats;
    const u32 len = u32(sizeof(h));
    appendBytes(out, &len, sizeof(len));
    appendBytes(out, &h, sizeof(h));
}

/** Serialize one response frame (length prefix included). A result
 *  with more than kMaxRecsPerResponse records cannot be framed
 *  within the reader's kMaxFrameBytes bound (the peer would drop
 *  the connection as a protocol error); it is sent as a record-less
 *  Status::Rejected response instead — `matches` still carries the
 *  tally, but per the non-Ok contract the peer must not treat the
 *  result as served. Keeps writer and reader bounds consistent: no
 *  well-formed ServiceResult can poison the stream. */
inline void
appendResponse(std::vector<u8> &out, u64 reqId, sw::RequestKind kind,
               const sw::ServiceResult &r)
{
    RespHeader h;
    h.reqId = reqId;
    h.status = u8(r.status);
    h.kind = wireKindOf(kind);
    h.matches = r.matches;
    std::size_t nRecs = r.recs.size();
    if (nRecs > kMaxRecsPerResponse) {
        h.status = u8(sw::Status::Rejected);
        nRecs = 0;
    }
    h.nRecs = u32(nRecs);
    const u32 len = u32(sizeof(h) + nRecs * sizeof(WireRec));
    appendBytes(out, &len, sizeof(len));
    appendBytes(out, &h, sizeof(h));
    for (std::size_t i = 0; i < nRecs; ++i) {
        const sw::MatchRec &rec = r.recs[i];
        const WireRec w{u64(rec.i), rec.key, rec.payload};
        appendBytes(out, &w, sizeof(w));
    }
}

/** Validate and decode a request payload (the bytes after the
 *  length prefix). Keys land in `keys` (overwritten); a mutation
 *  frame's payload trailer lands in `*payloads` (required non-null
 *  to accept one — a caller that cannot carry payloads rejects
 *  mutation frames as framing errors). A Hello frame parses with
 *  the client's version as keys[0]. Returns false on any framing
 *  violation — the caller must drop the connection. */
inline bool
parseRequest(const u8 *p, std::size_t len, ReqHeader &h,
             std::vector<u64> &keys, u64 *traceId = nullptr,
             std::vector<u64> *payloads = nullptr)
{
    if (traceId)
        *traceId = 0;
    if (payloads)
        payloads->clear();
    if (len < sizeof(ReqHeader))
        return false;
    std::memcpy(&h, p, sizeof(h));
    const bool stats = h.kind == kWireKindStats;
    const bool hello = h.kind == kWireKindHello;
    const bool mut = wireKindIsMutation(h.kind);
    if ((h.kind > u8(sw::RequestKind::Join) && !stats && !hello &&
         !mut) ||
        (h.flags & ~(kReqFlagTraceId | kReqFlagPayloads)) || h.rsv1)
        return false;
    if (stats && (h.nKeys || h.flags || h.deadlineNs))
        return false; // a Stats request is a bare header
    if (hello && (h.nKeys != 1 || h.flags || h.deadlineNs))
        return false; // a Hello is a header plus the version word
    // Insert/Upsert promise a payload trailer; nothing else may
    // carry one (Delete is keys-only).
    const bool wantPayloads = h.kind == kWireKindInsert ||
                              h.kind == kWireKindUpsert;
    if (bool(h.flags & kReqFlagPayloads) != wantPayloads)
        return false;
    if (wantPayloads && !payloads)
        return false;
    if (h.nKeys > kMaxKeysPerRequest)
        return false;
    std::size_t off = sizeof(ReqHeader);
    if (h.flags & kReqFlagTraceId) {
        if (len < off + 8)
            return false;
        u64 t;
        std::memcpy(&t, p + off, 8);
        if (t == 0)
            return false; // the flag promises a real id
        if (traceId)
            *traceId = t;
        off += 8;
    }
    const std::size_t keyBytes = std::size_t(h.nKeys) * 8;
    if (len != off + keyBytes * (wantPayloads ? 2 : 1))
        return false;
    keys.resize(h.nKeys);
    std::memcpy(keys.data(), p + off, keyBytes);
    if (wantPayloads) {
        payloads->resize(h.nKeys);
        std::memcpy(payloads->data(), p + off + keyBytes, keyBytes);
    }
    return true;
}

/** Validate and decode a response payload into a ServiceResult.
 *  `completedAtNs` is left 0 — the client stamps receipt time. */
inline bool
parseResponse(const u8 *p, std::size_t len, RespHeader &h,
              sw::ServiceResult &r)
{
    if (len < sizeof(RespHeader))
        return false;
    std::memcpy(&h, p, sizeof(h));
    if (h.status > u8(sw::Status::UnsupportedVersion) ||
        (h.kind > u8(sw::RequestKind::Join) &&
         !wireKindIsMutation(h.kind)) ||
        h.rsv)
        return false;
    if (len != sizeof(RespHeader) +
                   std::size_t(h.nRecs) * sizeof(WireRec))
        return false;
    r.status = sw::Status(h.status);
    r.matches = h.matches;
    r.recs.resize(h.nRecs);
    for (u32 i = 0; i < h.nRecs; ++i) {
        WireRec w;
        std::memcpy(&w, p + sizeof(RespHeader) + i * sizeof(WireRec),
                    sizeof(w));
        r.recs[i] = {std::size_t(w.pos), w.key, w.payload};
    }
    return true;
}

/** Serialize a Stats response: the exposition text as the raw
 *  payload after the header (matches = text byte length). Text too
 *  large to frame is downgraded to an empty Rejected response, the
 *  same never-poison-the-stream rule as appendResponse. */
inline void
appendStatsResponse(std::vector<u8> &out, u64 reqId,
                    std::string_view text)
{
    RespHeader h;
    h.reqId = reqId;
    h.kind = kWireKindStats;
    if (text.size() > kMaxFrameBytes - sizeof(RespHeader)) {
        h.status = u8(sw::Status::Rejected);
        text = {};
    }
    h.matches = text.size();
    const u32 len = u32(sizeof(h) + text.size());
    appendBytes(out, &len, sizeof(len));
    appendBytes(out, &h, sizeof(h));
    appendBytes(out, text.data(), text.size());
}

/** Validate and decode a Stats response payload. Returns false on a
 *  framing violation (drop the connection); a well-formed non-Ok
 *  response returns true with `text` empty. Route on the header's
 *  kind byte (payload offset 9 == kWireKindStats) before calling
 *  parseResponse, which rejects the Stats kind. */
inline bool
parseStatsResponse(const u8 *p, std::size_t len, u64 &reqId,
                   std::string &text)
{
    if (len < sizeof(RespHeader))
        return false;
    RespHeader h;
    std::memcpy(&h, p, sizeof(h));
    if (h.kind != kWireKindStats || h.rsv || h.nRecs)
        return false;
    if (h.matches != u64(len - sizeof(RespHeader)))
        return false;
    reqId = h.reqId;
    text.clear();
    if (h.status == u8(sw::Status::Ok))
        text.assign(reinterpret_cast<const char *>(p) +
                        sizeof(RespHeader),
                    len - sizeof(RespHeader));
    return true;
}

/**
 * Incremental frame splitter over a connection's receive buffer:
 * feed bytes as they arrive, pop complete payloads. The popped view
 * points into the internal buffer and is invalidated by the next
 * feed() — decode before feeding again.
 */
class FrameReader
{
  public:
    void
    feed(const u8 *p, std::size_t n)
    {
        // Reclaim the consumed prefix before growing: no popped
        // view is live across a feed (documented above), and the
        // one memmove per read keeps the buffer bounded by the
        // largest in-progress frame plus one read's worth of bytes.
        if (off_ > 0) {
            buf_.erase(buf_.begin(),
                       buf_.begin() + std::ptrdiff_t(off_));
            off_ = 0;
        }
        buf_.insert(buf_.end(), p, p + n);
    }

    /** Pop the next complete payload, or return false. Sets `bad`
     *  (and returns false) on an oversized length prefix. */
    bool
    next(std::span<const u8> &payload, bool &bad)
    {
        if (off_ > 0 && off_ == buf_.size()) {
            buf_.clear();
            off_ = 0;
        }
        const std::size_t avail = buf_.size() - off_;
        if (avail < 4)
            return false;
        u32 len;
        std::memcpy(&len, buf_.data() + off_, 4);
        if (len < sizeof(ReqHeader) || len > kMaxFrameBytes) {
            bad = true;
            return false;
        }
        if (avail < 4 + std::size_t(len))
            return false;
        payload = {buf_.data() + off_ + 4, len};
        off_ += 4 + std::size_t(len);
        return true;
    }

  private:
    std::vector<u8> buf_;
    std::size_t off_ = 0; ///< consumed prefix, reclaimed when drained
};

} // namespace widx::net

#endif // WIDX_NET_PROTOCOL_HH
