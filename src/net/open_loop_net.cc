#include "net/open_loop_net.hh"

#include "service/open_loop_driver.hh"

namespace widx::net {

sw::OpenLoopReport
runOpenLoopNet(TcpIndexClient &client, std::span<const u64> keyPool,
               const sw::OpenLoopOptions &opt)
{
    return sw::detail::runOpenLoopOver(
        client.queue(),
        [&](u64 tag, std::span<const u64> keys, u64 deadlineAbs) {
            // The driver hands out absolute deadlines; the wire
            // carries remaining time (the server re-anchors to its
            // own clock). A deadline already behind us still goes
            // out — as 1 ns, which the server expires on arrival,
            // keeping dead-on-arrival accounting server-side like
            // the local path's.
            u64 rel = 0;
            if (deadlineAbs) {
                const u64 now = monotonicNowNs();
                rel = deadlineAbs > now ? deadlineAbs - now : 1;
            }
            client.submitAsync(opt.kind, keys, rel, tag);
        },
        keyPool, opt);
}

} // namespace widx::net
