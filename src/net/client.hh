/**
 * @file
 * Async TCP client for the index front-end.
 *
 * The socket-side mirror of `IndexService::submitAsync`: submissions
 * serialize a request frame onto the connection (tag = wire request
 * id) and return immediately; a reader thread parses response
 * frames, stamps `completedAtNs` at receipt, and pushes them onto
 * an internal CompletionQueue the caller reaps exactly like a local
 * one — so the open-loop driver runs unchanged over a real socket.
 *
 * Tags must be unique among this connection's in-flight requests
 * (the open-loop driver's arrival indexes are; so is any counter).
 *
 * When the connection breaks, the reader closes the queue and
 * `ok()` turns false; a submission after that (or one the kernel
 * refuses) pushes a synthetic `Status::Cancelled` completion so
 * per-tag accounting never hangs — every submitted tag yields
 * exactly one completion, delivered or synthesized.
 *
 * The blocking `call()` convenience reaps until its own tag
 * appears; it must not be interleaved with outstanding async
 * submissions (it would consume their completions). Misuse fails
 * fast: any foreign tag call() reaps — with or without its own tag
 * in the same batch — is fatal rather than silently dropped.
 */

#ifndef WIDX_NET_CLIENT_HH
#define WIDX_NET_CLIENT_HH

#include <memory>
#include <string>
#include <thread>
#include <unordered_map>

#include "common/thread_safety.hh"
#include "net/protocol.hh"

namespace widx::net {

class TcpIndexClient
{
  public:
    /** Connects (blocking) to host:port; fatal()s on failure. By
     *  default the connection opens with a v2 Hello handshake,
     *  unlocking the mutation kinds; `sayHello = false` speaks the
     *  v1 read-only baseline (useful against old servers, and for
     *  exercising the server's v1-compat path). */
    TcpIndexClient(const std::string &host, u16 port,
                   bool sayHello = true);
    ~TcpIndexClient();

    TcpIndexClient(const TcpIndexClient &) = delete;
    TcpIndexClient &operator=(const TcpIndexClient &) = delete;

    /** Issue one request; its completion lands on queue() carrying
     *  `tag`. `deadlineNs` is relative (0 = none) — the server
     *  re-anchors it to its own clock. A nonzero `traceId` rides
     *  the frame's trailer and tags the request's span events in
     *  the server's trace ring. Insert/Upsert require one payload
     *  per key; other kinds ignore `payloads`. */
    void submitAsync(sw::RequestKind kind, std::span<const u64> keys,
                     u64 deadlineNs, u64 tag, u64 traceId = 0,
                     std::span<const u64> payloads = {});

    /** Blocking one-shot convenience (see file comment). */
    sw::ServiceResult call(sw::RequestKind kind,
                           std::span<const u64> keys,
                           u64 deadlineNs = 0,
                           std::span<const u64> payloads = {});

    /** Scrape the server's metrics registry: one Stats frame, one
     *  Prometheus text-exposition payload back. Blocking; returns
     *  the empty string on a broken connection or a refused scrape.
     *  Stats responses are routed by wire kind, never through
     *  queue(), so this is safe to interleave with outstanding
     *  async submissions (unlike call()). */
    std::string stats();

    std::shared_ptr<sw::CompletionQueue> queue() { return cq_; }

    /** False once the connection is known broken. */
    bool ok() const { return ok_.load(std::memory_order_acquire); }

    /** The server's protocol version from its Hello response; 0
     *  until that response arrives (or forever, when constructed
     *  with `sayHello = false`). */
    u64 serverVersion() const
    {
        return serverVersion_.load(std::memory_order_acquire);
    }

    void close();

  private:
    void readerMain();

    int fd_ = -1;
    std::atomic<bool> ok_{true};
    std::atomic<u64> serverVersion_{0};
    std::shared_ptr<sw::CompletionQueue> cq_ =
        std::make_shared<sw::CompletionQueue>();
    Mutex writeM_; ///< serializes frames onto the socket
    std::vector<u8> wbuf_ WIDX_GUARDED_BY(writeM_);
    std::thread reader_;
    u64 nextCallTag_ = u64(1) << 63; ///< call()'s private tag space

    /// Stats scrapes rendezvous here (reader -> stats()), keyed by
    /// the scrape's wire request id; never touches cq_.
    Mutex statsM_;
    CondVar statsCv_;
    std::unordered_map<u64, std::string> statsResults_
        WIDX_GUARDED_BY(statsM_);
    u64 nextStatsTag_ WIDX_GUARDED_BY(statsM_) = 1;
};

} // namespace widx::net

#endif // WIDX_NET_CLIENT_HH
