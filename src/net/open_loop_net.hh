/**
 * @file
 * Open-loop load generation over the TCP front-end.
 *
 * The exact experiment `sw::runOpenLoop` runs against a local
 * IndexService — same arrival processes, same scheduled-arrival
 * measurement, same in-flight cap and shed accounting (they share
 * the driver in src/service/open_loop_driver.hh) — but submitted
 * through a TcpIndexClient, so the measured latency includes frame
 * serialization, both wire directions, the server's event loop, and
 * the response reaper. Deadlines travel as remaining-time at
 * submission (the wire's relative form); a broken connection
 * surfaces as Cancelled completions and a closed queue, which the
 * driver counts rather than hanging on.
 */

#ifndef WIDX_NET_OPEN_LOOP_NET_HH
#define WIDX_NET_OPEN_LOOP_NET_HH

#include "net/client.hh"
#include "service/open_loop.hh"

namespace widx::net {

/** Drive `client` open-loop per `opt`, drawing request key spans
 *  round-robin from `keyPool` (must outlive the run). */
sw::OpenLoopReport runOpenLoopNet(TcpIndexClient &client,
                                  std::span<const u64> keyPool,
                                  const sw::OpenLoopOptions &opt);

} // namespace widx::net

#endif // WIDX_NET_OPEN_LOOP_NET_HH
