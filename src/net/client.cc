#include "net/client.hh"

#include <cerrno>
#include <cstring>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include "common/logging.hh"

namespace widx::net {

TcpIndexClient::TcpIndexClient(const std::string &host, u16 port,
                               bool sayHello)
{
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    fatal_if(fd_ < 0, "socket(): %s", errnoText(errno).c_str());
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    fatal_if(::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1,
             "inet_pton(%s) failed", host.c_str());
    fatal_if(::connect(fd_,
                       reinterpret_cast<const sockaddr *>(&addr),
                       sizeof(addr)) != 0,
             "connect(%s:%u): %s", host.c_str(), unsigned(port),
             errnoText(errno).c_str());
    const int one = 1;
    ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    if (sayHello) {
        // Fire-and-continue: frames are processed in order on the
        // server, so anything submitted after this is evaluated on
        // a v2 connection; the response lands in readerMain and
        // stamps serverVersion_.
        MutexLock lk(writeM_);
        wbuf_.clear();
        appendHello(wbuf_, /*reqId=*/0);
        std::size_t off = 0;
        while (off < wbuf_.size()) {
            const ssize_t n = ::send(fd_, wbuf_.data() + off,
                                     wbuf_.size() - off,
                                     MSG_NOSIGNAL);
            if (n > 0) {
                off += std::size_t(n);
                continue;
            }
            if (n < 0 && errno == EINTR)
                continue;
            ok_.store(false, std::memory_order_release);
            break;
        }
    }
    reader_ = std::thread([this] { readerMain(); });
}

TcpIndexClient::~TcpIndexClient()
{
    close();
}

void
TcpIndexClient::close()
{
    if (fd_ >= 0)
        // Shut down rather than close: the reader thread still owns
        // the fd (close would let the number be reused under it);
        // shutdown wakes its blocking read with EOF.
        ::shutdown(fd_, SHUT_RDWR);
    ok_.store(false, std::memory_order_release);
    if (reader_.joinable())
        reader_.join();
    if (fd_ >= 0) {
        ::close(fd_);
        fd_ = -1;
    }
    cq_->close();
}

void
TcpIndexClient::submitAsync(sw::RequestKind kind,
                            std::span<const u64> keys, u64 deadlineNs,
                            u64 tag, u64 traceId,
                            std::span<const u64> payloads)
{
    fatal_if(keys.size() > kMaxKeysPerRequest,
             "request exceeds the wire key cap (%zu > %u)",
             keys.size(), kMaxKeysPerRequest);
    bool sent = false;
    if (ok_.load(std::memory_order_acquire)) {
        MutexLock lk(writeM_);
        wbuf_.clear();
        appendRequest(wbuf_, tag, kind, deadlineNs, keys, traceId,
                      payloads);
        std::size_t off = 0;
        sent = true;
        while (off < wbuf_.size()) {
            const ssize_t n = ::send(fd_, wbuf_.data() + off,
                                     wbuf_.size() - off,
                                     MSG_NOSIGNAL);
            if (n > 0) {
                off += std::size_t(n);
                continue;
            }
            if (n < 0 && errno == EINTR)
                continue;
            ok_.store(false, std::memory_order_release);
            sent = false;
            break;
        }
    }
    if (!sent) {
        // Broken pipe: synthesize the refusal locally so the tag
        // still completes exactly once.
        sw::ServiceResult r;
        r.status = sw::Status::Cancelled;
        r.completedAtNs = monotonicNowNs();
        cq_->push(tag, std::move(r));
    }
}

sw::ServiceResult
TcpIndexClient::call(sw::RequestKind kind, std::span<const u64> keys,
                     u64 deadlineNs, std::span<const u64> payloads)
{
    const u64 tag = nextCallTag_++;
    submitAsync(kind, keys, deadlineNs, tag, 0, payloads);
    std::vector<sw::Completion> batch;
    for (;;) {
        batch.clear();
        cq_->reap(batch, 16, std::chrono::milliseconds(100));
        // call() owns the queue for its whole duration: a foreign
        // tag in the batch is an async submission racing the
        // blocking convenience, and returning here would silently
        // discard its completion — misuse, fail loudly whether or
        // not this call's own tag landed in the same batch.
        for (const sw::Completion &c : batch)
            fatal_if(c.tag != tag,
                     "call() interleaved with async completions");
        // Every tag completes exactly once, so the batch is empty
        // or holds exactly this call's completion.
        if (!batch.empty())
            return std::move(batch.front().result);
        if (cq_->closed() && cq_->size() == 0) {
            sw::ServiceResult r;
            r.status = sw::Status::Cancelled;
            r.completedAtNs = monotonicNowNs();
            return r;
        }
    }
}

std::string
TcpIndexClient::stats()
{
    u64 tag;
    {
        MutexLock lk(statsM_);
        tag = nextStatsTag_++;
    }
    bool sent = false;
    if (ok_.load(std::memory_order_acquire)) {
        MutexLock lk(writeM_);
        wbuf_.clear();
        appendStatsRequest(wbuf_, tag);
        std::size_t off = 0;
        sent = true;
        while (off < wbuf_.size()) {
            const ssize_t n = ::send(fd_, wbuf_.data() + off,
                                     wbuf_.size() - off,
                                     MSG_NOSIGNAL);
            if (n > 0) {
                off += std::size_t(n);
                continue;
            }
            if (n < 0 && errno == EINTR)
                continue;
            ok_.store(false, std::memory_order_release);
            sent = false;
            break;
        }
    }
    if (!sent)
        return {};
    MutexLock lk(statsM_);
    while (statsResults_.count(tag) == 0 &&
           ok_.load(std::memory_order_acquire))
        statsCv_.wait(statsM_);
    auto it = statsResults_.find(tag);
    if (it == statsResults_.end())
        return {}; // connection died before the response landed
    std::string text = std::move(it->second);
    statsResults_.erase(it);
    return text;
}

void
TcpIndexClient::readerMain()
{
    FrameReader rd;
    u8 buf[64 * 1024];
    for (;;) {
        const ssize_t n = ::recv(fd_, buf, sizeof(buf), 0);
        if (n <= 0) {
            if (n < 0 && errno == EINTR)
                continue;
            break;
        }
        rd.feed(buf, std::size_t(n));
        std::span<const u8> payload;
        bool bad = false;
        while (rd.next(payload, bad)) {
            // Hello responses route by kind byte, like Stats: they
            // carry the negotiated version, not a completion.
            if (payload.size() >= sizeof(RespHeader) &&
                payload[9] == kWireKindHello) {
                u64 reqId, ver;
                sw::Status st;
                if (!parseHelloResponse(payload.data(),
                                        payload.size(), reqId, st,
                                        ver)) {
                    bad = true;
                    break;
                }
                serverVersion_.store(ver,
                                     std::memory_order_release);
                if (st != sw::Status::Ok) {
                    // The server answers honestly and then closes;
                    // the imminent EOF tears the connection down
                    // through the normal path below.
                    warn("tcp client: server rejected protocol "
                         "version %llu (speaks %llu)",
                         (unsigned long long)kWireProtocolVersion,
                         (unsigned long long)ver);
                }
                continue;
            }
            // Stats responses route by the header's kind byte (wire
            // offset 9) into the scrape rendezvous — they never
            // carry completions, so they must not reach cq_.
            if (payload.size() >= sizeof(RespHeader) &&
                payload[9] == kWireKindStats) {
                u64 reqId;
                std::string text;
                if (!parseStatsResponse(payload.data(),
                                        payload.size(), reqId,
                                        text)) {
                    bad = true;
                    break;
                }
                {
                    MutexLock lk(statsM_);
                    statsResults_[reqId] = std::move(text);
                }
                statsCv_.notifyAll();
                continue;
            }
            RespHeader h;
            sw::ServiceResult r;
            if (!parseResponse(payload.data(), payload.size(), h,
                               r)) {
                bad = true;
                break;
            }
            // Receipt stamp: open-loop latency over the socket is
            // scheduled-arrival -> response-in-client, including
            // both wire directions.
            r.completedAtNs = monotonicNowNs();
            cq_->push(h.reqId, std::move(r));
        }
        if (bad) {
            warn("tcp client: malformed response frame; dropping "
                 "connection");
            break;
        }
    }
    ok_.store(false, std::memory_order_release);
    cq_->close();
    statsCv_.notifyAll(); // wake scrapes waiting on a dead socket
}

} // namespace widx::net
