/**
 * @file
 * Epoll TCP front-end for the index service.
 *
 * The paper's dispatcher/walker decoupling, one level up: an event
 * loop accepts connections and parses request frames (the
 * dispatcher side — per-connection frame bursts submit
 * back-to-back, so a pipelining client's requests coalesce into the
 * service's open admission windows exactly like co-arriving local
 * submitters), and the service's walker pool drains them. A second
 * thread reaps the service's CompletionQueue in batches, serializes
 * response frames, and hands them to the event loop to write — so
 * walkers never block on a slow socket and sockets never wait on a
 * full walker.
 *
 * Threading: exactly two server threads regardless of connection
 * count. The event loop owns every socket's reads *and* writes
 * (single-threaded fd I/O — no interleaved frames); the reaper only
 * appends to per-connection output buffers under the connection
 * table lock and pokes an eventfd. Responses for a connection that
 * closed while its requests were in flight are counted
 * (`droppedResponses`) and dropped — a disconnected client's
 * requests still drain through the service (they hold admission
 * budget until they do), they just have nowhere to go.
 *
 * Lifetime: the service must outlive the server. stop() (or the
 * destructor) closes the listener and every connection, then waits
 * for every in-flight request the server submitted to complete —
 * the service guarantees completion, so this terminates.
 */

#ifndef WIDX_NET_SERVER_HH
#define WIDX_NET_SERVER_HH

#include <memory>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/thread_safety.hh"
#include "net/protocol.hh"

namespace widx::obs {
class MetricsRegistry;
class TraceRing;
struct Family;
using Snapshot = std::vector<Family>; // mirrors obs/metrics.hh
}

namespace widx::net {

struct TcpServerOptions
{
    u16 port = 0;           ///< 0 = ephemeral (see port())
    int backlog = 64;       ///< listen(2) backlog
    /** Per-connection output-buffer high-water mark: a connection
     *  whose client stops reading is dropped once its buffered
     *  responses exceed this (slow-consumer protection). */
    std::size_t maxOutBytes = 64u << 20;
    /** Registry served on Stats frames. Null = the server builds a
     *  private registry and registers the wrapped service's metrics
     *  on it; either way the server adds its own net collector. The
     *  registry (and any scraper of it) must not outlive the
     *  server: the collector points back into it. */
    obs::MetricsRegistry *metrics = nullptr;
    /** Span-trace ring the reaper stamps Reap events into for
     *  traced requests. Normally the same ring as
     *  ServiceConfig::trace; null = no reap spans. */
    std::shared_ptr<obs::TraceRing> trace;
};

struct TcpServerStats
{
    u64 accepted = 0;
    u64 closed = 0;
    u64 requests = 0;         ///< frames parsed and submitted
    u64 responses = 0;        ///< frames serialized toward a client
    u64 droppedResponses = 0; ///< completion outlived its connection
    u64 protocolErrors = 0;   ///< malformed frames (connection dropped)
    u64 statsScrapes = 0;     ///< Stats frames answered in-line
};

class TcpIndexServer
{
  public:
    /** Binds, listens, and starts the loop + reaper threads; throws
     *  nothing — fatal()s on socket-setup failure (test/server
     *  bring-up is not a recoverable context). */
    TcpIndexServer(sw::IndexService &service,
                   const TcpServerOptions &opt = {});
    ~TcpIndexServer();

    TcpIndexServer(const TcpIndexServer &) = delete;
    TcpIndexServer &operator=(const TcpIndexServer &) = delete;

    /** The bound port (resolves an ephemeral request). */
    u16 port() const { return port_; }

    void stop();

    TcpServerStats stats() const;

  private:
    struct Conn
    {
        u64 gen = 0;    ///< distinguishes reuses of the same fd
        FrameReader rd;
        std::vector<u8> out; ///< serialized, unwritten responses
        std::size_t outOff = 0;
        bool wantWrite = false; ///< EPOLLOUT currently armed
        /** Negotiated wire protocol version: 1 until the client
         *  says Hello. Mutation frames on a v1 connection complete
         *  with Status::UnsupportedVersion instead of being served.
         *  Loop-thread-only (the reaper never reads it). */
        u64 version = 1;
        /** Answer-then-close: set when a Hello announces a version
         *  we do not speak; the connection drops once the buffered
         *  UnsupportedVersion response drains. Loop-thread-only. */
        bool closeOnDrain = false;
    };

    /** One parsed request in flight through the service; the
     *  CompletionQueue tag is its address. Owns the key/payload
     *  copies the service's spans point into. */
    struct PendingReq
    {
        int fd = -1;
        u64 gen = 0;
        u64 reqId = 0;
        sw::RequestKind kind = sw::RequestKind::Count;
        std::vector<u64> keys;
        std::vector<u64> payloads; ///< Insert/Upsert only
    };

    void loopMain();
    void reaperMain();
    void handleReadable(int fd);
    void flushConn(int fd, Conn &c);
    void closeConn(int fd);
    void updateEpoll(int fd, Conn &c);
    /** Table lookup under connM_. The returned pointer stays valid
     *  *without* the lock only on the loop thread: the loop is the
     *  table's sole eraser, so a pointer it takes cannot go stale
     *  under it (the reaper only appends to Conn::out under
     *  connM_). */
    Conn *findConn(int fd);
    void collectNetMetrics(obs::Snapshot &out) const;

    sw::IndexService &service_;
    TcpServerOptions opt_;
    std::unique_ptr<obs::MetricsRegistry> ownedMetrics_;
    obs::MetricsRegistry *metrics_ = nullptr; ///< never null
    obs::TraceRing *trace_ = nullptr;
    u16 port_ = 0;
    int listenFd_ = -1;
    int epollFd_ = -1;
    int wakeFd_ = -1; ///< eventfd: reaper -> loop (output pending)

    std::shared_ptr<sw::CompletionQueue> cq_ =
        std::make_shared<sw::CompletionQueue>();
    std::atomic<u64> outstanding_{0}; ///< submitted, not yet reaped
    std::atomic<bool> stopping_{false};

    /** Guards the table plus Conn::out/outOff (the fields the
     *  reaper shares; the Conn members themselves cannot carry
     *  GUARDED_BY — a nested struct cannot name the enclosing
     *  instance's mutex — so their discipline lives in flushConn /
     *  reaperMain). */
    mutable Mutex connM_;
    std::unordered_map<int, Conn> conns_ WIDX_GUARDED_BY(connM_);
    u64 nextGen_ WIDX_GUARDED_BY(connM_) = 1;

    std::atomic<u64> nAccepted_{0};
    std::atomic<u64> nClosed_{0};
    std::atomic<u64> nRequests_{0};
    std::atomic<u64> nResponses_{0};
    std::atomic<u64> nDropped_{0};
    std::atomic<u64> nProtoErr_{0};
    std::atomic<u64> nStatsScrapes_{0};

    std::thread loop_;
    std::thread reaper_;
};

} // namespace widx::net

#endif // WIDX_NET_SERVER_HH
