/**
 * @file
 * Software walkers: the paper's key insight — exploiting inter-key
 * parallelism by walking multiple hash buckets concurrently with
 * decoupled key hashing — realized in software on a real host CPU.
 *
 * Where Widx dedicates hardware walker units, software can only
 * overlap cache misses by interleaving independent probes around
 * prefetches. The three classic schedules, all implemented here over
 * the same db::HashIndex:
 *
 *  - GroupPrefetchProber: process keys in groups; hash and prefetch
 *    all G buckets, then advance all G walks one node at a time,
 *    prefetching each next node (Chen et al., group prefetching).
 *  - AmacProber: asynchronous memory access chaining — a ring of W
 *    probe state machines; each visit advances one machine one stage
 *    and issues the next prefetch (Kocberber et al., AMAC — the
 *    follow-up to this paper).
 *  - CoroProber (coro.hh): the same schedule written as C++20
 *    coroutines that suspend at every prefetch (CoroBase lineage).
 *
 * ScalarProber is the Listing 1 baseline. All probers produce
 * identical match multisets; benches compare their throughput.
 */

#ifndef WIDX_SWWALKERS_PROBERS_HH
#define WIDX_SWWALKERS_PROBERS_HH

#include <span>
#include <vector>

#include "db/hash_index.hh"

namespace widx::sw {

/** Receives matches; kept trivial so benches can count cheaply. */
using MatchSink = void (*)(u64 key, u64 payload, void *ctx);

/** Software prefetch wrapper (read, high temporal locality). */
inline void
prefetch(const void *p)
{
    __builtin_prefetch(p, 0, 3);
}

/** Listing 1: straight-line probe loop. */
class ScalarProber
{
  public:
    explicit ScalarProber(const db::HashIndex &index)
        : index_(index)
    {
    }

    u64 probeAll(std::span<const u64> keys, MatchSink sink,
                 void *ctx) const;

  private:
    const db::HashIndex &index_;
};

/** Group prefetching with a compile-time group size. */
class GroupPrefetchProber
{
  public:
    GroupPrefetchProber(const db::HashIndex &index, unsigned group)
        : index_(index), group_(group)
    {
    }

    u64 probeAll(std::span<const u64> keys, MatchSink sink,
                 void *ctx) const;

  private:
    const db::HashIndex &index_;
    unsigned group_;
};

/** Asynchronous memory access chaining with W in-flight probes. */
class AmacProber
{
  public:
    AmacProber(const db::HashIndex &index, unsigned width)
        : index_(index), width_(width)
    {
    }

    u64 probeAll(std::span<const u64> keys, MatchSink sink,
                 void *ctx) const;

  private:
    const db::HashIndex &index_;
    unsigned width_;
};

} // namespace widx::sw

#endif // WIDX_SWWALKERS_PROBERS_HH
