/**
 * @file
 * Software walkers: the paper's key insight — exploiting inter-key
 * parallelism by walking multiple hash buckets concurrently with
 * decoupled key hashing — realized in software on a real host CPU.
 *
 * Where Widx dedicates hardware walker units, software can only
 * overlap cache misses by interleaving independent probes around
 * prefetches. The classic schedules, all implemented here over the
 * same db::HashIndex:
 *
 *  - ScalarProber: the Listing 1 baseline, either inline (hash one
 *    key, walk one bucket) or batched through the shared
 *    HashIndex::probeBatch pipeline.
 *  - GroupPrefetchProber: process keys in groups; batch-hash and
 *    prefetch all G buckets, then advance all G walks one node at a
 *    time, prefetching each next node (Chen et al., group
 *    prefetching).
 *  - AmacProber: asynchronous memory access chaining — a ring of W
 *    probe state machines; each visit advances one machine one stage
 *    and issues the next prefetch (Kocberber et al., AMAC — the
 *    follow-up to this paper).
 *  - CoroProber (coro.hh): the same schedule written as C++20
 *    coroutines that suspend at every prefetch (CoroBase lineage).
 *
 * All probers share the decoupled pipeline (see README.md in this
 * directory): a dispatcher stage batch-hashes keys with the
 * vectorized HashFn::hashBatch kernel and prefetches the one-byte
 * tag filter, and the walker stage rejects non-matching buckets on
 * the tag before touching a bucket line. Match emission is a
 * templated sink invoked as sink(i, key, payload) — it inlines, so
 * the hot loop performs no indirect calls and no allocation.
 *
 * All probers produce identical match multisets; benches compare
 * their throughput.
 */

#ifndef WIDX_SWWALKERS_PROBERS_HH
#define WIDX_SWWALKERS_PROBERS_HH

#include <array>
#include <concepts>
#include <span>
#include <utility>

#include "common/logging.hh"
#include "db/hash_index.hh"
#include "swwalkers/pipeline_config.hh"

namespace widx::sw {

/**
 * The hash-addressed probe surface the interleaved drains are
 * templated on — the compile-time contract between the walker state
 * machines (amacDrain / coroDrain) and anything indexable: a flat
 * db::HashIndex, one shard of a service index, or the shard-blind
 * ShardedIndex front (both are static_assert-checked against it).
 *
 * The accessor split is deliberate and is what makes live mutation
 * possible: a drain never dereferences Node fields directly — keys,
 * payloads, and next pointers are read through nodeKey / nodePayload
 * / nodeNext, which the live index implements as atomic loads with
 * the ordering the writer protocol needs (and which compile to the
 * same plain movs on x86 when the index is read-only). A prober that
 * touched `n->next` raw would tear against a concurrent unlink.
 *
 * On an epoch-protected live index every bucketHeadFor -> nodeNext
 * chain walk must additionally run under an epoch pin (see
 * common/epoch.hh); the service's walkers pin around each window
 * drain. The concept cannot express that — widx_lint.py's
 * epoch-guard check covers the tagging discipline instead.
 */
template <typename I>
concept ProbeSurface = requires(
    const I &idx, u64 hash, const db::HashIndex::Node &node,
    std::span<const u64> keys, std::span<u64> hashes,
    const u64 *harr, std::size_t n, u64 *bits) {
    // widx-lint: epoch-guard -- concept exemplar expressions, never
    // evaluated; real call sites carry their own markers.
    // Walker stage: tag reject, then the chain walk.
    { idx.tagMayMatchHash(hash) } -> std::convertible_to<bool>;
    { idx.tagAddrFor(hash) } -> std::convertible_to<const u8 *>;
    {
        idx.bucketHeadFor(hash)
    } -> std::convertible_to<const db::HashIndex::Node *>;
    { idx.nodeKey(node) } -> std::convertible_to<u64>;
    { idx.nodePayload(node) } -> std::convertible_to<u64>;
    {
        idx.nodeNext(node)
    } -> std::convertible_to<const db::HashIndex::Node *>;
    // Dispatcher stage: vector hash, prefetch sweep, batched
    // fingerprint filter.
    { idx.hashBatch(keys, hashes) };
    { idx.prefetchStage(harr, n, bool{}) };
    { idx.tagFilterBatch(harr, n, bits) } -> std::convertible_to<u64>;
};

static_assert(ProbeSurface<db::HashIndex>,
              "HashIndex must satisfy the drain contract");

/** Software prefetch wrapper (read, high temporal locality). */
inline void
prefetch(const void *p)
{
    prefetchRead(p);
}

/** Sink that discards matches (count-only probes). */
struct NullSink
{
    void operator()(std::size_t, u64, u64) const {}
};

/** One buffered match, replayed into a caller's sink after a
 *  deterministic merge (WalkerPool and IndexService results). */
struct MatchRec
{
    std::size_t i; ///< key position in the probed span / request
    u64 key;
    u64 payload;
};

/** Hard cap on in-flight walks so prober state fits on the stack. */
inline constexpr unsigned kMaxWidth = 64;

/**
 * Stream over one hashed chunk of keys for the interleaved drains:
 * yields (base + pos, key, hash) and — when a survivor bitmap from
 * the batched tag sweep is supplied — skips rejected positions, so
 * the drain runs with its own tag check off and never loads a tag
 * byte per key. Shared by WalkerPool chunk drains (base = the
 * chunk's offset in the probed span) and IndexService dispatch
 * windows (base = 0: window-local ordinals) — including the
 * service's shard-affine windows, whose keys were already hashed
 * at admission and belong to a single shard, so the Index side of
 * the drain is that shard's flat db::HashIndex.
 */
class HashedChunkStream
{
  public:
    /** keys/hashes point at the chunk's first entry; bits may be
     *  null (no filtering). */
    HashedChunkStream(const u64 *keys, const u64 *hashes,
                      std::size_t len, const u64 *bits,
                      std::size_t base)
        : keys_(keys), hashes_(hashes), len_(len), bits_(bits),
          base_(base)
    {
    }

    bool
    next(std::size_t &i, u64 &key, u64 &hash)
    {
        while (pos_ < len_) {
            if (bits_ && !(bits_[pos_ >> 6] >> (pos_ & 63) & 1)) {
                ++pos_;
                continue;
            }
            i = base_ + pos_;
            key = keys_[pos_];
            hash = hashes_[pos_++];
            return true;
        }
        return false;
    }

  private:
    const u64 *keys_;
    const u64 *hashes_;
    std::size_t len_;
    const u64 *bits_;
    std::size_t base_;
    std::size_t pos_ = 0;
};

/**
 * Walker-side tag sweep over a hashed chunk: run the index's
 * batched fingerprint filter (AVX2 when the host has it), then arm
 * a bucket-header prefetch for every survivor, so by the time the
 * interleaved drain touches a bucket its line is streaming in and
 * rejected keys were never armed at all. The drain is then run with
 * its own tag check off — a HashedChunkStream skips cleared bits
 * instead. `bits` must hold (n + 63) / 64 words. Returns the
 * survivor count.
 */
template <typename Index>
u64
tagFilterAndPrefetch(const Index &index, const u64 *hashes,
                     std::size_t n, u64 *bits)
{
    const u64 survivors = index.tagFilterBatch(hashes, n, bits);
    // widx-lint: epoch-guard -- prefetch address resolve chases an
    // epoch-protected shard pointer; the dispatcher is pinned.
    for (std::size_t i = 0; i < n; ++i)
        if (bits[i >> 6] >> (i & 63) & 1)
            prefetchRead(index.bucketHeadFor(hashes[i]));
    return survivors;
}

/**
 * Dispatcher-side hashed-key window shared by the interleaved
 * probers: keys are hashed a batch at a time (vectorized) and their
 * tag bytes prefetched, so by the time a walker consumes an entry
 * its tag line is (usually) resident.
 */
class HashedWindow
{
  public:
    HashedWindow(const db::HashIndex &index,
                 std::span<const u64> keys,
                 const PipelineConfig &cfg);

    /** Pop the next hashed key; false when the input is drained.
     *  i receives the key's position in the original span. */
    bool
    next(std::size_t &i, u64 &key, u64 &hash)
    {
        if (pos_ == len_ && !refill())
            return false;
        i = base_ + pos_;
        key = keys_[i];
        hash = hashes_[pos_++];
        return true;
    }

  private:
    bool refill();

    const db::HashIndex &index_;
    std::span<const u64> keys_;
    std::size_t batch_;
    bool tagged_;
    std::size_t base_ = 0; ///< span offset of the current window
    std::size_t pos_ = 0;  ///< consumed entries in the window
    std::size_t len_ = 0;  ///< valid entries in the window
    std::array<u64, db::HashIndex::kMaxProbeBatch> hashes_;
};

/** Listing 1 probe loop, optionally batched through the shared
 *  pipeline. */
class ScalarProber
{
  public:
    explicit ScalarProber(const db::HashIndex &index,
                          PipelineConfig cfg = {})
        : index_(index), cfg_(cfg)
    {
    }

    template <typename Sink>
    u64
    probeAll(std::span<const u64> keys, Sink &&sink) const
    {
        const bool tagged = effectiveTagged(index_, cfg_);
        if (cfg_.batch == 0) {
            // Inline schedule: hash, walk, emit, one key at a time.
            u64 matches = 0;
            for (std::size_t i = 0; i < keys.size(); ++i) {
                const u64 key = keys[i];
                matches += index_.probeHashed(
                    key, index_.hashKey(key),
                    [&](u64 payload) { sink(i, key, payload); },
                    tagged);
            }
            return matches;
        }
        return index_.probeBatch(keys, sink, tagged, cfg_.batch);
    }

    u64
    probeAll(std::span<const u64> keys) const
    {
        return probeAll(keys, NullSink{});
    }

  private:
    const db::HashIndex &index_;
    PipelineConfig cfg_;
};

/** Group prefetching with a runtime group size. The group is also
 *  the dispatcher batch — keys are hashed and prefetched a group at
 *  a time — so PipelineConfig::batch is ignored here; only the
 *  tagged knob applies. */
class GroupPrefetchProber
{
  public:
    GroupPrefetchProber(const db::HashIndex &index, unsigned group,
                        PipelineConfig cfg = {})
        : index_(index), group_(group), cfg_(cfg)
    {
        fatal_if(group_ == 0, "group size must be nonzero");
        fatal_if(group_ > db::HashIndex::kMaxProbeBatch,
                 "group size exceeds the pipeline batch cap");
    }

    template <typename Sink>
    u64
    probeAll(std::span<const u64> keys, Sink &&sink) const
    {
        using Node = db::HashIndex::Node;
        u64 matches = 0;
        std::array<u64, db::HashIndex::kMaxProbeBatch> hashes;
        std::array<const Node *, db::HashIndex::kMaxProbeBatch>
            cursor;

        for (std::size_t base = 0; base < keys.size();
             base += group_) {
            const std::size_t g =
                std::min<std::size_t>(group_, keys.size() - base);
            const std::span<const u64> chunk =
                keys.subspan(base, g);

            // Stage 1 (dispatcher): batch-hash the group and
            // prefetch each key's first dependent line.
            index_.hashBatch(chunk, {hashes.data(), g});
            index_.prefetchStage(hashes.data(), g, cfg_.tagged);

            // Stage 2: tag-check each walk; survivors prefetch
            // their bucket header and arm a cursor. (Untagged
            // headers were already prefetched by stage 1.)
            for (std::size_t i = 0; i < g; ++i) {
                const u64 bidx = index_.bucketIndexOf(hashes[i]);
                if (cfg_.tagged &&
                    !index_.tagMayMatch(bidx, hashes[i])) {
                    cursor[i] = nullptr;
                    continue;
                }
                const db::HashIndex::Bucket &b =
                    index_.bucketAt(bidx);
                cursor[i] = &b.head;
                if (cfg_.tagged)
                    prefetch(&b.head);
            }

            // Stage 3+: advance every live walk one node per sweep,
            // prefetching the next node before moving on (the
            // parallel walkers' MLP, time-multiplexed on one core).
            std::size_t live = g;
            while (live > 0) {
                live = 0;
                for (std::size_t i = 0; i < g; ++i) {
                    const Node *n = cursor[i];
                    if (!n)
                        continue;
                    const u64 key = chunk[i];
                    if (index_.nodeKey(*n) == key) {
                        ++matches;
                        sink(base + i, key,
                             index_.nodePayload(*n));
                    }
                    // widx-lint: epoch-guard -- accessor-routed so
                    // the step is a clean acquire even when this
                    // prober is pointed at a live index.
                    const Node *nx = index_.nodeNext(*n);
                    cursor[i] = nx;
                    if (nx) {
                        prefetch(nx);
                        ++live;
                    }
                }
            }
        }
        return matches;
    }

    u64
    probeAll(std::span<const u64> keys) const
    {
        return probeAll(keys, NullSink{});
    }

  private:
    const db::HashIndex &index_;
    unsigned group_;
    PipelineConfig cfg_;
};

/**
 * Drain a hashed-key stream through a ring of W AMAC probe state
 * machines. The Stream supplies pre-hashed keys via
 * `bool next(std::size_t &i, u64 &key, u64 &hash)` — HashedWindow
 * for the single-threaded prober, a claimed window-ring chunk for
 * WalkerPool threads, a coalesced (or shard-affine, admission-
 * hashed) dispatch window for IndexService walkers — and the Index
 * supplies the hash-addressed probe surface (tagMayMatchHash /
 * bucketHeadFor / nodeKey), so the same state machine serves a
 * flat db::HashIndex, one shard of a sharded service index, and
 * the shard-blind ShardedIndex surface alike.
 */
template <ProbeSurface Index, typename Stream, typename Sink>
u64
amacDrain(const Index &index, Stream &stream, unsigned width,
          bool tagged, Sink &&sink)
{
    using Node = db::HashIndex::Node;

    /** One in-flight AMAC probe. */
    // widx-lint: allow(padded) -- function-local, single-threaded
    // ring; the W slots are hot in one thread's L1 and *want* to be
    // dense, unlike the cross-thread slots the check targets.
    struct Slot
    {
        std::size_t i = 0;
        u64 key = 0;
        const Node *node = nullptr; ///< null = slot free
    };

    u64 matches = 0;
    std::array<Slot, kMaxWidth> slot{};
    unsigned live = 0;

    // Pull hashed keys from the stream until one passes the tag
    // filter and becomes an armed walk. The dispatcher prefetched
    // each tag byte back when its batch was hashed — a full batch
    // of work earlier — so the check here almost never stalls, and
    // rejected keys are skipped without ever touching a bucket
    // line.
    auto refill = [&](Slot &s) -> bool {
        std::size_t i;
        u64 key, hash;
        while (stream.next(i, key, hash)) {
            if (tagged && !index.tagMayMatchHash(hash))
                continue;
            // widx-lint: epoch-guard -- live-index bucket resolve;
            // the service walker's pin spans the whole drain.
            const Node *head = index.bucketHeadFor(hash);
            s.i = i;
            s.key = key;
            s.node = head;
            prefetch(head);
            return true;
        }
        return false;
    };

    for (unsigned w = 0; w < width; ++w)
        if (refill(slot[w]))
            ++live;

    // Round-robin: each visit consumes the (hopefully prefetched)
    // node, emits a match if any, and issues the next prefetch.
    while (live > 0) {
        for (unsigned w = 0; w < width; ++w) {
            Slot &s = slot[w];
            if (!s.node)
                continue;
            const Node *n = s.node;
            if (index.nodeKey(*n) == s.key) {
                ++matches;
                sink(s.i, s.key, index.nodePayload(*n));
            }
            // widx-lint: epoch-guard -- live-index chain step; the
            // service walker holds its epoch pin across the drain.
            if (const Node *nx = index.nodeNext(*n)) {
                s.node = nx;
                prefetch(nx);
            } else if (!refill(s)) {
                s.node = nullptr;
                --live;
            }
        }
    }
    return matches;
}

/** Asynchronous memory access chaining with W in-flight probes. */
class AmacProber
{
  public:
    AmacProber(const db::HashIndex &index, unsigned width,
               PipelineConfig cfg = {})
        : index_(index), width_(width), cfg_(cfg)
    {
        fatal_if(width_ == 0, "AMAC width must be nonzero");
        fatal_if(width_ > kMaxWidth,
                 "AMAC width exceeds the in-flight cap");
    }

    template <typename Sink>
    u64
    probeAll(std::span<const u64> keys, Sink &&sink) const
    {
        PipelineConfig cfg = cfg_;
        cfg.tagged = effectiveTagged(index_, cfg_);
        HashedWindow window(index_, keys, cfg);
        return amacDrain(index_, window, width_, cfg.tagged,
                         std::forward<Sink>(sink));
    }

    u64
    probeAll(std::span<const u64> keys) const
    {
        return probeAll(keys, NullSink{});
    }

  private:
    const db::HashIndex &index_;
    unsigned width_;
    PipelineConfig cfg_;
};

} // namespace widx::sw

#endif // WIDX_SWWALKERS_PROBERS_HH
