#include "swwalkers/walker_pool.hh"

#include <algorithm>
#include <atomic>
#include <memory>
#include <thread>

#include "swwalkers/coro.hh"

namespace widx::sw {

namespace {

/** One chunk slot of the shared dispatch window ring. Padded to its
 *  own cache lines so dispatcher stores and walker loads on
 *  neighbouring slots never false-share. */
struct alignas(64) Slot
{
    /** Chunk sequence published by the dispatcher: holds c+1 once
     *  chunk c's base/len/hashes are fully written (release). */
    std::atomic<u64> ready{0};
    /** Chunk sequence released by the draining walker: holds c+1
     *  once chunk c is fully consumed and the slot may be reused
     *  (release). */
    std::atomic<u64> consumed{0};
    std::size_t base = 0;
    std::size_t len = 0;
    std::array<u64, db::HashIndex::kMaxProbeBatch> hashes;
};

/** Bounded spin, then yield — the ring is sized so waits are rare,
 *  and yielding keeps single-core hosts (and oversubscribed CI
 *  runners) from burning whole scheduler quanta in the spin. */
inline void
pauseOrYield(unsigned spins)
{
    if (spins < 128) {
#if defined(__x86_64__) || defined(__i386__)
        __builtin_ia32_pause();
#endif
    } else {
        std::this_thread::yield();
    }
}

/** Walker-thread body: claim chunks by ticket until the input is
 *  exhausted, draining each through the engine's state machines. */
template <typename Sink>
u64
drainClaimedChunks(const db::HashIndex &index,
                   std::span<const u64> keys, Slot *ring,
                   std::size_t ringSize, u64 numChunks,
                   std::atomic<u64> &ticket, unsigned width,
                   bool tagged, WalkerEngine engine, Sink &&sink)
{
    u64 matches = 0;
    for (;;) {
        // Chunked claiming: one relaxed fetch_add per batch of
        // keys. Ticket order also makes each walker's claimed
        // chunk ids strictly increasing, which the merge relies on.
        const u64 c = ticket.fetch_add(1, std::memory_order_relaxed);
        if (c >= numChunks)
            return matches;
        Slot &s = ring[c % ringSize];
        for (unsigned spins = 0;
             s.ready.load(std::memory_order_acquire) < c + 1;
             ++spins)
            pauseOrYield(spins);
        // The dispatcher's prefetches landed in its core's cache,
        // not ours: re-run the tag sweep locally — the batched
        // (AVX2-dispatched) fingerprint filter plus survivor-only
        // header prefetches — so this chunk's first dependent lines
        // stream into this core while the state machines spin up.
        u64 bits[db::HashIndex::kMaxProbeBatch / 64];
        const u64 *bp = nullptr;
        if (tagged) {
            tagFilterAndPrefetch(index, s.hashes.data(), s.len,
                                 bits);
            bp = bits;
        } else {
            index.prefetchStage(s.hashes.data(), s.len, false);
        }
        HashedChunkStream stream(keys.data() + s.base,
                                 s.hashes.data(), s.len, bp,
                                 s.base);
        matches += engine == WalkerEngine::Coro
                       ? coroDrain(index, stream, width, false,
                                   sink)
                       : amacDrain(index, stream, width, false,
                                   sink);
        s.consumed.store(c + 1, std::memory_order_release);
    }
}

/** Per-walker result, padded against false sharing. */
struct alignas(64) WalkerResult
{
    u64 matches = 0;
    std::vector<WalkerPool::MatchRec> recs;
};

/**
 * Run the pool: spawn K walker threads, then run the dispatcher
 * loop on the calling thread. makeSink(w, result) builds walker w's
 * private sink over its WalkerResult.
 */
template <typename MakeSink>
u64
runPool(const db::HashIndex &index, std::span<const u64> keys,
        unsigned walkers, unsigned width, std::size_t batch,
        bool tagged, WalkerEngine engine,
        std::vector<WalkerResult> &results, MakeSink &&makeSink)
{
    if (keys.empty())
        return 0;
    const u64 numChunks = u64((keys.size() + batch - 1) / batch);
    // Two chunks of run-ahead per walker bounds the dispatcher's
    // lead (memory: one hash buffer per slot) while keeping every
    // walker fed.
    const std::size_t ringSize = std::size_t(
        std::min<u64>(std::max<unsigned>(2 * walkers, 8), numChunks));
    auto ring = std::make_unique<Slot[]>(ringSize);
    std::atomic<u64> ticket{0};

    results.clear();
    results.resize(walkers);
    std::vector<std::thread> threads;
    threads.reserve(walkers);
    for (unsigned w = 0; w < walkers; ++w)
        threads.emplace_back([&, w] {
            auto sink = makeSink(w, results[w]);
            results[w].matches = drainClaimedChunks(
                index, keys, ring.get(), ringSize, numChunks, ticket,
                width, tagged, engine, sink);
        });

    // Dispatcher loop (this thread): vector-hash chunk c into slot
    // c % R once the slot's previous tenant (chunk c - R) has been
    // consumed, then publish it with a release store.
    for (u64 c = 0; c < numChunks; ++c) {
        Slot &s = ring[c % ringSize];
        if (c >= ringSize)
            for (unsigned spins = 0;
                 s.consumed.load(std::memory_order_acquire) +
                     ringSize < c + 1;
                 ++spins)
                pauseOrYield(spins);
        s.base = std::size_t(c) * batch;
        s.len = std::min<std::size_t>(batch, keys.size() - s.base);
        index.hashBatch(keys.subspan(s.base, s.len),
                        {s.hashes.data(), s.len});
        s.ready.store(c + 1, std::memory_order_release);
    }

    u64 total = 0;
    for (auto &t : threads)
        t.join();
    for (const WalkerResult &r : results)
        total += r.matches;
    return total;
}

} // namespace

WalkerPool::WalkerPool(const db::HashIndex &index, unsigned width,
                       PipelineConfig cfg, WalkerEngine engine)
    : index_(index), width_(width), tagged_(cfg.tagged),
      adaptiveTags_(cfg.adaptiveTags), engine_(engine),
      walkers_(std::clamp(cfg.walkers, 1u, kMaxWalkers)),
      batch_(std::clamp<std::size_t>(
          cfg.batch ? cfg.batch : db::HashIndex::kProbeBatch, 1,
          db::HashIndex::kMaxProbeBatch))
{
    fatal_if(width_ == 0, "walker width must be nonzero");
    fatal_if(width_ > kMaxWidth,
             "walker width exceeds the in-flight cap");
}

unsigned
WalkerPool::defaultWalkers()
{
    const unsigned hw = std::thread::hardware_concurrency();
    return std::clamp(hw, 1u, kMaxWalkers);
}

u64
WalkerPool::probeAll(std::span<const u64> keys) const
{
    const bool tagged =
        adaptiveTags_ ? index_.taggedWorthwhile(tagged_) : tagged_;
    std::vector<WalkerResult> results;
    return runPool(index_, keys, walkers_, width_, batch_,
                   tagged, engine_, results,
                   [](unsigned, WalkerResult &) { return NullSink{}; });
}

u64
WalkerPool::runBuffered(std::span<const u64> keys,
                        std::vector<MatchRec> &out) const
{
    const bool tagged =
        adaptiveTags_ ? index_.taggedWorthwhile(tagged_) : tagged_;
    std::vector<WalkerResult> results;
    const u64 total = runPool(
        index_, keys, walkers_, width_, batch_, tagged, engine_,
        results, [](unsigned, WalkerResult &r) {
            return [&r](std::size_t i, u64 key, u64 payload) {
                r.recs.push_back({i, key, payload});
            };
        });

    // Deterministic merge. Every chunk's records sit contiguously
    // in exactly one walker's buffer (exclusive chunk ownership),
    // in the engine's single-threaded emission order, and each
    // walker's buffer is already sorted by chunk id (ticket order).
    // A K-way merge on chunk id = i / batch therefore reproduces
    // the same sequence regardless of which walker drained which
    // chunk — independent of thread timing and of K.
    out.clear();
    out.reserve(std::size_t(total));
    std::vector<std::size_t> pos(results.size(), 0);
    for (;;) {
        std::size_t best = results.size();
        u64 bestChunk = ~u64(0);
        for (std::size_t w = 0; w < results.size(); ++w) {
            const auto &recs = results[w].recs;
            if (pos[w] == recs.size())
                continue;
            const u64 chunk = u64(recs[pos[w]].i / batch_);
            if (chunk < bestChunk) {
                bestChunk = chunk;
                best = w;
            }
        }
        if (best == results.size())
            break;
        const auto &recs = results[best].recs;
        while (pos[best] < recs.size() &&
               u64(recs[pos[best]].i / batch_) == bestChunk)
            out.push_back(recs[pos[best]++]);
    }
    return total;
}

} // namespace widx::sw
