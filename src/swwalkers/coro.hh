/**
 * @file
 * C++20-coroutine software walkers.
 *
 * Each probe is a coroutine that issues a prefetch and suspends at
 * every pointer dereference on the walk; a round-robin scheduler
 * multiplexes W probe coroutines so that while one awaits its cache
 * miss, the others' prefetches are in flight. This is the schedule of
 * the Widx walkers expressed in standard C++ (the CoroBase /
 * interleaved-execution lineage that followed the paper).
 *
 * The coroutines ride the same decoupled pipeline as the other
 * probers: keys arrive pre-hashed from the dispatcher-side
 * HashedWindow, and a probe first awaits its one-byte tag line and
 * bails out on a tag reject before ever touching the bucket.
 */

#ifndef WIDX_SWWALKERS_CORO_HH
#define WIDX_SWWALKERS_CORO_HH

#include <coroutine>
#include <span>

#include "swwalkers/probers.hh"

namespace widx::sw {

/** Minimal resumable task for probe coroutines. */
class ProbeTask
{
  public:
    struct promise_type
    {
        ProbeTask
        get_return_object()
        {
            return ProbeTask(std::coroutine_handle<
                             promise_type>::from_promise(*this));
        }

        std::suspend_always initial_suspend() noexcept { return {}; }
        std::suspend_always final_suspend() noexcept { return {}; }
        void return_void() noexcept {}
        void unhandled_exception() { std::terminate(); }
    };

    ProbeTask() = default;
    explicit ProbeTask(std::coroutine_handle<promise_type> h)
        : handle_(h)
    {
    }

    ProbeTask(ProbeTask &&o) noexcept
        : handle_(o.handle_)
    {
        o.handle_ = {};
    }

    ProbeTask &
    operator=(ProbeTask &&o) noexcept
    {
        if (this != &o) {
            destroy();
            handle_ = o.handle_;
            o.handle_ = {};
        }
        return *this;
    }

    ProbeTask(const ProbeTask &) = delete;
    ProbeTask &operator=(const ProbeTask &) = delete;

    ~ProbeTask() { destroy(); }

    bool done() const { return !handle_ || handle_.done(); }
    void resume() { handle_.resume(); }

  private:
    void
    destroy()
    {
        if (handle_)
            handle_.destroy();
    }

    std::coroutine_handle<promise_type> handle_;
};

/** Awaitable that prefetches an address and suspends the probe. */
struct PrefetchAwait
{
    const void *addr;

    bool await_ready() const noexcept { return false; }

    void
    await_suspend(std::coroutine_handle<>) const noexcept
    {
        prefetch(addr);
    }

    void await_resume() const noexcept {}
};

namespace detail {

/** One pre-hashed probe as a coroutine: suspend at each dependent
 *  access, starting with the tag byte when the filter is on. The
 *  Index supplies the hash-addressed probe surface (see amacDrain),
 *  so flat and sharded indexes run the same schedule. */
template <ProbeSurface Index, typename Sink>
ProbeTask
probeOne(const Index &index, std::size_t i, u64 key,
         u64 hash, bool tagged, u64 &matches, Sink &sink)
{
    if (tagged) {
        co_await PrefetchAwait{index.tagAddrFor(hash)};
        if (!index.tagMayMatchHash(hash))
            co_return;
    }
    // widx-lint: epoch-guard -- live-index bucket resolve; the
    // service walker holds its epoch pin across the drain.
    const db::HashIndex::Node *head = index.bucketHeadFor(hash);
    co_await PrefetchAwait{head};
    for (const db::HashIndex::Node *n = head; n;) {
        if (index.nodeKey(*n) == key) {
            ++matches;
            sink(i, key, index.nodePayload(*n));
        }
        // widx-lint: epoch-guard -- live-index chain step; the
        // service walker holds its epoch pin across the drain.
        const db::HashIndex::Node *next = index.nodeNext(*n);
        if (!next)
            break;
        co_await PrefetchAwait{next};
        n = next;
    }
}

} // namespace detail

/**
 * Drain a hashed-key stream through W interleaved probe coroutines.
 * Stream-generic for the same reason as amacDrain: HashedWindow
 * under the single-threaded prober, a claimed window-ring chunk
 * under WalkerPool threads.
 */
template <ProbeSurface Index, typename Stream, typename Sink>
u64
coroDrain(const Index &index, Stream &stream, unsigned width,
          bool tagged, Sink &&sink)
{
    u64 matches = 0;
    std::array<ProbeTask, kMaxWidth> slot;

    // Start a fresh probe in the slot; it always reaches its first
    // prefetch suspension (the body opens with a co_await).
    auto refill = [&](ProbeTask &t) -> bool {
        std::size_t i;
        u64 key, hash;
        if (!stream.next(i, key, hash))
            return false;
        t = detail::probeOne(index, i, key, hash, tagged, matches,
                             sink);
        t.resume(); // from initial_suspend to the first prefetch
        return true;
    };

    unsigned live = 0;
    for (unsigned w = 0; w < width; ++w)
        if (refill(slot[w]))
            ++live;

    // Round-robin resume: while one probe waits on its prefetch,
    // the other probes' lines stream in — inter-key parallelism.
    while (live > 0) {
        for (unsigned w = 0; w < width; ++w) {
            ProbeTask &t = slot[w];
            if (t.done())
                continue;
            t.resume();
            if (t.done() && !refill(t))
                --live;
        }
    }
    return matches;
}

/** Coroutine-interleaved prober with W in-flight probe coroutines. */
class CoroProber
{
  public:
    CoroProber(const db::HashIndex &index, unsigned width,
               PipelineConfig cfg = {})
        : index_(index), width_(width), cfg_(cfg)
    {
        fatal_if(width_ == 0, "coroutine width must be nonzero");
        fatal_if(width_ > kMaxWidth,
                 "coroutine width exceeds the in-flight cap");
    }

    template <typename Sink>
    u64
    probeAll(std::span<const u64> keys, Sink &&sink) const
    {
        PipelineConfig cfg = cfg_;
        cfg.tagged = effectiveTagged(index_, cfg_);
        HashedWindow window(index_, keys, cfg);
        return coroDrain(index_, window, width_, cfg.tagged,
                         std::forward<Sink>(sink));
    }

    u64
    probeAll(std::span<const u64> keys) const
    {
        return probeAll(keys, NullSink{});
    }

  private:
    const db::HashIndex &index_;
    unsigned width_;
    PipelineConfig cfg_;
};

} // namespace widx::sw

#endif // WIDX_SWWALKERS_CORO_HH
