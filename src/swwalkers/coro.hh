/**
 * @file
 * C++20-coroutine software walkers.
 *
 * Each probe is a coroutine that issues a prefetch and suspends at
 * every pointer dereference on the walk; a round-robin scheduler
 * multiplexes W probe coroutines so that while one awaits its cache
 * miss, the others' prefetches are in flight. This is the schedule of
 * the Widx walkers expressed in standard C++ (the CoroBase /
 * interleaved-execution lineage that followed the paper).
 */

#ifndef WIDX_SWWALKERS_CORO_HH
#define WIDX_SWWALKERS_CORO_HH

#include <coroutine>
#include <span>

#include "swwalkers/probers.hh"

namespace widx::sw {

/** Minimal resumable task for probe coroutines. */
class ProbeTask
{
  public:
    struct promise_type
    {
        ProbeTask
        get_return_object()
        {
            return ProbeTask(std::coroutine_handle<
                             promise_type>::from_promise(*this));
        }

        std::suspend_always initial_suspend() noexcept { return {}; }
        std::suspend_always final_suspend() noexcept { return {}; }
        void return_void() noexcept {}
        void unhandled_exception() { std::terminate(); }
    };

    ProbeTask() = default;
    explicit ProbeTask(std::coroutine_handle<promise_type> h)
        : handle_(h)
    {
    }

    ProbeTask(ProbeTask &&o) noexcept
        : handle_(o.handle_)
    {
        o.handle_ = {};
    }

    ProbeTask &
    operator=(ProbeTask &&o) noexcept
    {
        if (this != &o) {
            destroy();
            handle_ = o.handle_;
            o.handle_ = {};
        }
        return *this;
    }

    ProbeTask(const ProbeTask &) = delete;
    ProbeTask &operator=(const ProbeTask &) = delete;

    ~ProbeTask() { destroy(); }

    bool done() const { return !handle_ || handle_.done(); }
    void resume() { handle_.resume(); }

  private:
    void
    destroy()
    {
        if (handle_)
            handle_.destroy();
    }

    std::coroutine_handle<promise_type> handle_;
};

/** Awaitable that prefetches an address and suspends the probe. */
struct PrefetchAwait
{
    const void *addr;

    bool await_ready() const noexcept { return false; }

    void
    await_suspend(std::coroutine_handle<>) const noexcept
    {
        prefetch(addr);
    }

    void await_resume() const noexcept {}
};

/** Coroutine-interleaved prober with W in-flight probe coroutines. */
class CoroProber
{
  public:
    CoroProber(const db::HashIndex &index, unsigned width)
        : index_(index), width_(width)
    {
    }

    u64 probeAll(std::span<const u64> keys, MatchSink sink,
                 void *ctx) const;

  private:
    const db::HashIndex &index_;
    unsigned width_;
};

} // namespace widx::sw

#endif // WIDX_SWWALKERS_CORO_HH
