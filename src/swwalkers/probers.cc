#include "swwalkers/probers.hh"

#include "common/logging.hh"

namespace widx::sw {

using db::HashIndex;

u64
ScalarProber::probeAll(std::span<const u64> keys, MatchSink sink,
                       void *ctx) const
{
    u64 matches = 0;
    for (u64 key : keys) {
        const HashIndex::Bucket &b =
            index_.bucketAt(index_.bucketIndex(key));
        for (const HashIndex::Node *n = &b.head; n; n = n->next) {
            if (index_.nodeKey(*n) == key) {
                ++matches;
                if (sink)
                    sink(key, n->payload, ctx);
            }
        }
    }
    return matches;
}

u64
GroupPrefetchProber::probeAll(std::span<const u64> keys,
                              MatchSink sink, void *ctx) const
{
    fatal_if(group_ == 0, "group size must be nonzero");
    u64 matches = 0;
    std::vector<const HashIndex::Node *> cursor(group_);

    for (std::size_t base = 0; base < keys.size(); base += group_) {
        const std::size_t g =
            std::min<std::size_t>(group_, keys.size() - base);

        // Stage 1: hash every key in the group and prefetch its
        // bucket header (the decoupled-dispatcher role).
        for (std::size_t i = 0; i < g; ++i) {
            const HashIndex::Bucket &b =
                index_.bucketAt(index_.bucketIndex(keys[base + i]));
            cursor[i] = &b.head;
            prefetch(&b.head);
        }

        // Stage 2+: advance every live walk one node per sweep,
        // prefetching the next node before moving on (the parallel
        // walkers' MLP, time-multiplexed on one core).
        std::size_t live = g;
        while (live > 0) {
            live = 0;
            for (std::size_t i = 0; i < g; ++i) {
                const HashIndex::Node *n = cursor[i];
                if (!n)
                    continue;
                const u64 key = keys[base + i];
                if (index_.nodeKey(*n) == key) {
                    ++matches;
                    if (sink)
                        sink(key, n->payload, ctx);
                }
                cursor[i] = n->next;
                if (n->next) {
                    prefetch(n->next);
                    ++live;
                }
            }
        }
    }
    return matches;
}

namespace {

/** One in-flight AMAC probe. */
struct AmacState
{
    u64 key = 0;
    const HashIndex::Node *node = nullptr; ///< null = slot free
};

} // namespace

u64
AmacProber::probeAll(std::span<const u64> keys, MatchSink sink,
                     void *ctx) const
{
    fatal_if(width_ == 0, "AMAC width must be nonzero");
    u64 matches = 0;
    std::vector<AmacState> slot(width_);
    std::size_t next_key = 0;
    unsigned live = 0;

    auto refill = [&](AmacState &s) -> bool {
        if (next_key >= keys.size())
            return false;
        s.key = keys[next_key++];
        const HashIndex::Bucket &b =
            index_.bucketAt(index_.bucketIndex(s.key));
        s.node = &b.head;
        prefetch(&b.head);
        return true;
    };

    for (unsigned i = 0; i < width_; ++i)
        if (refill(slot[i]))
            ++live;

    // Round-robin: each visit consumes the (hopefully prefetched)
    // node, emits a match if any, and issues the next prefetch.
    while (live > 0) {
        for (unsigned i = 0; i < width_; ++i) {
            AmacState &s = slot[i];
            if (!s.node)
                continue;
            const HashIndex::Node *n = s.node;
            if (index_.nodeKey(*n) == s.key) {
                ++matches;
                if (sink)
                    sink(s.key, n->payload, ctx);
            }
            if (n->next) {
                s.node = n->next;
                prefetch(n->next);
            } else if (!refill(s)) {
                s.node = nullptr;
                --live;
            }
        }
    }
    return matches;
}

} // namespace widx::sw
