#include "swwalkers/probers.hh"

namespace widx::sw {

HashedWindow::HashedWindow(const db::HashIndex &index,
                           std::span<const u64> keys,
                           const PipelineConfig &cfg)
    // batch == 0 means "inline": hash one key at a time, right
    // before the walker consumes it (no dispatcher run-ahead).
    : index_(index), keys_(keys),
      batch_(std::clamp<std::size_t>(cfg.batch ? cfg.batch : 1, 1,
                                     db::HashIndex::kMaxProbeBatch)),
      tagged_(cfg.tagged)
{
}

bool
HashedWindow::refill()
{
    base_ += len_;
    pos_ = 0;
    len_ = std::min(batch_, keys_.size() - base_);
    if (len_ == 0)
        return false;
    // Dispatcher stage: vector-hash the batch, then prefetch the
    // line each walker will consult first — the tag byte when the
    // filter is on, the bucket header otherwise — so the walks that
    // follow find their first dependent load already in flight.
    index_.hashBatch(keys_.subspan(base_, len_),
                     {hashes_.data(), len_});
    index_.prefetchStage(hashes_.data(), len_, tagged_);
    return true;
}

} // namespace widx::sw
