/**
 * @file
 * Shared probe-pipeline knobs, split into a leaf header so the db
 * layer can accept a PipelineConfig (db::probeAll/hashJoin
 * overloads) without pulling in the prober templates — the
 * swwalkers -> db dependency stays one-directional at the template
 * level.
 */

#ifndef WIDX_SWWALKERS_PIPELINE_CONFIG_HH
#define WIDX_SWWALKERS_PIPELINE_CONFIG_HH

#include "db/hash_index.hh"

namespace widx::sw {

/** Hard cap on walker threads (ring sizing, sanity) — shared by
 *  the WalkerPool and the IndexService. */
inline constexpr unsigned kMaxWalkers = 64;

/** Probe state machine run by each walker thread (WalkerPool and
 *  IndexService walkers alike). */
enum class WalkerEngine
{
    Amac, ///< AMAC ring of W explicit state machines
    Coro, ///< the same schedule as C++20 coroutines
};

/** Shared pipeline knobs. */
struct PipelineConfig
{
    /** Keys hashed per dispatcher batch; 0 = inline (no batching,
     *  hash each key right before its walk — the Listing 1
     *  schedule). Clamped to HashIndex::kMaxProbeBatch. For the
     *  WalkerPool this is also the chunk granularity walker threads
     *  claim from the shared window ring, and for the IndexService
     *  the dispatch-window size small requests coalesce into. */
    unsigned batch = unsigned(db::HashIndex::kProbeBatch);
    /** Reject non-matching buckets on the one-byte tag filter. */
    bool tagged = true;
    /** Adaptive tagging: when set, `tagged` is only the cold-start
     *  default — effectiveTagged() lets the index's observed reject
     *  rate (db::TagFilterStats, fed by the batched tag sweeps)
     *  flip the filter off once it rejects too few buckets to pay
     *  for its byte loads. Because only tagged sweeps feed the
     *  stats, a flipped-off filter needs a re-sampling consumer to
     *  swing back on: the IndexService runs every 32nd untagged
     *  window tagged for exactly that, so a long-lived service
     *  recovers the filter when traffic turns selective again. */
    bool adaptiveTags = false;
    /** Walker threads draining the shared dispatch window; <= 1
     *  keeps every prober on the calling thread. Only the
     *  WalkerPool (walker_pool.hh), the IndexService, and the
     *  db/workload entry points that ride them consult this knob. */
    unsigned walkers = 1;
};

/** Resolve the tag knob against the index's observed reject rate
 *  (identity unless cfg.adaptiveTags). Templated for the same
 *  reason as the drains: db::HashIndex and sw::ShardedIndex both
 *  expose taggedWorthwhile(). */
template <typename Index>
inline bool
effectiveTagged(const Index &index, const PipelineConfig &cfg)
{
    return cfg.adaptiveTags ? index.taggedWorthwhile(cfg.tagged)
                            : cfg.tagged;
}

} // namespace widx::sw

#endif // WIDX_SWWALKERS_PIPELINE_CONFIG_HH
