/**
 * @file
 * Shared probe-pipeline knobs, split into a leaf header so the db
 * layer can accept a PipelineConfig (db::probeAll/hashJoin
 * overloads) without pulling in the prober templates — the
 * swwalkers -> db dependency stays one-directional at the template
 * level.
 */

#ifndef WIDX_SWWALKERS_PIPELINE_CONFIG_HH
#define WIDX_SWWALKERS_PIPELINE_CONFIG_HH

#include "db/hash_index.hh"

namespace widx::sw {

/** Shared pipeline knobs. */
struct PipelineConfig
{
    /** Keys hashed per dispatcher batch; 0 = inline (no batching,
     *  hash each key right before its walk — the Listing 1
     *  schedule). Clamped to HashIndex::kMaxProbeBatch. For the
     *  WalkerPool this is also the chunk granularity walker threads
     *  claim from the shared window ring. */
    unsigned batch = unsigned(db::HashIndex::kProbeBatch);
    /** Reject non-matching buckets on the one-byte tag filter. */
    bool tagged = true;
    /** Walker threads draining the shared dispatch window; <= 1
     *  keeps every prober on the calling thread. Only the
     *  WalkerPool (walker_pool.hh) and the db/workload entry points
     *  that ride it consult this knob. */
    unsigned walkers = 1;
};

} // namespace widx::sw

#endif // WIDX_SWWALKERS_PIPELINE_CONFIG_HH
