#include "swwalkers/coro.hh"

#include <vector>

#include "common/logging.hh"

namespace widx::sw {

using db::HashIndex;

namespace {

/** One probe as a coroutine: suspend at each dependent access. */
ProbeTask
probeOne(const HashIndex &index, u64 key, u64 &matches,
         MatchSink sink, void *ctx)
{
    const HashIndex::Bucket &b =
        index.bucketAt(index.bucketIndex(key));
    co_await PrefetchAwait{&b.head};
    for (const HashIndex::Node *n = &b.head; n;) {
        if (index.nodeKey(*n) == key) {
            ++matches;
            if (sink)
                sink(key, n->payload, ctx);
        }
        const HashIndex::Node *next = n->next;
        if (!next)
            break;
        co_await PrefetchAwait{next};
        n = next;
    }
}

} // namespace

u64
CoroProber::probeAll(std::span<const u64> keys, MatchSink sink,
                     void *ctx) const
{
    fatal_if(width_ == 0, "coroutine width must be nonzero");
    u64 matches = 0;
    std::vector<ProbeTask> slot(width_);
    std::size_t next_key = 0;

    // Start a fresh probe in the slot; it always reaches its first
    // prefetch suspension (the body opens with a co_await).
    auto refill = [&](ProbeTask &t) -> bool {
        if (next_key >= keys.size())
            return false;
        t = probeOne(index_, keys[next_key++], matches, sink, ctx);
        t.resume(); // from initial_suspend to the first prefetch
        return true;
    };

    unsigned live = 0;
    for (unsigned i = 0; i < width_; ++i)
        if (refill(slot[i]))
            ++live;

    // Round-robin resume: while one probe waits on its prefetch, the
    // other probes' lines stream in — inter-key parallelism.
    while (live > 0) {
        for (unsigned i = 0; i < width_; ++i) {
            ProbeTask &t = slot[i];
            if (t.done())
                continue;
            t.resume();
            if (t.done() && !refill(t))
                --live;
        }
    }
    return matches;
}

} // namespace widx::sw
