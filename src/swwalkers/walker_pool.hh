/**
 * @file
 * Multi-threaded walker pool: the paper's one-dispatcher / N-walker
 * Widx design point realized across host cores.
 *
 * One dispatcher thread (the caller) hash-batches keys into a shared
 * lock-light window ring — a fixed ring of chunk slots, each holding
 * a batch of vector-hashed keys — and K walker threads drain it.
 * Walkers claim whole chunks with a single fetch_add ticket (chunked
 * claiming: one atomic per batch of keys, never per key), re-issue
 * the tag/bucket prefetch sweep on their own core, and run the
 * existing tagged AMAC or coroutine probe state machines
 * (amacDrain/coroDrain) against the shared read-only HashIndex.
 *
 * Matches are emitted into per-walker sinks and merged
 * deterministically: chunk contents and within-chunk emission order
 * are a pure function of the keys and the engine schedule (each
 * chunk is drained by exactly one walker's single-threaded state
 * machine), so replaying chunks in ascending order yields a match
 * sequence independent of thread timing AND of K. Count-only probes
 * skip the buffering entirely.
 *
 * Synchronization contract (what TSan checks in CI):
 *  - slot payload (base/len/hashes) is published by the dispatcher's
 *    release store to `ready` and read after the walker's acquire
 *    load — never touched concurrently;
 *  - slot reuse waits for the previous tenant's release store to
 *    `consumed`;
 *  - chunk ownership is exclusive via the fetch_add ticket;
 *  - per-walker match buffers are joined before the merge reads
 *    them.
 */

#ifndef WIDX_SWWALKERS_WALKER_POOL_HH
#define WIDX_SWWALKERS_WALKER_POOL_HH

#include <span>
#include <vector>

#include "swwalkers/probers.hh"

namespace widx::sw {

/**
 * One-shot pool: every probeAll call spawns K std::threads and
 * joins them before returning. That amortizes fine over DRAM-
 * resident probe phases (~100K+ keys) but taxes every call on
 * repeated small probes — the regime the persistent
 * sw::IndexService (src/service/) exists for: it parks the same
 * walker machinery on a condvar between requests, so the spawn cost
 * is paid once per service lifetime instead of once per call.
 * db::probeAll / db::hashJoin / wl::runKernelProbes route
 * cfg.walkers > 1 through a scoped service; WalkerPool stays the
 * spawn-per-call comparator (bench/service_bench.cc measures the
 * gap) and the home of the shared window-ring machinery.
 */
class WalkerPool
{
  public:
    /** One buffered match, replayed into the caller's sink after
     *  the deterministic merge (the shared sw::MatchRec). */
    using MatchRec = sw::MatchRec;

    /**
     * @param width in-flight probes per walker (AMAC/coro W).
     * @param cfg shared pipeline knobs; cfg.walkers is the walker
     *        thread count K (clamped to [1, kMaxWalkers]) and
     *        cfg.batch the chunk granularity of the window ring.
     */
    explicit WalkerPool(const db::HashIndex &index, unsigned width = 8,
                        PipelineConfig cfg = {},
                        WalkerEngine engine = WalkerEngine::Amac);

    /** Host parallelism clamped to the pool cap; the natural K for
     *  saturating the machine's aggregate MLP. */
    static unsigned defaultWalkers();

    unsigned walkers() const { return walkers_; }

    /**
     * Probe every key, replaying matches into the caller's sink as
     * sink(i, key, payload) on the calling thread — the sink needs
     * no thread safety. Emission order is deterministic (see file
     * header) but is the engine's interleaved order, not the scalar
     * reference's; the match multiset is identical by construction.
     *
     * @return total number of matches.
     */
    template <typename Sink>
    u64
    probeAll(std::span<const u64> keys, Sink &&sink) const
    {
        std::vector<MatchRec> merged;
        const u64 matches = runBuffered(keys, merged);
        for (const MatchRec &r : merged)
            sink(r.i, r.key, r.payload);
        return matches;
    }

    /** Count-only probe: per-walker counters, no match buffering. */
    u64 probeAll(std::span<const u64> keys) const;

    /** The buffered run underlying the sink overload: fills `out`
     *  with the deterministically merged match sequence. Exposed for
     *  tests asserting cross-K determinism. */
    u64 runBuffered(std::span<const u64> keys,
                    std::vector<MatchRec> &out) const;

  private:
    const db::HashIndex &index_;
    unsigned width_;
    bool tagged_;
    bool adaptiveTags_; ///< re-resolve tagged_ per call (see
                        ///< PipelineConfig::adaptiveTags)
    WalkerEngine engine_;
    unsigned walkers_; ///< cfg.walkers clamped to [1, kMaxWalkers]
    std::size_t batch_; ///< cfg.batch clamped to [1, kMaxProbeBatch]
};

} // namespace widx::sw

#endif // WIDX_SWWALKERS_WALKER_POOL_HH
