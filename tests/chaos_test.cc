/**
 * @file
 * Chaos tests: the index service under injected faults
 * (common/failpoint.hh). Every test here arms a failpoint that
 * makes walker timing arbitrarily bad — a walker frozen mid-window,
 * a claim delayed, a drain slowed — and asserts the robustness
 * contract holds anyway:
 *
 *  - every submitted request *completes* (drained Ok, deadline-
 *    failed, or cancelled at shutdown) — a waiter is never hung;
 *  - completed results stay byte-identical to the single-threaded
 *    HashIndex::probeBatch reference — bad timing never changes
 *    answers;
 *  - the watchdog reports the stall (counter + log), and the rest
 *    of the pool keeps serving traffic around the stuck walker.
 *
 * The whole suite skips itself unless the build compiled the
 * failpoints in (-DWIDX_FAILPOINTS=ON — the CI chaos job).
 */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "common/arena.hh"
#include "common/failpoint.hh"
#include "common/rng.hh"
#include "service/index_service.hh"
#include "workload/distributions.hh"

using namespace widx;
using namespace widx::sw;

namespace {

/** Build column with duplicates + a flat reference index. */
struct Dataset
{
    Arena arena;
    std::unique_ptr<db::Column> build;
    db::IndexSpec spec;
    std::unique_ptr<db::HashIndex> flat;
    std::vector<u64> keys;

    Dataset(u64 tuples, u64 probes, u64 seed)
    {
        Rng rng(seed);
        build = std::make_unique<db::Column>(
            "b", db::ValueKind::U64, arena, tuples);
        for (u64 k : wl::uniformKeys(tuples, tuples / 2 + 1, rng))
            build->push(k); // duplicates on purpose
        spec.buckets = tuples / 2;
        flat = std::make_unique<db::HashIndex>(spec, arena);
        flat->buildFromColumn(*build);
        keys = wl::uniformKeys(probes, tuples / 2 + 1, rng);
    }
};

std::vector<MatchRec>
refSequence(const db::HashIndex &idx, std::span<const u64> keys)
{
    std::vector<MatchRec> out;
    idx.probeBatch(keys,
                   [&](std::size_t i, u64 key, u64 payload) {
                       out.push_back({i, key, payload});
                   });
    return out;
}

void
expectSameSequence(const std::vector<MatchRec> &got,
                   const std::vector<MatchRec> &want,
                   const char *what)
{
    ASSERT_EQ(got.size(), want.size()) << what;
    for (std::size_t r = 0; r < got.size(); ++r) {
        ASSERT_EQ(got[r].i, want[r].i) << what << " rec " << r;
        ASSERT_EQ(got[r].key, want[r].key) << what << " rec " << r;
        ASSERT_EQ(got[r].payload, want[r].payload)
            << what << " rec " << r;
    }
}

/** Skip + disarm guard: every chaos test starts and ends clean so
 *  a failed EXPECT cannot leak an armed site into the next test. */
class ChaosTest : public ::testing::Test
{
protected:
    void SetUp() override
    {
        if (!fp::enabled())
            GTEST_SKIP()
                << "built without -DWIDX_FAILPOINTS=ON";
        fp::disarmAll();
    }
    void TearDown() override { fp::disarmAll(); }
};

} // namespace

// ---------------------------------------------------------------------------
// Failpoint mechanism
// ---------------------------------------------------------------------------

TEST_F(ChaosTest, FailpointBudgetFiresExactlyAndSelfDisarms)
{
    const u64 before = fp::hits("chaos.unit");
    fp::arm("chaos.unit", 3, 0);
    for (int i = 0; i < 10; ++i)
        WIDX_FAILPOINT("chaos.unit");
    EXPECT_EQ(fp::hits("chaos.unit") - before, 3u);

    // Disarm drops an unfired budget.
    fp::arm("chaos.unit", 100, 0);
    fp::disarm("chaos.unit");
    WIDX_FAILPOINT("chaos.unit");
    EXPECT_EQ(fp::hits("chaos.unit") - before, 3u);

    // The service's sites are interned (registered) by name even
    // before traffic touches them, because arming registers.
    fp::arm("service.walker_stall", 0, 0);
    fp::disarmAll();
    bool seen = false;
    for (const std::string &n : fp::names())
        seen = seen || n == "service.walker_stall";
    EXPECT_TRUE(seen);
}

// ---------------------------------------------------------------------------
// Stalled walker: the pool drains around it, byte-identically
// ---------------------------------------------------------------------------

TEST_F(ChaosTest, StalledWalkerDoesNotBlockOrCorruptTraffic)
{
    Dataset d(4000, 8000, 11);
    ServiceConfig cfg;
    cfg.shards = 4;
    cfg.walkers = 4;
    cfg.affineRouting = true; // stealing is the recovery path
    cfg.watchdogPeriodNs = 5'000'000;   // 5 ms poll
    cfg.stallThresholdNs = 40'000'000;  // call it stuck at 40 ms
    IndexService service(*d.flat, cfg);

    // Freeze exactly one claimed window for 250 ms — well past the
    // stall threshold — while the other three walkers keep going.
    const u64 hitsBefore = fp::hits("service.walker_stall");
    fp::arm("service.walker_stall", 1, 250'000'000);

    const std::size_t reqKeys = 96;
    std::vector<ResultTicket> tickets;
    std::vector<std::span<const u64>> spans;
    for (std::size_t base = 0; base + reqKeys <= d.keys.size();
         base += reqKeys) {
        spans.emplace_back(d.keys.data() + base, reqKeys);
        tickets.push_back(
            service.submit(RequestKind::Probe, spans.back()));
    }

    // Every request completes Ok and byte-identical to the flat
    // reference — including the one the frozen walker sat on (late
    // but correct) and everything admitted during the freeze.
    for (std::size_t i = 0; i < tickets.size(); ++i) {
        const ServiceResult r = tickets[i].get();
        EXPECT_EQ(r.status, Status::Ok);
        expectSameSequence(r.recs, refSequence(*d.flat, spans[i]),
                           "stalled-walker request");
    }

    EXPECT_EQ(fp::hits("service.walker_stall") - hitsBefore, 1u);
    // The watchdog saw the freeze (once per stuck window, even
    // across several poll periods inside it).
    EXPECT_EQ(service.stats().walkerStalls, 1u);
}

// ---------------------------------------------------------------------------
// Deadlines: a request stuck behind a frozen walker fails fast at
// claim instead of draining past its deadline
// ---------------------------------------------------------------------------

TEST_F(ChaosTest, DeadlineExpiresAtClaimBehindStalledWalker)
{
    using namespace std::chrono_literals;
    Dataset d(4000, 1000, 13);
    ServiceConfig cfg;
    cfg.walkers = 1; // one walker: the freeze blocks the only lane
    IndexService service(*d.flat, cfg);

    // First request claims a window and freezes 150 ms.
    fp::arm("service.walker_stall", 1, 150'000'000);
    const std::span<const u64> spanA{d.keys.data(), 512};
    ResultTicket a = service.submit(RequestKind::Probe, spanA);

    // Give the walker a beat to actually claim + enter the freeze,
    // then submit a deadline request that cannot be claimed before
    // its 20 ms budget burns.
    std::this_thread::sleep_for(30ms);
    SubmitOptions opt;
    opt.deadlineNs = monotonicNowNs() + 20'000'000;
    const std::span<const u64> spanB{d.keys.data() + 512, 64};
    ResultTicket b = service.submit(RequestKind::Probe, spanB, opt);

    const ServiceResult ra = a.get();
    const ServiceResult rb = b.get();
    EXPECT_EQ(ra.status, Status::Ok);
    expectSameSequence(ra.recs, refSequence(*d.flat, spanA),
                       "pre-stall request");
    EXPECT_EQ(rb.status, Status::DeadlineExceeded);
    EXPECT_TRUE(rb.recs.empty()); // no partial results leak out

    const ServiceStats s = service.stats();
    EXPECT_EQ(s.expired, 1u);
    EXPECT_GE(s.completedOk, 1u);
}

// ---------------------------------------------------------------------------
// Shutdown under a stall: queued tickets cancel, nothing hangs
// ---------------------------------------------------------------------------

TEST_F(ChaosTest, StopUnderStallCancelsQueuedNeverHangs)
{
    Dataset d(4000, 2000, 17);
    ServiceConfig cfg;
    cfg.walkers = 1;
    IndexService service(*d.flat, cfg);

    // Freeze the walker on its first claim, then pile requests up
    // behind it and stop() mid-freeze. The claimed window must
    // finish draining (its request completes Ok, byte-identical);
    // every still-queued window must complete Cancelled. stop()
    // returning at all is the no-hang assertion.
    fp::arm("service.walker_stall", 1, 120'000'000);
    const std::span<const u64> first{d.keys.data(), 64};
    ResultTicket a = service.submit(RequestKind::Probe, first);

    using namespace std::chrono_literals;
    std::this_thread::sleep_for(20ms);
    std::vector<ResultTicket> queued;
    for (std::size_t base = 64; base + 64 <= 1024; base += 64)
        queued.push_back(service.submit(
            RequestKind::Count, {d.keys.data() + base, 64}));

    service.stop();

    const ServiceResult ra = a.get();
    if (ra.status == Status::Ok)
        expectSameSequence(ra.recs, refSequence(*d.flat, first),
                           "in-flight request at stop()");
    else
        EXPECT_EQ(ra.status, Status::Cancelled);

    u64 cancelled = 0;
    for (ResultTicket &t : queued) {
        using namespace std::chrono_literals;
        // Already complete — stop() guarantees it; 0ns proves it.
        EXPECT_EQ(t.waitFor(0ns), WaitStatus::Ready);
        const ServiceResult r = t.get();
        EXPECT_TRUE(r.status == Status::Cancelled ||
                    r.status == Status::Ok);
        cancelled += r.status == Status::Cancelled;
    }
    EXPECT_EQ(service.stats().cancelled, cancelled);
    EXPECT_GT(cancelled, 0u);
}

// ---------------------------------------------------------------------------
// Slow drains + delayed claims: pure delay, identical answers
// ---------------------------------------------------------------------------

TEST_F(ChaosTest, SlowDrainAndDelayedClaimNeverChangeResults)
{
    Dataset d(2000, 4000, 19);
    ServiceConfig cfg;
    cfg.shards = 2;
    cfg.walkers = 2;
    IndexService service(*d.flat, cfg);

    fp::arm("service.slow_drain", 8, 2'000'000);
    fp::arm("service.walker_claim_delay", 8, 1'000'000);

    const std::size_t reqKeys = 128;
    std::vector<ResultTicket> tickets;
    std::vector<std::span<const u64>> spans;
    for (std::size_t base = 0; base + reqKeys <= d.keys.size();
         base += reqKeys) {
        spans.emplace_back(d.keys.data() + base, reqKeys);
        tickets.push_back(
            service.submit(RequestKind::Probe, spans.back()));
    }
    for (std::size_t i = 0; i < tickets.size(); ++i) {
        const ServiceResult r = tickets[i].get();
        EXPECT_EQ(r.status, Status::Ok);
        expectSameSequence(r.recs, refSequence(*d.flat, spans[i]),
                           "slow-drain request");
    }
    EXPECT_GT(fp::hits("service.slow_drain"), 0u);
}

// ---------------------------------------------------------------------------
// Rebuild publish frozen mid-swap: probes keep running against the
// old shard, byte-correct, until the single release store lands
// ---------------------------------------------------------------------------

TEST_F(ChaosTest, FrozenRebuildPublishNeverDisturbsProbes)
{
    Dataset d(2000, 2000, 23);
    ServiceConfig cfg;
    cfg.shards = 2;
    cfg.walkers = 2;
    cfg.mutation.enabled = true;
    cfg.mutation.rebuildLoadFactor = 0.5; // regrow on first burst
    IndexService service(*d.build, d.spec, cfg);

    // Stable witness set from the build side; inserted keys live
    // far outside its keyspace, so the witness tally is invariant
    // across the whole churn — old shard, new shard, or mid-freeze.
    const std::span<const u64> witness{d.keys.data(), 256};
    const u64 wantMatches = refSequence(*d.flat, witness).size();

    // Freeze the writer for 120 ms at the publish point of the
    // first rebuild: the un-swapped shard must keep serving.
    const u64 before = fp::hits("sharded.rebuild_publish");
    fp::arm("sharded.rebuild_publish", 1, 120'000'000);

    std::atomic<bool> writerDone{false};
    std::thread writer([&] {
        std::vector<u64> keys(64), pays(64);
        u64 next = 10'000'000;
        // Insert until the failpoint has fired (the triggering
        // batch blocks inside the freeze), then a few more bursts
        // so probes also race the post-swap view.
        for (int burst = 0; burst < 400; ++burst) {
            for (std::size_t i = 0; i < keys.size(); ++i) {
                keys[i] = next++;
                pays[i] = keys[i] + 1;
            }
            SubmitOptions opt;
            opt.payloads = pays;
            const ServiceResult r =
                service.submit(RequestKind::Insert, keys, opt)
                    .get();
            EXPECT_EQ(r.status, Status::Ok); // EXPECT: off-thread
            if (fp::hits("sharded.rebuild_publish") > before &&
                burst >= 8)
                break;
        }
        writerDone.store(true, std::memory_order_release);
    });

    // Probe throughout: while the writer inserts, while it sits
    // frozen at the swap, and after publication. The witness tally
    // never wavers.
    while (!writerDone.load(std::memory_order_acquire)) {
        const ServiceResult r =
            service.submit(RequestKind::Count, witness).get();
        ASSERT_EQ(r.status, Status::Ok);
        ASSERT_EQ(r.matches, wantMatches)
            << "probe disturbed by a frozen rebuild publish";
    }
    writer.join();

    EXPECT_GT(fp::hits("sharded.rebuild_publish"), before);
    u64 rebuilds = 0;
    for (unsigned s = 0; s < cfg.shards; ++s)
        rebuilds += service.index().rebuildsTotal(s);
    EXPECT_GE(rebuilds, 1u);

    // Post-thaw: the published view still answers identically.
    const ServiceResult after =
        service.submit(RequestKind::Count, witness).get();
    ASSERT_EQ(after.status, Status::Ok);
    EXPECT_EQ(after.matches, wantMatches);
}
