// widx-lint corpus: atomic-order violations. Expected findings are
// pinned by line in expected.txt — keep line numbers stable.
#include <atomic>

struct S
{
    std::atomic<unsigned long> n{0};
    std::atomic<bool> flag{false};
};

unsigned long
bad_load(S &s)
{
    return s.n.load(); // implicit seq_cst: finding
}

void
bad_store(S &s, unsigned long v)
{
    s.n.store(v); // implicit seq_cst: finding
}

void
bad_rmw(S &s)
{
    s.n.fetch_add(1); // implicit seq_cst: finding
    s.n.exchange(7);  // implicit seq_cst: finding
}

bool
bad_cas(S &s, unsigned long &e)
{
    return s.n.compare_exchange_weak(e, e + 1); // finding
}

unsigned long
good_load(S &s)
{
    return s.n.load(std::memory_order_acquire); // explicit: clean
}

void
good_multiline(S &s, unsigned long v)
{
    // Order named on a later line of the same call: still clean.
    s.n.store(v,
              std::memory_order_release);
}

bool
suppressed_cas(S &s, unsigned long &e)
{
    // widx-lint: allow(atomic-order) -- corpus: seq_cst kept on a
    // cold path for simplicity; proves suppressions reach here.
    return s.n.compare_exchange_strong(e, e + 1);
}

void
not_an_atomic()
{
    // A look-alike method on a non-atomic type. The lexer engine
    // flags it (it cannot see types); the libclang pass would
    // filter it. The corpus pins lexer behavior, so: finding —
    // and the in-tree idiom for such a method is a suppression.
    struct Store
    {
        void store(int) {}
    } st;
    st.store(1); // finding (lexer engine)
}
