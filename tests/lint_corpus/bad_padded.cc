// widx-lint corpus: cache-line padding violations. Keep line
// numbers stable; expected.txt pins them.
#include <atomic>

// Named *Slot with no alignas: finding.
struct RingSlot
{
    std::atomic<unsigned long> seq{0};
};

// Named *Slot with the right alignment: clean.
struct alignas(64) GoodSlot
{
    std::atomic<unsigned long> seq{0};
};

// The named-constant form is equally accepted: clean.
inline constexpr int kCacheBlockBytes = 64;
struct alignas(kCacheBlockBytes) OtherSlot
{
    std::atomic<unsigned long> seq{0};
};

// Tagged but unpadded: finding.
// widx-lint: padded
struct Heartbeat
{
    std::atomic<unsigned long> beat{0};
};

// Tagged and padded: clean.
// widx-lint: padded
struct alignas(64) Cell
{
    std::atomic<unsigned long> bits{0};
};

// Suppressed *Slot: clean (justified dense layout).
// widx-lint: allow(padded) -- corpus: single-threaded dense ring,
// mirrors the amacDrain Slot justification.
struct LocalSlot
{
    unsigned long key = 0;
};

// Forward declarations and friend lines never match.
struct DeclaredSlot;

// A padded tag that binds to no struct is reported.
// widx-lint: padded
inline void not_a_struct() {}
