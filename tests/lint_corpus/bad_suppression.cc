// widx-lint corpus: malformed suppressions. Keep line numbers
// stable; expected.txt pins them.
#include <atomic>

struct S
{
    std::atomic<unsigned long> n{0};
};

void
no_justification(S &s)
{
    // widx-lint: allow(atomic-order)
    s.n.store(1); // the bare allow() is rejected, so: finding too
}

void
unknown_check(S &s)
{
    // widx-lint: allow(made-up-check) -- justified or not, the
    // check name must exist.
    s.n.store(2, std::memory_order_relaxed);
}

void
trailing_form(S &s)
{
    s.n.store(3); // widx-lint: allow(atomic-order) -- corpus: the
                  // trailing same-line form suppresses this line.
}

void
typo_directive(S &s)
{
    // widx-lint: alow(atomic-order) -- typo'd directives are
    // reported, never silently ignored.
    s.n.store(4, std::memory_order_relaxed);
}
