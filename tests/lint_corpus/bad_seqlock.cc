// widx-lint corpus: seqlock writer-protocol violations. Keep line
// numbers stable; expected.txt pins them.
#include <atomic>

struct Slot4Corpus // not *Slot-suffixed: padded check stays quiet
{
    std::atomic<unsigned long> seq{0};
    std::atomic<unsigned long> payload{0};
};

// widx-lint: seqlock-writer
void
good_writer(Slot4Corpus &s, unsigned long t, unsigned long v)
{
    s.seq.store(2 * t + 1, std::memory_order_release);
    s.payload.store(v, std::memory_order_relaxed);
    s.seq.store(2 * t + 2, std::memory_order_release);
}

// widx-lint: seqlock-writer
void
missing_end_bump(Slot4Corpus &s, unsigned long t, unsigned long v)
{
    // Only one seq store: finding on the function line.
    s.seq.store(2 * t + 1, std::memory_order_release);
    s.payload.store(v, std::memory_order_relaxed);
}

// widx-lint: seqlock-writer
void
even_begin(Slot4Corpus &s, unsigned long t, unsigned long v)
{
    s.seq.store(2 * t, std::memory_order_release); // finding: not odd
    s.payload.store(v, std::memory_order_relaxed);
    s.seq.store(2 * t + 2, std::memory_order_release);
}

// widx-lint: seqlock-writer
void
odd_end(Slot4Corpus &s, unsigned long t, unsigned long v)
{
    s.seq.store(2 * t + 1, std::memory_order_release);
    s.payload.store(v, std::memory_order_relaxed);
    s.seq.store(2 * t + 1, std::memory_order_release); // finding
}

// widx-lint: seqlock-writer
void
relaxed_seq(Slot4Corpus &s, unsigned long t, unsigned long v)
{
    s.seq.store(2 * t + 1, std::memory_order_relaxed); // finding
    s.payload.store(v, std::memory_order_relaxed);
    s.seq.store(2 * t + 2, std::memory_order_relaxed); // finding
}

// widx-lint: seqlock-writer
void
empty_section(Slot4Corpus &s, unsigned long t)
{
    // No payload store between the bumps: finding on the function
    // line — the section publishes nothing.
    s.seq.store(2 * t + 1, std::memory_order_release);
    s.seq.store(2 * t + 2, std::memory_order_release);
}
