// widx-lint corpus: blocking primitives inside event-loop-tagged
// functions. Keep line numbers stable; expected.txt pins them.
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <thread>

struct Ctx
{
    std::mutex m;
    std::condition_variable cv;
};

// widx-lint: event-loop
void
bad_loop(Ctx &c)
{
    std::lock_guard<std::mutex> lk(c.m); // finding: lock_guard
    std::unique_lock<std::mutex> ul(c.m); // finding: unique_lock
    c.cv.wait(ul);                        // finding: condvar wait
    c.cv.wait_for(ul, std::chrono::seconds(1)); // finding: wait
    std::this_thread::sleep_for(
        std::chrono::milliseconds(1)); // finding: sleep
    c.m.lock();                        // finding: .lock()
    c.m.unlock();
}

// Untagged: the same primitives are fine outside the loop.
void
ok_outside(Ctx &c)
{
    std::lock_guard<std::mutex> lk(c.m);
}

// widx-lint: event-loop
void
suppressed_loop(Ctx &c)
{
    // widx-lint: allow(blocking) -- corpus: bounded lookup under an
    // uncontended lock, mirrors the in-tree findConn justification.
    std::lock_guard<std::mutex> lk(c.m);
}

// A tag that dangles at end of file (no function body follows the
// declaration-only line) is itself reported.
// widx-lint: event-loop
void dangling_decl(Ctx &c);
