// widx-lint corpus: epoch-guard violations. Keep line numbers
// stable; expected.txt pins them.

struct Node
{
    unsigned long key = 0;
    Node *next = nullptr;
};

struct Index
{
    Node head;

    // An accessor definition (name at the start of the line, house
    // style) is exempt; the marker inside its body documents the
    // load semantics and is claimed by the definition: clean.
    const Node *
    nodeNext(const Node &n) const
    {
        // widx-lint: epoch-guard -- acquire load synchronizing with
        // the writer's publication store.
        return n.next;
    }

    const Node *
    bucketHeadFor(unsigned long) const
    {
        return &head;
    }
};

// Chain step with no marker in scope: finding.
inline unsigned long
walk_unguarded(const Index &idx, unsigned long key)
{
    unsigned long hits = 0;
    for (const Node *n = idx.bucketHeadFor(key); n;
         n = idx.nodeNext(*n))
        if (n->key == key)
            ++hits;
    return hits;
}

// Marker with a justification covering the walk: clean.
inline unsigned long
walk_guarded(const Index &idx, unsigned long key)
{
    unsigned long hits = 0;
    // widx-lint: epoch-guard -- corpus: caller pins an epoch
    // across the walk.
    for (const Node *n = idx.bucketHeadFor(key); n;
         n = idx.nodeNext(*n))
        if (n->key == key)
            ++hits;
    return hits;
}

// Marker without a justification: finding on the marker (the walk
// itself is still covered — one finding, not three).
inline unsigned long
walk_unjustified(const Index &idx, unsigned long key)
{
    unsigned long hits = 0;
    // widx-lint: epoch-guard
    for (const Node *n = idx.bucketHeadFor(key); n;
         n = idx.nodeNext(*n))
        if (n->key == key)
            ++hits;
    return hits;
}

// Marker whose scope contains no chain step is stale: finding.
inline void
no_step_here()
{
    // widx-lint: epoch-guard -- corpus: nothing to guard below.
    int x = 0;
    (void)x;
}

// Suppressed chain step: clean (single-threaded tool context).
inline const Node *
step_suppressed(const Index &idx)
{
    // widx-lint: allow(epoch-guard) -- corpus: offline tool, no
    // concurrent writer exists.
    return idx.nodeNext(idx.head);
}
