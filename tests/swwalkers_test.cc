/**
 * @file
 * Tests for the software walkers: every prober and every pipeline
 * variant (inline vs batched dispatch, tagged vs untagged buckets)
 * must produce the exact match multiset of the scalar reference,
 * across widths, group sizes, layouts (direct and indirect keys),
 * and key distributions (uniform and Zipf-skewed), via a
 * parameterized property suite.
 */

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "common/arena.hh"
#include "common/rng.hh"
#include "swwalkers/coro.hh"
#include "swwalkers/probers.hh"
#include "swwalkers/walker_pool.hh"
#include "workload/distributions.hh"
#include "workload/join_kernel.hh"

using namespace widx;
using namespace widx::sw;

namespace {

struct Dataset
{
    Arena arena;
    std::unique_ptr<db::HashIndex> index;
    std::vector<u64> keys;

    Dataset(u64 tuples, u64 probes, bool indirect, double zipf_theta,
            u64 seed)
    {
        Rng rng(seed);
        auto build = std::make_unique<db::Column>(
            "b", db::ValueKind::U64, arena, tuples);
        for (u64 k : wl::uniformKeys(tuples, tuples / 2 + 1, rng))
            build->push(k); // duplicates on purpose
        db::IndexSpec spec;
        spec.buckets = tuples / 2;
        spec.indirectKeys = indirect;
        index = std::make_unique<db::HashIndex>(spec, arena);
        index->buildFromColumn(*build);
        buildKeep = std::move(build);
        keys = zipf_theta > 0.0
                   ? wl::zipfKeys(probes, tuples / 2 + 1, zipf_theta,
                                  rng)
                   : wl::uniformKeys(probes, tuples / 2 + 1, rng);
    }

    std::unique_ptr<db::Column> buildKeep;
};

/** (key, payload) multiset plus a check that the reported span
 *  position i actually indexes the emitted key. */
using Matches = std::multiset<std::pair<u64, u64>>;

struct Collector
{
    Matches matches;
    std::span<const u64> keys;
    bool positionsOk = true;

    void
    operator()(std::size_t i, u64 key, u64 payload)
    {
        matches.insert({key, payload});
        if (i >= keys.size() || keys[i] != key)
            positionsOk = false;
    }
};

} // namespace

struct ProberCase
{
    bool indirect;
    double zipf;
    unsigned width;
    unsigned batch; ///< dispatcher batch; 0 = inline hashing
    bool tagged;
};

class ProberEquivalence
    : public ::testing::TestWithParam<ProberCase>
{
};

TEST_P(ProberEquivalence, AllSchedulesAgreeWithScalar)
{
    const ProberCase &c = GetParam();
    Dataset d(2000, 5000, c.indirect, c.zipf, 42 + c.width);

    // Reference: inline, untagged Listing 1 loop.
    Collector ref;
    ref.keys = d.keys;
    ScalarProber scalar(*d.index, {.batch = 0, .tagged = false});
    const u64 n_ref = scalar.probeAll(d.keys, std::ref(ref));
    EXPECT_EQ(n_ref, ref.matches.size());
    EXPECT_TRUE(ref.positionsOk);

    const PipelineConfig cfg{.batch = c.batch, .tagged = c.tagged};

    auto check = [&](auto &&prober, const char *name) {
        Collector got;
        got.keys = d.keys;
        EXPECT_EQ(prober.probeAll(d.keys, std::ref(got)), n_ref)
            << name;
        EXPECT_EQ(got.matches, ref.matches) << name;
        EXPECT_TRUE(got.positionsOk) << name;
    };

    check(ScalarProber(*d.index, cfg), "scalar");
    check(GroupPrefetchProber(*d.index, c.width, cfg),
          "group-prefetch");
    check(AmacProber(*d.index, c.width, cfg), "amac");
    check(CoroProber(*d.index, c.width, cfg), "coro");
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ProberEquivalence,
    ::testing::Values(
        // Inline (unbatched) schedules, tagged and untagged.
        ProberCase{false, 0.0, 1, 0, false},
        ProberCase{false, 0.0, 4, 0, true},
        ProberCase{true, 0.0, 4, 0, true},
        // Batched dispatch at several batch sizes and widths.
        ProberCase{false, 0.0, 4, 8, true},
        ProberCase{false, 0.0, 16, 64, true},
        ProberCase{false, 0.0, 16, 64, false},
        ProberCase{true, 0.0, 4, 64, true},
        ProberCase{true, 0.0, 8, 256, true},
        // Zipf-skewed probes (hot buckets, repeated keys), both
        // layouts, batched and inline.
        ProberCase{false, 0.8, 4, 0, true},
        ProberCase{false, 0.8, 4, 64, true},
        ProberCase{true, 0.8, 7, 64, true},
        ProberCase{true, 0.99, 8, 32, false}));

TEST(Probers, EmptyKeySetYieldsNoMatches)
{
    Dataset d(100, 0, false, 0.0, 1);
    EXPECT_EQ(ScalarProber(*d.index).probeAll(d.keys), 0u);
    EXPECT_EQ(AmacProber(*d.index, 4).probeAll(d.keys), 0u);
    EXPECT_EQ(CoroProber(*d.index, 4).probeAll(d.keys), 0u);
    EXPECT_EQ(GroupPrefetchProber(*d.index, 4).probeAll(d.keys), 0u);
}

TEST(Probers, WidthLargerThanKeyCount)
{
    Dataset d(64, 3, false, 0.0, 2);
    const u64 ref = ScalarProber(*d.index).probeAll(d.keys);
    EXPECT_EQ(AmacProber(*d.index, 32).probeAll(d.keys), ref);
    EXPECT_EQ(CoroProber(*d.index, 32).probeAll(d.keys), ref);
    EXPECT_EQ(GroupPrefetchProber(*d.index, 32).probeAll(d.keys),
              ref);
}

TEST(Probers, MissingKeysProduceNoMatches)
{
    Arena arena;
    db::Column build("b", db::ValueKind::U64, arena, 100);
    for (u64 i = 1; i <= 100; ++i)
        build.push(i);
    db::IndexSpec spec;
    spec.buckets = 128;
    db::HashIndex idx(spec, arena);
    idx.buildFromColumn(build);
    std::vector<u64> misses;
    for (u64 i = 1000; i < 1100; ++i)
        misses.push_back(i);
    for (bool tagged : {false, true}) {
        PipelineConfig cfg{.batch = 64, .tagged = tagged};
        EXPECT_EQ(ScalarProber(idx, cfg).probeAll(misses), 0u);
        EXPECT_EQ(AmacProber(idx, 4, cfg).probeAll(misses), 0u);
        EXPECT_EQ(CoroProber(idx, 4, cfg).probeAll(misses), 0u);
        EXPECT_EQ(GroupPrefetchProber(idx, 8, cfg).probeAll(misses),
                  0u);
    }
}

TEST(Probers, KernelScheduleRunnerAgreesAcrossSchedules)
{
    wl::KernelDataset data(wl::KernelSize::small(), 7);
    const u64 ref = wl::runKernelProbes(
        data, wl::ProbeSchedule::Scalar, 8, false);
    for (auto sched : {wl::ProbeSchedule::Scalar,
                       wl::ProbeSchedule::BatchedScalar,
                       wl::ProbeSchedule::GroupPrefetch,
                       wl::ProbeSchedule::Amac,
                       wl::ProbeSchedule::Coro})
        for (bool tagged : {false, true})
            EXPECT_EQ(wl::runKernelProbes(data, sched, 8, tagged),
                      ref)
                << wl::probeScheduleName(sched);
}

// ---------------------------------------------------------------------------
// WalkerPool: the multi-threaded dispatcher/walker split. The pool
// at K walker threads must produce the exact (key, payload) match
// multiset of the single-threaded probeBatch reference across
// walker counts, engines, tag modes, batch (chunk) sizes, key
// layouts, and key distributions.
// ---------------------------------------------------------------------------

struct PoolCase
{
    unsigned walkers;
    sw::WalkerEngine engine;
    bool indirect;
    double zipf;
    unsigned batch;
    bool tagged;
};

class WalkerPoolEquivalence
    : public ::testing::TestWithParam<PoolCase>
{
};

TEST_P(WalkerPoolEquivalence, MatchesSingleThreadedProbeBatch)
{
    const PoolCase &c = GetParam();
    Dataset d(2000, 5000, c.indirect, c.zipf, 97 + c.walkers);

    // Reference: the single-threaded batched pipeline.
    Collector ref;
    ref.keys = d.keys;
    const u64 n_ref = d.index->probeBatch(
        std::span<const u64>(d.keys),
        [&](std::size_t i, u64 key, u64 payload) {
            ref(i, key, payload);
        },
        c.tagged, c.batch ? c.batch : db::HashIndex::kProbeBatch);
    EXPECT_TRUE(ref.positionsOk);

    PipelineConfig cfg{
        .batch = c.batch, .tagged = c.tagged, .walkers = c.walkers};
    WalkerPool pool(*d.index, 8, cfg, c.engine);
    Collector got;
    got.keys = d.keys;
    EXPECT_EQ(pool.probeAll(d.keys, std::ref(got)), n_ref);
    EXPECT_EQ(got.matches, ref.matches);
    EXPECT_TRUE(got.positionsOk);

    // Count-only overload (the unbuffered path) agrees too.
    EXPECT_EQ(pool.probeAll(d.keys), n_ref);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, WalkerPoolEquivalence,
    ::testing::Values(
        // K sweep at the default chunking, both engines.
        PoolCase{1, sw::WalkerEngine::Amac, false, 0.0, 64, true},
        PoolCase{2, sw::WalkerEngine::Amac, false, 0.0, 64, true},
        PoolCase{4, sw::WalkerEngine::Amac, false, 0.0, 64, true},
        PoolCase{2, sw::WalkerEngine::Coro, false, 0.0, 64, true},
        PoolCase{4, sw::WalkerEngine::Coro, false, 0.0, 64, true},
        // Tag modes and chunk sizes (incl. inline batch=0, which
        // the pool re-chunks at the default granularity).
        PoolCase{4, sw::WalkerEngine::Amac, false, 0.0, 64, false},
        PoolCase{2, sw::WalkerEngine::Amac, false, 0.0, 8, true},
        PoolCase{4, sw::WalkerEngine::Amac, false, 0.0, 256, true},
        PoolCase{4, sw::WalkerEngine::Amac, false, 0.0, 0, true},
        // Indirect keys and Zipf-skewed probes (hot chunks).
        PoolCase{4, sw::WalkerEngine::Amac, true, 0.0, 64, true},
        PoolCase{4, sw::WalkerEngine::Amac, false, 0.8, 64, true},
        PoolCase{4, sw::WalkerEngine::Coro, true, 0.99, 32, false}));

TEST(WalkerPool, MergedOrderIsDeterministicAcrossRunsAndK)
{
    Dataset d(4000, 20000, false, 0.6, 11);
    std::vector<WalkerPool::MatchRec> first;
    u64 n_first = 0;
    for (unsigned round = 0; round < 3; ++round)
        for (unsigned k : {1u, 2u, 4u}) {
            PipelineConfig cfg{.walkers = k};
            std::vector<WalkerPool::MatchRec> got;
            const u64 n =
                WalkerPool(*d.index, 8, cfg).runBuffered(d.keys, got);
            if (first.empty() && n_first == 0) {
                first = got;
                n_first = n;
                continue;
            }
            EXPECT_EQ(n, n_first);
            ASSERT_EQ(got.size(), first.size());
            for (std::size_t r = 0; r < got.size(); ++r) {
                EXPECT_EQ(got[r].i, first[r].i);
                EXPECT_EQ(got[r].key, first[r].key);
                EXPECT_EQ(got[r].payload, first[r].payload);
            }
        }
}

/** Concurrent stress: many pool runs at K=4 over a window ring that
 *  wraps hundreds of times, so TSan gets real dispatcher/walker
 *  races to chew on every PR (the CI tsan job runs this suite). */
TEST(WalkerPool, ConcurrentStressRacesTheWindowRing)
{
    Dataset d(8192, 60000, false, 0.8, 5);
    PipelineConfig ref_cfg{};
    Collector ref;
    ref.keys = d.keys;
    const u64 n_ref = ScalarProber(*d.index, ref_cfg)
                          .probeAll(d.keys, std::ref(ref));

    for (unsigned round = 0; round < 4; ++round)
        for (auto engine :
             {sw::WalkerEngine::Amac, sw::WalkerEngine::Coro}) {
            // Small chunks force heavy ring wrap + claim traffic.
            PipelineConfig cfg{
                .batch = 16, .tagged = true, .walkers = 4};
            Collector got;
            got.keys = d.keys;
            WalkerPool pool(*d.index, 8, cfg, engine);
            ASSERT_EQ(pool.probeAll(d.keys, std::ref(got)), n_ref);
            ASSERT_EQ(got.matches, ref.matches);
        }
}

TEST(WalkerPool, EmptyAndTinyInputs)
{
    Dataset d(128, 3, false, 0.0, 9);
    PipelineConfig cfg{.walkers = 4};
    WalkerPool pool(*d.index, 8, cfg);
    EXPECT_EQ(pool.probeAll(std::span<const u64>{}), 0u);
    // Fewer keys than one chunk: one walker drains, others exit on
    // the ticket.
    const u64 ref = ScalarProber(*d.index).probeAll(d.keys);
    EXPECT_EQ(pool.probeAll(d.keys), ref);
}

TEST(WalkerPool, KernelRunnerRidesThePool)
{
    wl::KernelDataset data(wl::KernelSize::small(), 7);
    const u64 ref = wl::runKernelProbes(
        data, wl::ProbeSchedule::Scalar, 8, false);
    for (auto sched :
         {wl::ProbeSchedule::Amac, wl::ProbeSchedule::Coro})
        for (unsigned walkers : {2u, 4u})
            EXPECT_EQ(wl::runKernelProbes(data, sched, 8, true,
                                          walkers),
                      ref)
                << wl::probeScheduleName(sched);
}
