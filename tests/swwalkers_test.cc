/**
 * @file
 * Tests for the software walkers: all probers must produce the exact
 * match multiset of the scalar reference, across widths, group sizes,
 * layouts, and key distributions (parameterized property suite).
 */

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "common/arena.hh"
#include "common/rng.hh"
#include "swwalkers/coro.hh"
#include "swwalkers/probers.hh"
#include "workload/distributions.hh"

using namespace widx;
using namespace widx::sw;

namespace {

struct Dataset
{
    Arena arena;
    std::unique_ptr<db::HashIndex> index;
    std::vector<u64> keys;

    Dataset(u64 tuples, u64 probes, bool indirect, double zipf_theta,
            u64 seed)
    {
        Rng rng(seed);
        auto build = std::make_unique<db::Column>(
            "b", db::ValueKind::U64, arena, tuples);
        for (u64 k : wl::uniformKeys(tuples, tuples / 2 + 1, rng))
            build->push(k); // duplicates on purpose
        db::IndexSpec spec;
        spec.buckets = tuples / 2;
        spec.indirectKeys = indirect;
        index = std::make_unique<db::HashIndex>(spec, arena);
        index->buildFromColumn(*build);
        buildKeep = std::move(build);
        keys = zipf_theta > 0.0
                   ? wl::zipfKeys(probes, tuples / 2 + 1, zipf_theta,
                                  rng)
                   : wl::uniformKeys(probes, tuples / 2 + 1, rng);
    }

    std::unique_ptr<db::Column> buildKeep;
};

using Matches = std::multiset<std::pair<u64, u64>>;

void
collect(u64 key, u64 payload, void *ctx)
{
    static_cast<Matches *>(ctx)->insert({key, payload});
}

} // namespace

struct ProberCase
{
    bool indirect;
    double zipf;
    unsigned width;
};

class ProberEquivalence
    : public ::testing::TestWithParam<ProberCase>
{
};

TEST_P(ProberEquivalence, AllSchedulesAgreeWithScalar)
{
    const ProberCase &c = GetParam();
    Dataset d(2000, 5000, c.indirect, c.zipf, 42 + c.width);

    Matches ref;
    ScalarProber scalar(*d.index);
    u64 n_ref = scalar.probeAll(d.keys, collect, &ref);
    EXPECT_EQ(n_ref, ref.size());

    Matches gp;
    GroupPrefetchProber group(*d.index, c.width);
    EXPECT_EQ(group.probeAll(d.keys, collect, &gp), n_ref);
    EXPECT_EQ(gp, ref);

    Matches am;
    AmacProber amac(*d.index, c.width);
    EXPECT_EQ(amac.probeAll(d.keys, collect, &am), n_ref);
    EXPECT_EQ(am, ref);

    Matches co;
    CoroProber coro(*d.index, c.width);
    EXPECT_EQ(coro.probeAll(d.keys, collect, &co), n_ref);
    EXPECT_EQ(co, ref);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ProberEquivalence,
    ::testing::Values(ProberCase{false, 0.0, 1},
                      ProberCase{false, 0.0, 4},
                      ProberCase{false, 0.0, 16},
                      ProberCase{true, 0.0, 4},
                      ProberCase{true, 0.0, 8},
                      ProberCase{false, 0.8, 4},
                      ProberCase{true, 0.8, 7}));

TEST(Probers, EmptyKeySetYieldsNoMatches)
{
    Dataset d(100, 0, false, 0.0, 1);
    ScalarProber scalar(*d.index);
    AmacProber amac(*d.index, 4);
    CoroProber coro(*d.index, 4);
    EXPECT_EQ(scalar.probeAll(d.keys, nullptr, nullptr), 0u);
    EXPECT_EQ(amac.probeAll(d.keys, nullptr, nullptr), 0u);
    EXPECT_EQ(coro.probeAll(d.keys, nullptr, nullptr), 0u);
}

TEST(Probers, WidthLargerThanKeyCount)
{
    Dataset d(64, 3, false, 0.0, 2);
    ScalarProber scalar(*d.index);
    u64 ref = scalar.probeAll(d.keys, nullptr, nullptr);
    AmacProber amac(*d.index, 32);
    CoroProber coro(*d.index, 32);
    GroupPrefetchProber gp(*d.index, 32);
    EXPECT_EQ(amac.probeAll(d.keys, nullptr, nullptr), ref);
    EXPECT_EQ(coro.probeAll(d.keys, nullptr, nullptr), ref);
    EXPECT_EQ(gp.probeAll(d.keys, nullptr, nullptr), ref);
}

TEST(Probers, MissingKeysProduceNoMatches)
{
    Arena arena;
    db::Column build("b", db::ValueKind::U64, arena, 100);
    for (u64 i = 1; i <= 100; ++i)
        build.push(i);
    db::IndexSpec spec;
    spec.buckets = 128;
    db::HashIndex idx(spec, arena);
    idx.buildFromColumn(build);
    std::vector<u64> misses;
    for (u64 i = 1000; i < 1100; ++i)
        misses.push_back(i);
    EXPECT_EQ(ScalarProber(idx).probeAll(misses, nullptr, nullptr),
              0u);
    EXPECT_EQ(AmacProber(idx, 4).probeAll(misses, nullptr, nullptr),
              0u);
    EXPECT_EQ(CoroProber(idx, 4).probeAll(misses, nullptr, nullptr),
              0u);
}
