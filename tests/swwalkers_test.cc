/**
 * @file
 * Tests for the software walkers: every prober and every pipeline
 * variant (inline vs batched dispatch, tagged vs untagged buckets)
 * must produce the exact match multiset of the scalar reference,
 * across widths, group sizes, layouts (direct and indirect keys),
 * and key distributions (uniform and Zipf-skewed), via a
 * parameterized property suite.
 */

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "common/arena.hh"
#include "common/rng.hh"
#include "swwalkers/coro.hh"
#include "swwalkers/probers.hh"
#include "workload/distributions.hh"
#include "workload/join_kernel.hh"

using namespace widx;
using namespace widx::sw;

namespace {

struct Dataset
{
    Arena arena;
    std::unique_ptr<db::HashIndex> index;
    std::vector<u64> keys;

    Dataset(u64 tuples, u64 probes, bool indirect, double zipf_theta,
            u64 seed)
    {
        Rng rng(seed);
        auto build = std::make_unique<db::Column>(
            "b", db::ValueKind::U64, arena, tuples);
        for (u64 k : wl::uniformKeys(tuples, tuples / 2 + 1, rng))
            build->push(k); // duplicates on purpose
        db::IndexSpec spec;
        spec.buckets = tuples / 2;
        spec.indirectKeys = indirect;
        index = std::make_unique<db::HashIndex>(spec, arena);
        index->buildFromColumn(*build);
        buildKeep = std::move(build);
        keys = zipf_theta > 0.0
                   ? wl::zipfKeys(probes, tuples / 2 + 1, zipf_theta,
                                  rng)
                   : wl::uniformKeys(probes, tuples / 2 + 1, rng);
    }

    std::unique_ptr<db::Column> buildKeep;
};

/** (key, payload) multiset plus a check that the reported span
 *  position i actually indexes the emitted key. */
using Matches = std::multiset<std::pair<u64, u64>>;

struct Collector
{
    Matches matches;
    std::span<const u64> keys;
    bool positionsOk = true;

    void
    operator()(std::size_t i, u64 key, u64 payload)
    {
        matches.insert({key, payload});
        if (i >= keys.size() || keys[i] != key)
            positionsOk = false;
    }
};

} // namespace

struct ProberCase
{
    bool indirect;
    double zipf;
    unsigned width;
    unsigned batch; ///< dispatcher batch; 0 = inline hashing
    bool tagged;
};

class ProberEquivalence
    : public ::testing::TestWithParam<ProberCase>
{
};

TEST_P(ProberEquivalence, AllSchedulesAgreeWithScalar)
{
    const ProberCase &c = GetParam();
    Dataset d(2000, 5000, c.indirect, c.zipf, 42 + c.width);

    // Reference: inline, untagged Listing 1 loop.
    Collector ref;
    ref.keys = d.keys;
    ScalarProber scalar(*d.index, {.batch = 0, .tagged = false});
    const u64 n_ref = scalar.probeAll(d.keys, std::ref(ref));
    EXPECT_EQ(n_ref, ref.matches.size());
    EXPECT_TRUE(ref.positionsOk);

    const PipelineConfig cfg{.batch = c.batch, .tagged = c.tagged};

    auto check = [&](auto &&prober, const char *name) {
        Collector got;
        got.keys = d.keys;
        EXPECT_EQ(prober.probeAll(d.keys, std::ref(got)), n_ref)
            << name;
        EXPECT_EQ(got.matches, ref.matches) << name;
        EXPECT_TRUE(got.positionsOk) << name;
    };

    check(ScalarProber(*d.index, cfg), "scalar");
    check(GroupPrefetchProber(*d.index, c.width, cfg),
          "group-prefetch");
    check(AmacProber(*d.index, c.width, cfg), "amac");
    check(CoroProber(*d.index, c.width, cfg), "coro");
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ProberEquivalence,
    ::testing::Values(
        // Inline (unbatched) schedules, tagged and untagged.
        ProberCase{false, 0.0, 1, 0, false},
        ProberCase{false, 0.0, 4, 0, true},
        ProberCase{true, 0.0, 4, 0, true},
        // Batched dispatch at several batch sizes and widths.
        ProberCase{false, 0.0, 4, 8, true},
        ProberCase{false, 0.0, 16, 64, true},
        ProberCase{false, 0.0, 16, 64, false},
        ProberCase{true, 0.0, 4, 64, true},
        ProberCase{true, 0.0, 8, 256, true},
        // Zipf-skewed probes (hot buckets, repeated keys), both
        // layouts, batched and inline.
        ProberCase{false, 0.8, 4, 0, true},
        ProberCase{false, 0.8, 4, 64, true},
        ProberCase{true, 0.8, 7, 64, true},
        ProberCase{true, 0.99, 8, 32, false}));

TEST(Probers, EmptyKeySetYieldsNoMatches)
{
    Dataset d(100, 0, false, 0.0, 1);
    EXPECT_EQ(ScalarProber(*d.index).probeAll(d.keys), 0u);
    EXPECT_EQ(AmacProber(*d.index, 4).probeAll(d.keys), 0u);
    EXPECT_EQ(CoroProber(*d.index, 4).probeAll(d.keys), 0u);
    EXPECT_EQ(GroupPrefetchProber(*d.index, 4).probeAll(d.keys), 0u);
}

TEST(Probers, WidthLargerThanKeyCount)
{
    Dataset d(64, 3, false, 0.0, 2);
    const u64 ref = ScalarProber(*d.index).probeAll(d.keys);
    EXPECT_EQ(AmacProber(*d.index, 32).probeAll(d.keys), ref);
    EXPECT_EQ(CoroProber(*d.index, 32).probeAll(d.keys), ref);
    EXPECT_EQ(GroupPrefetchProber(*d.index, 32).probeAll(d.keys),
              ref);
}

TEST(Probers, MissingKeysProduceNoMatches)
{
    Arena arena;
    db::Column build("b", db::ValueKind::U64, arena, 100);
    for (u64 i = 1; i <= 100; ++i)
        build.push(i);
    db::IndexSpec spec;
    spec.buckets = 128;
    db::HashIndex idx(spec, arena);
    idx.buildFromColumn(build);
    std::vector<u64> misses;
    for (u64 i = 1000; i < 1100; ++i)
        misses.push_back(i);
    for (bool tagged : {false, true}) {
        PipelineConfig cfg{.batch = 64, .tagged = tagged};
        EXPECT_EQ(ScalarProber(idx, cfg).probeAll(misses), 0u);
        EXPECT_EQ(AmacProber(idx, 4, cfg).probeAll(misses), 0u);
        EXPECT_EQ(CoroProber(idx, 4, cfg).probeAll(misses), 0u);
        EXPECT_EQ(GroupPrefetchProber(idx, 8, cfg).probeAll(misses),
                  0u);
    }
}

TEST(Probers, KernelScheduleRunnerAgreesAcrossSchedules)
{
    wl::KernelDataset data(wl::KernelSize::small(), 7);
    const u64 ref = wl::runKernelProbes(
        data, wl::ProbeSchedule::Scalar, 8, false);
    for (auto sched : {wl::ProbeSchedule::Scalar,
                       wl::ProbeSchedule::BatchedScalar,
                       wl::ProbeSchedule::GroupPrefetch,
                       wl::ProbeSchedule::Amac,
                       wl::ProbeSchedule::Coro})
        for (bool tagged : {false, true})
            EXPECT_EQ(wl::runKernelProbes(data, sched, 8, tagged),
                      ref)
                << wl::probeScheduleName(sched);
}
