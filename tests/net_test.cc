/**
 * @file
 * Tests for the TCP front-end (src/net/): wire round-trips that
 * stay byte-identical to the in-process reference, pipelined async
 * bursts racing the server's event loop and completion reaper
 * (the suite the TSan CI job runs), deadline propagation over the
 * wire, malformed-frame handling, and shutdown with requests in
 * flight. When the build compiles failpoints in (the chaos job),
 * the raced echo test additionally stalls walkers and slows drains
 * mid-traffic — bad server timing must never change answers or
 * hang the socket client.
 */

#include <gtest/gtest.h>

#include <cstring>
#include <thread>
#include <vector>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include "common/arena.hh"
#include "common/failpoint.hh"
#include "common/rng.hh"
#include "net/open_loop_net.hh"
#include "net/server.hh"
#include "workload/distributions.hh"

using namespace widx;
using namespace widx::sw;
using widx::net::TcpIndexClient;
using widx::net::TcpIndexServer;

namespace {

/** Build column with duplicates + a flat reference index. */
struct Dataset
{
    Arena arena;
    std::unique_ptr<db::Column> build;
    db::IndexSpec spec;
    std::unique_ptr<db::HashIndex> flat;
    std::vector<u64> keys;

    Dataset(u64 tuples, u64 probes, u64 seed)
    {
        Rng rng(seed);
        build = std::make_unique<db::Column>(
            "b", db::ValueKind::U64, arena, tuples);
        for (u64 k : wl::uniformKeys(tuples, tuples / 2 + 1, rng))
            build->push(k); // duplicates on purpose
        spec.buckets = tuples / 2;
        flat = std::make_unique<db::HashIndex>(spec, arena);
        flat->buildFromColumn(*build);
        keys = wl::uniformKeys(probes, tuples / 2 + 1, rng);
    }
};

std::vector<MatchRec>
refSequence(const db::HashIndex &idx, std::span<const u64> keys)
{
    std::vector<MatchRec> out;
    idx.probeBatch(keys,
                   [&](std::size_t i, u64 key, u64 payload) {
                       out.push_back({i, key, payload});
                   });
    return out;
}

void
expectSameSequence(const std::vector<MatchRec> &got,
                   const std::vector<MatchRec> &want,
                   const char *what)
{
    ASSERT_EQ(got.size(), want.size()) << what;
    for (std::size_t r = 0; r < got.size(); ++r) {
        ASSERT_EQ(got[r].i, want[r].i) << what << " rec " << r;
        ASSERT_EQ(got[r].key, want[r].key) << what << " rec " << r;
        ASSERT_EQ(got[r].payload, want[r].payload)
            << what << " rec " << r;
    }
}

} // namespace

TEST(TcpFrontEnd, BlockingCallsMatchTheLocalReference)
{
    Dataset d(2000, 2048, 11);
    ServiceConfig cfg;
    cfg.walkers = 2;
    IndexService service(*d.flat, cfg);
    TcpIndexServer server(service);
    TcpIndexClient client("127.0.0.1", server.port());

    const std::span<const u64> span{d.keys.data(), 512};
    const auto want = refSequence(*d.flat, span);

    const ServiceResult probe =
        client.call(RequestKind::Probe, span);
    ASSERT_EQ(probe.status, Status::Ok);
    EXPECT_EQ(probe.matches, want.size());
    expectSameSequence(probe.recs, want, "net probe");

    const ServiceResult count =
        client.call(RequestKind::Count, span);
    ASSERT_EQ(count.status, Status::Ok);
    EXPECT_EQ(count.matches, want.size());
    EXPECT_TRUE(count.recs.empty());

    const ServiceResult join = client.call(RequestKind::Join, span);
    ASSERT_EQ(join.status, Status::Ok);
    expectSameSequence(join.recs, want, "net join");

    client.close();
    server.stop();
    EXPECT_EQ(server.stats().requests, 3u);
    // The connect-time Hello is answered in-line (it never reaches
    // the service), so the handshake adds one response frame on top
    // of the three calls.
    EXPECT_EQ(server.stats().responses, 4u);
    EXPECT_EQ(server.stats().protocolErrors, 0u);
}

TEST(TcpFrontEnd, MutationsRoundTripOnAV2Connection)
{
    Dataset d(2000, 256, 31);
    ServiceConfig cfg;
    cfg.walkers = 1;
    cfg.mutation.enabled = true;
    IndexService service(*d.build, d.spec, cfg);
    TcpIndexServer server(service);
    TcpIndexClient client("127.0.0.1", server.port());

    // Fresh keys far outside the build keyspace.
    const std::vector<u64> keys{1'000'001, 1'000'002, 1'000'003};
    const std::vector<u64> pay{11, 12, 13};
    const ServiceResult ins =
        client.call(RequestKind::Insert, keys, 0, pay);
    ASSERT_EQ(ins.status, Status::Ok);
    EXPECT_EQ(ins.matches, keys.size());
    EXPECT_TRUE(ins.recs.empty());
    // The Hello response precedes the first completion on the
    // stream, so the negotiated version is visible by now.
    EXPECT_EQ(client.serverVersion(),
              widx::net::kWireProtocolVersion);

    const ServiceResult seen =
        client.call(RequestKind::Probe, keys);
    ASSERT_EQ(seen.status, Status::Ok);
    ASSERT_EQ(seen.recs.size(), keys.size());
    for (std::size_t i = 0; i < keys.size(); ++i)
        EXPECT_EQ(seen.recs[i].payload, pay[i]);

    const std::vector<u64> pay2{21, 22, 23};
    const ServiceResult ups =
        client.call(RequestKind::Upsert, keys, 0, pay2);
    ASSERT_EQ(ups.status, Status::Ok);
    EXPECT_EQ(ups.matches, keys.size()); // all in-place updates
    const ServiceResult seen2 =
        client.call(RequestKind::Probe, keys);
    ASSERT_EQ(seen2.recs.size(), keys.size());
    for (std::size_t i = 0; i < keys.size(); ++i)
        EXPECT_EQ(seen2.recs[i].payload, pay2[i]);

    const ServiceResult del =
        client.call(RequestKind::Delete, keys);
    ASSERT_EQ(del.status, Status::Ok);
    EXPECT_EQ(del.matches, keys.size());
    const ServiceResult gone =
        client.call(RequestKind::Count, keys);
    ASSERT_EQ(gone.status, Status::Ok);
    EXPECT_EQ(gone.matches, 0u);
}

TEST(TcpFrontEnd, V1ConnectionGetsUnsupportedVersionForMutations)
{
    Dataset d(2000, 256, 37);
    ServiceConfig cfg;
    cfg.walkers = 1;
    cfg.mutation.enabled = true;
    IndexService service(*d.build, d.spec, cfg);
    TcpIndexServer server(service);
    // Never says Hello: served as v1.
    TcpIndexClient client("127.0.0.1", server.port(),
                          /*sayHello=*/false);

    const std::vector<u64> keys{1'000'001};
    const std::vector<u64> pay{7};
    const ServiceResult ins =
        client.call(RequestKind::Insert, keys, 0, pay);
    EXPECT_EQ(ins.status, Status::UnsupportedVersion);
    EXPECT_EQ(ins.matches, 0u);

    // The refusal is an answer, not a framing error: the same
    // connection keeps serving reads, and nothing was applied.
    const ServiceResult cnt =
        client.call(RequestKind::Count, keys);
    ASSERT_EQ(cnt.status, Status::Ok);
    EXPECT_EQ(cnt.matches, 0u);
    const ServiceResult ok = client.call(
        RequestKind::Count, {d.keys.data(), 64});
    EXPECT_EQ(ok.status, Status::Ok);
    EXPECT_EQ(client.serverVersion(), 0u);
    EXPECT_EQ(server.stats().protocolErrors, 0u);
}

TEST(TcpFrontEnd, UnsupportedHelloIsAnsweredThenClosed)
{
    Dataset d(2000, 256, 41);
    ServiceConfig cfg;
    cfg.walkers = 1;
    IndexService service(*d.flat, cfg);
    TcpIndexServer server(service);

    // A Hello naming a version the server does not speak, from a
    // raw socket: the answer must arrive before the close, so the
    // client learns *why* it lost the connection.
    std::vector<u8> frame;
    const u32 len = 24 + 8;
    widx::net::ReqHeader h;
    h.reqId = 5;
    h.kind = widx::net::kWireKindHello;
    h.nKeys = 1;
    const u64 version = 99;
    frame.insert(frame.end(),
                 reinterpret_cast<const u8 *>(&len),
                 reinterpret_cast<const u8 *>(&len) + 4);
    frame.insert(frame.end(), reinterpret_cast<const u8 *>(&h),
                 reinterpret_cast<const u8 *>(&h) + sizeof(h));
    frame.insert(frame.end(),
                 reinterpret_cast<const u8 *>(&version),
                 reinterpret_cast<const u8 *>(&version) + 8);
    int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    ASSERT_GE(fd, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(server.port());
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    ASSERT_EQ(::connect(fd,
                        reinterpret_cast<const sockaddr *>(&addr),
                        sizeof(addr)),
              0);
    ASSERT_EQ(::send(fd, frame.data(), frame.size(), MSG_NOSIGNAL),
              ssize_t(frame.size()));

    u8 buf[4 + sizeof(widx::net::RespHeader)];
    std::size_t got = 0;
    while (got < sizeof(buf)) {
        const ssize_t n =
            ::recv(fd, buf + got, sizeof(buf) - got, 0);
        ASSERT_GT(n, 0) << "connection closed before the answer";
        got += std::size_t(n);
    }
    u32 rlen;
    std::memcpy(&rlen, buf, 4);
    ASSERT_EQ(rlen, sizeof(widx::net::RespHeader));
    u64 reqId, serverVersion;
    Status st;
    ASSERT_TRUE(widx::net::parseHelloResponse(
        buf + 4, rlen, reqId, st, serverVersion));
    EXPECT_EQ(reqId, 5u);
    EXPECT_EQ(st, Status::UnsupportedVersion);
    EXPECT_EQ(serverVersion, widx::net::kWireProtocolVersion);
    // ... and only then EOF.
    const ssize_t eof = ::recv(fd, buf, sizeof(buf), 0);
    EXPECT_LE(eof, 0);
    ::close(fd);
    EXPECT_EQ(server.stats().protocolErrors, 0u);
}

TEST(TcpFrontEnd, PipelinedAsyncBurstEchoesEveryTagOnce)
{
    // The raced echo: one client thread pipelines a burst of frames
    // (no reaping until all are out), racing the server's event
    // loop, its completion reaper, the walkers, and the client's
    // reader thread — the shape the TSan job runs. With failpoints
    // compiled in, walkers additionally stall and drains slow down
    // mid-burst; the wire contract (every tag exactly once,
    // byte-identical payloads) must hold regardless.
    Dataset d(2000, 1u << 14, 13);
    ServiceConfig cfg;
    cfg.shards = 2;
    cfg.walkers = 2;
    IndexService service(*d.build, d.spec, cfg);
    TcpIndexServer server(service);
    TcpIndexClient client("127.0.0.1", server.port());

    if (fp::enabled()) {
        fp::arm("service.walker_stall", 3, 20'000'000);
        fp::arm("service.slow_drain", 16, 2'000'000);
    }

    constexpr std::size_t kReqs = 512;
    constexpr std::size_t kKeys = 24;
    for (std::size_t i = 0; i < kReqs; ++i)
        client.submitAsync(
            RequestKind::Probe,
            {d.keys.data() + (i * kKeys) % (d.keys.size() - kKeys),
             kKeys},
            0, i);

    std::vector<Completion> done;
    auto cq = client.queue();
    for (int tries = 0; done.size() < kReqs && tries < 600; ++tries)
        cq->reap(done, kReqs, std::chrono::milliseconds(100));
    if (fp::enabled())
        fp::disarmAll();
    ASSERT_EQ(done.size(), kReqs);

    std::vector<bool> seen(kReqs, false);
    for (const Completion &c : done) {
        ASSERT_LT(c.tag, kReqs);
        EXPECT_FALSE(seen[c.tag]) << "tag echoed twice";
        seen[c.tag] = true;
        ASSERT_EQ(c.result.status, Status::Ok);
        EXPECT_GT(c.result.completedAtNs, 0u);
        const std::size_t base =
            (c.tag * kKeys) % (d.keys.size() - kKeys);
        expectSameSequence(
            c.result.recs,
            refSequence(*d.flat, {d.keys.data() + base, kKeys}),
            "net burst");
    }
}

TEST(TcpFrontEnd, DeadlinePropagatesAsRelativeTime)
{
    Dataset d(2000, 1024, 17);
    ServiceConfig cfg;
    cfg.walkers = 1;
    IndexService service(*d.flat, cfg);
    TcpIndexServer server(service);
    TcpIndexClient client("127.0.0.1", server.port());

    // 1 ns of remaining time is expired by the time the server
    // anchors it; a generous deadline is not.
    const ServiceResult dead = client.call(
        RequestKind::Count, {d.keys.data(), 64}, /*deadlineNs=*/1);
    EXPECT_EQ(dead.status, Status::DeadlineExceeded);

    const ServiceResult alive =
        client.call(RequestKind::Count, {d.keys.data(), 64},
                    /*deadlineNs=*/u64(5'000'000'000));
    EXPECT_EQ(alive.status, Status::Ok);
}

TEST(TcpFrontEnd, MalformedFrameDropsTheConnection)
{
    Dataset d(2000, 256, 19);
    ServiceConfig cfg;
    cfg.walkers = 1;
    IndexService service(*d.flat, cfg);
    TcpIndexServer server(service);
    TcpIndexClient client("127.0.0.1", server.port());

    // A header whose key count exceeds the wire cap is a framing
    // violation: the server must drop the connection without
    // serving anything from it. submitAsync always writes valid
    // frames, so speak to the raw socket directly.
    std::vector<u8> frame;
    const u32 len = u32(24 + 8); // one key's worth of payload
    widx::net::ReqHeader h;
    h.reqId = 1;
    h.kind = 0;
    h.nKeys = widx::net::kMaxKeysPerRequest + 1; // over the cap
    frame.insert(frame.end(),
                 reinterpret_cast<const u8 *>(&len),
                 reinterpret_cast<const u8 *>(&len) + 4);
    frame.insert(frame.end(), reinterpret_cast<const u8 *>(&h),
                 reinterpret_cast<const u8 *>(&h) + sizeof(h));
    frame.resize(4 + len, 0);
    int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    ASSERT_GE(fd, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(server.port());
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    ASSERT_EQ(::connect(fd,
                        reinterpret_cast<const sockaddr *>(&addr),
                        sizeof(addr)),
              0);
    ASSERT_EQ(::send(fd, frame.data(), frame.size(), MSG_NOSIGNAL),
              ssize_t(frame.size()));
    // The server answers a framing violation by closing: the next
    // read returns EOF (possibly after a beat).
    u8 buf[16];
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    EXPECT_LE(n, 0);
    ::close(fd);

    // The healthy connection is unaffected.
    const ServiceResult ok =
        client.call(RequestKind::Count, {d.keys.data(), 64});
    EXPECT_EQ(ok.status, Status::Ok);
    EXPECT_GE(server.stats().protocolErrors, 1u);
}

TEST(TcpFrontEnd, OversizedResponseDowngradesToRejected)
{
    // Writer-side mirror of the reader's frame cap: a result whose
    // record array cannot fit under kMaxFrameBytes must not be
    // serialized as an oversized frame — the peer's FrameReader
    // would drop the connection as a protocol error, and far past
    // the cap the u32 length prefix itself would wrap. It goes out
    // as a record-less Rejected response the reader accepts.
    ServiceResult big;
    big.recs.resize(std::size_t(widx::net::kMaxRecsPerResponse) + 1);
    big.matches = big.recs.size();
    std::vector<u8> out;
    widx::net::appendResponse(out, 42, RequestKind::Join, big);
    EXPECT_LE(out.size(), 4 + std::size_t(widx::net::kMaxFrameBytes));

    widx::net::FrameReader rd;
    rd.feed(out.data(), out.size());
    std::span<const u8> payload;
    bool bad = false;
    ASSERT_TRUE(rd.next(payload, bad));
    ASSERT_FALSE(bad);
    widx::net::RespHeader h;
    ServiceResult parsed;
    ASSERT_TRUE(widx::net::parseResponse(payload.data(),
                                         payload.size(), h, parsed));
    EXPECT_EQ(h.reqId, 42u);
    EXPECT_EQ(parsed.status, Status::Rejected);
    EXPECT_TRUE(parsed.recs.empty());
    EXPECT_EQ(parsed.matches, big.matches);
}

TEST(TcpFrontEnd, ServerStopWithRequestsInFlightNeverHangs)
{
    Dataset d(1u << 14, 1u << 15, 23);
    ServiceConfig cfg;
    cfg.walkers = 1;
    IndexService service(*d.flat, cfg);
    auto server = std::make_unique<TcpIndexServer>(service);
    TcpIndexClient client("127.0.0.1", server->port());

    // A deep pipelined backlog, then tear the server down
    // mid-drain. stop() must wait out its own in-flight requests
    // (the service completes every one), the client's reader must
    // see EOF and close the queue, and nothing may hang.
    constexpr std::size_t kReqs = 256;
    for (std::size_t i = 0; i < kReqs; ++i)
        client.submitAsync(RequestKind::Count,
                           {d.keys.data() + 64 * (i % 128), 64}, 0,
                           i);
    server->stop();

    auto cq = client.queue();
    std::vector<Completion> done;
    for (int tries = 0; tries < 100; ++tries) {
        const std::size_t before = done.size();
        cq->reap(done, kReqs, std::chrono::milliseconds(50));
        if (done.size() == kReqs ||
            (cq->closed() && done.size() == before))
            break;
    }
    // Every response that made it out before the teardown is
    // intact; the rest were dropped server-side, never duplicated.
    std::vector<bool> seen(kReqs, false);
    for (const Completion &c : done) {
        ASSERT_LT(c.tag, kReqs);
        EXPECT_FALSE(seen[c.tag]);
        seen[c.tag] = true;
    }
    EXPECT_LE(done.size(), kReqs);
    // A submission after the connection died synthesizes Cancelled
    // locally instead of blocking or vanishing.
    client.close();
    client.submitAsync(RequestKind::Count, {d.keys.data(), 64}, 0,
                       kReqs);
    std::vector<Completion> late;
    cq->reap(late, 4, std::chrono::milliseconds(100));
    ASSERT_GE(late.size(), 1u);
    bool sawCancelled = false;
    for (const Completion &c : late)
        sawCancelled |= c.tag == kReqs &&
                        c.result.status == Status::Cancelled;
    EXPECT_TRUE(sawCancelled);
    server.reset();
}

TEST(TcpFrontEnd, OpenLoopOverTheSocketAccountsEveryArrival)
{
    Dataset d(2000, 1u << 14, 29);
    ServiceConfig cfg;
    cfg.walkers = 2;
    IndexService service(*d.flat, cfg);
    TcpIndexServer server(service);
    TcpIndexClient client("127.0.0.1", server.port());

    OpenLoopOptions opt;
    opt.ratePerSec = 4000;
    opt.requests = 400;
    opt.keysPerRequest = 32;
    opt.kind = RequestKind::Count;
    opt.sloNs = 1'000'000'000;
    const OpenLoopReport rep =
        widx::net::runOpenLoopNet(client, d.keys, opt);

    // Conservation: every scheduled arrival is accounted exactly
    // once, and everything submitted came back classified.
    EXPECT_EQ(rep.scheduled, opt.requests);
    EXPECT_EQ(rep.scheduled, rep.submitted + rep.shedClientCap);
    EXPECT_EQ(rep.submitted, rep.completed + rep.rejected +
                                 rep.expired + rep.timedOut);
    EXPECT_GT(rep.completed, 0u);
    EXPECT_GE(rep.completed, rep.goodput);
    EXPECT_GT(rep.latency.count, 0u);
}
