/**
 * @file
 * Unit tests for the memory-system substrate: cache replacement,
 * MSHR merging/exhaustion, TLB walk slots, memory-controller
 * bandwidth, and the composed MemSystem's latency behaviour.
 */

#include <gtest/gtest.h>

#include "sim/mem_system.hh"

using namespace widx;
using namespace widx::sim;

TEST(Cache, HitAfterInsert)
{
    Cache c("t", 32 * 1024, 8);
    EXPECT_FALSE(c.lookup(0x1000));
    c.insert(0x1000);
    EXPECT_TRUE(c.lookup(0x1000));
    EXPECT_TRUE(c.lookup(0x1008)); // same block
    EXPECT_FALSE(c.lookup(0x1040)); // next block
}

TEST(Cache, LruEvictsOldest)
{
    // 2-way, 2 sets, 64B blocks -> 256 B cache.
    Cache c("t", 256, 2);
    EXPECT_EQ(c.numSets(), 2u);
    // Fill set 0 (addresses with block index even).
    c.insert(0x0000);
    c.insert(0x0080);
    EXPECT_TRUE(c.contains(0x0000));
    c.lookup(0x0000);  // make 0x0080 the LRU way
    c.insert(0x0100);  // evicts 0x0080
    EXPECT_TRUE(c.contains(0x0000));
    EXPECT_FALSE(c.contains(0x0080));
    EXPECT_TRUE(c.contains(0x0100));
    EXPECT_EQ(c.evictions(), 1u);
}

TEST(Cache, InvalidateAndFlush)
{
    Cache c("t", 4096, 4);
    c.insert(0x40);
    c.invalidate(0x40);
    EXPECT_FALSE(c.contains(0x40));
    c.insert(0x40);
    c.insert(0x80);
    c.flush();
    EXPECT_FALSE(c.contains(0x40));
    EXPECT_FALSE(c.contains(0x80));
}

TEST(Cache, MissRatioTracksLookups)
{
    Cache c("t", 4096, 4);
    c.lookup(0x40); // miss
    c.insert(0x40);
    c.lookup(0x40); // hit
    EXPECT_DOUBLE_EQ(c.missRatio(), 0.5);
    c.resetStats();
    EXPECT_DOUBLE_EQ(c.missRatio(), 0.0);
}

TEST(Mshr, MergeSharesFill)
{
    MshrFile m(4);
    EXPECT_FALSE(m.lookupMerge(0x40, 10).merged);
    m.allocate(0x40, 10, 100);
    MshrFile::Result r = m.lookupMerge(0x40, 20);
    EXPECT_TRUE(r.merged);
    EXPECT_EQ(r.fill, 100u);
    EXPECT_EQ(m.merges(), 1u);
}

TEST(Mshr, ExhaustionAndRetirement)
{
    MshrFile m(2);
    m.allocate(0x40, 0, 50);
    m.allocate(0x80, 0, 60);
    EXPECT_TRUE(m.allocate(0xC0, 0, 70).exhausted);
    EXPECT_EQ(m.earliestFill(0), 50u);
    // At cycle 55 the first entry has retired.
    EXPECT_FALSE(m.allocate(0xC0, 55, 90).exhausted);
    EXPECT_EQ(m.peakInflight(), 2u);
}

TEST(Mshr, PendingFillSurvivesRetirementForLateObservers)
{
    MshrFile m(4);
    m.allocate(0x40, 0, 100);
    // A later-timed access retires the entry...
    m.lookupMerge(0x80, 200);
    // ...but an out-of-order earlier access must still see the fill.
    EXPECT_EQ(m.pendingFill(0x40, 50), 100u);
}

TEST(Tlb, HitAfterWalkAndLru)
{
    Tlb tlb(2, 4096, 40, 2);
    Tlb::Result r1 = tlb.translate(0x1000, 0);
    EXPECT_TRUE(r1.miss);
    EXPECT_EQ(r1.ready, 40u);
    Tlb::Result r2 = tlb.translate(0x1008, 100);
    EXPECT_FALSE(r2.miss);
    EXPECT_EQ(r2.ready, 100u);
    // Two more pages evict the first (capacity 2, LRU).
    tlb.translate(0x2000, 200);
    tlb.translate(0x3000, 300);
    EXPECT_TRUE(tlb.translate(0x1000, 400).miss);
}

TEST(Tlb, WalkSlotsLimitConcurrency)
{
    Tlb tlb(16, 4096, 40, 2);
    Cycle a = tlb.translate(0x1000, 0).ready; // slot 0: 0..40
    Cycle b = tlb.translate(0x2000, 0).ready; // slot 1: 0..40
    Cycle c = tlb.translate(0x3000, 0).ready; // queued: 40..80
    EXPECT_EQ(a, 40u);
    EXPECT_EQ(b, 40u);
    EXPECT_EQ(c, 80u);
}

TEST(Tlb, HitOnPageWithWalkInFlightJoinsTheWalk)
{
    Tlb tlb(16, 4096, 40, 2);
    EXPECT_EQ(tlb.translate(0x1000, 0).ready, 40u);
    // Same page, before the walk completes: joins it.
    EXPECT_EQ(tlb.translate(0x1008, 10).ready, 40u);
}

TEST(MemCtrls, BandwidthSerializesBlocks)
{
    MemCtrls mc(1, 10, 90);
    Cycle f1 = mc.access(0x0000, 0);
    Cycle f2 = mc.access(0x0040, 0); // other block idx -> same MC
    EXPECT_EQ(f1, 100u);
    // One controller: the second block waits a transfer slot.
    EXPECT_EQ(f2, 110u);
    EXPECT_EQ(mc.blocksTransferred(), 2u);
    EXPECT_GT(mc.avgQueueDelay(), 0.0);
}

TEST(MemCtrls, InterleavingSpreadsLoad)
{
    MemCtrls mc(2, 10, 90);
    // Adjacent blocks map to different controllers: no queueing.
    Cycle f1 = mc.access(0x0000, 0);
    Cycle f2 = mc.access(0x0040, 0);
    EXPECT_EQ(f1, 100u);
    EXPECT_EQ(f2, 100u);
}

TEST(MemSystem, LatencyLevels)
{
    Params p;
    MemSystem mem(p);
    const Addr a = 0x7f0000001000ull;

    // Cold: TLB walk + full memory path.
    AccessResult r1 = mem.access(0, a, AccessKind::Load);
    EXPECT_EQ(r1.level, HitLevel::Memory);
    EXPECT_GT(r1.tlbCycles, 0u);
    Cycle mem_lat = r1.ready - r1.tlbCycles;
    EXPECT_GE(mem_lat, p.dramLatency);

    // Warm: L1 hit at load-to-use latency.
    Cycle t = r1.ready + 10;
    AccessResult r2 = mem.access(t, a, AccessKind::Load);
    EXPECT_EQ(r2.level, HitLevel::L1);
    EXPECT_EQ(r2.ready, t + p.l1Latency);

    // Evicted from L1 but not LLC: LLC-hit latency band.
    mem.l1().invalidate(blockAlign(a));
    AccessResult r3 = mem.access(t + 10, a, AccessKind::Load);
    EXPECT_EQ(r3.level, HitLevel::LLC);
    EXPECT_EQ(r3.ready, t + 10 + p.l1Latency + p.xbarLatency +
                            p.llcLatency);
}

TEST(MemSystem, HitUnderFillWaitsForPendingLine)
{
    MemSystem mem;
    const Addr a = 0x7f0000002000ull;
    AccessResult miss = mem.access(0, a, AccessKind::Load);
    // Another access to the same line one cycle later cannot
    // complete before the fill.
    AccessResult hit = mem.access(1, a + 8, AccessKind::Load);
    EXPECT_EQ(hit.ready, miss.ready);
}

TEST(MemSystem, PrefetchDroppedWhenMshrsExhausted)
{
    Params p;
    p.l1Mshrs = 2;
    MemSystem mem(p);
    mem.access(0, 0x7f0000000000ull, AccessKind::Load);
    mem.access(0, 0x7f0000010000ull, AccessKind::Load);
    AccessResult r =
        mem.access(0, 0x7f0000020000ull, AccessKind::Prefetch);
    EXPECT_EQ(r.level, HitLevel::Dropped);
}

TEST(MemSystem, DemandLoadStallsWhenMshrsExhausted)
{
    Params p;
    p.l1Mshrs = 1;
    MemSystem mem(p);
    AccessResult r1 =
        mem.access(0, 0x7f0000000000ull, AccessKind::Load);
    AccessResult r2 =
        mem.access(1, 0x7f0000010000ull, AccessKind::Load);
    EXPECT_GT(r2.mshrStallCycles, 0u);
    EXPECT_GT(r2.ready, r1.ready);
}

TEST(MemSystem, StoresRetireThroughStoreBuffer)
{
    MemSystem mem;
    AccessResult r =
        mem.access(0, 0x7f0000003000ull, AccessKind::Store);
    // Ready when accepted, regardless of the fill.
    EXPECT_LE(r.ready, 1u + r.tlbCycles + 1u);
}

TEST(MemSystem, PortContentionDelaysThirdAccessInCycle)
{
    Params p; // 2 L1 ports
    MemSystem mem(p);
    // Warm one line so hits isolate the port effect.
    const Addr a = 0x7f0000004000ull;
    AccessResult w = mem.access(0, a, AccessKind::Load);
    Cycle t = w.ready + 100;
    AccessResult r1 = mem.access(t, a, AccessKind::Load);
    AccessResult r2 = mem.access(t, a + 8, AccessKind::Load);
    AccessResult r3 = mem.access(t, a + 16, AccessKind::Load);
    EXPECT_EQ(r1.ready, t + p.l1Latency);
    EXPECT_EQ(r2.ready, t + p.l1Latency);
    EXPECT_EQ(r3.ready, t + 1 + p.l1Latency); // bumped a cycle
}

TEST(MemSystem, StatsExportAndReset)
{
    MemSystem mem;
    mem.access(0, 0x7f0000005000ull, AccessKind::Load);
    StatSet s;
    mem.exportStats(s);
    EXPECT_EQ(s.get("mem.accesses"), 1u);
    EXPECT_EQ(s.get("l1d.misses"), 1u);
    mem.resetStats();
    StatSet s2;
    mem.exportStats(s2);
    EXPECT_EQ(s2.get("mem.accesses"), 0u);
    // Functional contents survive the reset.
    AccessResult r = mem.access(1000000, 0x7f0000005000ull,
                                AccessKind::Load);
    EXPECT_EQ(r.level, HitLevel::L1);
}
