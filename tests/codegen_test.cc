/**
 * @file
 * Tests for the schema-aware program generator: structure, register
 * budget enforcement, legality, and hash-IR-to-assembly fidelity.
 */

#include <gtest/gtest.h>

#include "accel/codegen.hh"
#include "common/rng.hh"

using namespace widx;
using namespace widx::accel;
using isa::Opcode;

namespace {

struct CgSetup
{
    Arena arena;
    std::unique_ptr<db::Column> probe;
    std::unique_ptr<db::HashIndex> index;
    u64 out[64]{};

    explicit CgSetup(db::HashFn fn, bool indirect = false)
    {
        Rng rng(1);
        probe = std::make_unique<db::Column>(
            "p", db::ValueKind::U64, arena, 16);
        auto keys = std::make_unique<db::Column>(
            "b", db::ValueKind::U64, arena, 16);
        for (u64 i = 0; i < 16; ++i) {
            probe->push(i + 1);
            keys->push(i + 1);
        }
        db::IndexSpec spec;
        spec.buckets = 16;
        spec.hashFn = std::move(fn);
        spec.indirectKeys = indirect;
        index = std::make_unique<db::HashIndex>(spec, arena);
        index->buildFromColumn(*keys);
        keysKeep = std::move(keys);
    }

    OffloadSpec
    offload()
    {
        OffloadSpec s;
        s.index = index.get();
        s.probeKeys = probe.get();
        s.outBase = Addr(reinterpret_cast<std::uintptr_t>(out));
        return s;
    }

    std::unique_ptr<db::Column> keysKeep;
};

} // namespace

TEST(Codegen, DispatcherUsesFusedHashOps)
{
    CgSetup s(db::HashFn::monetdbRobust());
    isa::Program p = generateDispatcher(s.offload(), 0, 1);
    std::string err;
    EXPECT_TRUE(p.validate(err)) << err;
    // 6-step robust hash: every shifted step is one fused op.
    unsigned fused = p.countOpcode(Opcode::ADD_SHF) +
                     p.countOpcode(Opcode::XOR_SHF) +
                     p.countOpcode(Opcode::AND_SHF);
    // 4 shifted steps + 1 bucket-address addshf.
    EXPECT_EQ(fused, 5u);
    EXPECT_EQ(p.countOpcode(Opcode::LD), 1u);
    EXPECT_EQ(p.countOpcode(Opcode::ST), 0u);
}

TEST(Codegen, DispatcherStrideConfiguresCursor)
{
    CgSetup s(db::HashFn::kernelMaskXor());
    isa::Program p0 = generateDispatcher(s.offload(), 0, 4);
    isa::Program p1 = generateDispatcher(s.offload(), 1, 4);
    // r1 = cursor start, r5 = stride in bytes.
    EXPECT_EQ(p1.reg(1) - p0.reg(1), 8u);
    EXPECT_EQ(p0.reg(5), 32u);
}

TEST(Codegen, WalkerShapeDirectVsIndirect)
{
    CgSetup sd(db::HashFn::kernelMaskXor(), false);
    CgSetup si(db::HashFn::kernelMaskXor(), true);
    isa::Program direct = generateWalker(sd.offload());
    isa::Program indirect = generateWalker(si.offload());
    // Indirect layouts dereference the key pointer: one extra LD.
    EXPECT_EQ(indirect.countOpcode(Opcode::LD),
              direct.countOpcode(Opcode::LD) + 1);
    std::string err;
    EXPECT_TRUE(direct.validate(err)) << err;
    EXPECT_TRUE(indirect.validate(err)) << err;
}

TEST(Codegen, ProducerStoresPairs)
{
    CgSetup s(db::HashFn::kernelMaskXor());
    isa::Program p = generateProducer(s.offload());
    EXPECT_EQ(p.countOpcode(Opcode::ST), 2u);
    EXPECT_EQ(p.unit(), isa::UnitKind::Producer);
    std::string err;
    EXPECT_TRUE(p.validate(err)) << err;
}

TEST(Codegen, CombinedProgramIsRelaxedButStructured)
{
    CgSetup s(db::HashFn::monetdbRobust());
    isa::Program p = generateCombined(
        s.offload(), 0, 2,
        Addr(reinterpret_cast<std::uintptr_t>(s.out)));
    EXPECT_TRUE(p.relaxedLegality());
    EXPECT_EQ(p.countOpcode(Opcode::ST), 2u);
    EXPECT_GT(p.countOpcode(Opcode::XOR_SHF) +
                  p.countOpcode(Opcode::ADD_SHF),
              0u);
}

TEST(Codegen, RegisterBudgetEnforced)
{
    // A pathological hash with more distinct constants than the
    // constant-register window (r6..r19 = 14) must be rejected.
    std::vector<db::HashStep> steps;
    for (u64 i = 0; i < 20; ++i)
        steps.push_back({db::HashCombine::Add, db::HashShift::None, 0,
                         false, 0x1000 + i});
    CgSetup s(db::HashFn("too-many-constants", steps));
    EXPECT_EXIT((void)generateDispatcher(s.offload(), 0, 1),
                ::testing::ExitedWithCode(1), "register budget");
}

TEST(Codegen, RejectsNarrowKeyColumns)
{
    Arena arena;
    db::Column narrow("n", db::ValueKind::U32, arena, 8);
    for (u64 i = 0; i < 8; ++i)
        narrow.push(i);
    db::IndexSpec ispec;
    ispec.buckets = 8;
    db::HashIndex index(ispec, arena);
    OffloadSpec s;
    s.index = &index;
    s.probeKeys = &narrow;
    s.outBase = 0x1000;
    EXPECT_EXIT((void)generateWalker(s),
                ::testing::ExitedWithCode(1), "64-bit");
}

TEST(Codegen, HashStepsCompileOneToOne)
{
    // compOps() is the contract between the IR and the trace/codegen
    // cost models: each step must emit exactly one instruction.
    for (auto fn : {db::HashFn::kernelMaskXor(),
                    db::HashFn::monetdbRobust(),
                    db::HashFn::fibonacciShiftAdd(),
                    db::HashFn::doubleKey()}) {
        CgSetup s(fn);
        isa::Program with = generateDispatcher(s.offload(), 0, 1);
        CgSetup s0(db::HashFn("empty", {}));
        isa::Program without = generateDispatcher(s0.offload(), 0, 1);
        EXPECT_EQ(with.size() - without.size(), fn.compOps())
            << fn.name();
    }
}
