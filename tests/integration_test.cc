/**
 * @file
 * Cross-module integration tests asserting the paper's qualitative
 * results hold end-to-end on scaled-down workloads: speedup ordering
 * across execution models, walker scaling, decoupling benefits, and
 * breakdown sanity. These are the repository's regression net for
 * the Figures 8-11 shapes.
 */

#include <gtest/gtest.h>

#include "accel/engine.hh"
#include "cpu/probe_run.hh"
#include "energy/energy.hh"
#include "workload/dss_queries.hh"
#include "workload/join_kernel.hh"

using namespace widx;

namespace {

/** A scaled-down Large-regime kernel (DRAM-resident, fast to run). */
wl::KernelSize
miniLarge()
{
    return {"MiniLarge", 2 * 1024 * 1024, 60000};
}

/** A scaled-down Small-regime kernel. */
wl::KernelSize
miniSmall()
{
    return {"MiniSmall", 4 * 1024, 60000};
}

accel::OffloadSpec
offloadFor(const wl::KernelDataset &data)
{
    accel::OffloadSpec spec;
    spec.index = data.index.get();
    spec.probeKeys = data.probeKeys.get();
    spec.outBase = data.outBase();
    return spec;
}

double
widxCyclesPerTuple(const wl::KernelDataset &data, unsigned walkers,
                   bool touch = false)
{
    accel::OffloadSpec spec = offloadFor(data);
    spec.dispatcherTouch = touch;
    accel::EngineConfig cfg;
    cfg.numWalkers = walkers;
    return accel::runOffload(spec, cfg).cyclesPerTuple;
}

} // namespace

TEST(Integration, WalkerScalingOnDramResidentIndex)
{
    wl::KernelDataset data(miniLarge());
    double w1 = widxCyclesPerTuple(data, 1);
    double w2 = widxCyclesPerTuple(data, 2);
    double w4 = widxCyclesPerTuple(data, 4);
    // Near-linear memory-time reduction (Fig. 8a).
    EXPECT_NEAR(w1 / w2, 2.0, 0.35);
    EXPECT_NEAR(w1 / w4, 4.0, 1.0);
}

TEST(Integration, FourWalkersBeatOoOByPaperMargin)
{
    wl::KernelDataset data(miniLarge());
    cpu::ProbeRunConfig cfg;
    cpu::CoreResult ooo =
        cpu::runProbeLoop(*data.index, *data.probeKeys, cfg);
    double w4 = widxCyclesPerTuple(data, 4);
    double speedup = ooo.cyclesPerTuple / w4;
    // Paper: ~4x on Large; accept the 2.5-5x band.
    EXPECT_GT(speedup, 2.5);
    EXPECT_LT(speedup, 5.0);
}

TEST(Integration, OneWalkerTracksOoO)
{
    wl::KernelDataset data(miniLarge());
    cpu::ProbeRunConfig cfg;
    cpu::CoreResult ooo =
        cpu::runProbeLoop(*data.index, *data.probeKeys, cfg);
    double w1 = widxCyclesPerTuple(data, 1);
    double ratio = ooo.cyclesPerTuple / w1;
    // Paper: within ~4% on the kernel; accept a generous band.
    EXPECT_GT(ratio, 0.6);
    EXPECT_LT(ratio, 1.5);
}

TEST(Integration, InOrderSlowerThanOoOByPaperMargin)
{
    wl::KernelDataset data(miniLarge());
    cpu::ProbeRunConfig cfg;
    cfg.core = cpu::CoreParams::ooo();
    cpu::CoreResult ooo =
        cpu::runProbeLoop(*data.index, *data.probeKeys, cfg);
    cfg.core = cpu::CoreParams::inorder();
    cpu::CoreResult io =
        cpu::runProbeLoop(*data.index, *data.probeKeys, cfg);
    double slowdown = io.cyclesPerTuple / ooo.cyclesPerTuple;
    // Paper: 2.2x on DSS queries (indirect keys, deeper hashing);
    // the kernel's trivial hash narrows the gap — accept 1.25-3x.
    EXPECT_GT(slowdown, 1.25);
    EXPECT_LT(slowdown, 3.0);
}

TEST(Integration, SmallIndexIsDispatcherBound)
{
    wl::KernelDataset data(miniSmall());
    accel::OffloadSpec spec = offloadFor(data);
    accel::EngineConfig cfg;
    cfg.numWalkers = 4;
    accel::EngineResult r = accel::runOffload(spec, cfg);
    // Walkers spend a large share idle (Fig. 8a Small@4).
    EXPECT_GT(r.walkerIdleFraction(), 0.25);
    // And adding walkers past the dispatcher's rate gains nothing.
    double w2 = widxCyclesPerTuple(data, 2);
    double w4 = r.cyclesPerTuple;
    EXPECT_NEAR(w4, w2, 0.15 * w2);
}

TEST(Integration, DramResidentWalkersAreMemBound)
{
    wl::KernelDataset data(miniLarge());
    accel::OffloadSpec spec = offloadFor(data);
    accel::EngineConfig cfg;
    cfg.numWalkers = 4;
    accel::EngineResult r = accel::runOffload(spec, cfg);
    EXPECT_GT(double(r.walkers.mem), 0.5 * double(r.walkers.total()));
    EXPECT_LT(r.walkerIdleFraction(), 0.2);
}

TEST(Integration, DecouplingBeatsCombinedContexts)
{
    // Fig. 3(b) vs (c)/(d): with an expensive hash, decoupling takes
    // hashing off the walk's critical path.
    wl::DssQuerySpec spec = wl::dssSimQueries().front();
    spec.indexTuples = 256 * 1024;
    spec.probes = 40000;
    spec.hash = wl::HashKind::DoubleKey;
    wl::DssDataset data(spec);

    accel::OffloadSpec off;
    off.index = data.index.get();
    off.probeKeys = data.probeKeys.get();
    off.outBase = data.outBase();
    accel::EngineConfig cfg;
    cfg.numWalkers = 2;

    accel::Engine combined_engine(off, cfg);
    accel::EngineResult combined = combined_engine.runCombined(2);
    accel::EngineResult decoupled = accel::runOffload(off, cfg);
    EXPECT_LT(decoupled.cyclesPerTuple,
              combined.cyclesPerTuple * 0.95);
}

TEST(Integration, SharedDispatcherTracksPerWalkerHashing)
{
    // Fig. 3(c) vs (d): one dispatcher feeds 4 walkers on a
    // DRAM-resident index (Fig. 5's conclusion).
    wl::KernelDataset data(miniLarge());
    accel::OffloadSpec spec = offloadFor(data);
    accel::EngineConfig cfg;
    cfg.numWalkers = 4;
    cfg.sharedDispatcher = false;
    double per_walker = accel::runOffload(spec, cfg).cyclesPerTuple;
    cfg.sharedDispatcher = true;
    double shared = accel::runOffload(spec, cfg).cyclesPerTuple;
    EXPECT_LT(shared, per_walker * 1.15);
}

TEST(Integration, ExpensiveHashGainsMostFromWidx)
{
    // The q20 effect: double-key hashing on the critical path hurts
    // the baseline more than Widx (which overlaps it).
    auto speedup = [&](wl::HashKind kind, db::ValueKind vk) {
        wl::DssQuerySpec spec = wl::dssSimQueries().front();
        spec.indexTuples = 512 * 1024;
        spec.probes = 40000;
        spec.hash = kind;
        spec.keyKind = vk;
        wl::DssDataset data(spec);
        cpu::ProbeRunConfig cfg;
        cpu::CoreResult ooo =
            cpu::runProbeLoop(*data.index, *data.probeKeys, cfg);
        accel::OffloadSpec off;
        off.index = data.index.get();
        off.probeKeys = data.probeKeys.get();
        off.outBase = data.outBase();
        accel::EngineConfig ecfg;
        ecfg.numWalkers = 4;
        accel::EngineResult wx = accel::runOffload(off, ecfg);
        return ooo.cyclesPerTuple / wx.cyclesPerTuple;
    };
    double cheap = speedup(wl::HashKind::Kernel, db::ValueKind::U64);
    double costly =
        speedup(wl::HashKind::DoubleKey, db::ValueKind::F64);
    EXPECT_GT(costly, cheap);
}

TEST(Integration, EnergyShapeMatchesFigure11)
{
    wl::KernelDataset data(miniLarge());
    cpu::ProbeRunConfig cfg;
    cpu::CoreResult ooo =
        cpu::runProbeLoop(*data.index, *data.probeKeys, cfg);
    cfg.core = cpu::CoreParams::inorder();
    cpu::CoreResult io =
        cpu::runProbeLoop(*data.index, *data.probeKeys, cfg);
    double w4 = widxCyclesPerTuple(data, 4);

    energy::EnergyParams ep;
    auto joules = [&](energy::Design d, double cpt) {
        return energy::computeEnergy(ep, d, Cycle(cpt * 1e6)).joules;
    };
    double e_ooo = joules(energy::Design::OoO, ooo.cyclesPerTuple);
    double e_io = joules(energy::Design::InOrder, io.cyclesPerTuple);
    double e_wx = joules(energy::Design::WidxOnOoO, w4);
    // Both alternatives save most of the OoO energy; Widx does so
    // while also being the fastest.
    EXPECT_LT(e_io, 0.3 * e_ooo);
    EXPECT_LT(e_wx, 0.3 * e_ooo);
    EXPECT_LT(w4, ooo.cyclesPerTuple);
    EXPECT_LT(w4, io.cyclesPerTuple);
}

TEST(Integration, TouchExtensionHelpsLlcResidentIndexes)
{
    wl::KernelSize medium{"MiniMedium", 256 * 1024, 60000};
    wl::KernelDataset data(medium);
    double off = widxCyclesPerTuple(data, 1, false);
    double on = widxCyclesPerTuple(data, 1, true);
    EXPECT_LT(on, off);
}
