/**
 * @file
 * Unit and property tests for the mini-DBMS substrate: columns,
 * hash-function IR, hash index invariants, and operators.
 */

#include <gtest/gtest.h>

#include <map>
#include <set>
#include <thread>
#include <vector>

#include "common/rng.hh"
#include "db/aggregate.hh"
#include "db/hash_join.hh"
#include "db/plan.hh"
#include "db/scan.hh"
#include "db/sort.hh"

using namespace widx;
using namespace widx::db;

TEST(Column, PushAtAndAddresses)
{
    Arena arena;
    Column c("c", ValueKind::U64, arena, 10);
    for (u64 i = 0; i < 10; ++i)
        c.push(i * 3);
    EXPECT_EQ(c.size(), 10u);
    EXPECT_EQ(c.at(7), 21u);
    EXPECT_EQ(c.addrOf(3) - c.addrOf(0), 24u);
    EXPECT_EQ(c.bytes(), 80u);
}

TEST(Column, U32ColumnsPackTighter)
{
    Arena arena;
    Column c("c", ValueKind::U32, arena, 4);
    c.push(0xAABBCCDDEE); // truncates to 32 bits
    EXPECT_EQ(c.at(0), 0xBBCCDDEEu);
    EXPECT_EQ(c.addrOf(1) - c.addrOf(0), 4u);
}

TEST(Column, F64BitPatternRoundTrip)
{
    Arena arena;
    Column c("c", ValueKind::F64, arena, 2);
    c.push(f64Bits(3.25));
    EXPECT_DOUBLE_EQ(bitsF64(c.at(0)), 3.25);
}

TEST(Table, ColumnRegistryAndRows)
{
    Arena arena;
    Table t("t");
    Column &a = t.addColumn("a", ValueKind::U64, arena, 5);
    t.addColumn("b", ValueKind::U64, arena, 5);
    a.push(1);
    a.push(2);
    EXPECT_TRUE(t.hasColumn("a"));
    EXPECT_FALSE(t.hasColumn("z"));
    EXPECT_EQ(t.rows(), 2u);
    EXPECT_EQ(t.column("a").size(), 2u);
}

TEST(HashFn, PresetsAreDeterministicAndDiffer)
{
    HashFn k = HashFn::kernelMaskXor();
    HashFn m = HashFn::monetdbRobust();
    HashFn f = HashFn::fibonacciShiftAdd();
    HashFn d = HashFn::doubleKey();
    EXPECT_EQ(k(12345), k(12345));
    std::set<u64> outs{k(12345), m(12345), f(12345), d(12345)};
    EXPECT_EQ(outs.size(), 4u);
    EXPECT_EQ(k.compOps(), 2u);
    EXPECT_EQ(m.compOps(), 6u);
    EXPECT_EQ(f.compOps(), 8u);
    EXPECT_EQ(d.compOps(), 12u);
}

TEST(HashFn, KernelHashMatchesListing1)
{
    // HASH(X) = ((X & MASK) ^ HPRIME) with MASK/HPRIME from the IR.
    HashFn k = HashFn::kernelMaskXor();
    const u64 mask = k.steps()[0].constant;
    const u64 prime = k.steps()[1].constant;
    for (u64 x : {0ull, 1ull, 0xFFFFull, 0x123456789ull})
        EXPECT_EQ(k(x), (x & mask) ^ prime);
}

/** Property: every preset spreads dense keys well across buckets. */
class HashQuality : public ::testing::TestWithParam<int>
{
};

TEST_P(HashQuality, DenseKeysSpreadUniformly)
{
    HashFn fn = GetParam() == 0   ? HashFn::kernelMaskXor()
                : GetParam() == 1 ? HashFn::monetdbRobust()
                : GetParam() == 2 ? HashFn::fibonacciShiftAdd()
                                  : HashFn::doubleKey();
    const u64 buckets = 1024;
    const u64 n = 64 * buckets;
    std::vector<u32> load(buckets, 0);
    for (u64 k = 1; k <= n; ++k) {
        u64 key = GetParam() == 3 ? f64Bits(double(k) * 1.25) : k;
        ++load[fn(key) & (buckets - 1)];
    }
    // Chi-squared-ish check: no bucket more than 3x the mean.
    for (u64 b = 0; b < buckets; ++b)
        ASSERT_LE(load[b], 3 * 64u) << fn.name() << " bucket " << b;
}

INSTANTIATE_TEST_SUITE_P(AllPresets, HashQuality,
                         ::testing::Range(0, 4));

class BatchHash : public ::testing::TestWithParam<int>
{
};

/** hashBatch (the vectorized dispatcher kernel) must agree with the
 *  scalar operator() for every preset. */
TEST_P(BatchHash, AgreesWithScalarHash)
{
    const HashFn fn = GetParam() == 0   ? HashFn::kernelMaskXor()
                      : GetParam() == 1 ? HashFn::monetdbRobust()
                      : GetParam() == 2 ? HashFn::fibonacciShiftAdd()
                                        : HashFn::doubleKey();
    Rng rng(7 + GetParam());
    std::vector<u64> keys(257); // deliberately not a batch multiple
    for (u64 &k : keys)
        k = rng.next();
    std::vector<u64> hashes(keys.size());
    fn.hashBatch(keys, hashes);
    for (std::size_t i = 0; i < keys.size(); ++i)
        ASSERT_EQ(hashes[i], fn(keys[i])) << "key index " << i;
}

/** hashBatch supports in-place hashing (out aliases keys). */
TEST_P(BatchHash, InPlaceAliasing)
{
    const HashFn fn = GetParam() % 2 ? HashFn::monetdbRobust()
                                     : HashFn::doubleKey();
    Rng rng(11 + GetParam());
    std::vector<u64> keys(64);
    for (u64 &k : keys)
        k = rng.next();
    std::vector<u64> expected(keys.size());
    fn.hashBatch(keys, expected);
    fn.hashBatch(keys, keys); // in place
    EXPECT_EQ(keys, expected);
}

INSTANTIATE_TEST_SUITE_P(AllPresets, BatchHash,
                         ::testing::Range(0, 4));

TEST(HashIndex, InsertAndLookup)
{
    Arena arena;
    IndexSpec spec;
    spec.buckets = 64;
    HashIndex idx(spec, arena);
    idx.insert(10, 100);
    idx.insert(20, 200);
    EXPECT_EQ(idx.lookup(10), 100u);
    EXPECT_EQ(idx.lookup(20), 200u);
    EXPECT_EQ(idx.lookup(30), kNotFound);
    EXPECT_EQ(idx.entries(), 2u);
}

TEST(HashIndex, DuplicateKeysAllMatch)
{
    Arena arena;
    IndexSpec spec;
    spec.buckets = 16;
    HashIndex idx(spec, arena);
    for (u64 p = 0; p < 5; ++p)
        idx.insert(7, p);
    std::multiset<u64> payloads;
    u64 n = idx.probe(7, [&](u64 p) { payloads.insert(p); });
    EXPECT_EQ(n, 5u);
    EXPECT_EQ(payloads.size(), 5u);
    EXPECT_EQ(*payloads.begin(), 0u);
}

TEST(HashIndex, IndirectKeysResolveThroughColumn)
{
    Arena arena;
    Column keys("k", ValueKind::U64, arena, 100);
    for (u64 i = 0; i < 100; ++i)
        keys.push(i * 7 + 1);
    IndexSpec spec;
    spec.buckets = 128;
    spec.indirectKeys = true;
    HashIndex idx(spec, arena);
    idx.buildFromColumn(keys);
    for (u64 i = 0; i < 100; ++i)
        EXPECT_EQ(idx.lookup(i * 7 + 1), i);
    EXPECT_EQ(idx.lookup(5), kNotFound);
}

TEST(HashIndex, BucketArrayIsCacheLineAligned)
{
    Arena arena;
    IndexSpec spec;
    spec.buckets = 8;
    HashIndex idx(spec, arena);
    EXPECT_EQ(idx.bucketArrayAddr() % kCacheBlockBytes, 0u);
    EXPECT_EQ(idx.tagArrayAddr() % kCacheBlockBytes, 0u);
}

/** The tag filter must never produce a false negative: every
 *  inserted key's bucket passes tagMayMatch for that key's hash. */
TEST(HashIndex, TagFilterHasNoFalseNegatives)
{
    Rng rng(5);
    Arena arena;
    IndexSpec spec;
    spec.buckets = 128;
    HashIndex idx(spec, arena);
    std::vector<u64> keys;
    for (int i = 0; i < 1000; ++i) {
        const u64 key = 1 + rng.below(5000);
        idx.insert(key, u64(i));
        keys.push_back(key);
    }
    for (u64 key : keys) {
        const u64 h = idx.hashKey(key);
        EXPECT_TRUE(idx.tagMayMatch(h & idx.bucketMask(), h));
    }
}

/** The fingerprint must not collapse to a single bit. Mixing
 *  hashes get all 8 bits; even Listing 1's near-identity MASK/XOR
 *  hash (32 significant bits, no avalanche) must spread dense keys
 *  over several fingerprints, not degenerate to an emptiness
 *  check on small tables. */
TEST(HashIndex, TagFingerprintSpreadsForNarrowHashes)
{
    for (const HashFn &fn :
         {HashFn::monetdbRobust(), HashFn::fibonacciShiftAdd(),
          HashFn::doubleKey()}) {
        std::set<u8> bits;
        for (u64 k = 1; k <= 512; ++k)
            bits.insert(HashIndex::tagOf(fn(k)));
        EXPECT_EQ(bits.size(), 8u) << fn.name();
    }
    // Dense keys at the kernel workload's scale (>= 4K tuples).
    const HashFn kernel = HashFn::kernelMaskXor();
    std::set<u8> bits;
    for (u64 k = 1; k <= 8192; ++k)
        bits.insert(HashIndex::tagOf(kernel(k)));
    EXPECT_EQ(bits.size(), 8u) << kernel.name();
}

/** The batched fingerprint filter — AVX2-dispatched and scalar —
 *  must agree bit-for-bit with the per-key tag check, including at
 *  non-multiple-of-4 lengths (the SIMD kernel's tail) and at the
 *  very end of the tag array (the gather's padded overread). */
TEST(HashIndex, TagFilterBatchAgreesWithPerKeyCheck)
{
    Rng rng(12);
    Arena arena;
    IndexSpec spec;
    spec.buckets = 512;
    HashIndex idx(spec, arena);
    for (int i = 0; i < 400; ++i)
        idx.insert(1 + rng.below(600), u64(i));

    for (std::size_t n : {std::size_t(1), std::size_t(3),
                          std::size_t(64), std::size_t(257),
                          std::size_t(1024)}) {
        std::vector<u64> hashes(n);
        for (std::size_t i = 0; i < n; ++i)
            hashes[i] = idx.hashKey(1 + rng.below(1200));
        // Force some hashes onto the last bucket so the AVX2 gather
        // exercises the padded tail of the tag array.
        if (n >= 4)
            hashes[n - 1] |= idx.bucketMask();

        std::vector<u64> bits((n + 63) / 64, ~u64(0));
        std::vector<u64> bits_scalar((n + 63) / 64, ~u64(0));
        const u64 got = idx.tagFilterBatch(hashes.data(), n,
                                           bits.data());
        const u64 got_scalar = idx.tagFilterBatchScalar(
            hashes.data(), n, bits_scalar.data());
        ASSERT_EQ(got, got_scalar) << "n " << n;

        u64 want = 0;
        for (std::size_t i = 0; i < n; ++i) {
            const bool may =
                idx.tagMayMatch(hashes[i] & idx.bucketMask(),
                                hashes[i]);
            want += may;
            ASSERT_EQ(bool(bits[i >> 6] >> (i & 63) & 1), may)
                << "n " << n << " i " << i;
            ASSERT_EQ(bits[i >> 6], bits_scalar[i >> 6]);
        }
        ASSERT_EQ(got, want) << "n " << n;
    }
}

/** tagFilterBatch feeds the adaptive-tagging stats; the
 *  recommendation follows the observed reject rate once the sample
 *  is large enough (and honors the fallback before that). */
TEST(HashIndex, TagFilterStatsDriveAdaptiveRecommendation)
{
    Rng rng(13);
    Arena arena;
    IndexSpec spec;
    spec.buckets = 1024;
    HashIndex idx(spec, arena);
    for (u64 k = 1; k <= 1024; ++k)
        idx.insert(k, k);

    // Cold: no sample yet, recommendation echoes the fallback.
    EXPECT_TRUE(idx.taggedWorthwhile(true));
    EXPECT_FALSE(idx.taggedWorthwhile(false));

    u64 bits[HashIndex::kMaxProbeBatch / 64];
    u64 hashes[HashIndex::kMaxProbeBatch];

    // Hit-dominated sweeps: every key present, nothing rejected.
    for (int round = 0;
         round * HashIndex::kMaxProbeBatch <
         TagFilterStats::kMinSampleKeys;
         ++round) {
        for (std::size_t i = 0; i < HashIndex::kMaxProbeBatch; ++i)
            hashes[i] = idx.hashKey(1 + rng.below(1024));
        idx.tagFilterBatch(hashes, HashIndex::kMaxProbeBatch, bits);
    }
    EXPECT_GE(idx.tagStats().keys(),
              TagFilterStats::kMinSampleKeys);
    EXPECT_LT(idx.tagStats().rejectRate(), 0.05);
    EXPECT_FALSE(idx.taggedWorthwhile(true)); // filter off

    // Miss-heavy sweeps swing the recommendation back on.
    idx.tagStats().reset();
    for (int round = 0;
         round * HashIndex::kMaxProbeBatch <
         TagFilterStats::kMinSampleKeys;
         ++round) {
        for (std::size_t i = 0; i < HashIndex::kMaxProbeBatch; ++i)
            hashes[i] = idx.hashKey(100000 + rng.below(100000));
        idx.tagFilterBatch(hashes, HashIndex::kMaxProbeBatch, bits);
    }
    EXPECT_GT(idx.tagStats().rejectRate(), 0.3);
    EXPECT_TRUE(idx.taggedWorthwhile(false)); // filter on
}

/** Exponential aging is idempotent per window: exactly one halving
 *  per kWindowKeys of lifetime traffic, however the sweeps land. */
TEST(HashIndex, TagFilterStatsAgingIsIdempotent)
{
    TagFilterStats stats;

    // Single-threaded reference: one crossing, one halving.
    stats.note(TagFilterStats::kWindowKeys, 0);
    EXPECT_EQ(stats.agings(), 1u);
    EXPECT_EQ(stats.keys(), TagFilterStats::kWindowKeys / 2);

    // A second window crossing ages exactly once more.
    stats.note(TagFilterStats::kWindowKeys, 0);
    EXPECT_EQ(stats.agings(), 2u);
    EXPECT_EQ(stats.keys(),
              (TagFilterStats::kWindowKeys / 2 +
               TagFilterStats::kWindowKeys) /
                  2);
}

/** The TSan-raced version of the aging test: threads that cross the
 *  window boundary concurrently must age the counters exactly once
 *  per window (the old racy halving could halve twice, quartering
 *  the counters), and the observed reject rate must survive aging.
 *  Raced under the CI TSan job. */
TEST(HashIndex, TagFilterStatsAgingRacesHalveOncePerWindow)
{
    TagFilterStats stats;
    constexpr unsigned kThreads = 4;
    constexpr unsigned kNotesPerThread = 64;
    // Each note lands half a window with a 50% reject rate, so
    // every second note (somewhere) crosses a window boundary and
    // several threads routinely cross the same one together.
    constexpr u64 kNoteKeys = TagFilterStats::kWindowKeys / 2;

    std::vector<std::thread> threads;
    for (unsigned t = 0; t < kThreads; ++t)
        threads.emplace_back([&] {
            for (unsigned i = 0; i < kNotesPerThread; ++i)
                stats.note(kNoteKeys, kNoteKeys / 2);
        });
    for (auto &t : threads)
        t.join();

    const u64 lifetime = u64(kThreads) * kNotesPerThread * kNoteKeys;
    // Idempotency: agings is exactly lifetime / window, not "at
    // least" — a double halving would need a second epoch bump.
    EXPECT_EQ(stats.agings(),
              lifetime / TagFilterStats::kWindowKeys);
    // Aging halves keys and rejects together, so the steered-by
    // signal — the reject rate — stays at the true 50% (store/add
    // races may lose boundary increments; allow a small wobble).
    EXPECT_NEAR(stats.rejectRate(), 0.5, 0.05);
    // And the counters stay within one window of traffic instead of
    // collapsing toward zero under repeated double-halving.
    EXPECT_LE(stats.keys(), 2 * TagFilterStats::kWindowKeys);
    EXPECT_GE(stats.keys(), TagFilterStats::kWindowKeys / 4);
}

/** Empty buckets carry tag 0 and reject every probe with the one
 *  byte load; tagged and untagged probes agree everywhere. */
TEST(HashIndex, TaggedAndUntaggedProbesAgree)
{
    Rng rng(6);
    Arena arena;
    IndexSpec spec;
    spec.buckets = 512;
    HashIndex idx(spec, arena);
    for (int i = 0; i < 300; ++i)
        idx.insert(1 + rng.below(400), u64(i));
    for (u64 key = 1; key <= 1200; ++key) {
        const u64 h = idx.hashKey(key);
        u64 tagged = idx.probeHashed(key, h, [](u64) {}, true);
        u64 untagged = idx.probeHashed(key, h, [](u64) {}, false);
        ASSERT_EQ(tagged, untagged) << "key " << key;
    }
}

/** probeBatch must emit the same (position, payload) stream as the
 *  per-key probe loop, across batch sizes and layouts. */
TEST(HashIndex, ProbeBatchMatchesScalarProbe)
{
    Rng rng(9);
    Arena arena;
    Column build("b", ValueKind::U64, arena, 600);
    for (int i = 0; i < 600; ++i)
        build.push(1 + rng.below(300));
    for (bool indirect : {false, true}) {
        IndexSpec spec;
        spec.buckets = 256;
        spec.indirectKeys = indirect;
        HashIndex idx(spec, arena);
        idx.buildFromColumn(build);

        std::vector<u64> probes;
        for (int i = 0; i < 997; ++i)
            probes.push_back(1 + rng.below(400));

        std::vector<std::pair<std::size_t, u64>> want;
        u64 want_n = 0;
        for (std::size_t i = 0; i < probes.size(); ++i)
            want_n += idx.probe(probes[i], [&](u64 p) {
                want.push_back({i, p});
            });

        for (std::size_t batch : {1u, 7u, 64u, 1024u}) {
            for (bool tagged : {false, true}) {
                std::vector<std::pair<std::size_t, u64>> got;
                u64 got_n = idx.probeBatch(
                    probes,
                    [&](std::size_t i, u64 key, u64 p) {
                        EXPECT_EQ(key, probes[i]);
                        got.push_back({i, p});
                    },
                    tagged, batch);
                ASSERT_EQ(got_n, want_n);
                ASSERT_EQ(got, want)
                    << "batch " << batch << " tagged " << tagged;
            }
        }
    }
}

/** Property: for random builds, probe() agrees with a std::multimap
 *  oracle, and depth statistics are consistent. */
class IndexOracle : public ::testing::TestWithParam<int>
{
};

TEST_P(IndexOracle, MatchesMultimap)
{
    Rng rng(GetParam());
    Arena arena;
    IndexSpec spec;
    spec.buckets = 256;
    spec.hashFn = GetParam() % 2 ? HashFn::monetdbRobust()
                                 : HashFn::fibonacciShiftAdd();
    HashIndex idx(spec, arena);
    std::multimap<u64, u64> oracle;
    for (int i = 0; i < 2000; ++i) {
        u64 key = 1 + rng.below(500);
        idx.insert(key, u64(i));
        oracle.insert({key, u64(i)});
    }
    for (u64 key = 1; key <= 500; ++key) {
        std::multiset<u64> got;
        idx.probe(key, [&](u64 p) { got.insert(p); });
        auto [lo, hi] = oracle.equal_range(key);
        std::multiset<u64> want;
        for (auto it = lo; it != hi; ++it)
            want.insert(it->second);
        ASSERT_EQ(got, want) << "key " << key;
    }
    EXPECT_EQ(idx.entries(), 2000u);
    EXPECT_GE(idx.maxBucketDepth(), u64(idx.avgBucketDepth()));
    EXPECT_GT(idx.footprintBytes(),
              idx.numBuckets() * sizeof(HashIndex::Bucket));
}

INSTANTIATE_TEST_SUITE_P(Seeds, IndexOracle, ::testing::Range(1, 6));

TEST(Scan, SelectCountGather)
{
    Arena arena;
    Column c("c", ValueKind::U64, arena, 10);
    for (u64 i = 0; i < 10; ++i)
        c.push(i);
    RangePredicate pred{3, 6};
    std::vector<RowId> rows = scanSelect(c, pred);
    EXPECT_EQ(rows.size(), 4u);
    EXPECT_EQ(scanCount(c, pred), 4u);
    std::vector<u64> vals = scanGather(c, rows);
    EXPECT_EQ(vals, (std::vector<u64>{3, 4, 5, 6}));
}

TEST(HashJoin, MatchesNestedLoopOracle)
{
    Rng rng(3);
    Arena arena;
    Column build("b", ValueKind::U64, arena, 200);
    Column probe("p", ValueKind::U64, arena, 500);
    for (int i = 0; i < 200; ++i)
        build.push(1 + rng.below(100));
    for (int i = 0; i < 500; ++i)
        probe.push(1 + rng.below(150));

    IndexSpec spec;
    spec.buckets = 256;
    JoinResult jr = hashJoin(build, probe, spec, arena, true);

    u64 oracle = 0;
    for (RowId b = 0; b < build.size(); ++b)
        for (RowId p = 0; p < probe.size(); ++p)
            if (build.at(b) == probe.at(p))
                ++oracle;
    EXPECT_EQ(jr.matches, oracle);
    EXPECT_EQ(jr.pairs.size(), oracle);
    EXPECT_EQ(jr.probes, 500u);
}

TEST(HashJoin, WalkerPoolAgreesWithSingleThread)
{
    Rng rng(17);
    Arena arena;
    Column build("b", ValueKind::U64, arena, 4096);
    Column probe("p", ValueKind::U64, arena, 20000);
    for (int i = 0; i < 4096; ++i)
        build.push(1 + rng.below(2048));
    for (int i = 0; i < 20000; ++i)
        probe.push(1 + rng.below(4096)); // ~half the probes miss

    IndexSpec spec;
    spec.buckets = 4096;
    JoinResult ref = hashJoin(build, probe, spec, arena, true);

    auto pairMultiset = [](const JoinResult &jr) {
        std::multiset<std::pair<u64, u64>> m;
        for (const JoinPair &p : jr.pairs)
            m.insert({p.buildRow, p.probeRow});
        return m;
    };
    const auto refPairs = pairMultiset(ref);

    for (unsigned walkers : {2u, 4u})
        for (bool tagged : {false, true}) {
            sw::PipelineConfig cfg{.tagged = tagged,
                                   .walkers = walkers};
            Arena pool_arena;
            JoinResult jr =
                hashJoin(build, probe, spec, pool_arena, true, cfg);
            EXPECT_EQ(jr.matches, ref.matches);
            EXPECT_EQ(pairMultiset(jr), refPairs);
        }
}

TEST(HashJoin, WalkerPoolWidensNarrowProbeColumns)
{
    Rng rng(23);
    Arena arena;
    Column build("b", ValueKind::U64, arena, 512);
    Column probe("p", ValueKind::U32, arena, 5000);
    for (int i = 0; i < 512; ++i)
        build.push(1 + rng.below(256));
    for (int i = 0; i < 5000; ++i)
        probe.push(1 + rng.below(512));

    IndexSpec spec;
    spec.buckets = 512;
    HashIndex idx(spec, arena);
    idx.buildFromColumn(build);

    JoinResult ref = probeAll(idx, probe, true);
    sw::PipelineConfig cfg{.walkers = 3};
    JoinResult got = probeAll(idx, probe, true, cfg);
    EXPECT_EQ(got.matches, ref.matches);
    EXPECT_EQ(got.probes, ref.probes);

    std::multiset<std::pair<u64, u64>> refm, gotm;
    for (const JoinPair &p : ref.pairs)
        refm.insert({p.buildRow, p.probeRow});
    for (const JoinPair &p : got.pairs)
        gotm.insert({p.buildRow, p.probeRow});
    EXPECT_EQ(gotm, refm);
}

TEST(Sort, SortRowsAndValues)
{
    Arena arena;
    Column c("c", ValueKind::U64, arena, 5);
    for (u64 v : {5ull, 1ull, 4ull, 2ull, 3ull})
        c.push(v);
    std::vector<u64> vals = sortValues(c);
    EXPECT_TRUE(std::is_sorted(vals.begin(), vals.end()));
    std::vector<RowId> rows = sortRows(c);
    EXPECT_EQ(c.at(rows[0]), 1u);
    EXPECT_EQ(c.at(rows[4]), 5u);
}

TEST(Sort, SortMergeJoinAgreesWithHashJoin)
{
    Rng rng(5);
    Arena arena;
    Column l("l", ValueKind::U64, arena, 300);
    Column r("r", ValueKind::U64, arena, 400);
    for (int i = 0; i < 300; ++i)
        l.push(1 + rng.below(80));
    for (int i = 0; i < 400; ++i)
        r.push(1 + rng.below(80));
    IndexSpec spec;
    spec.buckets = 128;
    JoinResult hj = hashJoin(l, r, spec, arena, false);
    JoinResult smj = sortMergeJoin(l, r, false);
    EXPECT_EQ(hj.matches, smj.matches);
}

TEST(Aggregate, SumMaxGroupDistinct)
{
    Arena arena;
    Column grp("g", ValueKind::U64, arena, 6);
    Column val("v", ValueKind::U64, arena, 6);
    for (u64 i = 0; i < 6; ++i) {
        grp.push(i % 2);
        val.push(i);
    }
    std::vector<RowId> all{0, 1, 2, 3, 4, 5};
    EXPECT_EQ(aggregateSum(val, all), 15u);
    EXPECT_EQ(aggregateMax(val, all), 5u);
    auto groups = groupBySum(grp, val, all);
    EXPECT_EQ(groups[0], 0u + 2 + 4);
    EXPECT_EQ(groups[1], 1u + 3 + 5);
    EXPECT_EQ(countDistinct(grp, all), 2u);
}

TEST(Plan, BreakdownFractionsSumToOne)
{
    db::PlanBreakdown bd;
    bd.add(OpClass::Index, 2.0);
    bd.add(OpClass::Scan, 1.0);
    bd.add(OpClass::SortJoin, 0.5);
    bd.add(OpClass::Other, 0.5);
    EXPECT_DOUBLE_EQ(bd.total(), 4.0);
    double sum = 0.0;
    for (auto c : {OpClass::Index, OpClass::Scan, OpClass::SortJoin,
                   OpClass::Other})
        sum += bd.fraction(c);
    EXPECT_DOUBLE_EQ(sum, 1.0);
    EXPECT_DOUBLE_EQ(bd.fraction(OpClass::Index), 0.5);
}
