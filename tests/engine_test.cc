/**
 * @file
 * End-to-end tests of the Widx engine: functional equivalence against
 * the scalar reference probe, across walker counts, schemas, hash
 * functions, and design points.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <map>

#include "accel/engine.hh"
#include "common/arena.hh"
#include "common/rng.hh"
#include "db/hash_join.hh"

using namespace widx;
using namespace widx::accel;

namespace {

struct Fixture
{
    Arena arena;
    std::unique_ptr<db::Column> build;
    std::unique_ptr<db::Column> probe;
    std::unique_ptr<db::HashIndex> index;
    u64 *outRegion = nullptr;
    u64 outPairs = 0;

    Fixture(u64 build_rows, u64 probe_rows, const db::IndexSpec &spec,
            u64 key_space, u64 seed = 42)
    {
        Rng rng(seed);
        build = std::make_unique<db::Column>("build", db::ValueKind::U64,
                                             arena, build_rows);
        probe = std::make_unique<db::Column>("probe", db::ValueKind::U64,
                                             arena, probe_rows);
        for (u64 i = 0; i < build_rows; ++i)
            build->push(rng.below(key_space));
        for (u64 i = 0; i < probe_rows; ++i)
            probe->push(rng.below(key_space));
        index = std::make_unique<db::HashIndex>(spec, arena);
        index->buildFromColumn(*build);
        // Worst case: every probe matches every node in its bucket.
        outPairs = probe_rows * (index->maxBucketDepth() + 1) + 8;
        outRegion = arena.makeArray<u64>(outPairs * 2);
    }

    OffloadSpec
    offload() const
    {
        OffloadSpec spec;
        spec.index = index.get();
        spec.probeKeys = probe.get();
        spec.outBase = Addr(reinterpret_cast<std::uintptr_t>(outRegion));
        return spec;
    }

    /** Multiset of {key, payload} pairs from the scalar reference. */
    std::multiset<std::pair<u64, u64>>
    referenceMatches() const
    {
        std::multiset<std::pair<u64, u64>> ref;
        for (RowId r = 0; r < probe->size(); ++r) {
            u64 key = probe->at(r);
            index->probe(key, [&](u64 payload) {
                ref.insert({key, payload});
            });
        }
        return ref;
    }

    /** Multiset of pairs the producer wrote to the results region. */
    std::multiset<std::pair<u64, u64>>
    engineMatches(u64 count) const
    {
        std::multiset<std::pair<u64, u64>> got;
        for (u64 i = 0; i < count; ++i)
            got.insert({outRegion[2 * i], outRegion[2 * i + 1]});
        return got;
    }
};

db::IndexSpec
spec(u64 buckets, db::HashFn fn, bool indirect = false)
{
    db::IndexSpec s;
    s.buckets = buckets;
    s.hashFn = std::move(fn);
    s.indirectKeys = indirect;
    return s;
}

} // namespace

TEST(Engine, MatchesScalarReferenceSingleWalker)
{
    Fixture f(1000, 3000, spec(1024, db::HashFn::kernelMaskXor()),
              2000);
    EngineConfig cfg;
    cfg.numWalkers = 1;
    cfg.warmupFraction = 0.0;
    EngineResult r = runOffload(f.offload(), cfg);
    EXPECT_EQ(r.probes, 3000u);
    auto ref = f.referenceMatches();
    EXPECT_EQ(r.matches, ref.size());
    EXPECT_EQ(f.engineMatches(r.matches), ref);
}

TEST(Engine, MatchesScalarReferenceFourWalkers)
{
    Fixture f(2000, 6000, spec(2048, db::HashFn::monetdbRobust()),
              4000);
    EngineConfig cfg;
    cfg.numWalkers = 4;
    cfg.warmupFraction = 0.0;
    EngineResult r = runOffload(f.offload(), cfg);
    auto ref = f.referenceMatches();
    EXPECT_EQ(r.matches, ref.size());
    EXPECT_EQ(f.engineMatches(r.matches), ref);
}

TEST(Engine, IndirectKeysMatchScalarReference)
{
    Fixture f(1500, 4000,
              spec(2048, db::HashFn::fibonacciShiftAdd(), true),
              3000);
    EngineConfig cfg;
    cfg.numWalkers = 2;
    cfg.warmupFraction = 0.0;
    EngineResult r = runOffload(f.offload(), cfg);
    auto ref = f.referenceMatches();
    EXPECT_EQ(r.matches, ref.size());
    EXPECT_EQ(f.engineMatches(r.matches), ref);
}

TEST(Engine, PerWalkerDispatchersMatchReference)
{
    Fixture f(1000, 3000, spec(1024, db::HashFn::monetdbRobust()),
              2000);
    EngineConfig cfg;
    cfg.numWalkers = 4;
    cfg.sharedDispatcher = false;
    cfg.warmupFraction = 0.0;
    EngineResult r = runOffload(f.offload(), cfg);
    auto ref = f.referenceMatches();
    EXPECT_EQ(r.matches, ref.size());
    EXPECT_EQ(f.engineMatches(r.matches), ref);
}

TEST(Engine, CombinedContextsMatchReferenceCount)
{
    Fixture f(1000, 3000, spec(1024, db::HashFn::kernelMaskXor()),
              2000);
    EngineConfig cfg;
    cfg.warmupFraction = 0.0;
    Engine engine(f.offload(), cfg);
    EngineResult r = engine.runCombined(2);
    auto ref = f.referenceMatches();
    EXPECT_EQ(r.matches, ref.size());
}

TEST(Engine, MoreWalkersNeverSlower)
{
    Fixture f(20000, 40000, spec(32768, db::HashFn::monetdbRobust()),
              40000);
    EngineConfig cfg;
    cfg.warmupFraction = 0.0;
    cfg.numWalkers = 1;
    EngineResult r1 = runOffload(f.offload(), cfg);
    cfg.numWalkers = 4;
    EngineResult r4 = runOffload(f.offload(), cfg);
    EXPECT_EQ(r1.matches, r4.matches);
    EXPECT_LT(r4.measuredCycles, r1.measuredCycles);
}

TEST(Engine, WalkerBreakdownCoversMeasuredWindow)
{
    Fixture f(5000, 10000, spec(8192, db::HashFn::monetdbRobust()),
              10000);
    EngineConfig cfg;
    cfg.numWalkers = 2;
    cfg.warmupFraction = 0.1;
    EngineResult r = runOffload(f.offload(), cfg);
    // Each walker is accounted every cycle of the measured window
    // (within a small tolerance for start/drain skew).
    for (const UnitBreakdown &b : r.perWalker) {
        EXPECT_NEAR(double(b.total()), double(r.measuredCycles),
                    0.05 * double(r.measuredCycles) + 200.0);
    }
}

TEST(Engine, DoubleKeysMatchReference)
{
    Arena arena;
    Rng rng(7);
    const u64 n = 2000;
    db::Column build("b", db::ValueKind::F64, arena, n);
    db::Column probe("p", db::ValueKind::F64, arena, 3 * n);
    for (u64 i = 0; i < n; ++i)
        build.push(db::f64Bits(double(rng.below(1000)) * 1.25));
    for (u64 i = 0; i < 3 * n; ++i)
        probe.push(db::f64Bits(double(rng.below(1000)) * 1.25));
    db::HashIndex index(spec(2048, db::HashFn::doubleKey()), arena);
    index.buildFromColumn(build);
    u64 *out = arena.makeArray<u64>((3 * n) * 64);

    OffloadSpec off;
    off.index = &index;
    off.probeKeys = &probe;
    off.outBase = Addr(reinterpret_cast<std::uintptr_t>(out));
    EngineConfig cfg;
    cfg.numWalkers = 4;
    cfg.warmupFraction = 0.0;
    EngineResult r = runOffload(off, cfg);

    u64 ref = 0;
    for (RowId i = 0; i < probe.size(); ++i)
        ref += index.probe(probe.at(i));
    EXPECT_EQ(r.matches, ref);
}

TEST(Engine, ConfigLoadCostsCycles)
{
    Fixture f(100, 200, spec(128, db::HashFn::kernelMaskXor()), 150);
    EngineConfig cfg;
    cfg.warmupFraction = 0.0;
    EngineResult with = runOffload(f.offload(), cfg);
    cfg.modelConfigLoad = false;
    EngineResult without = runOffload(f.offload(), cfg);
    EXPECT_GT(with.configCycles, 0u);
    EXPECT_EQ(without.configCycles, 0u);
    EXPECT_EQ(with.matches, without.matches);
}

TEST(Engine, QueueDepthOneStillCorrect)
{
    Fixture f(500, 1500, spec(512, db::HashFn::monetdbRobust()), 1000);
    EngineConfig cfg;
    cfg.numWalkers = 3;
    cfg.queueDepth = 1;
    cfg.warmupFraction = 0.0;
    EngineResult r = runOffload(f.offload(), cfg);
    auto ref = f.referenceMatches();
    EXPECT_EQ(r.matches, ref.size());
    EXPECT_EQ(f.engineMatches(r.matches), ref);
}
