/**
 * @file
 * Tests for the latency instrumentation (src/common/latency.hh):
 * bucket-boundary exactness, merge associativity, percentile
 * correctness against a sorted-vector oracle, and the concurrent
 * sharded recorder.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <thread>
#include <vector>

#include "common/latency.hh"
#include "common/rng.hh"

using namespace widx;

namespace {

/** Oracle percentile: the rank-ceil(p/100 * n) element (1-based)
 *  of the sorted sample — the same rank convention the histogram
 *  uses. */
u64
oraclePercentile(std::vector<u64> sorted, double p)
{
    std::sort(sorted.begin(), sorted.end());
    std::size_t rank = std::size_t(
        std::ceil(p / 100.0 * double(sorted.size())));
    rank = std::clamp<std::size_t>(rank, 1, sorted.size());
    return sorted[rank - 1];
}

/** Mixed-magnitude sample: ns through tens of seconds. */
std::vector<u64>
mixedSample(std::size_t n, u64 seed)
{
    Rng rng(seed);
    std::vector<u64> xs;
    xs.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
        const unsigned mag = unsigned(rng.below(11)); // 10^0..10^10
        u64 scale = 1;
        for (unsigned m = 0; m < mag; ++m)
            scale *= 10;
        xs.push_back(rng.below(scale * 9) + scale);
    }
    return xs;
}

} // namespace

// ---------------------------------------------------------------------------
// Bucket layout
// ---------------------------------------------------------------------------

TEST(LatencyHistogram, SmallValuesAreExactBuckets)
{
    for (u64 v = 0; v < 2 * LatencyHistogram::kSub; ++v) {
        const unsigned b = LatencyHistogram::bucketOf(v);
        EXPECT_EQ(b, unsigned(v));
        EXPECT_EQ(LatencyHistogram::bucketLowNs(b), v);
        EXPECT_EQ(LatencyHistogram::bucketHighNs(b), v);
    }
}

TEST(LatencyHistogram, BucketBoundsContainTheirValues)
{
    // Sweep powers of two and their neighborhoods: every value must
    // land in a bucket whose [low, high] range contains it, with
    // relative width <= 2^-kSubBits.
    std::vector<u64> probes;
    for (unsigned h = 0; h < 64; ++h) {
        const u64 base = u64(1) << h;
        for (i64 d : {-2, -1, 0, 1, 2, 17})
            if ((d >= 0 || base > u64(-d)) &&
                (d <= 0 || base + u64(d) >= base))
                probes.push_back(base + u64(d));
    }
    probes.push_back(~u64{0});
    for (u64 v : probes) {
        const unsigned b = LatencyHistogram::bucketOf(v);
        ASSERT_LT(b, LatencyHistogram::kBuckets);
        const u64 lo = LatencyHistogram::bucketLowNs(b);
        const u64 hi = LatencyHistogram::bucketHighNs(b);
        EXPECT_LE(lo, v) << "v=" << v;
        EXPECT_GE(hi, v) << "v=" << v;
        if (v >= 2 * LatencyHistogram::kSub) {
            // Relative bucket width bound (exact below that).
            EXPECT_LE(hi - lo + 1,
                      std::max<u64>(1, v >> LatencyHistogram::kSubBits)
                          + 1)
                << "v=" << v;
        }
    }
}

TEST(LatencyHistogram, BucketIndexIsMonotoneInValue)
{
    // Adjacent bucket boundaries: bucketOf must be nondecreasing
    // across every low/high edge.
    for (unsigned b = 0; b + 1 < LatencyHistogram::kBuckets; ++b) {
        EXPECT_EQ(LatencyHistogram::bucketOf(
                      LatencyHistogram::bucketLowNs(b)),
                  b);
        EXPECT_EQ(LatencyHistogram::bucketOf(
                      LatencyHistogram::bucketHighNs(b)),
                  b);
        EXPECT_EQ(LatencyHistogram::bucketLowNs(b + 1),
                  LatencyHistogram::bucketHighNs(b) + 1);
    }
}

// ---------------------------------------------------------------------------
// Merge
// ---------------------------------------------------------------------------

TEST(LatencyHistogram, MergeIsAssociativeAndCommutative)
{
    auto fill = [](u64 seed) {
        LatencyHistogram h;
        for (u64 v : mixedSample(2000, seed))
            h.record(v);
        return h;
    };
    const LatencyHistogram a = fill(1), b = fill(2), c = fill(3);

    LatencyHistogram ab_c = a;
    ab_c.merge(b);
    ab_c.merge(c);

    LatencyHistogram bc = b;
    bc.merge(c);
    LatencyHistogram a_bc = a;
    a_bc.merge(bc);

    LatencyHistogram cba = c;
    cba.merge(b);
    cba.merge(a);

    for (const LatencyHistogram *o : {&a_bc, &cba}) {
        EXPECT_EQ(ab_c.count(), o->count());
        EXPECT_EQ(ab_c.sumNs(), o->sumNs());
        EXPECT_EQ(ab_c.maxNs(), o->maxNs());
        for (unsigned bk = 0; bk < LatencyHistogram::kBuckets; ++bk)
            ASSERT_EQ(ab_c.bucketCount(bk), o->bucketCount(bk))
                << "bucket " << bk;
    }
    // And the summaries agree wholesale.
    const LatencySnapshot s1 = ab_c.summarize();
    const LatencySnapshot s2 = a_bc.summarize();
    EXPECT_EQ(s1.p50Ns, s2.p50Ns);
    EXPECT_EQ(s1.p999Ns, s2.p999Ns);
}

// ---------------------------------------------------------------------------
// Percentiles vs oracle
// ---------------------------------------------------------------------------

TEST(LatencyHistogram, PercentilesMatchSortedVectorOracle)
{
    for (u64 seed : {7u, 8u, 9u}) {
        const std::vector<u64> xs = mixedSample(5000, seed);
        LatencyHistogram h;
        u64 sum = 0, mx = 0;
        for (u64 v : xs) {
            h.record(v);
            sum += v;
            mx = std::max(mx, v);
        }
        EXPECT_EQ(h.count(), xs.size());
        EXPECT_EQ(h.sumNs(), sum);
        EXPECT_EQ(h.maxNs(), mx);

        for (double p : {10.0, 50.0, 90.0, 99.0, 99.9, 100.0}) {
            const u64 want = oraclePercentile(xs, p);
            const u64 got = h.percentileNs(p);
            // The estimate is the bucket's upper bound: >= the true
            // sample, and within one bucket width (<= 1/32
            // relative) above it.
            EXPECT_GE(got, want) << "p" << p;
            EXPECT_LE(got,
                      want + (want >> LatencyHistogram::kSubBits) + 1)
                << "p" << p;
        }
    }
}

TEST(LatencyHistogram, PercentileLadderIsMonotone)
{
    const std::vector<u64> xs = mixedSample(3000, 11);
    LatencyHistogram h;
    for (u64 v : xs)
        h.record(v);
    const LatencySnapshot s = h.summarize();
    EXPECT_LE(s.p50Ns, s.p90Ns);
    EXPECT_LE(s.p90Ns, s.p99Ns);
    EXPECT_LE(s.p99Ns, s.p999Ns);
    EXPECT_LE(s.p999Ns, s.maxNs);
    EXPECT_EQ(s.count, xs.size());
}

TEST(LatencyHistogram, EmptySummarizesToZero)
{
    const LatencySnapshot s = LatencyHistogram{}.summarize();
    EXPECT_EQ(s.count, 0u);
    EXPECT_EQ(s.p50Ns, 0u);
    EXPECT_EQ(s.p999Ns, 0u);
    EXPECT_EQ(s.maxNs, 0u);
    EXPECT_EQ(s.meanNs(), 0.0);
}

// ---------------------------------------------------------------------------
// Concurrent recorder
// ---------------------------------------------------------------------------

TEST(LatencyRecorder, ConcurrentRecordsAllLand)
{
    LatencyRecorder rec(4);
    constexpr unsigned kThreads = 4;
    constexpr u64 kPerThread = 20000;
    std::vector<std::thread> ts;
    for (unsigned t = 0; t < kThreads; ++t)
        ts.emplace_back([&rec, t] {
            Rng rng(100 + t);
            for (u64 i = 0; i < kPerThread; ++i)
                rec.record(rng.below(1'000'000));
        });
    for (auto &t : ts)
        t.join();

    const LatencyHistogram h = rec.snapshot();
    EXPECT_EQ(h.count(), u64(kThreads) * kPerThread);
    // Reference: same draws recorded sequentially.
    LatencyHistogram want;
    for (unsigned t = 0; t < kThreads; ++t) {
        Rng rng(100 + t);
        for (u64 i = 0; i < kPerThread; ++i)
            want.record(rng.below(1'000'000));
    }
    EXPECT_EQ(h.sumNs(), want.sumNs());
    EXPECT_EQ(h.maxNs(), want.maxNs());
    for (unsigned b = 0; b < LatencyHistogram::kBuckets; ++b)
        ASSERT_EQ(h.bucketCount(b), want.bucketCount(b));
}

TEST(LatencyRecorder, ResetZeroes)
{
    LatencyRecorder rec(2);
    rec.record(123);
    rec.record(45678);
    EXPECT_EQ(rec.snapshot().count(), 2u);
    rec.reset();
    const LatencyHistogram h = rec.snapshot();
    EXPECT_EQ(h.count(), 0u);
    EXPECT_EQ(h.sumNs(), 0u);
    EXPECT_EQ(h.maxNs(), 0u);
}

// ---------------------------------------------------------------------------
// Interval snapshots (windowed sampling for the admission controller)
// ---------------------------------------------------------------------------

TEST(LatencyHistogram, DeltaSinceIsolatesTheWindow)
{
    const std::vector<u64> before = mixedSample(2000, 21);
    const std::vector<u64> after = mixedSample(1500, 22);
    LatencyHistogram h;
    for (u64 v : before)
        h.record(v);
    const LatencyHistogram cursor = h;
    for (u64 v : after)
        h.record(v);

    const LatencyHistogram d = h.deltaSince(cursor);
    // Counts and sum subtract exactly; the window's buckets match a
    // histogram of only the window's values.
    LatencyHistogram want;
    for (u64 v : after)
        want.record(v);
    EXPECT_EQ(d.count(), want.count());
    EXPECT_EQ(d.sumNs(), want.sumNs());
    for (unsigned b = 0; b < LatencyHistogram::kBuckets; ++b)
        ASSERT_EQ(d.bucketCount(b), want.bucketCount(b));
    // Window max is a bucket upper bound: >= the true max, within
    // the histogram's ~3.1% relative error, and never above the
    // cumulative max.
    EXPECT_GE(d.maxNs(), want.maxNs());
    EXPECT_LE(double(d.maxNs()),
              double(want.maxNs()) * (1.0 + 1.0 / 32.0) + 1.0);
    EXPECT_LE(d.maxNs(), h.maxNs());
    // Window percentiles track the window population, not the
    // cumulative one.
    const u64 oracle = oraclePercentile(after, 99.0);
    EXPECT_GE(d.percentileNs(99.0), oracle);
    EXPECT_LE(double(d.percentileNs(99.0)),
              double(oracle) * (1.0 + 1.0 / 32.0) + 1.0);
}

TEST(LatencyHistogram, DeltaSinceEmptyWindowIsEmpty)
{
    LatencyHistogram h;
    h.record(1000);
    h.record(2000);
    const LatencyHistogram d = h.deltaSince(h);
    EXPECT_EQ(d.count(), 0u);
    EXPECT_EQ(d.sumNs(), 0u);
    EXPECT_EQ(d.maxNs(), 0u);
    EXPECT_EQ(d.percentileNs(99.0), 0u);
}

TEST(LatencyRecorder, IntervalSinceAdvancesTheCursor)
{
    LatencyRecorder rec(2);
    LatencyHistogram cursor;
    rec.record(100);
    rec.record(200);

    // First interval from a fresh cursor sees everything so far.
    LatencyHistogram w1 = rec.intervalSince(cursor);
    EXPECT_EQ(w1.count(), 2u);
    EXPECT_EQ(w1.sumNs(), 300u);

    // Nothing new: the next interval is empty.
    EXPECT_EQ(rec.intervalSince(cursor).count(), 0u);

    // Only post-cursor records land in the next window.
    rec.record(5000);
    LatencyHistogram w2 = rec.intervalSince(cursor);
    EXPECT_EQ(w2.count(), 1u);
    EXPECT_EQ(w2.sumNs(), 5000u);
    EXPECT_GE(w2.percentileNs(99.0), 5000u);
}
