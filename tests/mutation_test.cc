/**
 * @file
 * Writer-path tests: live mutation (Insert/Delete/Upsert) through
 * the service, coexisting with always-on lock-free probes.
 *
 * The contract under test (src/service/sharded_index.hh, "Live
 * mutation"):
 *
 *  - a serial mutation history is equivalent to a multiset oracle —
 *    the writer path computes exactly what a map would;
 *  - upserts to one key are linearizable: concurrent upserters
 *    produce exactly one fresh insert, and a racing reader only
 *    ever observes the initial value or a submitted one;
 *  - incremental rebuilds publish old-or-new, never a partial view:
 *    a key set that predates the churn is found in full by every
 *    concurrent probe, no matter how many rebuilds race it;
 *  - epoch reclamation frees retired nodes/arrays only after every
 *    pinned reader advances — the churn stress exists for the
 *    TSan/ASan jobs, where a premature free is a hard failure;
 *  - mutation requests on a read-only service (or with malformed
 *    payloads) complete Rejected, never crash, never mutate.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <map>
#include <thread>
#include <vector>

#include "common/arena.hh"
#include "common/rng.hh"
#include "obs/metrics.hh"
#include "service/index_service.hh"
#include "swwalkers/probers.hh"

using namespace widx;
using namespace widx::sw;

namespace {

/** Multiset oracle: key -> payload multiset, mirroring the index's
 *  duplicate semantics. */
struct Oracle
{
    std::map<u64, std::vector<u64>> m;

    void
    insert(u64 k, u64 p)
    {
        m[k].push_back(p);
    }

    u64
    erase(u64 k)
    {
        auto it = m.find(k);
        if (it == m.end())
            return 0;
        const u64 n = it->second.size();
        m.erase(it);
        return n;
    }

    /** True when an existing entry was updated (first-match
     *  overwrite, like upsertLive). */
    bool
    upsert(u64 k, u64 p)
    {
        auto it = m.find(k);
        if (it == m.end()) {
            m[k].push_back(p);
            return false;
        }
        it->second.front() = p;
        return true;
    }

    u64
    count(u64 k) const
    {
        auto it = m.find(k);
        return it == m.end() ? 0 : it->second.size();
    }
};

/** Service with the writer path enabled over `tuples` build rows
 *  (key k -> payload k, no duplicates, so the oracle starts
 *  trivially). */
struct LiveService
{
    Arena arena;
    std::unique_ptr<db::Column> build;
    db::IndexSpec spec;
    ServiceConfig cfg;
    std::unique_ptr<IndexService> service;

    LiveService(u64 tuples, unsigned shards, unsigned walkers,
                double rebuildLf = 0.75)
    {
        build = std::make_unique<db::Column>(
            "b", db::ValueKind::U64, arena, tuples);
        for (u64 k = 1; k <= tuples; ++k)
            build->push(k);
        spec.buckets = std::max<u64>(tuples / 2, 16);
        cfg.shards = shards;
        cfg.walkers = walkers;
        cfg.mutation.enabled = true;
        cfg.mutation.rebuildLoadFactor = rebuildLf;
        service = std::make_unique<IndexService>(*build, spec, cfg);
    }

    ServiceResult
    mutate(RequestKind kind, std::span<const u64> keys,
           std::span<const u64> payloads = {})
    {
        SubmitOptions opt;
        opt.payloads = payloads;
        return service->submit(kind, keys, opt).get();
    }
};

} // namespace

// ---------------------------------------------------------------------------
// Serial oracle equivalence
// ---------------------------------------------------------------------------

TEST(Mutation, SerialHistoryMatchesMultisetOracle)
{
    LiveService ls(500, 4, 2);
    Oracle oracle;
    for (u64 k = 1; k <= 500; ++k)
        oracle.insert(k, k - 1); // buildFromColumn: payload = row id

    Rng rng(42);
    const u64 keySpace = 900; // beyond the build range: misses too
    for (int round = 0; round < 60; ++round) {
        const unsigned op = unsigned(rng.next() % 3);
        std::vector<u64> keys, pays;
        for (int i = 0; i < 16; ++i) {
            keys.push_back(1 + rng.next() % keySpace);
            pays.push_back(rng.next());
        }
        u64 want = 0;
        ServiceResult r;
        switch (op) {
          case 0:
            for (std::size_t i = 0; i < keys.size(); ++i)
                oracle.insert(keys[i], pays[i]);
            want = keys.size();
            r = ls.mutate(RequestKind::Insert, keys, pays);
            break;
          case 1:
            for (u64 k : keys)
                want += oracle.erase(k);
            r = ls.mutate(RequestKind::Delete, keys);
            break;
          default:
            for (std::size_t i = 0; i < keys.size(); ++i)
                if (oracle.upsert(keys[i], pays[i]))
                    ++want;
            r = ls.mutate(RequestKind::Upsert, keys, pays);
            break;
        }
        ASSERT_EQ(r.status, Status::Ok) << "round " << round;
        // Duplicate keys inside one Delete/Upsert batch make the
        // oracle and index disagree transiently per-op but not in
        // the total (both apply left to right); compare exactly.
        EXPECT_EQ(r.matches, want)
            << "round " << round << " op " << op;

        // Full read-back sweep every few rounds: counts must match
        // the oracle for hits and misses alike.
        if (round % 10 == 9) {
            std::vector<u64> all;
            for (u64 k = 1; k <= keySpace; ++k)
                all.push_back(k);
            ServiceResult probe = ls.service->probe(all);
            ASSERT_EQ(probe.status, Status::Ok);
            std::map<u64, u64> got;
            for (const MatchRec &rec : probe.recs) {
                EXPECT_EQ(rec.key, all[rec.i]);
                ++got[rec.key];
            }
            for (u64 k = 1; k <= keySpace; ++k)
                ASSERT_EQ(got[k], oracle.count(k))
                    << "key " << k << " round " << round;
        }
    }
}

TEST(Mutation, UpsertReplacesFirstMatchPayload)
{
    LiveService ls(64, 1, 1);
    const std::vector<u64> key{7};
    const std::vector<u64> pay{12345};
    ServiceResult r = ls.mutate(RequestKind::Upsert, key, pay);
    ASSERT_EQ(r.status, Status::Ok);
    EXPECT_EQ(r.matches, 1u); // updated in place, not inserted
    ServiceResult probe = ls.service->probe(key);
    ASSERT_EQ(probe.recs.size(), 1u);
    EXPECT_EQ(probe.recs[0].payload, 12345u);
}

// ---------------------------------------------------------------------------
// Concurrency: linearizable upserts, old-or-new rebuilds, churn
// ---------------------------------------------------------------------------

TEST(Mutation, ConcurrentUpsertsToOneKeyAreLinearizable)
{
    LiveService ls(256, 2, 2);
    const u64 key = 100000; // not in the build: first upsert inserts
    constexpr unsigned kWriters = 4;
    constexpr unsigned kRoundsPerWriter = 200;

    std::atomic<u64> freshInserts{0};
    std::atomic<bool> stopReaders{false};
    std::atomic<u64> badReads{0};

    // A legal payload is writer*kRounds + round + 1, i.e. any value
    // in [1, kWriters * kRoundsPerWriter].
    std::thread reader([&] {
        const std::vector<u64> probeKey{key};
        while (!stopReaders.load(std::memory_order_acquire)) {
            ServiceResult r = ls.service->probe(probeKey);
            if (r.status != Status::Ok)
                continue;
            if (r.recs.size() > 1)
                badReads.fetch_add(1, std::memory_order_relaxed);
            for (const MatchRec &rec : r.recs)
                if (rec.payload == 0 ||
                    rec.payload > u64(kWriters) * kRoundsPerWriter)
                    badReads.fetch_add(1,
                                       std::memory_order_relaxed);
        }
    });

    std::vector<std::thread> writers;
    for (unsigned w = 0; w < kWriters; ++w) {
        writers.emplace_back([&, w] {
            for (unsigned i = 0; i < kRoundsPerWriter; ++i) {
                const std::vector<u64> k{key};
                const std::vector<u64> p{
                    u64(w) * kRoundsPerWriter + i + 1};
                ServiceResult r =
                    ls.mutate(RequestKind::Upsert, k, p);
                ASSERT_EQ(r.status, Status::Ok);
                // matches counts in-place updates; a fresh insert
                // contributes 0.
                freshInserts.fetch_add(1 - r.matches,
                                       std::memory_order_relaxed);
            }
        });
    }
    for (auto &t : writers)
        t.join();
    stopReaders.store(true, std::memory_order_release);
    reader.join();

    // Exactly one writer performed the initial insert; every other
    // upsert hit it in place. A reader never saw a duplicate or a
    // value nobody wrote (torn/mixed payloads are impossible).
    EXPECT_EQ(freshInserts.load(), 1u);
    EXPECT_EQ(badReads.load(), 0u);
    ServiceResult fin = ls.service->probe(std::vector<u64>{key});
    ASSERT_EQ(fin.recs.size(), 1u);
    EXPECT_GE(fin.recs[0].payload, 1u);
    EXPECT_LE(fin.recs[0].payload,
              u64(kWriters) * kRoundsPerWriter);
}

TEST(Mutation, RebuildPublishesOldOrNewViewNeverPartial)
{
    // Small shards + aggressive watermark so the insert stream
    // forces many incremental rebuilds while readers sweep a key
    // set that predates the churn. Every sweep must find the full
    // set: both the old and the grown array contain it, and the
    // publish is a single pointer swap.
    LiveService ls(128, 2, 2, /*rebuildLf=*/0.5);
    std::vector<u64> stable;
    for (u64 k = 1; k <= 128; ++k)
        stable.push_back(k);

    std::atomic<bool> stop{false};
    std::atomic<u64> partials{0};
    std::vector<std::thread> readers;
    for (int t = 0; t < 2; ++t) {
        readers.emplace_back([&] {
            while (!stop.load(std::memory_order_acquire)) {
                const u64 n = ls.service->count(stable);
                if (n != stable.size())
                    partials.fetch_add(1,
                                       std::memory_order_relaxed);
            }
        });
    }

    // Insert disjoint fresh keys until every shard has rebuilt at
    // least once (bounded by a generous key budget).
    u64 next = 1000000;
    const ShardedIndex &idx = ls.service->index();
    auto allRebuilt = [&] {
        for (unsigned s = 0; s < idx.shards(); ++s)
            if (idx.rebuildsTotal(s) == 0)
                return false;
        return true;
    };
    for (int burst = 0; burst < 400 && !allRebuilt(); ++burst) {
        std::vector<u64> keys, pays;
        for (int i = 0; i < 64; ++i) {
            keys.push_back(next);
            pays.push_back(next);
            ++next;
        }
        ASSERT_EQ(
            ls.mutate(RequestKind::Insert, keys, pays).status,
            Status::Ok);
    }
    stop.store(true, std::memory_order_release);
    for (auto &t : readers)
        t.join();

    EXPECT_TRUE(allRebuilt())
        << "insert budget never crossed the watermark";
    EXPECT_EQ(partials.load(), 0u);
}

TEST(Mutation, ChurnStressReclaimsUnderReaders)
{
    // Insert/delete churn over a bounded key space with concurrent
    // probes: retired nodes and replaced shard arrays must only be
    // reclaimed after every pinned reader advances. The assertions
    // here are coarse (every request completes Ok, final state
    // matches a per-range oracle); the TSan/ASan CI jobs are the
    // real judge of the reclamation protocol.
    LiveService ls(256, 4, 4, /*rebuildLf=*/0.6);
    constexpr unsigned kMutators = 2;
    std::atomic<bool> stop{false};

    std::vector<std::thread> readers;
    for (int t = 0; t < 2; ++t) {
        readers.emplace_back([&, t] {
            Rng rng(77 + t);
            std::vector<u64> keys(64);
            while (!stop.load(std::memory_order_acquire)) {
                for (u64 &k : keys)
                    k = 1 + rng.next() % 4096;
                ASSERT_EQ(
                    ls.service->probe(keys).status, Status::Ok);
            }
        });
    }

    // Each mutator owns a disjoint key range, so the final state is
    // per-range deterministic without cross-thread coordination.
    std::vector<std::thread> mutators;
    for (unsigned m = 0; m < kMutators; ++m) {
        mutators.emplace_back([&, m] {
            Rng rng(13 + m);
            const u64 lo = 10000 + m * 10000;
            for (int round = 0; round < 150; ++round) {
                std::vector<u64> keys, pays;
                for (int i = 0; i < 32; ++i) {
                    keys.push_back(lo + rng.next() % 512);
                    pays.push_back(rng.next());
                }
                const bool del = round % 3 == 2;
                ServiceResult r =
                    del ? ls.mutate(RequestKind::Delete, keys)
                        : ls.mutate(RequestKind::Insert, keys,
                                    pays);
                ASSERT_EQ(r.status, Status::Ok);
            }
        });
    }
    for (auto &t : mutators)
        t.join();
    stop.store(true, std::memory_order_release);
    for (auto &t : readers)
        t.join();

    // Epoch hygiene: with no reader pinned, the lag gauge drains to
    // zero as the next writer advances past the last retire.
    EXPECT_EQ(ls.service->index().epochs().lag(), 0u);
}

// ---------------------------------------------------------------------------
// Refusals and plumbing
// ---------------------------------------------------------------------------

TEST(Mutation, RejectedOnReadOnlyService)
{
    Arena arena;
    db::Column build("b", db::ValueKind::U64, arena, 64);
    for (u64 k = 1; k <= 64; ++k)
        build.push(k);
    db::IndexSpec spec;
    spec.buckets = 32;
    ServiceConfig cfg; // mutation.enabled defaults to false
    IndexService service(build, spec, cfg);

    const std::vector<u64> keys{1, 2};
    const std::vector<u64> pays{10, 20};
    SubmitOptions opt;
    opt.payloads = pays;
    ServiceResult r =
        service.submit(RequestKind::Insert, keys, opt).get();
    EXPECT_EQ(r.status, Status::Rejected);
    EXPECT_EQ(r.matches, 0u);
    // The refusal must not have touched the index.
    EXPECT_EQ(service.count(keys), 2u);
}

TEST(Mutation, RejectedOnPayloadArityMismatch)
{
    LiveService ls(64, 1, 1);
    const std::vector<u64> keys{1, 2, 3};
    const std::vector<u64> pays{10}; // wrong arity
    EXPECT_EQ(ls.mutate(RequestKind::Insert, keys, pays).status,
              Status::Rejected);
    EXPECT_EQ(ls.mutate(RequestKind::Upsert, keys, pays).status,
              Status::Rejected);
    // Delete ignores payloads entirely.
    EXPECT_EQ(ls.mutate(RequestKind::Delete, keys).status,
              Status::Ok);
}

TEST(Mutation, StatsAndMetricsCountTheWriterPath)
{
    LiveService ls(128, 2, 2);
    std::vector<u64> keys, pays;
    for (u64 k = 0; k < 10; ++k) {
        keys.push_back(500 + k);
        pays.push_back(k);
    }
    ASSERT_EQ(ls.mutate(RequestKind::Insert, keys, pays).status,
              Status::Ok);
    ASSERT_EQ(ls.mutate(RequestKind::Delete, keys).status,
              Status::Ok);

    const ServiceStats stats = ls.service->stats();
    EXPECT_EQ(stats.mutations, 20u); // keys applied, both batches

    obs::MetricsRegistry reg;
    ls.service->registerMetrics(reg);
    const std::string text = reg.renderPrometheus();
    EXPECT_NE(text.find("widx_mutations_total"), std::string::npos);
    EXPECT_NE(text.find("widx_rebuilds_total"), std::string::npos);
    EXPECT_NE(text.find("widx_epoch_lag"), std::string::npos);
}

// The probe-surface contract is compile-time (widx::sw::ProbeSurface
// static_asserts in probers.hh / sharded_index.cc); assert it here
// too so a contract break fails this suite even if those TUs move.
static_assert(ProbeSurface<db::HashIndex>);
static_assert(ProbeSurface<ShardedIndex>);
