/**
 * @file
 * Unit tests for the two-pass assembler: syntax forms, labels,
 * aliases, diagnostics, and assemble/disassemble consistency.
 */

#include <gtest/gtest.h>

#include "isa/assembler.hh"

using namespace widx;
using namespace widx::isa;

namespace {

Program
mustAssemble(const std::string &src,
             UnitKind unit = UnitKind::Dispatcher)
{
    Program p;
    std::string err;
    bool ok = assemble("test", unit, src, err, p);
    EXPECT_TRUE(ok) << err;
    return p;
}

std::string
mustFail(const std::string &src, UnitKind unit = UnitKind::Dispatcher)
{
    Program p;
    std::string err;
    bool ok = assemble("test", unit, src, err, p);
    EXPECT_FALSE(ok);
    return err;
}

} // namespace

TEST(Assembler, AluForms)
{
    Program p = mustAssemble("add r1, r2, r3\n"
                             "xor r4, r5, r6\n"
                             "and r7, r8, r9\n"
                             "cmp r10, r11, r12\n"
                             "cmple r13, r14, r15\n");
    ASSERT_EQ(p.size(), 5u);
    EXPECT_EQ(p.at(0), Instruction::alu(Opcode::ADD, 1, 2, 3));
    EXPECT_EQ(p.at(3), Instruction::alu(Opcode::CMP, 10, 11, 12));
}

TEST(Assembler, ShiftAndFusedForms)
{
    Program p = mustAssemble(
        "shl r1, r2, #5\n"
        "shr r3, r4, #63\n"
        "addshf r5, r6, r7, lsl #3\n"
        "xorshf r8, r9, r9, lsr #33\n"
        "andshf r10, r11, r12, lsl #0\n");
    EXPECT_EQ(p.at(0), Instruction::shiftImm(Opcode::SHL, 1, 2, 5));
    EXPECT_EQ(p.at(3),
              Instruction::fused(Opcode::XOR_SHF, 8, 9, 9,
                                 ShiftDir::Lsr, 33));
}

TEST(Assembler, MemoryForms)
{
    Program p = mustAssemble("ld r1, [r2 + 16]\n"
                             "ld r3, [r4]\n"
                             "ld r5, [r6 + -8]\n"
                             "touch [r7 + 64]\n",
                             UnitKind::Walker);
    EXPECT_EQ(p.at(0), Instruction::load(1, 2, 16));
    EXPECT_EQ(p.at(1), Instruction::load(3, 4, 0));
    EXPECT_EQ(p.at(2), Instruction::load(5, 6, -8));
    EXPECT_EQ(p.at(3), Instruction::touchOp(7, 64));
}

TEST(Assembler, StoreForm)
{
    Program p = mustAssemble("st [r1 + 8], r2\n", UnitKind::Producer);
    EXPECT_EQ(p.at(0), Instruction::store(1, 8, 2));
}

TEST(Assembler, LabelsForwardAndBackward)
{
    Program p = mustAssemble("top:\n"
                             "    add r1, r1, r2\n"
                             "    ble r1, r3, done\n"
                             "    ba top\n"
                             "done:\n"
                             "    add r4, r4, r5\n");
    ASSERT_EQ(p.size(), 4u);
    EXPECT_EQ(p.at(1).imm, 3); // done
    EXPECT_EQ(p.at(2).imm, 0); // top
}

TEST(Assembler, HaltLabelResolvesToProgramEnd)
{
    Program p = mustAssemble("ble r1, r2, halt\nadd r3, r3, r4\n");
    EXPECT_EQ(p.at(0).imm, 2);
}

TEST(Assembler, RegisterAliases)
{
    Program p = mustAssemble("add r1, zero, qpop\n"
                             "add qpush, latch, zero\n",
                             UnitKind::Walker);
    EXPECT_EQ(p.at(0).ra, kRegZero);
    EXPECT_EQ(p.at(0).rb, kRegQueuePop);
    EXPECT_EQ(p.at(1).rd, kRegQueuePush);
    EXPECT_EQ(p.at(1).ra, kRegLatchW0);
}

TEST(Assembler, CommentsAndBlankLines)
{
    Program p = mustAssemble("; full-line comment\n"
                             "\n"
                             "add r1, r2, r3 ; trailing\n"
                             "add r4, r5, r6 // c++ style\n"
                             "shl r7, r8, #3 # not a comment start\n");
    EXPECT_EQ(p.size(), 3u);
    EXPECT_EQ(p.at(2).shamt, 3);
}

TEST(Assembler, LabelOnSameLineAsInstruction)
{
    Program p = mustAssemble("loop: add r1, r1, r2\nba loop\n");
    EXPECT_EQ(p.size(), 2u);
    EXPECT_EQ(p.at(1).imm, 0);
}

TEST(Assembler, DiagnosticsNameTheLine)
{
    EXPECT_NE(mustFail("add r1, r2\n").find("line 1"),
              std::string::npos);
    EXPECT_NE(mustFail("\nfoo r1, r2, r3\n").find("line 2"),
              std::string::npos);
}

TEST(Assembler, ErrorCases)
{
    EXPECT_NE(mustFail("bogus r1, r2, r3").find("unknown mnemonic"),
              std::string::npos);
    EXPECT_NE(mustFail("ba nowhere").find("unknown label"),
              std::string::npos);
    EXPECT_NE(mustFail("x: add r1,r1,r1\nx: add r1,r1,r1")
                  .find("duplicate label"),
              std::string::npos);
    EXPECT_NE(mustFail("add r1, r99, r2").find("register"),
              std::string::npos);
    EXPECT_NE(mustFail("shl r1, r2, #64").find("shift"),
              std::string::npos);
    EXPECT_NE(mustFail("ld r1, [r2 +").find("memory operand"),
              std::string::npos);
    EXPECT_NE(mustFail("addshf r1, r2, r3, lsx #3").find("lsl"),
              std::string::npos);
}

TEST(Assembler, AssembleDisassembleStable)
{
    const char *src = "loop:\n"
                      "    ld r4, [r2 + 0]\n"
                      "    xorshf r5, r4, r4, lsr #33\n"
                      "    cmp r6, r4, r9\n"
                      "    ble r1, r6, halt\n"
                      "    ba loop\n";
    Program p = mustAssemble(src);
    // Disassembly mentions each mnemonic once per instruction.
    std::string dis = p.disassemble();
    EXPECT_NE(dis.find("xorshf"), std::string::npos);
    EXPECT_NE(dis.find("ld"), std::string::npos);
    EXPECT_EQ(p.size(), 5u);
}

TEST(Assembler, AssembleOrDieValidatesLegality)
{
    // ST on a dispatcher must die -> use EXPECT_EXIT on the fatal.
    EXPECT_EXIT(assembleOrDie("bad", UnitKind::Dispatcher,
                              "st [r1 + 0], r2\n"),
                ::testing::ExitedWithCode(1), "not valid");
}
