/**
 * @file
 * Tests for the observability layer (src/obs/): the Prometheus
 * text-exposition golden (the serializer is deterministic, so the
 * expected output is an exact string), trace-ring wraparound and
 * torn-read safety under concurrent writers (the TSan job runs this
 * suite), chrome://tracing JSON structure, PerfGroup on both the
 * real-perf and degraded paths (zeros, never garbage), the
 * registry-backed open-loop report, and the end-to-end TCP stats
 * scrape + trace-span path through a live server.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <thread>
#include <vector>

#include "common/arena.hh"
#include "common/rng.hh"
#include "net/client.hh"
#include "net/server.hh"
#include "obs/metrics.hh"
#include "obs/perf_group.hh"
#include "obs/trace.hh"
#include "service/open_loop.hh"
#include "workload/distributions.hh"

using namespace widx;
using namespace widx::sw;

namespace {

/** Build column with duplicates + a flat reference index (the same
 *  shape the net suite uses). */
struct Dataset
{
    Arena arena;
    std::unique_ptr<db::Column> build;
    db::IndexSpec spec;
    std::unique_ptr<db::HashIndex> flat;
    std::vector<u64> keys;

    Dataset(u64 tuples, u64 probes, u64 seed)
    {
        Rng rng(seed);
        build = std::make_unique<db::Column>(
            "b", db::ValueKind::U64, arena, tuples);
        for (u64 k : wl::uniformKeys(tuples, tuples / 2 + 1, rng))
            build->push(k);
        spec.buckets = tuples / 2;
        flat = std::make_unique<db::HashIndex>(spec, arena);
        flat->buildFromColumn(*build);
        keys = wl::uniformKeys(probes, tuples / 2 + 1, rng);
    }
};

} // namespace

TEST(Metrics, PrometheusExpositionGolden)
{
    obs::MetricsRegistry reg;
    obs::Counter c = reg.counter("test_requests_total",
                                 "Total requests.",
                                 {{"kind", "probe"}});
    c.inc(41);
    c.inc();
    // Same (name, labels) hands back the same cell, not a shadow.
    obs::Counter c2 = reg.counter("test_requests_total",
                                  "Total requests.",
                                  {{"kind", "probe"}});
    EXPECT_EQ(c2.value(), 42u);

    obs::Gauge g =
        reg.gauge("test_temp_celsius", "Help with \\ and \n inside.",
                  {{"zone", "a\"b\\c\nd"}});
    g.set(1.5);

    reg.addCollector([](obs::Snapshot &out) {
        obs::Family f;
        f.name = "test_latency_ns";
        f.help = "Latency.";
        f.type = obs::MetricType::Histogram;
        obs::Sample s;
        s.hist.bounds = {1000.0, 2000.0};
        s.hist.cumulative = {3, 5};
        s.hist.count = 7;
        s.hist.sum = 12345.0;
        f.samples.push_back(std::move(s));
        out.push_back(std::move(f));
    });

    const std::string want =
        "# HELP test_latency_ns Latency.\n"
        "# TYPE test_latency_ns histogram\n"
        "test_latency_ns_bucket{le=\"1000\"} 3\n"
        "test_latency_ns_bucket{le=\"2000\"} 5\n"
        "test_latency_ns_bucket{le=\"+Inf\"} 7\n"
        "test_latency_ns_sum 12345\n"
        "test_latency_ns_count 7\n"
        "# HELP test_requests_total Total requests.\n"
        "# TYPE test_requests_total counter\n"
        "test_requests_total{kind=\"probe\"} 42\n"
        "# HELP test_temp_celsius Help with \\\\ and \\n inside.\n"
        "# TYPE test_temp_celsius gauge\n"
        "test_temp_celsius{zone=\"a\\\"b\\\\c\\nd\"} 1.5\n";
    EXPECT_EQ(reg.renderPrometheus(), want);

    // The same snapshot feeds programmatic lookups.
    const obs::Snapshot snap = reg.snapshot();
    EXPECT_EQ(obs::snapshotValue(snap, "test_requests_total",
                                 {{"kind", "probe"}}),
              42.0);
    EXPECT_EQ(obs::snapshotValue(snap, "test_temp_celsius",
                                 {{"zone", "a\"b\\c\nd"}}),
              1.5);
    EXPECT_EQ(obs::snapshotValue(snap, "no_such_metric", {}, -1.0),
              -1.0);
}

TEST(Metrics, HistogramDataIsCumulativeAndExact)
{
    LatencyHistogram h;
    h.record(500);           // sub-1us
    h.record(1'000'000);     // 1 ms
    h.record(1'000'000'000); // 1 s
    const obs::HistogramData d = obs::toHistogramData(h);
    ASSERT_EQ(d.bounds.size(), d.cumulative.size());
    ASSERT_FALSE(d.bounds.empty());
    for (std::size_t i = 1; i < d.bounds.size(); ++i) {
        EXPECT_GT(d.bounds[i], d.bounds[i - 1]);
        EXPECT_GE(d.cumulative[i], d.cumulative[i - 1]);
    }
    EXPECT_EQ(d.count, 3u);
    EXPECT_EQ(d.sum, 500.0 + 1e6 + 1e9);
    EXPECT_GE(d.cumulative.front(), 1u); // the 500 ns sample
    EXPECT_LE(d.cumulative.back(), d.count);
}

TEST(TraceRing, WraparoundKeepsTheNewestEvents)
{
    obs::TraceRing ring(8);
    EXPECT_EQ(ring.capacity(), 8u);
    for (u64 i = 0; i < 100; ++i)
        ring.record(1, obs::SpanPoint::Submit, /*tsNs=*/i,
                    u32(i));
    EXPECT_EQ(ring.recorded(), 100u);
    const auto evs = ring.snapshot();
    ASSERT_EQ(evs.size(), 8u);
    for (const auto &e : evs) {
        EXPECT_GE(e.tsNs, 92u);
        EXPECT_LT(e.tsNs, 100u);
        EXPECT_EQ(e.arg, u32(e.tsNs)); // fields travel together
    }
}

TEST(TraceRing, ConcurrentWritersNeverTearASnapshot)
{
    obs::TraceRing ring(1024);
    constexpr unsigned kThreads = 4;
    constexpr u64 kPerThread = 20'000;
    std::atomic<bool> stop{false};

    // Reader hammers snapshots while writers wrap the ring many
    // times over; the per-slot seqlock must make every surviving
    // event self-consistent (arg mirrors the low timestamp bits).
    std::thread reader([&] {
        while (!stop.load(std::memory_order_acquire)) {
            for (const auto &e : ring.snapshot()) {
                ASSERT_EQ(e.arg, u32(e.tsNs & 0xffffffff));
                ASSERT_EQ(e.traceId, e.tsNs + 1);
            }
        }
    });
    std::vector<std::thread> writers;
    for (unsigned t = 0; t < kThreads; ++t) {
        writers.emplace_back([&, t] {
            for (u64 i = 0; i < kPerThread; ++i) {
                const u64 ts = t * kPerThread + i;
                ring.record(ts + 1, obs::SpanPoint::DrainDone, ts,
                            u32(ts & 0xffffffff));
            }
        });
    }
    for (auto &w : writers)
        w.join();
    stop.store(true, std::memory_order_release);
    reader.join();

    EXPECT_EQ(ring.recorded(), u64(kThreads) * kPerThread);
    EXPECT_LE(ring.snapshot().size(), ring.capacity());
}

TEST(TraceRing, ChromeTraceJsonStructure)
{
    obs::TraceRing ring(64);
    ring.record(0xabc, obs::SpanPoint::Submit, 1000, 0);
    ring.record(0xabc, obs::SpanPoint::WindowSeal, 2000, 64);
    ring.record(0xdef, obs::SpanPoint::Submit, 1500, 0);
    ring.record(0xabc, obs::SpanPoint::DrainDone, 3000, 0);
    const std::string json = ring.renderChromeTrace();

    EXPECT_TRUE(json.starts_with("{\"traceEvents\":["));
    EXPECT_TRUE(json.ends_with("],\"displayTimeUnit\":\"ns\"}"));
    // Every event renders; spans of one trace share a tid row.
    EXPECT_NE(json.find("\"name\":\"submit\""), std::string::npos);
    EXPECT_NE(json.find("\"name\":\"window_seal\""),
              std::string::npos);
    EXPECT_NE(json.find("\"name\":\"drain_done\""),
              std::string::npos);
    EXPECT_NE(json.find("\"trace_id\":\"0xabc\""),
              std::string::npos);
    EXPECT_NE(json.find("\"trace_id\":\"0xdef\""),
              std::string::npos);
    // Timestamps are normalized to the earliest event.
    EXPECT_NE(json.find("\"ts\":0.000"), std::string::npos);
    // Braces balance (cheap well-formedness proxy; chrome's loader
    // is the real consumer).
    int depth = 0;
    bool inString = false;
    for (std::size_t i = 0; i < json.size(); ++i) {
        const char ch = json[i];
        if (ch == '"' && (i == 0 || json[i - 1] != '\\'))
            inString = !inString;
        if (inString)
            continue;
        if (ch == '{')
            ++depth;
        if (ch == '}') {
            --depth;
            ASSERT_GE(depth, 0);
        }
    }
    EXPECT_EQ(depth, 0);
    EXPECT_FALSE(inString);

    // An empty ring still renders a loadable document.
    obs::TraceRing empty(4);
    EXPECT_EQ(empty.renderChromeTrace(),
              "{\"traceEvents\":[],\"displayTimeUnit\":\"ns\"}");
}

TEST(PerfGroup, BothPathsReturnZerosNeverGarbage)
{
    obs::PerfGroup pg;
    if (!pg.available()) {
        // Degraded path (no perf access — containers, CI): the API
        // stays callable and reads are all-zero with valid=false.
        pg.start();
        pg.stop();
        const obs::PerfGroup::Counts c = pg.read();
        EXPECT_FALSE(c.valid);
        EXPECT_EQ(c.cycles, 0u);
        EXPECT_EQ(c.instructions, 0u);
        EXPECT_EQ(c.llcMisses, 0u);
        EXPECT_EQ(c.dtlbMisses, 0u);
        return;
    }
    // Real path: a measured spin must show cycles and instructions.
    pg.start();
    volatile u64 sink = 0;
    for (u64 i = 0; i < 1'000'000; ++i)
        sink = sink + i;
    pg.stop();
    const obs::PerfGroup::Counts c = pg.read();
    EXPECT_TRUE(c.valid);
    EXPECT_GT(c.cycles, 0u);
    EXPECT_GT(c.instructions, 0u);
}

TEST(ServiceObs, RegistryExportsServiceFamilies)
{
    Dataset d(2000, 2048, 29);
    ServiceConfig cfg;
    cfg.walkers = 2;
    cfg.watchdogPeriodNs = 5'000'000;
    IndexService service(*d.flat, cfg);
    obs::MetricsRegistry reg;
    service.registerMetrics(reg);

    const std::span<const u64> span{d.keys.data(), 512};
    ASSERT_EQ(service.submit(RequestKind::Count, span).get().status,
              Status::Ok);
    ASSERT_EQ(service.probe(span).status, Status::Ok);

    const obs::Snapshot snap = reg.snapshot();
    EXPECT_EQ(obs::snapshotValue(snap, "widx_service_requests_total"),
              2.0);
    EXPECT_EQ(obs::snapshotValue(snap, "widx_service_keys_total"),
              1024.0);
    EXPECT_EQ(obs::snapshotValue(snap,
                                 "widx_service_requests_completed_total",
                                 {{"status", "ok"}}),
              2.0);
    EXPECT_EQ(obs::snapshotValue(snap, "widx_service_live_requests"),
              0.0);
    EXPECT_GE(obs::snapshotValue(snap, "widx_service_windows_total"),
              1.0);
    // Per-walker families exist for every walker.
    EXPECT_GE(obs::snapshotValue(snap, "widx_walker_windows_total",
                                 {{"walker", "0"}}, -1.0),
              0.0);
    EXPECT_GE(obs::snapshotValue(snap, "widx_walker_windows_total",
                                 {{"walker", "1"}}, -1.0),
              0.0);
    // recordLatency defaults on: the latency histogram family is
    // present and internally cumulative.
    bool sawHist = false;
    for (const obs::Family &f : snap) {
        if (f.name != "widx_request_latency_ns")
            continue;
        sawHist = true;
        EXPECT_EQ(f.type, obs::MetricType::Histogram);
        for (const obs::Sample &s : f.samples)
            for (std::size_t i = 1; i < s.hist.cumulative.size();
                 ++i)
                EXPECT_GE(s.hist.cumulative[i],
                          s.hist.cumulative[i - 1]);
    }
    EXPECT_TRUE(sawHist);
    // The exposition the registry renders passes its own contract:
    // non-empty, newline-terminated.
    const std::string text =
        obs::MetricsRegistry::renderPrometheus(snap);
    ASSERT_FALSE(text.empty());
    EXPECT_EQ(text.back(), '\n');
}

TEST(ServiceObs, TraceSpansCoverTheRequestLifecycle)
{
    Dataset d(2000, 2048, 31);
    ServiceConfig cfg;
    cfg.walkers = 2;
    cfg.trace = std::make_shared<obs::TraceRing>(1024);
    IndexService service(*d.flat, cfg);

    SubmitOptions opt;
    opt.traceId = 0x7777;
    const std::span<const u64> span{d.keys.data(), 512};
    const ServiceResult r =
        service.submit(RequestKind::Count, span, opt).get();
    ASSERT_EQ(r.status, Status::Ok);
    EXPECT_EQ(r.traceId, 0x7777u);

    // An untraced request stamps nothing.
    ASSERT_EQ(service.submit(RequestKind::Count, span).get().status,
              Status::Ok);

    u64 tSubmit = 0, tSeal = 0, tClaim = 0, tDone = 0;
    for (const auto &e : cfg.trace->snapshot()) {
        ASSERT_EQ(e.traceId, 0x7777u);
        switch (e.point) {
        case obs::SpanPoint::Submit:
            tSubmit = e.tsNs;
            break;
        case obs::SpanPoint::WindowSeal:
            tSeal = e.tsNs;
            break;
        case obs::SpanPoint::FirstClaim:
            tClaim = e.tsNs;
            break;
        case obs::SpanPoint::DrainDone:
            tDone = e.tsNs;
            break;
        default:
            break;
        }
    }
    ASSERT_GT(tSubmit, 0u);
    ASSERT_GT(tSeal, 0u);
    ASSERT_GT(tClaim, 0u);
    ASSERT_GT(tDone, 0u);
    EXPECT_LE(tSubmit, tSeal);
    EXPECT_LE(tSeal, tClaim);
    EXPECT_LE(tClaim, tDone);
}

TEST(NetObs, StatsScrapeAndReapSpanOverTheWire)
{
    Dataset d(2000, 2048, 37);
    ServiceConfig cfg;
    cfg.walkers = 2;
    cfg.trace = std::make_shared<obs::TraceRing>(1024);
    IndexService service(*d.flat, cfg);

    net::TcpServerOptions sopt;
    sopt.trace = cfg.trace;
    net::TcpIndexServer server(service, sopt);
    net::TcpIndexClient client("127.0.0.1", server.port());

    // One traced request through the full wire path.
    const std::span<const u64> span{d.keys.data(), 256};
    client.submitAsync(RequestKind::Count, span, 0, /*tag=*/1,
                       /*traceId=*/0xbeef);
    std::vector<Completion> batch;
    while (batch.empty())
        client.queue()->reap(batch, 16,
                             std::chrono::milliseconds(50));
    ASSERT_EQ(batch.size(), 1u);
    ASSERT_EQ(batch[0].result.status, Status::Ok);

    // Scrape: service + net families in one exposition; the scrape
    // is answered in-line (never a service request).
    const std::string text = client.stats();
    ASSERT_FALSE(text.empty());
    EXPECT_NE(text.find("# TYPE widx_service_requests_total counter"),
              std::string::npos);
    EXPECT_NE(text.find("# TYPE widx_net_requests_total counter"),
              std::string::npos);
    EXPECT_NE(text.find("widx_net_requests_total 1\n"),
              std::string::npos);
    EXPECT_NE(text.find("widx_net_open_connections 1\n"),
              std::string::npos);
    EXPECT_EQ(text.find("widx_openloop_"), std::string::npos);

    // A second scrape sees the first one counted.
    const std::string text2 = client.stats();
    EXPECT_NE(text2.find("widx_net_stats_scrapes_total 1\n"),
              std::string::npos);

    // The reaper stamped the reap span after drain-done.
    u64 tDone = 0, tReap = 0;
    for (const auto &e : cfg.trace->snapshot()) {
        if (e.traceId != 0xbeef)
            continue;
        if (e.point == obs::SpanPoint::DrainDone)
            tDone = e.tsNs;
        if (e.point == obs::SpanPoint::Reap)
            tReap = e.tsNs;
    }
    ASSERT_GT(tDone, 0u);
    ASSERT_GT(tReap, 0u);
    EXPECT_GE(tReap, tDone);

    client.close();
    server.stop();
    EXPECT_EQ(server.stats().requests, 1u);
    EXPECT_EQ(server.stats().statsScrapes, 2u);
    EXPECT_EQ(server.stats().protocolErrors, 0u);
}

TEST(OpenLoopObs, ReportIsFilledFromTheRegistrySnapshot)
{
    Dataset d(2000, 1u << 13, 41);
    ServiceConfig cfg;
    cfg.walkers = 2;
    IndexService service(*d.flat, cfg);

    OpenLoopOptions opt;
    opt.ratePerSec = 50e3;
    opt.requests = 400;
    opt.keysPerRequest = 32;
    opt.seed = 7;
    const OpenLoopReport rep = runOpenLoop(service, d.keys, opt);

    EXPECT_EQ(rep.scheduled, 400u);
    EXPECT_EQ(rep.submitted + rep.shedClientCap, rep.scheduled);
    // Every submission is accounted exactly once.
    EXPECT_EQ(rep.completed + rep.rejected + rep.expired +
                  rep.timedOut,
              rep.submitted);
    EXPECT_LE(rep.goodput, rep.completed);
    EXPECT_EQ(rep.latency.count, rep.completed);
}
